# Standard entry points for the reproduction.

GO ?= go

.PHONY: all build test test-race vet fmt-check smoke bench bench-json bench-gate serve experiments examples clean

# The tracked benchmark set: the compile-once/simulate-many split (cold
# vs warm core.Run, the 8-way RunMany sweep) plus the service's warm hit
# path (preserialized byte cache). The committed BENCH_<date>.json floor
# these; `make bench-gate` enforces it.
BENCH_SET    := BenchmarkCoreRun(Cold|Warm|Many8)$$|BenchmarkServiceCacheHit$$
BENCH_BASE   ?= BENCH_2026-08-08.json
MAX_REGRESS  ?= 35%

all: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The worker pool and result cache are concurrent code; the race
# detector gates them (CI runs this).
test-race:
	$(GO) test -race ./...

# Fail if any file is not gofmt-formatted (CI runs this).
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Build the daemon, start it, and exercise the observability surface
# end to end (traced request, /v1/trace, /metrics, pprof).
smoke:
	./scripts/smoke.sh

# Run the simulation service (see README "Running the server").
serve:
	$(GO) run ./cmd/dgxsimd

# One testing.B benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem

# Snapshot the tracked performance baseline as BENCH_<date>.json for
# commit-over-commit comparison. README "Performance" explains the
# numbers. Refreshing the baseline is an intentional act: run this,
# commit the new file, and point BENCH_BASE (below) at it.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_SET)' -benchmem -count=3 . \
		| $(GO) run ./cmd/benchjson -date $$(date +%F) > BENCH_$$(date +%F).json
	@cat BENCH_$$(date +%F).json

# Perf regression gate (CI runs this): run the tracked set 3x, fold to
# best-of-3 per benchmark, and fail if ns/op or allocs/op regressed more
# than MAX_REGRESS against the committed $(BENCH_BASE). The fresh
# snapshot lands in bench-fresh.json (CI uploads it as an artifact).
bench-gate:
	$(GO) test -run '^$$' -bench '$(BENCH_SET)' -benchmem -count=3 . \
		| $(GO) run ./cmd/benchjson -diff $(BENCH_BASE) -max-regress $(MAX_REGRESS) > bench-fresh.json

# Regenerate every paper artifact (tables and figures) on stdout.
experiments:
	$(GO) run ./cmd/experiments

# Run every example binary once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/comparecomm
	$(GO) run ./examples/memoryplan
	$(GO) run ./examples/customnet
	$(GO) run ./examples/asgd
	$(GO) run ./examples/whatif
	$(GO) run ./examples/parallelism

clean:
	rm -f trace.json test_output.txt bench_output.txt bench-fresh.json
