# Standard entry points for the reproduction.

GO ?= go

.PHONY: all build test vet bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One testing.B benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem

# Regenerate every paper artifact (tables and figures) on stdout.
experiments:
	$(GO) run ./cmd/experiments

# Run every example binary once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/comparecomm
	$(GO) run ./examples/memoryplan
	$(GO) run ./examples/customnet
	$(GO) run ./examples/asgd
	$(GO) run ./examples/whatif
	$(GO) run ./examples/parallelism

clean:
	rm -f trace.json test_output.txt bench_output.txt
