# Standard entry points for the reproduction.

GO ?= go

.PHONY: all build test test-race vet fmt-check smoke bench bench-json serve experiments examples clean

all: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The worker pool and result cache are concurrent code; the race
# detector gates them (CI runs this).
test-race:
	$(GO) test -race ./...

# Fail if any file is not gofmt-formatted (CI runs this).
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Build the daemon, start it, and exercise the observability surface
# end to end (traced request, /v1/trace, /metrics, pprof).
smoke:
	./scripts/smoke.sh

# Run the simulation service (see README "Running the server").
serve:
	$(GO) run ./cmd/dgxsimd

# One testing.B benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem

# Snapshot the tracked performance baseline (cold vs warm core.Run and
# the 8-way RunMany sweep) as BENCH_<date>.json for commit-over-commit
# comparison. README "Performance" explains the numbers.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkCoreRun(Cold|Warm|Many8)$$' -benchmem . \
		| $(GO) run ./cmd/benchjson -date $$(date +%F) > BENCH_$$(date +%F).json
	@cat BENCH_$$(date +%F).json

# Regenerate every paper artifact (tables and figures) on stdout.
experiments:
	$(GO) run ./cmd/experiments

# Run every example binary once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/comparecomm
	$(GO) run ./examples/memoryplan
	$(GO) run ./examples/customnet
	$(GO) run ./examples/asgd
	$(GO) run ./examples/whatif
	$(GO) run ./examples/parallelism

clean:
	rm -f trace.json test_output.txt bench_output.txt
