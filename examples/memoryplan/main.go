// Memoryplan explores the paper's memory findings (its Table IV): how
// per-GPU memory grows with batch size, GPU 0's parameter-server premium,
// and where each network hits the 16 GB V100 wall. Useful for answering
// "what is the largest batch I can train?" before renting the machine.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gpu"
)

func main() {
	for _, model := range core.Models() {
		d, err := core.Describe(model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d params, input %v)\n", d.Name, d.Params, d.InputShape)
		fmt.Printf("  %-6s %-12s %-12s %-12s %-10s %s\n",
			"batch", "pre-train", "GPU0", "GPUx", "GPU0 +%", "trains on 16GB V100?")
		for _, batch := range []int{16, 32, 64, 128, 256} {
			est, err := core.EstimateMemory(model, batch, true)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "yes"
			// Probe by building the training session, which allocates on
			// the simulated devices.
			if _, err := core.Run(core.Workload{
				Model: model, GPUs: 4, Batch: batch, Images: 4096,
			}); err != nil {
				if errors.Is(err, gpu.ErrOutOfMemory) {
					verdict = "OOM"
				} else {
					log.Fatal(err)
				}
			}
			fmt.Printf("  %-6d %-12.2f %-12.2f %-12.2f %-10.1f %s\n",
				batch, est.PreTraining.GiB(), est.Root().GiB(), est.Worker().GiB(),
				est.RootPremiumPercent(), verdict)
		}
		fmt.Println()
	}
	fmt.Println("paper: Inception-v3 and ResNet cannot train beyond batch 64 per GPU;")
	fmt.Println("feature maps, not weights, are what fills the 16 GB")
}
