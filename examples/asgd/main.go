// Asgd contrasts synchronous SGD (the paper's measured configuration) with
// the asynchronous variant its background section discusses: ASGD removes
// the inter-GPU barrier — each worker exchanges with the parameter-server
// GPU independently — trading gradient staleness for wall-clock speed.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	fmt.Println("Synchronous vs asynchronous SGD (P2P parameter server, batch 16)")
	fmt.Printf("%-14s %-6s %-14s %-14s %s\n", "model", "gpus", "sync epoch", "async epoch", "async gain")
	for _, model := range []string{"lenet", "alexnet", "googlenet"} {
		for _, gpus := range []int{2, 4, 8} {
			sync, err := core.Run(core.Workload{Model: model, GPUs: gpus, Batch: 16, Method: core.P2P})
			if err != nil {
				log.Fatal(err)
			}
			async, err := core.Run(core.Workload{Model: model, GPUs: gpus, Batch: 16, Method: core.P2P, Async: true})
			if err != nil {
				log.Fatal(err)
			}
			gain := sync.EpochTime.Seconds() / async.EpochTime.Seconds()
			fmt.Printf("%-14s %-6d %-14v %-14v %.2fx\n",
				model, gpus, sync.EpochTime.Round(1e6), async.EpochTime.Round(1e6), gain)
		}
	}
	fmt.Println("\nASGD's wall-clock advantage is what the paper's §II-B describes; its cost —")
	fmt.Println("the delayed-gradient problem degrading convergence — is outside timing scope.")
}
