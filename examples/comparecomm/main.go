// Comparecomm reproduces the paper's central question for one network:
// does P2P direct transfer or NCCL train faster, and how does the answer
// change with GPU count and batch size? It prints a sweep like the bars of
// the paper's Figure 3 with the winner annotated per configuration.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	model := flag.String("model", "resnet", "network to sweep")
	flag.Parse()

	fmt.Printf("Communication-method comparison for %s (strong scaling, 256K images)\n\n", *model)
	fmt.Printf("%-6s %-6s %-14s %-14s %s\n", "batch", "gpus", "p2p", "nccl", "winner")
	for _, batch := range []int{16, 32, 64} {
		for _, gpus := range []int{1, 2, 4, 8} {
			reports, err := core.Compare(core.Workload{Model: *model, GPUs: gpus, Batch: batch})
			if err != nil {
				log.Fatal(err)
			}
			// Compare returns P2P first, then NCCL.
			p := reports[0].Report.EpochTime
			n := reports[1].Report.EpochTime
			winner := "p2p"
			ratio := float64(n) / float64(p)
			if n < p {
				winner = "nccl"
				ratio = float64(p) / float64(n)
			}
			fmt.Printf("%-6d %-6d %-14v %-14v %s (%.2fx)\n",
				batch, gpus, p.Round(1e6), n.Round(1e6), winner, ratio)
		}
	}
	fmt.Println("\npaper's rule of thumb: P2P for small networks; NCCL once the network is")
	fmt.Println("large and the GPU count reaches 4-8, where ring pipelining amortizes its overhead")
}
