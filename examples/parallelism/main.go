// Parallelism contrasts the three distribution strategies on the workloads
// whose structure the paper's §I discussion keys on: data parallelism
// (replicate + exchange gradients, what the paper measures), pipelined
// model parallelism (partition layers, exchange boundary activations), and
// the hybrid "one weird trick" (data-parallel convs + tensor-parallel FC
// slices). AlexNet — 5 conv layers but 224 MB of FC weights — is exactly
// the network the paper says model parallelism suits, and the hybrid
// scheme shows why.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	fmt.Printf("%-14s %-6s %-16s %-16s %-16s\n",
		"model", "gpus", "data-parallel", "model-parallel", "hybrid-owt")
	for _, model := range []string{"alexnet", "googlenet", "resnet"} {
		for _, gpus := range []int{4, 8} {
			dp, err := core.Run(core.Workload{Model: model, GPUs: gpus, Batch: 16})
			if err != nil {
				log.Fatal(err)
			}
			mp, err := core.Run(core.Workload{Model: model, GPUs: gpus, Batch: 16, Method: core.P2P, ModelParallel: true})
			if err != nil {
				log.Fatal(err)
			}
			hy, err := core.Run(core.Workload{Model: model, GPUs: gpus, Batch: 16, HybridOWT: true})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %-6d %-16v %-16v %-16v\n", model, gpus,
				dp.EpochTime.Round(1e6), mp.EpochTime.Round(1e6), hy.EpochTime.Round(1e6))
		}
	}
	fmt.Println()
	fmt.Println("hybrid wins where data parallelism drowns in FC-weight exchange (AlexNet);")
	fmt.Println("for conv-dominated networks the gradient volume is small and data parallelism holds.")
}
