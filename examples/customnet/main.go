// Customnet shows the deeper API: define a brand-new CNN with the dnn
// builder, wrap it as a model description, and study its multi-GPU scaling
// with both communication methods — the workflow a model designer would
// use to predict training behaviour before buying DGX time.
package main

import (
	"fmt"
	"log"

	"repro/internal/dnn"
	"repro/internal/kvstore"
	"repro/internal/models"
	"repro/internal/train"
)

// buildTinyVGG defines a small VGG-style network: stacked 3x3 convolutions
// with a modest classifier head.
func buildTinyVGG() models.Description {
	in := dnn.Shape{C: 3, H: 224, W: 224}
	b := dnn.NewBuilder("TinyVGG")
	x := b.Input("data", in)
	block := func(name string, outC int) {
		x = b.Add(name+"_conv1", dnn.Conv{OutC: outC, KH: 3, KW: 3, PadH: 1, PadW: 1, Bias: true}, x)
		x = b.Add(name+"_relu1", dnn.Activation{Mode: dnn.ReLU}, x)
		x = b.Add(name+"_conv2", dnn.Conv{OutC: outC, KH: 3, KW: 3, PadH: 1, PadW: 1, Bias: true}, x)
		x = b.Add(name+"_relu2", dnn.Activation{Mode: dnn.ReLU}, x)
		x = b.Add(name+"_pool", dnn.Pool{Mode: dnn.MaxPool, K: 2, Stride: 2}, x)
	}
	block("b1", 32)
	block("b2", 64)
	block("b3", 128)
	block("b4", 256)
	x = b.Add("gap", dnn.Pool{Mode: dnn.AvgPool, Global: true}, x)
	x = b.Add("flatten", dnn.Flatten{}, x)
	x = b.Add("fc", dnn.FC{OutF: 1000, Bias: true}, x)
	b.Add("softmax", dnn.Softmax{}, x)
	net := b.Finish()
	return models.Description{
		Name:       "TinyVGG",
		Net:        net,
		Depth:      net.Depth(),
		ConvLayers: net.CountKind(dnn.OpConv),
		FCLayers:   net.CountKind(dnn.OpFC),
		Params:     net.ParamCount(),
		InputShape: in,
	}
}

func main() {
	d := buildTinyVGG()
	fmt.Printf("%s: depth %d, %d conv + %d fc layers, %d parameters (%v)\n",
		d.Name, d.Depth, d.ConvLayers, d.FCLayers, d.Params, d.Net.ModelBytes())
	fmt.Printf("forward cost: %v per image\n\n", d.Net.FwdFLOPsPerImage())

	fmt.Printf("%-6s %-8s %-14s %-12s %s\n", "gpus", "method", "epoch", "speedup", "exposed WU")
	var base float64
	for _, method := range []kvstore.Method{kvstore.MethodP2P, kvstore.MethodNCCL} {
		for _, gpus := range []int{1, 2, 4, 8} {
			cfg := train.Config{
				Model:       d,
				GPUs:        gpus,
				Batch:       32,
				Method:      method,
				TensorCores: true,
			}
			tr, err := train.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := tr.Run()
			if err != nil {
				log.Fatal(err)
			}
			if gpus == 1 && method == kvstore.MethodP2P {
				base = res.EpochTime.Seconds()
			}
			fmt.Printf("%-6d %-8s %-14v %-12.2f %v\n",
				gpus, method, res.EpochTime.Round(1e6),
				base/res.EpochTime.Seconds(), res.WUWall.Round(1e6))
		}
	}
}
