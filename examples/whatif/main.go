// Whatif explores hypothetical hardware, quantifying the paper's closing
// insight: "only increasing the bandwidth of the interconnect network
// cannot completely eliminate the communication bottleneck." It sweeps
// NVLink bandwidth from zero (PCIe only) to 4x for a latency-bound and a
// bandwidth-bound workload.
package main

import (
	"fmt"
	"log"

	"repro/internal/kvstore"
	"repro/internal/topology"
	"repro/internal/train"
)

func epochOn(top *topology.Topology, model string) (*train.Result, error) {
	cfg, err := train.NewConfig(model, 8, 16, kvstore.MethodNCCL)
	if err != nil {
		return nil, err
	}
	cfg.Topology = top
	tr, err := train.New(cfg)
	if err != nil {
		return nil, err
	}
	return tr.Run()
}

func main() {
	variants := []struct {
		name string
		top  *topology.Topology
	}{
		{"PCIe only (no NVLink)", topology.DGX1PCIeOnly()},
		{"DGX-1 (25 GB/s bricks)", topology.DGX1()},
		{"2x NVLink", topology.DGX1Scaled(2)},
		{"4x NVLink", topology.DGX1Scaled(4)},
	}

	for _, model := range []string{"lenet", "alexnet"} {
		fmt.Printf("%s, 8 GPUs, batch 16, NCCL:\n", model)
		var base float64
		for _, v := range variants {
			res, err := epochOn(v.top, model)
			if err != nil {
				log.Fatal(err)
			}
			if v.name == "DGX-1 (25 GB/s bricks)" {
				base = res.EpochTime.Seconds()
			}
			fmt.Printf("  %-24s epoch=%-12v exposed WU=%v\n",
				v.name, res.EpochTime.Round(1e6), res.WUWall.Round(1e6))
		}
		_ = base
		fmt.Println()
	}
	fmt.Println("LeNet's weight-update wall barely moves with bandwidth — it is bound by")
	fmt.Println("per-operation latency and API overheads, which is why the paper calls for")
	fmt.Println("more efficient algorithms and implementations, not just faster links.")
}
