// Quickstart: simulate one epoch of GoogLeNet training on 4 GPUs of the
// modeled DGX-1 with NCCL communication and print the measurements —
// the library's sixty-second tour.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	report, err := core.Run(core.Workload{
		Model:  "googlenet",
		GPUs:   4,
		Batch:  32,
		Method: core.NCCL,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report.Summary())
	fmt.Println()
	fmt.Printf("epoch time:          %v\n", report.EpochTime)
	fmt.Printf("steady iteration:    %v\n", report.SteadyIter)
	fmt.Printf("throughput:          %.0f images/s\n", report.Throughput)
	fmt.Printf("computation (FP+BP): %v\n", report.FPBP)
	fmt.Printf("exposed WU:          %v\n", report.WU)
	fmt.Printf("GPU0 memory:         %.2f GiB (workers %.2f GiB)\n",
		report.Memory.Root().GiB(), report.Memory.Worker().GiB())

	// The profile gives nvprof-style accounting.
	launches := report.Profile.API("cudaLaunchKernel")
	fmt.Printf("kernel launches:     %d (%v total host time)\n", launches.Calls, launches.Total)
	ar := report.Profile.Kernel("ncclAllReduceRingKernel")
	fmt.Printf("NCCL all-reduces:    %d\n", ar.Calls)
}
