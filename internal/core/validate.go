package core

import (
	"fmt"
	"strings"

	"repro/internal/kvstore"
	"repro/internal/models"
	"repro/internal/nccl"
	"repro/internal/train"
)

// Validate checks a workload before it is run. The CLI (cmd/dgxsim) and
// the service (internal/service, cmd/dgxsimd) both call it, so a bad
// configuration is rejected with the same error text at every entry
// point. A zero Method is accepted (Run defaults it to NCCL).
func (w Workload) Validate() error {
	if w.Model == "" {
		return fmt.Errorf("core: no model specified (available: %s)", strings.Join(models.Names(), ", "))
	}
	if _, err := models.ByName(w.Model); err != nil {
		return fmt.Errorf("core: unknown model %q (available: %s)", w.Model, strings.Join(models.Names(), ", "))
	}
	m, err := train.MachineByName(w.Hardware)
	if err != nil {
		return fmt.Errorf("core: unknown hardware %q (available: %s)", w.Hardware, strings.Join(train.MachineNames(), ", "))
	}
	if w.GPUs < 1 || w.GPUs > m.GPUs {
		return fmt.Errorf("core: GPU count %d out of range (%s has 1..%d)", w.GPUs, m.Title, m.GPUs)
	}
	if w.Batch <= 0 {
		return fmt.Errorf("core: batch size %d must be positive", w.Batch)
	}
	switch w.Method {
	case "", P2P, NCCL, kvstore.MethodLocal:
	default:
		return fmt.Errorf("core: unknown method %q (p2p, nccl, or local)", w.Method)
	}
	if w.Images < 0 {
		return fmt.Errorf("core: images per epoch %d must not be negative", w.Images)
	}
	if w.Async && w.Method != P2P {
		return fmt.Errorf("core: async SGD requires the p2p method, got %q", w.methodOrDefault())
	}
	if w.Async && (w.ModelParallel || w.HybridOWT) {
		return fmt.Errorf("core: async SGD supports only data parallelism")
	}
	if w.ModelParallel && w.HybridOWT {
		return fmt.Errorf("core: model-parallel and hybrid-owt are mutually exclusive")
	}
	if w.HybridOWT && w.methodOrDefault() != NCCL {
		return fmt.Errorf("core: hybrid parallelism requires the nccl method, got %q", w.Method)
	}
	if w.HybridOWT && w.GPUs < 2 {
		return fmt.Errorf("core: hybrid parallelism needs at least 2 GPUs")
	}
	if w.MicroBatches < 0 {
		return fmt.Errorf("core: micro-batch count %d must not be negative", w.MicroBatches)
	}
	if w.MicroBatches > 0 && !w.ModelParallel {
		return fmt.Errorf("core: micro-batches apply only to model-parallel runs")
	}
	if w.BucketKB < 0 {
		return fmt.Errorf("core: bucket size %d KiB must not be negative", w.BucketKB)
	}
	if w.TraceIntervals < 0 {
		return fmt.Errorf("core: trace interval count %d must not be negative", w.TraceIntervals)
	}
	if _, err := nccl.ParseProtocol(w.Protocol); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if w.NCCLTree && w.Protocol == "auto" {
		return fmt.Errorf("core: protocol \"auto\" picks the algorithm per collective; clear ncclTree")
	}
	if err := w.Faults.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := w.Faults.CheckHardware(w.Hardware); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// methodOrDefault resolves the zero Method the way Run does.
func (w Workload) methodOrDefault() Method {
	if w.Method == "" {
		return NCCL
	}
	return w.Method
}
