package core

import (
	"testing"

	"repro/internal/faults"
)

// The artifact cache keys off the fingerprint, so a faulted workload must
// never alias a healthy one — otherwise a degraded-fabric simulation could
// silently serve the healthy machine's cached window (or vice versa).
func TestFaultedFingerprintNeverAliasesHealthy(t *testing.T) {
	healthy := Workload{Model: "alexnet", GPUs: 8, Batch: 16, Method: NCCL}
	faulted := healthy
	faulted.Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}}}
	if healthy.Fingerprint() == faulted.Fingerprint() {
		t.Fatal("faulted workload fingerprints like the healthy one — artifact cache would alias them")
	}
	if artifactKey(healthy.Normalize()) == artifactKey(faulted.Normalize()) {
		t.Fatal("faulted workload shares the healthy artifact key")
	}
	// Distinct plans get distinct keys too.
	other := healthy
	other.Faults = &faults.Plan{PCIeContention: 0.5}
	if other.Fingerprint() == faulted.Fingerprint() {
		t.Error("distinct fault plans must not share a fingerprint")
	}
}

// A plan of pure no-ops must normalize away so "no faults" has exactly one
// fingerprint, and equivalent spellings of a real plan must share one.
func TestFaultSpellingsShareFingerprint(t *testing.T) {
	healthy := Workload{Model: "alexnet", GPUs: 8, Batch: 16, Method: NCCL}
	noop := healthy
	noop.Faults = &faults.Plan{Stragglers: []faults.Straggler{{GPU: 3, Slowdown: 1}}}
	if healthy.Fingerprint() != noop.Fingerprint() {
		t.Error("a no-op fault plan must fingerprint like the healthy workload")
	}

	a := healthy
	a.Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 1, B: 0}, {A: 2, B: 0}}}
	b := healthy
	b.Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 2}, {A: 0, B: 1}}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equivalent fault-plan spellings must share a fingerprint")
	}
}

// End to end through the artifact layer: the faulted run simulates on the
// degraded fabric (strictly more exposed WU than healthy) and an invalid
// plan is rejected by Workload.Validate.
func TestSimulateWithFaults(t *testing.T) {
	healthy := Workload{Model: "alexnet", GPUs: 8, Batch: 16, Method: NCCL, Images: 4096}
	faulted := healthy
	faulted.Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}, {A: 0, B: 2}}}

	h, err := Simulate(healthy)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Simulate(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if f.WUWall <= h.WUWall {
		t.Errorf("faulted WU %v must exceed healthy %v", f.WUWall, h.WUWall)
	}

	bad := healthy
	bad.Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 4}}}
	if err := bad.Validate(); err == nil {
		t.Error("workload with a nonexistent link must fail validation")
	}
}
