package core

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"testing"
)

// reportJSON marshals a report the way every consumer sees it.
func reportJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestColdWarmByteIdentical is the artifact layer's core guarantee: for
// every zoo model, a run served from the compiled-window cache is
// byte-identical to a cold run of the same workload.
func TestColdWarmByteIdentical(t *testing.T) {
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			w := Workload{Model: model, GPUs: 2, Batch: 16, Images: 8192}
			ResetCaches()
			cold, err := Run(w)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := Run(w)
			if err != nil {
				t.Fatal(err)
			}
			cj, wj := reportJSON(t, cold), reportJSON(t, warm)
			if string(cj) != string(wj) {
				t.Errorf("warm report differs from cold:\ncold: %s\nwarm: %s", cj, wj)
			}
		})
	}
}

// TestWindowSharedAcrossImages pins the subtler half of the guarantee:
// two workloads differing only in dataset size share one compiled window
// (the window depends on Images only through the simulated iteration
// count), and the shared-window run is still byte-identical to its own
// cold run.
func TestWindowSharedAcrossImages(t *testing.T) {
	small := Workload{Model: "alexnet", GPUs: 4, Batch: 32, Images: 64 * 1024}
	large := Workload{Model: "alexnet", GPUs: 4, Batch: 32, Images: 256 * 1024}

	ResetCaches()
	coldLarge, err := Run(large)
	if err != nil {
		t.Fatal(err)
	}
	coldLargeJSON := reportJSON(t, coldLarge)

	// Fresh caches, opposite order: compile via the small epoch, then
	// serve the large epoch from the small epoch's window.
	ResetCaches()
	if _, err := Run(small); err != nil {
		t.Fatal(err)
	}
	if kS, kL := artifactKey(small.Normalize()), artifactKey(large.Normalize()); kS != kL {
		t.Fatalf("images-only variants should share an artifact key: %q vs %q", kS, kL)
	}
	warmLarge, err := Run(large)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, warmLarge); string(got) != string(coldLargeJSON) {
		t.Errorf("large epoch served from the small epoch's window differs from its cold run:\ncold: %s\nwarm: %s",
			coldLargeJSON, got)
	}
}

// TestTinyEpochGetsOwnWindow guards the key's iteration suffix: an epoch
// smaller than the simulated window compiles its own artifact instead of
// borrowing (and mis-extrapolating) a full-size one.
func TestTinyEpochGetsOwnWindow(t *testing.T) {
	full := Workload{Model: "lenet", GPUs: 2, Batch: 16, Images: 8192}
	tiny := Workload{Model: "lenet", GPUs: 2, Batch: 16, Images: 32} // 1 iteration
	if kF, kT := artifactKey(full.Normalize()), artifactKey(tiny.Normalize()); kF == kT {
		t.Fatalf("full and tiny epochs must not share artifact key %q", kF)
	}
	ResetCaches()
	coldTiny, err := Run(tiny)
	if err != nil {
		t.Fatal(err)
	}
	coldTinyJSON := reportJSON(t, coldTiny)

	ResetCaches()
	if _, err := Run(full); err != nil {
		t.Fatal(err)
	}
	warmTiny, err := Run(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, warmTiny); string(got) != string(coldTinyJSON) {
		t.Errorf("tiny epoch after full epoch differs from its cold run:\ncold: %s\ngot: %s", coldTinyJSON, got)
	}
}

// TestCacheConcurrency hammers the artifact cache from NumCPU goroutines
// starting cold, so the compile-once gate, the plan cache, and the model
// zoo memo all race on first touch. Run with -race; every result must
// match the sequential reference bytes.
func TestCacheConcurrency(t *testing.T) {
	workloads := []Workload{
		{Model: "lenet", GPUs: 2, Batch: 16, Images: 8192},
		{Model: "alexnet", GPUs: 4, Batch: 32, Images: 8192},
		{Model: "resnet", GPUs: 2, Batch: 16, Images: 8192},
		{Model: "resnet", GPUs: 2, Batch: 16, Images: 16384}, // shares resnet's window
	}
	refs := make([]string, len(workloads))
	for i, w := range workloads {
		ResetCaches()
		r, err := Run(w)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = string(reportJSON(t, r))
	}

	ResetCaches()
	n := runtime.NumCPU()
	if n < 4 {
		n = 4
	}
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan string, n*rounds*len(workloads))
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				// Stagger the order per goroutine so different keys race.
				for off := 0; off < len(workloads); off++ {
					i := (g + round + off) % len(workloads)
					r, err := Run(workloads[i])
					if err != nil {
						errs <- err.Error()
						return
					}
					b, err := json.Marshal(r)
					if err != nil {
						errs <- err.Error()
						return
					}
					if string(b) != refs[i] {
						errs <- "concurrent report diverged from sequential reference for " + workloads[i].Model
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestRunMany pins the batch entry point: reports align with the input
// slice and match individual Run calls byte for byte.
func TestRunMany(t *testing.T) {
	ws := []Workload{
		{Model: "lenet", GPUs: 2, Batch: 16, Images: 8192},
		{Model: "alexnet", GPUs: 2, Batch: 16, Images: 8192},
		{Model: "lenet", GPUs: 2, Batch: 16, Images: 8192}, // repeat: warm hit
	}
	reps, err := RunMany(context.Background(), ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(ws) {
		t.Fatalf("got %d reports for %d workloads", len(reps), len(ws))
	}
	for i, w := range ws {
		single, err := Run(w)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := string(reportJSON(t, reps[i])), string(reportJSON(t, single)); got != want {
			t.Errorf("workload %d: RunMany report differs from Run", i)
		}
	}
}

func TestRunManyErrors(t *testing.T) {
	_, err := RunMany(context.Background(), []Workload{
		{Model: "lenet", GPUs: 2, Batch: 16},
		{Model: "bogus", GPUs: 2, Batch: 16},
	})
	if err == nil {
		t.Fatal("expected an error for the bogus model")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMany(ctx, []Workload{{Model: "lenet", GPUs: 1, Batch: 16}}); err != context.Canceled {
		t.Fatalf("cancelled RunMany = %v, want context.Canceled", err)
	}
}

// TestCompileCountEqualsDistinctPlans is the mega-sweep acceptance
// invariant: a grid whose cells differ only in extrapolation-phase
// parameters (dataset size, hence iteration count) compiles exactly one
// train.Window per distinct compile-phase plan, no matter how many cells
// ride on it.
func TestCompileCountEqualsDistinctPlans(t *testing.T) {
	var grid []Workload
	// 2 distinct compile plans (lenet, alexnet) x 8 Images variations:
	// 16 cells, every epoch large enough to simulate the full default
	// window, so all Images variants share their model's window.
	for _, model := range []string{"lenet", "alexnet"} {
		for i := 0; i < 8; i++ {
			grid = append(grid, Workload{Model: model, GPUs: 2, Batch: 16, Images: int64(8192 * (i + 1))})
		}
	}
	distinct := make(map[string]bool)
	for _, w := range grid {
		distinct[w.Normalize().CompileFingerprint()] = true
	}
	if len(distinct) != 2 {
		t.Fatalf("grid has %d distinct compile fingerprints, want 2", len(distinct))
	}

	ResetCaches()
	before := CompileCount()
	if _, err := RunMany(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	if got := CompileCount() - before; got != uint64(len(distinct)) {
		t.Errorf("grid of %d cells compiled %d windows, want %d (one per distinct plan)",
			len(grid), got, len(distinct))
	}
}

// TestCompileFingerprintSplit pins which fields are extrapolation-only:
// Images and WeakScaling must not perturb the compile fingerprint, while
// compile-phase fields (batch, GPUs, method, faults...) must.
func TestCompileFingerprintSplit(t *testing.T) {
	base := Workload{Model: "lenet", GPUs: 2, Batch: 16, Images: 8192}
	key := base.CompileFingerprint()

	images := base
	images.Images = 256 * 1024
	if images.CompileFingerprint() != key {
		t.Error("Images perturbed the compile fingerprint; it only scales extrapolation")
	}
	weak := base
	weak.WeakScaling = true
	if weak.CompileFingerprint() != key {
		t.Error("WeakScaling perturbed the compile fingerprint; it only scales extrapolation")
	}
	for name, mutate := range map[string]func(*Workload){
		"Batch":  func(w *Workload) { w.Batch = 32 },
		"GPUs":   func(w *Workload) { w.GPUs = 4 },
		"Method": func(w *Workload) { w.Method = P2P },
	} {
		w := base
		mutate(&w)
		if w.CompileFingerprint() == key {
			t.Errorf("%s did not perturb the compile fingerprint; it shapes the compiled window", name)
		}
	}
}

// TestRunEachStreams pins the streaming batch entry point: reports
// arrive in input order, match Run byte for byte, and a callback error
// stops the run where it stands.
func TestRunEachStreams(t *testing.T) {
	ws := []Workload{
		{Model: "lenet", GPUs: 2, Batch: 16, Images: 8192},
		{Model: "alexnet", GPUs: 2, Batch: 16, Images: 8192},
		{Model: "lenet", GPUs: 2, Batch: 16, Images: 8192},
	}
	var seen []int
	err := RunEach(context.Background(), ws, func(i int, r *Report) error {
		seen = append(seen, i)
		single, err := Run(ws[i])
		if err != nil {
			return err
		}
		if got, want := string(reportJSON(t, r)), string(reportJSON(t, single)); got != want {
			t.Errorf("workload %d: RunEach report differs from Run", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Fatalf("RunEach delivered %v, want [0 1 2]", seen)
	}

	sentinel := errors.New("stop here")
	calls := 0
	err = RunEach(context.Background(), ws, func(int, *Report) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("RunEach error = %v, want the callback's sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after returning an error, want 1", calls)
	}
}

// TestCacheEviction bounds the FIFO cache: old entries leave, and an
// evicted configuration recompiles correctly.
func TestCacheEviction(t *testing.T) {
	c := newArtifactCache(2)
	a := c.entry("a")
	c.entry("b")
	c.entry("c") // evicts a
	if got := c.entry("a"); got == a {
		t.Error("evicted entry was resurrected instead of recreated")
	}
	if len(c.entries) > 2 {
		t.Errorf("cache holds %d entries, limit 2", len(c.entries))
	}
}
