// Compile-once, simulate-many: this file is the compiled-workload
// artifact layer. Simulating a workload splits into a compile phase
// (build the model graph, lower the FP/BP kernel plans, run the
// discrete-event simulation of the setup window and the handful of
// exactly-simulated iterations — all captured as a train.Window) and an
// extrapolation phase (pure arithmetic projecting the window onto the
// epoch). The compile phase is memoized here, keyed off the Fingerprint
// machinery restricted to plan-relevant fields, and shared by Run,
// RunContext, Compare, RunMany, the experiments sweeps, and the dgxsimd
// pool workers. The simulator is deterministic, so a cached window
// reproduces a cold run byte for byte — both paths finalize through
// train.Window.Extrapolate.
package core

import (
	"fmt"
	"sync"

	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/train"
	"repro/internal/units"
)

// compiledEntry is one artifact slot: the once gates compilation so that
// concurrent requests for the same key simulate it exactly once (the
// losers block until the winner finishes, then share the window).
type compiledEntry struct {
	once sync.Once
	win  *train.Window
	err  error
}

// artifactCache memoizes compiled windows with FIFO eviction. Errors are
// cached too: the simulator is deterministic, so a configuration that
// fails to compile (an OOM batch size, say) fails identically every time.
type artifactCache struct {
	mu      sync.Mutex
	entries map[string]*compiledEntry
	order   []string
	limit   int
}

func newArtifactCache(limit int) *artifactCache {
	return &artifactCache{entries: make(map[string]*compiledEntry), limit: limit}
}

// entry returns the slot for a key, creating (and bounding) as needed.
func (c *artifactCache) entry(key string) *compiledEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e
	}
	e := &compiledEntry{}
	c.entries[key] = e
	c.order = append(c.order, key)
	for len(c.order) > c.limit {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	return e
}

func (c *artifactCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*compiledEntry)
	c.order = nil
}

// windows is the process-wide compiled-window cache. 512 distinct
// configurations comfortably covers the full paper sweep grid many times
// over while bounding a long-lived daemon's footprint.
var windows = newArtifactCache(512)

// layerStatCache memoizes LayerProfile's per-layer characterizations.
type layerStatKey struct {
	model string
	batch int
}

var layerStats = struct {
	mu sync.Mutex
	m  map[layerStatKey][]dnn.LayerStat
}{m: make(map[layerStatKey][]dnn.LayerStat)}

// ResetCaches drops every memoized artifact: compiled windows, layer
// profiles, and the built model zoo. Only benchmarks and tests that
// measure or exercise the cold path need it; servers never call it.
func ResetCaches() {
	windows.reset()
	layerStats.mu.Lock()
	layerStats.m = make(map[layerStatKey][]dnn.LayerStat)
	layerStats.mu.Unlock()
	models.ResetCache()
}

// windowCacheable reports whether the workload's schedule compiles to a
// train.Window. Asynchronous, model-parallel, and hybrid schedules have
// different extrapolation structures and always simulate in full (they
// still share the memoized model zoo and kernel plans).
func (w Workload) windowCacheable() bool {
	return !w.Async && !w.ModelParallel && !w.HybridOWT
}

// epochImages resolves the epoch's dataset size for a normalized workload.
func epochImages(w Workload) int64 {
	images := w.Images
	if w.WeakScaling {
		images *= int64(w.GPUs)
	}
	return images
}

// windowIters is the number of iterations the workload's window simulates
// exactly: SimIters capped by the epoch's iteration count (core always
// runs the default). It is the only epoch-size dependence the window
// retains, so it joins the artifact key.
func windowIters(w Workload) int64 {
	images := epochImages(w)
	per := int64(w.Batch) * int64(w.GPUs)
	iters := (images + per - 1) / per
	if n := int64(train.DefaultSimIters); iters > n {
		return n
	}
	return iters
}

// artifactKey identifies the compiled window a normalized workload maps
// to: the fingerprint restricted to plan-relevant fields — Images and
// WeakScaling only scale the extrapolation, so they are zeroed — plus the
// effective simulated-iteration count. Two workloads with the same key
// share one simulated window and differ only in finalization arithmetic.
func artifactKey(w Workload) string {
	c := w
	c.Images = 0
	c.WeakScaling = false
	return fmt.Sprintf("%s/n%d", c.Fingerprint(), windowIters(w))
}

// compiledWindow returns the (possibly cached) compiled window for a
// normalized, window-cacheable workload.
func compiledWindow(w Workload) (*train.Window, error) {
	e := windows.entry(artifactKey(w))
	e.once.Do(func() {
		cfg, err := trainConfig(w)
		if err != nil {
			e.err = err
			return
		}
		tr, err := train.New(cfg)
		if err != nil {
			e.err = err
			return
		}
		e.win, e.err = tr.SimulateWindow()
	})
	return e.win, e.err
}

// trainConfig lowers a normalized workload to the train layer's Config.
func trainConfig(w Workload) (train.Config, error) {
	cfg, err := train.NewConfig(w.Model, w.GPUs, w.Batch, w.Method)
	if err != nil {
		return train.Config{}, err
	}
	cfg.Images = epochImages(w)
	cfg.TensorCores = !w.DisableTensorCores
	cfg.Async = w.Async
	if w.ModelParallel {
		cfg.Parallelism = train.ModelParallel
		cfg.MicroBatches = w.MicroBatches
	}
	if w.HybridOWT {
		cfg.Parallelism = train.HybridOWT
	}
	cfg.NCCLTree = w.NCCLTree
	if w.BucketKB > 0 {
		cfg.BucketBytes = units.Bytes(w.BucketKB) * units.KB
	}
	cfg.Checkpointing = w.Checkpointing
	cfg.Winograd = w.Winograd
	cfg.DetailIntervals = w.TraceIntervals
	cfg.Faults = w.Faults
	return cfg, nil
}

// Simulate runs the workload through the artifact layer and returns the
// full train.Result (the Report is a stable summary of it; experiment
// sweeps need the result's extra fields). The workload must be valid; it
// is normalized here.
func Simulate(w Workload) (*train.Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return simulate(w.Normalize())
}

// simulate dispatches a normalized workload: window-cacheable schedules
// extrapolate a (possibly shared) compiled window; the rest run in full.
func simulate(w Workload) (*train.Result, error) {
	if w.windowCacheable() {
		win, err := compiledWindow(w)
		if err != nil {
			return nil, err
		}
		res, err := win.Extrapolate(epochImages(w))
		if err == nil {
			return res, nil
		}
		// The key construction makes a window/epoch mismatch unreachable,
		// but if it ever happens a full simulation is always correct.
	}
	cfg, err := trainConfig(w)
	if err != nil {
		return nil, err
	}
	tr, err := train.New(cfg)
	if err != nil {
		return nil, err
	}
	return tr.Run()
}
