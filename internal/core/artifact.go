// Compile-once, simulate-many: this file is the compiled-workload
// artifact layer. Simulating a workload splits into a compile phase
// (build the model graph, lower the FP/BP kernel plans, run the
// discrete-event simulation of the setup window and the handful of
// exactly-simulated iterations — all captured as a train.Window) and an
// extrapolation phase (pure arithmetic projecting the window onto the
// epoch). The compile phase is memoized here, keyed off the Fingerprint
// machinery restricted to plan-relevant fields, and shared by Run,
// RunContext, Compare, RunMany, the experiments sweeps, and the dgxsimd
// pool workers. The simulator is deterministic, so a cached window
// reproduces a cold run byte for byte — both paths finalize through
// train.Window.Extrapolate.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/train"
	"repro/internal/units"
)

// errCompileAborted marks a compile cancelled because every caller
// interested in its artifact went away. It is never cached and never
// escapes the artifact layer: live callers that race an abort retry with
// a fresh entry.
var errCompileAborted = errors.New("core: compile aborted: no interested callers remain")

// compiledEntry is one artifact slot: a singleflight with interest
// tracking, so concurrent requests for the same key simulate it exactly
// once (the losers wait for the winner, then share the window). The
// first arriver starts the compile on a dedicated goroutine; callers
// whose context ends stop waiting immediately while the compile keeps
// running for the rest. When the last interested caller cancels, the
// compile itself is aborted at its next iteration boundary — an
// abandoned request stops burning CPU — and the slot is dropped so a
// future request compiles afresh. Deterministic failures (an OOM batch
// size, say) stay cached; cancellation never does.
type compiledEntry struct {
	mu       sync.Mutex
	started  bool
	finished bool
	aborted  bool
	refs     int           // callers currently awaiting the artifact
	abort    chan struct{} // closed when refs drops to 0 before finish
	done     chan struct{} // closed when the compile goroutine finishes
	win      *train.Window
	err      error
}

func newCompiledEntry() *compiledEntry {
	return &compiledEntry{abort: make(chan struct{}), done: make(chan struct{})}
}

// await joins the entry's flight: it starts the compile if this caller
// is first, then waits for the artifact or the caller's context, whichever
// ends first. A caller that stops waiting drops its interest; the last
// one out aborts the compile.
func (e *compiledEntry) await(ctx context.Context, w Workload, key string) (*train.Window, error) {
	e.mu.Lock()
	e.refs++
	if !e.started {
		e.started = true
		go e.compile(w, key)
	}
	e.mu.Unlock()
	select {
	case <-e.done:
		e.leave()
		return e.win, e.err
	case <-ctx.Done():
		e.leave()
		return nil, ctx.Err()
	}
}

// leave drops one caller's interest; the last leaver of an unfinished
// compile aborts it.
func (e *compiledEntry) leave() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refs--
	if e.refs == 0 && !e.finished && !e.aborted {
		e.aborted = true
		close(e.abort)
	}
}

// cancelled is the trainer-facing probe: it fires once the flight has
// been abandoned by every caller.
func (e *compiledEntry) cancelled() error {
	select {
	case <-e.abort:
		return errCompileAborted
	default:
		return nil
	}
}

// compile builds the window on its own goroutine and publishes the
// outcome. An aborted compile removes its slot from the cache — the
// abort is a property of the departed callers, not of the workload, so
// the next request must get a fresh flight.
func (e *compiledEntry) compile(w Workload, key string) {
	win, err := buildWindow(w, e.cancelled)
	e.mu.Lock()
	e.win, e.err = win, err
	e.finished = true
	e.mu.Unlock()
	if err != nil && (errors.Is(err, errCompileAborted) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		windows.drop(key, e)
	}
	close(e.done)
}

// compiles counts compile phases actually executed (buildWindow calls)
// across the process's lifetime. With the artifact cache doing its job,
// a sweep's compile count equals its number of distinct compile-phase
// plans — the invariant the mega-sweep tests pin and /metrics exposes as
// dgxsimd_compile_windows_total.
var compiles atomic.Uint64

// CompileCount reports how many compile phases (train.Window builds)
// this process has run. It only ever grows; callers diff it around a
// workload batch to count the compiles the batch actually caused.
func CompileCount() uint64 { return compiles.Load() }

// buildWindow runs the compile phase: lower the config, build the
// trainer, and simulate the window with the cancellation probe installed.
func buildWindow(w Workload, check func() error) (*train.Window, error) {
	compiles.Add(1)
	cfg, err := trainConfig(w)
	if err != nil {
		return nil, err
	}
	tr, err := train.New(cfg)
	if err != nil {
		return nil, err
	}
	tr.SetCheck(check)
	return tr.SimulateWindow()
}

// artifactCache memoizes compiled windows with FIFO eviction. Errors are
// cached too: the simulator is deterministic, so a configuration that
// fails to compile (an OOM batch size, say) fails identically every time.
type artifactCache struct {
	mu      sync.Mutex
	entries map[string]*compiledEntry
	order   []string
	limit   int
}

func newArtifactCache(limit int) *artifactCache {
	return &artifactCache{entries: make(map[string]*compiledEntry), limit: limit}
}

// entry returns the slot for a key, creating (and bounding) as needed.
func (c *artifactCache) entry(key string) *compiledEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e
	}
	e := newCompiledEntry()
	c.entries[key] = e
	c.order = append(c.order, key)
	for len(c.order) > c.limit {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	return e
}

// drop removes a specific entry from the cache — only if the slot still
// holds that entry, so an aborted flight never evicts its replacement.
func (c *artifactCache) drop(key string, e *compiledEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[key]; !ok || cur != e {
		return
	}
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

func (c *artifactCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*compiledEntry)
	c.order = nil
}

// windows is the process-wide compiled-window cache. 512 distinct
// configurations comfortably covers the full paper sweep grid many times
// over while bounding a long-lived daemon's footprint.
var windows = newArtifactCache(512)

// layerStatCache memoizes LayerProfile's per-layer characterizations.
type layerStatKey struct {
	model string
	batch int
}

var layerStats = struct {
	mu sync.Mutex
	m  map[layerStatKey][]dnn.LayerStat
}{m: make(map[layerStatKey][]dnn.LayerStat)}

// ResetCaches drops every memoized artifact: compiled windows, layer
// profiles, and the built model zoo. Only benchmarks and tests that
// measure or exercise the cold path need it; servers never call it.
func ResetCaches() {
	windows.reset()
	layerStats.mu.Lock()
	layerStats.m = make(map[layerStatKey][]dnn.LayerStat)
	layerStats.mu.Unlock()
	models.ResetCache()
}

// windowCacheable reports whether the workload's schedule compiles to a
// train.Window. Asynchronous, model-parallel, and hybrid schedules have
// different extrapolation structures and always simulate in full (they
// still share the memoized model zoo and kernel plans).
func (w Workload) windowCacheable() bool {
	return !w.Async && !w.ModelParallel && !w.HybridOWT
}

// epochImages resolves the epoch's dataset size for a normalized workload.
func epochImages(w Workload) int64 {
	images := w.Images
	if w.WeakScaling {
		images *= int64(w.GPUs)
	}
	return images
}

// windowIters is the number of iterations the workload's window simulates
// exactly: SimIters capped by the epoch's iteration count (core always
// runs the default). It is the only epoch-size dependence the window
// retains, so it joins the artifact key.
func windowIters(w Workload) int64 {
	images := epochImages(w)
	per := int64(w.Batch) * int64(w.GPUs)
	iters := (images + per - 1) / per
	if n := int64(train.DefaultSimIters); iters > n {
		return n
	}
	return iters
}

// CompileFingerprint is the compile-phase half of the artifact key: the
// Fingerprint restricted to fields that shape the compiled train.Window.
// Extrapolation-only fields — Images and WeakScaling, which only scale
// the epoch arithmetic after the window exists — are canonicalized away,
// so every cell of a sweep that varies nothing but dataset size shares
// one compile fingerprint. It is exported so sweep planners (the service
// optimizer, mega-sweep tests) can predict how many compiles a grid
// costs without running it.
func (w Workload) CompileFingerprint() string {
	c := w
	c.Images = 0
	c.WeakScaling = false
	return c.Fingerprint()
}

// artifactKey identifies the compiled window a normalized workload maps
// to: the compile-phase fingerprint plus the effective simulated-
// iteration count (the one epoch-size dependence the window retains —
// see windowIters). Two workloads with the same key share one simulated
// window and differ only in finalization arithmetic.
func artifactKey(w Workload) string {
	return fmt.Sprintf("%s/n%d", w.CompileFingerprint(), windowIters(w))
}

// compiledWindow returns the (possibly cached) compiled window for a
// normalized, window-cacheable workload, waiting no longer than the
// context allows. A caller that arrives after a flight was aborted (its
// callers all cancelled) retries on a fresh entry — cancellation is a
// property of requests, never of the workload, so it must not stick to
// the cache.
func compiledWindow(ctx context.Context, w Workload) (*train.Window, error) {
	key := artifactKey(w)
	for {
		e := windows.entry(key)
		win, err := e.await(ctx, w, key)
		if err == nil || !errors.Is(err, errCompileAborted) {
			return win, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// The flight this caller joined was abandoned and dropped; loop
		// to join (or start) a fresh one.
	}
}

// trainConfig lowers a normalized workload to the train layer's Config.
func trainConfig(w Workload) (train.Config, error) {
	cfg, err := train.NewConfig(w.Model, w.GPUs, w.Batch, w.Method)
	if err != nil {
		return train.Config{}, err
	}
	cfg.Images = epochImages(w)
	cfg.TensorCores = !w.DisableTensorCores
	cfg.Async = w.Async
	if w.ModelParallel {
		cfg.Parallelism = train.ModelParallel
		cfg.MicroBatches = w.MicroBatches
	}
	if w.HybridOWT {
		cfg.Parallelism = train.HybridOWT
	}
	cfg.NCCLTree = w.NCCLTree
	if w.BucketKB > 0 {
		cfg.BucketBytes = units.Bytes(w.BucketKB) * units.KB
	}
	cfg.Checkpointing = w.Checkpointing
	cfg.Winograd = w.Winograd
	cfg.DetailIntervals = w.TraceIntervals
	cfg.Faults = w.Faults
	cfg.Hardware = w.Hardware
	cfg.Protocol = w.Protocol
	return cfg, nil
}

// Simulate runs the workload through the artifact layer and returns the
// full train.Result (the Report is a stable summary of it; experiment
// sweeps need the result's extra fields). The workload must be valid; it
// is normalized here.
func Simulate(w Workload) (*train.Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return simulate(w.Normalize())
}

// SimulateContext is Simulate honouring cancellation and deadlines, with
// the same cooperative semantics as RunContext (checks between pipeline
// stages and simulated iterations; shared compile flights abort when the
// last interested caller leaves). Callers that need the full
// train.Result — the cluster scheduler pricing job service times, say —
// use this instead of wrapping RunContext's summary Report.
func SimulateContext(ctx context.Context, w Workload) (*train.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return simulateCtx(ctx, w.Normalize())
}

// simulate dispatches a normalized workload on the caller's goroutine
// with no cancellation (the Run entry point).
func simulate(w Workload) (*train.Result, error) {
	return simulateCtx(context.Background(), w)
}

// simulateCtx dispatches a normalized workload: window-cacheable
// schedules extrapolate a (possibly shared) compiled window; the rest
// run in full on the caller's goroutine. Cancellation is honoured at
// every stage boundary — before compiling, while waiting on a shared
// compile flight, between simulated iterations (via the trainer's
// probe), and before extrapolating — so an abandoned request stops
// consuming CPU promptly instead of simulating its whole epoch first.
func simulateCtx(ctx context.Context, w Workload) (*train.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if w.windowCacheable() {
		win, err := compiledWindow(ctx, w)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := win.Extrapolate(epochImages(w))
		if err == nil {
			return res, nil
		}
		// The key construction makes a window/epoch mismatch unreachable,
		// but if it ever happens a full simulation is always correct.
	}
	cfg, err := trainConfig(w)
	if err != nil {
		return nil, err
	}
	tr, err := train.New(cfg)
	if err != nil {
		return nil, err
	}
	if ctx.Done() != nil {
		tr.SetCheck(ctx.Err)
	}
	return tr.Run()
}
