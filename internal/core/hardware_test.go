package core

import (
	"errors"
	"testing"

	"repro/internal/faults"
)

// The two new axes must key the cache separately — same workload on
// different hardware (or protocol) must never share a fingerprint, and
// the canonical defaults must still collapse.
func TestHardwareProtocolFingerprintSeparation(t *testing.T) {
	base := Workload{Model: "alexnet", GPUs: 8, Batch: 16, Method: NCCL}
	dgx1 := base
	dgx1.Hardware = "dgx1"
	simple := base
	simple.Protocol = "simple"
	if base.Fingerprint() != dgx1.Fingerprint() {
		t.Error("implicit and explicit dgx1 should share a fingerprint")
	}
	if base.Fingerprint() != simple.Fingerprint() {
		t.Error("implicit and explicit simple protocol should share a fingerprint")
	}

	seen := map[string]string{base.Fingerprint(): "base"}
	for _, hw := range []string{"dgx1-pascal", "dgx2", "dgx-a100", "dgx-h100"} {
		w := base
		w.Hardware = hw
		fp := w.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("hardware %q collides with %s", hw, prev)
		}
		seen[fp] = "hardware " + hw
	}
	for _, proto := range []string{"ll", "ll128", "auto"} {
		w := base
		w.Protocol = proto
		fp := w.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("protocol %q collides with %s", proto, prev)
		}
		seen[fp] = "protocol " + proto
	}
}

// End-to-end cache hygiene: simulating the same model across hardware
// generations produces different results (no cross-serving), while
// re-simulating one configuration reproduces it exactly.
func TestCacheNeverCrossServesHardware(t *testing.T) {
	run := func(hw, proto string) *Report {
		t.Helper()
		r, err := Run(Workload{Model: "alexnet", GPUs: 8, Batch: 16, Method: NCCL,
			Hardware: hw, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	dgx1 := run("", "")
	dgx2 := run("dgx2", "")
	if dgx1.EpochTime == dgx2.EpochTime {
		t.Error("dgx1 and dgx2 reports share an epoch time — the cache cross-served")
	}
	ll := run("dgx2", "ll")
	if ll.EpochTime == dgx2.EpochTime {
		t.Error("simple and ll reports share an epoch time — the cache cross-served")
	}
	again := run("dgx2", "")
	if again.EpochTime != dgx2.EpochTime || again.Workload.Fingerprint() != dgx2.Workload.Fingerprint() {
		t.Error("re-running the same configuration should reproduce it exactly")
	}
}

// Validate resolves capacity from the named machine and rejects the
// contradictory combinations with the documented errors.
func TestValidateHardwareAxis(t *testing.T) {
	ok := Workload{Model: "resnet", GPUs: 16, Batch: 16, Hardware: "dgx2"}
	if err := ok.Validate(); err != nil {
		t.Errorf("16 GPUs on dgx2: %v", err)
	}
	over := ok
	over.GPUs = 17
	if err := over.Validate(); err == nil {
		t.Error("17 GPUs on dgx2 accepted")
	}
	unknown := ok
	unknown.Hardware = "dgx-3000"
	if err := unknown.Validate(); err == nil {
		t.Error("unknown hardware accepted")
	}

	faulted := Workload{Model: "lenet", GPUs: 4, Batch: 16, Hardware: "dgx2",
		Faults: &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}}}}
	err := faulted.Validate()
	if err == nil {
		t.Fatal("fault plan on dgx2 accepted")
	}
	if !errors.Is(err, faults.ErrHardwareMismatch) {
		t.Errorf("error %q should wrap faults.ErrHardwareMismatch", err)
	}

	auto := Workload{Model: "lenet", GPUs: 4, Batch: 16, Protocol: "auto", NCCLTree: true}
	if err := auto.Validate(); err == nil {
		t.Error("auto protocol + pinned tree accepted")
	}
	badProto := Workload{Model: "lenet", GPUs: 4, Batch: 16, Protocol: "ll256"}
	if err := badProto.Validate(); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// The catalog the /v1/hardware endpoint serves: every registered machine
// with the default marked, plus the protocol ladder.
func TestHardwareCatalog(t *testing.T) {
	opts := Hardware()
	if len(opts) != 5 {
		t.Fatalf("catalog has %d machines, want 5: %v", len(opts), HardwareNames())
	}
	defaults := 0
	for _, o := range opts {
		if o.Name == "" || o.Title == "" || o.GPUs < 1 || o.GPU == "" || o.Interconnect == "" {
			t.Errorf("catalog entry incomplete: %+v", o)
		}
		if o.Default {
			defaults++
			if o.Name != "dgx1" {
				t.Errorf("default machine is %q, want dgx1", o.Name)
			}
		}
	}
	if defaults != 1 {
		t.Errorf("%d default machines, want exactly 1", defaults)
	}
	if got := Protocols(); len(got) != 4 {
		t.Errorf("protocols = %v, want the 4-step ladder", got)
	}
}
