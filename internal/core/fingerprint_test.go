package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestFingerprintCoversEveryField perturbs each exported Workload field
// in turn and asserts the fingerprint changes. If a future field is
// added to Workload and (somehow) escapes the canonical encoding, this
// test fails — the guard against silently serving stale cached results.
func TestFingerprintCoversEveryField(t *testing.T) {
	base := Workload{Model: "lenet", GPUs: 2, Batch: 16, Method: NCCL, Images: 1000}
	baseFP := base.Fingerprint()
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		t.Run(f.Name, func(t *testing.T) {
			w := base
			fv := reflect.ValueOf(&w).Elem().Field(i)
			perturb(t, f.Name, fv)
			if got := w.Fingerprint(); got == baseFP {
				t.Errorf("perturbing %s did not change the fingerprint", f.Name)
			}
		})
	}
}

// perturb sets a field to a value distinct from the base workload's and
// from the canonicalized defaults (NCCL method, paper dataset size).
func perturb(t *testing.T, name string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.String:
		v.SetString(v.String() + "-perturbed")
	case reflect.Int, reflect.Int64:
		v.SetInt(v.Int() + 977)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Pointer:
		switch v.Interface().(type) {
		case *faults.Plan:
			v.Set(reflect.ValueOf(&faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}}}))
		default:
			t.Fatalf("field %s has pointer type %v; teach perturb about it", name, v.Type())
		}
	default:
		t.Fatalf("field %s has kind %v; teach perturb about it", name, v.Kind())
	}
}

// Workloads Run treats identically must share a fingerprint.
func TestFingerprintCanonicalizesDefaults(t *testing.T) {
	zero := Workload{Model: "lenet", GPUs: 2, Batch: 16}
	explicit := Workload{Model: "lenet", GPUs: 2, Batch: 16, Method: NCCL, Images: 256 * 1024}
	if zero.Fingerprint() != explicit.Fingerprint() {
		t.Error("zero Method/Images should fingerprint like the explicit defaults")
	}
	p2p := explicit
	p2p.Method = P2P
	if p2p.Fingerprint() == explicit.Fingerprint() {
		t.Error("p2p and nccl workloads must not collide")
	}
}

func TestFingerprintIsStableAcrossCalls(t *testing.T) {
	w := Workload{Model: "resnet", GPUs: 8, Batch: 32, Method: P2P, Async: true}
	if w.Fingerprint() != w.Fingerprint() {
		t.Error("fingerprint must be deterministic")
	}
	if len(w.Fingerprint()) != 64 {
		t.Errorf("fingerprint %q should be a sha256 hex digest", w.Fingerprint())
	}
}

func TestRunContext(t *testing.T) {
	r, err := RunContext(context.Background(), Workload{Model: "lenet", GPUs: 1, Batch: 16})
	if err != nil || r == nil {
		t.Fatalf("RunContext = %v, %v", r, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, Workload{Model: "lenet", GPUs: 1, Batch: 16}); err != context.Canceled {
		t.Errorf("cancelled RunContext = %v, want context.Canceled", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	if _, err := RunContext(ctx2, Workload{Model: "inception-v3", GPUs: 8, Batch: 16}); err == nil {
		t.Error("expired deadline should abort RunContext")
	}
}

func ExampleWorkload_Fingerprint() {
	a := Workload{Model: "lenet", GPUs: 4, Batch: 16}
	b := Workload{Model: "lenet", GPUs: 4, Batch: 16, Method: NCCL}
	fmt.Println(a.Fingerprint() == b.Fingerprint())
	// Output: true
}
