package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// ExampleRun simulates one training epoch and inspects the breakdown.
func ExampleRun() {
	report, err := core.Run(core.Workload{
		Model:  "lenet",
		GPUs:   4,
		Batch:  16,
		Method: core.P2P,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Iterations, "iterations")
	fmt.Println(report.EpochTime > 0, report.FPBP > 0, report.WU > 0)
	// Output:
	// 4096 iterations
	// true true true
}

// ExampleCompare answers the paper's central question for one workload.
func ExampleCompare() {
	reports, err := core.Compare(core.Workload{Model: "lenet", GPUs: 4, Batch: 16})
	if err != nil {
		log.Fatal(err)
	}
	// Compare orders its reports P2P first, then NCCL.
	if reports[0].Report.EpochTime < reports[1].Report.EpochTime {
		fmt.Println("P2P wins for LeNet")
	} else {
		fmt.Println("NCCL wins for LeNet")
	}
	// Output:
	// P2P wins for LeNet
}

// ExampleEstimateMemory probes the 16 GB wall without running a simulation.
func ExampleEstimateMemory() {
	est, err := core.EstimateMemory("inception-v3", 64, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPU0 needs more than 10 GiB: %v\n", est.Root().GiB() > 10)
	// Output:
	// GPU0 needs more than 10 GiB: true
}

// ExampleLayerProfile finds a network's most expensive layer.
func ExampleLayerProfile() {
	stats, err := core.LayerProfile("alexnet", 64)
	if err != nil {
		log.Fatal(err)
	}
	top := stats[0]
	for _, s := range stats {
		if s.Total() > top.Total() {
			top = s
		}
	}
	fmt.Println("most expensive layer:", top.Name)
	// Output:
	// most expensive layer: conv2
}
