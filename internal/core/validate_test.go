package core

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	ok := Workload{Model: "lenet", GPUs: 2, Batch: 16}
	cases := []struct {
		name string
		mut  func(w *Workload)
		want string // substring of the error; empty = valid
	}{
		{"valid", func(w *Workload) {}, ""},
		{"valid zero method", func(w *Workload) { w.Method = "" }, ""},
		{"valid local method", func(w *Workload) { w.Method = "local" }, ""},
		{"no model", func(w *Workload) { w.Model = "" }, "no model specified"},
		{"unknown model", func(w *Workload) { w.Model = "vgg" }, `unknown model "vgg"`},
		{"zero gpus", func(w *Workload) { w.GPUs = 0 }, "GPU count 0 out of range"},
		{"nine gpus", func(w *Workload) { w.GPUs = 9 }, "GPU count 9 out of range"},
		{"zero batch", func(w *Workload) { w.Batch = 0 }, "batch size 0 must be positive"},
		{"negative batch", func(w *Workload) { w.Batch = -4 }, "batch size -4"},
		{"bad method", func(w *Workload) { w.Method = "mpi" }, `unknown method "mpi"`},
		{"negative images", func(w *Workload) { w.Images = -1 }, "images per epoch -1"},
		{"async default method", func(w *Workload) { w.Async = true }, "async SGD requires the p2p method"},
		{"async nccl", func(w *Workload) { w.Method = NCCL; w.Async = true }, "async SGD requires the p2p method"},
		{"async p2p ok", func(w *Workload) { w.Method = P2P; w.Async = true }, ""},
		{"async model parallel", func(w *Workload) {
			w.Method = P2P
			w.Async = true
			w.ModelParallel = true
		}, "async SGD supports only data parallelism"},
		{"mp and hybrid", func(w *Workload) { w.ModelParallel = true; w.HybridOWT = true }, "mutually exclusive"},
		{"hybrid p2p", func(w *Workload) { w.Method = P2P; w.HybridOWT = true }, "hybrid parallelism requires the nccl method"},
		{"hybrid default method ok", func(w *Workload) { w.Model = "alexnet"; w.HybridOWT = true }, ""},
		{"hybrid one gpu", func(w *Workload) { w.GPUs = 1; w.HybridOWT = true }, "at least 2 GPUs"},
		{"negative micro-batches", func(w *Workload) { w.ModelParallel = true; w.MicroBatches = -1 }, "micro-batch count -1"},
		{"micro-batches without mp", func(w *Workload) { w.MicroBatches = 4 }, "micro-batches apply only to model-parallel"},
		{"micro-batches with mp ok", func(w *Workload) { w.ModelParallel = true; w.MicroBatches = 4 }, ""},
		{"negative bucket", func(w *Workload) { w.BucketKB = -1 }, "bucket size -1"},
		{"negative trace intervals", func(w *Workload) { w.TraceIntervals = -1 }, "trace interval count -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := ok
			tc.mut(&w)
			err := w.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// Run must reject what Validate rejects, with the same text — the CLI
// and the service lean on this to agree at every entry point.
func TestRunUsesValidate(t *testing.T) {
	w := Workload{Model: "lenet", GPUs: 12, Batch: 16}
	_, runErr := Run(w)
	valErr := w.Validate()
	if runErr == nil || valErr == nil {
		t.Fatalf("Run err %v, Validate err %v; both should fail", runErr, valErr)
	}
	if runErr.Error() != valErr.Error() {
		t.Errorf("Run error %q differs from Validate error %q", runErr, valErr)
	}
}
