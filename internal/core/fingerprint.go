package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Fingerprint returns a deterministic key identifying the simulation a
// workload describes. Workloads that Run treats identically map to the
// same key: the struct is canonicalized through Normalize (zero Method
// becomes NCCL, zero Images the paper's dataset size) before hashing.
//
// The hash covers the canonical JSON encoding of the whole struct, so
// any exported field added to Workload automatically perturbs the key —
// a stale cache cannot survive a Workload extension unnoticed (the
// perturbation test in fingerprint_test.go enforces this).
//
// The simulator is fully deterministic (seeded jitter), which makes
// memoization by fingerprint exact, not approximate.
func (w Workload) Fingerprint() string {
	b, err := json.Marshal(w.Normalize())
	if err != nil {
		// Workload is a plain struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("core: marshal workload: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
