package core

import (
	"testing"

	"repro/internal/data"
)

func TestNormalizeDefaults(t *testing.T) {
	n := Workload{Model: "lenet", GPUs: 2, Batch: 16}.Normalize()
	if n.Method != NCCL {
		t.Errorf("Method = %q, want nccl", n.Method)
	}
	if n.Images != data.PaperDatasetImages {
		t.Errorf("Images = %d, want the paper's %d", n.Images, data.PaperDatasetImages)
	}
}

func TestNormalizePreservesExplicitValues(t *testing.T) {
	w := Workload{Model: "resnet", GPUs: 4, Batch: 32, Method: P2P, Images: 1234, NCCLTree: true, Hardware: "dgx1", Protocol: "simple"}
	if n := w.Normalize(); n != w {
		t.Errorf("Normalize changed an already-explicit workload: %+v -> %+v", w, n)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	n := Workload{Model: "lenet", GPUs: 2, Batch: 16}.Normalize()
	if n2 := n.Normalize(); n2 != n {
		t.Errorf("Normalize not idempotent: %+v -> %+v", n, n2)
	}
}

// TestFingerprintNormalizeAgreement pins the contract the service cache
// and the artifact cache both lean on: a workload and its normalized
// form hash identically, so spelled-out defaults and omitted ones share
// one cache slot.
func TestFingerprintNormalizeAgreement(t *testing.T) {
	for _, w := range []Workload{
		{Model: "lenet", GPUs: 2, Batch: 16},
		{Model: "resnet", GPUs: 8, Batch: 64, Method: P2P},
		{Model: "alexnet", GPUs: 4, Batch: 32, WeakScaling: true},
	} {
		if got, want := w.Fingerprint(), w.Normalize().Fingerprint(); got != want {
			t.Errorf("Fingerprint(%+v) = %s, but normalized = %s", w, got, want)
		}
	}
}
