// Package core is the library's top-level API: describe a DNN training
// workload, run it on the simulated Volta DGX-1, and read back the
// measurements the paper reports — epoch time, FP+BP/WU breakdown, memory
// usage, CUDA-API overheads, and method comparisons.
//
// It is a thin, stable facade over the simulation stack (train, kvstore,
// nccl, p2p, cuda, gpu, interconnect, topology, sim); programs needing
// finer control use those packages directly.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/dnn"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/kvstore"
	"repro/internal/memmodel"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/train"
)

// Method names a communication method.
type Method = kvstore.Method

// Communication methods.
const (
	P2P  = kvstore.MethodP2P
	NCCL = kvstore.MethodNCCL
)

// Workload describes one training configuration.
type Workload struct {
	// Model is a zoo name: lenet, alexnet, googlenet, inception-v3, resnet.
	Model string
	// GPUs is the device count (1..8).
	GPUs int
	// Batch is the per-GPU mini-batch size.
	Batch int
	// Method is the communication method (default NCCL).
	Method Method
	// Images per epoch (default: the paper's 256K).
	Images int64
	// WeakScaling grows the dataset by the GPU count.
	WeakScaling bool
	// TensorCores toggles the tensor-core lowering (default on via Run).
	DisableTensorCores bool
	// Async switches to asynchronous SGD (P2P only).
	Async bool
	// ModelParallel partitions layers across GPUs (pipelined with
	// micro-batches) instead of replicating the model.
	ModelParallel bool
	// HybridOWT data-parallelizes the conv body and tensor-parallelizes
	// the FC head ("one weird trick"); requires NCCL and >= 2 GPUs.
	HybridOWT bool
	// MicroBatches tunes the model-parallel pipeline depth (default 4x
	// the stage count).
	MicroBatches int
	// NCCLTree uses NCCL's double-binary-tree algorithm instead of rings.
	NCCLTree bool
	// BucketKB fuses gradient arrays into buckets of at least this many
	// KiB before exchange (0 = per-array, the paper-era behaviour).
	BucketKB int
	// Checkpointing trades one extra forward pass for sqrt-N activation
	// memory (unlocks batch sizes past the paper's OOM wall).
	Checkpointing bool
	// Winograd lowers eligible 3x3 convolutions via the Winograd
	// transform.
	Winograd bool
	// TraceIntervals retains up to this many profiler intervals for
	// timeline export.
	TraceIntervals int
	// Faults injects a degraded-fabric plan — failed NVLink bricks,
	// per-link bandwidth degradation, straggler GPUs, PCIe contention —
	// into the simulated DGX-1 (see internal/faults). Nil is the healthy
	// machine. The plan is part of the workload's identity: it joins the
	// Fingerprint, so faulted runs never alias healthy ones in any cache.
	Faults *faults.Plan `json:"faults,omitempty"`
	// Hardware names the machine to simulate: "dgx1" (default, the
	// paper's system), "dgx1-pascal", "dgx2", "dgx-a100", or "dgx-h100".
	// It resolves to a (topology, GPU spec) pair and joins the
	// Fingerprint, so runs on different machines never share cache slots.
	// Fault plans name DGX-1 bricks, so Faults requires dgx1 hardware.
	Hardware string
	// Protocol selects the NCCL transfer protocol: "simple" (default, the
	// paper-era behavior), "ll", "ll128", or "auto" (NCCL's tuner: picks
	// protocol and ring-vs-tree algorithm per collective by message size
	// and fabric). Ignored by the p2p method. "auto" conflicts with
	// NCCLTree, which pins the algorithm.
	Protocol string
}

// Report is the outcome of one simulated epoch. It marshals to JSON for
// external analysis (durations in nanoseconds; the profile is omitted —
// export timelines with Profile.ExportChromeTrace).
type Report struct {
	Workload   Workload `json:"workload"`
	Iterations int64    `json:"iterations"`

	EpochTime  time.Duration `json:"epochTimeNs"`
	SteadyIter time.Duration `json:"steadyIterNs"`
	Throughput float64       `json:"imagesPerSecond"`

	// Stage breakdown (per epoch).
	FPBP time.Duration `json:"fpbpNs"`
	WU   time.Duration `json:"wuNs"`

	// Memory per GPU.
	Memory memmodel.Estimate `json:"memory"`

	// CUDA-API view.
	SyncPercent        float64 `json:"syncPercent"`
	ComputeUtilization float64 `json:"computeUtilization"`

	// Profile gives full access to kernel/API/transfer accounting.
	Profile *profiler.Profile `json:"-"`
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Run simulates one epoch of the workload. The first run of a
// configuration compiles it — builds the model graph and kernel plans and
// simulates the steady-state window — and memoizes the compiled artifact;
// repeat runs (any entry point, any Images value sharing the window)
// reuse it and only redo the extrapolation arithmetic, producing
// byte-identical reports. The echoed Report.Workload is normalized
// (explicit Method and Images).
func Run(w Workload) (*Report, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	w = w.Normalize()
	res, err := simulate(w)
	if err != nil {
		return nil, err
	}
	return newReport(w, res), nil
}

// newReport summarizes a train.Result as the stable Report — the one
// finalization every entry point (Run, RunContext, Compare) shares.
func newReport(w Workload, res *train.Result) *Report {
	return &Report{
		Workload:           w,
		Iterations:         res.Iterations,
		EpochTime:          res.EpochTime,
		SteadyIter:         res.SteadyIter,
		Throughput:         res.Throughput,
		FPBP:               res.FPBPWall(),
		WU:                 res.WUWall,
		Memory:             res.Memory,
		SyncPercent:        res.SyncPercent,
		ComputeUtilization: res.ComputeUtilization,
		Profile:            res.Profile,
	}
}

// RunEach is the streaming variant of RunMany: it simulates the
// workloads in order and hands each report to fn as soon as it is
// finalized, retaining nothing — the caller owns whatever buffering it
// wants, so a 10k-cell sweep can flush results as it goes instead of
// holding an O(n) slice. Compiled artifacts are shared across the run
// exactly as in RunMany. It stops at the first simulation error
// (annotated with the workload's index), the first error fn returns
// (returned verbatim), or when the context is done.
func RunEach(ctx context.Context, ws []Workload, fn func(i int, r *Report) error) error {
	for i, w := range ws {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, err := RunContext(ctx, w)
		if err != nil {
			return fmt.Errorf("core: workload %d: %w", i, err)
		}
		if err := fn(i, r); err != nil {
			return err
		}
	}
	return nil
}

// RunMany simulates the workloads in order, sharing compiled artifacts
// across them — a sweep over Images, or repeated configurations, compiles
// each distinct window once. It stops at the first error (annotated with
// the workload's index) or when the context is done. Reports align with
// ws. Callers wanting bounded parallel fan-out use the service pool; the
// artifact cache is concurrency-safe either way. Callers that do not need
// the whole slice at once use RunEach.
func RunMany(ctx context.Context, ws []Workload) ([]*Report, error) {
	out := make([]*Report, len(ws))
	err := RunEach(ctx, ws, func(i int, r *Report) error {
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunContext simulates one epoch of the workload, honouring cancellation
// and deadlines. Cancellation is cooperative but real: the context is
// checked between pipeline stages and between simulated iterations, so
// an abandoned request's simulation aborts within an iteration boundary
// instead of finishing its epoch in the background. A compile shared
// with other in-flight callers (the artifact cache's singleflight) keeps
// running as long as any caller still wants it; when the last one
// cancels, the compile is aborted too — and a cancelled compile is never
// cached, so the next request simulates afresh.
//
// When the context carries a request trace (internal/obs), the run
// records a "core.Run <model>" span into it, so service-layer timelines
// attribute the simulation to its workload without the caller doing
// anything.
func RunContext(ctx context.Context, w Workload) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer obs.FromContext(ctx).StartSpan("core.Run " + w.Model)()
	if err := w.Validate(); err != nil {
		return nil, err
	}
	w = w.Normalize()
	res, err := simulateCtx(ctx, w)
	if err != nil {
		return nil, err
	}
	return newReport(w, res), nil
}

// MethodReport pairs one communication method with its report, in
// Compare's fixed order.
type MethodReport struct {
	Method Method  `json:"method"`
	Report *Report `json:"report"`
}

// Compare runs the workload under both communication methods and returns
// the reports in a fixed order: P2P first, then NCCL. (An earlier version
// returned a map, whose iteration order leaked nondeterminism into JSON
// encodings and ranges over the result.)
func Compare(w Workload) ([]MethodReport, error) {
	out := make([]MethodReport, 0, 2)
	for _, m := range []Method{P2P, NCCL} {
		wm := w
		wm.Method = m
		r, err := Run(wm)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", m, err)
		}
		out = append(out, MethodReport{Method: m, Report: r})
	}
	return out, nil
}

// Models lists the available model names.
func Models() []string { return models.Names() }

// Describe returns the zoo description of a model.
func Describe(model string) (models.Description, error) {
	return models.ByName(model)
}

// LayerProfile returns the analytical per-layer FP/BP characterization of
// a model at a batch size on the default V100 (the layer-by-layer view of
// the profiling work the paper cites). Characterizations are memoized per
// (model, batch); the returned slice is a fresh copy the caller may sort
// or modify.
func LayerProfile(model string, batch int) ([]dnn.LayerStat, error) {
	key := layerStatKey{model: model, batch: batch}
	layerStats.mu.Lock()
	cached, ok := layerStats.m[key]
	layerStats.mu.Unlock()
	if !ok {
		d, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		cached = dnn.ProfileLayers(d.Net, batch, gpu.V100(), dnn.PlanOptions{TensorCores: true})
		layerStats.mu.Lock()
		layerStats.m[key] = cached
		layerStats.mu.Unlock()
	}
	return append([]dnn.LayerStat(nil), cached...), nil
}

// EstimateMemory returns the per-GPU memory estimate without running a
// simulation (multiGPU selects the parameter-server premium on GPU 0).
func EstimateMemory(model string, batch int, multiGPU bool) (memmodel.Estimate, error) {
	d, err := models.ByName(model)
	if err != nil {
		return memmodel.Estimate{}, err
	}
	return memmodel.Compute(d.Net, batch, multiGPU), nil
}

// Summary renders a one-paragraph textual summary of a report.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"%s on %d GPU(s), batch %d/GPU, %s: epoch %v (%d iterations, %.0f img/s); "+
			"FP+BP %v, exposed WU %v; GPU0 memory %.2f GiB; sync %.1f%%, utilization %.1f%%",
		r.Workload.Model, r.Workload.GPUs, r.Workload.Batch, r.Workload.Method,
		r.EpochTime.Round(time.Millisecond), r.Iterations, r.Throughput,
		r.FPBP.Round(time.Millisecond), r.WU.Round(time.Millisecond),
		r.Memory.Root().GiB(), r.SyncPercent, 100*r.ComputeUtilization)
}
