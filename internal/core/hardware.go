package core

import (
	"repro/internal/nccl"
	"repro/internal/train"
)

// HardwareOption describes one machine of the hardware registry as the
// API lists it (GET /v1/hardware, dgxsim -hardware help).
type HardwareOption struct {
	// Name is the workload spelling ("dgx1", "dgx2", ...).
	Name string `json:"name"`
	// Title is the prose name ("the DGX-1").
	Title string `json:"title"`
	// GPUs is the device count workload validation enforces.
	GPUs int `json:"gpus"`
	// GPU names the device model ("Tesla V100-SXM2-16GB").
	GPU string `json:"gpu"`
	// Interconnect describes the fabric in one line.
	Interconnect string `json:"interconnect"`
	// Default marks the machine an empty hardware field resolves to.
	Default bool `json:"default,omitempty"`
}

// Hardware lists the simulatable machines in display order (the paper's
// DGX-1 first).
func Hardware() []HardwareOption {
	ms := train.Machines()
	out := make([]HardwareOption, len(ms))
	for i, m := range ms {
		out[i] = HardwareOption{
			Name:         m.Name,
			Title:        m.Title,
			GPUs:         m.GPUs,
			GPU:          m.Spec().Name,
			Interconnect: m.Interconnect,
			Default:      m.Name == train.DefaultHardware,
		}
	}
	return out
}

// HardwareNames lists the accepted hardware spellings in display order.
func HardwareNames() []string { return train.MachineNames() }

// Protocols lists the accepted NCCL protocol spellings in display order.
func Protocols() []string { return nccl.ProtocolNames() }
