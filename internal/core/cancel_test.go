package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A context that is already dead must stop RunContext before any
// simulation work.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, Workload{Model: "lenet", GPUs: 1, Batch: 16}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on a dead context = %v, want context.Canceled", err)
	}
}

// A run cancelled mid-flight must never poison the artifact cache: the
// next caller with a live context gets a full, correct report — never a
// memoized context error, never a half-built window.
func TestCancelledRunNeverPoisonsArtifactCache(t *testing.T) {
	// A batch size no other test uses, so this test always compiles
	// fresh instead of hitting an artifact another test memoized.
	w := Workload{Model: "googlenet", GPUs: 4, Batch: 23, Images: 4096}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, w)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond) // land anywhere: mid-compile or already finished
	cancel()
	// Whichever way the race went, the only acceptable outcomes are a
	// clean result or the cancellation itself.
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext = %v, want nil or context.Canceled", err)
	}
	rep, err := RunContext(context.Background(), w)
	if err != nil {
		t.Fatalf("RunContext after a cancelled attempt = %v", err)
	}
	// The surviving artifact must be the real one: byte-identical to an
	// uncached-path Run of the same workload.
	ref, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EpochTime != ref.EpochTime || rep.Iterations != ref.Iterations {
		t.Errorf("post-cancel report diverges: epoch %v vs %v", rep.EpochTime, ref.EpochTime)
	}
}

// A compile shared by several in-flight callers keeps running while any
// of them still wants it: one caller cancelling must not fail the rest.
func TestSharedCompileSurvivesOneCallersCancel(t *testing.T) {
	w := Workload{Model: "googlenet", GPUs: 2, Batch: 29, Images: 4096} // fresh fingerprint
	cancelled, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 2)
	go func() {
		_, err := RunContext(cancelled, w)
		errs <- err
	}()
	go func() {
		_, err := RunContext(context.Background(), w)
		errs <- err
	}()
	time.Sleep(time.Millisecond)
	cancel()
	var live, dead int
	for i := 0; i < 2; i++ {
		switch err := <-errs; {
		case err == nil:
			live++
		case errors.Is(err, context.Canceled):
			dead++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if live < 1 {
		t.Errorf("%d callers succeeded; the uncancelled caller must not be failed by its neighbour", live)
	}
}
