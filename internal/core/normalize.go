package core

import (
	"repro/internal/data"
	"repro/internal/train"
)

// Normalize returns the workload with its defaulted fields made explicit:
// a zero Method becomes NCCL and zero Images becomes the paper's 256K
// dataset. Run, Fingerprint, and the service result cache all canonicalize
// through this one function, so "the same workload spelled differently"
// cannot diverge between entry points — two requests that Run treats
// identically normalize to identical structs, fingerprint to the same key,
// and echo the same workload in their reports.
//
// Normalize is idempotent and leaves every other field untouched; in
// particular WeakScaling stays a flag (the dataset multiplication happens
// at simulation time, so the flag remains visible in reports).
// The fault plan canonicalizes too (pairs ordered, lists sorted, no-op
// entries dropped, a healthy plan collapsing to nil), so every spelling
// of the same degraded fabric shares one fingerprint — and the healthy
// machine has exactly one.
// Hardware and Protocol normalize to their explicit default spellings
// ("dgx1", "simple"), so the machine and protocol are always visible in
// echoed workloads and always part of the fingerprint.
func (w Workload) Normalize() Workload {
	if w.Method == "" {
		w.Method = NCCL
	}
	if w.Images == 0 {
		w.Images = data.PaperDatasetImages
	}
	if w.Hardware == "" {
		w.Hardware = train.DefaultHardware
	}
	if w.Protocol == "" {
		w.Protocol = "simple"
	}
	w.Faults = w.Faults.Normalize()
	return w
}
