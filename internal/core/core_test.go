package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/obs"
)

func TestRunBasics(t *testing.T) {
	r, err := Run(Workload{Model: "lenet", GPUs: 2, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.EpochTime <= 0 || r.Throughput <= 0 {
		t.Fatal("empty report")
	}
	if r.Workload.Method != NCCL {
		t.Error("default method should be NCCL")
	}
	s := r.Summary()
	for _, want := range []string{"lenet", "2 GPU", "nccl"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func TestRunUnknownModel(t *testing.T) {
	if _, err := Run(Workload{Model: "vgg", GPUs: 1, Batch: 16}); err == nil {
		t.Error("unknown model should error")
	}
}

func TestRunOOM(t *testing.T) {
	_, err := Run(Workload{Model: "resnet", GPUs: 2, Batch: 256})
	if !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Errorf("expected OOM, got %v", err)
	}
}

func TestCompare(t *testing.T) {
	reps, err := Compare(Workload{Model: "lenet", GPUs: 4, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Report == nil || reps[1].Report == nil {
		t.Fatal("compare should return both methods")
	}
	// The order is part of the API: P2P first, then NCCL.
	if reps[0].Method != P2P || reps[1].Method != NCCL {
		t.Fatalf("compare order = [%s %s], want [p2p nccl]", reps[0].Method, reps[1].Method)
	}
	// The paper's finding for LeNet: P2P wins.
	if reps[0].Report.EpochTime >= reps[1].Report.EpochTime {
		t.Error("P2P should beat NCCL for LeNet")
	}
}

func TestWeakScalingWorkload(t *testing.T) {
	strong, err := Run(Workload{Model: "lenet", GPUs: 4, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Run(Workload{Model: "lenet", GPUs: 4, Batch: 16, WeakScaling: true})
	if err != nil {
		t.Fatal(err)
	}
	if weak.Iterations != 4*strong.Iterations {
		t.Errorf("weak iterations = %d, want 4x strong's %d", weak.Iterations, strong.Iterations)
	}
}

func TestModelsAndDescribe(t *testing.T) {
	names := Models()
	if len(names) != 5 {
		t.Fatalf("models = %v", names)
	}
	for _, n := range names {
		d, err := Describe(n)
		if err != nil || d.Net == nil {
			t.Errorf("Describe(%q): %v", n, err)
		}
	}
}

func TestEstimateMemory(t *testing.T) {
	e, err := EstimateMemory("alexnet", 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if e.Root() <= e.Worker() {
		t.Error("multi-GPU root should exceed worker")
	}
	if _, err := EstimateMemory("bogus", 64, true); err == nil {
		t.Error("unknown model should error")
	}
}

func TestTraceIntervalsFlowThrough(t *testing.T) {
	r, err := Run(Workload{Model: "lenet", GPUs: 2, Batch: 16, TraceIntervals: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Profile.Intervals()) == 0 {
		t.Error("trace intervals not retained")
	}
}

// RunContext must record its span into a request trace carried by the
// context — the hook the service's /v1/trace timelines rely on — and
// stay silent (not crash) when the context carries none.
func TestRunContextRecordsObsSpan(t *testing.T) {
	tr := obs.NewTrace("req1")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := RunContext(ctx, Workload{Model: "lenet", GPUs: 1, Batch: 16}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Dur("core.Run lenet"); got <= 0 {
		t.Errorf("core.Run span duration = %v, want > 0", got)
	}
	// No trace in context: still works.
	if _, err := RunContext(context.Background(), Workload{Model: "lenet", GPUs: 1, Batch: 16}); err != nil {
		t.Fatal(err)
	}
}

func TestDisableTensorCores(t *testing.T) {
	on, err := Run(Workload{Model: "resnet", GPUs: 1, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(Workload{Model: "resnet", GPUs: 1, Batch: 16, DisableTensorCores: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.EpochTime <= on.EpochTime {
		t.Error("disabling tensor cores should slow training")
	}
}
