package kvstore

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/interconnect"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

func newBackend(t *testing.T, method Method, n int) Backend {
	t.Helper()
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	devs := make([]topology.NodeID, n)
	for i := range devs {
		devs[i] = topology.NodeID(i)
	}
	rt, err := cuda.NewRuntime(fab, gpu.V100(), devs, cuda.DefaultCosts(), profiler.New())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(method, rt, devs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBothMethodsWork(t *testing.T) {
	for _, m := range []Method{MethodP2P, MethodNCCL} {
		b := newBackend(t, m, 4)
		if b.Name() != m {
			t.Errorf("name = %v, want %v", b.Name(), m)
		}
		if b.Root() != 0 {
			t.Errorf("%v root = %d, want 0", m, b.Root())
		}
		push, err := b.PushGradient(profiler.StageWU, "conv1", 10*units.MB, 0)
		if err != nil || push <= 0 {
			t.Errorf("%v push = %v, %v", m, push, err)
		}
		pull, err := b.PullWeights(profiler.StageWU, "conv1", 10*units.MB, push)
		if err != nil || pull <= push {
			t.Errorf("%v pull = %v, %v", m, pull, err)
		}
	}
}

func TestUnknownMethod(t *testing.T) {
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	rt, err := cuda.NewRuntime(fab, gpu.V100(), []topology.NodeID{0}, cuda.DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("mpi", rt, []topology.NodeID{0}); err == nil {
		t.Error("unknown method should error")
	}
}

func TestSetupCosts(t *testing.T) {
	p := newBackend(t, MethodP2P, 2)
	if p.SetupCost() != 0 {
		t.Errorf("P2P setup = %v, want 0", p.SetupCost())
	}
	n := newBackend(t, MethodNCCL, 2)
	if n.SetupCost() <= 0 {
		t.Error("NCCL setup should cost time (the overhead Table II measures)")
	}
}

// Single-GPU: P2P push/pull are free, NCCL still pays for its kernels —
// the mechanism behind the paper's Table II.
func TestSingleGPUNCCLOverheadExists(t *testing.T) {
	p := newBackend(t, MethodP2P, 1)
	endP, err := p.PushGradient(profiler.StageWU, "w", 100*units.MB, time.Millisecond)
	if err != nil || endP != time.Millisecond {
		t.Errorf("1-GPU P2P push = %v, %v; want free", endP, err)
	}
	n := newBackend(t, MethodNCCL, 1)
	endN, err := n.PushGradient(profiler.StageWU, "w", 100*units.MB, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if endN <= time.Millisecond {
		t.Error("1-GPU NCCL push should still cost time")
	}
}

func TestRingsAccessor(t *testing.T) {
	n := newBackend(t, MethodNCCL, 4)
	if len(Rings(n)) == 0 {
		t.Error("NCCL backend should expose rings")
	}
	p := newBackend(t, MethodP2P, 4)
	if Rings(p) != nil {
		t.Error("P2P backend has no rings")
	}
}

// For large models at 8 GPUs NCCL's pipelined rings beat the P2P tree —
// the paper's headline crossover.
func TestNCCLBeatsP2PForLargeTransfersAt8GPUs(t *testing.T) {
	p := newBackend(t, MethodP2P, 8)
	n := newBackend(t, MethodNCCL, 8)
	size := 100 * units.MB // AlexNet-scale model
	pushP, err := p.PushGradient(profiler.StageWU, "w", size, 0)
	if err != nil {
		t.Fatal(err)
	}
	pullP, err := p.PullWeights(profiler.StageWU, "w", size, pushP)
	if err != nil {
		t.Fatal(err)
	}
	pushN, err := n.PushGradient(profiler.StageWU, "w", size, 0)
	if err != nil {
		t.Fatal(err)
	}
	pullN, err := n.PullWeights(profiler.StageWU, "w", size, pushN)
	if err != nil {
		t.Fatal(err)
	}
	if pullN >= pullP {
		t.Errorf("NCCL round (%v) should beat P2P round (%v) at 8 GPUs", pullN, pullP)
	}
}

// For tiny transfers the P2P tree's lower fixed cost wins — why LeNet
// prefers P2P in the paper.
func TestP2PBeatsNCCLForTinyTransfers(t *testing.T) {
	p := newBackend(t, MethodP2P, 2)
	n := newBackend(t, MethodNCCL, 2)
	size := 16 * units.KB // LeNet-scale arrays
	pushP, _ := p.PushGradient(profiler.StageWU, "w", size, 0)
	pullP, _ := p.PullWeights(profiler.StageWU, "w", size, pushP)
	pushN, _ := n.PushGradient(profiler.StageWU, "w", size, 0)
	pullN, _ := n.PullWeights(profiler.StageWU, "w", size, pushN)
	if pullP >= pullN {
		t.Errorf("P2P round (%v) should beat NCCL round (%v) for tiny arrays", pullP, pullN)
	}
}

// MXNet's default "local" kvstore (CPU parameter server over PCIe) must be
// the slowest of the three for multi-GPU AlexNet-scale exchanges — the
// reason the paper's methods exist.
func TestLocalKVStoreIsTheBaselineToBeat(t *testing.T) {
	size := 100 * units.MB
	round := func(m Method) time.Duration {
		b := newBackend(t, m, 4)
		push, err := b.PushGradient(profiler.StageWU, "w", size, 0)
		if err != nil {
			t.Fatal(err)
		}
		pull, err := b.PullWeights(profiler.StageWU, "w", size, push)
		if err != nil {
			t.Fatal(err)
		}
		return pull
	}
	local := round(MethodLocal)
	p2p := round(MethodP2P)
	nc := round(MethodNCCL)
	if local <= p2p || local <= nc {
		t.Errorf("local (%v) should be slower than p2p (%v) and nccl (%v)", local, p2p, nc)
	}
}

func TestLocalKVStoreBasics(t *testing.T) {
	b := newBackend(t, MethodLocal, 2)
	if b.Name() != MethodLocal || b.Root() != 0 || b.SetupCost() != 0 {
		t.Error("local backend metadata wrong")
	}
	push, err := b.PushGradient(profiler.StageWU, "w", units.MB, 0)
	if err != nil || push <= 0 {
		t.Fatalf("push: %v, %v", push, err)
	}
	pull, err := b.PullWeights(profiler.StageWU, "w", units.MB, push)
	if err != nil || pull <= push {
		t.Fatalf("pull: %v, %v", pull, err)
	}
}

// TestEmptyDevicesRejected: every method must refuse an empty device
// slice with the typed error, up front — the nccl path used to index
// devs[0] for its root before any engine could object.
func TestEmptyDevicesRejected(t *testing.T) {
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	rt, err := cuda.NewRuntime(fab, gpu.V100(), []topology.NodeID{0}, cuda.DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodP2P, MethodNCCL, MethodLocal, Method("bogus")} {
		for _, devs := range [][]topology.NodeID{nil, {}} {
			b, err := New(m, rt, devs)
			if b != nil || !errors.Is(err, ErrNoDevices) {
				t.Errorf("New(%v, %v) = %v, %v; want nil, ErrNoDevices", m, devs, b, err)
			}
		}
	}
}
