package kvstore

import (
	"time"

	"repro/internal/cuda"
	"repro/internal/profiler"
	"repro/internal/topology"
	"repro/internal/units"
)

// MethodLocal is MXNet's default kvstore: the parameter server lives on
// the HOST CPU. Gradients cross PCIe device-to-host, the CPU sums and
// updates, and weights cross back host-to-device — the baseline the
// paper's two GPU-side methods (device/P2P and NCCL) were introduced to
// beat.
const MethodLocal Method = "local"

// cpuUpdateBW is the effective rate at which the Xeon sums gradient
// arrays and applies the update (memory-bandwidth-bound vector work across
// the socket).
const cpuUpdateBW = 30 * units.GBPerSec

// localBackend implements the CPU parameter server.
type localBackend struct {
	rt   *cuda.Runtime
	devs []topology.NodeID
}

func (b *localBackend) Name() Method             { return MethodLocal }
func (b *localBackend) Root() topology.NodeID    { return b.devs[0] }
func (b *localBackend) SetupCost() time.Duration { return 0 }

// PushGradient uploads every device's gradient over PCIe and sums on the
// CPU; the aggregate is "on the root" in the sense that the server holds
// it (the subsequent update also runs on the CPU, so the trainer's
// GPU-side update kernel is effectively the copy-in; its cost is small
// next to the PCIe crossings either way).
func (b *localBackend) PushGradient(stage profiler.Stage, key string, size units.Bytes, ready time.Duration) (time.Duration, error) {
	var uploaded time.Duration
	for _, d := range b.devs {
		_, end, err := b.rt.MemcpyDeviceToHost(d, size, stage, ready, ready)
		if err != nil {
			return 0, err
		}
		if end > uploaded {
			uploaded = end
		}
	}
	// CPU-side reduction: read G arrays, write one.
	work := units.TransferTime(units.Bytes(len(b.devs)+1)*size, cpuUpdateBW)
	_, end := b.rt.CPUWork("CPU/kvstore", stage, uploaded, work)
	return end, nil
}

// PullWeights downloads the updated weights to every device over PCIe.
func (b *localBackend) PullWeights(stage profiler.Stage, key string, size units.Bytes, ready time.Duration) (time.Duration, error) {
	var end time.Duration
	for _, d := range b.devs {
		_, e, err := b.rt.MemcpyHostToDevice(d, size, stage, ready)
		if err != nil {
			return 0, err
		}
		if e > end {
			end = e
		}
	}
	return end, nil
}
