// Package kvstore provides the MXNet-style parameter exchange layer: each
// weight array is a key; gradients are pushed (aggregated onto the root
// GPU) and updated weights pulled (distributed back). Two backends
// implement the paper's two communication methods — "device" (P2P direct
// transfers) and "nccl" (collective kernels).
package kvstore

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cuda"
	"repro/internal/nccl"
	"repro/internal/p2p"
	"repro/internal/profiler"
	"repro/internal/topology"
	"repro/internal/units"
)

// Method selects a communication backend.
type Method string

// Communication methods, named as the paper names them.
const (
	MethodP2P  Method = "p2p"
	MethodNCCL Method = "nccl"
)

// Backend moves gradients and weights for one training session.
type Backend interface {
	// Name returns the method name.
	Name() Method
	// Root returns the GPU that aggregates gradients and holds the
	// authoritative weights (GPU 0 in the paper's MXNet).
	Root() topology.NodeID
	// PushGradient aggregates one key's gradient (size bytes per device)
	// across all devices, returning when the aggregate is available on the
	// root (and, for all-reduce backends, everywhere).
	PushGradient(stage profiler.Stage, key string, size units.Bytes, ready time.Duration) (time.Duration, error)
	// PullWeights distributes one key's updated weights from the root to
	// every device, returning when the last device has them.
	PullWeights(stage profiler.Stage, key string, size units.Bytes, ready time.Duration) (time.Duration, error)
	// SetupCost is the one-time initialization charge (NCCL communicator
	// construction; effectively zero for P2P).
	SetupCost() time.Duration
}

// New creates a backend of the given method over the devices with default
// NCCL settings (ring algorithm, as the paper measured).
func New(method Method, rt *cuda.Runtime, devs []topology.NodeID) (Backend, error) {
	return NewWithNCCL(method, rt, devs, nccl.DefaultConfig())
}

// ErrNoDevices is returned when a backend is requested over an empty
// device slice. Every method needs at least one device (the nccl root is
// devs[0]), so the check lives here — once, ahead of any indexing —
// rather than scattered across the backends' engines.
var ErrNoDevices = errors.New("kvstore: at least one device is required")

// NewWithNCCL is New with an explicit NCCL configuration (algorithm
// selection, overheads) for the nccl method; the p2p method ignores it.
func NewWithNCCL(method Method, rt *cuda.Runtime, devs []topology.NodeID, ncfg nccl.Config) (Backend, error) {
	if len(devs) == 0 {
		return nil, ErrNoDevices
	}
	switch method {
	case MethodP2P:
		eng, err := p2p.New(rt, devs)
		if err != nil {
			return nil, err
		}
		return &deviceBackend{eng: eng}, nil
	case MethodNCCL:
		comm, err := nccl.New(rt, devs, ncfg)
		if err != nil {
			return nil, err
		}
		return &ncclBackend{comm: comm, root: devs[0]}, nil
	case MethodLocal:
		return &localBackend{rt: rt, devs: append([]topology.NodeID(nil), devs...)}, nil
	}
	return nil, fmt.Errorf("kvstore: unknown method %q", method)
}

// deviceBackend is the P2P direct-transfer kvstore ("device" in MXNet).
type deviceBackend struct {
	eng *p2p.Engine
}

func (b *deviceBackend) Name() Method             { return MethodP2P }
func (b *deviceBackend) Root() topology.NodeID    { return b.eng.Root() }
func (b *deviceBackend) SetupCost() time.Duration { return 0 }

func (b *deviceBackend) PushGradient(stage profiler.Stage, key string, size units.Bytes, ready time.Duration) (time.Duration, error) {
	return b.eng.ReduceToRoot(stage, size, ready)
}

func (b *deviceBackend) PullWeights(stage profiler.Stage, key string, size units.Bytes, ready time.Duration) (time.Duration, error) {
	return b.eng.BroadcastFromRoot(stage, size, ready)
}

// ncclBackend uses AllReduce for gradients and Broadcast for weights, as
// the paper describes MXNet's NCCL kvstore.
type ncclBackend struct {
	comm *nccl.Communicator
	root topology.NodeID
}

func (b *ncclBackend) Name() Method             { return MethodNCCL }
func (b *ncclBackend) Root() topology.NodeID    { return b.root }
func (b *ncclBackend) SetupCost() time.Duration { return b.comm.SetupCost() }

func (b *ncclBackend) PushGradient(stage profiler.Stage, key string, size units.Bytes, ready time.Duration) (time.Duration, error) {
	return b.comm.AllReduce(stage, size, ready), nil
}

func (b *ncclBackend) PullWeights(stage profiler.Stage, key string, size units.Bytes, ready time.Duration) (time.Duration, error) {
	return b.comm.Broadcast(stage, size, b.root, ready), nil
}

// Rings exposes the NCCL backend's ring structure for diagnostics; it
// returns nil for other backends.
func Rings(b Backend) []nccl.Ring {
	if nb, ok := b.(*ncclBackend); ok {
		return nb.comm.Rings()
	}
	return nil
}
