package train

import (
	"fmt"
	"time"

	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/kvstore"
	"repro/internal/nccl"
	"repro/internal/profiler"
	"repro/internal/units"
)

// Hybrid "one weird trick" parallelism: the convolutional body is
// data-parallel (replicated, one mini-batch slice per GPU) while the
// fully-connected head is tensor-parallel (each GPU holds a 1/G column
// slice of every FC weight matrix and processes the GLOBAL batch).
//
// This is the concrete scheme behind the paper's §I observation that
// "model parallelism is more suitable for networks with more fully
// connected layers": the FC weights — AlexNet's 224 MB of its 232 MB —
// are never exchanged at all (each slice updates locally); what moves
// instead are activations, which for FC layers are tiny. Convolution
// gradients (a few MB) still use the ordinary kvstore path.
//
// Schedule per iteration:
//  1. body FP on the local batch (data parallel),
//  2. all-gather of body outputs (every GPU assembles the global batch),
//  3. head FP: slice GEMM + all-gather of activations per FC layer,
//  4. head BP: slice GEMMs + reduce-scatter of input gradients,
//  5. body BP on the local batch, with conv gradients pushed through the
//     kvstore as they appear (as in data parallelism),
//  6. local update of FC slices; kvstore update of conv weights.

// splitHead returns the node index at which the FC head begins (the first
// OpFC node), and validates the head is a single-tensor chain the tensor-
// parallel schedule supports.
func splitHead(net *dnn.Network) (int, error) {
	nodes := net.Nodes()
	first := -1
	for i, nd := range nodes {
		if nd.Op.Kind() == dnn.OpFC {
			first = i
			break
		}
	}
	if first <= 0 {
		return 0, fmt.Errorf("train: %s has no fully-connected head to tensor-parallelize", net.Name)
	}
	for _, nd := range nodes[first:] {
		switch nd.Op.Kind() {
		case dnn.OpFC, dnn.OpActivation, dnn.OpDropout, dnn.OpSoftmax, dnn.OpFlatten:
		default:
			return 0, fmt.Errorf("train: %s head contains %s; only FC chains are supported", net.Name, nd.Op.Kind())
		}
		if len(nd.Inputs) > 1 {
			return 0, fmt.Errorf("train: %s head branches at %s", net.Name, nd.Name)
		}
	}
	return first, nil
}

// runHybridOWT simulates one epoch of the hybrid scheme.
func (t *Trainer) runHybridOWT() (*Result, error) {
	if t.cfg.Method != kvstore.MethodNCCL {
		return nil, fmt.Errorf("train: hybrid parallelism needs the nccl method for its activation collectives")
	}
	net := t.cfg.Model.Net
	headStart, err := splitHead(net)
	if err != nil {
		return nil, err
	}
	g := t.cfg.GPUs
	globalBatch := t.cfg.Batch * g
	opts := dnn.PlanOptions{TensorCores: t.cfg.TensorCores}
	nodes := net.Nodes()

	// The activation collectives run on their own communicator.
	comm, err := nccl.New(t.rt, t.devs, nccl.DefaultConfig())
	if err != nil {
		return nil, err
	}

	// Body plans at the local batch.
	bodyPlans := net.NodePlans(t.cfg.Batch, opts)[:headStart]
	// Boundary activation: the body's last node output over the global
	// batch.
	boundary := nodes[headStart-1]
	boundaryBytes := units.BytesOf(boundary.Out.Elems()*int64(globalBatch), units.Float32Size)

	// Head: per-GPU sliced kernels over the global batch.
	type headLayer struct {
		fwd, dgrad, wgrad gpu.KernelCost
		actBytes          units.Bytes // all-gather payload after FP
		inBytes           units.Bytes // reduce-scatter payload in BP
		sliceParams       units.Bytes
		memBound          bool
	}
	var head []headLayer
	for _, nd := range nodes[headStart:] {
		switch nd.Op.Kind() {
		case dnn.OpFC:
			in := nd.Inputs[0].Out.Elems()
			out := nd.Out.Elems()
			sliceOut := out / int64(g)
			if sliceOut == 0 {
				sliceOut = 1
			}
			flops := units.FLOPs(2 * in * sliceOut * int64(globalBatch))
			params := in * sliceOut
			mem := units.BytesOf(in*int64(globalBatch)+sliceOut*int64(globalBatch), units.Float32Size) +
				units.BytesOf(params, units.Float32Size)
			class, eff := gpu.ClassFMA, 0.25
			if opts.TensorCores {
				class, eff = gpu.ClassTensor, 0.125
			}
			hl := headLayer{
				fwd: gpu.KernelCost{
					Name: "fc_slice_fprop", FLOPs: flops, MemBytes: mem,
					Parallelism: sliceOut * int64(globalBatch), Class: class, Eff: eff,
				},
				actBytes:    units.BytesOf(out*int64(globalBatch), units.Float32Size),
				inBytes:     units.BytesOf(in*int64(globalBatch), units.Float32Size),
				sliceParams: units.BytesOf(params, units.Float32Size),
			}
			hl.dgrad = hl.fwd
			hl.dgrad.Name = "fc_slice_dgrad"
			hl.wgrad = hl.fwd
			hl.wgrad.Name = "fc_slice_wgrad"
			head = append(head, hl)
		case dnn.OpActivation, dnn.OpDropout, dnn.OpSoftmax:
			b := units.BytesOf(nd.Out.Elems()*int64(globalBatch), units.Float32Size)
			head = append(head, headLayer{
				fwd: gpu.KernelCost{
					Name: nd.Op.Kind().String() + "_fprop", FLOPs: units.FLOPs(nd.Out.Elems() * int64(globalBatch)),
					MemBytes: 2 * b, Parallelism: nd.Out.Elems() * int64(globalBatch), Class: gpu.ClassMemory,
				},
				memBound: true,
			})
		}
	}

	runIteration := func(start time.Duration) (fpEnd, bpEnd, barrier time.Duration, err error) {
		type grad struct {
			name  string
			bytes units.Bytes
			ready time.Duration
		}
		// 1. Body FP (data parallel).
		host := map[int]time.Duration{}
		var bodyFPEnd time.Duration
		for i, d := range t.devs {
			s := t.compute[d]
			h := start
			var kEnd time.Duration
			for _, p := range bodyPlans {
				for _, k := range p.Fwd {
					h, kEnd = s.Launch(profiler.StageFP, k, h)
				}
			}
			host[i] = h
			if kEnd > bodyFPEnd {
				bodyFPEnd = kEnd
			}
		}
		// 2. Assemble the global batch everywhere.
		now := comm.AllGather(profiler.StageFP, boundaryBytes, bodyFPEnd)
		// 3. Head FP: slice kernels + per-FC all-gather.
		for _, hl := range head {
			var kEnd time.Duration
			for i, d := range t.devs {
				s := t.compute[d]
				s.WaitEvent(now)
				var e time.Duration
				host[i], e = s.Launch(profiler.StageFP, hl.fwd, host[i])
				if e > kEnd {
					kEnd = e
				}
			}
			now = kEnd
			if !hl.memBound && hl.actBytes > 0 {
				now = comm.AllGather(profiler.StageFP, hl.actBytes, now)
			}
		}
		fpEnd = now
		// 4. Head BP (reverse): slice dgrad/wgrad + reduce-scatter of the
		// input gradient; FC slice updates are local.
		var localUpdates []units.Bytes
		for li := len(head) - 1; li >= 0; li-- {
			hl := head[li]
			var kEnd time.Duration
			for i, d := range t.devs {
				s := t.compute[d]
				s.WaitEvent(now)
				var e time.Duration
				if hl.memBound {
					host[i], e = s.Launch(profiler.StageBP, hl.fwd, host[i])
				} else {
					host[i], _ = s.Launch(profiler.StageBP, hl.dgrad, host[i])
					host[i], e = s.Launch(profiler.StageBP, hl.wgrad, host[i])
				}
				if e > kEnd {
					kEnd = e
				}
			}
			now = kEnd
			if !hl.memBound {
				localUpdates = append(localUpdates, hl.sliceParams)
				if hl.inBytes > 0 {
					now = comm.ReduceScatter(profiler.StageBP, hl.inBytes, now)
				}
			}
		}
		// 5. Body BP with conv gradients through the kvstore.
		var grads []grad
		var bodyBPEnd time.Duration
		for i, d := range t.devs {
			s := t.compute[d]
			s.WaitEvent(now)
			gi := 0
			for bi := headStart - 1; bi >= 0; bi-- {
				p := bodyPlans[bi]
				var stepEnd time.Duration
				for _, k := range p.Bwd {
					host[i], stepEnd = s.Launch(profiler.StageBP, k, host[i])
				}
				if p.Layer != nil {
					size := units.BytesOf(p.Layer.Params, units.Float32Size)
					if i == 0 {
						grads = append(grads, grad{name: p.Layer.Name, bytes: size, ready: stepEnd})
					} else {
						if stepEnd > grads[gi].ready {
							grads[gi].ready = stepEnd
						}
						gi++
					}
				}
				if stepEnd > bodyBPEnd {
					bodyBPEnd = stepEnd
				}
			}
		}
		bpEnd = bodyBPEnd
		// 6. Weight updates: conv via kvstore, FC slices locally.
		lastPull := bpEnd
		for _, gr := range grads {
			pushEnd, err := t.backend.PushGradient(profiler.StageWU, gr.name, gr.bytes, gr.ready)
			if err != nil {
				return 0, 0, 0, err
			}
			updEnd := t.bookUpdate(pushEnd, gr.bytes)
			pullEnd, err := t.backend.PullWeights(profiler.StageWU, gr.name, gr.bytes, updEnd)
			if err != nil {
				return 0, 0, 0, err
			}
			if pullEnd > lastPull {
				lastPull = pullEnd
			}
		}
		barrier = lastPull
		for _, d := range t.devs {
			dev := t.rt.Device(d)
			end := bpEnd
			for _, size := range localUpdates {
				_, end = dev.BookCommKernel(end, dev.Spec.KernelDuration(sgdUpdateCost(size)))
			}
			if end > barrier {
				barrier = end
			}
		}
		for i, d := range t.devs {
			w := t.rt.HostWait(d, profiler.StageWU, host[i], barrier)
			if w > barrier {
				barrier = w
			}
		}
		return fpEnd, bpEnd, barrier, nil
	}

	now := t.sessionStartup() + t.backend.SetupCost()
	nsim := t.cfg.SimIters
	if int64(nsim) > t.schedule.Iterations {
		nsim = int(t.schedule.Iterations)
	}
	var fpW, bpW, wuW, iterDur time.Duration
	start := now
	for i := 0; i < nsim; i++ {
		if err := t.cancelled(); err != nil {
			return nil, err
		}
		fpEnd, bpEnd, barrier, err := runIteration(start)
		if err != nil {
			return nil, err
		}
		fpW = fpEnd - start
		bpW = bpEnd - fpEnd
		wuW = barrier - bpEnd
		iterDur = barrier - start
		start = barrier
	}
	iters := t.schedule.Iterations
	epoch := start + time.Duration(iters-int64(nsim))*iterDur
	if int64(nsim) < iters {
		t.prof.Scale(float64(iters) / float64(nsim))
	}
	res := &Result{
		Config:     t.cfg,
		Iterations: iters,
		EpochTime:  epoch,
		SetupTime:  now,
		SteadyIter: iterDur,
		FPWall:     time.Duration(iters) * fpW,
		BPWall:     time.Duration(iters) * bpW,
		WUWall:     time.Duration(iters) * wuW,
		Profile:    t.prof,
		Memory:     t.memory,
	}
	res.Throughput = float64(t.schedule.Images) / epoch.Seconds()
	res.ComputeUtilization = t.computeUtilization(epoch)
	res.SyncPercent = 100 * float64(t.prof.API("cudaStreamSynchronize").Total) /
		(float64(epoch) * float64(t.cfg.GPUs))
	return res, nil
}
