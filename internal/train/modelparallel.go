package train

import (
	"fmt"
	"time"

	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/topology"
	"repro/internal/units"
)

// Model parallelism (the alternative the paper's introduction contrasts
// with data parallelism): the network's layers are partitioned into
// contiguous stages, one per GPU; activations — not weights — cross GPUs.
// Each mini-batch is split into micro-batches and pipelined through the
// stages (fill, steady, drain), flushing at the mini-batch boundary so
// weight updates remain exact (GPipe-style schedule). Updates are local to
// the stage that owns the weights: no gradient exchange at all, which is
// why the approach suits weight-heavy, FC-dominated networks.

// stagePartition maps contiguous node ranges to devices.
type stagePartition struct {
	// bounds[i] is the index (into Nodes()) of the last node of stage i.
	bounds []int
}

// stageOf returns the stage owning node index i.
func (p stagePartition) stageOf(i int) int {
	for s, b := range p.bounds {
		if i <= b {
			return s
		}
	}
	return len(p.bounds) - 1
}

// partitionStages splits the network into `stages` contiguous segments at
// valid cut points, minimizing the maximum per-stage cost (balanced
// pipeline) via dynamic programming over the cut list. cost[i] is node i's
// estimated execution time; nil falls back to forward FLOPs.
func partitionStages(net *dnn.Network, stages int, cost []float64) (stagePartition, error) {
	nodes := net.Nodes()
	if stages <= 1 {
		return stagePartition{bounds: []int{len(nodes) - 1}}, nil
	}
	cuts := net.CutPoints()
	if len(cuts) < stages-1 {
		return stagePartition{}, fmt.Errorf(
			"train: %s has only %d clean cut points, cannot form %d stages",
			net.Name, len(cuts), stages)
	}
	if cost == nil {
		cost = make([]float64, len(nodes))
		for i, nd := range nodes {
			cost[i] = float64(nd.FwdFLOPs)
		}
	}
	// Prefix sums for O(1) segment cost.
	prefix := make([]float64, len(nodes)+1)
	for i := range nodes {
		prefix[i+1] = prefix[i] + cost[i]
	}
	segCost := func(from, to int) float64 { return prefix[to+1] - prefix[from] }

	// boundaries = chosen cut list positions; DP over (cut index, stage).
	ends := append(append([]int(nil), cuts...), len(nodes)-1)
	const inf = 1e300
	// best[k][s] = minimal max-stage-cost using ends[k] as the last node of
	// stage s (0-based). Track predecessor for reconstruction.
	best := make([][]float64, len(ends))
	prev := make([][]int, len(ends))
	for k := range ends {
		best[k] = make([]float64, stages)
		prev[k] = make([]int, stages)
		for s := range best[k] {
			best[k][s] = inf
			prev[k][s] = -1
		}
		best[k][0] = segCost(0, ends[k])
	}
	for s := 1; s < stages; s++ {
		for k := range ends {
			for j := 0; j < k; j++ {
				if best[j][s-1] == inf {
					continue
				}
				c := segCost(ends[j]+1, ends[k])
				m := best[j][s-1]
				if c > m {
					m = c
				}
				if m < best[k][s] {
					best[k][s] = m
					prev[k][s] = j
				}
			}
		}
	}
	last := len(ends) - 1
	if best[last][stages-1] == inf {
		return stagePartition{}, fmt.Errorf("train: no %d-stage partition of %s", stages, net.Name)
	}
	bounds := make([]int, stages)
	k := last
	for s := stages - 1; s >= 0; s-- {
		bounds[s] = ends[k]
		k = prev[k][s]
	}
	return stagePartition{bounds: bounds}, nil
}

// runModelParallel simulates one epoch of pipelined model-parallel
// training and returns the standard measurements.
func (t *Trainer) runModelParallel() (*Result, error) {
	stages := t.cfg.GPUs
	micro := t.cfg.MicroBatches
	if micro <= 0 {
		// Default: enough micro-batches to fill the pipeline, but never so
		// many that a micro-batch drops below ~4 images — tiny micro-batches
		// re-read FC weights at negligible occupancy and drown the pipeline
		// in per-kernel overheads.
		micro = 2 * stages
		if cap := t.cfg.Batch / 4; micro > cap {
			micro = cap
		}
		if micro < 1 {
			micro = 1
		}
	}
	if micro > t.cfg.Batch {
		micro = t.cfg.Batch
	}
	microBatch := t.cfg.Batch / micro
	if microBatch == 0 {
		microBatch = 1
		micro = t.cfg.Batch
	}
	opts := dnn.PlanOptions{TensorCores: t.cfg.TensorCores}
	plans := t.cfg.Model.Net.NodePlans(microBatch, opts)
	nodes := t.cfg.Model.Net.Nodes()

	// Balance stages by estimated execution time of the micro-batch
	// kernels (FLOPs alone would overload whichever stage holds the
	// memory-bound FC layers).
	spec := t.rt.Device(t.devs[0]).Spec
	cost := make([]float64, len(plans))
	for i, p := range plans {
		for _, k := range p.Fwd {
			cost[i] += spec.KernelDuration(k).Seconds()
		}
		for _, k := range p.Bwd {
			cost[i] += spec.KernelDuration(k).Seconds()
		}
	}
	part, err := partitionStages(t.cfg.Model.Net, stages, cost)
	if err != nil {
		return nil, err
	}

	// Per-stage lowering.
	type stageWork struct {
		dev      topology.NodeID
		fwd      []gpu.KernelCost
		bwd      []gpu.KernelCost
		boundary units.Bytes
		weights  units.Bytes
	}
	work := make([]stageWork, stages)
	for s := range work {
		work[s].dev = t.devs[s]
	}
	for i, p := range plans {
		s := part.stageOf(i)
		work[s].fwd = append(work[s].fwd, p.Fwd...)
		if p.Layer != nil {
			work[s].weights += units.BytesOf(p.Layer.Params, units.Float32Size)
		}
	}
	// Backward kernels belong to the same stage, reverse order.
	for i := len(plans) - 1; i >= 0; i-- {
		s := part.stageOf(i)
		work[s].bwd = append(work[s].bwd, plans[i].Bwd...)
	}
	for s := 0; s < stages-1; s++ {
		out := nodes[part.bounds[s]].Out
		work[s].boundary = units.BytesOf(out.Elems()*int64(microBatch), units.Float32Size)
	}

	// One mini-batch (= one iteration): GPipe fill/steady/drain of micro
	// forward passes, then the reverse for backward, then local updates.
	runIteration := func(start time.Duration) (time.Duration, time.Duration, time.Duration, error) {
		host := make([]time.Duration, stages)
		actReady := make([][]time.Duration, stages) // [stage][micro] input ready
		for s := range actReady {
			actReady[s] = make([]time.Duration, micro)
			host[s] = start
			for j := range actReady[s] {
				actReady[s][j] = start
			}
		}
		var fpEnd time.Duration
		fwdOut := make([][]time.Duration, stages)
		for s := range fwdOut {
			fwdOut[s] = make([]time.Duration, micro)
		}
		for j := 0; j < micro; j++ {
			for s := 0; s < stages; s++ {
				stream := t.compute[work[s].dev]
				stream.WaitEvent(actReady[s][j])
				var kEnd time.Duration
				for _, k := range work[s].fwd {
					host[s], kEnd = stream.Launch(profiler.StageFP, k, host[s])
				}
				fwdOut[s][j] = kEnd
				if s+1 < stages {
					_, arrive, err := t.rt.MemcpyPeer(work[s+1].dev, work[s].dev,
						work[s].boundary, profiler.StageFP, kEnd, kEnd)
					if err != nil {
						return 0, 0, 0, err
					}
					actReady[s+1][j] = arrive
				} else if kEnd > fpEnd {
					fpEnd = kEnd
				}
			}
		}
		// Backward: micro-batches drain from the last stage to the first.
		gradReady := make([][]time.Duration, stages)
		for s := range gradReady {
			gradReady[s] = make([]time.Duration, micro)
			for j := range gradReady[s] {
				gradReady[s][j] = fwdOut[s][j]
			}
		}
		var bpEnd time.Duration
		for j := 0; j < micro; j++ {
			for s := stages - 1; s >= 0; s-- {
				stream := t.compute[work[s].dev]
				stream.WaitEvent(gradReady[s][j])
				var kEnd time.Duration
				for _, k := range work[s].bwd {
					host[s], kEnd = stream.Launch(profiler.StageBP, k, host[s])
				}
				if s > 0 {
					_, arrive, err := t.rt.MemcpyPeer(work[s-1].dev, work[s].dev,
						work[s].boundary, profiler.StageBP, kEnd, kEnd)
					if err != nil {
						return 0, 0, 0, err
					}
					if arrive > gradReady[s-1][j] {
						gradReady[s-1][j] = arrive
					}
				}
				if kEnd > bpEnd {
					bpEnd = kEnd
				}
			}
		}
		// Local weight updates per stage (no inter-GPU exchange).
		barrier := bpEnd
		for s := 0; s < stages; s++ {
			if work[s].weights == 0 {
				continue
			}
			dev := t.rt.Device(work[s].dev)
			_, end := dev.BookCommKernel(bpEnd, dev.Spec.KernelDuration(sgdUpdateCost(work[s].weights)))
			if end > barrier {
				barrier = end
			}
		}
		for s := 0; s < stages; s++ {
			w := t.rt.HostWait(work[s].dev, profiler.StageWU, host[s], barrier)
			if w > barrier {
				barrier = w
			}
		}
		return fpEnd, bpEnd, barrier, nil
	}

	// Model-parallel iterations consume ONE mini-batch per iteration (the
	// batch is not replicated per GPU).
	iters := (t.schedule.Images + int64(t.cfg.Batch) - 1) / int64(t.cfg.Batch)
	now := t.sessionStartup()
	nsim := t.cfg.SimIters
	if int64(nsim) > iters {
		nsim = int(iters)
	}
	var fpW, bpW, wuW, iterDur time.Duration
	start := now
	for i := 0; i < nsim; i++ {
		if err := t.cancelled(); err != nil {
			return nil, err
		}
		fpEnd, bpEnd, barrier, err := runIteration(start)
		if err != nil {
			return nil, err
		}
		fpW = fpEnd - start
		bpW = bpEnd - fpEnd
		wuW = barrier - bpEnd
		iterDur = barrier - start
		start = barrier
	}
	epoch := start + time.Duration(iters-int64(nsim))*iterDur
	if int64(nsim) < iters {
		t.prof.Scale(float64(iters) / float64(nsim))
	}
	res := &Result{
		Config:     t.cfg,
		Iterations: iters,
		EpochTime:  epoch,
		SetupTime:  now,
		SteadyIter: iterDur,
		FPWall:     time.Duration(iters) * fpW,
		BPWall:     time.Duration(iters) * bpW,
		WUWall:     time.Duration(iters) * wuW,
		Profile:    t.prof,
		Memory:     t.memory,
	}
	res.Throughput = float64(t.schedule.Images) / epoch.Seconds()
	res.ComputeUtilization = t.computeUtilization(epoch) / float64(t.cfg.GPUs)
	res.SyncPercent = 100 * float64(t.prof.API("cudaStreamSynchronize").Total) /
		(float64(epoch) * float64(t.cfg.GPUs))
	return res, nil
}
