package train

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/kvstore"
	"repro/internal/topology"
)

func runOnTopology(t *testing.T, top *topology.Topology, model string, gpus, batch int, method kvstore.Method) *Result {
	t.Helper()
	cfg := quickCfg(t, model, gpus, batch, method)
	cfg.Topology = top
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The PCIe-only machine must train large networks visibly slower at high
// GPU counts (the NVLink-vs-PCIe comparisons the paper cites).
func TestPCIeOnlyTopologySlower(t *testing.T) {
	nv := runOnTopology(t, topology.DGX1(), "alexnet", 8, 16, kvstore.MethodNCCL)
	pcie := runOnTopology(t, topology.DGX1PCIeOnly(), "alexnet", 8, 16, kvstore.MethodNCCL)
	if float64(pcie.EpochTime) < 1.2*float64(nv.EpochTime) {
		t.Errorf("PCIe-only (%v) should be much slower than NVLink (%v)", pcie.EpochTime, nv.EpochTime)
	}
}

// The paper's insight: raising interconnect bandwidth alone cannot remove
// the communication bottleneck (fixed per-transfer/per-kernel overheads
// remain). For LeNet, 4x NVLink bandwidth must leave the WU wall nearly
// unchanged.
func TestBandwidthAloneDoesNotFixLeNet(t *testing.T) {
	base := runOnTopology(t, topology.DGX1(), "lenet", 8, 16, kvstore.MethodNCCL)
	fat := runOnTopology(t, topology.DGX1Scaled(4), "lenet", 8, 16, kvstore.MethodNCCL)
	if base.WUWall <= 0 {
		t.Fatal("expected exposed WU for LeNet")
	}
	reduction := 1 - float64(fat.WUWall)/float64(base.WUWall)
	if reduction > 0.25 {
		t.Errorf("4x bandwidth removed %.0f%% of LeNet WU; latency-bound WU should barely move", 100*reduction)
	}
}

// For the bandwidth-bound AlexNet, more bandwidth genuinely helps — the
// contrast that makes the LeNet result meaningful.
func TestBandwidthHelpsAlexNet(t *testing.T) {
	base := runOnTopology(t, topology.DGX1(), "alexnet", 8, 16, kvstore.MethodNCCL)
	fat := runOnTopology(t, topology.DGX1Scaled(4), "alexnet", 8, 16, kvstore.MethodNCCL)
	if float64(fat.EpochTime) > 0.85*float64(base.EpochTime) {
		t.Errorf("4x bandwidth should speed AlexNet up substantially: %v vs %v", fat.EpochTime, base.EpochTime)
	}
}

func TestScaledTopologyValidates(t *testing.T) {
	for _, s := range []float64{0.5, 1, 2, 4} {
		if err := topology.DGX1Scaled(s).Validate(); err != nil {
			t.Errorf("scale %v: %v", s, err)
		}
	}
	if err := topology.DGX1PCIeOnly().Validate(); err != nil {
		t.Errorf("PCIe-only: %v", err)
	}
	// PCIe-only has no NVLink at all.
	for _, l := range topology.DGX1PCIeOnly().Links() {
		if l.Type == topology.NVLink {
			t.Fatal("PCIe-only topology has NVLink links")
		}
	}
}

func TestGPUSpecOverride(t *testing.T) {
	cfg := quickCfg(t, "resnet", 1, 16, kvstore.MethodP2P)
	spec := *mustSpec()
	spec.PeakFP32 /= 2
	spec.PeakTensor /= 2
	cfg.GPUSpec = &spec
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	fast := runQuick(t, "resnet", 1, 16, kvstore.MethodP2P)
	if slow.EpochTime <= fast.EpochTime {
		t.Errorf("half-rate GPU (%v) should be slower (%v)", slow.EpochTime, fast.EpochTime)
	}
}

// mustSpec returns the default device spec for override tests.
func mustSpec() *gpu.Spec {
	s := gpu.V100()
	return &s
}
