package train

import (
	"testing"

	"repro/internal/kvstore"
	"repro/internal/nccl"
	"repro/internal/topology"
	"repro/internal/units"
)

func runDGX2(t *testing.T, model string, gpus, batch int, method kvstore.Method) *Result {
	t.Helper()
	cfg := quickCfg(t, model, gpus, batch, method)
	cfg.Topology = topology.DGX2()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDGX2TopologyUniform(t *testing.T) {
	top := topology.DGX2()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(top.GPUs()); got != 16 {
		t.Fatalf("GPUs = %d, want 16", got)
	}
	// Every pair routes through the switch, cut-through, at 150 GB/s.
	m, err := top.BandwidthMatrix(topology.RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		for j := range m {
			if i == j {
				continue
			}
			if m[i][j] != 150*units.GBPerSec {
				t.Fatalf("pair %d-%d bandwidth %v, want uniform 150GB/s", i, j, m[i][j])
			}
		}
	}
	p, err := top.Route(0, 15, topology.RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CutThrough {
		t.Error("switch path should be cut-through")
	}
}

// The NVSwitch removes the P2P method's staging and asymmetry penalties:
// AlexNet's P2P training at 8 GPUs must improve dramatically over the
// DGX-1, and P2P pulls within a modest factor of NCCL.
func TestDGX2FixesP2PStaging(t *testing.T) {
	dgx1 := runQuick(t, "alexnet", 8, 16, kvstore.MethodP2P)
	dgx2 := runDGX2(t, "alexnet", 8, 16, kvstore.MethodP2P)
	if float64(dgx2.EpochTime) > 0.5*float64(dgx1.EpochTime) {
		t.Errorf("DGX-2 P2P (%v) should be far faster than DGX-1 P2P (%v)", dgx2.EpochTime, dgx1.EpochTime)
	}
}

// 16-GPU training works and continues to scale for compute-bound nets.
func TestDGX2SixteenGPUs(t *testing.T) {
	eight := runDGX2(t, "resnet", 8, 16, kvstore.MethodNCCL)
	sixteen := runDGX2(t, "resnet", 16, 16, kvstore.MethodNCCL)
	if float64(sixteen.EpochTime) > 0.65*float64(eight.EpochTime) {
		t.Errorf("16 GPUs (%v) should be well under 8 GPUs (%v)", sixteen.EpochTime, eight.EpochTime)
	}
	// Requesting more GPUs than the machine has must error.
	cfg := quickCfg(t, "resnet", 8, 16, kvstore.MethodNCCL)
	cfg.Topology = topology.DGX2()
	cfg.GPUs = 17
	if _, err := New(cfg); err == nil {
		t.Error("17 GPUs on a 16-GPU machine should error")
	}
}

// 16-rank NCCL training on the switch fabric works end to end.
func TestDGX2NCCLWorks(t *testing.T) {
	res := runDGX2(t, "googlenet", 16, 16, kvstore.MethodNCCL)
	if res.EpochTime <= 0 {
		t.Fatal("no result")
	}
}

// NCCL on the DGX-2 builds a switch ring at the full 150 GB/s per-GPU
// bandwidth rather than the PCIe fallback.
func TestDGX2NCCLSwitchRing(t *testing.T) {
	top := topology.DGX2()
	r, ok := nccl.SwitchRing(top, top.GPUs())
	if !ok {
		t.Fatal("no switch ring on the DGX-2")
	}
	if r.PCIe {
		t.Error("switch ring mislabeled as PCIe")
	}
	if r.LaneBW != 150*units.GBPerSec {
		t.Errorf("switch ring bandwidth %v, want 150GB/s", r.LaneBW)
	}
	// End-to-end: DGX-2 NCCL beats DGX-1 NCCL for the comm-heavy AlexNet.
	dgx1 := runQuick(t, "alexnet", 8, 16, kvstore.MethodNCCL)
	dgx2 := runDGX2(t, "alexnet", 8, 16, kvstore.MethodNCCL)
	if dgx2.EpochTime >= dgx1.EpochTime {
		t.Errorf("DGX-2 NCCL (%v) should beat DGX-1 NCCL (%v)", dgx2.EpochTime, dgx1.EpochTime)
	}
}
