package train

import (
	"testing"

	"repro/internal/kvstore"
	"repro/internal/topology"
)

func runOnDevices(t *testing.T, devs []topology.NodeID, model string, batch int, method kvstore.Method) *Result {
	t.Helper()
	cfg := quickCfg(t, model, len(devs), batch, method)
	cfg.Devices = devs
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDevicePinningValidation(t *testing.T) {
	cfg := quickCfg(t, "lenet", 2, 16, kvstore.MethodP2P)
	cfg.Devices = []topology.NodeID{0, 1, 2}
	if _, err := New(cfg); err == nil {
		t.Error("count mismatch should error")
	}
	cfg.Devices = []topology.NodeID{0, 0}
	if _, err := New(cfg); err == nil {
		t.Error("duplicate device should error")
	}
	cfg.Devices = []topology.NodeID{8, 9}
	if _, err := New(cfg); err == nil {
		t.Error("CPU nodes should error")
	}
}

// Placement matters on the asymmetric DGX-1: a well-connected pair (0-1,
// dual NVLink) must train a communication-heavy model faster than a pair
// with no direct link at all (1-2, PCIe-routed).
func TestPlacementSensitivity(t *testing.T) {
	good := runOnDevices(t, []topology.NodeID{0, 1}, "alexnet", 16, kvstore.MethodP2P)
	top := topology.DGX1()
	if top.DirectLink(1, 2, topology.NVLink) != nil {
		t.Fatal("test assumes 1-2 has no direct NVLink")
	}
	bad := runOnDevices(t, []topology.NodeID{1, 2}, "alexnet", 16, kvstore.MethodP2P)
	if float64(bad.EpochTime) < 1.03*float64(good.EpochTime) {
		t.Errorf("poorly-placed pair (%v) should train visibly slower than 0-1 (%v)",
			bad.EpochTime, good.EpochTime)
	}
}

// A cross-socket quad without its own NVLink ring must fall back and lose
// against the standard quad under NCCL.
func TestPlacementQuadRingMatters(t *testing.T) {
	std := runOnDevices(t, []topology.NodeID{0, 1, 2, 3}, "alexnet", 16, kvstore.MethodNCCL)
	// {0,3,4,7}: 0-3 single, 4-7 single, 3-7 single, 0-4? none; rings may
	// exist (0-3-7-4? needs 4-0: none) — the builder decides; either way
	// the standard quad should not lose.
	alt := runOnDevices(t, []topology.NodeID{0, 3, 4, 7}, "alexnet", 16, kvstore.MethodNCCL)
	if float64(alt.EpochTime) < 0.95*float64(std.EpochTime) {
		t.Errorf("scattered quad (%v) should not beat the standard quad (%v)",
			alt.EpochTime, std.EpochTime)
	}
}

// The paper: "some of the GPUs become idle during DNN training" under
// P2P because of the GPU0 role and asymmetric links. GPU0 runs the
// aggregation kernels, so it is busier than the workers; the spread must
// be zero on one GPU and positive on many.
func TestGPUIdleSpread(t *testing.T) {
	one := runQuick(t, "resnet", 1, 16, kvstore.MethodP2P)
	if got := one.IdleSpread(); got != 0 {
		t.Errorf("1-GPU idle spread = %v, want 0", got)
	}
	four := runQuick(t, "resnet", 4, 16, kvstore.MethodP2P)
	if got := four.IdleSpread(); got <= 0 {
		t.Errorf("4-GPU idle spread = %v, want positive", got)
	}
	// GPU0 (aggregation + updates) is the busiest device under P2P.
	busiest, best := four.GPUComputeBusy[0], true
	for d, f := range four.GPUComputeBusy {
		if f > busiest && d != 0 {
			best = false
		}
	}
	if !best {
		t.Errorf("GPU0 should be the busiest: %v", four.GPUComputeBusy)
	}
	if len(four.GPUComputeBusy) != 4 {
		t.Errorf("busy map size = %d", len(four.GPUComputeBusy))
	}
}
