package train

import (
	"testing"

	"repro/internal/kvstore"
)

func runAsync(t *testing.T, model string, gpus, batch int) *Result {
	t.Helper()
	cfg := quickCfg(t, model, gpus, batch, kvstore.MethodP2P)
	cfg.Async = true
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// With one GPU there is nothing to desynchronize: async and sync schedules
// must land within a whisker of each other.
func TestAsyncSingleGPUMatchesSync(t *testing.T) {
	syncR := runQuick(t, "googlenet", 1, 16, kvstore.MethodP2P)
	asyncR := runAsync(t, "googlenet", 1, 16)
	ratio := asyncR.EpochTime.Seconds() / syncR.EpochTime.Seconds()
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("1-GPU async/sync = %.3f, want ~1", ratio)
	}
}

// The barrier is what ASGD removes: for the communication-bound AlexNet
// the async schedule must be clearly faster at high GPU counts.
func TestAsyncRemovesBarrierCost(t *testing.T) {
	syncR := runQuick(t, "alexnet", 4, 16, kvstore.MethodP2P)
	asyncR := runAsync(t, "alexnet", 4, 16)
	speedup := syncR.EpochTime.Seconds() / asyncR.EpochTime.Seconds()
	if speedup < 1.1 {
		t.Errorf("async speedup %.2f for comm-bound AlexNet, want > 1.1", speedup)
	}
}

// Async iterations still do all the work: same kernel counts per epoch as
// the synchronous schedule (only the waiting differs).
func TestAsyncSameWorkDifferentWaiting(t *testing.T) {
	syncR := runQuick(t, "lenet", 4, 16, kvstore.MethodP2P)
	asyncR := runAsync(t, "lenet", 4, 16)
	if syncR.Iterations != asyncR.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", syncR.Iterations, asyncR.Iterations)
	}
	s := syncR.Profile.Kernel("conv_fprop").Calls
	a := asyncR.Profile.Kernel("conv_fprop").Calls
	// Scaled extrapolation rounds; allow 2%.
	diff := float64(s-a) / float64(s)
	if diff < -0.02 || diff > 0.02 {
		t.Errorf("conv kernel counts differ: sync %d vs async %d", s, a)
	}
}

func TestAsyncThroughputMonotoneInGPUs(t *testing.T) {
	prev := 0.0
	for _, g := range []int{1, 2, 4, 8} {
		r := runAsync(t, "googlenet", g, 16)
		if r.Throughput <= prev {
			t.Errorf("%d GPUs: async throughput %.0f not above %.0f", g, r.Throughput, prev)
		}
		prev = r.Throughput
	}
}
