package train

import (
	"errors"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/kvstore"
	"repro/internal/models"
)

// quickCfg returns a config with a small dataset so tests run fast; the
// steady-state extrapolation makes epoch shape independent of dataset size.
func quickCfg(t *testing.T, model string, gpus, batch int, method kvstore.Method) Config {
	t.Helper()
	cfg, err := NewConfig(model, gpus, batch, method)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func runQuick(t *testing.T, model string, gpus, batch int, method kvstore.Method) *Result {
	t.Helper()
	cfg := quickCfg(t, model, gpus, batch, method)
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewConfig("nope", 1, 16, kvstore.MethodP2P); err == nil {
		t.Error("unknown model should error")
	}
	cfg := quickCfg(t, "lenet", 1, 16, kvstore.MethodP2P)
	cfg.GPUs = 9
	if _, err := New(cfg); err == nil {
		t.Error("9 GPUs should error")
	}
	cfg.GPUs = 0
	if _, err := New(cfg); err == nil {
		t.Error("0 GPUs should error")
	}
	cfg = quickCfg(t, "lenet", 1, 16, kvstore.MethodP2P)
	cfg.Batch = 0
	if _, err := New(cfg); err == nil {
		t.Error("0 batch should error")
	}
	cfg = quickCfg(t, "lenet", 1, 16, "bogus")
	if _, err := New(cfg); err == nil {
		t.Error("bogus method should error")
	}
}

func TestResultBasics(t *testing.T) {
	res := runQuick(t, "lenet", 2, 16, kvstore.MethodP2P)
	if res.EpochTime <= 0 || res.SteadyIter <= 0 {
		t.Fatal("non-positive times")
	}
	if res.Iterations != 256*1024/(16*2) {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.Throughput <= 0 {
		t.Error("throughput should be positive")
	}
	if res.FPBPWall() != res.FPWall+res.BPWall {
		t.Error("FPBPWall inconsistent")
	}
	if got := res.FPWall + res.BPWall + res.WUWall; got > res.EpochTime {
		t.Errorf("stage walls (%v) exceed epoch (%v)", got, res.EpochTime)
	}
	if res.ComputeUtilization <= 0 || res.ComputeUtilization >= 1 {
		t.Errorf("utilization = %v out of (0,1)", res.ComputeUtilization)
	}
	if res.SyncPercent <= 0 || res.SyncPercent >= 100 {
		t.Errorf("sync%% = %v out of (0,100)", res.SyncPercent)
	}
}

func TestOOMConfigurationsRejected(t *testing.T) {
	cfg := quickCfg(t, "inception-v3", 4, 128, kvstore.MethodNCCL)
	_, err := New(cfg)
	if !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Fatalf("Inception-v3 b128 should OOM, got %v", err)
	}
	cfg.SkipMemoryCheck = true
	if _, err := New(cfg); err != nil {
		t.Fatalf("SkipMemoryCheck should allow it: %v", err)
	}
}

// Paper anchor: NCCL on a single GPU adds ~21.8% for LeNet batch 16, and
// the overhead grows with batch size for the small networks while staying
// small for the large ones.
func TestTableIIAnchors(t *testing.T) {
	overhead := func(model string, batch int) float64 {
		p := runQuick(t, model, 1, batch, kvstore.MethodP2P)
		n := runQuick(t, model, 1, batch, kvstore.MethodNCCL)
		return 100 * (n.EpochTime.Seconds() - p.EpochTime.Seconds()) / p.EpochTime.Seconds()
	}
	le16 := overhead("lenet", 16)
	if le16 < 12 || le16 > 32 {
		t.Errorf("LeNet b16 NCCL overhead = %.1f%%, want ~21.8%%", le16)
	}
	if le64 := overhead("lenet", 64); le64 <= le16 {
		t.Errorf("LeNet overhead should grow with batch: b16=%.1f%% b64=%.1f%%", le16, le64)
	}
	for _, m := range []string{"resnet", "googlenet"} {
		if ov := overhead(m, 16); ov < 0 || ov > 6 {
			t.Errorf("%s b16 overhead = %.1f%%, want small positive", m, ov)
		}
	}
}

// Paper anchor (§V-A): LeNet b16 speedups at 2/4/8 GPUs — P2P ≈
// 1.62/2.37/3.36, NCCL ≈ 1.56/2.27/2.77 — and P2P beats NCCL for LeNet.
func TestLeNetScalingShape(t *testing.T) {
	for _, m := range []kvstore.Method{kvstore.MethodP2P, kvstore.MethodNCCL} {
		base := runQuick(t, "lenet", 1, 16, m)
		prev := base.EpochTime
		speedups := map[int]float64{}
		for _, g := range []int{2, 4, 8} {
			r := runQuick(t, "lenet", g, 16, m)
			if r.EpochTime >= prev {
				t.Errorf("lenet %s: %d GPUs (%v) not faster than fewer (%v)", m, g, r.EpochTime, prev)
			}
			prev = r.EpochTime
			speedups[g] = base.EpochTime.Seconds() / r.EpochTime.Seconds()
		}
		// Sub-linear scaling: communication dominates the tiny network.
		if speedups[8] > 4.0 {
			t.Errorf("lenet %s 8-GPU speedup %.2f should be far below linear", m, speedups[8])
		}
		if speedups[8] < 2.0 {
			t.Errorf("lenet %s 8-GPU speedup %.2f too low", m, speedups[8])
		}
	}
	p := runQuick(t, "lenet", 4, 16, kvstore.MethodP2P)
	n := runQuick(t, "lenet", 4, 16, kvstore.MethodNCCL)
	if p.EpochTime >= n.EpochTime {
		t.Errorf("P2P (%v) should beat NCCL (%v) for LeNet at 4 GPUs", p.EpochTime, n.EpochTime)
	}
}

// Paper anchor: for the compute-intensive networks NCCL beats P2P at 4 and
// 8 GPUs (~1.1x and ~1.2-1.25x).
func TestNCCLBeatsP2PForLargeNets(t *testing.T) {
	for _, model := range []string{"resnet", "inception-v3"} {
		r4p := runQuick(t, model, 4, 16, kvstore.MethodP2P)
		r4n := runQuick(t, model, 4, 16, kvstore.MethodNCCL)
		s4 := r4p.EpochTime.Seconds() / r4n.EpochTime.Seconds()
		if s4 < 1.05 || s4 > 1.45 {
			t.Errorf("%s 4-GPU NCCL advantage = %.2fx, want ~1.1-1.3x", model, s4)
		}
		r8p := runQuick(t, model, 8, 16, kvstore.MethodP2P)
		r8n := runQuick(t, model, 8, 16, kvstore.MethodNCCL)
		s8 := r8p.EpochTime.Seconds() / r8n.EpochTime.Seconds()
		if s8 <= s4 {
			t.Errorf("%s NCCL advantage should grow with GPUs: 4=%.2f 8=%.2f", model, s4, s8)
		}
	}
}

// Paper anchor (§V-A): increasing batch size reduces epoch time roughly
// linearly; for LeNet on 4 GPUs with P2P the paper reports 1.92x and 3.67x
// going 16 -> 32 -> 64.
func TestBatchScalingNearLinear(t *testing.T) {
	b16 := runQuick(t, "lenet", 4, 16, kvstore.MethodP2P)
	b32 := runQuick(t, "lenet", 4, 32, kvstore.MethodP2P)
	b64 := runQuick(t, "lenet", 4, 64, kvstore.MethodP2P)
	r32 := b16.EpochTime.Seconds() / b32.EpochTime.Seconds()
	r64 := b16.EpochTime.Seconds() / b64.EpochTime.Seconds()
	if r32 < 1.6 || r32 > 2.3 {
		t.Errorf("16->32 factor = %.2f, want ~1.92", r32)
	}
	if r64 < 3.0 || r64 > 4.4 {
		t.Errorf("16->64 factor = %.2f, want ~3.67", r64)
	}
}

// Paper: FP+BP dominates epoch time for the compute-heavy networks at
// every GPU count, and single-GPU WU is negligible.
func TestStageBreakdownShapes(t *testing.T) {
	for _, g := range []int{1, 4} {
		r := runQuick(t, "inception-v3", g, 16, kvstore.MethodNCCL)
		if r.FPBPWall() < r.WUWall {
			t.Errorf("inception %d GPUs: FP+BP (%v) should dominate WU (%v)", g, r.FPBPWall(), r.WUWall)
		}
	}
	r1 := runQuick(t, "googlenet", 1, 16, kvstore.MethodNCCL)
	if float64(r1.WUWall) > 0.05*float64(r1.EpochTime) {
		t.Errorf("single-GPU WU (%v) should be tiny vs epoch (%v)", r1.WUWall, r1.EpochTime)
	}
}

// Paper Table III trends: cudaStreamSynchronize share grows with GPU count
// and shrinks with batch size.
func TestSyncOverheadTrends(t *testing.T) {
	g1 := runQuick(t, "lenet", 1, 16, kvstore.MethodNCCL)
	g8 := runQuick(t, "lenet", 8, 16, kvstore.MethodNCCL)
	if g8.SyncPercent <= g1.SyncPercent {
		t.Errorf("sync%% should grow with GPUs: 1=%.1f 8=%.1f", g1.SyncPercent, g8.SyncPercent)
	}
	b16 := runQuick(t, "lenet", 8, 16, kvstore.MethodNCCL)
	b64 := runQuick(t, "lenet", 8, 64, kvstore.MethodNCCL)
	if b64.SyncPercent >= b16.SyncPercent {
		t.Errorf("sync%% should shrink with batch: b16=%.1f b64=%.1f", b16.SyncPercent, b64.SyncPercent)
	}
}

// Weak scaling (paper Figure 5): with the dataset scaled by GPU count, the
// time normalized to 256K images is no worse than strong scaling, and
// slightly better for the API-bound small networks.
func TestWeakScalingAtLeastStrong(t *testing.T) {
	for _, model := range []string{"lenet", "googlenet"} {
		strong := runQuick(t, model, 4, 16, kvstore.MethodNCCL)
		cfg := quickCfg(t, model, 4, 16, kvstore.MethodNCCL)
		cfg.Images = cfg.Images * 4
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		weak, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		per256K := weak.EpochTime / 4
		if float64(per256K) > 1.02*float64(strong.EpochTime) {
			t.Errorf("%s: weak-scaled per-256K time (%v) should not exceed strong (%v)",
				model, per256K, strong.EpochTime)
		}
	}
}

func TestLowUtilizationForLeNet(t *testing.T) {
	r := runQuick(t, "lenet", 1, 16, kvstore.MethodP2P)
	// Paper: 18.3% compute utilization for LeNet.
	if r.ComputeUtilization > 0.35 {
		t.Errorf("LeNet utilization = %.2f, should be low (paper: 0.183)", r.ComputeUtilization)
	}
	big := runQuick(t, "inception-v3", 1, 16, kvstore.MethodP2P)
	if big.ComputeUtilization <= 2*r.ComputeUtilization {
		t.Error("Inception-v3 should utilize the GPU far better than LeNet")
	}
}

func TestProfileAccounting(t *testing.T) {
	r := runQuick(t, "lenet", 2, 16, kvstore.MethodNCCL)
	p := r.Profile
	if p.API("cudaLaunchKernel").Calls == 0 {
		t.Error("no launches recorded")
	}
	if p.API("cudaStreamSynchronize").Calls == 0 {
		t.Error("no syncs recorded")
	}
	if p.Kernel("ncclAllReduceRingKernel").Calls == 0 {
		t.Error("no NCCL kernels recorded")
	}
	if p.Kernel("conv_fprop").Calls == 0 {
		t.Error("no conv kernels recorded")
	}
}

func TestAsyncSGD(t *testing.T) {
	cfg := quickCfg(t, "lenet", 4, 16, kvstore.MethodP2P)
	cfg.Async = true
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochTime <= 0 {
		t.Fatal("async epoch not positive")
	}
	// Without the barrier, async should not be slower than sync.
	sync := runQuick(t, "lenet", 4, 16, kvstore.MethodP2P)
	if float64(res.EpochTime) > 1.1*float64(sync.EpochTime) {
		t.Errorf("async (%v) should not be much slower than sync (%v)", res.EpochTime, sync.EpochTime)
	}
}

func TestAsyncRequiresP2P(t *testing.T) {
	cfg := quickCfg(t, "lenet", 2, 16, kvstore.MethodNCCL)
	cfg.Async = true
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err == nil {
		t.Error("async with NCCL should error")
	}
}

func TestDetailProfileForTimeline(t *testing.T) {
	cfg := quickCfg(t, "lenet", 2, 16, kvstore.MethodNCCL)
	cfg.DetailIntervals = 500
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.rt.Profile().Intervals()) == 0 {
		t.Error("detail mode retained no intervals")
	}
}

func TestTensorCoreAblation(t *testing.T) {
	on := runQuick(t, "resnet", 1, 16, kvstore.MethodP2P)
	cfg := quickCfg(t, "resnet", 1, 16, kvstore.MethodP2P)
	cfg.TensorCores = false
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if off.EpochTime <= on.EpochTime {
		t.Errorf("disabling tensor cores (%v) should slow training (%v)", off.EpochTime, on.EpochTime)
	}
}

func TestSimItersConvergence(t *testing.T) {
	// More simulated iterations should barely change the extrapolated
	// epoch (steady state reached quickly).
	a := quickCfg(t, "googlenet", 4, 16, kvstore.MethodNCCL)
	a.SimIters = 3
	b := quickCfg(t, "googlenet", 4, 16, kvstore.MethodNCCL)
	b.SimIters = 8
	ta, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := ta.Run()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := tb.Run()
	if err != nil {
		t.Fatal(err)
	}
	diff := ra.EpochTime.Seconds() - rb.EpochTime.Seconds()
	if diff < 0 {
		diff = -diff
	}
	if diff/ra.EpochTime.Seconds() > 0.02 {
		t.Errorf("epoch estimate unstable: %v vs %v", ra.EpochTime, rb.EpochTime)
	}
}

func TestMemoryAndScheduleAccessors(t *testing.T) {
	cfg := quickCfg(t, "alexnet", 4, 32, kvstore.MethodNCCL)
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Memory().Worker() <= 0 {
		t.Error("memory estimate missing")
	}
	if tr.Schedule().Iterations != 256*1024/(32*4) {
		t.Errorf("schedule iterations = %d", tr.Schedule().Iterations)
	}
}

func TestAllModelsRunAllMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in long mode only")
	}
	for _, d := range models.All() {
		for _, m := range []kvstore.Method{kvstore.MethodP2P, kvstore.MethodNCCL} {
			for _, g := range []int{1, 2, 4, 8} {
				name, method, gpus := d.Name, m, g
				cfg, err := NewConfig(map[string]string{
					"LeNet": "lenet", "AlexNet": "alexnet", "GoogLeNet": "googlenet",
					"Inception-v3": "inception-v3", "ResNet": "resnet",
				}[name], gpus, 16, method)
				if err != nil {
					t.Fatal(err)
				}
				tr, err := New(cfg)
				if err != nil {
					t.Fatalf("%s %s %d: %v", name, method, gpus, err)
				}
				res, err := tr.Run()
				if err != nil {
					t.Fatalf("%s %s %d: %v", name, method, gpus, err)
				}
				if res.EpochTime <= 0 || res.EpochTime > 2*time.Hour {
					t.Errorf("%s %s %d: implausible epoch %v", name, method, gpus, res.EpochTime)
				}
			}
		}
	}
}

func TestRunEpochs(t *testing.T) {
	cfg := quickCfg(t, "lenet", 2, 16, kvstore.MethodNCCL)
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	three, err := tr2.RunEpochs(3)
	if err != nil {
		t.Fatal(err)
	}
	if three.Iterations != 3*one.Iterations {
		t.Errorf("iterations = %d, want 3x%d", three.Iterations, one.Iterations)
	}
	// Setup amortizes: 3 epochs take less than 3x one epoch.
	if float64(three.EpochTime) >= 3*float64(one.EpochTime) {
		t.Errorf("3 epochs (%v) should beat 3x one epoch (%v)", three.EpochTime, 3*one.EpochTime)
	}
	// Throughput improves accordingly.
	if three.Throughput <= one.Throughput {
		t.Error("multi-epoch throughput should exceed single-epoch")
	}
	tr3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr3.RunEpochs(0); err == nil {
		t.Error("0 epochs should error")
	}
}
