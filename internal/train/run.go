package train

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/kvstore"
	"repro/internal/profiler"
	"repro/internal/topology"
	"repro/internal/units"
)

// iterTimes captures one simulated iteration's landmark times.
type iterTimes struct {
	start   time.Duration
	fpEnd   time.Duration
	bpEnd   time.Duration
	barrier time.Duration
}

func (it iterTimes) total() time.Duration { return it.barrier - it.start }

// recomputeKernel relabels a forward kernel re-executed during the
// backward pass under gradient checkpointing.
func recomputeKernel(k gpu.KernelCost) gpu.KernelCost {
	k.Name = "recompute_" + k.Name
	return k
}

// sgdUpdateCost is the root GPU's weight-update kernel for one parameter
// array: w -= lr * (grad + momentum bookkeeping) — a bandwidth-bound axpy
// over the array.
func sgdUpdateCost(size units.Bytes) gpu.KernelCost {
	elems := int64(size / units.Float32Size)
	return gpu.KernelCost{
		Name:        "sgd_update",
		FLOPs:       units.FLOPs(4 * elems),
		MemBytes:    5 * size,
		Parallelism: elems,
		Class:       gpu.ClassMemory,
	}
}

// bookUpdate runs the optimizer kernel for one parameter array on the root
// GPU. With the multi-GPU P2P (device) kvstore the update is an ordinary
// kernel on the root's compute queue — it lands behind whatever
// backpropagation work is already enqueued there, which is part of why
// GPU 0 bottlenecks that method. The NCCL kvstore runs its updater on the
// kvstore's dedicated stream, so there it goes to the communication queue
// and pipelines with the collectives. On a single GPU there is no
// aggregation role and both methods place the update identically (the
// updater stream), leaving NCCL's collective kernels as the only
// difference — the overhead the paper's Table II isolates.
func (t *Trainer) bookUpdate(ready time.Duration, size units.Bytes) time.Duration {
	root := t.backend.Root()
	dev := t.rt.Device(root)
	cost := sgdUpdateCost(size)
	var ks, end time.Duration
	track := t.rt.TrackCompute(root)
	if t.backend.Name() == kvstore.MethodNCCL || t.cfg.GPUs == 1 {
		ks, end = dev.BookCommKernel(ready, dev.Spec.KernelDuration(cost))
		track = t.rt.TrackComm(root)
	} else {
		ks, end = dev.BookKernel(ready, cost)
	}
	if t.prof != nil {
		t.prof.Record(profiler.Interval{
			Kind: profiler.KindKernel, Name: "sgd_update", Stage: profiler.StageWU,
			Track: track, Start: ks, End: end,
		})
	}
	return end
}

// sessionStartup is the per-session framework fixed cost paid inside the
// first measured epoch: stream/context creation and cuDNN convolution
// autotuning (one probe per convolution layer). Amortizing it over the
// larger weak-scaling dataset is what gives the small networks their
// weak-over-strong advantage in the paper's Figure 5.
func (t *Trainer) sessionStartup() time.Duration {
	const (
		base    = 25 * time.Millisecond
		perConv = 8 * time.Millisecond
	)
	return base + time.Duration(t.cfg.Model.ConvLayers)*perConv
}

// Run simulates one training epoch and returns its measurements.
func (t *Trainer) Run() (*Result, error) {
	if t.cfg.Parallelism == ModelParallel {
		if t.cfg.Async {
			return nil, fmt.Errorf("train: async model parallelism is not supported")
		}
		return t.runModelParallel()
	}
	if t.cfg.Parallelism == HybridOWT {
		if t.cfg.Async {
			return nil, fmt.Errorf("train: async hybrid parallelism is not supported")
		}
		if t.cfg.GPUs == 1 {
			return nil, fmt.Errorf("train: hybrid parallelism needs multiple GPUs")
		}
		return t.runHybridOWT()
	}
	if t.cfg.Async {
		return t.runAsync()
	}
	// Synchronous data parallelism compiles to a Window and extrapolates
	// it — the same path a warm artifact-cache hit takes, so cold and
	// cached runs share one finalization code path (and therefore produce
	// byte-identical results).
	win, err := t.SimulateWindow()
	if err != nil {
		return nil, err
	}
	return win.Extrapolate(t.cfg.Images)
}

// SetupTimeApprox exposes the setup window used by busy-fraction scaling.
func (t *Trainer) SetupTimeApprox() time.Duration {
	return t.sessionStartup() + t.backend.SetupCost()
}

// runIteration simulates one synchronous iteration beginning at iterStart
// with each GPU's input batch staged at dataReady. It returns the
// iteration landmarks and the next iteration's staging times.
func (t *Trainer) runIteration(iterStart time.Duration, dataReady map[topology.NodeID]time.Duration) (iterTimes, map[topology.NodeID]time.Duration, error) {
	it := iterTimes{start: iterStart}

	// Per-layer gradient scratch, reused across iterations.
	grads := t.grads[:0]

	for _, d := range t.devs {
		s := t.compute[d]
		s.WaitEvent(dataReady[d])
		host := iterStart
		var kEnd time.Duration
		for _, k := range t.fwd {
			host, kEnd = s.Launch(profiler.StageFP, k, host)
		}
		if kEnd > it.fpEnd {
			it.fpEnd = kEnd
		}
		// Gradient checkpointing re-executes the forward kernels between
		// checkpoints while backpropagating — approximately one extra
		// forward pass folded into BP.
		if t.cfg.Checkpointing {
			for _, k := range t.fwd {
				host, _ = s.Launch(profiler.StageBP, recomputeKernel(k), host)
			}
		}
		gi := 0
		for _, step := range t.bwd {
			var stepEnd time.Duration
			for _, k := range step.Kernels {
				host, stepEnd = s.Launch(profiler.StageBP, k, host)
			}
			if step.Layer != nil {
				size := units.BytesOf(step.Layer.Params, units.Float32Size)
				if d == t.devs[0] {
					grads = append(grads, layerGrad{name: step.Layer.Name, bytes: size, ready: stepEnd})
				} else {
					// Synchronous SGD: a layer's exchange starts when the
					// slowest GPU has its gradient.
					if stepEnd > grads[gi].ready {
						grads[gi].ready = stepEnd
					}
					gi++
				}
			}
			if stepEnd > it.bpEnd {
				it.bpEnd = stepEnd
			}
		}
		// Iteration-end sync on the compute stream.
		syncEnd := s.Synchronize(profiler.StageBP, host)
		_ = syncEnd
	}

	// Weight update: push -> root update -> pull, pipelined in
	// gradient-availability (reverse layer) order. With bucketing enabled,
	// consecutive arrays are fused until the bucket reaches the threshold,
	// amortizing per-operation overheads at the cost of waiting for the
	// bucket's slowest member.
	lastPull := it.bpEnd
	exchange := func(name string, bytes units.Bytes, ready time.Duration) error {
		pushEnd, err := t.backend.PushGradient(profiler.StageWU, name, bytes, ready)
		if err != nil {
			return err
		}
		updEnd := t.bookUpdate(pushEnd, bytes)
		pullEnd, err := t.backend.PullWeights(profiler.StageWU, name, bytes, updEnd)
		if err != nil {
			return err
		}
		if pullEnd > lastPull {
			lastPull = pullEnd
		}
		return nil
	}
	var bucketBytes units.Bytes
	var bucketReady time.Duration
	bucketName := ""
	for _, g := range grads {
		if t.cfg.BucketBytes <= 0 {
			if err := exchange(g.name, g.bytes, g.ready); err != nil {
				return it, nil, err
			}
			continue
		}
		bucketBytes += g.bytes
		if g.ready > bucketReady {
			bucketReady = g.ready
		}
		if bucketName == "" {
			bucketName = "bucket:" + g.name
		}
		if bucketBytes >= t.cfg.BucketBytes {
			if err := exchange(bucketName, bucketBytes, bucketReady); err != nil {
				return it, nil, err
			}
			bucketBytes, bucketReady, bucketName = 0, 0, ""
		}
	}
	if bucketBytes > 0 {
		if err := exchange(bucketName, bucketBytes, bucketReady); err != nil {
			return it, nil, err
		}
	}

	// Prefetch next iteration's batches (overlapped with compute).
	next := make(map[topology.NodeID]time.Duration, len(t.devs))
	for _, d := range t.devs {
		_, end, err := t.rt.MemcpyHostToDevice(d, t.schedule.BatchBytes(), profiler.StageDataLoad, iterStart)
		if err != nil {
			return it, nil, err
		}
		next[d] = end
	}

	// Each GPU's host blocks until every weight array is pulled; the
	// synchronous barrier is the slowest of those waits.
	barrier := lastPull
	for _, d := range t.devs {
		w := t.rt.HostWait(d, profiler.StageWU, it.bpEnd, lastPull)
		if w > barrier {
			barrier = w
		}
	}
	it.barrier = barrier
	t.grads = grads
	if it.fpEnd < iterStart || it.bpEnd < it.fpEnd || it.barrier < it.bpEnd {
		return it, nil, fmt.Errorf("train: non-causal iteration landmarks %+v", it)
	}
	return it, next, nil
}

// layerGrad is one parameter array's gradient availability during an
// iteration's exchange phase.
type layerGrad struct {
	name  string
	bytes units.Bytes
	ready time.Duration
}
