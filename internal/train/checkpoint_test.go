package train

import (
	"testing"

	"repro/internal/kvstore"
)

// Gradient checkpointing is the paper's requested "algorithm-level change"
// for the feature-map wall: it must unlock batch sizes the measured system
// could not train, at a bounded time cost.
func TestCheckpointingUnlocksLargerBatches(t *testing.T) {
	// Inception-v3 at batch 128 OOMs without checkpointing...
	plain := quickCfg(t, "inception-v3", 4, 128, kvstore.MethodNCCL)
	if _, err := New(plain); err == nil {
		t.Fatal("batch 128 should OOM without checkpointing")
	}
	// ...and trains with it.
	ck := quickCfg(t, "inception-v3", 4, 128, kvstore.MethodNCCL)
	ck.Checkpointing = true
	tr, err := New(ck)
	if err != nil {
		t.Fatalf("checkpointing should fit batch 128: %v", err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
}

// The cost: roughly one extra forward pass during BP, so the epoch slows
// by a bounded factor (~1.2-1.45x for conv nets) at equal batch size.
func TestCheckpointingTimeCostBounded(t *testing.T) {
	plain := runQuick(t, "resnet", 4, 32, kvstore.MethodNCCL)
	cfg := quickCfg(t, "resnet", 4, 32, kvstore.MethodNCCL)
	cfg.Checkpointing = true
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	slowdown := ck.EpochTime.Seconds() / plain.EpochTime.Seconds()
	if slowdown < 1.1 || slowdown > 1.6 {
		t.Errorf("checkpointing slowdown = %.2fx, want ~1.2-1.45x", slowdown)
	}
	if ck.Profile.Kernel("recompute_conv_fprop").Calls == 0 {
		t.Error("no recompute kernels recorded")
	}
	// Memory shrinks substantially.
	if tr.Memory().FeatureMaps >= plain.Memory.FeatureMaps/2 {
		t.Errorf("checkpointed feature maps %v vs plain %v", tr.Memory().FeatureMaps, plain.Memory.FeatureMaps)
	}
}

// Winograd lowering (cuDNN's 3x3 fast path) must speed up the 3x3-heavy
// networks and leave AlexNet (11x11/5x5 convs and FC weight) nearly alone.
func TestWinogradAblation(t *testing.T) {
	speedup := func(model string) float64 {
		plain := runQuick(t, model, 1, 32, kvstore.MethodP2P)
		cfg := quickCfg(t, model, 1, 32, kvstore.MethodP2P)
		cfg.Winograd = true
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		if model == "resnet" && wg.Profile.Kernel("conv_winograd_fprop").Calls == 0 {
			t.Error("no winograd kernels recorded for resnet")
		}
		return plain.EpochTime.Seconds() / wg.EpochTime.Seconds()
	}
	res := speedup("resnet") // 3x3-dominated
	if res < 1.1 {
		t.Errorf("ResNet Winograd speedup %.2f, want > 1.1", res)
	}
	alex := speedup("alexnet") // few eligible convs
	if alex >= res {
		t.Errorf("AlexNet (%.2f) should gain less than ResNet (%.2f)", alex, res)
	}
}
