// Package train simulates data-parallel synchronous-SGD training on the
// modeled DGX-1, reproducing the paper's measurement methodology: per-GPU
// executors enqueue the FP and BP kernel plans, per-layer gradients are
// pushed through the kvstore as backpropagation produces them (overlapping
// BP with WU as MXNet does), the root GPU updates weights and the kvstore
// distributes them, and a synchronous barrier separates iterations.
//
// A handful of iterations are simulated exactly and the steady-state
// iteration is extrapolated to the full epoch (iterations are identical in
// the steady state, so the extrapolation is exact up to the warmup edge).
package train

import (
	"fmt"
	"time"

	"repro/internal/cuda"
	"repro/internal/data"
	"repro/internal/dnn"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/interconnect"
	"repro/internal/kvstore"
	"repro/internal/memmodel"
	"repro/internal/models"
	"repro/internal/nccl"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// Config describes one training run (one epoch, as the paper measures).
type Config struct {
	// Model is the network to train (from the models zoo).
	Model models.Description
	// GPUs is the device count (1..8; devices 0..GPUs-1 are used, as
	// MXNet's default device assignment does).
	GPUs int
	// Batch is the per-GPU mini-batch size.
	Batch int
	// Method selects the communication backend (p2p or nccl).
	Method kvstore.Method
	// Images is the epoch's dataset size (already scaled for weak
	// scaling). Zero means the paper's 256K.
	Images int64
	// TensorCores lowers conv/GEMM kernels to the tensor-core pipeline.
	TensorCores bool
	// SimIters is how many iterations to simulate exactly before
	// extrapolating (>= 2; default 4).
	SimIters int
	// DetailIntervals retains that many profiler intervals for timeline
	// export (0 = aggregates only).
	DetailIntervals int
	// SkipMemoryCheck disables the OOM gate (used to probe hypothetical
	// configurations).
	SkipMemoryCheck bool
	// RoutePolicy overrides peer-copy routing (default staged NVLink).
	RoutePolicy topology.RoutePolicy
	// Async enables the asynchronous-SGD extension: no inter-GPU barrier;
	// each GPU exchanges with the server independently.
	Async bool
	// Hardware names a registered machine ("dgx1" default, "dgx1-pascal",
	// "dgx2", "dgx-a100", "dgx-h100") resolving to a (topology, GPU spec)
	// pair. Mutually exclusive with a non-default name and Topology.
	Hardware string
	// Protocol selects the NCCL transfer protocol ("simple" default,
	// "ll", "ll128", "auto"). "auto" picks protocol and ring-vs-tree
	// algorithm per collective by message size and fabric; it therefore
	// conflicts with NCCLTree, which pins the algorithm.
	Protocol string
	// Topology overrides the machine (default: the DGX-1). Ablations use
	// topology.DGX1Scaled / DGX1PCIeOnly to explore interconnect variants.
	Topology *topology.Topology
	// Faults injects a degraded-fabric plan (failed NVLink bricks, link
	// bandwidth loss, straggler GPUs, PCIe contention) into the default
	// DGX-1. Mutually exclusive with Topology: a fault plan describes
	// departures from the stock machine, not from an arbitrary override.
	Faults *faults.Plan
	// GPUSpec overrides the device model (default: the V100).
	GPUSpec *gpu.Spec
	// Parallelism selects how the network is distributed (default: data
	// parallelism, the paper's measured configuration).
	Parallelism Parallelism
	// MicroBatches splits each mini-batch for the model-parallel pipeline
	// (default: 4x the stage count).
	MicroBatches int
	// BucketBytes fuses consecutive gradient arrays into buckets of at
	// least this size before exchanging them (0 = per-array exchange, the
	// paper-era MXNet behaviour). Bucketing amortizes the per-operation
	// overheads the paper identifies as the small networks' bottleneck.
	BucketBytes units.Bytes
	// Devices pins training to specific GPUs (default: 0..GPUs-1, MXNet's
	// assignment). On the DGX-1's asymmetric topology, placement changes
	// communication cost; Devices must have exactly GPUs entries.
	Devices []topology.NodeID
	// NCCLTree selects NCCL's double-binary-tree algorithm instead of the
	// rings the paper measured — the later NCCL release's answer to the
	// small-message latency the paper identified.
	NCCLTree bool
	// Checkpointing enables sqrt-N gradient checkpointing: feature-map
	// memory collapses to ~2*sqrt(n) resident activations at the cost of
	// one extra forward pass during BP — the algorithm-level memory remedy
	// the paper's §V-D calls for.
	Checkpointing bool
	// Winograd lowers eligible 3x3 convolutions through the Winograd
	// transform (a cuDNN algorithm choice).
	Winograd bool
}

// Parallelism selects a distribution strategy.
type Parallelism int

// Distribution strategies (paper §I: data parallelism replicates the
// model and exchanges gradients; model parallelism partitions layers and
// exchanges activations; the hybrid scheme data-parallelizes the conv body
// and tensor-parallelizes the FC head).
const (
	DataParallel Parallelism = iota
	ModelParallel
	HybridOWT
)

// String names the strategy.
func (p Parallelism) String() string {
	switch p {
	case ModelParallel:
		return "model-parallel"
	case HybridOWT:
		return "hybrid-owt"
	}
	return "data-parallel"
}

// NewConfig returns the paper's default configuration for a model name.
func NewConfig(model string, gpus, batch int, method kvstore.Method) (Config, error) {
	d, err := models.ByName(model)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Model:       d,
		GPUs:        gpus,
		Batch:       batch,
		Method:      method,
		Images:      data.PaperDatasetImages,
		TensorCores: true,
	}, nil
}

func (c *Config) normalize() error {
	if c.Model.Net == nil {
		return fmt.Errorf("train: config has no model")
	}
	if c.GPUs < 1 {
		return fmt.Errorf("train: GPU count %d out of range", c.GPUs)
	}
	if c.Topology != nil && !isDefaultHardware(c.Hardware) {
		return fmt.Errorf("train: hardware %q and an explicit Topology are mutually exclusive", c.Hardware)
	}
	if c.Topology != nil {
		// Validate the GPU request against the override topology's actual
		// device count, not the DGX-1's. (Previously this bound only
		// applied when Topology was nil, so an override topology accepted
		// any GPU count at validation time.)
		if n := len(c.Topology.GPUs()); c.GPUs > n {
			return fmt.Errorf("train: topology has %d GPUs, requested %d", n, c.GPUs)
		}
	} else {
		m, err := MachineByName(c.Hardware)
		if err != nil {
			return err
		}
		if c.GPUs > m.GPUs {
			return fmt.Errorf("train: %s has %d GPUs, requested %d", m.Title, m.GPUs, c.GPUs)
		}
	}
	if _, err := nccl.ParseProtocol(c.Protocol); err != nil {
		return fmt.Errorf("train: %w", err)
	}
	if c.NCCLTree && c.Protocol == "auto" {
		return fmt.Errorf("train: protocol \"auto\" picks the algorithm per collective; clear NCCLTree")
	}
	if c.Batch <= 0 {
		return fmt.Errorf("train: bad batch size %d", c.Batch)
	}
	if c.Method == "" {
		c.Method = kvstore.MethodNCCL
	}
	if c.Images <= 0 {
		c.Images = data.PaperDatasetImages
	}
	if c.SimIters < 2 {
		c.SimIters = DefaultSimIters
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	c.Faults = c.Faults.Normalize()
	if c.Faults != nil && c.Topology != nil {
		return fmt.Errorf("train: fault plans describe the default DGX-1; clear Config.Topology")
	}
	if err := c.Faults.CheckHardware(c.Hardware); err != nil {
		return fmt.Errorf("train: %w", err)
	}
	return nil
}

// Result is the outcome of one simulated epoch.
type Result struct {
	Config     Config
	Iterations int64

	// EpochTime is the wall time of the epoch (setup + all iterations).
	EpochTime time.Duration
	// SetupTime covers backend initialization and the initial model
	// broadcast.
	SetupTime time.Duration
	// SteadyIter is the converged per-iteration time.
	SteadyIter time.Duration

	// Per-epoch wall-time decomposition (the paper's Figure 4): FPWall and
	// BPWall are computation; WUWall is the exposed weight-update /
	// communication tail after BP completes.
	FPWall, BPWall, WUWall time.Duration

	// Profile holds kernel/API/transfer accounting scaled to the epoch.
	Profile *profiler.Profile
	// Memory is the per-GPU usage estimate.
	Memory memmodel.Estimate

	// Throughput in images per second.
	Throughput float64
	// ComputeUtilization is executed FLOPs over peak FLOPs across the
	// epoch (the paper quotes 18.3% for LeNet).
	ComputeUtilization float64
	// SyncPercent is cudaStreamSynchronize blocked time as a share of
	// epoch time per GPU (Table III).
	SyncPercent float64

	// GPUComputeBusy is each device's compute-queue busy fraction of the
	// epoch. The spread quantifies the idle time the paper attributes to
	// asymmetric links and the GPU0 aggregation role.
	GPUComputeBusy map[topology.NodeID]float64
}

// IdleSpread returns the difference between the busiest and least busy
// GPU's compute fraction — zero on a single GPU, growing with the
// synchronization and aggregation imbalance.
func (r *Result) IdleSpread() float64 {
	var min, max float64
	first := true
	for _, f := range r.GPUComputeBusy {
		if first {
			min, max = f, f
			first = false
			continue
		}
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	return max - min
}

// FPBPWall returns the combined computation wall time (as Figure 4 plots).
func (r *Result) FPBPWall() time.Duration { return r.FPWall + r.BPWall }

// Trainer holds one run's simulation state.
type Trainer struct {
	cfg     Config
	eng     *sim.Engine
	fab     *interconnect.Fabric
	rt      *cuda.Runtime
	prof    *profiler.Profile
	backend kvstore.Backend
	devs    []topology.NodeID

	compute map[topology.NodeID]*cuda.Stream

	fwd      []gpu.KernelCost
	bwd      []dnn.BackwardStep
	schedule data.Schedule
	memory   memmodel.Estimate

	// grads is runIteration's per-layer scratch, reused across iterations.
	grads []layerGrad
	// ran guards the single-shot simulation (the engine is consumed).
	ran bool
	// check, when set, is consulted between simulated iterations; a
	// non-nil return aborts the run with that error. It is the
	// cooperative-cancellation hook the core layer wires a request
	// context into, so an abandoned request stops burning CPU at the
	// next iteration boundary instead of simulating its whole epoch.
	check func() error
}

// SetCheck installs a cancellation probe consulted between simulated
// iterations (see Trainer.check). A nil probe (the default) never
// aborts. It must be set before Run or SimulateWindow.
func (t *Trainer) SetCheck(check func() error) { t.check = check }

// cancelled consults the cancellation probe, if any.
func (t *Trainer) cancelled() error {
	if t.check == nil {
		return nil
	}
	return t.check()
}

// New builds a trainer, enforcing the device-memory gate (it returns an
// error wrapping gpu.ErrOutOfMemory for untrainable configurations, as the
// paper hit for Inception-v3/ResNet beyond batch 64).
func New(cfg Config) (*Trainer, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	top := cfg.Topology
	machineSpec := gpu.V100()
	if top == nil {
		if isDefaultHardware(cfg.Hardware) {
			// The fault plan owns the fabric: failed bricks vanish from
			// the link graph (ring search and routing see the degraded
			// machine), degraded links lose bandwidth, PCIe contention
			// shrinks the host links. A nil plan builds the healthy DGX-1.
			top = cfg.Faults.Topology()
		} else {
			// normalize already resolved the name and rejected fault
			// plans on non-DGX-1 hardware.
			m, err := MachineByName(cfg.Hardware)
			if err != nil {
				return nil, err
			}
			top = m.Build()
			machineSpec = m.Spec()
		}
	}
	if err := top.Validate(); err != nil {
		return nil, err
	}
	if n := len(top.GPUs()); cfg.GPUs > n {
		return nil, fmt.Errorf("train: topology has %d GPUs, requested %d", n, cfg.GPUs)
	}
	fab := interconnect.New(eng, top)
	var prof *profiler.Profile
	if cfg.DetailIntervals > 0 {
		prof = profiler.NewDetailed(cfg.DetailIntervals)
	} else {
		prof = profiler.New()
	}
	devs := cfg.Devices
	if devs == nil {
		devs = make([]topology.NodeID, cfg.GPUs)
		for i := range devs {
			devs[i] = topology.NodeID(i)
		}
	} else {
		if len(devs) != cfg.GPUs {
			return nil, fmt.Errorf("train: %d devices pinned for %d GPUs", len(devs), cfg.GPUs)
		}
		seen := map[topology.NodeID]bool{}
		for _, d := range devs {
			if seen[d] {
				return nil, fmt.Errorf("train: duplicate device %d", d)
			}
			seen[d] = true
		}
		devs = append([]topology.NodeID(nil), devs...)
	}
	spec := machineSpec
	if cfg.GPUSpec != nil {
		spec = *cfg.GPUSpec
	}
	// Straggler GPUs run a uniformly slowed spec; healthy devices keep the
	// base spec.
	rt, err := cuda.NewRuntimeWithSpecs(fab, spec, cfg.Faults.Specs(spec), devs, cuda.DefaultCosts(), prof)
	if err != nil {
		return nil, err
	}
	rt.SetRoutePolicy(cfg.RoutePolicy)
	ncfg := nccl.DefaultConfig()
	if cfg.NCCLTree {
		ncfg.Algorithm = nccl.AlgoTree
	}
	// normalize already vetted the spelling; the parse cannot fail here.
	ncfg.Protocol, _ = nccl.ParseProtocol(cfg.Protocol)
	backend, err := kvstore.NewWithNCCL(cfg.Method, rt, devs, ncfg)
	if err != nil {
		return nil, err
	}

	t := &Trainer{
		cfg:     cfg,
		eng:     eng,
		fab:     fab,
		rt:      rt,
		prof:    prof,
		backend: backend,
		devs:    devs,
		compute: make(map[topology.NodeID]*cuda.Stream, len(devs)),
	}
	for _, d := range devs {
		t.compute[d] = rt.Stream(d, "train")
	}

	opts := dnn.PlanOptions{TensorCores: cfg.TensorCores, Winograd: cfg.Winograd}
	t.fwd = cfg.Model.Net.ForwardPlan(cfg.Batch, opts)
	t.bwd = cfg.Model.Net.BackwardPlan(cfg.Batch, opts)

	ds := data.ImageNetSubset(cfg.Images)
	t.schedule, err = data.NewSchedule(ds, cfg.Model.InputShape, cfg.Batch, cfg.GPUs)
	if err != nil {
		return nil, err
	}

	t.memory = memmodel.Compute(cfg.Model.Net, cfg.Batch, cfg.GPUs > 1)
	if cfg.Checkpointing {
		t.memory = memmodel.ComputeCheckpointed(cfg.Model.Net, cfg.Batch, cfg.GPUs > 1)
	}
	if cfg.Parallelism == ModelParallel {
		// Each GPU holds only its stage: no replication, no aggregation
		// premium.
		t.memory = memmodel.ScaleStages(memmodel.Compute(cfg.Model.Net, cfg.Batch, false), cfg.GPUs)
	}
	if !cfg.SkipMemoryCheck {
		if err := t.allocateMemory(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// allocateMemory reserves the estimated footprint on every device,
// surfacing OOM exactly where nvidia-smi would show it.
func (t *Trainer) allocateMemory() error {
	for _, d := range t.devs {
		dev := t.rt.Device(d)
		est := t.memory
		use := est.Worker()
		if d == t.backend.Root() {
			use = est.Root()
		}
		if err := dev.Memory.Alloc("training", use+memmodel.DriverReserve); err != nil {
			return fmt.Errorf("train: %s batch %d on %d GPUs: %w",
				t.cfg.Model.Name, t.cfg.Batch, t.cfg.GPUs, err)
		}
	}
	return nil
}

// RunEpochs simulates a training session of n epochs. Setup (framework
// startup, communicator construction, initial model broadcast) is paid
// once; each subsequent epoch repeats the steady schedule — the paper's
// observation that per-epoch stage times are constant, made explicit. The
// returned Result covers the whole session, with Iterations summed.
func (t *Trainer) RunEpochs(n int) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("train: epoch count %d out of range", n)
	}
	first, err := t.Run()
	if err != nil {
		return nil, err
	}
	if n == 1 {
		return first, nil
	}
	perEpoch := first.EpochTime - first.SetupTime
	out := *first
	out.EpochTime = first.SetupTime + time.Duration(n)*perEpoch
	out.Iterations = first.Iterations * int64(n)
	out.FPWall *= time.Duration(n)
	out.BPWall *= time.Duration(n)
	out.WUWall *= time.Duration(n)
	out.Throughput = float64(int64(n)*t.schedule.Images) / out.EpochTime.Seconds()
	return &out, nil
}

// Memory returns the per-GPU memory estimate.
func (t *Trainer) Memory() memmodel.Estimate { return t.memory }

// Schedule returns the epoch's mini-batch plan.
func (t *Trainer) Schedule() data.Schedule { return t.schedule }
