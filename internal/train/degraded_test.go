package train

import (
	"testing"

	"repro/internal/kvstore"
	"repro/internal/nccl"
	"repro/internal/topology"
)

// Failure injection: removing NVLink bricks must degrade performance
// gracefully, never break training.

func TestDegradedRingEdgeLosesOneRing(t *testing.T) {
	// 0-1 carries one lane of each 8-GPU Hamiltonian ring; removing it
	// leaves at most... zero NVLink rings through all 8 GPUs that avoid
	// the 0-1 edge may still exist — what matters is the builder finds
	// strictly fewer rings and never reuses missing capacity.
	full := nccl.BuildRings(topology.DGX1(), gpus8(), 2)
	degraded := nccl.BuildRings(topology.DGX1Degraded([2]topology.NodeID{0, 1}), gpus8(), 2)
	if len(degraded) >= len(full) && len(full) == 2 {
		// Equal count is acceptable only if rings avoid the failed edge.
		for _, r := range degraded {
			for i := range r.Order {
				a, b := r.Order[i], r.Order[(i+1)%len(r.Order)]
				if (a == 0 && b == 1) || (a == 1 && b == 0) {
					t.Fatal("degraded ring uses the failed link")
				}
			}
		}
	}
}

func gpus8() []topology.NodeID {
	out := make([]topology.NodeID, 8)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func TestTrainingSurvivesSingleLinkFailure(t *testing.T) {
	healthy := runOnTopology(t, topology.DGX1(), "googlenet", 8, 16, kvstore.MethodNCCL)
	degraded := runOnTopology(t, topology.DGX1Degraded([2]topology.NodeID{0, 1}),
		"googlenet", 8, 16, kvstore.MethodNCCL)
	if degraded.EpochTime < healthy.EpochTime {
		t.Errorf("losing a link should not speed training: %v vs %v",
			degraded.EpochTime, healthy.EpochTime)
	}
	// Graceful: within 3x of healthy, not a collapse to PCIe-only misery
	// unless rings truly vanish.
	if float64(degraded.EpochTime) > 3*float64(healthy.EpochTime) {
		t.Errorf("single link failure caused %v vs %v", degraded.EpochTime, healthy.EpochTime)
	}
}

func TestTrainingSurvivesSevereDegradation(t *testing.T) {
	// Remove every link incident to GPU0's quad neighbors except PCIe:
	// training must still complete via staged/PCIe routes.
	top := topology.DGX1Degraded(
		[2]topology.NodeID{0, 1}, [2]topology.NodeID{0, 2},
		[2]topology.NodeID{0, 3}, [2]topology.NodeID{0, 6},
	)
	if err := top.Validate(); err != nil {
		t.Fatalf("degraded topology invalid: %v", err)
	}
	res := runOnTopology(t, top, "lenet", 8, 16, kvstore.MethodP2P)
	if res.EpochTime <= 0 {
		t.Fatal("training failed on degraded machine")
	}
}

func TestDegradedIsolatedGPUFallsToPCIeRing(t *testing.T) {
	// GPU0 loses all NVLink: NCCL cannot build an 8-GPU NVLink ring and
	// must fall back to the PCIe ring.
	top := topology.DGX1Degraded(
		[2]topology.NodeID{0, 1}, [2]topology.NodeID{0, 2},
		[2]topology.NodeID{0, 3}, [2]topology.NodeID{0, 6},
	)
	rings := nccl.BuildRings(top, gpus8(), 2)
	if len(rings) != 0 {
		t.Fatalf("no NVLink ring should exist through isolated GPU0, got %v", rings)
	}
	pcie, err := nccl.PCIeRing(top, gpus8())
	if err != nil {
		t.Fatal(err)
	}
	if !pcie.PCIe || len(pcie.Order) != 8 {
		t.Errorf("bad PCIe fallback ring: %v", pcie)
	}
	// And training with NCCL still works on it.
	res := runOnTopology(t, top, "lenet", 8, 16, kvstore.MethodNCCL)
	if res.EpochTime <= 0 {
		t.Fatal("NCCL training failed on PCIe fallback")
	}
}
