package train

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/kvstore"
	"repro/internal/nccl"
	"repro/internal/topology"
)

// Failure injection: removing NVLink bricks must degrade performance
// gracefully, never break training.

func TestDegradedRingEdgeLosesOneRing(t *testing.T) {
	// An earlier version of this test hid both assertions under a
	// conditional that never held, so it passed vacuously. The real
	// invariants: removing the 0-1 brick can only shrink the ring set,
	// and whatever rings survive must never route over the failed edge.
	full := nccl.BuildRings(topology.DGX1(), gpus8(), 2)
	if len(full) == 0 {
		t.Fatal("healthy DGX-1 must yield at least one 8-GPU NVLink ring")
	}
	degraded := nccl.BuildRings(topology.DGX1Degraded([2]topology.NodeID{0, 1}), gpus8(), 2)
	if len(degraded) > len(full) {
		t.Errorf("removing a link grew the ring set: %d rings vs %d healthy",
			len(degraded), len(full))
	}
	for _, r := range degraded {
		for i := range r.Order {
			a, b := r.Order[i], r.Order[(i+1)%len(r.Order)]
			if (a == 0 && b == 1) || (a == 1 && b == 0) {
				t.Fatalf("degraded ring %v uses the failed link 0-1", r.Order)
			}
		}
	}
}

func TestFaultPlanWUStrictlyIncreases(t *testing.T) {
	// The acceptance bar for fault plans: taking NVLink bricks away from
	// GPU0 (0-1 and 0-2 leaves it only two single lanes) must strictly
	// increase the exposed weight-update time of an 8-GPU NCCL run —
	// fewer/narrower rings, slower all-reduce.
	run := func(plan *faults.Plan) *Result {
		t.Helper()
		cfg, err := NewConfig("alexnet", 8, 16, kvstore.MethodNCCL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Images = 4096
		cfg.Faults = plan
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run(nil)
	faulted := run(&faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}, {A: 0, B: 2}}})
	if faulted.WUWall <= healthy.WUWall {
		t.Errorf("removing bricks 0-1 and 0-2 must strictly increase WU: faulted %v vs healthy %v",
			faulted.WUWall, healthy.WUWall)
	}
	if faulted.EpochTime <= healthy.EpochTime {
		t.Errorf("removing bricks 0-1 and 0-2 must strictly increase epoch time: %v vs %v",
			faulted.EpochTime, healthy.EpochTime)
	}
}

func TestFaultPlanStragglerSlowsEpoch(t *testing.T) {
	run := func(plan *faults.Plan) *Result {
		t.Helper()
		cfg, err := NewConfig("lenet", 4, 16, kvstore.MethodNCCL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Images = 4096
		cfg.Faults = plan
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run(nil)
	slowed := run(&faults.Plan{Stragglers: []faults.Straggler{{GPU: 2, Slowdown: 2}}})
	if slowed.EpochTime <= healthy.EpochTime {
		t.Errorf("a 2x straggler must slow the epoch: %v vs %v",
			slowed.EpochTime, healthy.EpochTime)
	}
}

func TestFaultPlanRejectsExplicitTopology(t *testing.T) {
	cfg, err := NewConfig("lenet", 2, 16, kvstore.MethodNCCL)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topology = topology.DGX1()
	cfg.Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}}}
	if _, err := New(cfg); err == nil {
		t.Fatal("Config with both Topology and Faults must be rejected")
	}
}

func gpus8() []topology.NodeID {
	out := make([]topology.NodeID, 8)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func TestTrainingSurvivesSingleLinkFailure(t *testing.T) {
	healthy := runOnTopology(t, topology.DGX1(), "googlenet", 8, 16, kvstore.MethodNCCL)
	degraded := runOnTopology(t, topology.DGX1Degraded([2]topology.NodeID{0, 1}),
		"googlenet", 8, 16, kvstore.MethodNCCL)
	if degraded.EpochTime < healthy.EpochTime {
		t.Errorf("losing a link should not speed training: %v vs %v",
			degraded.EpochTime, healthy.EpochTime)
	}
	// Graceful: within 3x of healthy, not a collapse to PCIe-only misery
	// unless rings truly vanish.
	if float64(degraded.EpochTime) > 3*float64(healthy.EpochTime) {
		t.Errorf("single link failure caused %v vs %v", degraded.EpochTime, healthy.EpochTime)
	}
}

func TestTrainingSurvivesSevereDegradation(t *testing.T) {
	// Remove every link incident to GPU0's quad neighbors except PCIe:
	// training must still complete via staged/PCIe routes.
	top := topology.DGX1Degraded(
		[2]topology.NodeID{0, 1}, [2]topology.NodeID{0, 2},
		[2]topology.NodeID{0, 3}, [2]topology.NodeID{0, 6},
	)
	if err := top.Validate(); err != nil {
		t.Fatalf("degraded topology invalid: %v", err)
	}
	res := runOnTopology(t, top, "lenet", 8, 16, kvstore.MethodP2P)
	if res.EpochTime <= 0 {
		t.Fatal("training failed on degraded machine")
	}
}

func TestDegradedIsolatedGPUFallsToPCIeRing(t *testing.T) {
	// GPU0 loses all NVLink: NCCL cannot build an 8-GPU NVLink ring and
	// must fall back to the PCIe ring.
	top := topology.DGX1Degraded(
		[2]topology.NodeID{0, 1}, [2]topology.NodeID{0, 2},
		[2]topology.NodeID{0, 3}, [2]topology.NodeID{0, 6},
	)
	rings := nccl.BuildRings(top, gpus8(), 2)
	if len(rings) != 0 {
		t.Fatalf("no NVLink ring should exist through isolated GPU0, got %v", rings)
	}
	pcie, err := nccl.PCIeRing(top, gpus8())
	if err != nil {
		t.Fatal(err)
	}
	if !pcie.PCIe || len(pcie.Order) != 8 {
		t.Errorf("bad PCIe fallback ring: %v", pcie)
	}
	// And training with NCCL still works on it.
	res := runOnTopology(t, top, "lenet", 8, 16, kvstore.MethodNCCL)
	if res.EpochTime <= 0 {
		t.Fatal("NCCL training failed on PCIe fallback")
	}
}
