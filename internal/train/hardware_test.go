package train

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/kvstore"
	"repro/internal/topology"
)

// Every registered machine must build a valid topology whose GPU count
// matches its declared capacity, and resolve a GPU spec.
func TestMachineRegistry(t *testing.T) {
	ms := Machines()
	if len(ms) != 5 {
		t.Fatalf("registry has %d machines, want 5: %v", len(ms), MachineNames())
	}
	for _, m := range ms {
		top := m.Build()
		if err := top.Validate(); err != nil {
			t.Errorf("%s: topology invalid: %v", m.Name, err)
		}
		if got := len(top.GPUs()); got != m.GPUs {
			t.Errorf("%s: topology has %d GPUs, registry declares %d", m.Name, got, m.GPUs)
		}
		if m.Spec().Name == "" {
			t.Errorf("%s: GPU spec has no name", m.Name)
		}
	}
	if m, err := MachineByName(""); err != nil || m.Name != DefaultHardware {
		t.Errorf("MachineByName(\"\") = (%v, %v), want the default DGX-1", m.Name, err)
	}
	if _, err := MachineByName("dgx-3000"); err == nil {
		t.Error("unknown machine accepted")
	}
}

// The hardware axis admits the DGX-2's 16 GPUs and rejects 17 with an
// error naming the machine — the capacity check must consult the
// resolved machine, not the DGX-1 constant.
func TestHardwareCapacityBounds(t *testing.T) {
	cfg := quickCfg(t, "resnet", 16, 16, kvstore.MethodNCCL)
	cfg.Hardware = "dgx2"
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("16 GPUs on the DGX-2: %v", err)
	}
	if res, err := tr.Run(); err != nil || res.EpochTime <= 0 {
		t.Fatalf("16-GPU DGX-2 run: %v", err)
	}

	cfg = quickCfg(t, "resnet", 8, 16, kvstore.MethodNCCL)
	cfg.Hardware = "dgx2"
	cfg.GPUs = 17
	_, err = New(cfg)
	if err == nil {
		t.Fatal("17 GPUs on a 16-GPU machine accepted")
	}
	if !strings.Contains(err.Error(), "the DGX-2 has 16 GPUs") {
		t.Errorf("error %q should name the DGX-2's capacity", err)
	}
}

// An explicit Topology override is validated against its own GPU node
// count (the check used to be skipped entirely when Topology was set).
func TestTopologyOverrideCapacityBounds(t *testing.T) {
	cfg := quickCfg(t, "resnet", 8, 16, kvstore.MethodNCCL)
	cfg.Topology = topology.DGX2()
	cfg.GPUs = 17
	_, err := New(cfg)
	if err == nil {
		t.Fatal("17 GPUs on a 16-GPU topology accepted")
	}
	if !strings.Contains(err.Error(), "topology has 16 GPUs, requested 17") {
		t.Errorf("error %q should cite the topology's GPU count", err)
	}
}

// Hardware and an explicit Topology are two spellings of the same
// override and must not be combined.
func TestHardwareTopologyMutuallyExclusive(t *testing.T) {
	cfg := quickCfg(t, "lenet", 4, 16, kvstore.MethodNCCL)
	cfg.Hardware = "dgx2"
	cfg.Topology = topology.DGX1()
	if _, err := New(cfg); err == nil {
		t.Error("hardware + explicit topology accepted")
	}
}

// Fault plans describe the DGX-1's wiring: combining one with another
// machine must fail with the typed sentinel the API's invalid_argument
// envelope keys on.
func TestFaultsRequireDGX1Hardware(t *testing.T) {
	cfg := quickCfg(t, "lenet", 4, 16, kvstore.MethodNCCL)
	cfg.Hardware = "dgx2"
	cfg.Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}}}
	_, err := New(cfg)
	if err == nil {
		t.Fatal("fault plan on non-DGX-1 hardware accepted")
	}
	if !errors.Is(err, faults.ErrHardwareMismatch) {
		t.Errorf("error %q should wrap faults.ErrHardwareMismatch", err)
	}

	// The same plan on explicit dgx1 (and on the default) stays legal.
	cfg.Hardware = "dgx1"
	if _, err := New(cfg); err != nil {
		t.Errorf("fault plan on explicit dgx1: %v", err)
	}
}

// "auto" picks ring-vs-tree per collective, so pinning the tree
// algorithm alongside it is contradictory.
func TestProtocolAutoConflictsWithNCCLTree(t *testing.T) {
	cfg := quickCfg(t, "lenet", 4, 16, kvstore.MethodNCCL)
	cfg.Protocol = "auto"
	cfg.NCCLTree = true
	if _, err := New(cfg); err == nil {
		t.Error("auto protocol + pinned tree algorithm accepted")
	}
	cfg.NCCLTree = false
	if _, err := New(cfg); err != nil {
		t.Errorf("auto protocol alone: %v", err)
	}
	cfg.Protocol = "ll256"
	if _, err := New(cfg); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// The protocol axis changes simulated time: LL's halved bandwidth makes
// the comm-bound AlexNet epoch slower than Simple's.
func TestProtocolChangesEpochTime(t *testing.T) {
	run := func(protocol string) *Result {
		t.Helper()
		cfg := quickCfg(t, "alexnet", 8, 16, kvstore.MethodNCCL)
		cfg.Protocol = protocol
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	simple := run("simple")
	ll := run("ll")
	if ll.EpochTime <= simple.EpochTime {
		t.Errorf("LL epoch (%v) should exceed Simple's (%v) for bulk gradients", ll.EpochTime, simple.EpochTime)
	}
}
