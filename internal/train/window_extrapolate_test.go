package train

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/kvstore"
	"repro/internal/profiler"
)

// TestExtrapolateZeroEpochNoNaN pins the zero-duration-epoch guard: the
// divisions finalizing SyncPercent, Throughput, and ComputeUtilization
// must not produce NaN/Inf (encoding/json rejects both, so one poisoned
// field kills the whole report body). A zero-duration window cannot come
// out of the simulator, so the test builds the degenerate Window by hand.
func TestExtrapolateZeroEpochNoNaN(t *testing.T) {
	cfg, err := NewConfig("lenet", 1, 16, kvstore.MethodP2P)
	if err != nil {
		t.Fatal(err)
	}
	// cfg.SimIters is zero here (NewConfig leaves the default to New), so
	// the window holds zero exactly-simulated iterations and every
	// duration term of the epoch is zero.
	w := &Window{cfg: cfg, nsim: 0, prof: profiler.New()}
	res, err := w.Extrapolate(16)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochTime != 0 {
		t.Fatalf("epoch = %v, want 0 for the degenerate window", res.EpochTime)
	}
	for name, v := range map[string]float64{
		"SyncPercent":        res.SyncPercent,
		"Throughput":         res.Throughput,
		"ComputeUtilization": res.ComputeUtilization,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want a finite zero for a zero-duration epoch", name, v)
		}
		if v != 0 {
			t.Errorf("%s = %v, want 0", name, v)
		}
	}
	// The poisoning the guard prevents: the result's scalar fields must
	// survive JSON encoding.
	if _, err := json.Marshal(map[string]float64{
		"syncPercent": res.SyncPercent,
		"throughput":  res.Throughput,
	}); err != nil {
		t.Errorf("zero-epoch result does not JSON-encode: %v", err)
	}
}

// TestExtrapolateRepeatable pins the shared-window contract the scratch
// reuse must keep: repeated extrapolations of one window are identical,
// i.e. no call mutates the window's own profile or schedule state.
func TestExtrapolateRepeatable(t *testing.T) {
	cfg := quickCfg(t, "lenet", 2, 16, kvstore.MethodNCCL)
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	win, err := tr.SimulateWindow()
	if err != nil {
		t.Fatal(err)
	}
	first, err := win.Extrapolate(cfg.Images)
	if err != nil {
		t.Fatal(err)
	}
	firstSync := win.prof.API("cudaStreamSynchronize").Total
	for i := 0; i < 3; i++ {
		again, err := win.Extrapolate(cfg.Images)
		if err != nil {
			t.Fatal(err)
		}
		if again.EpochTime != first.EpochTime || again.SyncPercent != first.SyncPercent ||
			again.Throughput != first.Throughput {
			t.Fatalf("extrapolation %d drifted: %+v vs %+v", i, again, first)
		}
		// The scaled clone must never write back into the window.
		if got := win.prof.API("cudaStreamSynchronize").Total; got != firstSync {
			t.Fatalf("window profile mutated by extrapolation: %v -> %v", firstSync, got)
		}
	}
}

// TestMemoSchedule pins the schedule memo against the function it
// replaces: a memoized plan is the plan a fresh call returns.
func TestMemoSchedule(t *testing.T) {
	cfg := quickCfg(t, "alexnet", 4, 32, kvstore.MethodNCCL)
	shape := cfg.Model.InputShape
	for _, images := range []int64{64, 4096, 64 * 1024} {
		fresh, err := data.NewSchedule(data.ImageNetSubset(images), shape, cfg.Batch, cfg.GPUs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ { // second pass exercises the memo hit
			memo, err := memoSchedule(images, shape, cfg.Batch, cfg.GPUs)
			if err != nil {
				t.Fatal(err)
			}
			if memo != fresh {
				t.Fatalf("images=%d pass=%d: memo %+v != fresh %+v", images, i, memo, fresh)
			}
		}
	}
	// Error paths must not be memoized as successes.
	if _, err := memoSchedule(0, shape, cfg.Batch, cfg.GPUs); err == nil {
		t.Error("empty dataset should fail to plan")
	}
}
