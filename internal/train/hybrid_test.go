package train

import (
	"testing"

	"repro/internal/kvstore"
)

func runHybrid(t *testing.T, model string, gpus, batch int) *Result {
	t.Helper()
	cfg := quickCfg(t, model, gpus, batch, kvstore.MethodNCCL)
	cfg.Parallelism = HybridOWT
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHybridValidation(t *testing.T) {
	cfg := quickCfg(t, "alexnet", 4, 16, kvstore.MethodP2P)
	cfg.Parallelism = HybridOWT
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err == nil {
		t.Error("hybrid with p2p should error (needs collectives)")
	}
	cfg = quickCfg(t, "alexnet", 1, 16, kvstore.MethodNCCL)
	cfg.Parallelism = HybridOWT
	tr, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err == nil {
		t.Error("hybrid on 1 GPU should error")
	}
	cfg = quickCfg(t, "alexnet", 2, 16, kvstore.MethodNCCL)
	cfg.Parallelism = HybridOWT
	cfg.Async = true
	tr, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err == nil {
		t.Error("async hybrid should error")
	}
}

func TestHybridRuns(t *testing.T) {
	res := runHybrid(t, "alexnet", 4, 16)
	if res.EpochTime <= 0 {
		t.Fatal("no epoch")
	}
	// Data-parallel body: iterations follow the global batch.
	if res.Iterations != 256*1024/(16*4) {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.Profile.Kernel("fc_slice_fprop").Calls == 0 {
		t.Error("no sliced FC kernels recorded")
	}
	if res.Profile.Kernel("ncclAllGatherRingKernel").Calls == 0 {
		t.Error("no activation all-gathers recorded")
	}
}

// The headline: hybrid parallelism removes AlexNet's 224MB FC exchange and
// must beat pure data parallelism where that exchange dominates (b16 at
// 4 and 8 GPUs) — the quantitative form of the paper's §I claim.
func TestHybridBeatsDataParallelForAlexNet(t *testing.T) {
	for _, g := range []int{4, 8} {
		dp := runQuick(t, "alexnet", g, 16, kvstore.MethodNCCL)
		hy := runHybrid(t, "alexnet", g, 16)
		if hy.EpochTime >= dp.EpochTime {
			t.Errorf("%d GPUs: hybrid (%v) should beat data parallel (%v)", g, hy.EpochTime, dp.EpochTime)
		}
	}
}

// For a conv-dominated network with a tiny head the two schemes should be
// close (the head barely matters either way).
func TestHybridNeutralForConvNets(t *testing.T) {
	dp := runQuick(t, "resnet", 4, 16, kvstore.MethodNCCL)
	hy := runHybrid(t, "resnet", 4, 16)
	ratio := hy.EpochTime.Seconds() / dp.EpochTime.Seconds()
	if ratio < 0.9 || ratio > 1.2 {
		t.Errorf("ResNet hybrid/DP = %.2f, want near 1", ratio)
	}
}

func TestSplitHeadValidation(t *testing.T) {
	for _, m := range []string{"lenet", "alexnet", "googlenet", "resnet", "inception-v3"} {
		res := runHybridOrErr(t, m)
		_ = res
	}
}

func runHybridOrErr(t *testing.T, model string) *Result {
	t.Helper()
	cfg := quickCfg(t, model, 2, 16, kvstore.MethodNCCL)
	cfg.Parallelism = HybridOWT
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatalf("%s: %v", model, err)
	}
	if res.EpochTime <= 0 {
		t.Fatalf("%s: empty result", model)
	}
	return res
}
