package train

import (
	"errors"
	"testing"

	"repro/internal/kvstore"
)

// The Trainer's cancellation probe must be consulted between simulated
// iterations, so a caller that gives up mid-window aborts the
// simulation at the next iteration boundary instead of finishing the
// whole steady-state window.
func TestSimulateWindowHonoursCheckMidWindow(t *testing.T) {
	stop := errors.New("caller gave up")
	for _, tc := range []struct {
		name string
		cfg  Config
		// window selects SimulateWindow (the compiled sync path); the
		// other parallelism modes only run through Run.
		window bool
	}{
		{"sync", quickCfg(t, "alexnet", 2, 16, kvstore.MethodNCCL), true},
		{"asgd", func() Config {
			c := quickCfg(t, "alexnet", 2, 16, kvstore.MethodP2P)
			c.Async = true
			return c
		}(), false},
		{"modelparallel", func() Config {
			c := quickCfg(t, "alexnet", 2, 16, kvstore.MethodP2P)
			c.Parallelism = ModelParallel
			return c
		}(), false},
		{"hybrid", func() Config {
			c := quickCfg(t, "alexnet", 2, 16, kvstore.MethodNCCL)
			c.Parallelism = HybridOWT
			return c
		}(), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Allow a couple of iterations, then signal cancellation: the
			// window must surface the error instead of a result.
			calls := 0
			tr.SetCheck(func() error {
				calls++
				if calls > 2 {
					return stop
				}
				return nil
			})
			var simErr error
			if tc.window {
				_, simErr = tr.SimulateWindow()
			} else {
				_, simErr = tr.Run()
			}
			if !errors.Is(simErr, stop) {
				t.Fatalf("simulation = %v, want the check's error", simErr)
			}
			if calls <= 2 {
				t.Fatalf("check consulted %d times; cancellation never reached the iteration loop", calls)
			}
		})
	}
}

// A Trainer with no check behaves exactly as before.
func TestSimulateWindowWithoutCheck(t *testing.T) {
	tr, err := New(quickCfg(t, "lenet", 1, 16, kvstore.MethodP2P))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.SimulateWindow(); err != nil {
		t.Fatal(err)
	}
}
