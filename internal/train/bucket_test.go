package train

import (
	"testing"

	"repro/internal/kvstore"
	"repro/internal/units"
)

func runBucketed(t *testing.T, model string, gpus, batch int, method kvstore.Method, bucket units.Bytes) *Result {
	t.Helper()
	cfg := quickCfg(t, model, gpus, batch, method)
	cfg.BucketBytes = bucket
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Bucketing is the optimization the paper's overhead analysis motivates:
// fusing LeNet's tiny per-layer exchanges amortizes the per-operation
// costs that dominate its WU stage.
func TestBucketingHelpsLeNetNCCL(t *testing.T) {
	plain := runQuick(t, "lenet", 8, 16, kvstore.MethodNCCL)
	bucketed := runBucketed(t, "lenet", 8, 16, kvstore.MethodNCCL, units.MB)
	if bucketed.WUWall >= plain.WUWall {
		t.Errorf("bucketed WU (%v) should be below per-array WU (%v)", bucketed.WUWall, plain.WUWall)
	}
	if bucketed.EpochTime >= plain.EpochTime {
		t.Errorf("bucketed epoch (%v) should beat per-array (%v)", bucketed.EpochTime, plain.EpochTime)
	}
}

// For a bandwidth-bound model the same bucket size changes little: the
// wire time dominates either way.
func TestBucketingMarginalForAlexNet(t *testing.T) {
	plain := runQuick(t, "alexnet", 8, 16, kvstore.MethodNCCL)
	bucketed := runBucketed(t, "alexnet", 8, 16, kvstore.MethodNCCL, units.MB)
	ratio := plain.EpochTime.Seconds() / bucketed.EpochTime.Seconds()
	if ratio < 0.95 || ratio > 1.3 {
		t.Errorf("AlexNet bucketing effect %.2fx out of the marginal band", ratio)
	}
}

// A bucket threshold larger than the whole model degenerates to one fused
// exchange per iteration and must still be correct (all layers exchanged).
func TestBucketingWholeModel(t *testing.T) {
	res := runBucketed(t, "lenet", 4, 16, kvstore.MethodNCCL, units.GB)
	if res.EpochTime <= 0 {
		t.Fatal("no result")
	}
	// Exactly one all-reduce per rank per iteration.
	perIter := float64(res.Profile.Kernel("ncclAllReduceRingKernel").Calls) / float64(res.Iterations) / 4
	if perIter < 0.9 || perIter > 1.1 {
		t.Errorf("whole-model bucket should give ~1 allreduce/rank/iter, got %.2f", perIter)
	}
}

func TestBucketingWorksWithP2P(t *testing.T) {
	plain := runQuick(t, "lenet", 4, 16, kvstore.MethodP2P)
	bucketed := runBucketed(t, "lenet", 4, 16, kvstore.MethodP2P, units.MB)
	if bucketed.EpochTime > plain.EpochTime {
		t.Errorf("P2P bucketing should not hurt: %v vs %v", bucketed.EpochTime, plain.EpochTime)
	}
}

// The tree algorithm (NCCL's post-paper addition) must repair part of the
// LeNet ring-latency penalty at 8 GPUs, while changing nothing at 1 GPU
// (no ring to replace).
func TestNCCLTreeHelpsLatencyBoundTraining(t *testing.T) {
	ring := runQuick(t, "lenet", 8, 16, kvstore.MethodNCCL)
	cfg := quickCfg(t, "lenet", 8, 16, kvstore.MethodNCCL)
	cfg.NCCLTree = true
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tree.EpochTime >= ring.EpochTime {
		t.Errorf("tree (%v) should beat ring (%v) for LeNet at 8 GPUs", tree.EpochTime, ring.EpochTime)
	}
	// Bandwidth-bound AlexNet should be nearly indifferent.
	ringA := runQuick(t, "alexnet", 8, 64, kvstore.MethodNCCL)
	cfgA := quickCfg(t, "alexnet", 8, 64, kvstore.MethodNCCL)
	cfgA.NCCLTree = true
	trA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	treeA, err := trA.Run()
	if err != nil {
		t.Fatal(err)
	}
	ratio := ringA.EpochTime.Seconds() / treeA.EpochTime.Seconds()
	if ratio < 0.95 || ratio > 1.15 {
		t.Errorf("AlexNet b64 tree/ring effect %.2fx should be marginal", ratio)
	}
}

// The three-way kvstore comparison: MXNet's default CPU parameter server
// ("local") must lose to both GPU-side methods for a weight-heavy model —
// the starting point that motivated the paper's comparison.
func TestLocalMethodIsSlowestEndToEnd(t *testing.T) {
	local := runQuick(t, "alexnet", 4, 16, kvstore.MethodLocal)
	p2p := runQuick(t, "alexnet", 4, 16, kvstore.MethodP2P)
	nc := runQuick(t, "alexnet", 4, 16, kvstore.MethodNCCL)
	if local.EpochTime <= p2p.EpochTime || local.EpochTime <= nc.EpochTime {
		t.Errorf("local (%v) should be slower than p2p (%v) and nccl (%v)",
			local.EpochTime, p2p.EpochTime, nc.EpochTime)
	}
	// Its profile shows the CPU server working.
	if local.Profile.Transfer("memcpyDtoH 0->").Calls == 0 {
		t.Error("no DtoH gradient uploads recorded")
	}
}
