package train

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/kvstore"
	"repro/internal/topology"
)

// The Pascal DGX-1 (the paper's related-work comparison system): P100 GPUs
// on 20 GB/s NVLink 1.0 with 4 ports each.
func runPascal(t *testing.T, model string, gpus int, batch int, method kvstore.Method) *Result {
	t.Helper()
	cfg := quickCfg(t, model, gpus, batch, method)
	cfg.Topology = topology.DGX1Pascal()
	cfg.TensorCores = false // the P100 has none
	spec := gpu.P100()
	cfg.GPUSpec = &spec
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPascalTopologyValid(t *testing.T) {
	top := topology.DGX1Pascal()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 NVLink ports per P100.
	for _, g := range top.GPUs() {
		ports := 0
		for _, l := range top.LinksAt(g) {
			if l.Type == topology.NVLink {
				ports += l.Lanes
			}
		}
		if ports != 4 {
			t.Errorf("GPU%d uses %d NVLink ports, want 4", g, ports)
		}
	}
}

// Volta must beat Pascal on every workload: more FLOPs, more bandwidth,
// more links. The margin should be largest for compute-bound networks
// (the V100's arithmetic advantage) — the generational comparison the
// paper's related work (Gawande et al.) frames.
func TestVoltaBeatsPascal(t *testing.T) {
	for _, model := range []string{"lenet", "resnet"} {
		volta := runQuick(t, model, 8, 16, kvstore.MethodNCCL)
		pascal := runPascal(t, model, 8, 16, kvstore.MethodNCCL)
		if pascal.EpochTime <= volta.EpochTime {
			t.Errorf("%s: Pascal (%v) should be slower than Volta (%v)", model, pascal.EpochTime, volta.EpochTime)
		}
	}
	voltaR := runQuick(t, "resnet", 1, 16, kvstore.MethodP2P)
	pascalR := runPascal(t, "resnet", 1, 16, kvstore.MethodP2P)
	gain := pascalR.EpochTime.Seconds() / voltaR.EpochTime.Seconds()
	// The V100 brings ~1.5x FP32 arithmetic, 1.25x memory bandwidth, and
	// tensor cores on top; period reports put the end-to-end training gain
	// around 1.5x (FP32) to ~3x (tensor cores).
	if gain < 1.4 || gain > 3.5 {
		t.Errorf("ResNet Volta-over-Pascal = %.2fx, want the 1.5-3x band", gain)
	}
}

// Pascal still trains everything the paper's Volta system trains at the
// measured batch sizes (same 16 GB capacity).
func TestPascalTrainsPaperConfigs(t *testing.T) {
	r := runPascal(t, "inception-v3", 4, 64, kvstore.MethodNCCL)
	if r.EpochTime <= 0 {
		t.Fatal("no result")
	}
}
