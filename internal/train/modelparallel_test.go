package train

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/kvstore"
	"repro/internal/models"
)

func runMP(t *testing.T, model string, gpus, batch, micro int) *Result {
	t.Helper()
	cfg := quickCfg(t, model, gpus, batch, kvstore.MethodP2P)
	cfg.Parallelism = ModelParallel
	cfg.MicroBatches = micro
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCutPointsChainNetwork(t *testing.T) {
	d, _ := models.ByName("alexnet")
	cuts := d.Net.CutPoints()
	// A purely sequential network can be cut after almost every node.
	if len(cuts) < 15 {
		t.Fatalf("AlexNet cut points = %d, want many (sequential net)", len(cuts))
	}
	nodes := d.Net.Nodes()
	for _, c := range cuts {
		if c < 0 || c >= len(nodes)-1 {
			t.Fatalf("cut %d out of range", c)
		}
	}
}

func TestCutPointsRespectBranches(t *testing.T) {
	d, _ := models.ByName("googlenet")
	cuts := d.Net.CutPoints()
	if len(cuts) == 0 {
		t.Fatal("GoogLeNet should have cut points between modules")
	}
	// No cut may land strictly inside an inception module: verify by
	// checking that from each cut, the next node's inputs all come from at
	// or before the cut.
	nodes := d.Net.Nodes()
	index := map[*dnn.Node]int{}
	for i, nd := range nodes {
		index[nd] = i
	}
	for _, c := range cuts {
		for i := c + 1; i < len(nodes); i++ {
			for _, in := range nodes[i].Inputs {
				if index[in] <= c {
					// Inputs crossing the cut must come from the cut node
					// itself (the single live tensor).
					if index[in] != c {
						t.Fatalf("cut %d severed edge %s->%s", c, in.Name, nodes[i].Name)
					}
				}
			}
			// Only the immediate successors need checking for this cut.
			break
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	d, _ := models.ByName("resnet")
	for _, stages := range []int{2, 4, 8} {
		part, err := partitionStages(d.Net, stages, nil)
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if len(part.bounds) != stages {
			t.Fatalf("bounds = %v", part.bounds)
		}
		nodes := d.Net.Nodes()
		if part.bounds[stages-1] != len(nodes)-1 {
			t.Fatal("last stage must end at the last node")
		}
		// Max stage cost should be well under the whole network's cost.
		var total, maxStage float64
		prev := -1
		for _, b := range part.bounds {
			var c float64
			for i := prev + 1; i <= b; i++ {
				c += float64(nodes[i].FwdFLOPs)
			}
			if c > maxStage {
				maxStage = c
			}
			total += c
			prev = b
		}
		if maxStage > 0.75*total {
			t.Errorf("stages=%d: unbalanced partition (max %.0f of %.0f)", stages, maxStage, total)
		}
	}
}

func TestModelParallelRuns(t *testing.T) {
	res := runMP(t, "alexnet", 4, 64, 0)
	if res.EpochTime <= 0 {
		t.Fatal("no epoch time")
	}
	// One mini-batch per iteration (not per GPU).
	if res.Iterations != 256*1024/64 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.Profile.Kernel("conv_fprop").Calls == 0 {
		t.Error("no kernels recorded")
	}
}

func TestModelParallelPipelineBeatsSingleStage(t *testing.T) {
	// With micro-batching, 4 stages should process an epoch faster than
	// one GPU (pipeline parallelism), though far below linear speedup.
	one := runQuick(t, "alexnet", 1, 64, kvstore.MethodP2P)
	mp := runMP(t, "alexnet", 4, 64, 8)
	if mp.EpochTime >= one.EpochTime {
		t.Errorf("4-stage pipeline (%v) should beat 1 GPU (%v)", mp.EpochTime, one.EpochTime)
	}
	speedup := one.EpochTime.Seconds() / mp.EpochTime.Seconds()
	if speedup > 4 {
		t.Errorf("pipeline speedup %.2f cannot exceed stage count", speedup)
	}
}

// The paper's §I claim: model parallelism suits FC-heavy networks (it
// moves activations instead of AlexNet's 232MB of weights), while
// conv-heavy networks fare relatively better under data parallelism. The
// pipelined MP schedule never actually wins outright here (its bubbles and
// per-micro-batch weight re-reads are real costs), but the RELATIVE
// ranking must follow the paper: AlexNet loses least from switching to MP.
func TestMPvsDPFollowsPaperClaim(t *testing.T) {
	relMP := func(model string) float64 {
		dp := runQuick(t, model, 4, 64, kvstore.MethodP2P)
		mp := runMP(t, model, 4, 64, 0)
		return dp.EpochTime.Seconds() / mp.EpochTime.Seconds() // >1: MP wins
	}
	alex := relMP("alexnet")   // FC-heavy
	goog := relMP("googlenet") // conv-heavy
	res := relMP("resnet")     // conv-heavy
	if alex <= goog || alex <= res {
		t.Errorf("MP should be relatively best for AlexNet (%.2f) vs GoogLeNet (%.2f), ResNet (%.2f)",
			alex, goog, res)
	}
}

func TestModelParallelMemoryPerStage(t *testing.T) {
	cfg := quickCfg(t, "inception-v3", 4, 64, kvstore.MethodP2P)
	cfg.Parallelism = ModelParallel
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dp := quickCfg(t, "inception-v3", 4, 64, kvstore.MethodP2P)
	trDP, err := New(dp)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Memory().Worker() >= trDP.Memory().Worker() {
		t.Error("model-parallel per-GPU memory should be below data-parallel")
	}
	if tr.Memory().RootExtra != 0 {
		t.Error("model parallelism has no aggregation premium")
	}
	// Model parallelism should therefore admit batch sizes data
	// parallelism cannot (paper §V-D calls for exactly such changes).
	big := quickCfg(t, "inception-v3", 4, 128, kvstore.MethodP2P)
	big.Parallelism = ModelParallel
	if _, err := New(big); err != nil {
		t.Errorf("MP Inception-v3 b128 should fit: %v", err)
	}
}

func TestModelParallelRejectsAsync(t *testing.T) {
	cfg := quickCfg(t, "alexnet", 2, 32, kvstore.MethodP2P)
	cfg.Parallelism = ModelParallel
	cfg.Async = true
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err == nil {
		t.Error("async + model parallel should error")
	}
}

func TestParallelismString(t *testing.T) {
	if DataParallel.String() != "data-parallel" || ModelParallel.String() != "model-parallel" {
		t.Error("parallelism names wrong")
	}
}

func TestModelParallelSingleGPUDegenerate(t *testing.T) {
	mp := runMP(t, "lenet", 1, 16, 0)
	if mp.EpochTime <= 0 {
		t.Fatal("single-stage MP should still run")
	}
}
