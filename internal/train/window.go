package train

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cuda"
	"repro/internal/data"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/memmodel"
	"repro/internal/profiler"
	"repro/internal/topology"
)

// DefaultSimIters is how many iterations the trainer simulates exactly
// before extrapolating the steady state (Config.SimIters defaults to it).
const DefaultSimIters = 4

// Window is the compiled simulation artifact of one synchronous
// data-parallel configuration: everything the steady-state extrapolation
// needs, captured once after the exactly-simulated iterations. Iterations
// are identical in the steady state, so an epoch of any dataset size that
// simulates the same number of window iterations is a pure function of
// the window — Extrapolate reconstructs it without re-running the
// discrete-event simulation, byte-identical to a cold run (both paths
// share the same finalization arithmetic below).
//
// The window depends on the epoch's image count only through nsim (setup
// stages the model and one mini-batch per GPU; iterations move mini-batch
// bytes), which is what makes sharing one window across Images variations
// exact rather than approximate.
//
// A Window is immutable after SimulateWindow returns; Extrapolate only
// reads it (cloning the profile before scaling), so one Window may serve
// many goroutines concurrently — the property the core artifact cache is
// built on.
type Window struct {
	cfg      Config
	memory   memmodel.Estimate
	setupEnd time.Duration
	steady   iterTimes
	simTotal time.Duration
	nsim     int
	// prof is the unscaled profile of the simulated window.
	prof *profiler.Profile
	// utilWeight is the occupancy-weighted kernel seconds of one
	// iteration's plans (the ComputeUtilization numerator per iteration).
	utilWeight  float64
	setupApprox time.Duration
	devs        []topology.NodeID
	busy        map[topology.NodeID]time.Duration
}

// NSim returns how many iterations the window simulated exactly.
func (w *Window) NSim() int { return w.nsim }

// Config returns the configuration the window was compiled from.
func (w *Window) Config() Config { return w.cfg }

// SimulateWindow runs the simulated portion of a synchronous
// data-parallel epoch — session setup, the initial model broadcast, and
// the exactly-simulated iterations — and captures the result as a
// reusable Window. A trainer is single-shot: the engine and resource
// state are consumed, so SimulateWindow (or Run) may be called once.
// Asynchronous, model-parallel, and hybrid schedules have different
// extrapolation structures and do not compile to a Window.
func (t *Trainer) SimulateWindow() (*Window, error) {
	if t.cfg.Parallelism != DataParallel || t.cfg.Async {
		return nil, fmt.Errorf("train: only synchronous data-parallel runs compile to a window")
	}
	if t.ran {
		return nil, fmt.Errorf("train: trainer already ran; build a new one")
	}
	t.ran = true

	// Session setup: framework startup, communicator construction, and the
	// initial model broadcast from the CPU to every GPU over PCIe
	// (Figure 1's leftmost phase).
	now := t.sessionStartup() + t.backend.SetupCost()
	modelBytes := t.cfg.Model.Net.ModelBytes()
	setupEnd := now
	dataReady := make(map[topology.NodeID]time.Duration, len(t.devs))
	for _, d := range t.devs {
		_, end, err := t.rt.MemcpyHostToDevice(d, modelBytes, profiler.StageOther, now)
		if err != nil {
			return nil, err
		}
		if end > setupEnd {
			setupEnd = end
		}
		// First mini-batch staging overlaps model distribution.
		_, bEnd, err := t.rt.MemcpyHostToDevice(d, t.schedule.BatchBytes(), profiler.StageDataLoad, now)
		if err != nil {
			return nil, err
		}
		dataReady[d] = bEnd
	}

	nsim := t.cfg.SimIters
	if int64(nsim) > t.schedule.Iterations {
		nsim = int(t.schedule.Iterations)
	}
	start := setupEnd
	var err error
	var it iterTimes
	for i := 0; i < nsim; i++ {
		if err := t.cancelled(); err != nil {
			return nil, err
		}
		it, dataReady, err = t.runIteration(start, dataReady)
		if err != nil {
			return nil, err
		}
		start = it.barrier
	}
	steady := it

	busy := make(map[topology.NodeID]time.Duration, len(t.devs))
	for _, d := range t.devs {
		busy[d] = t.rt.Device(d).ComputeBusy()
	}
	return &Window{
		cfg:         t.cfg,
		memory:      t.memory,
		setupEnd:    setupEnd,
		steady:      steady,
		simTotal:    steady.barrier - setupEnd,
		nsim:        nsim,
		prof:        t.prof,
		utilWeight:  t.planUtilWeight(),
		setupApprox: t.SetupTimeApprox(),
		devs:        t.devs,
		busy:        busy,
	}, nil
}

// computeUtilization is the occupancy-weighted share of the epoch the SM
// array spends doing useful work (the metric behind the paper's "LeNet has
// a compute utilization of only 18.3%"): each kernel contributes its
// duration weighted by its achieved occupancy, normalized by the epoch.
// The async/model-parallel/hybrid paths call it directly; the synchronous
// data-parallel path folds the same arithmetic into Window.Extrapolate.
func (t *Trainer) computeUtilization(epoch time.Duration) float64 {
	if epoch <= 0 {
		return 0
	}
	return t.planUtilWeight() * float64(t.schedule.Iterations) / epoch.Seconds()
}

// planUtilWeight sums the occupancy-weighted duration of one iteration's
// kernels — the per-iteration numerator of ComputeUtilization.
func (t *Trainer) planUtilWeight() float64 {
	spec := t.rt.Device(t.devs[0]).Spec
	var weighted float64
	add := func(ks []gpu.KernelCost) {
		for _, k := range ks {
			weighted += spec.KernelDuration(k).Seconds() * spec.Occupancy(k.Parallelism)
		}
	}
	add(t.fwd)
	for _, step := range t.bwd {
		add(step.Kernels)
	}
	return weighted
}

// scheduleKey identifies one memoized epoch plan. Every field
// data.NewSchedule consumes joins the key, so a memo hit is exactly the
// schedule a fresh call would return.
type scheduleKey struct {
	images      int64
	shape       dnn.Shape
	batch, gpus int
}

// scheduleMemo caches epoch plans across extrapolations. The warm path
// re-plans the same (images, shape, batch, gpus) tuple on every request
// of a cache-hit-dominated workload; the plan is a pure function of the
// key, so memoizing it is exact. Values are data.Schedule by value —
// nothing shared, nothing to invalidate.
var scheduleMemo sync.Map // scheduleKey -> data.Schedule

// memoSchedule returns the epoch plan for the tuple, planning it at most
// once per process.
func memoSchedule(images int64, shape dnn.Shape, batch, gpus int) (data.Schedule, error) {
	key := scheduleKey{images: images, shape: shape, batch: batch, gpus: gpus}
	if v, ok := scheduleMemo.Load(key); ok {
		return v.(data.Schedule), nil
	}
	sched, err := data.NewSchedule(data.ImageNetSubset(images), shape, batch, gpus)
	if err != nil {
		return data.Schedule{}, err
	}
	scheduleMemo.Store(key, sched)
	return sched, nil
}

// Extrapolate projects the window onto an epoch of the given dataset size
// and returns the full Result, reproducing the cold path's arithmetic
// exactly (cold runs call it too — there is one finalization code path).
// It fails if the epoch would simulate a different number of window
// iterations than the window holds (an epoch smaller than the simulated
// window); the caller then needs a freshly compiled window.
//
// When no profile scaling is needed (the epoch is exactly the simulated
// window), the Result shares the window's own Profile instead of cloning
// it; Results are read-only views in that case, as they always were by
// convention — nothing in the repo mutates a Result's profile.
func (w *Window) Extrapolate(images int64) (*Result, error) {
	sched, err := memoSchedule(images, w.cfg.Model.InputShape, w.cfg.Batch, w.cfg.GPUs)
	if err != nil {
		return nil, err
	}
	nsim := w.cfg.SimIters
	if int64(nsim) > sched.Iterations {
		nsim = int(sched.Iterations)
	}
	if nsim != w.nsim {
		return nil, fmt.Errorf("train: window simulated %d iterations, an epoch of %d images simulates %d",
			w.nsim, images, nsim)
	}
	remaining := sched.Iterations - int64(nsim)
	epoch := w.setupEnd + w.simTotal + time.Duration(remaining)*w.steady.total()

	cfg := w.cfg
	cfg.Images = images
	// Clone only when the epoch actually scales the window's aggregates;
	// otherwise the unscaled shared profile is already the answer.
	prof := w.prof
	if nsim > 0 && sched.Iterations > int64(nsim) {
		prof = w.prof.Clone()
	}
	res := &Result{
		Config:     cfg,
		Iterations: sched.Iterations,
		EpochTime:  epoch,
		SetupTime:  w.setupEnd,
		SteadyIter: w.steady.total(),
		FPWall:     time.Duration(sched.Iterations) * (w.steady.fpEnd - w.steady.start),
		BPWall:     time.Duration(sched.Iterations) * (w.steady.bpEnd - w.steady.fpEnd),
		WUWall:     time.Duration(sched.Iterations) * (w.steady.barrier - w.steady.bpEnd),
		Profile:    prof,
		Memory:     w.memory,
	}
	// Scale profile aggregates from the simulated window to the epoch.
	if nsim > 0 && sched.Iterations > int64(nsim) {
		prof.Scale(float64(sched.Iterations) / float64(nsim))
	}
	if epoch > 0 {
		res.Throughput = float64(sched.Images) / epoch.Seconds()
		res.ComputeUtilization = w.utilWeight * float64(sched.Iterations) / epoch.Seconds()
		// Guarded like ComputeUtilization above: a zero-duration epoch
		// would otherwise divide to NaN, which poisons every JSON encoding
		// of the result (encoding/json rejects NaN).
		res.SyncPercent = 100 * float64(prof.API(cuda.APIStreamSync).Total) /
			(float64(epoch) * float64(w.cfg.GPUs))
	}
	res.GPUComputeBusy = w.busyFractions(epoch)
	return res, nil
}

// busyFractions extrapolates each device's compute-queue busy time from
// the simulated window to the full epoch.
func (w *Window) busyFractions(epoch time.Duration) map[topology.NodeID]float64 {
	out := make(map[topology.NodeID]float64, len(w.devs))
	window := w.simTotal
	if window <= 0 || epoch <= 0 {
		return out
	}
	for _, d := range w.devs {
		// Busy time accumulated over the simulated window scales with the
		// steady-state share of the epoch.
		frac := float64(w.busy[d]) / float64(window)
		if frac > 1 {
			frac = 1
		}
		out[d] = frac * (float64(epoch-w.setupApprox) / float64(epoch))
	}
	return out
}
