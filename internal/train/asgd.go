package train

import (
	"fmt"
	"time"

	"repro/internal/kvstore"
	"repro/internal/profiler"
	"repro/internal/topology"
	"repro/internal/units"
)

// runAsync simulates the asynchronous-SGD variant the paper discusses in
// §II-B: no inter-GPU barrier — each GPU pushes its gradients to the
// parameter-server GPU, the server updates immediately, and the worker
// pulls the fresh weights and continues with its next mini-batch. Workers
// therefore train on slightly stale weights (the "delayed gradient"
// problem); the simulation reports timing, with staleness visible as the
// spread between workers' iteration clocks.
//
// ASGD exchanges are point-to-point by construction, so it requires the
// P2P method.
func (t *Trainer) runAsync() (*Result, error) {
	if t.cfg.Method != kvstore.MethodP2P {
		return nil, fmt.Errorf("train: async SGD requires the p2p method, got %q", t.cfg.Method)
	}
	root := t.backend.Root()
	modelBytes := t.cfg.Model.Net.ModelBytes()

	now := t.sessionStartup() + t.backend.SetupCost()
	setupEnd := now
	clock := make(map[topology.NodeID]time.Duration, len(t.devs))
	for _, d := range t.devs {
		_, end, err := t.rt.MemcpyHostToDevice(d, modelBytes, profiler.StageOther, now)
		if err != nil {
			return nil, err
		}
		clock[d] = end
		if end > setupEnd {
			setupEnd = end
		}
	}

	nsim := t.cfg.SimIters
	if int64(nsim) > t.schedule.Iterations {
		nsim = int(t.schedule.Iterations)
	}
	var firstIterEnd, lastSimEnd time.Duration
	for i := 0; i < nsim; i++ {
		if err := t.cancelled(); err != nil {
			return nil, err
		}
		for _, d := range t.devs {
			end, err := t.asyncWorkerIteration(d, root, clock[d])
			if err != nil {
				return nil, err
			}
			clock[d] = end
			if end > lastSimEnd {
				lastSimEnd = end
			}
			if i == 0 && end > firstIterEnd {
				firstIterEnd = end
			}
		}
	}
	// Steady per-iteration time of the slowest worker.
	var steady time.Duration
	for _, d := range t.devs {
		per := (clock[d] - setupEnd) / time.Duration(nsim)
		if per > steady {
			steady = per
		}
	}
	remaining := t.schedule.Iterations - int64(nsim)
	epoch := lastSimEnd + time.Duration(remaining)*steady

	res := &Result{
		Config:     t.cfg,
		Iterations: t.schedule.Iterations,
		EpochTime:  epoch,
		SetupTime:  setupEnd,
		SteadyIter: steady,
		Profile:    t.prof,
		Memory:     t.memory,
	}
	if t.schedule.Iterations > int64(nsim) {
		t.prof.Scale(float64(t.schedule.Iterations) / float64(nsim))
	}
	res.Throughput = float64(t.schedule.Images) / epoch.Seconds()
	res.ComputeUtilization = t.computeUtilization(epoch)
	res.SyncPercent = 100 * float64(t.prof.API("cudaStreamSynchronize").Total) /
		(float64(epoch) * float64(t.cfg.GPUs))
	return res, nil
}

// asyncWorkerIteration runs one worker's FP+BP and its independent
// exchange with the server, returning when the worker may start its next
// mini-batch.
func (t *Trainer) asyncWorkerIteration(d, root topology.NodeID, start time.Duration) (time.Duration, error) {
	s := t.compute[d]
	host := start
	var kEnd time.Duration
	for _, k := range t.fwd {
		host, kEnd = s.Launch(profiler.StageFP, k, host)
	}
	lastPull := kEnd
	for _, step := range t.bwd {
		var stepEnd time.Duration
		for _, k := range step.Kernels {
			host, stepEnd = s.Launch(profiler.StageBP, k, host)
		}
		if step.Layer == nil {
			continue
		}
		size := units.BytesOf(step.Layer.Params, units.Float32Size)
		ready := stepEnd
		var pushEnd time.Duration
		if d == root {
			pushEnd = ready
		} else {
			var err error
			_, pushEnd, err = t.rt.MemcpyPeer(root, d, size, profiler.StageWU, ready, ready)
			if err != nil {
				return 0, err
			}
		}
		updEnd := t.bookUpdate(pushEnd, size)
		pullEnd := updEnd
		if d != root {
			var err error
			_, pullEnd, err = t.rt.MemcpyPeer(d, root, size, profiler.StageWU, updEnd, updEnd)
			if err != nil {
				return 0, err
			}
		}
		if pullEnd > lastPull {
			lastPull = pullEnd
		}
	}
	syncEnd := s.Synchronize(profiler.StageBP, host)
	end := t.rt.HostWait(d, profiler.StageWU, syncEnd, lastPull)
	return end, nil
}
