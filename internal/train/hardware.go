package train

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/topology"
)

// Machine is one entry in the hardware registry: a named (topology, GPU
// spec) pair the `hardware` workload axis resolves to. The registry is
// how API users reach the machines that previously existed only inside
// tests — the paper's DGX-1, the Pascal predecessor its related work
// measures, and the NVSwitch generations that followed.
type Machine struct {
	// Name is the API spelling ("dgx1", "dgx2", ...).
	Name string
	// Title is the prose name used in error messages and listings
	// ("the DGX-1"), phrased so the legacy DGX-1 messages reproduce
	// byte-for-byte.
	Title string
	// GPUs is the machine's device count (the upper bound workload
	// validation enforces).
	GPUs int
	// Interconnect describes the fabric in one line for listings.
	Interconnect string
	// Build constructs the machine's topology.
	Build func() *topology.Topology
	// Spec returns the machine's GPU model.
	Spec func() gpu.Spec
}

// DefaultHardware is the machine workloads run on when the hardware field
// is empty: the paper's Volta DGX-1.
const DefaultHardware = "dgx1"

// machines is the registry in display order (paper machine first, then
// chronological).
var machines = []Machine{
	{
		Name:         "dgx1",
		Title:        "the DGX-1",
		GPUs:         8,
		Interconnect: "NVLink 2.0 hybrid cube-mesh (bonded pairs 50 GB/s)",
		Build:        topology.DGX1,
		Spec:         gpu.V100,
	},
	{
		Name:         "dgx1-pascal",
		Title:        "the Pascal DGX-1",
		GPUs:         8,
		Interconnect: "NVLink 1.0 cube-mesh (4 ports per GPU, 20 GB/s bricks)",
		Build:        topology.DGX1Pascal,
		Spec:         gpu.P100,
	},
	{
		Name:         "dgx2",
		Title:        "the DGX-2",
		GPUs:         16,
		Interconnect: "NVSwitch full crossbar (150 GB/s per GPU)",
		Build:        topology.DGX2,
		Spec:         gpu.V100,
	},
	{
		Name:         "dgx-a100",
		Title:        "the DGX A100",
		GPUs:         8,
		Interconnect: "NVSwitch full crossbar (300 GB/s per GPU)",
		Build:        topology.DGXA100,
		Spec:         gpu.A100,
	},
	{
		Name:         "dgx-h100",
		Title:        "the DGX H100",
		GPUs:         8,
		Interconnect: "NVSwitch full crossbar (450 GB/s per GPU)",
		Build:        topology.DGXH100,
		Spec:         gpu.H100,
	},
}

// MachineByName resolves a hardware name; the empty string means
// DefaultHardware.
func MachineByName(name string) (Machine, error) {
	if name == "" {
		name = DefaultHardware
	}
	for _, m := range machines {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("train: unknown hardware %q (known: %v)", name, MachineNames())
}

// Machines returns the registry in display order.
func Machines() []Machine {
	out := make([]Machine, len(machines))
	copy(out, machines)
	return out
}

// MachineNames returns the registered hardware names in display order.
func MachineNames() []string {
	names := make([]string, len(machines))
	for i, m := range machines {
		names[i] = m.Name
	}
	return names
}

// isDefaultHardware reports whether the name (possibly empty) spells the
// stock DGX-1 — the machine fault plans and legacy behavior assume.
func isDefaultHardware(name string) bool {
	return name == "" || name == DefaultHardware
}
