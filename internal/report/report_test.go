package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "A", "Bee", "C")
	tab.AddRow("1", "2", "3")
	tab.AddRow("longer", "x")
	tab.AddNote("a note %d", 7)
	s := tab.String()
	if !strings.HasPrefix(s, "Title\n") {
		t.Errorf("missing title:\n%s", s)
	}
	for _, want := range []string{"A", "Bee", "longer", "note: a note 7", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title, header, separator, 2 rows, note.
	if len(lines) != 6 {
		t.Errorf("lines = %d:\n%s", len(lines), s)
	}
}

func TestShortRowsPadded(t *testing.T) {
	tab := NewTable("", "A", "B")
	tab.AddRow("only")
	rows := tab.Rows()
	if len(rows[0]) != 2 || rows[0][1] != "" {
		t.Errorf("row not padded: %v", rows[0])
	}
}

func TestWriteCSV(t *testing.T) {
	tab := NewTable("t", "x", "y")
	tab.AddRow("1", "a,b")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "x,y") || !strings.Contains(got, `"a,b"`) {
		t.Errorf("csv = %q", got)
	}
}

func TestF(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Error("F formatting wrong")
	}
}

func TestRowsIsCopy(t *testing.T) {
	tab := NewTable("", "A")
	tab.AddRow("v")
	rows := tab.Rows()
	rows[0][0] = "mutated"
	if tab.Rows()[0][0] != "v" {
		t.Error("Rows should return a copy")
	}
}

func TestWriteMarkdown(t *testing.T) {
	tab := NewTable("Caption", "A", "B")
	tab.AddRow("1", "2")
	tab.AddNote("a note")
	var buf bytes.Buffer
	if err := tab.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"**Caption**", "| A | B |", "|---|---|", "| 1 | 2 |", "*a note*"} {
		if !strings.Contains(s, want) {
			t.Errorf("markdown missing %q:\n%s", want, s)
		}
	}
}
