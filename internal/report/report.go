// Package report renders experiment results as aligned text tables (the
// form the paper's tables take) and CSV (for external plotting of the
// figures).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Rows returns the table body.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WriteCSV emits the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown emits the table as GitHub-flavored Markdown (title as a
// bold caption, header row, separator, body, notes as italics).
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("|")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range t.rows {
		b.WriteString("|")
		for _, c := range r {
			fmt.Fprintf(&b, " %s |", c)
		}
		b.WriteString("\n")
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with the given precision (helper for cell text).
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}
