// Package nccl models the NVIDIA Collective Communications Library as the
// paper's MXNet uses it: communicators over a subset of a node's GPUs, ring
// construction over the NVLink topology, and the AllReduce / Broadcast
// collectives (plus Reduce, ReduceScatter and AllGather) with the ring
// algorithms' cost structure — chunked pipelining, per-call kernel
// overhead, and per-communicator setup cost.
//
// The package also contains functional (real-data) implementations of the
// ring algorithms over float32 buffers, used to verify that the modeled
// algorithms are the actual NCCL algorithms and to property-test their
// semantics.
package nccl

import (
	"fmt"
	"sort"

	"repro/internal/topology"
	"repro/internal/units"
)

// Ring is one directed communication ring over a communicator's ranks:
// Order lists the device IDs in ring order; hop i connects Order[i] to
// Order[(i+1)%N]. LaneBW is the per-hop bandwidth this ring owns (one
// NVLink lane per hop for NVLink rings).
type Ring struct {
	Order  []topology.NodeID
	LaneBW units.Bandwidth
	// PCIe marks a fallback ring routed through host bridges.
	PCIe bool
}

// String renders the ring, e.g. "0-1-5-4-6-7-3-2 (25.00GB/s)".
func (r Ring) String() string {
	s := ""
	for i, id := range r.Order {
		if i > 0 {
			s += "-"
		}
		s += fmt.Sprintf("%d", id)
	}
	return fmt.Sprintf("%s (%v)", s, r.LaneBW)
}

// BuildRings constructs up to maxRings edge-disjoint NVLink rings covering
// the given devices, consuming one lane per hop per ring, exactly as NCCL
// searches the NVLink graph for ring circuits. When no NVLink ring exists
// (or for remaining bandwidth), it returns what it found; callers fall back
// to a PCIe ring when the result is empty.
func BuildRings(top *topology.Topology, devs []topology.NodeID, maxRings int) []Ring {
	if len(devs) < 2 || maxRings <= 0 {
		return nil
	}
	// Remaining lane capacity per unordered GPU pair.
	capacity := map[pair]int{}
	bwPerLane := map[pair]units.Bandwidth{}
	for _, l := range top.Links() {
		if l.Type != topology.NVLink {
			continue
		}
		p := norm(l.A, l.B)
		capacity[p] += l.Lanes
		bwPerLane[p] = l.BW / units.Bandwidth(l.Lanes)
	}

	ordered := append([]topology.NodeID(nil), devs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	var rings []Ring
	for len(rings) < maxRings {
		cycle := findCycle(ordered, capacity)
		if cycle == nil {
			break
		}
		lane := units.Bandwidth(0)
		hops := len(cycle)
		if hops == 2 {
			// A 2-rank ring uses one full-duplex lane for both directions.
			hops = 1
		}
		for i := 0; i < hops; i++ {
			p := norm(cycle[i], cycle[(i+1)%len(cycle)])
			capacity[p]--
			if lane == 0 || bwPerLane[p] < lane {
				lane = bwPerLane[p]
			}
		}
		rings = append(rings, Ring{Order: cycle, LaneBW: lane})
	}
	return rings
}

// pair is an unordered GPU pair key for lane-capacity accounting.
type pair struct{ a, b topology.NodeID }

// norm canonicalizes a pair key.
func norm(a, b topology.NodeID) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// findCycle searches for a Hamiltonian cycle over the device set using
// edges with remaining capacity, via deterministic backtracking (neighbors
// tried in ascending ID order).
func findCycle(
	ordered []topology.NodeID,
	capacity map[pair]int,
) []topology.NodeID {
	n := len(ordered)
	if n == 2 {
		// A 2-rank "ring" is the pair itself; it consumes one lane.
		if capacity[norm(ordered[0], ordered[1])] >= 1 {
			return []topology.NodeID{ordered[0], ordered[1]}
		}
		return nil
	}
	start := ordered[0]
	path := []topology.NodeID{start}
	used := map[topology.NodeID]bool{start: true}
	var dfs func() []topology.NodeID
	dfs = func() []topology.NodeID {
		last := path[len(path)-1]
		if len(path) == n {
			if capacity[norm(last, start)] >= 1 {
				return append([]topology.NodeID(nil), path...)
			}
			return nil
		}
		for _, next := range ordered {
			if used[next] || capacity[norm(last, next)] < 1 {
				continue
			}
			used[next] = true
			path = append(path, next)
			if c := dfs(); c != nil {
				return c
			}
			path = path[:len(path)-1]
			used[next] = false
		}
		return nil
	}
	return dfs()
}

// SwitchRing builds a ring through a cut-through switch fabric that every
// device attaches to (the NVSwitch case): devices in ID order, each hop a
// GPU->switch->GPU cut-through path. The ring owns the full per-GPU switch
// link bandwidth (inbound and outbound ride different directions of the
// full-duplex link).
func SwitchRing(top *topology.Topology, devs []topology.NodeID) (Ring, bool) {
	ordered := append([]topology.NodeID(nil), devs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	bw := units.Bandwidth(0)
	for i := range ordered {
		from, to := ordered[i], ordered[(i+1)%len(ordered)]
		p, err := top.Route(from, to, topology.RouteStagedNVLink)
		if err != nil || !p.CutThrough {
			return Ring{}, false
		}
		if b := units.Bandwidth(p.MinBW()); bw == 0 || b < bw {
			bw = b
		}
	}
	return Ring{Order: ordered, LaneBW: bw}, true
}

// PCIeRing returns the fallback ring over the host bridges: devices in ID
// order, with the bandwidth of the slowest PCIe link.
func PCIeRing(top *topology.Topology, devs []topology.NodeID) (Ring, error) {
	ordered := append([]topology.NodeID(nil), devs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	bw := units.Bandwidth(0)
	for _, d := range ordered {
		host, err := top.HostCPU(d)
		if err != nil {
			return Ring{}, err
		}
		l := top.DirectLink(d, host, topology.PCIe)
		if l == nil {
			return Ring{}, fmt.Errorf("nccl: GPU %d has no PCIe link", d)
		}
		if bw == 0 || l.BW < bw {
			bw = l.BW
		}
	}
	// Host-bridged hops halve effective bandwidth (up + down share the
	// root complex).
	return Ring{Order: ordered, LaneBW: bw / 2, PCIe: true}, nil
}
