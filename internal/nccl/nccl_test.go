package nccl

import (
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/interconnect"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

func newComm(t *testing.T, devs []topology.NodeID) (*Communicator, *profiler.Profile) {
	t.Helper()
	eng := sim.NewEngine()
	top := topology.DGX1()
	fab := interconnect.New(eng, top)
	prof := profiler.New()
	rt, err := cuda.NewRuntime(fab, gpu.V100(), devs, cuda.DefaultCosts(), prof)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(rt, devs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c, prof
}

func gpus(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func TestRingConstructionCounts(t *testing.T) {
	cases := []struct {
		n         int
		wantRings int
		wantBus   units.Bandwidth
	}{
		{2, 2, 50 * units.GBPerSec}, // 0-1 is a bonded dual link: two lane-rings
		{4, 1, 25 * units.GBPerSec}, // 0-1-3-2-0 limited by single links
		{8, 2, 50 * units.GBPerSec}, // two edge-disjoint Hamiltonian rings
	}
	for _, c := range cases {
		comm, _ := newComm(t, gpus(c.n))
		if got := len(comm.Rings()); got != c.wantRings {
			t.Errorf("%d GPUs: rings = %d, want %d (%v)", c.n, got, c.wantRings, comm.Rings())
		}
		if got := comm.BusBW(); got != c.wantBus {
			t.Errorf("%d GPUs: bus BW = %v, want %v", c.n, got, c.wantBus)
		}
	}
}

func TestRingsCoverAllDevicesNVLinkOnly(t *testing.T) {
	comm, _ := newComm(t, gpus(8))
	top := topology.DGX1()
	for _, r := range comm.Rings() {
		if r.PCIe {
			t.Fatal("8-GPU communicator should not need a PCIe ring")
		}
		if len(r.Order) != 8 {
			t.Fatalf("ring %v does not cover all devices", r)
		}
		seen := map[topology.NodeID]bool{}
		for i, d := range r.Order {
			if seen[d] {
				t.Fatalf("ring %v repeats device %d", r, d)
			}
			seen[d] = true
			next := r.Order[(i+1)%len(r.Order)]
			if top.DirectLink(d, next, topology.NVLink) == nil {
				t.Fatalf("ring hop %d->%d has no NVLink", d, next)
			}
		}
	}
}

func TestRingsAreEdgeDisjoint(t *testing.T) {
	comm, _ := newComm(t, gpus(8))
	rings := comm.Rings()
	if len(rings) != 2 {
		t.Fatalf("rings = %d, want 2", len(rings))
	}
	type pair struct{ a, b topology.NodeID }
	norm := func(a, b topology.NodeID) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	lanes := map[pair]int{}
	for _, l := range topology.DGX1().Links() {
		if l.Type == topology.NVLink {
			lanes[norm(l.A, l.B)] += l.Lanes
		}
	}
	used := map[pair]int{}
	for _, r := range rings {
		for i := range r.Order {
			p := norm(r.Order[i], r.Order[(i+1)%len(r.Order)])
			used[p]++
		}
	}
	for p, u := range used {
		if u > lanes[p] {
			t.Errorf("edge %v used %d times with only %d lanes", p, u, lanes[p])
		}
	}
}

func TestAllReduceScalesWithSizeAndRanks(t *testing.T) {
	// Larger payload takes longer.
	c8, _ := newComm(t, gpus(8))
	small := c8.AllReduce(profiler.StageWU, 10*units.MB, 0)
	c8b, _ := newComm(t, gpus(8))
	big := c8b.AllReduce(profiler.StageWU, 100*units.MB, 0)
	if big <= small {
		t.Errorf("100MB allreduce (%v) should exceed 10MB (%v)", big, small)
	}
}

func TestAllReduceWireMatchesRingFormula(t *testing.T) {
	c, _ := newComm(t, gpus(4))
	size := 100 * units.MB
	got := c.AllReduce(profiler.StageWU, size, 0)
	cfg := DefaultConfig()
	n := 4
	wire := units.TransferTime(units.Bytes(float64(size)*2*float64(n-1)/float64(n)), c.BusBW()) +
		time.Duration(2*(n-1))*cfg.StepLatency
	// End = host launch + kernel overhead + wire.
	want := cuda.DefaultCosts().LaunchKernel + cfg.KernelOverhead + wire
	if got != want {
		t.Errorf("allreduce end = %v, want %v", got, want)
	}
}

func TestSingleGPUCollectiveStillCosts(t *testing.T) {
	c, _ := newComm(t, []topology.NodeID{0})
	end := c.AllReduce(profiler.StageWU, 100*units.MB, 0)
	if end <= 0 {
		t.Error("single-GPU NCCL collective should still take time (Table II)")
	}
	// But it must be far cheaper than a multi-GPU one.
	c8, _ := newComm(t, gpus(8))
	end8 := c8.AllReduce(profiler.StageWU, 100*units.MB, 0)
	if end >= end8 {
		t.Errorf("1-GPU (%v) should be cheaper than 8-GPU (%v)", end, end8)
	}
}

func TestBroadcastCheaperThanAllReduce(t *testing.T) {
	a, _ := newComm(t, gpus(8))
	ar := a.AllReduce(profiler.StageWU, 100*units.MB, 0)
	b, _ := newComm(t, gpus(8))
	bc := b.Broadcast(profiler.StageWU, 100*units.MB, 0, 0)
	if bc >= ar {
		t.Errorf("broadcast (%v) should be cheaper than allreduce (%v)", bc, ar)
	}
}

func TestCollectivesSerializeOnCommStream(t *testing.T) {
	c, _ := newComm(t, gpus(4))
	e1 := c.AllReduce(profiler.StageWU, 50*units.MB, 0)
	e2 := c.AllReduce(profiler.StageWU, 50*units.MB, 0)
	if e2 <= e1 {
		t.Errorf("second collective (%v) should queue after first (%v)", e2, e1)
	}
}

func TestCollectiveWaitsForReady(t *testing.T) {
	c, _ := newComm(t, gpus(4))
	ready := 5 * time.Millisecond
	end := c.AllReduce(profiler.StageWU, units.MB, ready)
	if end <= ready {
		t.Errorf("collective ended %v before data ready %v", end, ready)
	}
}

func TestKernelsRecorded(t *testing.T) {
	c, prof := newComm(t, gpus(4))
	c.AllReduce(profiler.StageWU, units.MB, 0)
	c.Broadcast(profiler.StageWU, units.MB, 0, 0)
	if prof.Kernel(KernelAllReduce).Calls != 4 {
		t.Errorf("allreduce kernels = %d, want 4 (one per rank)", prof.Kernel(KernelAllReduce).Calls)
	}
	if prof.Kernel(KernelBroadcast).Calls != 4 {
		t.Errorf("broadcast kernels = %d, want 4", prof.Kernel(KernelBroadcast).Calls)
	}
	if prof.API(cuda.APILaunchKernel).Calls != 8 {
		t.Errorf("launches = %d, want 8", prof.API(cuda.APILaunchKernel).Calls)
	}
}

func TestReduceScatterAllGatherCheaperThanAllReduce(t *testing.T) {
	a, _ := newComm(t, gpus(8))
	ar := a.AllReduce(profiler.StageWU, 64*units.MB, 0)
	rs, _ := newComm(t, gpus(8))
	r := rs.ReduceScatter(profiler.StageWU, 64*units.MB, 0)
	ag, _ := newComm(t, gpus(8))
	g := ag.AllGather(profiler.StageWU, 64*units.MB, 0)
	if r >= ar || g >= ar {
		t.Errorf("RS (%v) and AG (%v) should each be cheaper than AR (%v)", r, g, ar)
	}
}

func TestNewRejectsEmptyAndUnmanaged(t *testing.T) {
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	rt, err := cuda.NewRuntime(fab, gpu.V100(), gpus(2), cuda.DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(rt, nil, DefaultConfig()); err == nil {
		t.Error("empty device list should error")
	}
	if _, err := New(rt, []topology.NodeID{5}, DefaultConfig()); err == nil {
		t.Error("unmanaged device should error")
	}
}

func TestSetupCostExposed(t *testing.T) {
	c, _ := newComm(t, gpus(2))
	if c.SetupCost() != DefaultConfig().SetupCost {
		t.Error("setup cost mismatch")
	}
	if c.Size() != 2 {
		t.Error("size mismatch")
	}
}

// The Pascal DGX-1's 4-port mesh must still yield NVLink rings (the quad
// ring and an 8-GPU Hamiltonian cycle exist in that wiring).
func TestPascalRings(t *testing.T) {
	top := topology.DGX1Pascal()
	r4 := BuildRings(top, gpus(4), 2)
	if len(r4) == 0 {
		t.Fatal("no 4-GPU ring on Pascal")
	}
	r8 := BuildRings(top, gpus(8), 2)
	if len(r8) == 0 {
		t.Fatal("no 8-GPU ring on Pascal")
	}
	for _, r := range r8 {
		if len(r.Order) != 8 || r.PCIe {
			t.Fatalf("bad Pascal ring %v", r)
		}
	}
	// Pascal NVLink 1.0: 20 GB/s lanes.
	if r8[0].LaneBW != 20*units.GBPerSec {
		t.Errorf("Pascal lane BW = %v, want 20GB/s", r8[0].LaneBW)
	}
}
