package nccl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBufs(rng *rand.Rand, ranks, elems int) [][]float32 {
	bufs := make([][]float32, ranks)
	for r := range bufs {
		bufs[r] = make([]float32, elems)
		for i := range bufs[r] {
			bufs[r][i] = float32(rng.NormFloat64())
		}
	}
	return bufs
}

func naiveSum(bufs [][]float32) []float32 {
	sum := make([]float32, len(bufs[0]))
	for _, b := range bufs {
		for i, v := range b {
			sum[i] += v
		}
	}
	return sum
}

func approxEq(a, b float32) bool {
	return math.Abs(float64(a-b)) <= 1e-4*(1+math.Abs(float64(b)))
}

func TestRingAllReduceMatchesNaiveSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ranks := range []int{1, 2, 3, 4, 5, 8} {
		for _, elems := range []int{1, 7, 64, 1000} {
			bufs := randBufs(rng, ranks, elems)
			want := naiveSum(bufs)
			if err := RingAllReduce(bufs); err != nil {
				t.Fatalf("ranks=%d elems=%d: %v", ranks, elems, err)
			}
			for r := range bufs {
				for i := range bufs[r] {
					if !approxEq(bufs[r][i], want[i]) {
						t.Fatalf("ranks=%d elems=%d rank=%d[%d]: got %v want %v",
							ranks, elems, r, i, bufs[r][i], want[i])
					}
				}
			}
		}
	}
}

func TestRingAllReduceFewerElemsThanRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bufs := randBufs(rng, 8, 3) // more ranks than elements: some chunks empty
	want := naiveSum(bufs)
	if err := RingAllReduce(bufs); err != nil {
		t.Fatal(err)
	}
	for r := range bufs {
		for i := range bufs[r] {
			if !approxEq(bufs[r][i], want[i]) {
				t.Fatalf("rank %d[%d]: got %v want %v", r, i, bufs[r][i], want[i])
			}
		}
	}
}

// Property: all-reduce leaves every rank with an identical buffer equal to
// the elementwise sum, for arbitrary rank/element counts.
func TestRingAllReduceProperty(t *testing.T) {
	f := func(seed int64, nr, ne uint8) bool {
		ranks := int(nr%8) + 1
		elems := int(ne%50) + 1
		rng := rand.New(rand.NewSource(seed))
		bufs := randBufs(rng, ranks, elems)
		want := naiveSum(bufs)
		if err := RingAllReduce(bufs); err != nil {
			return false
		}
		for r := range bufs {
			for i := range bufs[r] {
				if !approxEq(bufs[r][i], want[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRingBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for root := 0; root < 4; root++ {
		bufs := randBufs(rng, 4, 16)
		want := append([]float32(nil), bufs[root]...)
		if err := RingBroadcast(bufs, root); err != nil {
			t.Fatal(err)
		}
		for r := range bufs {
			for i := range bufs[r] {
				if bufs[r][i] != want[i] {
					t.Fatalf("root=%d rank=%d[%d]: got %v want %v", root, r, i, bufs[r][i], want[i])
				}
			}
		}
	}
}

func TestRingReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for root := 0; root < 5; root++ {
		bufs := randBufs(rng, 5, 33)
		want := naiveSum(bufs)
		if err := RingReduce(bufs, root); err != nil {
			t.Fatal(err)
		}
		for i := range bufs[root] {
			if !approxEq(bufs[root][i], want[i]) {
				t.Fatalf("root=%d [%d]: got %v want %v", root, i, bufs[root][i], want[i])
			}
		}
	}
}

func TestReferenceErrors(t *testing.T) {
	if err := RingAllReduce(nil); err == nil {
		t.Error("empty ranks should error")
	}
	if err := RingAllReduce([][]float32{{1}, {1, 2}}); err == nil {
		t.Error("ragged buffers should error")
	}
	if err := RingBroadcast([][]float32{{1}}, 5); err == nil {
		t.Error("bad root should error")
	}
	if err := RingReduce([][]float32{{1}}, -1); err == nil {
		t.Error("bad root should error")
	}
	if err := RingBroadcast([][]float32{{1}, {1, 2}}, 0); err == nil {
		t.Error("ragged broadcast should error")
	}
	if err := RingReduce([][]float32{{1}, {1, 2}}, 0); err == nil {
		t.Error("ragged reduce should error")
	}
	// Single-rank collectives are no-ops.
	b := [][]float32{{1, 2, 3}}
	if err := RingAllReduce(b); err != nil || b[0][1] != 2 {
		t.Error("single-rank allreduce should be a no-op")
	}
}

func TestChunkBoundsPartition(t *testing.T) {
	for n := 0; n < 40; n++ {
		for size := 1; size < 9; size++ {
			prev := 0
			total := 0
			for i := 0; i < size; i++ {
				lo, hi := chunkBounds(n, size, i)
				if lo != prev {
					t.Fatalf("n=%d size=%d chunk %d: lo=%d, want %d", n, size, i, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d size=%d chunk %d: hi<lo", n, size, i)
				}
				total += hi - lo
				prev = hi
			}
			if total != n {
				t.Fatalf("n=%d size=%d: chunks cover %d", n, size, total)
			}
		}
	}
}
