package nccl

import (
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/units"
)

// The closed-form wire time and the chunk-level fabric simulation must
// agree on idle hardware — the analytic shortcut the trainer relies on is
// exactly the chunk schedule's completion time.
func TestClosedFormMatchesChunkedSimulation(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for _, size := range []units.Bytes{units.MB, 16 * units.MB, 128 * units.MB} {
			c, _ := newComm(t, gpus(n))
			closed := c.WireTimeAllReduce(size)
			simulated := c.SimulateChunkedAllReduce(size, 0)
			diff := simulated.Seconds() - closed.Seconds()
			if diff < 0 {
				diff = -diff
			}
			rel := diff / closed.Seconds()
			// Chunk rounding, per-ring share rounding and one latency
			// quantum of slack are acceptable; anything beyond means the
			// closed form and the schedule have diverged.
			if rel > 0.05 && diff > 5e-6 {
				t.Errorf("n=%d size=%v: closed %v vs chunked %v (%.1f%% apart)",
					n, size, closed, simulated, 100*rel)
				t.Logf("rings: %v", c.Rings())
			}
		}
	}
}

// Regression for the integer-division payload loss: the chunk schedule
// used to book size/ranks per chunk and drop the remainder, so awkward
// sizes (primes, sizes below the rank count) under-booked the fabric.
// The last chunk now absorbs the remainder, and the schedule must stay
// in agreement with the closed form at exactly those sizes.
func TestChunkedAwkwardSizesMatchClosedForm(t *testing.T) {
	sizes := []units.Bytes{3, 7, 1009, 65537, 1000003, 16777259}
	for _, n := range []int{2, 4, 8} {
		for _, size := range sizes {
			c, _ := newComm(t, gpus(n))
			closed := c.WireTimeAllReduce(size)
			simulated := c.SimulateChunkedAllReduce(size, 0)
			if simulated <= 0 {
				t.Fatalf("n=%d size=%d: chunked schedule took no time", n, size)
			}
			diff := simulated.Seconds() - closed.Seconds()
			if diff < 0 {
				diff = -diff
			}
			rel := diff / closed.Seconds()
			if rel > 0.05 && diff > 5e-6 {
				t.Errorf("n=%d size=%d: closed %v vs chunked %v (%.1f%% apart)",
					n, size, closed, simulated, 100*rel)
			}
		}
	}
}

// Under contention the chunked schedule must slow down while the closed
// form (which ignores competing traffic) does not — quantifying the
// shortcut's blind spot.
func TestChunkedSeesContention(t *testing.T) {
	c, _ := newComm(t, gpus(8))
	idle := c.SimulateChunkedAllReduce(64*units.MB, 0)

	c2, _ := newComm(t, gpus(8))
	// Saturate one ring link with foreign traffic first.
	top := c2.rt.Fabric().Topology()
	l := top.DirectLink(0, 1, topology.NVLink)
	c2.rt.Fabric().Occupy(l, 0, 0, 50*time.Millisecond)
	busy := c2.SimulateChunkedAllReduce(64*units.MB, 0)
	if busy <= idle {
		t.Errorf("contended chunked run (%v) should exceed idle (%v)", busy, idle)
	}
}
