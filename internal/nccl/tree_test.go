package nccl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/interconnect"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

func TestBuildTreeStructure(t *testing.T) {
	for n := 1; n <= 16; n++ {
		tr, err := BuildTree(n)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Parent[tr.Root] != -1 {
			t.Fatalf("n=%d: root has a parent", n)
		}
		// Every non-root rank has a parent; edge count is n-1.
		edges := 0
		for r := 0; r < n; r++ {
			if len(tr.Children[r]) > 2 {
				t.Fatalf("n=%d: rank %d has %d children", n, r, len(tr.Children[r]))
			}
			edges += len(tr.Children[r])
			if r != tr.Root && tr.Parent[r] < 0 {
				t.Fatalf("n=%d: rank %d orphaned", n, r)
			}
		}
		if edges != n-1 {
			t.Fatalf("n=%d: %d edges, want %d", n, edges, n-1)
		}
		// Balanced depth: <= ceil(log2(n+1)).
		want := 0
		for v := n; v > 0; v >>= 1 {
			want++
		}
		if tr.Depth > want {
			t.Fatalf("n=%d: depth %d exceeds %d", n, tr.Depth, want)
		}
	}
	if _, err := BuildTree(0); err == nil {
		t.Error("0 ranks should error")
	}
}

func TestMirrorIsValidTree(t *testing.T) {
	tr, err := BuildTree(8)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Mirror()
	if m.Parent[m.Root] != -1 {
		t.Fatal("mirror root has a parent")
	}
	edges := 0
	for r := range m.Children {
		edges += len(m.Children[r])
	}
	if edges != 7 {
		t.Fatalf("mirror edges = %d", edges)
	}
	if m.Root != 7-tr.Root {
		t.Errorf("mirror root = %d, want %d", m.Root, 7-tr.Root)
	}
}

func TestTreeAllReduceMatchesNaiveSum(t *testing.T) {
	f := func(seed int64, nr, ne uint8) bool {
		ranks := int(nr%8) + 1
		elems := int(ne%60) + 1
		rng := rand.New(rand.NewSource(seed))
		bufs := randBufs(rng, ranks, elems)
		want := naiveSum(bufs)
		if err := TreeAllReduce(bufs); err != nil {
			return false
		}
		for r := range bufs {
			for i := range bufs[r] {
				if !approxEq(bufs[r][i], want[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTreeAllReduceErrors(t *testing.T) {
	if err := TreeAllReduce(nil); err == nil {
		t.Error("empty should error")
	}
	if err := TreeAllReduce([][]float32{{1}, {1, 2}}); err == nil {
		t.Error("ragged should error")
	}
	one := [][]float32{{1, 2}}
	if err := TreeAllReduce(one); err != nil || one[0][0] != 1 {
		t.Error("single rank should be a no-op")
	}
}

// The timed model: at 8 GPUs the tree algorithm must beat the ring for
// small messages (latency) and roughly tie for large ones (bandwidth).
func TestTreeAlgorithmLatencyAdvantage(t *testing.T) {
	timed := func(algo Algorithm, size units.Bytes) (endNS int64) {
		eng := sim.NewEngine()
		fab := interconnect.New(eng, topology.DGX1())
		devs := make([]topology.NodeID, 8)
		for i := range devs {
			devs[i] = topology.NodeID(i)
		}
		rt, err := cuda.NewRuntime(fab, gpu.V100(), devs, cuda.DefaultCosts(), profiler.New())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Algorithm = algo
		comm, err := New(rt, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return int64(comm.AllReduce(profiler.StageWU, size, 0))
	}
	small := 16 * units.KB
	if ring, tree := timed(AlgoRing, small), timed(AlgoTree, small); tree >= ring {
		t.Errorf("tree (%d) should beat ring (%d) for small messages", tree, ring)
	}
	big := 256 * units.MB
	ring, tree := timed(AlgoRing, big), timed(AlgoTree, big)
	diff := float64(tree-ring) / float64(ring)
	if diff > 0.01 || diff < -0.01 {
		t.Errorf("large-message tree (%d) should ~tie ring (%d)", tree, ring)
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgoRing.String() != "ring" || AlgoTree.String() != "tree" {
		t.Error("algorithm names wrong")
	}
}
