package nccl

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/interconnect"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// newCommOn builds a communicator on an explicit topology and config.
func newCommOn(t *testing.T, top *topology.Topology, devs []topology.NodeID, cfg Config) *Communicator {
	t.Helper()
	eng := sim.NewEngine()
	fab := interconnect.New(eng, top)
	rt, err := cuda.NewRuntime(fab, gpu.V100(), devs, cuda.DefaultCosts(), profiler.New())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(rt, devs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Pins the tuner: small messages take the latency-optimized (tree, LL)
// pair, the NVLink mid-range takes LL128, and bulk transfers take the
// bandwidth-optimal (ring, Simple) — different selections for small vs
// large is the acceptance criterion of the auto protocol.
func TestAutoSelectBySize(t *testing.T) {
	cases := []struct {
		size      units.Bytes
		nvlink    bool
		wantAlgo  Algorithm
		wantProto Protocol
	}{
		{4 * units.KB, true, AlgoTree, ProtoLL},
		{64 * units.KB, true, AlgoTree, ProtoLL}, // cutoff is inclusive
		{units.MB, true, AlgoTree, ProtoLL128},
		{4 * units.MB, true, AlgoTree, ProtoLL128},
		{64 * units.MB, true, AlgoRing, ProtoSimple},
		{4 * units.KB, false, AlgoTree, ProtoLL},
		{units.MB, false, AlgoRing, ProtoSimple}, // LL128 needs NVLink
	}
	for _, c := range cases {
		algo, proto := AutoSelect(c.size, 8, c.nvlink)
		if algo != c.wantAlgo || proto != c.wantProto {
			t.Errorf("AutoSelect(%v, nvlink=%v) = (%v, %v), want (%v, %v)",
				c.size, c.nvlink, algo, proto, c.wantAlgo, c.wantProto)
		}
	}
}

func TestParseProtocolRoundTrip(t *testing.T) {
	for _, name := range ProtocolNames() {
		p, err := ParseProtocol(name)
		if err != nil {
			t.Fatalf("ParseProtocol(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("ParseProtocol(%q).String() = %q", name, p.String())
		}
	}
	if p, err := ParseProtocol(""); err != nil || p != ProtoSimple {
		t.Errorf("empty protocol = (%v, %v), want Simple default", p, err)
	}
	if _, err := ParseProtocol("ll256"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// Regression for the zero-value Config bug: New used to rewrite
// MaxRings <= 0 to 1 while DefaultConfig uses 2, silently halving ring
// bandwidth for zero-value callers. The zero Config must now behave
// exactly like the default one.
func TestZeroConfigMatchesDefault(t *testing.T) {
	zero := newCommOn(t, topology.DGX1(), gpus(8), Config{})
	def := newCommOn(t, topology.DGX1(), gpus(8), DefaultConfig())
	if got, want := len(zero.Rings()), len(def.Rings()); got != want {
		t.Fatalf("zero Config builds %d rings, DefaultConfig builds %d", got, want)
	}
	if got, want := zero.BusBW(), def.BusBW(); got != want {
		t.Fatalf("zero Config bus BW %v, DefaultConfig %v", got, want)
	}
	for _, size := range []units.Bytes{64 * units.KB, 16 * units.MB, 128 * units.MB} {
		if got, want := zero.WireTimeAllReduce(size), def.WireTimeAllReduce(size); got != want {
			t.Errorf("size %v: zero Config wire time %v, DefaultConfig %v", size, got, want)
		}
	}
}

// LL128's 128-byte write-visibility guarantee only holds on NVLink: on a
// PCIe-only machine it must degrade to Simple, and on NVLink it must not.
func TestLL128RequiresNVLink(t *testing.T) {
	cfgLL128 := DefaultConfig()
	cfgLL128.Protocol = ProtoLL128

	pcieLL128 := newCommOn(t, topology.DGX1PCIeOnly(), gpus(8), cfgLL128)
	pcieSimple := newCommOn(t, topology.DGX1PCIeOnly(), gpus(8), DefaultConfig())
	if got, want := pcieLL128.WireTimeAllReduce(16*units.MB), pcieSimple.WireTimeAllReduce(16*units.MB); got != want {
		t.Errorf("LL128 on PCIe = %v, want Simple's %v (must degrade)", got, want)
	}

	nvLL128 := newCommOn(t, topology.DGX1(), gpus(8), cfgLL128)
	nvSimple := newCommOn(t, topology.DGX1(), gpus(8), DefaultConfig())
	if got, want := nvLL128.WireTimeAllReduce(16*units.MB), nvSimple.WireTimeAllReduce(16*units.MB); got == want {
		t.Errorf("LL128 on NVLink = Simple's %v; the line-format tax should show", got)
	}
}

// The protocol tradeoff itself: LL's quartered step latency wins on tiny
// messages; Simple's full bandwidth wins on bulk transfers.
func TestProtocolTradeoffBySize(t *testing.T) {
	cfgLL := DefaultConfig()
	cfgLL.Protocol = ProtoLL
	ll := newCommOn(t, topology.DGX1(), gpus(8), cfgLL)
	simple := newCommOn(t, topology.DGX1(), gpus(8), DefaultConfig())

	if llT, sT := ll.WireTimeAllReduce(units.KB), simple.WireTimeAllReduce(units.KB); llT >= sT {
		t.Errorf("1 KiB: LL %v should beat Simple %v", llT, sT)
	}
	if llT, sT := ll.WireTimeAllReduce(256*units.MB), simple.WireTimeAllReduce(256*units.MB); llT <= sT {
		t.Errorf("256 MiB: Simple %v should beat LL %v", sT, llT)
	}
}
