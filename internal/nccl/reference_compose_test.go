package nccl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The load-bearing compositional property: reduce-scatter followed by
// all-gather IS all-reduce. This pins the two halves to the exact chunk
// ownership layout the timed model's 2(N-1)/N traffic factor assumes.
func TestReduceScatterThenAllGatherEqualsAllReduce(t *testing.T) {
	f := func(seed int64, nr, ne uint8) bool {
		ranks := int(nr%8) + 1
		elems := int(ne%60) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randBufs(rng, ranks, elems)
		b := make([][]float32, ranks)
		for r := range a {
			b[r] = append([]float32(nil), a[r]...)
		}
		if err := RingAllReduce(a); err != nil {
			return false
		}
		if err := RingReduceScatter(b); err != nil {
			return false
		}
		if err := RingAllGather(b); err != nil {
			return false
		}
		for r := range a {
			for i := range a[r] {
				if !approxEq(a[r][i], b[r][i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReduceScatterOwnedChunksComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, ranks := range []int{2, 3, 5, 8} {
		elems := 37
		bufs := randBufs(rng, ranks, elems)
		want := naiveSum(bufs)
		if err := RingReduceScatter(bufs); err != nil {
			t.Fatal(err)
		}
		covered := make([]bool, elems)
		for r := 0; r < ranks; r++ {
			lo, hi := OwnedChunk(elems, ranks, r)
			for i := lo; i < hi; i++ {
				if !approxEq(bufs[r][i], want[i]) {
					t.Fatalf("ranks=%d rank=%d[%d]: got %v want %v", ranks, r, i, bufs[r][i], want[i])
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("ranks=%d: element %d owned by no rank", ranks, i)
			}
		}
	}
}

func TestAllGatherFromOwnership(t *testing.T) {
	// Seed each rank's owned chunk with distinct values, zero elsewhere;
	// after all-gather every rank must hold the assembled buffer.
	const ranks, elems = 4, 21
	bufs := make([][]float32, ranks)
	full := make([]float32, elems)
	for r := 0; r < ranks; r++ {
		bufs[r] = make([]float32, elems)
		lo, hi := OwnedChunk(elems, ranks, r)
		for i := lo; i < hi; i++ {
			v := float32(r*100 + i)
			bufs[r][i] = v
			full[i] = v
		}
	}
	if err := RingAllGather(bufs); err != nil {
		t.Fatal(err)
	}
	for r := range bufs {
		for i := range bufs[r] {
			if bufs[r][i] != full[i] {
				t.Fatalf("rank %d[%d] = %v, want %v", r, i, bufs[r][i], full[i])
			}
		}
	}
}

func TestNewReferenceErrors(t *testing.T) {
	if err := RingReduceScatter(nil); err == nil {
		t.Error("empty RS should error")
	}
	if err := RingAllGather(nil); err == nil {
		t.Error("empty AG should error")
	}
	if err := RingReduceScatter([][]float32{{1}, {1, 2}}); err == nil {
		t.Error("ragged RS should error")
	}
	if err := RingAllGather([][]float32{{1}, {1, 2}}); err == nil {
		t.Error("ragged AG should error")
	}
}
