package nccl

import (
	"fmt"
	"time"

	"repro/internal/cuda"
	"repro/internal/profiler"
	"repro/internal/topology"
	"repro/internal/units"
)

// Kernel names NCCL collectives execute, as they appear in nvprof output.
const (
	KernelAllReduce     = "ncclAllReduceRingKernel"
	KernelBroadcast     = "ncclBroadcastRingKernel"
	KernelReduce        = "ncclReduceRingKernel"
	KernelReduceScatter = "ncclReduceScatterRingKernel"
	KernelAllGather     = "ncclAllGatherRingKernel"
)

// Algorithm selects the collective schedule.
type Algorithm int

// Collective algorithms.
const (
	// AlgoRing is NCCL 2.0's schedule (what the paper measured):
	// bandwidth-optimal, 2(N-1) latency steps.
	AlgoRing Algorithm = iota
	// AlgoTree is the double-binary-tree schedule NCCL later added:
	// comparable bandwidth, O(log N) latency steps — the fix for the
	// small-message overheads the paper identified.
	AlgoTree
)

// String names the algorithm.
func (a Algorithm) String() string {
	if a == AlgoTree {
		return "tree"
	}
	return "ring"
}

// Config tunes the communicator's cost model.
type Config struct {
	// MaxRings bounds the edge-disjoint NVLink rings the communicator
	// builds (NCCL 2 on the DGX-1 typically finds a small number).
	MaxRings int
	// Algorithm selects the collective schedule (default ring). Ignored
	// when Protocol is ProtoAuto, which picks ring vs tree per collective.
	Algorithm Algorithm
	// Protocol selects the transfer protocol (default ProtoSimple, the
	// paper-era behavior). ProtoAuto resolves per collective by message
	// size and fabric.
	Protocol Protocol
	// KernelOverhead is the fixed device-side cost of one collective call
	// per rank (kernel start, block synchronization).
	KernelOverhead time.Duration
	// StepLatency is the per-ring-step latency (fine-grained chunk
	// synchronization between neighbors).
	StepLatency time.Duration
	// SetupCost is the one-time communicator initialization (topology
	// detection, ring search, buffer registration). The trainer charges it
	// once per training session.
	SetupCost time.Duration
	// LocalPassBW is the effective memory bandwidth of the degenerate
	// single-rank collective, which still runs the Reduce/Broadcast
	// kernels over device memory (the source of the paper's single-GPU
	// NCCL overhead, its Table II).
	LocalPassBW units.Bandwidth
}

// DefaultConfig returns values representative of NCCL 2.0 on the DGX-1.
func DefaultConfig() Config {
	return Config{
		MaxRings:       2,
		KernelOverhead: 4 * time.Microsecond,
		StepLatency:    2 * time.Microsecond,
		SetupCost:      220 * time.Millisecond,
		LocalPassBW:    450 * units.GBPerSec,
	}
}

// withDefaults fills every zero field from DefaultConfig, so the zero
// Config behaves exactly like the default one. (An earlier version
// rewrote a zero MaxRings to 1 while DefaultConfig used 2, silently
// halving ring bandwidth for zero-value callers.)
func (cfg Config) withDefaults() Config {
	def := DefaultConfig()
	if cfg.MaxRings <= 0 {
		cfg.MaxRings = def.MaxRings
	}
	if cfg.KernelOverhead <= 0 {
		cfg.KernelOverhead = def.KernelOverhead
	}
	if cfg.StepLatency <= 0 {
		cfg.StepLatency = def.StepLatency
	}
	if cfg.SetupCost <= 0 {
		cfg.SetupCost = def.SetupCost
	}
	if cfg.LocalPassBW <= 0 {
		cfg.LocalPassBW = def.LocalPassBW
	}
	return cfg
}

// Communicator is one NCCL communicator over a set of GPUs.
type Communicator struct {
	rt      *cuda.Runtime
	devs    []topology.NodeID
	rings   []Ring
	streams map[topology.NodeID]*cuda.Stream
	cfg     Config
	// hopLinks[r][i] is the link ring r uses from Order[i] to
	// Order[i+1 mod N] (nil entries only for PCIe rings, whose occupancy
	// is booked per routed hop in hopPaths).
	hopLinks [][]*topology.Link
	hopPaths [][]topology.Path
	// nvlink records whether the rings run over NVLink — the fabric
	// property protocol auto-selection (and LL128 eligibility) keys on.
	nvlink bool
	// avail is per-collective scratch (rank availability times), reused
	// across calls — a communicator issues thousands of collectives per
	// simulated epoch and is single-threaded within its run.
	avail []time.Duration
}

// New builds a communicator over the devices, constructing NVLink rings
// (or a PCIe fallback ring) from the runtime's topology.
func New(rt *cuda.Runtime, devs []topology.NodeID, cfg Config) (*Communicator, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("nccl: communicator needs at least one device")
	}
	cfg = cfg.withDefaults()
	c := &Communicator{
		rt:      rt,
		devs:    append([]topology.NodeID(nil), devs...),
		streams: make(map[topology.NodeID]*cuda.Stream, len(devs)),
		cfg:     cfg,
	}
	for _, d := range c.devs {
		if rt.Device(d) == nil {
			return nil, fmt.Errorf("nccl: device %d not managed by runtime", d)
		}
		c.streams[d] = rt.CommStream(d, fmt.Sprintf("nccl%d", d))
	}
	top := rt.Fabric().Topology()
	if len(c.devs) > 1 {
		c.rings = BuildRings(top, c.devs, cfg.MaxRings)
		if len(c.rings) == 0 {
			if r, ok := SwitchRing(top, c.devs); ok {
				c.rings = []Ring{r}
			} else {
				r, err := PCIeRing(top, c.devs)
				if err != nil {
					return nil, err
				}
				c.rings = []Ring{r}
			}
		}
		if err := c.resolveHops(top); err != nil {
			return nil, err
		}
		c.nvlink = !c.rings[0].PCIe
	}
	return c, nil
}

// resolveHops caches the link (or routed path) of every ring hop.
func (c *Communicator) resolveHops(top *topology.Topology) error {
	c.hopLinks = make([][]*topology.Link, len(c.rings))
	c.hopPaths = make([][]topology.Path, len(c.rings))
	for ri, r := range c.rings {
		n := len(r.Order)
		c.hopLinks[ri] = make([]*topology.Link, n)
		c.hopPaths[ri] = make([]topology.Path, n)
		for i := 0; i < n; i++ {
			from, to := r.Order[i], r.Order[(i+1)%n]
			if from == to { // 2-rank ring lists the pair once
				continue
			}
			if !r.PCIe {
				if l := top.DirectLink(from, to, topology.NVLink); l != nil {
					c.hopLinks[ri][i] = l
					continue
				}
				// Switch-relayed hop: keep the routed cut-through path.
				p, err := top.Route(from, to, topology.RouteStagedNVLink)
				if err != nil {
					return fmt.Errorf("nccl: ring hop %d->%d unroutable: %w", from, to, err)
				}
				c.hopPaths[ri][i] = p
				continue
			}
			p, err := top.Route(from, to, topology.RoutePCIeFallback)
			if err != nil {
				return err
			}
			c.hopPaths[ri][i] = p
		}
	}
	return nil
}

// Rings returns the communicator's rings.
func (c *Communicator) Rings() []Ring {
	out := make([]Ring, len(c.rings))
	copy(out, c.rings)
	return out
}

// BusBW returns the aggregate ring bandwidth (the "bus bandwidth" NCCL's
// own benchmarks report).
func (c *Communicator) BusBW() units.Bandwidth {
	var bw units.Bandwidth
	for _, r := range c.rings {
		bw += r.LaneBW
	}
	return bw
}

// Size returns the number of ranks.
func (c *Communicator) Size() int { return len(c.devs) }

// SetupCost returns the one-time initialization cost the trainer charges.
func (c *Communicator) SetupCost() time.Duration { return c.cfg.SetupCost }

// wireTime returns the pipelined transfer time of a collective moving
// dataFactor*size bytes per rank around the rings (dataFactor is the ring
// algorithm's traffic multiplier, e.g. 2(N-1)/N for AllReduce). The tree
// algorithm keeps the bandwidth term (double trees sustain comparable
// bandwidth over the same links) but replaces the latency term with its
// O(log N) step count. The protocol scales both terms: its line format
// taxes bandwidth, its synchronization scheme discounts step latency.
func (c *Communicator) wireTime(size units.Bytes, dataFactor float64, steps int) time.Duration {
	if size <= 0 {
		return 0
	}
	algo, proto := c.resolve(size)
	if algo == AlgoTree {
		if t, err := BuildTree(len(c.devs)); err == nil {
			up := t.Depth + 1
			// Reduce up + broadcast down, both trees concurrently.
			steps = 2 * up
		}
	}
	bytes := units.Bytes(float64(size) * dataFactor)
	bw := units.Bandwidth(float64(c.BusBW()) * proto.bwFraction())
	tt := units.TransferTime(bytes, bw)
	return tt + time.Duration(steps)*proto.stepLatency(c.cfg.StepLatency)
}

// resolve picks the (algorithm, protocol) pair for one collective of the
// given per-rank size: auto delegates to AutoSelect, LL128 off NVLink
// degrades to Simple (its 128-byte write-visibility guarantee only holds
// on NVLink fabrics), and everything else is taken as configured.
func (c *Communicator) resolve(size units.Bytes) (Algorithm, Protocol) {
	if c.cfg.Protocol == ProtoAuto {
		return AutoSelect(size, len(c.devs), c.nvlink)
	}
	proto := c.cfg.Protocol
	if proto == ProtoLL128 && !c.nvlink {
		proto = ProtoSimple
	}
	return c.cfg.Algorithm, proto
}

// localPass is the degenerate single-rank collective: the Reduce/Broadcast
// kernels still stream the buffer through device memory.
func (c *Communicator) localPass(size units.Bytes) time.Duration {
	return units.TransferTime(2*size, c.cfg.LocalPassBW)
}

// run executes one collective: per-rank host launches, a globally
// synchronized kernel window, and ring-link occupancy. It returns the
// operation's completion time.
func (c *Communicator) run(stage profiler.Stage, kernel string, ready time.Duration, wire time.Duration) time.Duration {
	if len(c.devs) == 1 {
		s := c.streams[c.devs[0]]
		hostDone := s.HostLaunch(stage, ready)
		start := hostDone
		if ready > start {
			start = ready
		}
		return s.Extend(stage, kernel, start, start+c.cfg.KernelOverhead+wire)
	}
	global := ready
	if cap(c.avail) < len(c.devs) {
		c.avail = make([]time.Duration, len(c.devs))
	}
	avail := c.avail[:len(c.devs)]
	for i, d := range c.devs {
		s := c.streams[d]
		hostDone := s.HostLaunch(stage, ready)
		a := hostDone
		if t := s.Tail(); t > a {
			a = t
		}
		if ready > a {
			a = ready
		}
		avail[i] = a
		if a > global {
			global = a
		}
	}
	end := global + c.cfg.KernelOverhead + wire
	for i, d := range c.devs {
		c.streams[d].Extend(stage, kernel, avail[i], end)
	}
	c.occupyRings(global+c.cfg.KernelOverhead, wire)
	return end
}

// occupyRings books every ring hop busy for the wire duration.
func (c *Communicator) occupyRings(ready, wire time.Duration) {
	if wire <= 0 {
		return
	}
	fab := c.rt.Fabric()
	for ri, r := range c.rings {
		n := len(r.Order)
		for i := 0; i < n; i++ {
			from := r.Order[i]
			if l := c.hopLinks[ri][i]; l != nil {
				fab.Occupy(l, from, ready, wire)
				continue
			}
			for _, hop := range c.hopPaths[ri][i].Hops {
				fab.Occupy(hop.Link, hop.From, ready, wire)
			}
		}
	}
}

// AllReduce reduces size bytes across all ranks, leaving the result on
// every rank (ring reduce-scatter + ring all-gather: each rank moves
// 2(N-1)/N of the buffer). ready is when every rank's input is available.
func (c *Communicator) AllReduce(stage profiler.Stage, size units.Bytes, ready time.Duration) time.Duration {
	n := len(c.devs)
	if n == 1 {
		return c.run(stage, KernelAllReduce, ready, c.localPass(size))
	}
	wire := c.wireTime(size, 2*float64(n-1)/float64(n), 2*(n-1))
	return c.run(stage, KernelAllReduce, ready, wire)
}

// Broadcast sends size bytes from the root to all ranks (pipelined ring
// copy: each rank forwards chunks as they arrive).
func (c *Communicator) Broadcast(stage profiler.Stage, size units.Bytes, root topology.NodeID, ready time.Duration) time.Duration {
	n := len(c.devs)
	if n == 1 {
		return c.run(stage, KernelBroadcast, ready, c.localPass(size)/2)
	}
	wire := c.wireTime(size, 1, n-1)
	return c.run(stage, KernelBroadcast, ready, wire)
}

// Reduce reduces size bytes from all ranks onto the root.
func (c *Communicator) Reduce(stage profiler.Stage, size units.Bytes, root topology.NodeID, ready time.Duration) time.Duration {
	n := len(c.devs)
	if n == 1 {
		return c.run(stage, KernelReduce, ready, c.localPass(size)/2)
	}
	wire := c.wireTime(size, 1, n-1)
	return c.run(stage, KernelReduce, ready, wire)
}

// ReduceScatter reduces and scatters 1/N of the buffer to each rank.
func (c *Communicator) ReduceScatter(stage profiler.Stage, size units.Bytes, ready time.Duration) time.Duration {
	n := len(c.devs)
	if n == 1 {
		return c.run(stage, KernelReduceScatter, ready, c.localPass(size)/2)
	}
	wire := c.wireTime(size, float64(n-1)/float64(n), n-1)
	return c.run(stage, KernelReduceScatter, ready, wire)
}

// AllGather gathers 1/N contributions into the full buffer on every rank.
func (c *Communicator) AllGather(stage profiler.Stage, size units.Bytes, ready time.Duration) time.Duration {
	n := len(c.devs)
	if n == 1 {
		return c.run(stage, KernelAllGather, ready, c.localPass(size)/2)
	}
	wire := c.wireTime(size, float64(n-1)/float64(n), n-1)
	return c.run(stage, KernelAllGather, ready, wire)
}
