package nccl

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// NCCL's transfer protocols ("Demystifying NCCL", PAPERS.md). The paper's
// 2018 measurements correspond to the Simple protocol; LL and LL128 trade
// effective bandwidth for lower per-step synchronization cost, which is
// why real NCCL picks them for small messages.
//
// The cost model per protocol is a (bandwidth fraction, step latency)
// pair applied to the ring/tree closed form:
//
//   - Simple moves payload-only cachelines at full link bandwidth but
//     synchronizes neighbors with memory fences (the full StepLatency).
//   - LL (low latency) packs 4 bytes of data with a 4-byte flag in each
//     8-byte word: half the effective bandwidth, but the inline flags
//     replace fences (StepLatency/4).
//   - LL128 packs 120 data bytes per 128-byte line (93.75% bandwidth) at
//     near-LL latency (StepLatency/2), but relies on 128-byte atomic
//     write visibility, which only NVLink fabrics guarantee; on PCIe
//     rings the communicator falls back to Simple.
type Protocol int

// Protocols. The zero value is Simple — the paper-era behavior — so a
// zero Config reproduces the original model exactly.
const (
	ProtoSimple Protocol = iota
	ProtoLL
	ProtoLL128
	// ProtoAuto resolves per collective: AutoSelect picks protocol and
	// ring-vs-tree algorithm from the message size and fabric.
	ProtoAuto
)

// String names the protocol as the API spells it.
func (p Protocol) String() string {
	switch p {
	case ProtoLL:
		return "ll"
	case ProtoLL128:
		return "ll128"
	case ProtoAuto:
		return "auto"
	}
	return "simple"
}

// ParseProtocol maps the API spelling to a Protocol. The empty string is
// the Simple default.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "", "simple":
		return ProtoSimple, nil
	case "ll":
		return ProtoLL, nil
	case "ll128":
		return ProtoLL128, nil
	case "auto":
		return ProtoAuto, nil
	}
	return ProtoSimple, fmt.Errorf("nccl: unknown protocol %q (want simple, ll, ll128 or auto)", s)
}

// ProtocolNames lists the accepted protocol spellings in display order.
func ProtocolNames() []string {
	return []string{"simple", "ll", "ll128", "auto"}
}

// bwFraction is the fraction of link bandwidth the protocol's line format
// leaves for payload.
func (p Protocol) bwFraction() float64 {
	switch p {
	case ProtoLL:
		return 0.5 // 4B data + 4B flag per 8B word
	case ProtoLL128:
		return 120.0 / 128.0 // 120B data per 128B line
	}
	return 1
}

// stepLatency is the per-step synchronization cost under the protocol,
// derived from the Simple-protocol base latency.
func (p Protocol) stepLatency(base time.Duration) time.Duration {
	switch p {
	case ProtoLL:
		return base / 4
	case ProtoLL128:
		return base / 2
	}
	return base
}

// Auto-selection thresholds: flag-synchronized LL wins while the latency
// term dominates, LL128 covers the mid-range on NVLink, and Simple's full
// bandwidth wins for bulk transfers. Trees win at small sizes for their
// O(log N) step count; rings win at large sizes for bandwidth optimality.
const (
	autoLLCutoff    = 64 * units.KB
	autoLL128Cutoff = 4 * units.MB
)

// AutoSelect picks (algorithm, protocol) for one collective the way NCCL's
// tuner does: by message size per rank and whether the communicator's
// rings run over NVLink. ranks is accepted for signature stability (the
// real tuner also weighs rank count; this model's thresholds already fold
// the DGX-scale rank counts in).
func AutoSelect(size units.Bytes, ranks int, nvlink bool) (Algorithm, Protocol) {
	_ = ranks
	if size <= autoLLCutoff {
		return AlgoTree, ProtoLL
	}
	if size <= autoLL128Cutoff && nvlink {
		return AlgoTree, ProtoLL128
	}
	return AlgoRing, ProtoSimple
}
