package nccl

import (
	"time"

	"repro/internal/units"
)

// Chunk-level validation of the closed-form ring model: the timed
// collectives price an all-reduce as 2(N-1)/N * S / busBW + 2(N-1) steps of
// latency. This file simulates the actual chunk schedule — N chunks per
// ring, 2(N-1) synchronized steps, every rank forwarding one chunk per
// step over its ring hop — by booking each transfer on the fabric. On idle
// hardware the two must agree; under contention the chunked schedule shows
// where the closed form is optimistic. Tests hold the model to this.

// WireTimeAllReduce exposes the closed-form wire time (excluding launch
// and kernel overheads) of a ring all-reduce of size bytes.
func (c *Communicator) WireTimeAllReduce(size units.Bytes) time.Duration {
	n := len(c.devs)
	if n <= 1 {
		return c.localPass(size)
	}
	return c.wireTime(size, 2*float64(n-1)/float64(n), 2*(n-1))
}

// SimulateChunkedAllReduce books the full chunk schedule of a ring
// all-reduce starting at ready and returns its completion time (excluding
// launch/kernel overheads). Each ring carries a share of the payload
// proportional to its lane bandwidth; the last ring absorbs the rounding
// remainder so the shares sum exactly to size, and within each ring the
// last chunk absorbs the per-ring remainder so the booked payload equals
// the share byte-for-byte. The schedule models the Simple protocol (the
// paper-era line format the chunk sizes correspond to).
func (c *Communicator) SimulateChunkedAllReduce(size units.Bytes, ready time.Duration) time.Duration {
	n := len(c.devs)
	if n <= 1 {
		return ready + c.localPass(size)
	}
	var totalBW float64
	for _, r := range c.rings {
		totalBW += float64(r.LaneBW)
	}
	fab := c.rt.Fabric()

	// Split the payload across rings, last ring taking the remainder.
	shares := make([]units.Bytes, len(c.rings))
	var assigned units.Bytes
	for ri, r := range c.rings {
		if ri == len(c.rings)-1 {
			shares[ri] = size - assigned
			break
		}
		shares[ri] = units.Bytes(float64(size) * float64(r.LaneBW) / totalBW)
		assigned += shares[ri]
	}

	// Per-ring schedule state. Steps are interleaved ACROSS rings (all
	// rings' step s before any ring's step s+1) so that FIFO booking order
	// matches time order on links the rings share.
	type ringState struct {
		// chunks[j] is the j-th chunk of the ring's share; the last chunk
		// absorbs the integer-division remainder. At step s, rank i
		// forwards chunks[(i+s) % ranks], so each chunk is booked exactly
		// once per step and no bytes are dropped.
		chunks    []units.Bytes
		steps     int
		stepReady time.Duration
	}
	states := make([]ringState, len(c.rings))
	maxSteps := 0
	for ri, r := range c.rings {
		ranks := len(r.Order)
		base := shares[ri] / units.Bytes(ranks)
		chunks := make([]units.Bytes, ranks)
		for j := range chunks {
			chunks[j] = base
		}
		chunks[ranks-1] = shares[ri] - base*units.Bytes(ranks-1)
		states[ri] = ringState{chunks: chunks, steps: 2 * (ranks - 1), stepReady: ready}
		if states[ri].steps > maxSteps {
			maxSteps = states[ri].steps
		}
	}
	for s := 0; s < maxSteps; s++ {
		for ri, r := range c.rings {
			st := &states[ri]
			if s >= st.steps {
				continue
			}
			ranks := len(r.Order)
			stepEnd := st.stepReady
			for i := 0; i < ranks; i++ {
				chunk := st.chunks[(i+s)%ranks]
				if chunk <= 0 {
					continue
				}
				// Rank i forwards one chunk along its hop. For 2-rank
				// rings the single full-duplex lane carries both
				// directions; hopLinks holds the pair's link at index 0.
				hi := i
				if ranks == 2 {
					hi = 0
				}
				l := c.hopLinks[ri][hi]
				if l == nil {
					for _, hop := range c.hopPaths[ri][hi].Hops {
						_, e := fab.Occupy(hop.Link, hop.From, st.stepReady, units.TransferTime(chunk, hop.Link.BW))
						if e > stepEnd {
							stepEnd = e
						}
					}
					continue
				}
				// Book at the LINK's full bandwidth: when two rings share
				// a bonded link they ride separate lanes concurrently, and
				// serialized full-bandwidth slices on one resource are the
				// fluid equivalent of parallel per-lane channels.
				from := r.Order[i]
				_, e := fab.Occupy(l, from, st.stepReady, units.TransferTime(chunk, l.BW))
				if e > stepEnd {
					stepEnd = e
				}
			}
			st.stepReady = stepEnd + c.cfg.StepLatency
		}
	}
	var end time.Duration
	for _, st := range states {
		if st.stepReady > end {
			end = st.stepReady
		}
	}
	return end
}
