package nccl

import "fmt"

// This file contains functional implementations of the ring collectives on
// real float32 buffers — the same chunked reduce-scatter + all-gather
// schedule the timed model prices. They exist to pin the modeled algorithms
// to real, testable semantics (and they are genuinely usable as in-process
// collectives).

// chunkBounds returns the [lo, hi) element range of chunk i when n elements
// are split across size chunks (remainder spread over the leading chunks,
// as NCCL splits buffers).
func chunkBounds(n, size, i int) (lo, hi int) {
	base := n / size
	rem := n % size
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RingAllReduce sums the rank buffers elementwise, leaving the full result
// in every buffer, using the ring algorithm: N-1 reduce-scatter steps
// followed by N-1 all-gather steps. All buffers must have equal length.
func RingAllReduce(bufs [][]float32) error {
	n := len(bufs)
	if n == 0 {
		return fmt.Errorf("nccl: no ranks")
	}
	elems := len(bufs[0])
	for r, b := range bufs {
		if len(b) != elems {
			return fmt.Errorf("nccl: rank %d has %d elements, rank 0 has %d", r, len(b), elems)
		}
	}
	if n == 1 {
		return nil
	}
	// Reduce-scatter: after step s, rank r holds the running sum of chunk
	// (r - s + N) % N from ranks r-s..r.
	for step := 0; step < n-1; step++ {
		for r := 0; r < n; r++ {
			src := (r - 1 + n) % n
			chunk := (r - 1 - step + 2*n) % n
			lo, hi := chunkBounds(elems, n, chunk)
			for i := lo; i < hi; i++ {
				bufs[r][i] += bufs[src][i]
			}
		}
	}
	// The fully reduced chunk c now lives on rank (c + n - 1) % n... after
	// n-1 steps rank r holds the complete sum of chunk (r+1) % n.
	// All-gather: circulate the completed chunks.
	for step := 0; step < n-1; step++ {
		for r := 0; r < n; r++ {
			src := (r - 1 + n) % n
			chunk := (r - step + 2*n) % n
			lo, hi := chunkBounds(elems, n, chunk)
			copy(bufs[r][lo:hi], bufs[src][lo:hi])
		}
	}
	return nil
}

// RingReduceScatter runs the reduce-scatter half of the ring algorithm:
// after N-1 steps, rank r holds the complete elementwise sum of chunk
// (r+1) mod N (the same ownership layout RingAllReduce's gather phase
// starts from). Other chunks are left holding partial sums.
func RingReduceScatter(bufs [][]float32) error {
	n := len(bufs)
	if n == 0 {
		return fmt.Errorf("nccl: no ranks")
	}
	elems := len(bufs[0])
	for r, b := range bufs {
		if len(b) != elems {
			return fmt.Errorf("nccl: rank %d has %d elements, rank 0 has %d", r, len(b), elems)
		}
	}
	for step := 0; step < n-1; step++ {
		for r := 0; r < n; r++ {
			src := (r - 1 + n) % n
			chunk := (r - 1 - step + 2*n) % n
			lo, hi := chunkBounds(elems, n, chunk)
			for i := lo; i < hi; i++ {
				bufs[r][i] += bufs[src][i]
			}
		}
	}
	return nil
}

// OwnedChunk returns the [lo, hi) element range rank r owns (holds fully
// reduced) after RingReduceScatter over n ranks of an elems-sized buffer.
func OwnedChunk(elems, n, r int) (lo, hi int) {
	return chunkBounds(elems, n, (r+1)%n)
}

// RingAllGather circulates each rank's owned chunk (per OwnedChunk layout)
// around the ring until every rank holds the full buffer — the gather half
// of the ring all-reduce.
func RingAllGather(bufs [][]float32) error {
	n := len(bufs)
	if n == 0 {
		return fmt.Errorf("nccl: no ranks")
	}
	elems := len(bufs[0])
	for r, b := range bufs {
		if len(b) != elems {
			return fmt.Errorf("nccl: rank %d has %d elements, rank 0 has %d", r, len(b), elems)
		}
	}
	for step := 0; step < n-1; step++ {
		for r := 0; r < n; r++ {
			src := (r - 1 + n) % n
			chunk := (r - step + 2*n) % n
			lo, hi := chunkBounds(elems, n, chunk)
			copy(bufs[r][lo:hi], bufs[src][lo:hi])
		}
	}
	return nil
}

// RingBroadcast copies the root rank's buffer to every rank by forwarding
// around the ring.
func RingBroadcast(bufs [][]float32, root int) error {
	n := len(bufs)
	if n == 0 {
		return fmt.Errorf("nccl: no ranks")
	}
	if root < 0 || root >= n {
		return fmt.Errorf("nccl: root %d out of range [0,%d)", root, n)
	}
	elems := len(bufs[root])
	for r, b := range bufs {
		if len(b) != elems {
			return fmt.Errorf("nccl: rank %d has %d elements, root has %d", r, len(b), elems)
		}
	}
	for step := 1; step < n; step++ {
		dst := (root + step) % n
		src := (root + step - 1) % n
		copy(bufs[dst], bufs[src])
	}
	return nil
}

// RingReduce sums all rank buffers into the root's buffer (other buffers
// are left holding partial sums, as the real algorithm does).
func RingReduce(bufs [][]float32, root int) error {
	n := len(bufs)
	if n == 0 {
		return fmt.Errorf("nccl: no ranks")
	}
	if root < 0 || root >= n {
		return fmt.Errorf("nccl: root %d out of range [0,%d)", root, n)
	}
	elems := len(bufs[root])
	for r, b := range bufs {
		if len(b) != elems {
			return fmt.Errorf("nccl: rank %d has %d elements, root has %d", r, len(b), elems)
		}
	}
	// A running buffer travels around the ring from (root+1)%n, each rank
	// adding its payload, and lands on the root.
	carrier := make([]float32, elems)
	copy(carrier, bufs[(root+1)%n])
	for step := 2; step <= n; step++ {
		r := (root + step) % n
		for i := range carrier {
			carrier[i] += bufs[r][i]
		}
		if r == root {
			copy(bufs[root], carrier)
			break
		}
	}
	return nil
}
