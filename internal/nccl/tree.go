package nccl

import "fmt"

// Double binary trees are the algorithm NCCL added (in 2.4, shortly after
// the paper's study) to fix exactly the behaviour the paper measured: ring
// collectives pay 2(N-1) latency steps, which dominates small-message
// operations on 8 GPUs. A pair of complementary binary trees halves the
// buffer across trees and completes in O(log N) steps at full bandwidth.
//
// This file provides the tree construction and a functional all-reduce
// over real float32 buffers; the timed model in comm.go prices the
// algorithm via Config.Algorithm.

// Tree is one rooted binary tree over ranks 0..N-1.
type Tree struct {
	Root     int
	Parent   []int   // Parent[root] == -1
	Children [][]int // up to two per rank
	Depth    int
}

// BuildTree constructs a balanced binary tree over n ranks by recursive
// midpoint (depth ceil(log2(n+1))).
func BuildTree(n int) (Tree, error) {
	if n <= 0 {
		return Tree{}, fmt.Errorf("nccl: tree needs ranks, got %d", n)
	}
	t := Tree{
		Parent:   make([]int, n),
		Children: make([][]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	var build func(lo, hi, parent, depth int) int
	build = func(lo, hi, parent, depth int) int {
		if lo > hi {
			return -1
		}
		mid := (lo + hi) / 2
		t.Parent[mid] = parent
		if parent >= 0 {
			t.Children[parent] = append(t.Children[parent], mid)
		}
		if depth > t.Depth {
			t.Depth = depth
		}
		build(lo, mid-1, mid, depth+1)
		build(mid+1, hi, mid, depth+1)
		return mid
	}
	t.Root = build(0, n-1, -1, 0)
	return t, nil
}

// Mirror returns the complementary tree: rank r takes the role of rank
// n-1-r. A rank that is a leaf in one tree is interior in the other for
// most layouts, which is what lets the pair sustain full bandwidth.
func (t Tree) Mirror() Tree {
	n := len(t.Parent)
	m := Tree{
		Root:     n - 1 - t.Root,
		Parent:   make([]int, n),
		Children: make([][]int, n),
		Depth:    t.Depth,
	}
	for r := 0; r < n; r++ {
		src := n - 1 - r
		if p := t.Parent[src]; p < 0 {
			m.Parent[r] = -1
		} else {
			m.Parent[r] = n - 1 - p
		}
		for _, c := range t.Children[src] {
			m.Children[r] = append(m.Children[r], n-1-c)
		}
	}
	return m
}

// treeReduceHalf sums the [lo,hi) segment of all rank buffers onto the
// tree's root via a post-order walk, then broadcasts the result back down.
func treeReduceHalf(tr Tree, bufs [][]float32, lo, hi int) {
	// Reduce up: children accumulate into parents, leaves first.
	var up func(r int)
	up = func(r int) {
		for _, c := range tr.Children[r] {
			up(c)
			for i := lo; i < hi; i++ {
				bufs[r][i] += bufs[c][i]
			}
		}
	}
	up(tr.Root)
	// Broadcast down.
	var down func(r int)
	down = func(r int) {
		for _, c := range tr.Children[r] {
			copy(bufs[c][lo:hi], bufs[r][lo:hi])
			down(c)
		}
	}
	down(tr.Root)
}

// TreeAllReduce sums the rank buffers elementwise using a double binary
// tree: the first half of the buffer travels one tree, the second half its
// mirror. All buffers must have equal length.
func TreeAllReduce(bufs [][]float32) error {
	n := len(bufs)
	if n == 0 {
		return fmt.Errorf("nccl: no ranks")
	}
	elems := len(bufs[0])
	for r, b := range bufs {
		if len(b) != elems {
			return fmt.Errorf("nccl: rank %d has %d elements, rank 0 has %d", r, len(b), elems)
		}
	}
	if n == 1 {
		return nil
	}
	t1, err := BuildTree(n)
	if err != nil {
		return err
	}
	t2 := t1.Mirror()
	half := elems / 2
	treeReduceHalf(t1, bufs, 0, half)
	treeReduceHalf(t2, bufs, half, elems)
	return nil
}
