package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// load collects everything a fresh store at dir loads, returning the
// store for stats inspection.
func load(t *testing.T, dir string, schemaVersion int) (*Store, map[string][]byte) {
	t.Helper()
	s, err := Open(dir, schemaVersion, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	got := map[string][]byte{}
	if err := s.Load(func(key string, body []byte) { got[key] = body }); err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s, got
}

func TestRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	entries := map[string][]byte{
		"aaaa": []byte(`{"schemaVersion":1,"x":1}`),
		"bbbb": []byte(`{"schemaVersion":1,"x":2}`),
		"cccc": bytes.Repeat([]byte("z"), 1<<16), // a big body survives too
	}
	for k, v := range entries {
		s.Put(k, v)
	}
	if err := s.Close(); err != nil { // Close drains the queue
		t.Fatalf("Close: %v", err)
	}
	if st := s.Stats(); st.Writes != 3 || st.Dropped != 0 || st.WriteErrors != 0 {
		t.Fatalf("stats after writes = %+v, want 3 writes, no drops/errors", st)
	}

	// "Restart": a fresh store over the same directory must load every
	// entry byte-identically.
	s2, got := load(t, dir, 1)
	if len(got) != len(entries) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(entries))
	}
	for k, v := range entries {
		if !bytes.Equal(got[k], v) {
			t.Errorf("entry %q: body differs after restart", k)
		}
	}
	if st := s2.Stats(); st.Loaded != 3 || st.Skipped != 0 {
		t.Fatalf("stats after load = %+v, want 3 loaded, 0 skipped", st)
	}
}

func TestPutOverwritesExistingKey(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1, 0)
	s.Put("k", []byte("old"))
	s.Flush()
	s.Put("k", []byte("new"))
	s.Close()
	_, got := load(t, dir, 1)
	if string(got["k"]) != "new" {
		t.Fatalf("entry = %q, want the last write", got["k"])
	}
}

// TestLoadSkipsTruncatedEntry simulates a crash that cut an entry short
// at every possible byte boundary: the store must boot, skip the bad
// file, and keep serving the intact sibling.
func TestLoadSkipsTruncatedEntry(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1, 0)
	s.Put("good", []byte("intact body"))
	s.Put("bad", []byte("doomed body"))
	s.Close()

	path := filepath.Join(dir, "bad"+suffix)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut += 5 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, got := load(t, dir, 1)
		if _, ok := got["bad"]; ok {
			t.Fatalf("cut=%d: truncated entry was loaded", cut)
		}
		if string(got["good"]) != "intact body" {
			t.Fatalf("cut=%d: intact sibling lost", cut)
		}
		if st := s2.Stats(); st.Loaded != 1 || st.Skipped != 1 {
			t.Fatalf("cut=%d: stats = %+v, want 1 loaded / 1 skipped", cut, st)
		}
		s2.Close()
	}
}

// TestLoadSkipsCorruptBody flips a byte inside the body; the CRC must
// catch it.
func TestLoadSkipsCorruptBody(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1, 0)
	s.Put("victim", []byte("pristine bytes"))
	s.Close()

	path := filepath.Join(dir, "victim"+suffix)
	raw, _ := os.ReadFile(path)
	raw[headerSize+len("victim")+3] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	s2, got := load(t, dir, 1)
	if len(got) != 0 {
		t.Fatalf("corrupt entry was loaded: %q", got)
	}
	if st := s2.Stats(); st.Skipped != 1 {
		t.Fatalf("stats = %+v, want 1 skipped", st)
	}
}

// TestLoadCleansPartialTempFile: a crash mid-write leaves a temp file
// whose rename never happened. Load must ignore it as an entry and
// remove it.
func TestLoadCleansPartialTempFile(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpPrefix+"12345")
	if err := os.WriteFile(tmp, []byte("half an ent"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, got := load(t, dir, 1)
	defer s.Close()
	if len(got) != 0 {
		t.Fatalf("temp file surfaced as an entry: %q", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover temp file not cleaned up (stat err: %v)", err)
	}
}

// TestLoadSkipsForeignSchemaVersion: bodies speak the service wire
// format; when that moves, old snapshots must not be served.
func TestLoadSkipsForeignSchemaVersion(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1, 0)
	s.Put("v1", []byte("old wire format"))
	s.Close()

	s2, got := load(t, dir, 2)
	if len(got) != 0 {
		t.Fatalf("foreign-version entry was loaded: %q", got)
	}
	if st := s2.Stats(); st.Skipped != 1 {
		t.Fatalf("stats = %+v, want 1 skipped", st)
	}
}

// TestLoadSkipsRenamedEntry: the file name is the content address; an
// entry copied to the wrong name (or tampered with) must not serve under
// a key it does not match.
func TestLoadSkipsRenamedEntry(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1, 0)
	s.Put("original", []byte("body"))
	s.Close()
	if err := os.Rename(filepath.Join(dir, "original"+suffix), filepath.Join(dir, "imposter"+suffix)); err != nil {
		t.Fatal(err)
	}
	_, got := load(t, dir, 1)
	if len(got) != 0 {
		t.Fatalf("renamed entry was loaded: %q", got)
	}
}

func TestLoadIgnoresUnrelatedFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README"), []byte("not a snapshot"), 0o644)
	os.Mkdir(filepath.Join(dir, "subdir.snap"), 0o755)
	s, got := load(t, dir, 1)
	defer s.Close()
	if len(got) != 0 {
		t.Fatalf("unrelated files surfaced as entries: %q", got)
	}
	if st := s.Stats(); st.Loaded != 0 {
		t.Fatalf("stats = %+v, want nothing loaded", st)
	}
}

// TestPutDropsWhenQueueFull: the write path must never block a
// simulation worker. With the drainer wedged behind a Flush sentinel the
// queue fills, and further Puts are dropped and counted.
func TestPutDropsWhenQueueFull(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Wedge: fill the queue faster than the drainer can write by pushing
	// many entries; with depth 2 at least one must eventually drop. Use a
	// read-only dir trick instead for determinism: simpler, saturate with
	// enough entries that drops are certain even if some drain.
	for i := 0; i < 10_000; i++ {
		s.Put(fmt.Sprintf("k%05d", i), []byte("body"))
	}
	st := s.Stats()
	if st.Dropped == 0 {
		t.Skip("drainer kept up with 10k puts on depth-2 queue; drop path not exercised on this machine")
	}
}

func TestPutAfterCloseIsNoop(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1, 0)
	s.Close()
	s.Put("late", []byte("body")) // must not panic (send on closed channel)
	s.Flush()                     // must not block or panic
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	_, got := load(t, dir, 1)
	if len(got) != 0 {
		t.Fatalf("post-Close Put was persisted: %q", got)
	}
}

// TestConcurrentPutFlushClose hammers the store from many goroutines
// under the race detector: concurrent Puts, periodic Flushes, one Close
// racing the tail.
func TestConcurrentPutFlushClose(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Put(fmt.Sprintf("g%d-i%d", g, i), []byte(strings.Repeat("x", 64)))
				if i%25 == 0 {
					s.Flush()
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	st := s.Stats()
	if st.Writes+st.Dropped != 800 {
		t.Fatalf("writes(%d)+dropped(%d) != 800 puts", st.Writes, st.Dropped)
	}
	// Everything that was written must load back.
	s2, got := load(t, dir, 1)
	defer s2.Close()
	if uint64(len(got)) != st.Writes {
		t.Fatalf("loaded %d entries, want %d written", len(got), st.Writes)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", 1, 0); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
