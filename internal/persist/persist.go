// Package persist is the disk-backed snapshot layer under the service's
// result cache: every preserialized response body the daemon caches is
// also written to a content-addressed file (one file per workload
// fingerprint), so a restarted dgxsimd comes back up warm instead of
// re-simulating its entire working set. This is the first half of the
// "millions of users" story — the second is cmd/dgxsimgw, which routes
// repeated fingerprints to the replica whose disk already holds them.
//
// Format. Each entry lives in <dir>/<fingerprint>.snap:
//
//	offset  size  field
//	0       8     magic "DGXSNAP1"
//	8       4     schemaVersion (little-endian uint32; the service wire
//	              format the body speaks, not this file format's version —
//	              the file format is pinned by the magic)
//	12      4     key length K
//	16      4     body length B
//	20      K     key (the workload fingerprint, hex)
//	20+K    B     body (the exact response bytes the cache serves)
//	20+K+B  4     CRC-32 (IEEE) of everything above
//
// Durability is crash-consistent, not transactional: writes go to a
// private temp file in the same directory and are renamed into place, so
// a reader never observes a half-written entry under its final name. A
// crash can leave a stale *.tmp file or a truncated rename target from a
// previous unclean filesystem; Load treats anything that fails the magic,
// length, schema-version, key, or CRC checks as absent — it is skipped
// (and counted), never served, and the next write of that fingerprint
// simply replaces it.
//
// Writes are asynchronous behind a bounded queue drained by one
// background goroutine: Put never blocks the simulation path, and when
// the queue is full the entry is dropped (and counted) rather than
// applying backpressure — the cache entry is still served from memory,
// and a dropped snapshot only costs a re-simulation after the next
// restart. Close drains the queue, so a graceful shutdown persists
// everything accepted.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// magic identifies (and versions) the snapshot file format.
const magic = "DGXSNAP1"

// suffix is the entry-file extension; anything else in the directory is
// ignored by Load (temp files use tmpPrefix and are cleaned up).
const suffix = ".snap"

// tmpPrefix marks in-flight writes. Load removes leftovers: they are, by
// construction, entries whose rename never happened.
const tmpPrefix = ".tmp-"

// headerSize is the fixed-size prefix before the key bytes.
const headerSize = len(magic) + 3*4

// defaultQueueDepth bounds the background write queue when Open is given
// a non-positive depth: enough to absorb a burst of a whole sweep's
// misses without ever blocking a worker.
const defaultQueueDepth = 256

// Stats counts what the store has done since Open. Loaded/Skipped cover
// the boot-time Load; Writes/WriteErrors/Dropped cover the write-through
// path.
type Stats struct {
	// Loaded entries served into the cache by Load.
	Loaded uint64
	// Skipped files Load rejected: truncated, corrupt, foreign schema
	// version, or mismatched key.
	Skipped uint64
	// Writes completed (tmp written, fsynced, renamed).
	Writes uint64
	// WriteErrors: writes attempted but failed (disk full, permissions).
	WriteErrors uint64
	// Dropped entries refused because the write queue was full.
	Dropped uint64
}

// entry is one queued write; a non-nil flush marks a Flush sentinel
// instead (closed by the drainer when every prior entry is handled).
type entry struct {
	key   string
	body  []byte
	flush chan struct{}
}

// Store persists cache entries under one directory. Safe for concurrent
// use; create with Open and release with Close.
type Store struct {
	dir           string
	schemaVersion uint32

	queue chan entry
	wg    sync.WaitGroup

	// closeMu serializes channel sends (readers) against the one close
	// (writer): Put and Flush hold it shared while they touch the queue,
	// so Close cannot close the channel under a send. statsMu is separate
	// because the drainer updates stats while senders may be blocked.
	closeMu sync.RWMutex
	closed  bool

	statsMu sync.Mutex
	stats   Stats
}

// Open prepares a store rooted at dir (created if absent), accepting
// only entries of the given service schema version. queueDepth bounds
// the asynchronous write queue (<= 0 selects the default 256).
func Open(dir string, schemaVersion int, queueDepth int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if queueDepth <= 0 {
		queueDepth = defaultQueueDepth
	}
	s := &Store{
		dir:           dir,
		schemaVersion: uint32(schemaVersion),
		queue:         make(chan entry, queueDepth),
	}
	s.wg.Add(1)
	go s.drain()
	return s, nil
}

// Dir returns the snapshot directory.
func (s *Store) Dir() string { return s.dir }

// Load walks the snapshot directory and hands every valid entry to fn
// (the body slice is owned by the callee). Invalid files — truncated,
// corrupt, wrong schema version, key/filename mismatch — are skipped and
// counted, never fatal: a crash mid-write must not keep the daemon from
// booting. Leftover temp files are deleted. The error reports only a
// directory that cannot be read at all.
func (s *Store) Load(fn func(key string, body []byte)) error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			// An interrupted write; its rename never happened.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if de.IsDir() || !strings.HasSuffix(name, suffix) {
			continue
		}
		key, body, err := readEntry(filepath.Join(s.dir, name), s.schemaVersion)
		if err != nil {
			s.statsMu.Lock()
			s.stats.Skipped++
			s.statsMu.Unlock()
			continue
		}
		s.statsMu.Lock()
		s.stats.Loaded++
		s.statsMu.Unlock()
		fn(key, body)
	}
	return nil
}

// Put schedules one entry for persistence. It never blocks: when the
// write queue is full the entry is dropped and counted (the in-memory
// cache still serves it; only restart warmth is lost). The store copies
// nothing — body must be immutable, which the service's cached bodies
// are by contract.
func (s *Store) Put(key string, body []byte) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return
	}
	select {
	case s.queue <- entry{key: key, body: body}:
	default:
		s.statsMu.Lock()
		s.stats.Dropped++
		s.statsMu.Unlock()
	}
}

// Flush blocks until every entry accepted before the call has been
// written (or failed). It exists for tests and orderly shutdown.
func (s *Store) Flush() {
	done := make(chan struct{})
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return
	}
	// A sentinel rides the queue; when the drainer reaches it, every
	// prior entry has been handled. The drainer never takes closeMu, so
	// blocking here (full queue) cannot deadlock.
	s.queue <- entry{flush: done}
	s.closeMu.RUnlock()
	<-done
}

// Close drains the queue and stops the background writer. Put becomes a
// no-op afterwards.
func (s *Store) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.closeMu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// drain is the background writer: one goroutine, so entry writes never
// contend with each other and shutdown is a channel close away.
func (s *Store) drain() {
	defer s.wg.Done()
	for e := range s.queue {
		if e.flush != nil {
			close(e.flush)
			continue
		}
		err := writeEntry(s.dir, e.key, e.body, s.schemaVersion)
		s.statsMu.Lock()
		if err != nil {
			s.stats.WriteErrors++
		} else {
			s.stats.Writes++
		}
		s.statsMu.Unlock()
	}
}

// encodeEntry renders the on-disk bytes for one entry.
func encodeEntry(key string, body []byte, schemaVersion uint32) []byte {
	buf := make([]byte, 0, headerSize+len(key)+len(body)+4)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, schemaVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, key...)
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// writeEntry persists one entry atomically: temp file in the same
// directory, fsync, rename over the final name. Readers (a concurrent
// Load in another process, or the next boot) either see the whole entry
// or none of it.
func writeEntry(dir, key string, body []byte, schemaVersion uint32) error {
	f, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(encodeEntry(key, body, schemaVersion)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, key+suffix)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readEntry parses and verifies one snapshot file. Any deviation —
// short file, bad magic, foreign schema version, inconsistent lengths,
// key/filename mismatch, CRC failure — is an error the caller treats as
// "entry absent".
func readEntry(path string, schemaVersion uint32) (string, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if len(raw) < headerSize+4 {
		return "", nil, fmt.Errorf("persist: %s: truncated header", path)
	}
	if string(raw[:len(magic)]) != magic {
		return "", nil, fmt.Errorf("persist: %s: bad magic", path)
	}
	sv := binary.LittleEndian.Uint32(raw[len(magic):])
	keyLen := binary.LittleEndian.Uint32(raw[len(magic)+4:])
	bodyLen := binary.LittleEndian.Uint32(raw[len(magic)+8:])
	if sv != schemaVersion {
		return "", nil, fmt.Errorf("persist: %s: schema version %d, want %d", path, sv, schemaVersion)
	}
	want := headerSize + int(keyLen) + int(bodyLen) + 4
	if int(keyLen) > len(raw) || int(bodyLen) > len(raw) || len(raw) != want {
		return "", nil, fmt.Errorf("persist: %s: truncated entry (%d bytes, want %d)", path, len(raw), want)
	}
	payload := raw[:want-4]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[want-4:]) {
		return "", nil, fmt.Errorf("persist: %s: checksum mismatch", path)
	}
	key := string(raw[headerSize : headerSize+int(keyLen)])
	if filepath.Base(path) != key+suffix {
		return "", nil, fmt.Errorf("persist: %s: stored key %q does not match filename", path, key)
	}
	body := raw[headerSize+int(keyLen) : want-4]
	return key, body, nil
}
