// Package optimize searches a configuration space for the Pareto
// frontier of a training objective against GPU cost. Given one model
// and an objective — minimize epoch time, or maximize throughput per
// GPU — it expands GPU count × batch size × communication method ×
// fault plan into candidate workloads, reads each candidate's simulated
// report, and keeps the non-dominated set: every point on the frontier
// is the best achievable objective at its GPU budget, and spending more
// GPUs than a frontier point only helps if it strictly improves the
// objective. An optional memory cap (GiB per GPU, root-GPU usage) drops
// configurations that would not fit the device before dominance is
// judged.
//
// The package is pure search logic: expansion and dominance, no
// simulation and no HTTP. The service's /v1/optimize endpoint and the
// experiments CLI both drive it with reports obtained elsewhere, so the
// frontier for a given candidate/report set is deterministic — same
// inputs, same points, same order.
package optimize

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
)

// Objective names what the search optimizes at each GPU budget.
type Objective string

const (
	// MinEpochTime minimizes the simulated epoch wall time.
	MinEpochTime Objective = "min_epoch_time"
	// MaxThroughputPerGPU maximizes images/second divided by GPU count —
	// the scaling-efficiency view: more GPUs only stay on the frontier
	// while per-GPU throughput holds up.
	MaxThroughputPerGPU Objective = "max_throughput_per_gpu"
)

// ParseObjective resolves the wire spelling; empty means MinEpochTime.
func ParseObjective(s string) (Objective, error) {
	switch Objective(s) {
	case "", MinEpochTime:
		return MinEpochTime, nil
	case MaxThroughputPerGPU:
		return MaxThroughputPerGPU, nil
	}
	return "", fmt.Errorf("unknown objective %q (want %q or %q)", s, MinEpochTime, MaxThroughputPerGPU)
}

// Value extracts the objective's metric from a report.
func (o Objective) Value(r *core.Report) float64 {
	switch o {
	case MaxThroughputPerGPU:
		g := r.Workload.GPUs
		if g < 1 {
			g = 1
		}
		return r.Throughput / float64(g)
	default:
		return float64(r.EpochTime.Nanoseconds())
	}
}

// Better reports whether objective value a beats b.
func (o Objective) Better(a, b float64) bool {
	if o == MaxThroughputPerGPU {
		return a > b
	}
	return a < b
}

// Space is the searched region. Empty axes take defaults: every DGX-1
// GPU count (1..8), both communication methods, the base workload's
// batch size, hardware, protocol, and fault plan. Note GPU counts above
// the smallest machine's capacity are only valid if every hardware entry
// fits them (validation rejects the contradictory candidates).
type Space struct {
	GPUs    []int         `json:"gpus,omitempty"`
	Batches []int         `json:"batches,omitempty"`
	Methods []core.Method `json:"methods,omitempty"`
	// Hardware searches machine generations ("dgx1", "dgx2", ...); each
	// candidate resolves to that machine's topology and GPU spec.
	Hardware []string `json:"hardware,omitempty"`
	// Protocols searches NCCL transfer protocols ("simple", "ll",
	// "ll128", "auto").
	Protocols []string       `json:"protocols,omitempty"`
	Faults    []*faults.Plan `json:"faults,omitempty"`
}

// withDefaults fills empty axes.
func (sp Space) withDefaults(base core.Workload) Space {
	if len(sp.GPUs) == 0 {
		sp.GPUs = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if len(sp.Batches) == 0 {
		sp.Batches = []int{base.Batch}
	}
	if len(sp.Methods) == 0 {
		sp.Methods = []core.Method{core.P2P, core.NCCL}
	}
	if len(sp.Hardware) == 0 {
		sp.Hardware = []string{base.Hardware}
	}
	if len(sp.Protocols) == 0 {
		sp.Protocols = []string{base.Protocol}
	}
	if len(sp.Faults) == 0 {
		sp.Faults = []*faults.Plan{base.Faults}
	}
	return sp
}

// Candidates expands the space over the base workload in deterministic
// order (gpus → batches → methods → hardware → protocols → faults, each
// axis in the order given), so the same request always searches the same
// sequence. The hardware and protocol axes nest inside methods, so a
// request that leaves them empty searches the exact candidate sequence
// earlier releases did.
func Candidates(base core.Workload, sp Space) []core.Workload {
	sp = sp.withDefaults(base)
	out := make([]core.Workload, 0,
		len(sp.GPUs)*len(sp.Batches)*len(sp.Methods)*len(sp.Hardware)*len(sp.Protocols)*len(sp.Faults))
	for _, g := range sp.GPUs {
		for _, b := range sp.Batches {
			for _, m := range sp.Methods {
				for _, hw := range sp.Hardware {
					for _, proto := range sp.Protocols {
						for _, f := range sp.Faults {
							w := base
							w.GPUs, w.Batch, w.Method, w.Faults = g, b, m, f
							w.Hardware, w.Protocol = hw, proto
							out = append(out, w)
						}
					}
				}
			}
		}
	}
	return out
}

// Point is one frontier entry with its provenance: the exact workload
// that earned it, the cache fingerprint that run is stored under, and
// the measured metrics the dominance judgment used.
type Point struct {
	Workload    core.Workload `json:"workload"`
	Fingerprint string        `json:"fingerprint"`
	// Objective is the point's value of the searched objective
	// (nanoseconds for min_epoch_time, images/s/GPU for
	// max_throughput_per_gpu).
	Objective        float64 `json:"objective"`
	EpochTimeNs      int64   `json:"epochTimeNs"`
	ImagesPerSecond  float64 `json:"imagesPerSecond"`
	ThroughputPerGPU float64 `json:"throughputPerGpu"`
	// MemoryGiB is the root GPU's usage — the machine's binding figure.
	MemoryGiB float64 `json:"memoryGiB"`
}

// Result is a completed search: the frontier plus accounting for every
// candidate that did not make it.
type Result struct {
	Objective Objective `json:"objective"`
	// Candidates is how many configurations were searched.
	Candidates int `json:"candidates"`
	// MemoryExcluded counts candidates dropped by the memory cap before
	// dominance was judged.
	MemoryExcluded int `json:"memoryExcluded"`
	// Frontier is the non-dominated set, GPU count ascending; each point
	// strictly improves the objective over every cheaper point.
	Frontier []Point `json:"frontier"`
}

// Frontier computes the Pareto frontier of the candidates' reports.
// ws[i] must be the workload reports[i] measured; memCapGiB <= 0 means
// no cap. Dominance: a point beats another if it uses no more GPUs and
// its objective is no worse, with at least one strict. Ties (same GPU
// count, same objective) resolve to the earliest candidate, so the
// result is deterministic in candidate order.
func Frontier(ws []core.Workload, reports []*core.Report, obj Objective, memCapGiB float64) (Result, error) {
	if len(ws) != len(reports) {
		return Result{}, fmt.Errorf("optimize: %d workloads but %d reports", len(ws), len(reports))
	}
	res := Result{Objective: obj, Candidates: len(ws)}
	type cand struct {
		idx int
		p   Point
	}
	var pool []cand
	for i, r := range reports {
		if r == nil {
			return Result{}, fmt.Errorf("optimize: candidate %d has no report", i)
		}
		mem := r.Memory.Root().GiB()
		if memCapGiB > 0 && mem > memCapGiB {
			res.MemoryExcluded++
			continue
		}
		g := ws[i].GPUs
		if g < 1 {
			g = 1
		}
		pool = append(pool, cand{idx: i, p: Point{
			Workload:         ws[i],
			Fingerprint:      ws[i].Fingerprint(),
			Objective:        obj.Value(r),
			EpochTimeNs:      r.EpochTime.Nanoseconds(),
			ImagesPerSecond:  r.Throughput,
			ThroughputPerGPU: r.Throughput / float64(g),
			MemoryGiB:        mem,
		}})
	}
	// Sweep by GPU budget: cheapest first, best objective first within a
	// budget, candidate order breaking exact ties. A point survives only
	// if it strictly improves on everything cheaper — which is exactly
	// Pareto non-domination for (GPUs ↓, objective best).
	sort.SliceStable(pool, func(a, b int) bool {
		pa, pb := pool[a].p, pool[b].p
		if pa.Workload.GPUs != pb.Workload.GPUs {
			return pa.Workload.GPUs < pb.Workload.GPUs
		}
		if pa.Objective != pb.Objective {
			return obj.Better(pa.Objective, pb.Objective)
		}
		return pool[a].idx < pool[b].idx
	})
	var (
		best    float64
		haveAny bool
	)
	for _, c := range pool {
		if haveAny && !obj.Better(c.p.Objective, best) {
			continue
		}
		res.Frontier = append(res.Frontier, c.p)
		best, haveAny = c.p.Objective, true
	}
	return res, nil
}
