package optimize

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/memmodel"
	"repro/internal/units"
)

func report(w core.Workload, epoch time.Duration, throughput float64, memGiB float64) *core.Report {
	return &core.Report{
		Workload:   w,
		EpochTime:  epoch,
		Throughput: throughput,
		Memory:     memmodel.Estimate{RootExtra: units.Bytes(memGiB * float64(units.GB))},
	}
}

func wl(gpus int) core.Workload {
	return core.Workload{Model: "resnet", GPUs: gpus, Batch: 32, Method: core.NCCL}
}

func TestParseObjective(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Objective
		ok   bool
	}{
		{"", MinEpochTime, true},
		{"min_epoch_time", MinEpochTime, true},
		{"max_throughput_per_gpu", MaxThroughputPerGPU, true},
		{"fastest", "", false},
	} {
		got, err := ParseObjective(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseObjective(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseObjective(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestCandidatesDefaults(t *testing.T) {
	base := core.Workload{Model: "resnet", Batch: 32}
	cands := Candidates(base, Space{})
	if len(cands) != 8*2 {
		t.Fatalf("default space: %d candidates, want %d", len(cands), 8*2)
	}
	// Deterministic nesting: gpus outermost, methods inner.
	if cands[0].GPUs != 1 || cands[0].Method != core.P2P {
		t.Fatalf("cands[0] = gpus %d method %q, want 1/p2p", cands[0].GPUs, cands[0].Method)
	}
	if cands[1].GPUs != 1 || cands[1].Method != core.NCCL {
		t.Fatalf("cands[1] = gpus %d method %q, want 1/nccl", cands[1].GPUs, cands[1].Method)
	}
	if last := cands[len(cands)-1]; last.GPUs != 8 || last.Method != core.NCCL {
		t.Fatalf("last candidate = gpus %d method %q, want 8/nccl", last.GPUs, last.Method)
	}
	for _, c := range cands {
		if c.Model != "resnet" || c.Batch != 32 {
			t.Fatalf("candidate lost base fields: %+v", c)
		}
	}
}

func TestCandidatesExplicitAxes(t *testing.T) {
	base := core.Workload{Model: "alexnet", Batch: 64}
	plan := &faults.Plan{PCIeContention: 0.5}
	cands := Candidates(base, Space{
		GPUs:    []int{2, 4},
		Batches: []int{32, 64},
		Methods: []core.Method{core.NCCL},
		Faults:  []*faults.Plan{nil, plan},
	})
	if len(cands) != 2*2*1*2 {
		t.Fatalf("%d candidates, want 8", len(cands))
	}
	// Innermost axis is faults: consecutive candidates differ only there.
	if cands[0].Faults != nil || cands[1].Faults != plan {
		t.Fatalf("faults axis not innermost: %+v %+v", cands[0].Faults, cands[1].Faults)
	}
	if cands[0].Batch != 32 || cands[2].Batch != 64 {
		t.Fatalf("batch axis order wrong: %d, %d", cands[0].Batch, cands[2].Batch)
	}
}

func TestCandidatesHardwareProtocolAxes(t *testing.T) {
	base := core.Workload{Model: "alexnet", Batch: 16}
	cands := Candidates(base, Space{
		GPUs:      []int{8},
		Methods:   []core.Method{core.NCCL},
		Hardware:  []string{"dgx1", "dgx2"},
		Protocols: []string{"simple", "auto"},
	})
	if len(cands) != 1*1*1*2*2*1 {
		t.Fatalf("%d candidates, want 4", len(cands))
	}
	// Protocols nest inside hardware; both inside methods.
	want := []struct{ hw, proto string }{
		{"dgx1", "simple"}, {"dgx1", "auto"}, {"dgx2", "simple"}, {"dgx2", "auto"},
	}
	for i, c := range cands {
		if c.Hardware != want[i].hw || c.Protocol != want[i].proto {
			t.Fatalf("cands[%d] = (%s, %s), want (%s, %s)", i, c.Hardware, c.Protocol, want[i].hw, want[i].proto)
		}
	}
	// Empty axes inherit the base workload's values, so an axes-free
	// space over a hardware-pinned base keeps the pin.
	pinned := base
	pinned.Hardware, pinned.Protocol = "dgx2", "ll128"
	for _, c := range Candidates(pinned, Space{GPUs: []int{1}}) {
		if c.Hardware != "dgx2" || c.Protocol != "ll128" {
			t.Fatalf("base hardware/protocol lost: %+v", c)
		}
	}
}

func TestFrontierMinEpochTime(t *testing.T) {
	ws := []core.Workload{wl(1), wl(2), wl(4), wl(8)}
	reps := []*core.Report{
		report(ws[0], 100*time.Second, 10, 4),
		report(ws[1], 60*time.Second, 17, 4),
		report(ws[2], 60*time.Second, 17, 4), // no improvement over 2 GPUs: dominated
		report(ws[3], 40*time.Second, 25, 4),
	}
	res, err := Frontier(ws, reps, MinEpochTime, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 4 || res.MemoryExcluded != 0 {
		t.Fatalf("accounting: %+v", res)
	}
	gpus := frontierGPUs(res)
	if len(gpus) != 3 || gpus[0] != 1 || gpus[1] != 2 || gpus[2] != 8 {
		t.Fatalf("frontier GPUs = %v, want [1 2 8]", gpus)
	}
	// Each point strictly improves the objective over the previous.
	for i := 1; i < len(res.Frontier); i++ {
		if res.Frontier[i].Objective >= res.Frontier[i-1].Objective {
			t.Fatalf("frontier not strictly improving: %v then %v",
				res.Frontier[i-1].Objective, res.Frontier[i].Objective)
		}
	}
	if res.Frontier[0].Fingerprint == "" {
		t.Fatal("frontier point missing fingerprint provenance")
	}
}

func TestFrontierMaxThroughputPerGPU(t *testing.T) {
	ws := []core.Workload{wl(1), wl(2), wl(4)}
	reps := []*core.Report{
		report(ws[0], 100*time.Second, 10, 4), // 10 img/s/GPU
		report(ws[1], 55*time.Second, 18, 4),  // 9 img/s/GPU: dominated
		report(ws[2], 30*time.Second, 44, 4),  // 11 img/s/GPU: improves
	}
	res, err := Frontier(ws, reps, MaxThroughputPerGPU, 0)
	if err != nil {
		t.Fatal(err)
	}
	gpus := frontierGPUs(res)
	if len(gpus) != 2 || gpus[0] != 1 || gpus[1] != 4 {
		t.Fatalf("frontier GPUs = %v, want [1 4]", gpus)
	}
	if v := res.Frontier[1].ThroughputPerGPU; v != 11 {
		t.Fatalf("throughput/GPU = %v, want 11", v)
	}
}

func TestFrontierMemoryCap(t *testing.T) {
	ws := []core.Workload{wl(1), wl(2)}
	reps := []*core.Report{
		report(ws[0], 100*time.Second, 10, 12), // over the cap
		report(ws[1], 60*time.Second, 17, 4),
	}
	res, err := Frontier(ws, reps, MinEpochTime, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryExcluded != 1 {
		t.Fatalf("memoryExcluded = %d, want 1", res.MemoryExcluded)
	}
	if gpus := frontierGPUs(res); len(gpus) != 1 || gpus[0] != 2 {
		t.Fatalf("frontier GPUs = %v, want [2]", gpus)
	}
	if got := res.Frontier[0].MemoryGiB; got != 4 {
		t.Fatalf("MemoryGiB = %v, want 4", got)
	}
}

func TestFrontierTieBreaksByCandidateOrder(t *testing.T) {
	a, b := wl(2), wl(2)
	a.Method, b.Method = core.P2P, core.NCCL
	ws := []core.Workload{a, b}
	reps := []*core.Report{
		report(a, 60*time.Second, 17, 4),
		report(b, 60*time.Second, 17, 4),
	}
	res, err := Frontier(ws, reps, MinEpochTime, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) != 1 || res.Frontier[0].Workload.Method != core.P2P {
		t.Fatalf("tie should keep the earliest candidate: %+v", res.Frontier)
	}
}

func TestFrontierInputMismatch(t *testing.T) {
	if _, err := Frontier([]core.Workload{wl(1)}, nil, MinEpochTime, 0); err == nil {
		t.Fatal("mismatched inputs should error")
	}
	if _, err := Frontier([]core.Workload{wl(1)}, []*core.Report{nil}, MinEpochTime, 0); err == nil {
		t.Fatal("nil report should error")
	}
}

func frontierGPUs(res Result) []int {
	out := make([]int, len(res.Frontier))
	for i, p := range res.Frontier {
		out[i] = p.Workload.GPUs
	}
	return out
}
