package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over replica indices. Each replica
// contributes vnodes points (hashes of "name#v"), so keys spread evenly
// even with two or three replicas, and removing one replica remaps only
// the keys it owned — every other fingerprint keeps hitting the replica
// whose cache (memory and disk) is already warm for it. The ring is
// immutable after construction; liveness is overlaid per lookup by the
// caller, not rebuilt, so a replica that flaps regains exactly its old
// keys when it comes back.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // replica count
}

type ringPoint struct {
	hash uint64
	idx  int
}

// defaultVNodes balances spread against lookup cost: 64 points per
// replica keeps the max/min key-share ratio low single-digit percents
// for small replica sets.
const defaultVNodes = 64

// hash64 is the ring's point hash: the first 8 bytes of SHA-256. FNV
// was tried first and clusters badly on the short, similar vnode labels
// ("url#0", "url#1", ...), skewing key ownership 4x between replicas;
// SHA-256 spreads them uniformly, and — being fully specified — keeps
// independently configured gateway instances routing identically.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring from replica names (their configured base
// URLs — stable identity across restarts).
func newRing(names []string, vnodes int) ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := ring{points: make([]ringPoint, 0, len(names)*vnodes), n: len(names)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", name, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// sequence returns every replica index exactly once, in ring order
// starting from the key's owner: sequence(key)[0] is where the key's
// cache affinity lives, and each later entry is the natural failover
// target the same key would fall to if everything before it were gone.
func (r ring) sequence(key string) []int {
	if r.n == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}
