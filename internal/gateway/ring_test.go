package gateway

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fingerprint-%d", i)
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r1 := newRing(names, 0)
	r2 := newRing(names, 0)
	for _, k := range keys(100) {
		s1, s2 := r1.sequence(k), r2.sequence(k)
		if len(s1) != len(s2) {
			t.Fatalf("key %q: sequence lengths differ", k)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("key %q: sequences differ: %v vs %v", k, s1, s2)
			}
		}
	}
}

// TestRingSequenceCoversAllReplicasOnce: the failover order must visit
// every replica exactly once — a request can always find the last
// survivor, and never retries the same replica twice.
func TestRingSequenceCoversAllReplicasOnce(t *testing.T) {
	r := newRing([]string{"http://a", "http://b", "http://c", "http://d"}, 0)
	for _, k := range keys(200) {
		seq := r.sequence(k)
		if len(seq) != 4 {
			t.Fatalf("key %q: sequence %v does not cover all replicas", k, seq)
		}
		seen := map[int]bool{}
		for _, idx := range seq {
			if seen[idx] {
				t.Fatalf("key %q: sequence %v repeats replica %d", k, seq, idx)
			}
			seen[idx] = true
		}
	}
}

// TestRingSpread: with vnodes, no replica of a 3-set owns a wildly
// disproportionate key share. The bound is loose (hashing, not
// perfection) but catches a broken ring that funnels everything to one
// member.
func TestRingSpread(t *testing.T) {
	r := newRing([]string{"http://a", "http://b", "http://c"}, 0)
	counts := make([]int, 3)
	const n = 3000
	for _, k := range keys(n) {
		counts[r.sequence(k)[0]]++
	}
	for i, c := range counts {
		if c < n/6 || c > n/2+n/10 {
			t.Fatalf("replica %d owns %d/%d keys — spread is broken: %v", i, c, n, counts)
		}
	}
}

// TestRingMinimalDisruption is the consistent-hashing property the whole
// design leans on: removing one replica remaps only the keys it owned.
// Keys owned by a surviving replica must keep their owner, so replica
// caches (memory and disk) stay warm through fleet resizes.
func TestRingMinimalDisruption(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c"}
	rAll := newRing(all, 0)
	rLess := newRing(all[:2], 0) // "http://c" removed
	moved := 0
	for _, k := range keys(1000) {
		before := rAll.sequence(k)[0]
		after := rLess.sequence(k)[0]
		if before == 2 {
			moved++
			continue // c's keys must land somewhere else, anywhere
		}
		if after != before {
			t.Fatalf("key %q: owner moved %d -> %d though its replica survived", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed replica — test is vacuous")
	}
}

// TestRingFailoverMatchesShrunkenRing: the failover target (second in
// sequence) for a key is exactly the owner the key would have in a ring
// without the primary — so shed-failover and actual replica removal
// agree on where a key goes.
func TestRingFailoverMatchesShrunkenRing(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c"}
	rAll := newRing(all, 0)
	for _, k := range keys(300) {
		seq := rAll.sequence(k)
		if seq[0] != 2 && seq[1] == 2 {
			continue // shrunken ring below removes c; only check others
		}
		if seq[0] == 2 {
			continue
		}
		// Remove the owner; key must fall to seq[1] (if that's not c).
		var rest []string
		for i, n := range all {
			if i != seq[0] {
				rest = append(rest, n)
			}
		}
		rRest := newRing(rest, 0)
		got := rest[rRest.sequence(k)[0]]
		if got != all[seq[1]] {
			t.Fatalf("key %q: ring failover %s, shrunken-ring owner %s", k, all[seq[1]], got)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := newRing(nil, 0)
	if seq := r.sequence("k"); seq != nil {
		t.Fatalf("empty ring sequence = %v, want nil", seq)
	}
}
