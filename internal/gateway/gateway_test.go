package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// backend is a scriptable fake replica: healthy by default, counts the
// proxied requests it receives, and can be told to shed or misbehave.
type backend struct {
	ts   *httptest.Server
	hits atomic.Int64
	// handle serves non-/healthz requests; swap it to script behaviour.
	handle atomic.Value // func(http.ResponseWriter, *http.Request)
}

func newBackend(t *testing.T) *backend {
	t.Helper()
	b := &backend{}
	b.handle.Store(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"echo":%q}`, string(body))
	})
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		b.hits.Add(1)
		b.handle.Load().(func(http.ResponseWriter, *http.Request))(w, r)
	}))
	t.Cleanup(b.ts.Close)
	return b
}

func (b *backend) set(h func(http.ResponseWriter, *http.Request)) { b.handle.Store(h) }

func newGateway(t *testing.T, backends ...*backend) (*Gateway, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.ts.URL
	}
	g, err := New(Config{Replicas: urls, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, string(raw)
}

// TestAffinitySameWorkloadSameReplica: repeats of one workload all land
// on one replica — that is the whole point of the gateway.
func TestAffinitySameWorkloadSameReplica(t *testing.T) {
	b1, b2, b3 := newBackend(t), newBackend(t), newBackend(t)
	_, ts := newGateway(t, b1, b2, b3)

	var served string
	for i := 0; i < 12; i++ {
		resp, _ := post(t, ts.URL+"/v1/simulate", `{"Model":"resnet","GPUs":4,"Batch":32}`)
		rep := resp.Header.Get("X-Gw-Replica")
		if rep == "" {
			t.Fatal("response missing X-Gw-Replica")
		}
		if served == "" {
			served = rep
		} else if rep != served {
			t.Fatalf("request %d routed to %s, earlier ones to %s — affinity broken", i, rep, served)
		}
	}
	total := b1.hits.Load() + b2.hits.Load() + b3.hits.Load()
	if total != 12 {
		t.Fatalf("backends saw %d requests, want 12", total)
	}
	for _, b := range []*backend{b1, b2, b3} {
		if n := b.hits.Load(); n != 0 && n != 12 {
			t.Fatalf("requests split across replicas: %d/%d/%d", b1.hits.Load(), b2.hits.Load(), b3.hits.Load())
		}
	}
}

// TestAffinityNormalizedEquivalence: a workload with defaults spelled
// out routes to the same replica as one that omits them — the gateway
// fingerprints the normalized workload, exactly as the replica cache
// keys it.
func TestAffinityNormalizedEquivalence(t *testing.T) {
	b1, b2, b3 := newBackend(t), newBackend(t), newBackend(t)
	_, ts := newGateway(t, b1, b2, b3)

	terse := `{"Model":"lenet","GPUs":2,"Batch":16}`
	spelled := `{"Model":"lenet","GPUs":2,"Batch":16,"Method":"nccl","Images":262144}`
	r1, _ := post(t, ts.URL+"/v1/simulate", terse)
	r2, _ := post(t, ts.URL+"/v1/simulate", spelled)
	if a, b := r1.Header.Get("X-Gw-Replica"), r2.Header.Get("X-Gw-Replica"); a != b {
		t.Fatalf("normalization-equivalent bodies routed apart: %s vs %s", a, b)
	}
}

// TestSweepRoutesByBaseWorkload: a sweep grid routes by its base
// workload, so the whole grid shares one replica's compile cache.
func TestSweepRoutesByBaseWorkload(t *testing.T) {
	b1, b2, b3 := newBackend(t), newBackend(t), newBackend(t)
	_, ts := newGateway(t, b1, b2, b3)

	r1, _ := post(t, ts.URL+"/v1/sweep", `{"Base":{"Model":"vgg","Batch":32},"GPUs":[1,2,4]}`)
	r2, _ := post(t, ts.URL+"/v1/sweep", `{"Base":{"Model":"vgg","Batch":32},"GPUs":[8]}`)
	if a, b := r1.Header.Get("X-Gw-Replica"), r2.Header.Get("X-Gw-Replica"); a != b {
		t.Fatalf("same-base sweeps routed apart: %s vs %s", a, b)
	}
}

// TestShedFailover: the affinity owner sheds (429 + Retry-After), the
// next ring member serves, and the gateway counts the failover.
func TestShedFailover(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	g, ts := newGateway(t, b1, b2)

	body := `{"Model":"resnet","GPUs":8,"Batch":64}`
	// Find the owner, then make it shed.
	resp, _ := post(t, ts.URL+"/v1/simulate", body)
	owner := resp.Header.Get("X-Gw-Replica")
	var ob, other *backend
	if owner == b1.ts.URL {
		ob, other = b1, b2
	} else {
		ob, other = b2, b1
	}
	ob.set(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeEnvelope(w, http.StatusTooManyRequests, service.ErrorDetail{
			Code: "overloaded", Message: "queue full", Retryable: true,
		})
	})

	resp2, got := post(t, ts.URL+"/v1/simulate", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("failover response: %d %s", resp2.StatusCode, got)
	}
	if rep := resp2.Header.Get("X-Gw-Replica"); rep != other.ts.URL {
		t.Fatalf("served by %s, want failover target %s", rep, other.ts.URL)
	}
	if g.failovers.Load() != 1 {
		t.Fatalf("failovers = %d, want 1", g.failovers.Load())
	}
}

// TestAllShedPassThrough: when every candidate sheds, the last shed
// response passes through verbatim — the client sees the replica's own
// overload envelope and Retry-After, not a gateway invention.
func TestAllShedPassThrough(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	_, ts := newGateway(t, b1, b2)
	shed := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		writeEnvelope(w, http.StatusTooManyRequests, service.ErrorDetail{
			Code: "overloaded", Message: "queue full", Retryable: true,
		})
	}
	b1.set(shed)
	b2.set(shed)

	resp, body := post(t, ts.URL+"/v1/simulate", `{"Model":"lenet","GPUs":1,"Batch":16}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the replica's own %q", ra, "7")
	}
	var env service.ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code != "overloaded" {
		t.Fatalf("body not the replica envelope: %s", body)
	}
	if total := b1.hits.Load() + b2.hits.Load(); total != 2 {
		t.Fatalf("attempts = %d, want exactly 2 (owner + one failover)", total)
	}
}

// TestNonShedPassesThroughVerbatim: a 503 without Retry-After is not a
// dgxsimd shed; it must pass through without a failover attempt.
func TestNonShedPassesThroughVerbatim(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	g, ts := newGateway(t, b1, b2)
	boom := func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "crashed mid-handler", http.StatusServiceUnavailable)
	}
	b1.set(boom)
	b2.set(boom)

	resp, body := post(t, ts.URL+"/v1/simulate", `{"Model":"alexnet","GPUs":2,"Batch":32}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, "crashed mid-handler") {
		t.Fatalf("body rewritten: %q", body)
	}
	if total := b1.hits.Load() + b2.hits.Load(); total != 1 {
		t.Fatalf("attempts = %d, want 1 (no failover on a non-shed 503)", total)
	}
	if g.failovers.Load() != 0 {
		t.Fatalf("failovers = %d, want 0", g.failovers.Load())
	}
}

// TestErrorEnvelopePassThrough: a replica 400 envelope reaches the
// client byte-for-byte — the gateway adds routing, never reinterprets.
func TestErrorEnvelopePassThrough(t *testing.T) {
	b1 := newBackend(t)
	b1.set(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		io.WriteString(w, `{"error":{"code":"bad_workload","message":"unknown model","retryable":false}}`)
	})
	_, ts := newGateway(t, b1)

	resp, body := post(t, ts.URL+"/v1/simulate", `{"Model":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var env service.ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code != "bad_workload" {
		t.Fatalf("envelope mangled: %s", body)
	}
}

// TestTransportFailover: a dead owner fails over to the next ring
// member, and the gateway marks it down immediately rather than waiting
// for the next probe.
func TestTransportFailover(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	g, ts := newGateway(t, b1, b2)

	body := `{"Model":"googlenet","GPUs":4,"Batch":16}`
	resp, _ := post(t, ts.URL+"/v1/simulate", body)
	owner := resp.Header.Get("X-Gw-Replica")
	var ownerBackend, survivor *backend
	if owner == b1.ts.URL {
		ownerBackend, survivor = b1, b2
	} else {
		ownerBackend, survivor = b2, b1
	}
	ownerBackend.ts.Close()

	resp2, got := post(t, ts.URL+"/v1/simulate", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("failover response: %d %s", resp2.StatusCode, got)
	}
	if rep := resp2.Header.Get("X-Gw-Replica"); rep != survivor.ts.URL {
		t.Fatalf("served by %s, want survivor %s", rep, survivor.ts.URL)
	}
	for _, rep := range g.replicas {
		if rep.name == owner && rep.up.Load() {
			t.Fatal("dead replica still marked up after a transport failure")
		}
	}
}

// TestNDJSONStreamPassThrough: an NDJSON stream flows through the
// gateway record-for-record, content type intact.
func TestNDJSONStreamPassThrough(t *testing.T) {
	b1 := newBackend(t)
	b1.set(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("Accept"); got != "application/x-ndjson" {
			t.Errorf("Accept not forwarded: %q", got)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		f, _ := w.(http.Flusher)
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, `{"cell":%d}`+"\n", i)
			if f != nil {
				f.Flush()
			}
		}
		io.WriteString(w, `{"summary":{"cells":3}}`+"\n")
	})
	_, ts := newGateway(t, b1)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(`{"Base":{"Model":"lenet","Batch":16},"GPUs":[1,2,4]}`))
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 4 {
		t.Fatalf("got %d NDJSON lines, want 4: %v", len(lines), lines)
	}
	if !strings.Contains(lines[3], "summary") {
		t.Fatalf("last line is not the summary: %q", lines[3])
	}
}

// TestBodyTooLargeRefusedAtEdge: an oversized body is refused by the
// gateway with the service's own 413 envelope, never forwarded.
func TestBodyTooLargeRefusedAtEdge(t *testing.T) {
	b1 := newBackend(t)
	_, ts := newGateway(t, b1)

	resp, body := post(t, ts.URL+"/v1/simulate", strings.Repeat("x", maxBodyBytes+1))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var env service.ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code != service.CodeBodyTooLarge {
		t.Fatalf("413 envelope wrong: %s", body)
	}
	if b1.hits.Load() != 0 {
		t.Fatal("oversized body was forwarded to a replica")
	}
}

// TestAllReplicasDead: every replica unreachable yields the gateway's
// 502 no_replica envelope with Retry-After, and /healthz goes 503.
func TestAllReplicasDead(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	g, ts := newGateway(t, b1, b2)
	b1.ts.Close()
	b2.ts.Close()

	resp, body := post(t, ts.URL+"/v1/simulate", `{"Model":"lenet","GPUs":1,"Batch":16}`)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502: %s", resp.StatusCode, body)
	}
	var env service.ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code != CodeNoReplica || !env.Error.Retryable {
		t.Fatalf("502 envelope wrong: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("502 missing Retry-After")
	}
	if g.noReplica.Load() != 1 {
		t.Fatalf("noReplica = %d, want 1", g.noReplica.Load())
	}

	hresp, hbody := get(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d after fleet death, want 503: %s", hresp.StatusCode, hbody)
	}
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, string(raw)
}

// TestGatewayHealthzAndMetrics: the gateway's own endpoints are served
// locally, not proxied, and /metrics carries the per-replica counters.
func TestGatewayHealthzAndMetrics(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	_, ts := newGateway(t, b1, b2)

	hresp, hbody := get(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK || !strings.Contains(hbody, "ok") {
		t.Fatalf("/healthz = %d %q", hresp.StatusCode, hbody)
	}

	post(t, ts.URL+"/v1/simulate", `{"Model":"resnet","GPUs":4,"Batch":32}`)
	_, mbody := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("dgxsimgw_replica_up{replica=%q} 1", b1.ts.URL),
		fmt.Sprintf("dgxsimgw_replica_up{replica=%q} 1", b2.ts.URL),
		"dgxsimgw_replica_requests_total",
		"dgxsimgw_replica_sheds_total",
		"dgxsimgw_replica_transport_errors_total",
		"dgxsimgw_failovers_total 0",
		"dgxsimgw_no_replica_total 0",
	} {
		if !strings.Contains(mbody, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mbody)
		}
	}
	if !strings.Contains(mbody, "requests_total") {
		t.Fatalf("metrics missing request counters:\n%s", mbody)
	}
	// One replica served the request; total requests across both = 1.
	if b1.hits.Load()+b2.hits.Load() != 1 {
		t.Fatalf("proxied hits = %d, want 1 (gateway endpoints must not proxy)", b1.hits.Load()+b2.hits.Load())
	}
}

// TestReplicaRecovery: a replica that was down and comes back is marked
// up by the probe loop and regains its keys.
func TestReplicaRecovery(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	g, ts := newGateway(t, b1, b2)

	body := `{"Model":"inception","GPUs":8,"Batch":32}`
	resp, _ := post(t, ts.URL+"/v1/simulate", body)
	owner := resp.Header.Get("X-Gw-Replica")

	// Mark the owner down by hand (as a transport failure would).
	for _, rep := range g.replicas {
		if rep.name == owner {
			rep.up.Store(false)
		}
	}
	resp2, _ := post(t, ts.URL+"/v1/simulate", body)
	if rep := resp2.Header.Get("X-Gw-Replica"); rep == owner {
		t.Fatalf("request routed to a down replica %s", rep)
	}

	// The probe loop should observe it healthy again.
	deadline := time.Now().Add(2 * time.Second)
	for {
		up := false
		for _, rep := range g.replicas {
			if rep.name == owner && rep.up.Load() {
				up = true
			}
		}
		if up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe loop never re-marked the recovered replica up")
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp3, _ := post(t, ts.URL+"/v1/simulate", body)
	if rep := resp3.Header.Get("X-Gw-Replica"); rep != owner {
		t.Fatalf("recovered replica did not regain its key: %s, want %s", rep, owner)
	}
}
