// Package gateway is the cache-affinity front proxy for a replicated
// dgxsimd fleet (cmd/dgxsimgw wraps it in a daemon). One process = one
// result cache, so horizontal scale needs routing that keeps a repeated
// workload landing on the replica that has already simulated it: the
// gateway decodes each posted workload, normalizes it and computes its
// fingerprint through the exact internal/core path the replicas key
// their caches with, and consistent-hashes that fingerprint across the
// replica set. The what-if traffic production fleets see is dominated by
// repeats (the Alibaba-PAI characterization), which is why affinity —
// not round-robin — is the scaling move: N replicas give N distinct warm
// caches instead of N copies of the same cold one.
//
// Semantics:
//
//   - Routing: POST bodies carrying a workload (/v1/simulate,
//     /v1/compare, /v1/validate) route by the workload's normalized
//     fingerprint; /v1/sweep and /v1/optimize by their base workload's
//     fingerprint (one sweep = one replica = one shared compile);
//     everything else (cluster specs, GETs) by a hash of the body or
//     path. Spelled-out defaults and omitted ones route identically,
//     exactly as they share a cache slot in the replica.
//   - Health: every replica's /healthz is probed on an interval; dead
//     replicas drop out of candidate selection and their keys fall to
//     the next ring member. When a replica returns, it gets exactly its
//     old keys back (the ring never rebuilds).
//   - Failover: a shed response (429/503 with Retry-After — the
//     replica's overload taxonomy) and a transport failure retry once on
//     the next ring member. Everything else — 4xx, 5xx, error envelopes
//     — passes through verbatim: the gateway adds routing, never
//     reinterprets the API.
//   - Streaming: response bodies are copied chunk-by-chunk with an
//     http.Flusher kick per chunk, so NDJSON sweep streams flow through
//     unbuffered and the error-envelope/streaming contracts hold
//     end-to-end.
//
// Every proxied response carries X-Gw-Replica naming the replica that
// served it (the smoke test asserts affinity with it), and /metrics on
// the gateway itself exposes per-replica health and routing counters.
package gateway

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// maxBodyBytes mirrors the service's request-body cap: the gateway must
// buffer bodies to retry them, and anything the replica would 413 can be
// refused at the edge without burning a forward.
const maxBodyBytes = 1 << 20

// Config tunes a Gateway.
type Config struct {
	// Replicas are the dgxsimd base URLs ("http://host:port"). At least
	// one is required; order is identity (the ring hashes the URL), so
	// keep it stable across gateway restarts.
	Replicas []string
	// VNodes is the number of ring points per replica (<= 0: 64).
	VNodes int
	// HealthInterval is the /healthz probe period (<= 0: 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (<= 0: min(HealthInterval, 1s)).
	HealthTimeout time.Duration
	// Client issues the proxied requests. Nil uses a client with no
	// overall timeout (streams may legitimately run long; the inbound
	// request's context still cancels the forward).
	Client *http.Client
}

// replica is one backend and its live state.
type replica struct {
	name string
	base *url.URL

	up atomic.Bool

	// Routing counters, reported on the gateway's /metrics.
	requests  atomic.Uint64 // forwards attempted (including failed ones)
	sheds     atomic.Uint64 // shed responses (429/503 + Retry-After) observed
	transport atomic.Uint64 // transport-level forward failures
}

// Gateway proxies one replica set. Create with New, serve Handler, stop
// the health loop with Close.
type Gateway struct {
	cfg      Config
	replicas []*replica
	ring     ring
	client   *http.Client
	health   *http.Client

	failovers atomic.Uint64 // requests retried on the next ring member
	noReplica atomic.Uint64 // requests refused: no replica reachable

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// New builds a gateway over the replica set and runs one synchronous
// health round, so the first request routes on observed — not assumed —
// liveness.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gateway: at least one replica required")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = cfg.HealthInterval
		if cfg.HealthTimeout > time.Second {
			cfg.HealthTimeout = time.Second
		}
	}
	g := &Gateway{
		cfg:    cfg,
		client: cfg.Client,
		health: &http.Client{Timeout: cfg.HealthTimeout},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if g.client == nil {
		g.client = &http.Client{}
	}
	names := make([]string, 0, len(cfg.Replicas))
	for _, raw := range cfg.Replicas {
		raw = strings.TrimRight(raw, "/")
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("gateway: replica %q is not an absolute URL", raw)
		}
		g.replicas = append(g.replicas, &replica{name: raw, base: u})
		names = append(names, raw)
	}
	g.ring = newRing(names, cfg.VNodes)
	g.checkAll()
	go g.healthLoop()
	return g, nil
}

// Close stops the health loop.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
}

// healthLoop probes every replica on the configured interval.
func (g *Gateway) healthLoop() {
	defer close(g.done)
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			g.checkAll()
		case <-g.stop:
			return
		}
	}
}

// checkAll probes the replicas concurrently (one slow backend must not
// delay marking its siblings).
func (g *Gateway) checkAll() {
	var wg sync.WaitGroup
	for _, rep := range g.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			resp, err := g.health.Get(rep.name + "/healthz")
			ok := err == nil && resp.StatusCode == http.StatusOK
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			rep.up.Store(ok)
		}(rep)
	}
	wg.Wait()
}

// Handler returns the gateway's HTTP handler: its own /healthz and
// /metrics, everything else proxied to the replica set.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/", g.proxy)
	return mux
}

// handleHealthz reports the gateway healthy while at least one replica
// is: a fleet with one live member still serves.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	for _, rep := range g.replicas {
		if rep.up.Load() {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
			return
		}
	}
	writeEnvelope(w, http.StatusServiceUnavailable, service.ErrorDetail{
		Code: CodeNoReplica, Message: "no healthy replica", Retryable: true,
	})
}

// affinityKey computes the routing key for one request: the normalized
// workload fingerprint where the body carries one (the same core path
// the replicas key their caches with), the base workload's fingerprint
// for grid-shaped bodies, and a content hash otherwise. Decoding is
// deliberately lenient — a malformed body still routes (deterministically,
// by content) and the replica owns the 400.
func affinityKey(path string, body []byte) string {
	switch path {
	case "/v1/simulate", "/v1/compare", "/v1/validate":
		var wl core.Workload
		if err := json.Unmarshal(body, &wl); err == nil {
			return wl.Fingerprint()
		}
	case "/v1/sweep":
		var req struct{ Base core.Workload }
		if err := json.Unmarshal(body, &req); err == nil {
			return req.Base.Fingerprint()
		}
	case "/v1/optimize":
		var req struct {
			Base core.Workload `json:"base"`
		}
		if err := json.Unmarshal(body, &req); err == nil {
			return req.Base.Fingerprint()
		}
	}
	if len(body) > 0 {
		sum := sha256.Sum256(body)
		return hex.EncodeToString(sum[:])
	}
	return path
}

// candidates orders the replicas to try for a key: the ring sequence
// with live replicas first, then the ones health marked down — each
// group in ring order. Down replicas stay in the list (at the back)
// rather than being filtered out because probes lag reality in both
// directions: a replica that just recovered is still marked down until
// the next probe fires, and a doomed forward that fails cheaply beats
// refusing a request a replica would have served. A successful forward
// marks its replica up again immediately (see proxy), closing the loop.
func (g *Gateway) candidates(key string) []*replica {
	seq := g.ring.sequence(key)
	out := make([]*replica, 0, len(seq))
	var down []*replica
	for _, idx := range seq {
		if g.replicas[idx].up.Load() {
			out = append(out, g.replicas[idx])
		} else {
			down = append(down, g.replicas[idx])
		}
	}
	return append(out, down...)
}

// isShed recognizes the replicas' overload taxonomy: 429 (queue full) or
// 503 (deadline burnt queueing), both carrying Retry-After. Only these
// fail over — a 503 without Retry-After is not a dgxsimd shed and passes
// through like any other status.
func isShed(resp *http.Response) bool {
	return (resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable) &&
		resp.Header.Get("Retry-After") != ""
}

// maxAttempts bounds the forwards for one request: the affinity owner
// plus one failover to the next ring member. A second hop would trade
// latency for little — by then the fleet is saturated and the shed is
// the right answer.
const maxAttempts = 2

// proxy forwards one request along the key's ring sequence.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeEnvelope(w, http.StatusRequestEntityTooLarge, service.ErrorDetail{
				Code: service.CodeBodyTooLarge, Message: err.Error(),
			})
			return
		}
		writeEnvelope(w, http.StatusBadRequest, service.ErrorDetail{
			Code: service.CodeBadRequest, Message: "read body: " + err.Error(),
		})
		return
	}

	cands := g.candidates(affinityKey(r.URL.Path, body))
	attempts := len(cands)
	if attempts > maxAttempts {
		attempts = maxAttempts
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		rep := cands[i]
		if i > 0 {
			g.failovers.Add(1)
		}
		resp, err := g.forward(r, rep, body)
		if err != nil {
			rep.transport.Add(1)
			// A replica we cannot reach is down no matter what the last
			// probe said; drop it now so sibling requests stop queueing
			// behind connection timeouts.
			rep.up.Store(false)
			lastErr = err
			continue
		}
		// Any HTTP response — including a shed — proves the replica
		// reachable; re-mark it up without waiting for the next probe, so
		// a stale down flag (a flap the probe has not re-observed yet)
		// cannot starve the replica of its keys.
		rep.up.Store(true)
		if isShed(resp) {
			rep.sheds.Add(1)
			if i+1 < attempts {
				// Shed-aware failover: this replica is loaded, its ring
				// neighbour may not be. Drain so the connection is reused.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				continue
			}
		}
		g.relay(w, resp, rep)
		return
	}
	g.noReplica.Add(1)
	msg := "no replica reachable"
	if lastErr != nil {
		msg = "no replica reachable: " + lastErr.Error()
	}
	writeEnvelope(w, http.StatusBadGateway, service.ErrorDetail{
		Code: CodeNoReplica, Message: msg, Retryable: true,
	})
}

// hopByHop are the connection-scoped headers a proxy must not forward
// (RFC 9110 §7.6.1).
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// forward issues one attempt against one replica.
func (g *Gateway) forward(r *http.Request, rep *replica, body []byte) (*http.Response, error) {
	rep.requests.Add(1)
	u := *rep.base
	u.Path = strings.TrimRight(u.Path, "/") + r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	for _, h := range hopByHop {
		req.Header.Del(h)
	}
	req.ContentLength = int64(len(body))
	return g.client.Do(req)
}

// relay streams one upstream response to the client verbatim, flushing
// per chunk so NDJSON records reach the client as the replica emits
// them.
func (g *Gateway) relay(w http.ResponseWriter, resp *http.Response, rep *replica) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	for _, hh := range hopByHop {
		h.Del(hh)
	}
	h.Set("X-Gw-Replica", rep.name)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// CodeNoReplica is the gateway's one own error code: every replica was
// unreachable (or the whole fleet shed). Clients treat it like a shed —
// retryable, the fleet's condition, not the request's.
const CodeNoReplica = "no_replica"

// writeEnvelope mirrors the service's error envelope so gateway-origin
// failures are indistinguishable in shape from replica-origin ones.
func writeEnvelope(w http.ResponseWriter, status int, d service.ErrorDetail) {
	if status == http.StatusServiceUnavailable || status == http.StatusBadGateway {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(service.ErrorEnvelope{Error: d})
}

// handleMetrics renders the gateway's own counters: per-replica health
// and routing, failovers, and refusals.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	reps := append([]*replica(nil), g.replicas...)
	sort.Slice(reps, func(i, j int) bool { return reps[i].name < reps[j].name })
	for _, rep := range reps {
		up := 0
		if rep.up.Load() {
			up = 1
		}
		fmt.Fprintf(&b, "dgxsimgw_replica_up{replica=%q} %d\n", rep.name, up)
		fmt.Fprintf(&b, "dgxsimgw_replica_requests_total{replica=%q} %d\n", rep.name, rep.requests.Load())
		fmt.Fprintf(&b, "dgxsimgw_replica_sheds_total{replica=%q} %d\n", rep.name, rep.sheds.Load())
		fmt.Fprintf(&b, "dgxsimgw_replica_transport_errors_total{replica=%q} %d\n", rep.name, rep.transport.Load())
	}
	fmt.Fprintf(&b, "dgxsimgw_failovers_total %d\n", g.failovers.Load())
	fmt.Fprintf(&b, "dgxsimgw_no_replica_total %d\n", g.noReplica.Load())
	io.WriteString(w, b.String())
}
