package models

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/gpu"
)

// Structural invariants that must hold for every network in the zoo.
func TestZooGraphInvariants(t *testing.T) {
	for _, d := range All() {
		nodes := d.Net.Nodes()
		index := map[*dnn.Node]int{}
		for i, nd := range nodes {
			index[nd] = i
		}
		if nodes[0].Op.Kind() != dnn.OpInput {
			t.Errorf("%s: first node is %s, want input", d.Name, nodes[0].Op.Kind())
		}
		if nodes[len(nodes)-1].Op.Kind() != dnn.OpSoftmax {
			t.Errorf("%s: last node is %s, want softmax", d.Name, nodes[len(nodes)-1].Op.Kind())
		}
		consumers := map[*dnn.Node]int{}
		for i, nd := range nodes {
			if !nd.Out.Valid() {
				t.Errorf("%s/%s: invalid shape %v", d.Name, nd.Name, nd.Out)
			}
			if nd.ParamsN < 0 || nd.FwdFLOPs < 0 {
				t.Errorf("%s/%s: negative costs", d.Name, nd.Name)
			}
			for _, in := range nd.Inputs {
				j, ok := index[in]
				if !ok {
					t.Fatalf("%s/%s: input outside the graph", d.Name, nd.Name)
				}
				if j >= i {
					t.Fatalf("%s/%s: input %s not topologically earlier", d.Name, nd.Name, in.Name)
				}
				consumers[in]++
			}
		}
		// Every node except the final head is consumed by someone.
		for i, nd := range nodes[:len(nodes)-1] {
			if consumers[nd] == 0 {
				t.Errorf("%s: dangling node %s (index %d)", d.Name, nd.Name, i)
			}
		}
	}
}

// Plan invariants over the zoo: every weighted layer appears exactly once
// in the backward plan, kernels have positive demand, and batch scaling is
// exact.
func TestZooPlanInvariants(t *testing.T) {
	opt := dnn.PlanOptions{TensorCores: true}
	for _, d := range All() {
		weighted := map[string]bool{}
		for _, wl := range d.Net.WeightedLayers() {
			weighted[wl.Name] = true
		}
		seen := map[string]int{}
		for _, step := range d.Net.BackwardPlan(16, opt) {
			if step.Layer != nil {
				seen[step.Layer.Name]++
			}
			for _, k := range step.Kernels {
				if k.Parallelism <= 0 || k.MemBytes <= 0 {
					t.Errorf("%s/%s: degenerate kernel %+v", d.Name, step.Node.Name, k)
				}
			}
		}
		for name := range weighted {
			if seen[name] != 1 {
				t.Errorf("%s: layer %s gradient produced %d times", d.Name, name, seen[name])
			}
		}
		if len(seen) != len(weighted) {
			t.Errorf("%s: %d gradient layers vs %d weighted layers", d.Name, len(seen), len(weighted))
		}
	}
}

// Layer profiles over the zoo must be internally consistent: total times
// positive, conv layers never classified as overhead-bound at batch 64 on
// the big nets' large layers.
func TestZooLayerProfiles(t *testing.T) {
	spec := gpu.V100()
	for _, d := range All() {
		stats := dnn.ProfileLayers(d.Net, 16, spec, dnn.PlanOptions{TensorCores: true})
		if len(stats) == 0 {
			t.Fatalf("%s: empty profile", d.Name)
		}
		var total int64
		for _, s := range stats {
			if s.FPTime <= 0 || s.BPTime < 0 {
				t.Errorf("%s/%s: bad times", d.Name, s.Name)
			}
			total += int64(s.Total())
		}
		top := dnn.TopLayers(stats, 1)[0]
		if float64(int64(top.Total())) < float64(total)/float64(len(stats)) {
			t.Errorf("%s: top layer below mean — ordering broken", d.Name)
		}
	}
}

// Every zoo model has cut points enough for an 8-stage pipeline.
func TestZooCutPointsSupportPipelines(t *testing.T) {
	for _, d := range All() {
		cuts := d.Net.CutPoints()
		if len(cuts) < 7 {
			t.Errorf("%s: only %d cut points", d.Name, len(cuts))
		}
	}
}
