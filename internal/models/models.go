// Package models is the simulator's model zoo: the five image-classification
// networks the paper trains (LeNet, AlexNet, GoogLeNet, Inception-v3,
// ResNet-50), each built layer by layer with its published architecture so
// that parameter counts, FLOPs, and activation footprints derive from the
// real structure.
package models

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dnn"
)

// ImageNet classification uses 1000 classes; LeNet keeps its classic
// 10-class head (its "K"-scale weight count in the paper's Table I matches
// the classic network).
const (
	imageNetClasses = 1000
	leNetClasses    = 10
)

// Description summarizes a network for the paper's Table I.
type Description struct {
	Name             string
	Net              *dnn.Network
	Depth            int // conventional depth (conv+FC on the longest path)
	ConvLayers       int
	InceptionModules int
	FCLayers         int
	Params           int64
	Residual         bool
	InputShape       dnn.Shape
}

// builderFunc constructs one zoo entry.
type builderFunc func() Description

var zoo = map[string]builderFunc{
	"lenet":        LeNet,
	"alexnet":      AlexNet,
	"googlenet":    GoogLeNet,
	"inception-v3": InceptionV3,
	"resnet":       ResNet50,
}

// Names returns the zoo's model names in the paper's presentation order.
func Names() []string {
	return []string{"lenet", "alexnet", "resnet", "googlenet", "inception-v3"}
}

// built memoizes constructed Descriptions: the network graph, shape
// inference, and derived counts are identical on every build, so each zoo
// entry is compiled once per process and shared. Descriptions (and the
// *dnn.Network they carry) are immutable after construction — callers
// treat them as read-only.
var (
	builtMu sync.Mutex
	built   = map[string]Description{}
)

// ByName returns the named model, building it on first use and serving
// the memoized Description afterwards. Valid names are those returned by
// Names.
func ByName(name string) (Description, error) {
	builtMu.Lock()
	defer builtMu.Unlock()
	if d, ok := built[name]; ok {
		return d, nil
	}
	b, ok := zoo[name]
	if !ok {
		known := make([]string, 0, len(zoo))
		for k := range zoo {
			known = append(known, k)
		}
		sort.Strings(known)
		return Description{}, fmt.Errorf("models: unknown model %q (have %v)", name, known)
	}
	d := b()
	built[name] = d
	return d, nil
}

// ResetCache drops the memoized zoo so the next ByName rebuilds from
// scratch. Only benchmarks and tests measuring the cold path need it.
func ResetCache() {
	builtMu.Lock()
	defer builtMu.Unlock()
	built = map[string]Description{}
}

// All builds every model in presentation order.
func All() []Description {
	out := make([]Description, 0, len(zoo))
	for _, n := range Names() {
		d, err := ByName(n)
		if err != nil {
			panic(err) // Names() and zoo are static and must agree
		}
		out = append(out, d)
	}
	return out
}

// describe fills the derived fields of a Description.
func describe(name string, net *dnn.Network, inceptionModules int, residual bool, input dnn.Shape) Description {
	return Description{
		Name:             name,
		Net:              net,
		Depth:            net.Depth(),
		ConvLayers:       net.CountKind(dnn.OpConv),
		InceptionModules: inceptionModules,
		FCLayers:         net.CountKind(dnn.OpFC),
		Params:           net.ParamCount(),
		Residual:         residual,
		InputShape:       input,
	}
}
