package models

import "repro/internal/dnn"

// AlexNet builds the 8-layer AlexNet (5 convolutions, 3 fully-connected
// layers, ~61M parameters) on 224x224 RGB inputs, with the original
// 2-group convolutions in conv2/conv4/conv5.
func AlexNet() Description {
	in := dnn.Shape{C: 3, H: 224, W: 224}
	b := dnn.NewBuilder("AlexNet")
	x := b.Input("data", in)
	x = b.Add("conv1", dnn.Conv{OutC: 96, KH: 11, KW: 11, StrideH: 4, PadH: 2, PadW: 2, Bias: true}, x)
	x = b.Add("relu1", dnn.Activation{Mode: dnn.ReLU}, x)
	x = b.Add("lrn1", dnn.LRN{Size: 5}, x)
	x = b.Add("pool1", dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)
	x = b.Add("conv2", dnn.Conv{OutC: 256, KH: 5, KW: 5, PadH: 2, PadW: 2, Groups: 2, Bias: true}, x)
	x = b.Add("relu2", dnn.Activation{Mode: dnn.ReLU}, x)
	x = b.Add("lrn2", dnn.LRN{Size: 5}, x)
	x = b.Add("pool2", dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)
	x = b.Add("conv3", dnn.Conv{OutC: 384, KH: 3, KW: 3, PadH: 1, PadW: 1, Bias: true}, x)
	x = b.Add("relu3", dnn.Activation{Mode: dnn.ReLU}, x)
	x = b.Add("conv4", dnn.Conv{OutC: 384, KH: 3, KW: 3, PadH: 1, PadW: 1, Groups: 2, Bias: true}, x)
	x = b.Add("relu4", dnn.Activation{Mode: dnn.ReLU}, x)
	x = b.Add("conv5", dnn.Conv{OutC: 256, KH: 3, KW: 3, PadH: 1, PadW: 1, Groups: 2, Bias: true}, x)
	x = b.Add("relu5", dnn.Activation{Mode: dnn.ReLU}, x)
	x = b.Add("pool5", dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)
	x = b.Add("flatten", dnn.Flatten{}, x)
	x = b.Add("fc6", dnn.FC{OutF: 4096, Bias: true}, x)
	x = b.Add("relu6", dnn.Activation{Mode: dnn.ReLU}, x)
	x = b.Add("drop6", dnn.Dropout{P: 0.5}, x)
	x = b.Add("fc7", dnn.FC{OutF: 4096, Bias: true}, x)
	x = b.Add("relu7", dnn.Activation{Mode: dnn.ReLU}, x)
	x = b.Add("drop7", dnn.Dropout{P: 0.5}, x)
	x = b.Add("fc8", dnn.FC{OutF: imageNetClasses, Bias: true}, x)
	b.Add("softmax", dnn.Softmax{}, x)
	return describe("AlexNet", b.Finish(), 0, false, in)
}
