package models

import (
	"testing"

	"repro/internal/dnn"
)

// Published parameter counts for the five architectures. The zoo derives
// counts from layer structure; matching these exactly validates every
// layer's configuration.
func TestParameterCountsMatchPublishedArchitectures(t *testing.T) {
	want := map[string]int64{
		"LeNet":        61706,    // classic LeNet-5, 10 classes
		"AlexNet":      60965224, // grouped AlexNet, 1000 classes
		"GoogLeNet":    6998552,  // Inception v1 without aux heads
		"Inception-v3": 23834568, // without aux head
		"ResNet":       25557032, // ResNet-50
	}
	for _, d := range All() {
		if got := d.Params; got != want[d.Name] {
			t.Errorf("%s params = %d, want %d", d.Name, got, want[d.Name])
		}
		if d.Params != d.Net.ParamCount() {
			t.Errorf("%s description/params mismatch", d.Name)
		}
	}
}

func TestCanonicalDepths(t *testing.T) {
	want := map[string]int{
		"LeNet":        5,
		"AlexNet":      8,
		"GoogLeNet":    22,
		"Inception-v3": 48,
		"ResNet":       50,
	}
	for _, d := range All() {
		if d.Depth != want[d.Name] {
			t.Errorf("%s depth = %d, want %d", d.Name, d.Depth, want[d.Name])
		}
	}
}

// Table I structure: conv/inception/FC layer counts.
func TestTableIStructure(t *testing.T) {
	cases := map[string]struct{ conv, incep, fc int }{
		"LeNet":        {2, 0, 3},
		"AlexNet":      {5, 0, 3},
		"GoogLeNet":    {57, 9, 1},
		"Inception-v3": {94, 11, 1},
		"ResNet":       {53, 0, 1},
	}
	for _, d := range All() {
		c := cases[d.Name]
		if d.ConvLayers != c.conv || d.InceptionModules != c.incep || d.FCLayers != c.fc {
			t.Errorf("%s structure = conv %d/incep %d/fc %d, want %+v",
				d.Name, d.ConvLayers, d.InceptionModules, d.FCLayers, c)
		}
	}
	for _, d := range All() {
		if d.Residual != (d.Name == "ResNet") {
			t.Errorf("%s residual flag = %v", d.Name, d.Residual)
		}
	}
}

// Published per-image forward FLOPs (2 FLOPs per MAC), ±15%: AlexNet
// ~1.4G, GoogLeNet ~3G, ResNet-50 ~7.7-8.2G, Inception-v3 ~11.4G.
func TestForwardFLOPsInPublishedRange(t *testing.T) {
	ranges := map[string][2]float64{
		"LeNet":        {0.5e6, 10e6},
		"AlexNet":      {1.2e9, 1.7e9},
		"GoogLeNet":    {2.7e9, 3.5e9},
		"Inception-v3": {10e9, 13e9},
		"ResNet":       {7e9, 9e9},
	}
	for _, d := range All() {
		f := float64(d.Net.FwdFLOPsPerImage())
		r := ranges[d.Name]
		if f < r[0] || f > r[1] {
			t.Errorf("%s fwd FLOPs/img = %.3g, want in [%.3g, %.3g]", d.Name, f, r[0], r[1])
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		d, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if d.Net == nil {
			t.Fatalf("ByName(%q) returned nil network", n)
		}
	}
	if _, err := ByName("vgg"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestInputShapes(t *testing.T) {
	shapes := map[string]dnn.Shape{
		"LeNet":        {C: 1, H: 28, W: 28},
		"AlexNet":      {C: 3, H: 224, W: 224},
		"GoogLeNet":    {C: 3, H: 224, W: 224},
		"Inception-v3": {C: 3, H: 299, W: 299},
		"ResNet":       {C: 3, H: 224, W: 224},
	}
	for _, d := range All() {
		if d.InputShape != shapes[d.Name] {
			t.Errorf("%s input = %v, want %v", d.Name, d.InputShape, shapes[d.Name])
		}
	}
}

// Architectural invariants the paper's analysis relies on.
func TestPaperOrderings(t *testing.T) {
	byName := map[string]Description{}
	for _, d := range All() {
		byName[d.Name] = d
	}
	// "LeNet and AlexNet have a higher number of parameters because of
	// their relatively larger number of fully connected layers" — AlexNet
	// has the most weights overall.
	if byName["AlexNet"].Params <= byName["Inception-v3"].Params {
		t.Error("AlexNet should out-weigh Inception-v3")
	}
	// "GoogLeNet and Inception-v3 require a smaller number of parameters
	// compared to AlexNet because of the inception layers."
	if byName["GoogLeNet"].Params >= byName["AlexNet"].Params {
		t.Error("GoogLeNet should have fewer params than AlexNet")
	}
	// Compute intensity ordering drives the FP+BP results: Inception-v3 >
	// ResNet > GoogLeNet > AlexNet > LeNet.
	order := []string{"Inception-v3", "ResNet", "GoogLeNet", "AlexNet", "LeNet"}
	for i := 0; i+1 < len(order); i++ {
		if byName[order[i]].Net.FwdFLOPsPerImage() <= byName[order[i+1]].Net.FwdFLOPsPerImage() {
			t.Errorf("%s should cost more FLOPs than %s", order[i], order[i+1])
		}
	}
}

// Spot-check key intermediate shapes of each network.
func TestKnownIntermediateShapes(t *testing.T) {
	find := func(d Description, name string) *dnn.Node {
		for _, n := range d.Net.Nodes() {
			if n.Name == name {
				return n
			}
		}
		t.Fatalf("%s: node %q not found", d.Name, name)
		return nil
	}
	alex, _ := ByName("alexnet")
	if got := find(alex, "pool5").Out; got != (dnn.Shape{C: 256, H: 6, W: 6}) {
		t.Errorf("AlexNet pool5 = %v, want 256x6x6", got)
	}
	goog, _ := ByName("googlenet")
	if got := find(goog, "3a_concat").Out; got != (dnn.Shape{C: 256, H: 28, W: 28}) {
		t.Errorf("GoogLeNet 3a = %v, want 256x28x28", got)
	}
	if got := find(goog, "5b_concat").Out; got != (dnn.Shape{C: 1024, H: 7, W: 7}) {
		t.Errorf("GoogLeNet 5b = %v, want 1024x7x7", got)
	}
	inc, _ := ByName("inception-v3")
	if got := find(inc, "stem_pool2").Out; got != (dnn.Shape{C: 192, H: 35, W: 35}) {
		t.Errorf("Inception stem = %v, want 192x35x35", got)
	}
	if got := find(inc, "e2_concat").Out; got != (dnn.Shape{C: 2048, H: 8, W: 8}) {
		t.Errorf("Inception e2 = %v, want 2048x8x8", got)
	}
	res, _ := ByName("resnet")
	if got := find(res, "pool1").Out; got != (dnn.Shape{C: 64, H: 56, W: 56}) {
		t.Errorf("ResNet pool1 = %v, want 64x56x56", got)
	}
	if got := find(res, "res5_c_relu").Out; got != (dnn.Shape{C: 2048, H: 7, W: 7}) {
		t.Errorf("ResNet res5c = %v, want 2048x7x7", got)
	}
}

func TestWeightedLayerTotalsMatchParamCount(t *testing.T) {
	for _, d := range All() {
		var sum int64
		for _, wl := range d.Net.WeightedLayers() {
			sum += wl.Params
		}
		if sum != d.Params {
			t.Errorf("%s weighted layer sum %d != params %d", d.Name, sum, d.Params)
		}
	}
}
