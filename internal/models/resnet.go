package models

import (
	"fmt"

	"repro/internal/dnn"
)

// bottleneck adds one ResNet-50 bottleneck block (1x1 reduce, 3x3, 1x1
// expand, shortcut add). stride applies to the 3x3 convolution; a
// projection shortcut is inserted when the shape changes.
func bottleneck(b *dnn.Builder, name string, x *dnn.Node, mid, out, stride int) *dnn.Node {
	p := func(s string) string { return fmt.Sprintf("%s_%s", name, s) }
	shortcut := x
	if x.Out.C != out || stride != 1 {
		shortcut = b.Add(p("proj"), dnn.Conv{OutC: out, KH: 1, KW: 1, StrideH: stride}, x)
		shortcut = b.Add(p("proj_bn"), dnn.BatchNorm{}, shortcut)
	}
	y := convBNsq(b, p("1x1a"), x, mid, 1, 1, 0)
	y = convBNsq(b, p("3x3"), y, mid, 3, stride, 1)
	y = b.Add(p("1x1b"), dnn.Conv{OutC: out, KH: 1, KW: 1}, y)
	y = b.Add(p("1x1b_bn"), dnn.BatchNorm{}, y)
	y = b.Add(p("add"), dnn.Add{}, y, shortcut)
	return b.Add(p("relu"), dnn.Activation{Mode: dnn.ReLU}, y)
}

// ResNet50 builds the 50-layer residual network (~25.6M parameters) on
// 224x224 RGB inputs: a 7x7 stem and four bottleneck stages of 3/4/6/3
// blocks.
func ResNet50() Description {
	in := dnn.Shape{C: 3, H: 224, W: 224}
	b := dnn.NewBuilder("ResNet")
	x := b.Input("data", in)
	x = convBNsq(b, "conv1", x, 64, 7, 2, 3)
	x = b.Add("pool1", dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)

	stages := []struct {
		name   string
		mid    int
		out    int
		blocks int
		stride int
	}{
		{"res2", 64, 256, 3, 1},
		{"res3", 128, 512, 4, 2},
		{"res4", 256, 1024, 6, 2},
		{"res5", 512, 2048, 3, 2},
	}
	for _, st := range stages {
		for i := 0; i < st.blocks; i++ {
			stride := 1
			if i == 0 {
				stride = st.stride
			}
			x = bottleneck(b, fmt.Sprintf("%s_%c", st.name, 'a'+i), x, st.mid, st.out, stride)
		}
	}

	x = b.Add("gap", dnn.Pool{Mode: dnn.AvgPool, Global: true}, x)
	x = b.Add("flatten", dnn.Flatten{}, x)
	x = b.Add("fc", dnn.FC{OutF: imageNetClasses, Bias: true}, x)
	b.Add("softmax", dnn.Softmax{}, x)
	return describe("ResNet", b.Finish(), 0, true, in)
}
