package models

import "repro/internal/dnn"

// LeNet builds the classic LeNet-5: two convolution layers and three
// fully-connected layers on 28x28 grayscale inputs (~61.7K parameters,
// matching the "K"-scale weight count in the paper's Table I).
func LeNet() Description {
	in := dnn.Shape{C: 1, H: 28, W: 28}
	b := dnn.NewBuilder("LeNet")
	x := b.Input("data", in)
	x = b.Add("conv1", dnn.Conv{OutC: 6, KH: 5, KW: 5, PadH: 2, PadW: 2, Bias: true}, x)
	x = b.Add("tanh1", dnn.Activation{Mode: dnn.Tanh}, x)
	x = b.Add("pool1", dnn.Pool{Mode: dnn.MaxPool, K: 2, Stride: 2}, x)
	x = b.Add("conv2", dnn.Conv{OutC: 16, KH: 5, KW: 5, Bias: true}, x)
	x = b.Add("tanh2", dnn.Activation{Mode: dnn.Tanh}, x)
	x = b.Add("pool2", dnn.Pool{Mode: dnn.MaxPool, K: 2, Stride: 2}, x)
	x = b.Add("flatten", dnn.Flatten{}, x)
	x = b.Add("fc1", dnn.FC{OutF: 120, Bias: true}, x)
	x = b.Add("tanh3", dnn.Activation{Mode: dnn.Tanh}, x)
	x = b.Add("fc2", dnn.FC{OutF: 84, Bias: true}, x)
	x = b.Add("tanh4", dnn.Activation{Mode: dnn.Tanh}, x)
	x = b.Add("fc3", dnn.FC{OutF: leNetClasses, Bias: true}, x)
	b.Add("softmax", dnn.Softmax{}, x)
	return describe("LeNet", b.Finish(), 0, false, in)
}
