package models

import (
	"fmt"

	"repro/internal/dnn"
)

// convBN adds an unbiased convolution + batchnorm + ReLU, the basic unit of
// Inception-v3.
func convBN(b *dnn.Builder, name string, x *dnn.Node, outC, kh, kw, strideH, strideW, padH, padW int) *dnn.Node {
	x = b.Add(name, dnn.Conv{OutC: outC, KH: kh, KW: kw, StrideH: strideH, StrideW: strideW, PadH: padH, PadW: padW}, x)
	x = b.Add(name+"_bn", dnn.BatchNorm{}, x)
	return b.Add(name+"_relu", dnn.Activation{Mode: dnn.ReLU}, x)
}

// square convBN with equal kernel/stride/pad on both axes.
func convBNsq(b *dnn.Builder, name string, x *dnn.Node, outC, k, stride, pad int) *dnn.Node {
	return convBN(b, name, x, outC, k, k, stride, stride, pad, pad)
}

// inceptionA is the 35x35 module: 1x1, 5x5, double-3x3, and pooled-1x1
// branches.
func inceptionA(b *dnn.Builder, name string, x *dnn.Node, poolProj int) *dnn.Node {
	p := func(s string) string { return fmt.Sprintf("%s_%s", name, s) }
	b1 := convBNsq(b, p("1x1"), x, 64, 1, 1, 0)
	b2 := convBNsq(b, p("5x5r"), x, 48, 1, 1, 0)
	b2 = convBNsq(b, p("5x5"), b2, 64, 5, 1, 2)
	b3 := convBNsq(b, p("d3x3r"), x, 64, 1, 1, 0)
	b3 = convBNsq(b, p("d3x3a"), b3, 96, 3, 1, 1)
	b3 = convBNsq(b, p("d3x3b"), b3, 96, 3, 1, 1)
	b4 := b.Add(p("pool"), dnn.Pool{Mode: dnn.AvgPool, K: 3, Stride: 1, Pad: 1}, x)
	b4 = convBNsq(b, p("poolp"), b4, poolProj, 1, 1, 0)
	return b.Add(p("concat"), dnn.Concat{}, b1, b2, b3, b4)
}

// reductionB shrinks 35x35 to 17x17.
func reductionB(b *dnn.Builder, name string, x *dnn.Node) *dnn.Node {
	p := func(s string) string { return fmt.Sprintf("%s_%s", name, s) }
	b1 := convBNsq(b, p("3x3"), x, 384, 3, 2, 0)
	b2 := convBNsq(b, p("d3x3r"), x, 64, 1, 1, 0)
	b2 = convBNsq(b, p("d3x3a"), b2, 96, 3, 1, 1)
	b2 = convBNsq(b, p("d3x3b"), b2, 96, 3, 2, 0)
	b3 := b.Add(p("pool"), dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)
	return b.Add(p("concat"), dnn.Concat{}, b1, b2, b3)
}

// inceptionC is the 17x17 module with factorized 7x7 convolutions.
func inceptionC(b *dnn.Builder, name string, x *dnn.Node, c7 int) *dnn.Node {
	p := func(s string) string { return fmt.Sprintf("%s_%s", name, s) }
	b1 := convBNsq(b, p("1x1"), x, 192, 1, 1, 0)
	b2 := convBNsq(b, p("7x7r"), x, c7, 1, 1, 0)
	b2 = convBN(b, p("1x7"), b2, c7, 1, 7, 1, 1, 0, 3)
	b2 = convBN(b, p("7x1"), b2, 192, 7, 1, 1, 1, 3, 0)
	b3 := convBNsq(b, p("d7x7r"), x, c7, 1, 1, 0)
	b3 = convBN(b, p("d7x1a"), b3, c7, 7, 1, 1, 1, 3, 0)
	b3 = convBN(b, p("d1x7a"), b3, c7, 1, 7, 1, 1, 0, 3)
	b3 = convBN(b, p("d7x1b"), b3, c7, 7, 1, 1, 1, 3, 0)
	b3 = convBN(b, p("d1x7b"), b3, 192, 1, 7, 1, 1, 0, 3)
	b4 := b.Add(p("pool"), dnn.Pool{Mode: dnn.AvgPool, K: 3, Stride: 1, Pad: 1}, x)
	b4 = convBNsq(b, p("poolp"), b4, 192, 1, 1, 0)
	return b.Add(p("concat"), dnn.Concat{}, b1, b2, b3, b4)
}

// reductionD shrinks 17x17 to 8x8.
func reductionD(b *dnn.Builder, name string, x *dnn.Node) *dnn.Node {
	p := func(s string) string { return fmt.Sprintf("%s_%s", name, s) }
	b1 := convBNsq(b, p("3x3r"), x, 192, 1, 1, 0)
	b1 = convBNsq(b, p("3x3"), b1, 320, 3, 2, 0)
	b2 := convBNsq(b, p("7x7r"), x, 192, 1, 1, 0)
	b2 = convBN(b, p("1x7"), b2, 192, 1, 7, 1, 1, 0, 3)
	b2 = convBN(b, p("7x1"), b2, 192, 7, 1, 1, 1, 3, 0)
	b2 = convBNsq(b, p("3x3b"), b2, 192, 3, 2, 0)
	b3 := b.Add(p("pool"), dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)
	return b.Add(p("concat"), dnn.Concat{}, b1, b2, b3)
}

// inceptionE is the 8x8 module with split 3x3 branches.
func inceptionE(b *dnn.Builder, name string, x *dnn.Node) *dnn.Node {
	p := func(s string) string { return fmt.Sprintf("%s_%s", name, s) }
	b1 := convBNsq(b, p("1x1"), x, 320, 1, 1, 0)
	b2 := convBNsq(b, p("3x3r"), x, 384, 1, 1, 0)
	b2a := convBN(b, p("1x3"), b2, 384, 1, 3, 1, 1, 0, 1)
	b2b := convBN(b, p("3x1"), b2, 384, 3, 1, 1, 1, 1, 0)
	b2c := b.Add(p("split2"), dnn.Concat{}, b2a, b2b)
	b3 := convBNsq(b, p("d3x3r"), x, 448, 1, 1, 0)
	b3 = convBNsq(b, p("d3x3"), b3, 384, 3, 1, 1)
	b3a := convBN(b, p("d1x3"), b3, 384, 1, 3, 1, 1, 0, 1)
	b3b := convBN(b, p("d3x1"), b3, 384, 3, 1, 1, 1, 1, 0)
	b3c := b.Add(p("split3"), dnn.Concat{}, b3a, b3b)
	b4 := b.Add(p("pool"), dnn.Pool{Mode: dnn.AvgPool, K: 3, Stride: 1, Pad: 1}, x)
	b4 = convBNsq(b, p("poolp"), b4, 192, 1, 1, 0)
	return b.Add(p("concat"), dnn.Concat{}, b1, b2c, b3c, b4)
}

// InceptionV3 builds the 48-layer Inception-v3 (~23.8M parameters) on
// 299x299 RGB inputs, without the auxiliary classifier (the training
// example in the paper's MXNet container omits it).
func InceptionV3() Description {
	in := dnn.Shape{C: 3, H: 299, W: 299}
	b := dnn.NewBuilder("Inception-v3")
	x := b.Input("data", in)
	x = convBNsq(b, "stem1", x, 32, 3, 2, 0)
	x = convBNsq(b, "stem2", x, 32, 3, 1, 0)
	x = convBNsq(b, "stem3", x, 64, 3, 1, 1)
	x = b.Add("stem_pool1", dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)
	x = convBNsq(b, "stem4", x, 80, 1, 1, 0)
	x = convBNsq(b, "stem5", x, 192, 3, 1, 0)
	x = b.Add("stem_pool2", dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)

	x = inceptionA(b, "a1", x, 32)
	x = inceptionA(b, "a2", x, 64)
	x = inceptionA(b, "a3", x, 64)
	x = reductionB(b, "rb", x)
	x = inceptionC(b, "c1", x, 128)
	x = inceptionC(b, "c2", x, 160)
	x = inceptionC(b, "c3", x, 160)
	x = inceptionC(b, "c4", x, 192)
	x = reductionD(b, "rd", x)
	x = inceptionE(b, "e1", x)
	x = inceptionE(b, "e2", x)

	x = b.Add("gap", dnn.Pool{Mode: dnn.AvgPool, Global: true}, x)
	x = b.Add("drop", dnn.Dropout{P: 0.5}, x)
	x = b.Add("flatten", dnn.Flatten{}, x)
	x = b.Add("fc", dnn.FC{OutF: imageNetClasses, Bias: true}, x)
	b.Add("softmax", dnn.Softmax{}, x)
	// 11 mixed modules: 3 A + 1 reduction-B + 4 C + 1 reduction-D + 2 E.
	return describe("Inception-v3", b.Finish(), 11, false, in)
}
