package models

import (
	"fmt"

	"repro/internal/dnn"
)

// convRelu adds a biased convolution followed by ReLU.
func convRelu(b *dnn.Builder, name string, x *dnn.Node, outC, kh, kw, stride, padH, padW int) *dnn.Node {
	x = b.Add(name, dnn.Conv{OutC: outC, KH: kh, KW: kw, StrideH: stride, PadH: padH, PadW: padW, Bias: true}, x)
	return b.Add(name+"_relu", dnn.Activation{Mode: dnn.ReLU}, x)
}

// inceptionV1 adds one GoogLeNet inception module: four parallel branches
// (1x1; 1x1->3x3; 1x1->5x5; pool->1x1) concatenated along channels.
func inceptionV1(b *dnn.Builder, name string, x *dnn.Node, c1, c3r, c3, c5r, c5, pp int) *dnn.Node {
	p := func(s string) string { return fmt.Sprintf("%s_%s", name, s) }
	b1 := convRelu(b, p("1x1"), x, c1, 1, 1, 1, 0, 0)
	b2 := convRelu(b, p("3x3r"), x, c3r, 1, 1, 1, 0, 0)
	b2 = convRelu(b, p("3x3"), b2, c3, 3, 3, 1, 1, 1)
	b3 := convRelu(b, p("5x5r"), x, c5r, 1, 1, 1, 0, 0)
	b3 = convRelu(b, p("5x5"), b3, c5, 5, 5, 1, 2, 2)
	b4 := b.Add(p("pool"), dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 1, Pad: 1}, x)
	b4 = convRelu(b, p("poolp"), b4, pp, 1, 1, 1, 0, 0)
	return b.Add(p("concat"), dnn.Concat{}, b1, b2, b3, b4)
}

// GoogLeNet builds the 22-layer GoogLeNet (Inception v1) with its nine
// inception modules (~7M parameters) on 224x224 RGB inputs. The auxiliary
// classifiers are omitted, as in the MXNet image-classification example the
// paper's framework ships.
func GoogLeNet() Description {
	in := dnn.Shape{C: 3, H: 224, W: 224}
	b := dnn.NewBuilder("GoogLeNet")
	x := b.Input("data", in)
	x = convRelu(b, "conv1", x, 64, 7, 7, 2, 3, 3)
	x = b.Add("pool1", dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)
	x = b.Add("lrn1", dnn.LRN{Size: 5}, x)
	x = convRelu(b, "conv2r", x, 64, 1, 1, 1, 0, 0)
	x = convRelu(b, "conv2", x, 192, 3, 3, 1, 1, 1)
	x = b.Add("lrn2", dnn.LRN{Size: 5}, x)
	x = b.Add("pool2", dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)

	x = inceptionV1(b, "3a", x, 64, 96, 128, 16, 32, 32)
	x = inceptionV1(b, "3b", x, 128, 128, 192, 32, 96, 64)
	x = b.Add("pool3", dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)
	x = inceptionV1(b, "4a", x, 192, 96, 208, 16, 48, 64)
	x = inceptionV1(b, "4b", x, 160, 112, 224, 24, 64, 64)
	x = inceptionV1(b, "4c", x, 128, 128, 256, 24, 64, 64)
	x = inceptionV1(b, "4d", x, 112, 144, 288, 32, 64, 64)
	x = inceptionV1(b, "4e", x, 256, 160, 320, 32, 128, 128)
	x = b.Add("pool4", dnn.Pool{Mode: dnn.MaxPool, K: 3, Stride: 2}, x)
	x = inceptionV1(b, "5a", x, 256, 160, 320, 32, 128, 128)
	x = inceptionV1(b, "5b", x, 384, 192, 384, 48, 128, 128)

	x = b.Add("gap", dnn.Pool{Mode: dnn.AvgPool, Global: true}, x)
	x = b.Add("drop", dnn.Dropout{P: 0.4}, x)
	x = b.Add("flatten", dnn.Flatten{}, x)
	x = b.Add("fc", dnn.FC{OutF: imageNetClasses, Bias: true}, x)
	b.Add("softmax", dnn.Softmax{}, x)
	return describe("GoogLeNet", b.Finish(), 9, false, in)
}
