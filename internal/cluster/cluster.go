// Package cluster simulates a fleet of DGX-1 nodes serving a trace of
// DNN training jobs — the multi-tenant question the paper's single-box
// profile leaves open. The Alibaba-PAI characterization (PAPERS.md)
// shows production DL clusters dominated by many small, short, highly
// repetitive jobs next to a long tail of large multi-GPU ones; Planaria
// (SNIPPETS.md §3) shows multi-tenant placement policy is itself a
// first-order performance lever. This package puts both on top of the
// existing single-node simulator: every node is a (possibly
// fault-degraded) simulated DGX-1, and a job's service time is the epoch
// time the core path simulates for its workload on that node's fabric.
//
// The model is a deterministic discrete-event loop in virtual time:
//
//   - A Spec declares the fleet (node count, per-node fault plans) and a
//     workload trace — an explicit job list, or a generated mix (seeded
//     Poisson arrivals over zoo models with PAI-style size weights and
//     heavy-tailed repetition).
//   - Each node contributes 8 GPU slots. Placement is a capacity model:
//     a job occupies its GPU count for its service time and co-located
//     jobs do not interfere beyond occupying slots; a job placed on a
//     node runs as if on devices 0..n-1 of that node's (possibly
//     faulted) machine. Fabric faults therefore price into every job on
//     the node through the node's fault plan.
//   - Service times come from the core compile/extrapolate path and are
//     memoized by workload fingerprint (job template x node plan), so a
//     10k-job trace prices each distinct configuration exactly once.
//   - Placement policies are pluggable behind the Policy interface
//     (first-fit, best-fit bin-packing, fragmentation-aware), and the
//     pending queue is ordered FIFO or shortest-job-first.
//
// Outputs are cluster-level: JCT and queueing-delay distributions,
// per-node and fleet GPU utilization, and makespan. Everything is
// virtual-time arithmetic over deterministic simulations — the same Spec
// always produces byte-identical results, never consulting the wall
// clock — so policies compare exactly, and the dgxsimd endpoint and the
// experiments fleet sweep reproduce.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/kvstore"
	"repro/internal/train"
)

// NodeGPUs is a DGX-1 node's GPU slot count — the default when a node
// group names no hardware. Other machines set their own capacity (a
// DGX-2 node offers 16 slots).
const NodeGPUs = 8

// Bounds keeping a hostile or runaway spec from exhausting the process.
const (
	// MaxNodes bounds the fleet size.
	MaxNodes = 256
	// MaxJobs bounds the trace length (explicit or generated).
	MaxJobs = 100000
)

// NodeSpec declares one group of identical nodes in the fleet.
type NodeSpec struct {
	// Count is how many nodes this entry contributes (default 1).
	Count int `json:"count,omitempty"`
	// Hardware names the group's machine ("dgx1" default, "dgx2", ...).
	// The machine sets each node's GPU slot count (a DGX-2 node offers
	// 16) and the fabric every job placed there is priced on.
	Hardware string `json:"hardware,omitempty"`
	// Faults degrades every node in the group (nil = healthy). The plan
	// validates against the DGX-1 wiring exactly as single-node plans do,
	// so it requires the group's hardware to be the DGX-1.
	Faults *faults.Plan `json:"faults,omitempty"`
}

// Job is one arrival in the trace: a single-node training workload plus
// its virtual arrival time and back-to-back repetition count.
type Job struct {
	// Name labels the job in errors (default "job[i]").
	Name string `json:"name,omitempty"`
	// Model is a zoo name: lenet, alexnet, googlenet, inception-v3, resnet.
	Model string `json:"model"`
	// GPUs is the job's device demand (a job never spans nodes, so it
	// must fit some declared node group's machine — 8 slots on a DGX-1,
	// 16 on a DGX-2).
	GPUs int `json:"gpus"`
	// Batch is the per-GPU mini-batch size.
	Batch int `json:"batch"`
	// Method is the communication method (default nccl).
	Method kvstore.Method `json:"method,omitempty"`
	// Images per epoch (default: the paper's 256K).
	Images int64 `json:"images,omitempty"`
	// Arrival is the job's virtual arrival offset from trace start.
	Arrival time.Duration `json:"arrivalNs"`
	// Repeats runs the epoch back-to-back this many times while holding
	// the job's GPUs (default 1). The repetitions share one priced
	// service time — the artifact/result is computed once.
	Repeats int `json:"repeats,omitempty"`
}

// workload lowers the job to the single-node core workload it would be
// on a node of the given hardware carrying the given fault plan.
func (j Job) workload(plan *faults.Plan, hardware string) core.Workload {
	return core.Workload{
		Model:    j.Model,
		GPUs:     j.GPUs,
		Batch:    j.Batch,
		Method:   j.Method,
		Images:   j.Images,
		Faults:   plan,
		Hardware: hardware,
	}
}

// Mix declares a generated workload trace modeled on the Alibaba-PAI
// characterization: Poisson arrivals over a job population dominated by
// small, short, highly repetitive single-GPU jobs with a long tail of
// large multi-GPU ones. Generation is fully determined by (Mix, Spec.Seed).
type Mix struct {
	// Jobs is how many arrivals to generate (1..MaxJobs).
	Jobs int `json:"jobs"`
	// MeanInterarrival is the mean of the exponential inter-arrival time
	// (default 45s virtual). Smaller means a more contended fleet.
	MeanInterarrival time.Duration `json:"meanInterarrivalNs,omitempty"`
	// MaxRepeats caps the heavy-tailed resubmission count of one sampled
	// job template (default 12). Repetition here is PAI-style recurrence:
	// the same template re-arrives as separate jobs, all sharing one
	// priced service time.
	MaxRepeats int `json:"maxRepeats,omitempty"`
}

// Spec declares one fleet simulation.
type Spec struct {
	// Nodes is the fleet, in node-index order, expanded by Count.
	Nodes []NodeSpec `json:"nodes"`
	// Jobs is the explicit trace. Exactly one of Jobs and Mix must be set.
	Jobs []Job `json:"jobs,omitempty"`
	// Mix generates the trace instead (seeded by Seed).
	Mix *Mix `json:"mix,omitempty"`
	// Policy names the placement policy: first-fit (default), best-fit,
	// or frag-aware.
	Policy string `json:"policy,omitempty"`
	// Queue names the pending-queue discipline: fifo (default) or sjf.
	Queue string `json:"queue,omitempty"`
	// Seed drives trace generation (default 1). Same seed, same trace.
	Seed int64 `json:"seed,omitempty"`
}

// Validate checks the spec without simulating it. Job workloads are
// checked with the same core validation every single-node entry point
// uses, so a job this accepts never fails pricing for spelling reasons.
func (s Spec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes declared")
	}
	total := 0
	for i, n := range s.Nodes {
		count := n.Count
		if count == 0 {
			count = 1
		}
		if count < 0 {
			return fmt.Errorf("cluster: nodes[%d]: count %d must be positive", i, n.Count)
		}
		total += count
		if _, err := train.MachineByName(n.Hardware); err != nil {
			return fmt.Errorf("cluster: nodes[%d]: %w", i, err)
		}
		if err := n.Faults.Validate(); err != nil {
			return fmt.Errorf("cluster: nodes[%d]: %w", i, err)
		}
		if err := n.Faults.CheckHardware(n.Hardware); err != nil {
			return fmt.Errorf("cluster: nodes[%d]: %w", i, err)
		}
	}
	if total > MaxNodes {
		return fmt.Errorf("cluster: fleet of %d nodes exceeds the %d-node cap", total, MaxNodes)
	}
	switch {
	case len(s.Jobs) == 0 && s.Mix == nil:
		return fmt.Errorf("cluster: no trace: declare jobs or a mix")
	case len(s.Jobs) > 0 && s.Mix != nil:
		return fmt.Errorf("cluster: jobs and mix are mutually exclusive")
	}
	if len(s.Jobs) > MaxJobs {
		return fmt.Errorf("cluster: trace of %d jobs exceeds the %d-job cap", len(s.Jobs), MaxJobs)
	}
	for i, j := range s.Jobs {
		if err := j.workload(nil, s.estimateHardware(j.GPUs)).Validate(); err != nil {
			return fmt.Errorf("cluster: %s: %w", jobName(j, i), err)
		}
		if j.Arrival < 0 {
			return fmt.Errorf("cluster: %s: negative arrival time", jobName(j, i))
		}
		if j.Repeats < 0 {
			return fmt.Errorf("cluster: %s: negative repeat count", jobName(j, i))
		}
	}
	if m := s.Mix; m != nil {
		if m.Jobs < 1 || m.Jobs > MaxJobs {
			return fmt.Errorf("cluster: mix of %d jobs outside 1..%d", m.Jobs, MaxJobs)
		}
		if m.MeanInterarrival < 0 {
			return fmt.Errorf("cluster: negative mean interarrival")
		}
		if m.MaxRepeats < 0 {
			return fmt.Errorf("cluster: negative max repeats")
		}
	}
	if _, err := policyByName(policyOrDefault(s.Policy)); err != nil {
		return err
	}
	if _, err := queueByName(queueOrDefault(s.Queue)); err != nil {
		return err
	}
	return nil
}

// Normalize returns the canonical spelling of a valid spec: defaults made
// explicit (policy, queue, seed, per-job name/method/repeats, mix knobs)
// and node groups left as declared. Simulate normalizes internally; the
// explicit form is what the service echoes.
func (s Spec) Normalize() Spec {
	out := s
	out.Policy = policyOrDefault(s.Policy)
	out.Queue = queueOrDefault(s.Queue)
	if out.Seed == 0 {
		out.Seed = 1
	}
	if len(s.Jobs) > 0 {
		out.Jobs = append([]Job(nil), s.Jobs...)
		for i := range out.Jobs {
			out.Jobs[i] = normalizeJob(out.Jobs[i], i)
		}
	}
	if s.Mix != nil {
		m := *s.Mix
		if m.MeanInterarrival == 0 {
			m.MeanInterarrival = DefaultMeanInterarrival
		}
		if m.MaxRepeats == 0 {
			m.MaxRepeats = DefaultMaxRepeats
		}
		out.Mix = &m
	}
	return out
}

func normalizeJob(j Job, i int) Job {
	if j.Name == "" {
		j.Name = fmt.Sprintf("job[%d]", i)
	}
	if j.Method == "" {
		j.Method = core.NCCL
	}
	if j.Repeats == 0 {
		j.Repeats = 1
	}
	return j
}

func jobName(j Job, i int) string {
	if j.Name != "" {
		return j.Name
	}
	return fmt.Sprintf("job[%d]", i)
}

func policyOrDefault(name string) string {
	if name == "" {
		return PolicyFirstFit
	}
	return name
}

func queueOrDefault(name string) string {
	if name == "" {
		return QueueFIFO
	}
	return name
}

// estimateHardware picks the hardware a job of the given GPU demand
// would be validated and estimated against: the first declared node
// group whose machine capacity fits the demand, falling back to the
// first group so validation errors cite a machine the fleet actually
// has. (A valid spec never hits a call with an unknown machine name —
// Validate rejects those first — but the helper tolerates it by
// treating the group as a default DGX-1.)
func (s Spec) estimateHardware(gpus int) string {
	first := ""
	for i, n := range s.Nodes {
		if i == 0 {
			first = n.Hardware
		}
		m, err := train.MachineByName(n.Hardware)
		if err != nil {
			continue
		}
		if gpus <= m.GPUs {
			return n.Hardware
		}
	}
	return first
}

// nodeTemplate is one materialized node: its fault plan plus the
// capacity and hardware name its machine contributes.
type nodeTemplate struct {
	plan     *faults.Plan
	hardware string
	gpus     int
}

// expandNodes materializes the fleet as per-node templates, in node
// index order. Unknown machine names (pre-validation callers) fall back
// to the DGX-1 slot count.
func expandNodes(specs []NodeSpec) []nodeTemplate {
	var out []nodeTemplate
	for _, n := range specs {
		count := n.Count
		if count == 0 {
			count = 1
		}
		gpus := NodeGPUs
		if m, err := train.MachineByName(n.Hardware); err == nil {
			gpus = m.GPUs
		}
		for i := 0; i < count; i++ {
			out = append(out, nodeTemplate{plan: n.Faults, hardware: n.Hardware, gpus: gpus})
		}
	}
	return out
}

// Dist summarizes a virtual-time distribution (nearest-rank quantiles).
type Dist struct {
	Mean time.Duration `json:"meanNs"`
	P50  time.Duration `json:"p50Ns"`
	P90  time.Duration `json:"p90Ns"`
	P99  time.Duration `json:"p99Ns"`
	Max  time.Duration `json:"maxNs"`
}

// NodeStat is one node's share of the simulation.
type NodeStat struct {
	Node int `json:"node"`
	// Faulted reports whether the node carries a non-zero fault plan.
	Faulted bool `json:"faulted"`
	// Jobs is how many jobs the scheduler placed here.
	Jobs int `json:"jobs"`
	// Utilization is busy GPU-time over the node's GPU count x makespan.
	Utilization float64 `json:"utilization"`
}

// Result is the cluster-level outcome of one simulated trace.
type Result struct {
	// Policy, Queue, Seed echo the normalized scheduling configuration.
	Policy string `json:"policy"`
	Queue  string `json:"queue"`
	Seed   int64  `json:"seed"`

	// Nodes and GPUs describe the fleet; Jobs the trace length.
	Nodes int `json:"nodes"`
	GPUs  int `json:"gpus"`
	Jobs  int `json:"jobs"`

	// Makespan is the virtual time from first arrival to last completion.
	Makespan time.Duration `json:"makespanNs"`
	// JCT is the job-completion-time distribution (completion - arrival).
	JCT Dist `json:"jct"`
	// QueueDelay is the time jobs spent pending before placement.
	QueueDelay Dist `json:"queueDelay"`
	// FleetUtilization is busy GPU-time over fleet GPU-time (makespan).
	FleetUtilization float64 `json:"fleetUtilization"`
	// PerNode breaks placement and utilization down by node.
	PerNode []NodeStat `json:"perNode"`

	// SchedulingEpochs counts the event-loop passes the trace took.
	SchedulingEpochs int `json:"schedulingEpochs"`
	// DistinctServices counts the distinct (template x node plan)
	// workloads actually priced through the simulator — the artifact
	// reuse that keeps long repetitive traces cheap.
	DistinctServices int `json:"distinctServices"`
}
