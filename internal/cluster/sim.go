// The discrete-event loop. Virtual time advances from event to event
// (arrivals and completions); every distinct event instant that changes
// fleet state is followed by one scheduling epoch — order the pending
// queue, scan it in order, and place every job the policy finds a node
// for (backfill: jobs that do not fit are skipped, not blocking). The
// loop is pure arithmetic over priced service times: no wall clock, no
// goroutines, no map iteration — the same Spec always walks the same
// timeline.
package cluster

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stats"
)

// pendingJob is one queued arrival.
type pendingJob struct {
	job Job
	// seq is the arrival's trace index — the deterministic tiebreak for
	// same-instant arrivals and equal SJF estimates.
	seq int
	// estimate is the healthy-machine service estimate SJF ranks by.
	estimate time.Duration
}

// node is the event loop's fleet state for one machine.
type node struct {
	idx        int
	plan       *faults.Plan
	hardware   string
	gpus       int // slot capacity — the machine's GPU count
	faultScore float64
	free       int
	jobs       int
	busyGPU    time.Duration // sum of gpus x service over placed jobs
}

// event is one timeline entry. Completions sort before arrivals at the
// same instant so freed slots are visible to jobs arriving exactly then.
type event struct {
	at   time.Duration
	kind int // 0 completion, 1 arrival
	seq  int
	// arrival payload
	pending *pendingJob
	// completion payload
	node    int
	gpus    int
	arrival time.Duration
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// pricer memoizes job service times by normalized workload fingerprint
// (job template x node hardware x node fault plan). The underlying core artifact cache
// already memoizes the expensive compile; this layer also skips the
// per-call extrapolation and validation, so a 10k-job trace costs one
// simulation per distinct configuration and map lookups for the rest.
type pricer struct {
	memo map[string]time.Duration
}

func newPricer() *pricer { return &pricer{memo: make(map[string]time.Duration)} }

// price returns the epoch time of one repetition of j on a node of the
// given hardware carrying plan. Normalize folds "" and "dgx1" to the
// same fingerprint, so an all-default fleet prices exactly as before the
// hardware axis existed.
func (p *pricer) price(ctx context.Context, j Job, plan *faults.Plan, hardware string) (time.Duration, error) {
	w := j.workload(plan, hardware).Normalize()
	key := w.Fingerprint()
	if d, ok := p.memo[key]; ok {
		return d, nil
	}
	res, err := core.SimulateContext(ctx, w)
	if err != nil {
		return 0, fmt.Errorf("cluster: pricing %s: %w", j.Name, err)
	}
	p.memo[key] = res.EpochTime
	return res.EpochTime, nil
}

// epochSpanCap bounds how many scheduling epochs record an obs span: a
// 10k-job trace has thousands of epochs, and a request trace that long
// stops being a timeline and starts being a transcript. The epoch count
// always lands in Result.SchedulingEpochs.
const epochSpanCap = 64

// Simulate runs the spec's trace to completion and returns the
// cluster-level outcome. It is deterministic: the same spec (same seed)
// produces a byte-identical Result, whatever the caller's wall clock or
// core-cache temperature. Cancellation is honoured between scheduling
// epochs and inside every pricing simulation.
func Simulate(ctx context.Context, spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.Normalize()
	tr := obs.FromContext(ctx)
	defer tr.StartSpan("cluster.simulate")()

	templates := expandNodes(spec.Nodes)
	nodes := make([]*node, len(templates))
	totalGPUs := 0
	for i, t := range templates {
		nodes[i] = &node{
			idx: i, plan: t.plan, hardware: t.hardware, gpus: t.gpus,
			faultScore: faultScore(t.plan), free: t.gpus,
		}
		totalGPUs += t.gpus
	}

	jobs := spec.Jobs
	if spec.Mix != nil {
		endGen := tr.StartSpan("cluster.generate-trace")
		jobs = GenerateTrace(*spec.Mix, spec.Seed)
		for i := range jobs {
			jobs[i] = normalizeJob(jobs[i], i)
		}
		endGen()
	}

	policy, err := policyByName(spec.Policy)
	if err != nil {
		return nil, err
	}
	order, err := queueByName(spec.Queue)
	if err != nil {
		return nil, err
	}

	// Price the healthy-machine estimate of every distinct template up
	// front: SJF ranks by it, and any deterministic workload failure (an
	// OOM batch, say) surfaces here, before the timeline starts. The
	// estimate machine is the first declared group that fits the job, so
	// the ranking stays deterministic on heterogeneous fleets.
	prices := newPricer()
	endPrice := tr.StartSpan("cluster.price-estimates")
	estimates := make([]time.Duration, len(jobs))
	for i, j := range jobs {
		d, err := prices.price(ctx, j, nil, spec.estimateHardware(j.GPUs))
		if err != nil {
			endPrice()
			return nil, err
		}
		estimates[i] = d * time.Duration(j.Repeats)
	}
	endPrice()

	var (
		events   eventQueue
		seq      int
		pending  []*pendingJob
		jcts     []time.Duration
		delays   []time.Duration
		makespan time.Duration
		epochs   int
	)
	push := func(e *event) {
		e.seq = seq
		seq++
		heap.Push(&events, e)
	}
	for i, j := range jobs {
		push(&event{at: j.Arrival, kind: 1, pending: &pendingJob{job: j, seq: i, estimate: estimates[i]}})
	}
	heap.Init(&events)

	// schedule is one scheduling epoch: order the queue, scan, place.
	schedule := func(now time.Duration) error {
		epochs++
		if epochs <= epochSpanCap {
			defer tr.StartSpan(fmt.Sprintf("epoch[%d]", epochs-1))()
		}
		order(pending)
		views := make([]NodeView, len(nodes))
		kept := pending[:0]
		for _, pj := range pending {
			for i, n := range nodes {
				views[i] = NodeView{Index: n.idx, FreeGPUs: n.free, TotalGPUs: n.gpus, FaultScore: n.faultScore}
			}
			pick := policy.Place(pj.job.GPUs, views)
			if pick < 0 {
				kept = append(kept, pj)
				continue
			}
			n := nodes[pick]
			per, err := prices.price(ctx, pj.job, n.plan, n.hardware)
			if err != nil {
				return err
			}
			service := per * time.Duration(pj.job.Repeats)
			n.free -= pj.job.GPUs
			n.jobs++
			n.busyGPU += service * time.Duration(pj.job.GPUs)
			delays = append(delays, now-pj.job.Arrival)
			push(&event{
				at: now + service, kind: 0,
				node: pick, gpus: pj.job.GPUs,
				arrival: pj.job.Arrival,
			})
		}
		pending = kept
		return nil
	}

	for events.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := events[0].at
		for events.Len() > 0 && events[0].at == now {
			e := heap.Pop(&events).(*event)
			switch e.kind {
			case 0: // completion
				nodes[e.node].free += e.gpus
				jcts = append(jcts, now-e.arrival)
				if now > makespan {
					makespan = now
				}
			case 1: // arrival
				pending = append(pending, e.pending)
			}
		}
		if err := schedule(now); err != nil {
			return nil, err
		}
	}
	if len(pending) > 0 {
		// Unreachable with validated specs (every job fits an empty
		// node), kept as a guard against a policy that refuses to place.
		return nil, fmt.Errorf("cluster: %d jobs never placed under policy %s", len(pending), spec.Policy)
	}

	res := &Result{
		Policy: spec.Policy,
		Queue:  spec.Queue,
		Seed:   spec.Seed,
		Nodes:  len(nodes),
		GPUs:   totalGPUs,
		Jobs:   len(jobs),

		Makespan:         makespan,
		JCT:              summarize(jcts),
		QueueDelay:       summarize(delays),
		PerNode:          make([]NodeStat, len(nodes)),
		SchedulingEpochs: epochs,
		DistinctServices: len(prices.memo),
	}
	var busy time.Duration
	for i, n := range nodes {
		util := 0.0
		if makespan > 0 {
			util = float64(n.busyGPU) / float64(makespan*time.Duration(n.gpus))
		}
		res.PerNode[i] = NodeStat{Node: i, Faulted: !n.plan.IsZero(), Jobs: n.jobs, Utilization: util}
		busy += n.busyGPU
	}
	if makespan > 0 {
		res.FleetUtilization = float64(busy) / float64(makespan*time.Duration(res.GPUs))
	}
	return res, nil
}

// summarize reduces a virtual-time sample to its distribution stats.
func summarize(ds []time.Duration) Dist {
	if len(ds) == 0 {
		return Dist{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return Dist{
		Mean: sum / time.Duration(len(sorted)),
		P50:  stats.Quantile(sorted, 0.5),
		P90:  stats.Quantile(sorted, 0.9),
		P99:  stats.Quantile(sorted, 0.99),
		Max:  sorted[len(sorted)-1],
	}
}
