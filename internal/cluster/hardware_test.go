package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

// mixedFleet is one DGX-1 group and one DGX-2 group: 8 + 16 = 24 slots.
func mixedFleet() Spec {
	return Spec{
		Nodes: []NodeSpec{
			{Count: 1},
			{Count: 1, Hardware: "dgx2"},
		},
		Jobs: []Job{
			{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096, Arrival: 0},
			{Model: "lenet", GPUs: 16, Batch: 16, Images: 4096, Arrival: 0},
			{Model: "alexnet", GPUs: 4, Batch: 16, Images: 4096, Arrival: time.Second},
		},
	}
}

// A heterogeneous fleet validates, counts every machine's slots, and
// places the 16-GPU job only where it fits.
func TestHeterogeneousFleet(t *testing.T) {
	spec := mixedFleet()
	if err := spec.Validate(); err != nil {
		t.Fatalf("mixed fleet should validate: %v", err)
	}
	res, err := Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUs != 24 {
		t.Errorf("fleet GPUs = %d, want 8 + 16 = 24", res.GPUs)
	}
	if res.Nodes != 2 {
		t.Errorf("fleet nodes = %d, want 2", res.Nodes)
	}
	// The 16-GPU job cannot fit node 0's 8 slots, so node 1 must have
	// hosted at least it.
	if res.PerNode[1].Jobs < 1 {
		t.Errorf("the DGX-2 node placed %d jobs; the 16-GPU job only fits there", res.PerNode[1].Jobs)
	}
	for _, n := range res.PerNode {
		if n.Utilization < 0 || n.Utilization > 1 {
			t.Errorf("node %d utilization %f out of [0,1]", n.Node, n.Utilization)
		}
	}

	// Determinism across runs holds for heterogeneous fleets too.
	again, err := Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != res.Makespan || again.JCT != res.JCT || again.FleetUtilization != res.FleetUtilization {
		t.Error("heterogeneous fleet simulation is not deterministic")
	}
}

// SJF estimates and placement both price a job on hardware that fits
// it: a 16-GPU job on a DGX-2-only fleet simulates end to end.
func TestSixteenGPUJobOnDGX2Fleet(t *testing.T) {
	spec := Spec{
		Nodes: []NodeSpec{{Count: 1, Hardware: "dgx2"}},
		Jobs: []Job{
			{Model: "resnet", GPUs: 16, Batch: 16, Images: 4096, Arrival: 0},
		},
		Queue: QueueSJF,
	}
	res, err := Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUs != 16 || res.Makespan <= 0 {
		t.Errorf("GPUs = %d, makespan = %v", res.GPUs, res.Makespan)
	}
}

// Hardware-axis validation: unknown machines and fault plans on
// non-DGX-1 groups are rejected; over-capacity jobs name the machine
// they were sized against.
func TestHardwareValidation(t *testing.T) {
	unknown := mixedFleet()
	unknown.Nodes[1].Hardware = "dgx-3000"
	if err := unknown.Validate(); err == nil || !strings.Contains(err.Error(), "unknown hardware") {
		t.Errorf("unknown hardware: Validate() = %v", err)
	}

	mismatched := mixedFleet()
	mismatched.Nodes[1].Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}}}
	if err := mismatched.Validate(); err == nil || !strings.Contains(err.Error(), "fault plans describe the DGX-1") {
		t.Errorf("fault plan on dgx2 group: Validate() = %v", err)
	}
	// The same plan on the DGX-1 group stays legal.
	faulted := mixedFleet()
	faulted.Nodes[0].Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}}}
	if err := faulted.Validate(); err != nil {
		t.Errorf("fault plan on dgx1 group: %v", err)
	}

	over := Spec{
		Nodes: []NodeSpec{{Count: 2}},
		Jobs:  []Job{{Model: "lenet", GPUs: 16, Batch: 16, Images: 4096}},
	}
	err := over.Validate()
	if err == nil || !strings.Contains(err.Error(), "the DGX-1 has 1..8") {
		t.Errorf("16-GPU job on an all-DGX-1 fleet: Validate() = %v", err)
	}
}
