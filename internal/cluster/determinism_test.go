package cluster

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/faults"
)

// The cluster simulator must be deterministic end to end: the same Spec
// (same seed) produces a byte-identical JSON Result, whatever the wall
// clock reads and whatever the core caches already hold. This mirrors
// the experiments determinism guard — it is what makes policy
// comparisons exact rather than statistical.
func TestSimulateDeterministic(t *testing.T) {
	spec := Spec{
		Nodes: []NodeSpec{
			{Faults: &faults.Plan{Stragglers: []faults.Straggler{{GPU: 0, Slowdown: 1.5}}}},
			{Count: 2},
		},
		Mix:    &Mix{Jobs: 40, MeanInterarrival: 30 * time.Second},
		Policy: PolicyFragAware,
		Queue:  QueueSJF,
		Seed:   42,
	}
	a, err := Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Sleep so any hidden wall-clock dependence (trace generation,
	// event ordering, stats) would shift between the runs.
	time.Sleep(10 * time.Millisecond)
	b, err := Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("identical specs produced different results:\n%s\n%s", ja, jb)
	}
}

// Trace generation is a pure function of (Mix, seed): repeated calls are
// identical, different seeds differ, and virtual arrival times never
// come from the wall clock (they are offsets from zero, nondecreasing).
func TestGenerateTraceDeterministic(t *testing.T) {
	m := Mix{Jobs: 200, MeanInterarrival: DefaultMeanInterarrival, MaxRepeats: DefaultMaxRepeats}
	a, err := json.Marshal(GenerateTrace(m, 1))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	b, err := json.Marshal(GenerateTrace(m, 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("same seed generated different traces")
	}
	c, err := json.Marshal(GenerateTrace(m, 2))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(c) {
		t.Error("different seeds generated identical traces")
	}
}

func TestGenerateTraceShape(t *testing.T) {
	m := Mix{Jobs: 500, MeanInterarrival: DefaultMeanInterarrival, MaxRepeats: DefaultMaxRepeats}
	jobs := GenerateTrace(m, 3)
	if len(jobs) != m.Jobs {
		t.Fatalf("generated %d jobs, want %d", len(jobs), m.Jobs)
	}
	small, large := 0, 0
	var last time.Duration
	for i, j := range jobs {
		if j.Arrival < last {
			t.Fatalf("job %d arrives at %v before its predecessor at %v", i, j.Arrival, last)
		}
		last = j.Arrival
		if w := j.workload(nil, ""); w.Validate() != nil {
			t.Fatalf("generated job %d invalid: %+v", i, j)
		}
		switch j.GPUs {
		case 1:
			small++
		case 8:
			large++
		}
	}
	// The PAI-modeled mix: single-GPU jobs dominate, 8-GPU jobs are a
	// thin tail. Loose bounds — the point is the shape, not the decimals.
	if small < len(jobs)/2 {
		t.Errorf("only %d/%d single-GPU jobs; the mix should skew small", small, len(jobs))
	}
	if large == 0 || large > len(jobs)/5 {
		t.Errorf("%d/%d 8-GPU jobs; want a thin but non-empty tail", large, len(jobs))
	}
}
