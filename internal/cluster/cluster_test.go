package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

// twoNodeSpec is a small explicit-trace spec the behavioural tests share:
// two healthy nodes, five jobs arriving close together.
func twoNodeSpec() Spec {
	return Spec{
		Nodes: []NodeSpec{{Count: 2}},
		Jobs: []Job{
			{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096, Arrival: 0},
			{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096, Arrival: 0},
			{Model: "alexnet", GPUs: 4, Batch: 16, Images: 4096, Arrival: time.Second},
			{Model: "lenet", GPUs: 8, Batch: 16, Images: 4096, Arrival: 2 * time.Second},
			{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096, Arrival: 2 * time.Second, Repeats: 3},
		},
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no nodes", func(s *Spec) { s.Nodes = nil }, "no nodes"},
		{"no trace", func(s *Spec) { s.Jobs = nil }, "no trace"},
		{"jobs and mix", func(s *Spec) { s.Mix = &Mix{Jobs: 5} }, "mutually exclusive"},
		{"bad model", func(s *Spec) { s.Jobs[0].Model = "vgg" }, "unknown model"},
		{"bad gpus", func(s *Spec) { s.Jobs[0].GPUs = 9 }, "out of range"},
		{"negative arrival", func(s *Spec) { s.Jobs[0].Arrival = -1 }, "negative arrival"},
		{"negative repeats", func(s *Spec) { s.Jobs[0].Repeats = -1 }, "negative repeat"},
		{"bad policy", func(s *Spec) { s.Policy = "tetris" }, "unknown policy"},
		{"bad queue", func(s *Spec) { s.Queue = "lifo" }, "unknown queue"},
		{"bad plan", func(s *Spec) {
			s.Nodes[0].Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 5}}}
		}, "no NVLink"},
		{"huge fleet", func(s *Spec) { s.Nodes[0].Count = MaxNodes + 1 }, "cap"},
		{"bad mix size", func(s *Spec) { s.Jobs = nil; s.Mix = &Mix{Jobs: MaxJobs + 1} }, "outside"},
	}
	for _, tc := range cases {
		s := twoNodeSpec()
		tc.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := twoNodeSpec().Validate(); err != nil {
		t.Fatalf("base spec should validate: %v", err)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	s := twoNodeSpec().Normalize()
	if s.Policy != PolicyFirstFit || s.Queue != QueueFIFO || s.Seed != 1 {
		t.Errorf("defaults not applied: policy=%q queue=%q seed=%d", s.Policy, s.Queue, s.Seed)
	}
	if s.Jobs[0].Method != "nccl" || s.Jobs[0].Repeats != 1 || s.Jobs[0].Name != "job[0]" {
		t.Errorf("job defaults not applied: %+v", s.Jobs[0])
	}
	if s.Jobs[4].Repeats != 3 {
		t.Errorf("explicit repeats overwritten: %+v", s.Jobs[4])
	}
}

func TestSimulateInvariants(t *testing.T) {
	res, err := Simulate(context.Background(), twoNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 5 || res.Nodes != 2 || res.GPUs != 16 {
		t.Fatalf("fleet/trace echo wrong: %+v", res)
	}
	if res.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
	if res.JCT.Mean <= 0 || res.JCT.Max < res.JCT.P99 || res.JCT.P99 < res.JCT.P50 {
		t.Errorf("JCT distribution inconsistent: %+v", res.JCT)
	}
	if res.FleetUtilization <= 0 || res.FleetUtilization > 1 {
		t.Errorf("fleet utilization %v outside (0,1]", res.FleetUtilization)
	}
	placed := 0
	for _, n := range res.PerNode {
		placed += n.Jobs
		if n.Utilization < 0 || n.Utilization > 1 {
			t.Errorf("node %d utilization %v outside [0,1]", n.Node, n.Utilization)
		}
	}
	if placed != res.Jobs {
		t.Errorf("placed %d jobs, trace has %d", placed, res.Jobs)
	}
	if res.SchedulingEpochs == 0 {
		t.Error("no scheduling epochs recorded")
	}
	// Jobs 0, 1, 3 and the repeated job 4 share one lenet template
	// fingerprint per (gpus, plan); the whole trace prices far fewer
	// simulations than it has jobs.
	if res.DistinctServices >= res.Jobs {
		t.Errorf("pricing memo ineffective: %d distinct for %d jobs", res.DistinctServices, res.Jobs)
	}
}

// A job with repeats holds its GPUs for repeats x epoch: its JCT must
// dominate the single-run JCT of the same workload.
func TestRepeatsExtendService(t *testing.T) {
	base := Spec{
		Nodes: []NodeSpec{{}},
		Jobs:  []Job{{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096}},
	}
	one, err := Simulate(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	base.Jobs[0].Repeats = 4
	four, err := Simulate(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if four.JCT.Max < 3*one.JCT.Max {
		t.Errorf("4 repeats JCT %v not ~4x single JCT %v", four.JCT.Max, one.JCT.Max)
	}
	if four.DistinctServices != one.DistinctServices {
		t.Errorf("repeats priced extra simulations: %d vs %d", four.DistinctServices, one.DistinctServices)
	}
}

// Backfill: a queued 8-GPU job must not block a 1-GPU job that fits on
// the other node.
func TestBackfillSkipsBlockedHead(t *testing.T) {
	spec := Spec{
		Nodes: []NodeSpec{{Count: 2}},
		Jobs: []Job{
			// Occupy node 0 fully and node 1 partially.
			{Model: "lenet", GPUs: 8, Batch: 16, Images: 262144, Arrival: 0},
			{Model: "lenet", GPUs: 4, Batch: 16, Images: 262144, Arrival: 0},
			// Arrives first among the queued: needs 8, nothing has 8 free.
			{Model: "lenet", GPUs: 8, Batch: 16, Images: 262144, Arrival: time.Millisecond},
			// Arrives later but fits node 1 now; backfill must place it.
			{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096, Arrival: 2 * time.Millisecond},
		},
	}
	res, err := Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// The small job's queue delay is ~0 under backfill; under strict
	// head-of-line blocking it would wait a whole 256K-image epoch.
	if res.QueueDelay.P50 > time.Minute {
		t.Errorf("backfill failed: median queue delay %v", res.QueueDelay.P50)
	}
}

// Cancellation propagates out of the event loop.
func TestSimulateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(ctx, twoNodeSpec()); err == nil {
		t.Error("cancelled simulate should fail")
	}
}

// SJF must complete short jobs ahead of a long head-of-queue job when
// both are pending on a saturated fleet.
func TestSJFFavoursShortJobs(t *testing.T) {
	spec := Spec{
		Nodes: []NodeSpec{{}},
		Jobs: []Job{
			// Saturate the node so everything below queues.
			{Model: "alexnet", GPUs: 8, Batch: 16, Images: 65536, Arrival: 0},
			// Long job arrives before the short ones.
			{Model: "inception-v3", GPUs: 8, Batch: 16, Images: 262144, Arrival: time.Second},
			{Model: "lenet", GPUs: 8, Batch: 16, Images: 4096, Arrival: 2 * time.Second},
			{Model: "lenet", GPUs: 8, Batch: 16, Images: 4096, Arrival: 3 * time.Second},
		},
	}
	fifo, err := Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Queue = QueueSJF
	sjf, err := Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if sjf.JCT.P50 >= fifo.JCT.P50 {
		t.Errorf("SJF median JCT %v not better than FIFO %v", sjf.JCT.P50, fifo.JCT.P50)
	}
	if sjf.Makespan != fifo.Makespan {
		t.Errorf("work-conserving disciplines on one node should share a makespan: %v vs %v", sjf.Makespan, fifo.Makespan)
	}
}

// On a fleet whose first node is badly degraded, the fragmentation/
// fault-aware policy must beat first-fit's tail JCT: first-fit keeps
// feeding the sick node, frag-aware steers onto healthy fabric.
func TestFragAwareBeatsFirstFitOnDegradedFleet(t *testing.T) {
	sick := &faults.Plan{
		FailedLinks: []faults.Link{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}, {A: 0, B: 6}},
		Stragglers:  []faults.Straggler{{GPU: 0, Slowdown: 2}},
	}
	spec := Spec{
		Nodes: []NodeSpec{{Faults: sick}, {Count: 2}},
		Mix:   &Mix{Jobs: 60, MeanInterarrival: 20 * time.Second},
		Seed:  7,
	}
	ff, err := Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Policy = PolicyFragAware
	fa, err := Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if fa.JCT.P99 >= ff.JCT.P99 {
		t.Errorf("frag-aware p99 JCT %v not better than first-fit %v on degraded fleet", fa.JCT.P99, ff.JCT.P99)
	}
}
