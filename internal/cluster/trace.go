// Trace generation: a seeded synthetic job mix modeled on the
// Alibaba-PAI characterization of production DL training clusters. The
// shape it reproduces: arrivals are a Poisson process; most jobs are
// small (single-GPU, small models, modest datasets) and highly
// repetitive (the same template resubmitted many times); a long tail of
// large multi-GPU jobs carries a disproportionate share of the GPU-time.
// Everything draws from one explicit math/rand source — the wall clock
// is never consulted — so a (Mix, seed) pair always generates the same
// trace, byte for byte.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Generated-mix defaults (see Mix).
const (
	DefaultMeanInterarrival = 45 * time.Second
	DefaultMaxRepeats       = 12
)

// weighted is one discrete choice of the mix distributions.
type weighted[T any] struct {
	v T
	w float64
}

// pick draws one value from a weighted table.
func pick[T any](rng *rand.Rand, table []weighted[T]) T {
	total := 0.0
	for _, e := range table {
		total += e.w
	}
	x := rng.Float64() * total
	for _, e := range table {
		x -= e.w
		if x < 0 {
			return e.v
		}
	}
	return table[len(table)-1].v
}

// The PAI-modeled mix tables. GPU demand skews hard toward single-GPU
// jobs (PAI: the majority of jobs are small) with a thin 8-GPU tail;
// models skew toward the shallow end of the zoo; dataset sizes give the
// service-time distribution its heavy tail.
var (
	mixGPUs = []weighted[int]{
		{1, 0.62}, {2, 0.20}, {4, 0.12}, {8, 0.06},
	}
	mixModels = []weighted[string]{
		{"lenet", 0.34}, {"alexnet", 0.30}, {"resnet", 0.16},
		{"googlenet", 0.12}, {"inception-v3", 0.08},
	}
	mixBatches = []weighted[int]{
		{16, 0.5}, {32, 0.3}, {64, 0.2},
	}
	mixImages = []weighted[int64]{
		{16384, 0.60}, {65536, 0.30}, {262144, 0.10},
	}
)

// sampleRepeats draws a heavy-tailed resubmission count in 1..max: a
// Pareto-ish tail (floor of U^-0.8) so most templates recur a handful of
// times and a few recur up to the cap — PAI's "highly repetitive" head.
func sampleRepeats(rng *rand.Rand, max int) int {
	r := int(math.Pow(rng.Float64(), -0.8))
	if r < 1 {
		r = 1
	}
	if r > max {
		r = max
	}
	return r
}

// GenerateTrace expands a normalized mix into a concrete job list:
// templates are sampled from the PAI-modeled tables, each recurs a
// heavy-tailed number of times, and successive arrivals advance the
// virtual clock by exponential inter-arrival gaps (a Poisson process).
// Arrivals come out in nondecreasing time order, named after their
// template and recurrence ("t3.r2"). Deterministic in (m, seed).
func GenerateTrace(m Mix, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, 0, m.Jobs)
	var now time.Duration
	template := 0
	for len(jobs) < m.Jobs {
		t := Job{
			Model:  pick(rng, mixModels),
			GPUs:   pick(rng, mixGPUs),
			Batch:  pick(rng, mixBatches),
			Method: "nccl",
			Images: pick(rng, mixImages),
		}
		repeats := sampleRepeats(rng, m.MaxRepeats)
		for r := 0; r < repeats && len(jobs) < m.Jobs; r++ {
			now += time.Duration(rng.ExpFloat64() * float64(m.MeanInterarrival))
			j := t
			j.Name = fmt.Sprintf("t%d.r%d", template, r)
			j.Arrival = now
			j.Repeats = 1
			jobs = append(jobs, j)
		}
		template++
	}
	return jobs
}
