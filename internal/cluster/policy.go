// Placement policies and queue disciplines. A Policy sees only the
// placement-relevant view of the fleet (free slots, fault severity) and
// picks a node; the event loop owns everything else. All policies are
// deterministic: candidates are scanned in node-index order and ties
// break toward the lowest index, so a policy never injects ordering
// noise into the virtual timeline.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/faults"
)

// Policy names.
const (
	PolicyFirstFit  = "first-fit"
	PolicyBestFit   = "best-fit"
	PolicyFragAware = "frag-aware"
)

// Queue discipline names.
const (
	QueueFIFO = "fifo"
	QueueSJF  = "sjf"
)

// NodeView is the placement-relevant view of one node.
type NodeView struct {
	// Index is the node's fleet index.
	Index int
	// FreeGPUs is the node's unoccupied slot count.
	FreeGPUs int
	// TotalGPUs is the node's slot count (NodeGPUs).
	TotalGPUs int
	// FaultScore summarizes how degraded the node's fabric is (0 =
	// healthy; roughly one point per failed link / fully-lost lane /
	// 2x straggler).
	FaultScore float64
}

// Policy picks the node a job is placed on.
type Policy interface {
	// Name is the spec spelling of the policy.
	Name() string
	// Place returns the fleet index of the chosen node, or -1 when no
	// node can hold gpus free slots. nodes come in fleet-index order.
	Place(gpus int, nodes []NodeView) int
}

// firstFit takes the lowest-indexed node with room — the baseline greedy
// policy, blind to packing and fabric health.
type firstFit struct{}

func (firstFit) Name() string { return PolicyFirstFit }

func (firstFit) Place(gpus int, nodes []NodeView) int {
	for _, n := range nodes {
		if n.FreeGPUs >= gpus {
			return n.Index
		}
	}
	return -1
}

// bestFit bin-packs by GPU count: the node whose free slots exceed the
// demand by the least, keeping large contiguous capacity available for
// large jobs. Ties break toward the lowest index.
type bestFit struct{}

func (bestFit) Name() string { return PolicyBestFit }

func (bestFit) Place(gpus int, nodes []NodeView) int {
	best, bestSlack := -1, 0
	for _, n := range nodes {
		if n.FreeGPUs < gpus {
			continue
		}
		slack := n.FreeGPUs - gpus
		if best == -1 || slack < bestSlack {
			best, bestSlack = n.Index, slack
		}
	}
	return best
}

// fragAware scores candidates by what the placement does to the fabric's
// useful shape. The DGX-1's hybrid cube-mesh is built from two
// fully-connected 4-GPU quads, so NVLink-efficient jobs want whole quads:
// the policy penalizes placements that leave a node's free capacity as a
// broken quad (free % 4), penalizes breaking a pristine node with a
// small job (keep empty nodes available for 4- and 8-GPU arrivals), and
// — the fleet-health half — penalizes faulted nodes in proportion to
// their degradation, steering work onto healthy fabric while the sick
// node still absorbs overflow rather than idling.
type fragAware struct{}

func (fragAware) Name() string { return PolicyFragAware }

func (fragAware) Place(gpus int, nodes []NodeView) int {
	best, bestScore := -1, 0.0
	for _, n := range nodes {
		if n.FreeGPUs < gpus {
			continue
		}
		after := n.FreeGPUs - gpus
		score := 2*n.FaultScore + float64(after%4)/4
		if n.FreeGPUs == n.TotalGPUs && gpus < 4 {
			score += 0.5
		}
		if best == -1 || score < bestScore {
			best, bestScore = n.Index, score
		}
	}
	return best
}

// policyByName resolves a spec's policy spelling.
func policyByName(name string) (Policy, error) {
	switch name {
	case PolicyFirstFit:
		return firstFit{}, nil
	case PolicyBestFit:
		return bestFit{}, nil
	case PolicyFragAware:
		return fragAware{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown policy %q (available: %s)", name, strings.Join(Policies(), ", "))
}

// Policies lists the placement policies in presentation order.
func Policies() []string {
	return []string{PolicyFirstFit, PolicyBestFit, PolicyFragAware}
}

// Queues lists the queue disciplines in presentation order.
func Queues() []string { return []string{QueueFIFO, QueueSJF} }

// queueOrderFn sorts the pending queue into scan order. The loop scans
// in this order and backfills: a job that does not fit is skipped, not
// head-of-line blocking (the common cluster-scheduler compromise; strict
// blocking would let one 8-GPU job idle the whole fleet).
type queueOrderFn func(pending []*pendingJob)

// queueByName resolves a spec's queue spelling.
func queueByName(name string) (queueOrderFn, error) {
	switch name {
	case QueueFIFO:
		// Arrival order; seq breaks same-instant ties deterministically.
		return func(pending []*pendingJob) {
			sort.SliceStable(pending, func(i, j int) bool {
				if pending[i].job.Arrival != pending[j].job.Arrival {
					return pending[i].job.Arrival < pending[j].job.Arrival
				}
				return pending[i].seq < pending[j].seq
			})
		}, nil
	case QueueSJF:
		// Shortest (healthy-machine estimate) first. The estimate is the
		// healthy epoch time x repeats — the scheduler cannot know which
		// node the job will land on, so it ranks by the job's intrinsic
		// size, exactly like an SJF queue fed by user-declared runtimes.
		return func(pending []*pendingJob) {
			sort.SliceStable(pending, func(i, j int) bool {
				if pending[i].estimate != pending[j].estimate {
					return pending[i].estimate < pending[j].estimate
				}
				return pending[i].seq < pending[j].seq
			})
		}, nil
	}
	return nil, fmt.Errorf("cluster: unknown queue %q (available: %s)", name, strings.Join(Queues(), ", "))
}

// faultScore summarizes a plan's severity for NodeView: one point per
// failed link, the lost fraction per degraded lane, the excess factor
// per straggler, and the contended PCIe fraction.
func faultScore(p *faults.Plan) float64 {
	if p.IsZero() {
		return 0
	}
	s := float64(len(p.FailedLinks))
	for _, d := range p.DegradedLinks {
		s += 1 - d.Fraction
	}
	for _, st := range p.Stragglers {
		s += st.Slowdown - 1
	}
	return s + p.PCIeContention
}
