package cluster

import (
	"testing"
	"time"

	"repro/internal/faults"
)

func views(free ...int) []NodeView {
	out := make([]NodeView, len(free))
	for i, f := range free {
		out[i] = NodeView{Index: i, FreeGPUs: f, TotalGPUs: NodeGPUs}
	}
	return out
}

func TestFirstFit(t *testing.T) {
	p := firstFit{}
	if got := p.Place(4, views(2, 8, 8)); got != 1 {
		t.Errorf("first-fit picked %d, want 1", got)
	}
	if got := p.Place(8, views(2, 4, 6)); got != -1 {
		t.Errorf("first-fit placed an unplaceable job on %d", got)
	}
}

func TestBestFitPacksTightest(t *testing.T) {
	p := bestFit{}
	// 2 free slots fits a 2-GPU job exactly; first-fit would take node 0.
	if got := p.Place(2, views(8, 2, 4)); got != 1 {
		t.Errorf("best-fit picked %d, want 1 (tightest fit)", got)
	}
	// Ties break toward the lowest index.
	if got := p.Place(4, views(4, 4)); got != 0 {
		t.Errorf("best-fit tie picked %d, want 0", got)
	}
}

func TestFragAwarePrefersWholeQuads(t *testing.T) {
	p := fragAware{}
	// A 4-GPU job on a node with 6 free leaves a broken quad (2); on a
	// node with 4 free it leaves none.
	if got := p.Place(4, views(6, 4)); got != 1 {
		t.Errorf("frag-aware picked %d, want 1 (keeps quads whole)", got)
	}
	// A small job should avoid breaking a pristine node when a
	// fragmented one is available.
	if got := p.Place(1, views(8, 5)); got != 1 {
		t.Errorf("frag-aware picked %d, want 1 (spare the pristine node)", got)
	}
}

func TestFragAwarePenalizesFaultedNodes(t *testing.T) {
	p := fragAware{}
	vs := views(8, 8)
	vs[0].FaultScore = 4.75
	if got := p.Place(8, vs); got != 1 {
		t.Errorf("frag-aware picked the faulted node %d, want 1", got)
	}
	// With only the faulted node free, it still places there rather than
	// queueing forever.
	vs[1].FreeGPUs = 0
	if got := p.Place(8, vs); got != 0 {
		t.Errorf("frag-aware refused the only candidate, got %d", got)
	}
}

func TestQueueOrdering(t *testing.T) {
	mk := func(seq int, arrival, est time.Duration) *pendingJob {
		return &pendingJob{seq: seq, estimate: est, job: Job{Arrival: arrival}}
	}
	pending := []*pendingJob{
		mk(0, 3*time.Second, 10*time.Second),
		mk(1, 1*time.Second, 30*time.Second),
		mk(2, 2*time.Second, 20*time.Second),
	}
	fifo, err := queueByName(QueueFIFO)
	if err != nil {
		t.Fatal(err)
	}
	fifo(pending)
	if pending[0].seq != 1 || pending[1].seq != 2 || pending[2].seq != 0 {
		t.Errorf("fifo order wrong: %d %d %d", pending[0].seq, pending[1].seq, pending[2].seq)
	}
	sjf, err := queueByName(QueueSJF)
	if err != nil {
		t.Fatal(err)
	}
	sjf(pending)
	if pending[0].seq != 0 || pending[1].seq != 2 || pending[2].seq != 1 {
		t.Errorf("sjf order wrong: %d %d %d", pending[0].seq, pending[1].seq, pending[2].seq)
	}
}

func TestFaultScore(t *testing.T) {
	if got := faultScore(nil); got != 0 {
		t.Errorf("healthy score %v, want 0", got)
	}
	p := &faults.Plan{
		FailedLinks:    []faults.Link{{A: 0, B: 1}},
		DegradedLinks:  []faults.Degrade{{A: 0, B: 2, Fraction: 0.4}},
		Stragglers:     []faults.Straggler{{GPU: 3, Slowdown: 1.5}},
		PCIeContention: 0.25,
	}
	want := 1 + 0.6 + 0.5 + 0.25
	if got := faultScore(p); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("faultScore = %v, want %v", got, want)
	}
}

func TestPolicyRegistry(t *testing.T) {
	for _, name := range Policies() {
		p, err := policyByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("policyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := policyByName("random"); err == nil {
		t.Error("unknown policy should error")
	}
	for _, name := range Queues() {
		if _, err := queueByName(name); err != nil {
			t.Errorf("queueByName(%q): %v", name, err)
		}
	}
}
