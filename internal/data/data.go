// Package data describes training datasets and mini-batch schedules. The
// simulator never touches pixel values — epoch structure (how many
// iterations, how many bytes staged to each GPU) is what the measurements
// consume.
package data

import (
	"fmt"

	"repro/internal/dnn"
	"repro/internal/units"
)

// Dataset is a training set descriptor.
type Dataset struct {
	Name   string
	Images int64
}

// ImageNetSubset returns the paper's 256K-image ImageNet subset (scaled by
// a factor for weak scaling).
func ImageNetSubset(images int64) Dataset {
	return Dataset{Name: "imagenet-subset", Images: images}
}

// PaperDatasetImages is the strong-scaling dataset size (256K images).
const PaperDatasetImages int64 = 256 * 1024

// Scaling selects how the dataset grows with GPU count.
type Scaling int

// Scaling regimes (paper §IV-C).
const (
	// StrongScaling keeps the dataset fixed as GPUs are added.
	StrongScaling Scaling = iota
	// WeakScaling grows the dataset proportionally to GPU count
	// (256K, 512K, 1M, 2M images for 1, 2, 4, 8 GPUs).
	WeakScaling
)

// String names the regime.
func (s Scaling) String() string {
	if s == WeakScaling {
		return "weak"
	}
	return "strong"
}

// EffectiveImages returns the dataset size for a GPU count under the
// scaling regime.
func EffectiveImages(base int64, gpus int, s Scaling) int64 {
	if s == WeakScaling {
		return base * int64(gpus)
	}
	return base
}

// Schedule is one epoch's mini-batch plan.
type Schedule struct {
	Images      int64
	BatchPerGPU int
	GPUs        int
	// Iterations is the number of synchronous steps in the epoch; every
	// GPU processes one mini-batch per iteration.
	Iterations int64
	// ImageBytes is the staged size of one input image.
	ImageBytes units.Bytes
}

// NewSchedule plans an epoch. Images that do not fill a final global batch
// still cost an iteration (ceil division), matching framework behaviour.
func NewSchedule(ds Dataset, input dnn.Shape, batchPerGPU, gpus int) (Schedule, error) {
	if batchPerGPU <= 0 || gpus <= 0 {
		return Schedule{}, fmt.Errorf("data: bad schedule batch=%d gpus=%d", batchPerGPU, gpus)
	}
	if ds.Images <= 0 {
		return Schedule{}, fmt.Errorf("data: empty dataset %q", ds.Name)
	}
	global := int64(batchPerGPU) * int64(gpus)
	iters := (ds.Images + global - 1) / global
	return Schedule{
		Images:      ds.Images,
		BatchPerGPU: batchPerGPU,
		GPUs:        gpus,
		Iterations:  iters,
		ImageBytes:  units.BytesOf(input.Elems(), units.Float32Size),
	}, nil
}

// BatchBytes returns the size of one GPU's staged mini-batch.
func (s Schedule) BatchBytes() units.Bytes {
	return s.ImageBytes * units.Bytes(s.BatchPerGPU)
}
