package data

import (
	"testing"
	"testing/quick"

	"repro/internal/dnn"
	"repro/internal/units"
)

var input224 = dnn.Shape{C: 3, H: 224, W: 224}

func TestScheduleIterations(t *testing.T) {
	ds := ImageNetSubset(PaperDatasetImages)
	s, err := NewSchedule(ds, input224, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations != 4096 {
		t.Errorf("iterations = %d, want 4096 (256K / (16*4))", s.Iterations)
	}
}

func TestScheduleCeil(t *testing.T) {
	s, err := NewSchedule(Dataset{Name: "x", Images: 100}, input224, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations != 2 {
		t.Errorf("iterations = %d, want 2 (ceil(100/64))", s.Iterations)
	}
}

func TestScheduleErrors(t *testing.T) {
	ds := ImageNetSubset(PaperDatasetImages)
	if _, err := NewSchedule(ds, input224, 0, 4); err == nil {
		t.Error("zero batch should error")
	}
	if _, err := NewSchedule(ds, input224, 16, 0); err == nil {
		t.Error("zero gpus should error")
	}
	if _, err := NewSchedule(Dataset{}, input224, 16, 1); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestEffectiveImages(t *testing.T) {
	if got := EffectiveImages(PaperDatasetImages, 8, StrongScaling); got != PaperDatasetImages {
		t.Errorf("strong scaling changed dataset: %d", got)
	}
	if got := EffectiveImages(PaperDatasetImages, 8, WeakScaling); got != 8*PaperDatasetImages {
		t.Errorf("weak scaling = %d, want 8x", got)
	}
}

func TestScalingString(t *testing.T) {
	if StrongScaling.String() != "strong" || WeakScaling.String() != "weak" {
		t.Error("scaling names wrong")
	}
}

func TestBatchBytes(t *testing.T) {
	s, err := NewSchedule(ImageNetSubset(1024), input224, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := units.BytesOf(int64(3*224*224), units.Float32Size) * 32
	if s.BatchBytes() != want {
		t.Errorf("batch bytes = %v, want %v", s.BatchBytes(), want)
	}
}

// Property: weak scaling keeps per-GPU iteration count constant; strong
// scaling divides it by the GPU count (up to ceil rounding).
func TestScalingIterationProperty(t *testing.T) {
	f := func(g uint8) bool {
		gpus := 1 << (g % 4) // 1,2,4,8
		base := PaperDatasetImages
		weak, err := NewSchedule(ImageNetSubset(EffectiveImages(base, gpus, WeakScaling)), input224, 16, gpus)
		if err != nil {
			return false
		}
		one, err := NewSchedule(ImageNetSubset(base), input224, 16, 1)
		if err != nil {
			return false
		}
		return weak.Iterations == one.Iterations
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
