package profiler

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderASCII draws the retained intervals of the [from, to) window as a
// terminal Gantt chart (the paper's Figure 1 in ASCII): one row per track,
// one column per time slice, the dominant stage of each slice picked as
// the glyph. Width is the number of columns (minimum 10).
func (p *Profile) RenderASCII(from, to time.Duration, width int) string {
	if width < 10 {
		width = 10
	}
	if to <= from {
		return "(empty window)\n"
	}
	glyph := map[Stage]byte{
		StageFP:       'F',
		StageBP:       'B',
		StageWU:       'W',
		StageDataLoad: 'D',
		StageOther:    'o',
	}

	// Collect per-track slice occupancy.
	type cell map[Stage]time.Duration
	rows := map[string][]cell{}
	slice := (to - from) / time.Duration(width)
	if slice <= 0 {
		slice = 1
	}
	for _, iv := range p.intervals {
		if iv.End <= from || iv.Start >= to {
			continue
		}
		r, ok := rows[iv.Track]
		if !ok {
			r = make([]cell, width)
			for i := range r {
				r[i] = cell{}
			}
			rows[iv.Track] = r
		}
		start, end := iv.Start, iv.End
		if start < from {
			start = from
		}
		if end > to {
			end = to
		}
		for c := int((start - from) / slice); c < width; c++ {
			cs := from + time.Duration(c)*slice
			ce := cs + slice
			if cs >= end {
				break
			}
			lo, hi := start, end
			if cs > lo {
				lo = cs
			}
			if ce < hi {
				hi = ce
			}
			if hi > lo {
				rows[iv.Track][c][iv.Stage] += hi - lo
			}
		}
	}
	if len(rows) == 0 {
		return "(no activity in window)\n"
	}

	tracks := make([]string, 0, len(rows))
	for tname := range rows {
		tracks = append(tracks, tname)
	}
	sort.Strings(tracks)

	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (one column = %v)\n", from, to, slice)
	for _, tname := range tracks {
		fmt.Fprintf(&b, "%-14s|", tname)
		for _, c := range rows[tname] {
			var best Stage
			var bestDur time.Duration
			occupied := time.Duration(0)
			for s, d := range c {
				occupied += d
				if d > bestDur {
					best, bestDur = s, d
				}
			}
			switch {
			case occupied == 0:
				b.WriteByte(' ')
			case occupied < slice/4:
				b.WriteByte('.')
			default:
				b.WriteByte(glyph[best])
			}
		}
		b.WriteString("|\n")
	}
	b.WriteString("legend: F=forward B=backward W=weight-update D=data o=other .=sparse\n")
	return b.String()
}
