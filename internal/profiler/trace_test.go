package profiler

import (
	"strings"
	"testing"
	"time"
)

// The Chrome trace export is consumed byte-for-byte by external viewers
// and diffed in CI artifacts, so it must be deterministic and exactly the
// documented shape. This golden test pins the full output for a small
// detailed profile.
func TestExportChromeTraceGolden(t *testing.T) {
	p := NewDetailed(16)
	p.Record(Interval{
		Kind: KindKernel, Name: "volta_sgemm", Stage: StageFP,
		Track: "gpu0", Start: 1 * time.Microsecond, End: 3 * time.Microsecond,
	})
	p.Record(Interval{
		Kind: KindTransfer, Name: "ncclAllReduce", Stage: StageWU,
		Track: "link0-1", Start: 3 * time.Microsecond, End: 4500 * time.Nanosecond,
	})

	const want = `{"traceEvents":[` +
		`{"name":"process_name","cat":"","ph":"M","ts":0,"dur":0,"pid":1,"tid":0,"args":{"name":"dgxsim"}},` +
		`{"name":"thread_name","cat":"","ph":"M","ts":0,"dur":0,"pid":1,"tid":1,"args":{"name":"gpu0"}},` +
		`{"name":"thread_name","cat":"","ph":"M","ts":0,"dur":0,"pid":1,"tid":2,"args":{"name":"link0-1"}},` +
		`{"name":"volta_sgemm","cat":"kernel","ph":"X","ts":1,"dur":2,"pid":1,"tid":1,"args":{"stage":"FP"}},` +
		`{"name":"ncclAllReduce","cat":"transfer","ph":"X","ts":3,"dur":1.5,"pid":1,"tid":2,"args":{"stage":"WU"}}` +
		`]}` + "\n"

	var b strings.Builder
	if err := p.ExportChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("trace output:\n got %s\nwant %s", b.String(), want)
	}

	// Exporting again must produce identical bytes — no map-order leakage.
	var b2 strings.Builder
	if err := p.ExportChromeTrace(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Error("repeated export produced different bytes")
	}
}

// An aggregate-only profile retains no intervals; its trace must still be
// a valid, loadable document rather than an error or a null array.
func TestExportChromeTraceEmpty(t *testing.T) {
	var b strings.Builder
	if err := New().ExportChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), `{"traceEvents":[]}`+"\n"; got != want {
		t.Errorf("empty trace = %s, want %s", got, want)
	}
}
