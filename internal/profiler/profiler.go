// Package profiler is the simulator's nvprof analog: it accumulates kernel,
// CUDA-API, and transfer statistics, per-training-stage wall time, and
// (optionally) detailed intervals that can be exported as a Chrome trace.
//
// Two granularities are supported. Aggregate mode (the default) keeps only
// counters — cheap enough to profile hundreds of simulated epochs. Detail
// mode additionally retains individual intervals, bounded by a cap, for
// timeline rendering (the paper's Figure 1).
package profiler

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stage labels the phase of DNN training an activity belongs to, following
// the paper's decomposition.
type Stage int

// Training stages.
const (
	StageOther Stage = iota
	StageFP
	StageBP
	StageWU
	StageDataLoad
)

// String names the stage as the paper does.
func (s Stage) String() string {
	switch s {
	case StageFP:
		return "FP"
	case StageBP:
		return "BP"
	case StageWU:
		return "WU"
	case StageDataLoad:
		return "DataLoad"
	case StageOther:
		return "Other"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Kind classifies a recorded activity.
type Kind int

// Activity kinds.
const (
	KindKernel Kind = iota
	KindAPI
	KindTransfer
	KindMarker
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindAPI:
		return "api"
	case KindTransfer:
		return "transfer"
	case KindMarker:
		return "marker"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Interval is one recorded activity on a track (a GPU queue, a host thread,
// a link direction).
type Interval struct {
	Kind  Kind
	Name  string
	Stage Stage
	Track string
	Start time.Duration
	End   time.Duration
}

// Duration returns the interval's extent.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// Stat aggregates calls of one name.
type Stat struct {
	Calls int64
	Total time.Duration
}

// Mean returns the average duration per call.
func (s Stat) Mean() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Calls)
}

// numStages is the number of defined Stage values; stage accounting uses
// fixed arrays indexed by Stage, keeping Record free of map overhead on
// the simulation hot path.
const numStages = int(StageDataLoad) + 1

// Profile accumulates statistics for one run.
type Profile struct {
	api       map[string]*Stat
	kernels   map[string]*Stat
	transfers map[string]*Stat
	stageBusy [numStages]time.Duration // summed busy time attributed to each stage
	stageWall [numStages]time.Duration // wall-clock windows set by the trainer

	detail    bool
	maxDetail int
	intervals []Interval
	dropped   int64
}

// New returns an aggregate-only profile.
func New() *Profile {
	return &Profile{
		api:       make(map[string]*Stat),
		kernels:   make(map[string]*Stat),
		transfers: make(map[string]*Stat),
	}
}

// NewDetailed returns a profile that also retains up to maxIntervals
// individual intervals (further intervals still feed the aggregates).
func NewDetailed(maxIntervals int) *Profile {
	p := New()
	p.detail = true
	p.maxDetail = maxIntervals
	return p
}

// Record adds one activity.
func (p *Profile) Record(iv Interval) {
	var m map[string]*Stat
	switch iv.Kind {
	case KindKernel:
		m = p.kernels
	case KindAPI:
		m = p.api
	case KindTransfer:
		m = p.transfers
	default:
		m = nil
	}
	if m != nil {
		st := m[iv.Name]
		if st == nil {
			st = &Stat{}
			m[iv.Name] = st
		}
		st.Calls++
		st.Total += iv.Duration()
	}
	if s := int(iv.Stage); s >= 0 && s < numStages {
		p.stageBusy[s] += iv.Duration()
	}
	if p.detail {
		if len(p.intervals) < p.maxDetail {
			p.intervals = append(p.intervals, iv)
		} else {
			p.dropped++
		}
	}
}

// AddStageWall accumulates wall-clock time attributed to a stage window.
// The trainer calls this with per-iteration stage spans.
func (p *Profile) AddStageWall(s Stage, d time.Duration) {
	if i := int(s); i >= 0 && i < numStages {
		p.stageWall[i] += d
	}
}

// StageWall returns the accumulated wall time of a stage.
func (p *Profile) StageWall(s Stage) time.Duration {
	if i := int(s); i >= 0 && i < numStages {
		return p.stageWall[i]
	}
	return 0
}

// StageBusy returns the summed busy time attributed to a stage across all
// recorded activities.
func (p *Profile) StageBusy(s Stage) time.Duration {
	if i := int(s); i >= 0 && i < numStages {
		return p.stageBusy[i]
	}
	return 0
}

// API returns the aggregate for one API name (zero Stat if absent).
func (p *Profile) API(name string) Stat {
	if s := p.api[name]; s != nil {
		return *s
	}
	return Stat{}
}

// Kernel returns the aggregate for one kernel name (zero Stat if absent).
func (p *Profile) Kernel(name string) Stat {
	if s := p.kernels[name]; s != nil {
		return *s
	}
	return Stat{}
}

// Transfer returns the aggregate for one transfer name (zero Stat if absent).
func (p *Profile) Transfer(name string) Stat {
	if s := p.transfers[name]; s != nil {
		return *s
	}
	return Stat{}
}

// APITotal returns the summed duration of all API calls.
func (p *Profile) APITotal() time.Duration {
	var d time.Duration
	for _, s := range p.api {
		d += s.Total
	}
	return d
}

// APINames returns recorded API names sorted by descending total time.
func (p *Profile) APINames() []string {
	names := make([]string, 0, len(p.api))
	for n := range p.api {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := p.api[names[i]], p.api[names[j]]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		return names[i] < names[j]
	})
	return names
}

// KernelNames returns recorded kernel names sorted by descending total time.
func (p *Profile) KernelNames() []string {
	names := make([]string, 0, len(p.kernels))
	for n := range p.kernels {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := p.kernels[names[i]], p.kernels[names[j]]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		return names[i] < names[j]
	})
	return names
}

// Intervals returns the retained detailed intervals (detail mode only).
func (p *Profile) Intervals() []Interval {
	out := make([]Interval, len(p.intervals))
	copy(out, p.intervals)
	return out
}

// Dropped reports how many intervals exceeded the detail cap.
func (p *Profile) Dropped() int64 { return p.dropped }

// Scale multiplies every aggregate by f. The trainer uses this to
// extrapolate a steady-state iteration window to a full epoch: counters are
// linear in iteration count, so scaling is exact for the steady portion.
// Detailed intervals are left untouched (they describe the simulated
// window, not the extrapolation).
func (p *Profile) Scale(f float64) {
	scaleMap := func(m map[string]*Stat) {
		for _, s := range m {
			s.Calls = int64(float64(s.Calls)*f + 0.5)
			s.Total = time.Duration(float64(s.Total) * f)
		}
	}
	scaleMap(p.api)
	scaleMap(p.kernels)
	scaleMap(p.transfers)
	for i := range p.stageBusy {
		p.stageBusy[i] = time.Duration(float64(p.stageBusy[i]) * f)
	}
	for i := range p.stageWall {
		p.stageWall[i] = time.Duration(float64(p.stageWall[i]) * f)
	}
}

// Clone returns a deep copy of the profile. The compiled-window cache in
// the training layer keeps one immutable window profile per artifact and
// clones it for every extrapolated result, so callers can Scale their
// copy without touching the shared original. All cloned Stat values live
// in one backing arena sized up front — the warm extrapolation path calls
// Clone per request, and one allocation per map entry was most of its
// per-call garbage.
func (p *Profile) Clone() *Profile {
	arena := make([]Stat, 0, len(p.api)+len(p.kernels)+len(p.transfers))
	q := &Profile{
		stageBusy: p.stageBusy,
		stageWall: p.stageWall,
		detail:    p.detail,
		maxDetail: p.maxDetail,
		dropped:   p.dropped,
	}
	q.api, arena = cloneStats(p.api, arena)
	q.kernels, arena = cloneStats(p.kernels, arena)
	q.transfers, _ = cloneStats(p.transfers, arena)
	if p.intervals != nil {
		q.intervals = append([]Interval(nil), p.intervals...)
	}
	return q
}

// cloneStats copies one stat map, placing the copied values in arena.
// The arena's capacity covers every map of the profile, so the appends
// never reallocate and the returned pointers stay valid.
func cloneStats(m map[string]*Stat, arena []Stat) (map[string]*Stat, []Stat) {
	out := make(map[string]*Stat, len(m))
	for n, s := range m {
		arena = append(arena, *s)
		out[n] = &arena[len(arena)-1]
	}
	return out, arena
}

// Merge adds other's aggregates into p. Detailed intervals are appended up
// to p's cap.
func (p *Profile) Merge(other *Profile) {
	mergeMap := func(dst, src map[string]*Stat) {
		for n, s := range src {
			d := dst[n]
			if d == nil {
				d = &Stat{}
				dst[n] = d
			}
			d.Calls += s.Calls
			d.Total += s.Total
		}
	}
	mergeMap(p.api, other.api)
	mergeMap(p.kernels, other.kernels)
	mergeMap(p.transfers, other.transfers)
	for i := range other.stageBusy {
		p.stageBusy[i] += other.stageBusy[i]
	}
	for i := range other.stageWall {
		p.stageWall[i] += other.stageWall[i]
	}
	if p.detail {
		for _, iv := range other.intervals {
			if len(p.intervals) < p.maxDetail {
				p.intervals = append(p.intervals, iv)
			} else {
				p.dropped++
			}
		}
	}
}

// Summary renders an nvprof-style text summary: top APIs and kernels with
// call counts and total times.
func (p *Profile) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "API calls:\n")
	for _, n := range p.APINames() {
		s := p.api[n]
		fmt.Fprintf(&b, "  %-28s calls=%-10d total=%-14v avg=%v\n", n, s.Calls, s.Total, s.Mean())
	}
	fmt.Fprintf(&b, "Kernels:\n")
	for _, n := range p.KernelNames() {
		s := p.kernels[n]
		fmt.Fprintf(&b, "  %-28s calls=%-10d total=%-14v avg=%v\n", n, s.Calls, s.Total, s.Mean())
	}
	fmt.Fprintf(&b, "Stage wall time: FP=%v BP=%v WU=%v\n",
		p.stageWall[StageFP], p.stageWall[StageBP], p.stageWall[StageWU])
	return b.String()
}
