package profiler

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry in the Chrome trace-event format ("X" complete
// events), the same format nvprof timelines are commonly converted to.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`  // microseconds
	Dur   float64           `json:"dur"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// ExportChromeTrace writes the retained detailed intervals in Chrome
// trace-event JSON (load via chrome://tracing or Perfetto). Tracks map to
// thread IDs; all activity shares one process, named "dgxsim" via a
// process_name metadata event so multi-trace comparisons in Perfetto
// stay labeled. An empty profile exports an empty (but valid) document.
func (p *Profile) ExportChromeTrace(w io.Writer) error {
	ivs := p.Intervals()
	// Stable track numbering: sorted track names.
	trackSet := map[string]bool{}
	for _, iv := range ivs {
		trackSet[iv.Track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for t := range trackSet {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	tid := make(map[string]int, len(tracks))
	for i, t := range tracks {
		tid[t] = i + 1
	}

	events := make([]chromeEvent, 0, len(ivs)+len(tracks)+1)
	if len(ivs) > 0 {
		events = append(events, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   1,
			Args:  map[string]string{"name": "dgxsim"},
		})
	}
	for name, id := range tid {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   id,
			Args:  map[string]string{"name": name},
		})
	}
	// Metadata events first, in deterministic order.
	sort.Slice(events, func(i, j int) bool { return events[i].TID < events[j].TID })
	for _, iv := range ivs {
		events = append(events, chromeEvent{
			Name:  iv.Name,
			Cat:   iv.Kind.String(),
			Phase: "X",
			TS:    float64(iv.Start.Nanoseconds()) / 1e3,
			Dur:   float64(iv.Duration().Nanoseconds()) / 1e3,
			PID:   1,
			TID:   tid[iv.Track],
			Args:  map[string]string{"stage": iv.Stage.String()},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
