package profiler

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func iv(kind Kind, name string, stage Stage, start, end time.Duration) Interval {
	return Interval{Kind: kind, Name: name, Stage: stage, Track: "GPU0", Start: start, End: end}
}

func TestRecordAggregates(t *testing.T) {
	p := New()
	p.Record(iv(KindAPI, "cudaLaunchKernel", StageFP, 0, 4*time.Microsecond))
	p.Record(iv(KindAPI, "cudaLaunchKernel", StageFP, 10, 10+4*time.Microsecond))
	p.Record(iv(KindKernel, "conv", StageFP, 0, time.Millisecond))
	st := p.API("cudaLaunchKernel")
	if st.Calls != 2 || st.Total != 8*time.Microsecond {
		t.Errorf("API stat = %+v", st)
	}
	if st.Mean() != 4*time.Microsecond {
		t.Errorf("mean = %v", st.Mean())
	}
	if p.Kernel("conv").Calls != 1 {
		t.Error("kernel not aggregated")
	}
	if p.API("nonexistent").Calls != 0 {
		t.Error("missing API should be zero")
	}
	if p.StageBusy(StageFP) != time.Millisecond+8*time.Microsecond {
		t.Errorf("stage busy = %v", p.StageBusy(StageFP))
	}
}

func TestStageWall(t *testing.T) {
	p := New()
	p.AddStageWall(StageFP, time.Second)
	p.AddStageWall(StageFP, time.Second)
	p.AddStageWall(StageWU, 300*time.Millisecond)
	if p.StageWall(StageFP) != 2*time.Second {
		t.Errorf("FP wall = %v", p.StageWall(StageFP))
	}
	if p.StageWall(StageWU) != 300*time.Millisecond {
		t.Errorf("WU wall = %v", p.StageWall(StageWU))
	}
}

func TestScale(t *testing.T) {
	p := New()
	p.Record(iv(KindAPI, "x", StageFP, 0, time.Millisecond))
	p.AddStageWall(StageFP, time.Second)
	p.Scale(10)
	if got := p.API("x"); got.Calls != 10 || got.Total != 10*time.Millisecond {
		t.Errorf("scaled stat = %+v", got)
	}
	if p.StageWall(StageFP) != 10*time.Second {
		t.Errorf("scaled wall = %v", p.StageWall(StageFP))
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Record(iv(KindKernel, "k", StageBP, 0, time.Millisecond))
	b.Record(iv(KindKernel, "k", StageBP, 0, 2*time.Millisecond))
	b.AddStageWall(StageBP, time.Second)
	a.Merge(b)
	if got := a.Kernel("k"); got.Calls != 2 || got.Total != 3*time.Millisecond {
		t.Errorf("merged stat = %+v", got)
	}
	if a.StageWall(StageBP) != time.Second {
		t.Error("merged wall missing")
	}
}

func TestDetailCap(t *testing.T) {
	p := NewDetailed(2)
	for i := 0; i < 5; i++ {
		p.Record(iv(KindKernel, "k", StageFP, 0, time.Millisecond))
	}
	if len(p.Intervals()) != 2 {
		t.Errorf("retained %d intervals, want 2", len(p.Intervals()))
	}
	if p.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", p.Dropped())
	}
	// Aggregates still count everything.
	if p.Kernel("k").Calls != 5 {
		t.Error("aggregates must include dropped intervals")
	}
}

func TestAPINamesSortedByTotal(t *testing.T) {
	p := New()
	p.Record(iv(KindAPI, "small", StageFP, 0, time.Microsecond))
	p.Record(iv(KindAPI, "big", StageFP, 0, time.Second))
	names := p.APINames()
	if len(names) != 2 || names[0] != "big" {
		t.Errorf("names = %v", names)
	}
	if p.APITotal() != time.Second+time.Microsecond {
		t.Errorf("total = %v", p.APITotal())
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	p := New()
	p.Record(iv(KindAPI, "cudaStreamSynchronize", StageFP, 0, time.Millisecond))
	p.Record(iv(KindKernel, "volta_sgemm", StageBP, 0, time.Millisecond))
	p.AddStageWall(StageWU, time.Second)
	s := p.Summary()
	for _, want := range []string{"cudaStreamSynchronize", "volta_sgemm", "WU=1s"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestExportChromeTrace(t *testing.T) {
	p := NewDetailed(10)
	p.Record(Interval{Kind: KindKernel, Name: "conv", Stage: StageFP, Track: "GPU0/compute", Start: time.Microsecond, End: 3 * time.Microsecond})
	p.Record(Interval{Kind: KindTransfer, Name: "memcpy", Stage: StageWU, Track: "xfer 0->1", Start: 0, End: 5 * time.Microsecond})
	var buf bytes.Buffer
	if err := p.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 1 process-name + 2 thread-name metadata + 2 activity events.
	if len(out.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(out.TraceEvents))
	}
	var sawConv bool
	for _, ev := range out.TraceEvents {
		if ev["name"] == "conv" {
			sawConv = true
			if ev["ph"] != "X" {
				t.Errorf("conv phase = %v", ev["ph"])
			}
			if ev["dur"].(float64) != 2 {
				t.Errorf("conv dur = %v us, want 2", ev["dur"])
			}
		}
	}
	if !sawConv {
		t.Error("conv event missing")
	}
}

func TestStageAndKindStrings(t *testing.T) {
	if StageFP.String() != "FP" || StageBP.String() != "BP" || StageWU.String() != "WU" {
		t.Error("stage strings wrong")
	}
	if KindKernel.String() != "kernel" || KindAPI.String() != "api" {
		t.Error("kind strings wrong")
	}
	if Stage(99).String() == "" || Kind(99).String() == "" {
		t.Error("unknown values should still render")
	}
}

func TestRenderASCII(t *testing.T) {
	p := NewDetailed(100)
	p.Record(Interval{Kind: KindKernel, Name: "conv", Stage: StageFP, Track: "GPU0/compute", Start: 0, End: 50 * time.Microsecond})
	p.Record(Interval{Kind: KindKernel, Name: "grad", Stage: StageBP, Track: "GPU0/compute", Start: 50 * time.Microsecond, End: 100 * time.Microsecond})
	p.Record(Interval{Kind: KindKernel, Name: "ar", Stage: StageWU, Track: "GPU0/comm", Start: 80 * time.Microsecond, End: 100 * time.Microsecond})
	s := p.RenderASCII(0, 100*time.Microsecond, 20)
	for _, want := range []string{"GPU0/compute", "GPU0/comm", "F", "B", "W", "legend"} {
		if !strings.Contains(s, want) {
			t.Errorf("ascii missing %q:\n%s", want, s)
		}
	}
	// FP occupies the first half of the compute row, BP the second.
	lines := strings.Split(s, "\n")
	var computeRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "GPU0/compute") {
			computeRow = l
		}
	}
	bars := computeRow[strings.Index(computeRow, "|")+1:]
	if bars[0] != 'F' || bars[15] != 'B' {
		t.Errorf("compute row shape wrong: %q", computeRow)
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	p := NewDetailed(10)
	if s := p.RenderASCII(0, time.Second, 20); !strings.Contains(s, "no activity") {
		t.Errorf("empty render = %q", s)
	}
	if s := p.RenderASCII(time.Second, time.Second, 20); !strings.Contains(s, "empty window") {
		t.Errorf("degenerate window = %q", s)
	}
}
