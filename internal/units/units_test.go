package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1.00KB"},
		{1536, "1.50KB"},
		{MB, "1.00MB"},
		{3 * GB / 2, "1.50GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFLOPsString(t *testing.T) {
	cases := []struct {
		in   FLOPs
		want string
	}{
		{500, "500FLOPs"},
		{2 * KFLOPs, "2.00KFLOPs"},
		{3 * GFLOPs / 2, "1.50GFLOPs"},
		{TFLOPs, "1.00TFLOPs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("FLOPs(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 1 GB at 1 GB/s takes exactly one second.
	if got := TransferTime(GB, GBPerSec); got != time.Second {
		t.Errorf("TransferTime(1GB, 1GB/s) = %v, want 1s", got)
	}
	// 25 GB/s moves 100 MB in ~4 ms (binary prefixes cancel exactly).
	got := TransferTime(100*MB, 25*GBPerSec)
	want := time.Duration(float64(100*MB) / float64(25*GBPerSec) * float64(time.Second))
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
}

func TestTransferTimeDegenerate(t *testing.T) {
	if got := TransferTime(GB, 0); got != 0 {
		t.Errorf("zero bandwidth should give 0, got %v", got)
	}
	if got := TransferTime(0, GBPerSec); got != 0 {
		t.Errorf("zero bytes should give 0, got %v", got)
	}
	if got := TransferTime(-5, GBPerSec); got != 0 {
		t.Errorf("negative bytes should give 0, got %v", got)
	}
}

func TestComputeTime(t *testing.T) {
	if got := ComputeTime(TFLOPs, TFLOPPerSec); got != time.Second {
		t.Errorf("ComputeTime(1T, 1T/s) = %v, want 1s", got)
	}
	if got := ComputeTime(0, TFLOPPerSec); got != 0 {
		t.Errorf("zero work should give 0, got %v", got)
	}
	if got := ComputeTime(TFLOPs, 0); got != 0 {
		t.Errorf("zero rate should give 0, got %v", got)
	}
}

func TestBytesOf(t *testing.T) {
	if got := BytesOf(1000, Float32Size); got != 4000 {
		t.Errorf("BytesOf(1000, 4) = %d, want 4000", got)
	}
}

func TestGiBMiB(t *testing.T) {
	if got := (16 * GB).GiB(); got != 16 {
		t.Errorf("16GB.GiB() = %v, want 16", got)
	}
	if got := (GB).MiB(); got != 1024 {
		t.Errorf("1GB.MiB() = %v, want 1024", got)
	}
}

// Property: transfer time scales linearly in bytes and inversely in
// bandwidth (within float tolerance).
func TestTransferTimeLinearity(t *testing.T) {
	f := func(kb uint16) bool {
		b := Bytes(kb) * KB
		t1 := TransferTime(b, 10*GBPerSec)
		t2 := TransferTime(2*b, 10*GBPerSec)
		t4 := TransferTime(b, 20*GBPerSec)
		// Doubling size doubles time; doubling bandwidth halves it.
		okDouble := math.Abs(float64(t2)-2*float64(t1)) <= 2
		okHalf := math.Abs(2*float64(t4)-float64(t1)) <= 2
		return okDouble && okHalf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthString(t *testing.T) {
	if got := (25 * GBPerSec).String(); got != "25.00GB/s" {
		t.Errorf("got %q", got)
	}
	if got := (MBPerSec / 2).String(); got != "512.00KB/s" {
		t.Errorf("got %q", got)
	}
}

func TestFLOPRateString(t *testing.T) {
	if got := (15.7 * TFLOPPerSec).String(); got != "15.70TFLOP/s" {
		t.Errorf("got %q", got)
	}
}
