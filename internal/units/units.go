// Package units defines the typed physical quantities used throughout the
// simulator: byte counts, FLOP counts, bandwidths, and compute rates.
//
// All simulated time uses time.Duration directly; the helpers here convert
// between quantities and durations (e.g. how long a transfer of N bytes
// takes at bandwidth B).
package units

import (
	"fmt"
	"time"
)

// Bytes is a data size in bytes.
type Bytes int64

// Common byte sizes.
const (
	Byte Bytes = 1
	KB         = 1024 * Byte
	MB         = 1024 * KB
	GB         = 1024 * MB
)

// String renders the size with a binary-prefix unit, e.g. "1.50GB".
func (b Bytes) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// GiB returns the size as a float count of gibibytes.
func (b Bytes) GiB() float64 { return float64(b) / float64(GB) }

// MiB returns the size as a float count of mebibytes.
func (b Bytes) MiB() float64 { return float64(b) / float64(MB) }

// FLOPs counts floating-point operations (multiply and add count separately,
// so one MAC is 2 FLOPs, matching how GPU vendor peak numbers are quoted).
type FLOPs int64

// Common FLOP magnitudes.
const (
	KFLOPs FLOPs = 1e3
	MFLOPs FLOPs = 1e6
	GFLOPs FLOPs = 1e9
	TFLOPs FLOPs = 1e12
)

// String renders the count with a decimal-prefix unit, e.g. "3.87GFLOPs".
func (f FLOPs) String() string {
	switch {
	case f >= TFLOPs:
		return fmt.Sprintf("%.2fTFLOPs", float64(f)/float64(TFLOPs))
	case f >= GFLOPs:
		return fmt.Sprintf("%.2fGFLOPs", float64(f)/float64(GFLOPs))
	case f >= MFLOPs:
		return fmt.Sprintf("%.2fMFLOPs", float64(f)/float64(MFLOPs))
	case f >= KFLOPs:
		return fmt.Sprintf("%.2fKFLOPs", float64(f)/float64(KFLOPs))
	}
	return fmt.Sprintf("%dFLOPs", int64(f))
}

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// Common bandwidths.
const (
	BytePerSec Bandwidth = 1
	KBPerSec             = 1024 * BytePerSec
	MBPerSec             = 1024 * KBPerSec
	GBPerSec             = 1024 * MBPerSec
)

// String renders the rate, e.g. "25.00GB/s".
func (bw Bandwidth) String() string {
	switch {
	case bw >= GBPerSec:
		return fmt.Sprintf("%.2fGB/s", float64(bw)/float64(GBPerSec))
	case bw >= MBPerSec:
		return fmt.Sprintf("%.2fMB/s", float64(bw)/float64(MBPerSec))
	case bw >= KBPerSec:
		return fmt.Sprintf("%.2fKB/s", float64(bw)/float64(KBPerSec))
	}
	return fmt.Sprintf("%.2fB/s", float64(bw))
}

// TransferTime returns how long moving b bytes takes at bandwidth bw.
// A zero or negative bandwidth yields zero duration so that callers never
// divide by zero; topology validation rejects such links up front.
func TransferTime(b Bytes, bw Bandwidth) time.Duration {
	if bw <= 0 || b <= 0 {
		return 0
	}
	sec := float64(b) / float64(bw)
	return time.Duration(sec * float64(time.Second))
}

// FLOPRate is a compute rate in FLOPs per second.
type FLOPRate float64

// Common compute rates.
const (
	FLOPPerSec  FLOPRate = 1
	GFLOPPerSec          = 1e9 * FLOPPerSec
	TFLOPPerSec          = 1e12 * FLOPPerSec
)

// String renders the rate, e.g. "15.70TFLOP/s".
func (r FLOPRate) String() string {
	switch {
	case r >= TFLOPPerSec:
		return fmt.Sprintf("%.2fTFLOP/s", float64(r)/float64(TFLOPPerSec))
	case r >= GFLOPPerSec:
		return fmt.Sprintf("%.2fGFLOP/s", float64(r)/float64(GFLOPPerSec))
	}
	return fmt.Sprintf("%.2fFLOP/s", float64(r))
}

// ComputeTime returns how long executing f FLOPs takes at rate r.
func ComputeTime(f FLOPs, r FLOPRate) time.Duration {
	if r <= 0 || f <= 0 {
		return 0
	}
	sec := float64(f) / float64(r)
	return time.Duration(sec * float64(time.Second))
}

// BytesOf returns n elements of elemSize bytes as a Bytes quantity.
func BytesOf(n int64, elemSize Bytes) Bytes { return Bytes(n) * elemSize }

// Float32Size is the storage size of one float32 value. All tensors in the
// modeled frameworks are single precision, matching the paper's setup.
const Float32Size Bytes = 4
