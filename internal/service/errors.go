// The structured error surface: every endpoint answers failures with one
// JSON envelope —
//
//	{"error": {"code": "...", "message": "...", "retryable": bool}}
//
// — instead of the ad-hoc bare-string body early versions wrote. The code
// is a stable machine-readable identifier (clients switch on it; the
// message text is for humans and may change), and retryable tells a
// client whether the same request can reasonably be sent again: true for
// the overload sheds (the server's condition — try later, Retry-After
// hints when), false for outcomes the deterministic simulator would
// reproduce (a bad workload, a deadline the work itself exceeded).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/faults"
)

// Stable error codes. These are API surface: a client that switches on
// them must keep working across releases, so codes are only ever added.
const (
	// CodeQueueFull: the admission queue was full; the request was shed
	// before any work started (429 + Retry-After).
	CodeQueueFull = "queue_full"
	// CodeDeadlineQueued: the request's deadline expired while it was
	// still waiting for a queue slot — the server was too loaded to even
	// start it (503 + Retry-After).
	CodeDeadlineQueued = "deadline_queued"
	// CodeDeadline: the deadline expired mid-work (504).
	CodeDeadline = "deadline"
	// CodeClientGone: the client disconnected before the response (499).
	CodeClientGone = "client_gone"
	// CodeBadRequest: malformed body or invalid workload (400).
	CodeBadRequest = "bad_request"
	// CodeInvalidArgument: a structurally valid request whose fields
	// contradict each other — currently a DGX-1 fault plan combined with
	// non-DGX-1 hardware (400). Distinct from bad_request so clients
	// building hardware sweeps over faulted fleets can recognize and drop
	// the contradictory cells rather than treating them as client bugs.
	CodeInvalidArgument = "invalid_argument"
	// CodeBodyTooLarge: the request body exceeded the endpoint's cap (413).
	CodeBodyTooLarge = "body_too_large"
	// CodeSchemaVersion: the body declared a wire-format version this
	// server does not speak (400).
	CodeSchemaVersion = "schema_version"
	// CodeMethodNotAllowed: wrong HTTP method; Allow names the right one
	// (405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound: no such resource — an unknown /v1/ path or an expired
	// trace id (404).
	CodeNotFound = "not_found"
	// CodeInternal: an unexpected server-side failure (500).
	CodeInternal = "internal"
)

// ErrorDetail is the envelope's payload: a stable code, a human-readable
// message, and whether resending the same request can succeed.
type ErrorDetail struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// ErrorEnvelope is the error body every endpoint shares. On the NDJSON
// streaming path it doubles as the in-band terminal record of a stream
// that failed after the 200 header was committed.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// schemaVersionError marks a request that spoke a different wire format,
// so the envelope carries schema_version rather than plain bad_request —
// the one 400 a correct client can hit after an API upgrade, and the one
// it should not blindly re-send.
type schemaVersionError struct{ err error }

func (e schemaVersionError) Error() string { return e.err.Error() }
func (e schemaVersionError) Unwrap() error { return e.err }

func isSchemaVersion(err error) bool {
	var sve schemaVersionError
	return errors.As(err, &sve)
}

// classify maps an error to its HTTP status and envelope payload — the
// one taxonomy behind every endpoint. Overload outcomes are distinguished
// from request outcomes: a full admission queue is 429 and a deadline
// that expired while still queueing is 503 (both retryable — the server's
// condition); a deadline that expired mid-work is 504 and a client that
// went away is 499 (the request's condition; the deterministic simulator
// would just hit the same wall again, so neither is retryable).
func classify(err error) (int, ErrorDetail) {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge,
			ErrorDetail{Code: CodeBodyTooLarge, Message: err.Error()}
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests,
			ErrorDetail{Code: CodeQueueFull, Message: err.Error(), Retryable: true}
	case isAdmission(err) && errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable,
			ErrorDetail{Code: CodeDeadlineQueued, Message: err.Error(), Retryable: true}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout,
			ErrorDetail{Code: CodeDeadline, Message: err.Error()}
	case errors.Is(err, context.Canceled):
		// 499: client closed request (nginx convention).
		return 499, ErrorDetail{Code: CodeClientGone, Message: err.Error()}
	case isSchemaVersion(err):
		return http.StatusBadRequest,
			ErrorDetail{Code: CodeSchemaVersion, Message: err.Error()}
	case errors.Is(err, faults.ErrHardwareMismatch):
		// Checked before the generic bad-request case: the mismatch is
		// wrapped in badRequestError on the decode path, and the more
		// specific code must win.
		return http.StatusBadRequest,
			ErrorDetail{Code: CodeInvalidArgument, Message: err.Error()}
	case isBadRequest(err):
		return http.StatusBadRequest,
			ErrorDetail{Code: CodeBadRequest, Message: err.Error()}
	}
	return http.StatusInternalServerError,
		ErrorDetail{Code: CodeInternal, Message: err.Error()}
}

// writeEnvelope writes one structured error response. Shed statuses carry
// the Retry-After hint; nothing else does.
func writeEnvelope(w http.ResponseWriter, status int, d ErrorDetail) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{Error: d})
}

// httpError maps an error to its status and writes the shared envelope.
func httpError(w http.ResponseWriter, err error) {
	status, d := classify(err)
	writeEnvelope(w, status, d)
}

// notFound writes the envelope for a missing resource.
func notFound(w http.ResponseWriter, message string) {
	writeEnvelope(w, http.StatusNotFound, ErrorDetail{Code: CodeNotFound, Message: message})
}

// methodNotAllowed writes the 405 response HTTP semantics require for a
// wrong-method request: the Allow header naming what the resource
// accepts, plus the envelope every endpoint shares. (An earlier version
// returned 400 "use POST", which blamed the client's syntax rather than
// the method and omitted Allow.)
func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeEnvelope(w, http.StatusMethodNotAllowed, ErrorDetail{
		Code:    CodeMethodNotAllowed,
		Message: "method not allowed; use " + allow,
	})
}
