package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// streamSweepRequest POSTs a sweep with the NDJSON Accept header and
// returns the raw response (caller closes the body).
func streamSweepRequest(t *testing.T, url string, req SweepRequest) *http.Response {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/sweep", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream consumes an NDJSON sweep response: the cell records and
// the trailing summary.
func readStream(t *testing.T, resp *http.Response) (cells [][]byte, summary SweepSummary) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var lines [][]byte
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	last := lines[len(lines)-1]
	if !bytes.Contains(last, []byte(`"summary"`)) {
		t.Fatalf("stream does not end with a summary record: %s", last)
	}
	if err := json.Unmarshal(last, &summary); err != nil {
		t.Fatal(err)
	}
	return lines[:len(lines)-1], summary
}

func TestWantsNDJSON(t *testing.T) {
	for _, tc := range []struct {
		accept string
		want   bool
	}{
		{"application/x-ndjson", true},
		{"application/json, application/x-ndjson;q=0.9", true},
		{" application/x-ndjson ; q=1", true},
		{"application/json", false},
		{"*/*", false},
		{"", false},
		// RFC 9110 §12.4.2: q=0 means "not acceptable" — the client is
		// explicitly declining the streamed representation.
		{"application/x-ndjson;q=0", false},
		{"application/x-ndjson; q=0", false},
		{"application/x-ndjson;q=0.000", false},
		{"application/x-ndjson;Q=0", false},
		{"application/json;q=0.5, application/x-ndjson;q=0", false},
		// A zero-weighted member does not veto a positive one elsewhere.
		{"application/x-ndjson;q=0, application/x-ndjson;q=0.1", true},
		{"application/x-ndjson;q=0.001", true},
		// Other parameters are not q; malformed or out-of-range q falls
		// back lenient (weight 1), like the rest of the header's parsing.
		{"application/x-ndjson;charset=utf-8", true},
		{"application/x-ndjson;q=banana", true},
		{"application/x-ndjson;q=7", true},
		{"application/x-ndjson;q=", true},
	} {
		r, _ := http.NewRequest(http.MethodPost, "/v1/sweep", nil)
		if tc.accept != "" {
			r.Header.Set("Accept", tc.accept)
		}
		if got := wantsNDJSON(r); got != tc.want {
			t.Errorf("wantsNDJSON(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}

func TestStreamWindowSize(t *testing.T) {
	for _, tc := range []struct{ workers, want int }{
		{1, 4}, {2, 4}, {4, 8}, {16, 32}, {64, 64}, {1000, 64},
	} {
		if got := streamWindowSize(tc.workers); got != tc.want {
			t.Errorf("streamWindowSize(%d) = %d, want %d", tc.workers, got, tc.want)
		}
	}
}

// TestSweepStreamMatchesBuffered is the mode-equivalence acceptance
// test: the streamed records must be byte-identical to the buffered
// response's results array, in grid order, with the trailing summary
// accounting for every cell.
func TestSweepStreamMatchesBuffered(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Cold streamed run.
	resp := streamSweepRequest(t, ts.URL, sweep16)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	cells, summary := readStream(t, resp)
	if len(cells) != 16 {
		t.Fatalf("streamed %d cell records, want 16", len(cells))
	}
	if summary.SchemaVersion != SchemaVersion {
		t.Errorf("summary schemaVersion = %d", summary.SchemaVersion)
	}
	if summary.Summary.Count != 16 {
		t.Errorf("summary count = %d, want 16", summary.Summary.Count)
	}
	if summary.Summary.WallNs <= 0 {
		t.Errorf("summary wallNs = %d, want > 0", summary.Summary.WallNs)
	}

	// Buffered run on the same server: identical bytes per cell, grid
	// order (the cache guarantees the reports are the same objects).
	resp2, body := post(t, ts.URL+"/v1/sweep", sweep16)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("buffered status = %d: %s", resp2.StatusCode, body)
	}
	var buffered SweepResponse
	if err := json.Unmarshal(body, &buffered); err != nil {
		t.Fatal(err)
	}
	if buffered.Count != 16 || len(buffered.Results) != 16 {
		t.Fatalf("buffered count = %d, results = %d", buffered.Count, len(buffered.Results))
	}
	for i := range cells {
		if !bytes.Equal(cells[i], []byte(buffered.Results[i])) {
			t.Fatalf("cell %d differs between modes:\nstream:   %s\nbuffered: %s",
				i, cells[i], buffered.Results[i])
		}
	}

	// A second streamed run is served from cache — the summary says so.
	resp3 := streamSweepRequest(t, ts.URL, sweep16)
	cells3, summary3 := readStream(t, resp3)
	if summary3.Summary.CacheHits != 16 {
		t.Errorf("warm stream cacheHits = %d, want 16", summary3.Summary.CacheHits)
	}
	for i := range cells {
		if !bytes.Equal(cells[i], cells3[i]) {
			t.Fatalf("cell %d differs between cold and warm streams", i)
		}
	}
}

// Buffered responses derive count from the results slice: a response
// marshaled with any Count value still wires len(results).
func TestSweepResponseCountDerived(t *testing.T) {
	raw := []json.RawMessage{json.RawMessage(`{"a":1}`), json.RawMessage(`{"b":2}`)}
	b, err := json.Marshal(SweepResponse{SchemaVersion: SchemaVersion, Results: raw, Count: 99})
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Count   int               `json:"count"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(b, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Count != 2 {
		t.Fatalf("wire count = %d, want len(results) = 2", wire.Count)
	}
	var back SweepResponse
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != 2 || len(back.Results) != 2 {
		t.Fatalf("decoded Count = %d, Results = %d; want 2/2", back.Count, len(back.Results))
	}
}

// The Images axis varies the extrapolation phase only; it nests
// innermost so consecutive cells share a compiled window.
func TestSweepImagesAxis(t *testing.T) {
	req := SweepRequest{
		Base:   core.Workload{Model: "lenet", Batch: 16},
		GPUs:   []int{1, 2},
		Images: []int64{1000, 2000},
	}
	if req.Size() != 4 {
		t.Fatalf("Size = %d, want 4", req.Size())
	}
	grid := req.Expand()
	want := []struct {
		gpus   int
		images int64
	}{{1, 1000}, {1, 2000}, {2, 1000}, {2, 2000}}
	for i, w := range want {
		if grid[i].GPUs != w.gpus || grid[i].Images != w.images {
			t.Fatalf("cell %d = gpus %d images %d, want %d/%d",
				i, grid[i].GPUs, grid[i].Images, w.gpus, w.images)
		}
		if !bytes.Equal(mustJSON(t, grid[i]), mustJSON(t, req.Cell(i))) {
			t.Fatalf("Expand and Cell disagree at %d", i)
		}
	}
}

// TestStreamCompileEconomy is the tentpole acceptance test: a large
// grid varying only the iteration count (the Images axis) streams over
// NDJSON while compiling exactly ONE train.Window — every cell shares
// the one compile-phase plan and differs only in extrapolation.
func TestStreamCompileEconomy(t *testing.T) {
	const cells = 10_000
	// Batch 19 is deliberately odd so no other test has this plan in the
	// process-wide artifact cache.
	req := SweepRequest{
		Base:   core.Workload{Model: "lenet", GPUs: 1, Batch: 19},
		Images: make([]int64, cells),
	}
	for i := range req.Images {
		// All >= 4 simulated iterations (batch 19 → window caps at 4), so
		// every cell shares the same compile-phase artifact key.
		req.Images[i] = 4096 + int64(i)*19
	}
	_, ts := newTestServer(t, Config{Timeout: 120 * time.Second})

	before := core.CompileCount()
	resp := streamSweepRequest(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	got, summary := readStream(t, resp)
	compiled := core.CompileCount() - before

	if len(got) != cells {
		t.Fatalf("streamed %d records, want %d", len(got), cells)
	}
	if summary.Summary.Count != cells {
		t.Fatalf("summary count = %d, want %d", summary.Summary.Count, cells)
	}
	if compiled != 1 {
		t.Fatalf("grid varying only Images compiled %d windows, want exactly 1", compiled)
	}
	// Spot-check record shape and distinctness: different Images must
	// produce different cells.
	if bytes.Equal(got[0], got[cells-1]) {
		t.Fatal("first and last cells identical; Images axis not applied")
	}
}

// TestStreamClientDisconnect proves a mid-stream hangup cancels the
// remaining grid: the dispatcher stops, in-flight cells observe the
// cancelled context, the pool drains, and most of the grid was never
// simulated.
func TestStreamClientDisconnect(t *testing.T) {
	// 256 distinct cells, each a fresh compile on a single worker: the
	// stream takes long enough that the hangup lands mid-grid.
	grid := SweepRequest{
		Base:    core.Workload{Images: 1 << 18},
		Models:  []string{"resnet", "inception-v3", "googlenet", "alexnet"},
		GPUs:    []int{1, 2, 3, 4, 5, 6, 7, 8},
		Batches: []int{4, 8, 16, 32},
		Methods: []core.Method{core.P2P, core.NCCL},
	}
	size := grid.Size()
	svc, ts := newTestServer(t, Config{Workers: 1})

	resp := streamSweepRequest(t, ts.URL, grid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Read exactly one record, then hang up.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("first record: %v", err)
	}
	resp.Body.Close()

	// The pool must drain: no cell may keep running or sit queued once
	// the client is gone.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ps := svc.PoolStats()
		if ps.Active == 0 && ps.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not drain after disconnect: %+v", ps)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Allow a brief settle for any cell that was mid-simulate at hangup.
	time.Sleep(50 * time.Millisecond)
	if got := svc.CacheStats().Size; got >= size/2 {
		t.Fatalf("cache holds %d reports, want far fewer than %d (remaining cells should never run)", got, size)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWriteNDJSONMarshalFailure: a record that cannot marshal must not
// vanish — the line carries an in-band internal-error envelope instead,
// so a stream never ends with neither summary nor error.
func TestWriteNDJSONMarshalFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeNDJSON(rec, nil, map[string]any{"bad": math.NaN()})

	line := rec.Body.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("record is not newline-terminated: %q", line)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal([]byte(line), &env); err != nil {
		t.Fatalf("replacement record is not valid JSON: %q: %v", line, err)
	}
	if env.Error.Code != CodeInternal {
		t.Fatalf("replacement code = %q, want %q", env.Error.Code, CodeInternal)
	}
	if !strings.Contains(env.Error.Message, "encode stream record") {
		t.Fatalf("replacement message opaque: %q", env.Error.Message)
	}
}

// TestWriteNDJSONSummaryAlwaysPresent: the normal path still emits the
// record itself, newline-terminated, exactly once.
func TestWriteNDJSONSummaryAlwaysPresent(t *testing.T) {
	rec := httptest.NewRecorder()
	writeNDJSON(rec, nil, SweepSummary{SchemaVersion: SchemaVersion, Summary: SweepSummaryBody{Count: 3}})
	var s SweepSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil || s.Summary.Count != 3 {
		t.Fatalf("summary record mangled: %q (%v)", rec.Body.String(), err)
	}
}
