// The machine-readable API index: GET /v1/ lists every endpoint, its
// methods, and the content types it can produce, so clients discover
// capabilities (the sweep NDJSON mode, the optimizer) instead of
// hard-coding them. The endpoint table below is the single source of
// truth: NewServer registers the mux from it, handleIndex serves it, and
// an equivalence test holds the two views together — an endpoint cannot
// be routed without being advertised, or advertised without being routed.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Content types the API produces.
const (
	contentJSON   = "application/json"
	contentNDJSON = "application/x-ndjson"
	contentText   = "text/plain; charset=utf-8"
)

// endpointDef binds one mux registration to its advertised description.
type endpointDef struct {
	// pattern is the mux registration pattern (a trailing slash makes it
	// a subtree, e.g. "/v1/trace/").
	pattern string
	// path is the advertised form ("/v1/trace/{id}" for the subtree).
	path string
	// methods the endpoint accepts; anything else is 405 + Allow.
	methods []string
	// contentTypes the endpoint can respond with. A client that wants a
	// non-default type (NDJSON sweeps) negotiates via Accept.
	contentTypes []string
	// handler is the method implementing the endpoint.
	handler func(*Server, http.ResponseWriter, *http.Request)
}

// apiEndpoints is the routing table. Order is the order GET /v1/ lists.
// Populated in init: handleIndex serves the table it is itself listed
// in, which a static initializer would reject as a cycle.
var apiEndpoints []endpointDef

func init() {
	apiEndpoints = []endpointDef{
		{"/v1/", "/v1/", []string{http.MethodGet}, []string{contentJSON}, (*Server).handleIndex},
		{"/v1/simulate", "/v1/simulate", []string{http.MethodPost}, []string{contentJSON}, (*Server).handleSimulate},
		{"/v1/compare", "/v1/compare", []string{http.MethodPost}, []string{contentJSON}, (*Server).handleCompare},
		{"/v1/sweep", "/v1/sweep", []string{http.MethodPost}, []string{contentJSON, contentNDJSON}, (*Server).handleSweep},
		{"/v1/optimize", "/v1/optimize", []string{http.MethodPost}, []string{contentJSON}, (*Server).handleOptimize},
		{"/v1/validate", "/v1/validate", []string{http.MethodPost}, []string{contentJSON}, (*Server).handleValidate},
		{"/v1/cluster/simulate", "/v1/cluster/simulate", []string{http.MethodPost}, []string{contentJSON}, (*Server).handleClusterSimulate},
		{"/v1/models", "/v1/models", []string{http.MethodGet}, []string{contentJSON}, (*Server).handleModels},
		{"/v1/hardware", "/v1/hardware", []string{http.MethodGet}, []string{contentJSON}, (*Server).handleHardware},
		{"/v1/trace/", "/v1/trace/{id}", []string{http.MethodGet}, []string{contentJSON}, (*Server).handleTrace},
		{"/healthz", "/healthz", []string{http.MethodGet}, []string{contentText}, (*Server).handleHealthz},
		{"/metrics", "/metrics", []string{http.MethodGet}, []string{contentText}, (*Server).handleMetrics},
	}
}

// metricsLabel is the per-endpoint label the metrics and access logs key
// on: the pattern with any subtree slash trimmed ("/v1/trace/" observes
// as "/v1/trace", matching the label from before subtrees existed).
func metricsLabel(pattern string) string {
	if len(pattern) > 1 && strings.HasSuffix(pattern, "/") {
		return strings.TrimSuffix(pattern, "/")
	}
	return pattern
}

// EndpointInfo is one advertised endpoint of the IndexResponse.
type EndpointInfo struct {
	Path         string   `json:"path"`
	Methods      []string `json:"methods"`
	ContentTypes []string `json:"contentTypes"`
}

// IndexResponse is the GET /v1/ body: the wire-format version this
// server speaks and every endpoint it routes.
type IndexResponse struct {
	SchemaVersion int            `json:"schemaVersion"`
	Endpoints     []EndpointInfo `json:"endpoints"`
}

// apiIndex renders the endpoint table as the advertised index.
func apiIndex() IndexResponse {
	out := IndexResponse{SchemaVersion: SchemaVersion}
	for _, e := range apiEndpoints {
		out.Endpoints = append(out.Endpoints, EndpointInfo{
			Path:         e.path,
			Methods:      e.methods,
			ContentTypes: e.contentTypes,
		})
	}
	return out
}

// handleIndex serves the API index. Its "/v1/" pattern is a subtree
// root, so it also answers every unrouted /v1/* path — with a not_found
// envelope pointing back at the index, rather than the stdlib's bare
// text 404.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/" {
		notFound(w, fmt.Sprintf("no endpoint %q (GET /v1/ lists the API)", r.URL.Path))
		return
	}
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	b, err := json.Marshal(apiIndex())
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONBytes(w, b)
}
