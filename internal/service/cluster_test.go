package service

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tinyClusterBody is the 2-node/5-job spec the endpoint tests (and the
// smoke script) post.
const tinyClusterBody = `{
  "nodes": [{"count": 2}],
  "jobs": [
    {"model": "lenet", "gpus": 1, "batch": 16, "images": 4096, "arrivalNs": 0},
    {"model": "lenet", "gpus": 1, "batch": 16, "images": 4096, "arrivalNs": 0},
    {"model": "lenet", "gpus": 4, "batch": 16, "images": 4096, "arrivalNs": 1000000000},
    {"model": "lenet", "gpus": 8, "batch": 16, "images": 4096, "arrivalNs": 2000000000},
    {"model": "lenet", "gpus": 1, "batch": 16, "images": 4096, "arrivalNs": 2000000000, "repeats": 3}
  ]
}`

func TestClusterSimulateEndpoint(t *testing.T) {
	s := NewServer(Config{Workers: 2, Timeout: time.Minute})
	defer s.Close()

	req := httptest.NewRequest("POST", "/v1/cluster/simulate", strings.NewReader(tinyClusterBody))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID")
	}
	if got := rec.Header().Get("X-Cache"); got != "MISS" {
		t.Errorf("X-Cache = %q, want MISS", got)
	}
	var resp ClusterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if resp.SchemaVersion != SchemaVersion {
		t.Errorf("schemaVersion = %d", resp.SchemaVersion)
	}
	r := resp.Result
	if r == nil || r.Jobs != 5 || r.Nodes != 2 {
		t.Fatalf("result echo wrong: %+v", r)
	}
	if r.JCT.Mean <= 0 || r.Makespan <= 0 {
		t.Errorf("degenerate stats: %+v", r)
	}
	if r.Policy != "first-fit" || r.Queue != "fifo" {
		t.Errorf("defaults not echoed: policy=%q queue=%q", r.Policy, r.Queue)
	}

	// The same spec must return byte-identical bodies across requests —
	// the endpoint inherits the simulator's determinism.
	rec2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec2, httptest.NewRequest("POST", "/v1/cluster/simulate", strings.NewReader(tinyClusterBody)))
	if rec2.Code != 200 || rec2.Body.String() != rec.Body.String() {
		t.Errorf("repeat request differed (status %d)", rec2.Code)
	}

	// The cluster counters must be on /metrics.
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	metrics := mrec.Body.String()
	if !strings.Contains(metrics, "dgxsimd_cluster_jobs_total 10") {
		t.Errorf("cluster jobs counter missing or wrong (want 10 across both runs):\n%s", metrics)
	}
	if !strings.Contains(metrics, "dgxsimd_cluster_sim_seconds_count 2") {
		t.Errorf("cluster sim histogram count missing:\n%s", metrics)
	}
	if !strings.Contains(metrics, `dgxsimd_requests_total{path="/v1/cluster/simulate"} 2`) {
		t.Errorf("per-endpoint counter missing for the cluster path:\n%s", metrics)
	}
}

func TestClusterSimulateRejects(t *testing.T) {
	s := NewServer(Config{Workers: 1, Timeout: time.Minute})
	defer s.Close()

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/cluster/simulate", strings.NewReader(body)))
		return rec
	}

	if rec := post(`{"schemaVersion": 99, "nodes": [{}], "mix": {"jobs": 1}}`); rec.Code != 400 {
		t.Errorf("foreign schemaVersion: status %d", rec.Code)
	}
	if rec := post(`{"nodes": [], "mix": {"jobs": 1}}`); rec.Code != 400 {
		t.Errorf("empty fleet: status %d", rec.Code)
	}
	if rec := post(`{"nodes": [{}], "mix": {"jobs": 1}, "policy": "tetris"}`); rec.Code != 400 {
		t.Errorf("unknown policy: status %d", rec.Code)
	}
	if rec := post(`{"nodes": [{}], "mix": {"jobs": 1}, "bogus": true}`); rec.Code != 400 {
		t.Errorf("unknown field: status %d", rec.Code)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/cluster/simulate", nil))
	if rec.Code != 405 || rec.Header().Get("Allow") != "POST" {
		t.Errorf("GET: status %d Allow %q, want 405 POST", rec.Code, rec.Header().Get("Allow"))
	}
}

// A full admission queue sheds a cluster request with 429 + Retry-After
// before any pricing work starts — the endpoint inherits the pool's
// overload semantics.
func TestClusterSimulateShedsWhenQueueFull(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 1, Timeout: time.Minute})
	defer s.Close()

	// Occupy the one worker and the one queue slot with blocking tasks.
	block := make(chan struct{})
	started := make(chan struct{})
	s.pool.Submit(func() { close(started); <-block })
	<-started
	s.pool.Submit(func() { <-block })

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/cluster/simulate", strings.NewReader(tinyClusterBody)))
	close(block)
	if rec.Code != 429 {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
}
