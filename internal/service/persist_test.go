// Service-level persistence tests: the restart contract. A daemon given
// a -cache-dir must come back up serving byte-identical cached bodies as
// hits (no recompilation), skip snapshot entries a crash corrupted, and
// keep traced entries memory-only.
package service

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
)

// newPersistentServer stands up a server whose cache is backed by a
// snapshot store at dir, mimicking dgxsimd -cache-dir.
func newPersistentServer(t *testing.T, dir string) (*Server, string, *persist.Store) {
	t.Helper()
	store, err := persist.Open(dir, SchemaVersion, 0)
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	svc, ts := newTestServer(t, Config{Workers: 2, Persist: store})
	t.Cleanup(func() { store.Close() })
	return svc, ts.URL, store
}

var persistWorkload = core.Workload{Model: "lenet", GPUs: 2, Batch: 16, Images: 4096}

// TestPersistRestartServesWarmHit is the round-trip pin behind the
// replication proof: simulate once, restart onto the same directory, and
// the first request is already a byte-identical cache hit — nothing is
// recompiled or re-simulated.
func TestPersistRestartServesWarmHit(t *testing.T) {
	dir := t.TempDir()

	_, url1, store1 := newPersistentServer(t, dir)
	resp, body1 := post(t, url1+"/v1/simulate", persistWorkload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first simulate: status %d: %s", resp.StatusCode, body1)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first simulate X-Cache = %q, want MISS", got)
	}
	store1.Flush()
	if st := store1.Stats(); st.Writes != 1 {
		t.Fatalf("store stats after one miss = %+v, want 1 write", st)
	}
	store1.Close()

	// "Restart": a brand-new server over the same directory.
	svc2, url2, store2 := newPersistentServer(t, dir)
	if st := store2.Stats(); st.Loaded != 1 || st.Skipped != 0 {
		t.Fatalf("reload stats = %+v, want 1 loaded / 0 skipped", st)
	}
	resp2, body2 := post(t, url2+"/v1/simulate", persistWorkload)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-restart simulate: status %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("post-restart X-Cache = %q, want HIT (cache should be warm from disk)", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body differs across restart:\n pre: %s\npost: %s", body1, body2)
	}
	if st := svc2.CacheStats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("post-restart cache stats = %+v, want a pure hit", st)
	}
}

// TestPersistRestartSkipsCorruptEntry: a crash mid-write (truncated
// snapshot) must cost exactly that entry — the server boots, re-simulates
// it, and the fresh body matches what the pre-crash server served.
func TestPersistRestartSkipsCorruptEntry(t *testing.T) {
	dir := t.TempDir()

	_, url1, store1 := newPersistentServer(t, dir)
	_, body1 := post(t, url1+"/v1/simulate", persistWorkload)
	store1.Flush()
	store1.Close()

	// Truncate the one snapshot mid-body, like a crash would.
	des, err := os.ReadDir(dir)
	if err != nil || len(des) != 1 {
		t.Fatalf("snapshot dir: %v entries, err %v", len(des), err)
	}
	path := filepath.Join(dir, des[0].Name())
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	_, url2, store2 := newPersistentServer(t, dir)
	if st := store2.Stats(); st.Loaded != 0 || st.Skipped != 1 {
		t.Fatalf("reload stats = %+v, want 0 loaded / 1 skipped", st)
	}
	resp2, body2 := post(t, url2+"/v1/simulate", persistWorkload)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-crash simulate: status %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("post-crash X-Cache = %q, want MISS (corrupt entry must not be served)", got)
	}
	// The simulator is deterministic: the re-simulated body must be
	// byte-identical to the pre-crash one.
	if !bytes.Equal(body1, body2) {
		t.Fatalf("re-simulated body differs from pre-crash body")
	}
}

// TestPersistSkipsTracedEntries: traced runs retain a profiler timeline
// that cannot ride a snapshot, so they stay memory-only.
func TestPersistSkipsTracedEntries(t *testing.T) {
	dir := t.TempDir()
	_, url, store := newPersistentServer(t, dir)
	resp, body := post(t, url+"/v1/simulate", map[string]any{
		"Model": "lenet", "GPUs": 2, "Batch": 16, "Images": int64(4096), "trace": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced simulate: status %d: %s", resp.StatusCode, body)
	}
	store.Flush()
	if st := store.Stats(); st.Writes != 0 {
		t.Fatalf("store stats after traced run = %+v, want 0 writes", st)
	}
	des, _ := os.ReadDir(dir)
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".snap") {
			t.Fatalf("traced entry was snapshotted: %s", de.Name())
		}
	}
}
