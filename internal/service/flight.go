package service

import (
	"sync"

	"repro/internal/core"
)

// flightGroup coalesces concurrent cache misses per workload
// fingerprint: of N identical in-flight requests, exactly one (the
// leader) simulates while the rest wait for its report. The core
// artifact layer already dedups the compile phase across requests; this
// dedups the whole simulate-and-report path, so a burst of identical
// what-if queries — the dominant shape of production training-fleet
// traffic — costs one pool slot instead of N.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress simulation other requests may subscribe to.
// rep and err are written exactly once, before done is closed; waiters
// read them only after <-done.
type flight struct {
	done chan struct{}
	rep  *core.Report
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join subscribes to the in-flight simulation for key, creating one if
// none exists. The second result is true for the creator — the leader,
// who must eventually call complete exactly once.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// complete publishes the leader's outcome to every waiter and retires
// the flight, so the next miss for the key starts a fresh one.
func (g *flightGroup) complete(key string, f *flight, rep *core.Report, err error) {
	g.mu.Lock()
	if g.m[key] == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
	f.rep, f.err = rep, err
	close(f.done)
}
