package service

import "sync"

// flightGroup coalesces concurrent cache misses per workload
// fingerprint: of N identical in-flight requests, exactly one (the
// leader) simulates while the rest wait for its preserialized response.
// The core artifact layer already dedups the compile phase across
// requests; this dedups the whole simulate-serialize path, so a burst of
// identical what-if queries — the dominant shape of production
// training-fleet traffic — costs one pool slot instead of N.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress simulation other requests may subscribe to.
// val and err are written exactly once, before done is closed; waiters
// read them only after <-done. val is the same immutable cached value
// the leader stored, so a waiter's response is byte-identical to the
// leader's.
type flight struct {
	done chan struct{}
	val  *cached
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join subscribes to the in-flight simulation for key, creating one if
// none exists. The second result is true for the creator — the leader,
// who must eventually call complete exactly once.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// complete publishes the leader's outcome to every waiter and retires
// the flight, so the next miss for the key starts a fresh one.
func (g *flightGroup) complete(key string, f *flight, val *cached, err error) {
	g.mu.Lock()
	if g.m[key] == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
	f.val, f.err = val, err
	close(f.done)
}
