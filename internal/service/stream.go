// The NDJSON streaming path of /v1/sweep. A client that sends
// Accept: application/x-ndjson gets one newline-delimited JSON record
// per grid cell, flushed in grid order as cells complete, followed by a
// trailing summary record — instead of one buffered JSON blob at the
// end. Memory stays bounded no matter the grid size: cells are
// dispatched through a small reorder window (a channel of per-cell
// slots), so at most windowSize cells are ever in flight or completed-
// but-unemitted, and a cell's marshaled bytes are released as soon as
// they are flushed. Combined with the artifact cache's compile-phase
// keying (cells differing only in extrapolation parameters share one
// compiled train.Window), this is what makes 10k+-cell what-if grids
// practical over one request.
//
// Each cell record is byte-identical to the corresponding entry of the
// buffered response's results array (both serialize through
// marshalReport), so clients can switch modes without reparsing logic.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// streamSpanCells caps how many cells of a streamed sweep record
// per-cell observability spans. The request trace is retained whole in
// the bounded trace store, so an unbounded grid must not grow it
// unboundedly; 64 cells of spans is plenty to diagnose a stream's shape.
const streamSpanCells = 64

// wantsNDJSON reports whether the request negotiated the streaming mode:
// any member of the Accept header with the application/x-ndjson media
// type and a nonzero quality weight. RFC 9110 §12.4.2 defines q=0 as
// "not acceptable" — a client sending application/x-ndjson;q=0 is
// explicitly declining the streaming representation, not requesting it.
// Buffered JSON stays the default for every other Accept value
// (including */*, which existing clients send implicitly).
func wantsNDJSON(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, member := range strings.Split(accept, ",") {
			mt, params, _ := strings.Cut(strings.TrimSpace(member), ";")
			if strings.TrimSpace(mt) == contentNDJSON && acceptQ(params) > 0 {
				return true
			}
		}
	}
	return false
}

// acceptQ extracts an Accept member's quality weight from its parameter
// list (everything after the media type's first ";"). Per RFC 9110
// §12.4.2 a qvalue runs 0 to 1 with at most three decimals and defaults
// to 1 when absent; a malformed or out-of-range value also falls back to
// 1 (lenient, like the rest of the header's parsing — only an explicit,
// well-formed q=0 declines).
func acceptQ(params string) float64 {
	for _, p := range strings.Split(params, ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
		if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
			continue
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || q < 0 || q > 1 {
			return 1
		}
		return q
	}
	return 1
}

// streamWindowSize is the reorder window: how many cells may be in
// flight or buffered awaiting in-order emission. Two cells per worker
// keeps every worker fed while the head-of-line cell is being flushed;
// the clamp bounds the window's memory on huge machines and keeps it
// useful on tiny ones.
func streamWindowSize(workers int) int {
	w := 2 * workers
	if w < 4 {
		w = 4
	}
	if w > 64 {
		w = 64
	}
	return w
}

// streamedCell is one resolved cell ready for emission: its record bytes
// (the immutable cached response — never written through) and cache
// disposition, or the error that ended it.
type streamedCell struct {
	bytes []byte
	disp  string
	err   error
}

// SweepSummaryBody is the payload of the stream's trailing summary
// record: how many cells were emitted, how many came from the result
// cache, and the stream's wall time. It replaces the buffered response's
// X-Cache-Hits/X-Sim-Duration headers, which a streaming response cannot
// carry (headers are committed before the first cell).
type SweepSummaryBody struct {
	Count     int   `json:"count"`
	CacheHits int   `json:"cacheHits"`
	WallNs    int64 `json:"wallNs"`
}

// SweepSummary is the trailing NDJSON record. The "summary" key
// distinguishes it from cell records (which carry "workload"); an
// "error" key (ErrorEnvelope) marks a stream that failed mid-flight.
type SweepSummary struct {
	SchemaVersion int              `json:"schemaVersion"`
	Summary       SweepSummaryBody `json:"summary"`
}

// streamAdmitter serializes the request's admission decision: the first
// cell that actually needs a pool slot decides via TrySubmit (a full
// queue sheds the whole request), every later submission queues with
// SubmitContext under the request's deadline — the same policy the
// buffered path applies in runGrid.
type streamAdmitter struct {
	pool *Pool
	ctx  context.Context

	mu       sync.Mutex
	admitted bool
}

func (a *streamAdmitter) admit(task func()) error {
	a.mu.Lock()
	first := !a.admitted
	a.admitted = true
	a.mu.Unlock()
	if first {
		return a.pool.TrySubmit(task)
	}
	err := a.pool.SubmitContext(a.ctx, task)
	if err != nil && !errors.Is(err, context.Canceled) {
		err = admissionError{err}
	}
	return err
}

// resolveCell obtains one normalized cell's preserialized response
// through the result cache, the per-fingerprint flight group, and the
// worker pool — the per-cell core of runGrid, reshaped for callers that
// handle one cell at a time. It runs on a dedicated (non-pool)
// goroutine, so waiter cells may park on in-flight leaders without
// risking pool deadlock, exactly like runGrid's handler-goroutine
// phase 3.
func (s *Server) resolveCell(ctx context.Context, label string, wl core.Workload, admit func(func()) error) (*cached, string, error) {
	tr := obs.FromContext(ctx)
	key := wl.Fingerprint()
	endLookup := tr.StartSpan(label + "cache-lookup")
	val, ok := s.cache.Get(key)
	endLookup()
	if ok {
		s.attachProfile(tr, label, val.profile)
		return val, dispHit, nil
	}
	f, leader := s.flights.join(key)
	if !leader {
		val, disp, err := s.awaitFlight(ctx, label, key, f, wl)
		if err != nil {
			return nil, "", err
		}
		if disp == dispCoalesced {
			s.metrics.addCoalesced()
		}
		return val, disp, nil
	}
	var (
		lval *cached
		lerr error
		done = make(chan struct{})
	)
	submitted := time.Now()
	err := admit(func() {
		defer close(done)
		tr.AddSpan(label+"queue-wait", submitted, time.Now())
		lval, lerr = s.simulateCell(ctx, label, key, wl)
		s.flights.complete(key, f, lval, lerr)
	})
	if err != nil {
		// The submission never happened; the flight must still complete —
		// other requests may be subscribed to it.
		s.flights.complete(key, f, nil, err)
		return nil, "", err
	}
	select {
	case <-done:
	case <-ctx.Done():
		// The enqueued task still runs and completes the flight; it will
		// observe the cancelled context immediately.
		return nil, "", ctx.Err()
	}
	if lerr != nil {
		return nil, "", lerr
	}
	return lval, dispMiss, nil
}

// streamSweep executes the validated sweep in streaming mode. The
// dispatcher walks the grid in order, claiming a reorder-window slot per
// cell and resolving it on its own goroutine; the handler goroutine
// drains slots in grid order, flushing each record as its cell
// completes. A failure before the first record surfaces as a normal HTTP
// error status (the overload taxonomy included); after that, the status
// is committed, so the stream ends with an in-band error record instead.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, req SweepRequest, size int) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	tr := obs.FromContext(ctx)
	// Spans past the cap record into a nil trace (every obs method is
	// nil-safe): the per-request trace must not grow O(grid).
	uncapped := obs.WithTrace(ctx, nil)

	admitter := &streamAdmitter{pool: s.pool, ctx: ctx}
	order := make(chan chan streamedCell, streamWindowSize(s.pool.Stats().Workers))

	go func() {
		defer close(order)
		for i := 0; i < size; i++ {
			slot := make(chan streamedCell, 1)
			select {
			case order <- slot:
			case <-ctx.Done():
				// The emitter stopped (client gone, deadline); undispatched
				// cells are simply never started.
				return
			}
			wl := req.Cell(i)
			if req.Trace {
				wl = withTracing(wl)
			}
			cctx, label := uncapped, ""
			if i < streamSpanCells {
				cctx, label = ctx, fmt.Sprintf("cell[%d] ", i)
			}
			go func(slot chan streamedCell, cctx context.Context, label string, wl core.Workload) {
				val, disp, err := s.resolveCell(cctx, label, wl.Normalize(), admitter.admit)
				if err != nil {
					slot <- streamedCell{err: err}
					return
				}
				slot <- streamedCell{bytes: val.body, disp: disp}
			}(slot, cctx, label, wl)
		}
	}()

	var (
		start      = time.Now()
		flusher, _ = w.(http.Flusher)
		wrote      bool
		count      int
		hits       int
	)
	fail := func(err error) {
		cancel() // stop the dispatcher and the in-flight cells
		if !wrote {
			// Nothing committed yet: a full HTTP error (429/503 sheds keep
			// their Retry-After) serves the client better than a 200 stream
			// holding only an error record.
			httpError(w, err)
			return
		}
		status, d := classify(err)
		_ = status // in-band: the 200 is already on the wire
		writeNDJSON(w, flusher, ErrorEnvelope{Error: d})
	}
	for slot := range order {
		var c streamedCell
		select {
		case c = <-slot:
		case <-ctx.Done():
			c = streamedCell{err: ctx.Err()}
		}
		if c.err != nil {
			fail(c.err)
			s.metrics.addStream(count)
			return
		}
		if !wrote {
			w.Header().Set("Content-Type", contentNDJSON)
			wrote = true
		}
		// Two Writes, not append(c.bytes, '\n'): the record is the shared
		// cached response, and appending would write into its backing
		// array — racing other requests serving the same entry.
		w.Write(c.bytes)
		io.WriteString(w, "\n")
		if flusher != nil {
			flusher.Flush()
		}
		count++
		if c.disp == dispHit {
			hits++
		}
	}
	if err := ctx.Err(); err != nil {
		fail(err)
		s.metrics.addStream(count)
		return
	}
	if !wrote {
		w.Header().Set("Content-Type", contentNDJSON)
	}
	endEncode := tr.StartSpan("encode")
	writeNDJSON(w, flusher, SweepSummary{
		SchemaVersion: SchemaVersion,
		Summary: SweepSummaryBody{
			Count:     count,
			CacheHits: hits,
			WallNs:    time.Since(start).Nanoseconds(),
		},
	})
	endEncode()
	s.metrics.addStream(count)
}

// writeNDJSON emits one NDJSON record and flushes it. A record that
// fails to marshal must not vanish silently — writeNDJSON carries the
// stream's summary and error records, and dropping one would end a 200
// stream with neither, leaving the client unable to tell a complete
// stream from a severed one. Instead the failure is logged and an
// in-band internal-error envelope takes the record's line, so the
// summary-or-error trailer invariant holds on every path.
func writeNDJSON(w http.ResponseWriter, flusher http.Flusher, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		log.Printf("service: NDJSON record %T failed to marshal: %v", v, err)
		b, _ = json.Marshal(ErrorEnvelope{Error: ErrorDetail{
			Code:    CodeInternal,
			Message: fmt.Sprintf("encode stream record: %v", err),
		}})
	}
	w.Write(b)
	io.WriteString(w, "\n")
	if flusher != nil {
		flusher.Flush()
	}
}
