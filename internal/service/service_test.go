package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := NewServer(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// sweep16 is the acceptance grid: 16 configurations of the fastest
// model (1x2x4x8 GPUs x batches 16/32 x both methods), small epochs so
// the test stays quick.
var sweep16 = SweepRequest{
	Base:    core.Workload{Images: 4096},
	Models:  []string{"lenet"},
	GPUs:    []int{1, 2, 4, 8},
	Batches: []int{16, 32},
	Methods: []core.Method{core.P2P, core.NCCL},
}

// TestSweepMatchesSequentialSimulate is the end-to-end acceptance test:
// a parallel /v1/sweep over 16 configurations must return byte-for-byte
// the same reports as 16 sequential /v1/simulate calls, and a second
// identical sweep must be served entirely from cache.
func TestSweepMatchesSequentialSimulate(t *testing.T) {
	grid := sweep16.Expand()
	if len(grid) != 16 {
		t.Fatalf("grid has %d configs, want 16", len(grid))
	}

	// Sequential reference on its own server (its own cold cache).
	_, seqTS := newTestServer(t, Config{Workers: 1})
	sequential := make([][]byte, len(grid))
	for i, wl := range grid {
		resp, body := post(t, seqTS.URL+"/v1/simulate", wl)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate config %d: %d %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Cache"); got != "MISS" {
			t.Fatalf("simulate config %d on a cold cache: X-Cache = %q", i, got)
		}
		sequential[i] = bytes.TrimSpace(body)
	}

	// Parallel sweep on a fresh server: cold cache, full fan-out.
	svc, ts := newTestServer(t, Config{Workers: 8})
	resp, body := post(t, ts.URL+"/v1/sweep", sweep16)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Count != len(grid) || len(sr.Results) != len(grid) {
		t.Fatalf("sweep returned %d/%d results, want %d", sr.Count, len(sr.Results), len(grid))
	}
	for i := range grid {
		if !bytes.Equal(bytes.TrimSpace(sr.Results[i]), sequential[i]) {
			t.Errorf("config %d: parallel sweep result differs from sequential simulate\nsweep: %s\nseq:   %s",
				i, sr.Results[i], sequential[i])
		}
	}
	if hits := resp.Header.Get("X-Cache-Hits"); hits != "0" {
		t.Errorf("cold sweep reported %s cache hits, want 0", hits)
	}

	// The second identical sweep must be served entirely from cache.
	before := svc.CacheStats()
	resp2, body2 := post(t, ts.URL+"/v1/sweep", sweep16)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second sweep: %d %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body, body2) {
		t.Error("second sweep body differs from the first; responses must be deterministic")
	}
	after := svc.CacheStats()
	if got := after.Hits - before.Hits; got != uint64(len(grid)) {
		t.Errorf("second sweep hit the cache %d times, want %d", got, len(grid))
	}
	if hits, _ := strconv.Atoi(resp2.Header.Get("X-Cache-Hits")); hits != len(grid) {
		t.Errorf("X-Cache-Hits = %q, want %d", resp2.Header.Get("X-Cache-Hits"), len(grid))
	}
}

func TestSimulateCacheHitHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wl := core.Workload{Model: "lenet", GPUs: 2, Batch: 16, Images: 4096}
	resp1, body1 := post(t, ts.URL+"/v1/simulate", wl)
	if resp1.Header.Get("X-Cache") != "MISS" {
		t.Errorf("first request X-Cache = %q, want MISS", resp1.Header.Get("X-Cache"))
	}
	resp2, body2 := post(t, ts.URL+"/v1/simulate", wl)
	if resp2.Header.Get("X-Cache") != "HIT" {
		t.Errorf("second request X-Cache = %q, want HIT", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit must return identical bytes")
	}
	// A workload that only differs in defaults must hit too.
	resp3, _ := post(t, ts.URL+"/v1/simulate",
		core.Workload{Model: "lenet", GPUs: 2, Batch: 16, Method: core.NCCL, Images: 4096})
	if resp3.Header.Get("X-Cache") != "HIT" {
		t.Error("canonically-equal workload should hit the cache")
	}
}

// The API and the CLI share core.Validate, so a bad config is rejected
// with the same error text the CLI prints.
func TestSimulateRejectsLikeValidate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := core.Workload{Model: "vgg", GPUs: 2, Batch: 16}
	resp, body := post(t, ts.URL+"/v1/simulate", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e ErrorEnvelope
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != CodeBadRequest {
		t.Errorf("error code = %q, want %q", e.Error.Code, CodeBadRequest)
	}
	if want := bad.Validate().Error(); e.Error.Message != want {
		t.Errorf("API error %q differs from core.Validate's %q", e.Error.Message, want)
	}
}

func TestSweepRejectsBadConfigBeforeRunning(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	req := SweepRequest{
		Base:    core.Workload{Batch: 16},
		Models:  []string{"lenet", "bogus"},
		GPUs:    []int{1},
		Methods: []core.Method{core.NCCL},
	}
	resp, body := post(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `unknown model \"bogus\"`) &&
		!strings.Contains(string(body), "unknown model") {
		t.Errorf("error should name the bad model: %s", body)
	}
	if st := svc.PoolStats(); st.Completed != 0 {
		t.Errorf("%d simulations ran despite the invalid grid", st.Completed)
	}
}

func TestCompareEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/compare", core.Workload{Model: "lenet", GPUs: 4, Batch: 16, Images: 4096})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare: %d %s", resp.StatusCode, body)
	}
	var out CompareResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion != SchemaVersion {
		t.Errorf("schemaVersion = %d, want %d", out.SchemaVersion, SchemaVersion)
	}
	if len(out.Results) != 2 || out.Results[0].Method != core.P2P || out.Results[1].Method != core.NCCL {
		t.Fatalf("compare must return [p2p nccl] in order, got %+v", out.Results)
	}
	p, n := out.Results[0].Report, out.Results[1].Report
	if p == nil || n == nil {
		t.Fatalf("compare must return both reports, got %+v", out.Results)
	}
	if p.EpochTime <= 0 || n.EpochTime <= 0 {
		t.Error("degenerate compare reports")
	}
	// The paper's LeNet finding survives the service layer: P2P wins.
	if p.EpochTime >= n.EpochTime {
		t.Error("P2P should beat NCCL for LeNet")
	}
}

func TestModelsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Models) != len(core.Models()) {
		t.Fatalf("listed %d models, want %d", len(out.Models), len(core.Models()))
	}
	for _, m := range out.Models {
		if m.Name == "" || m.Params <= 0 {
			t.Errorf("degenerate model entry %+v", m)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "ok\n" {
		t.Errorf("healthz = %q", b)
	}

	post(t, ts.URL+"/v1/simulate", core.Workload{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096})
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`dgxsimd_requests_total{path="/v1/simulate"} 1`,
		"dgxsimd_cache_misses_total 1",
		"dgxsimd_cache_size 1",
		"dgxsimd_pool_workers",
		`dgxsimd_latency_seconds{path="/v1/simulate",quantile="0.99"}`,
		"dgxsimd_uptime_seconds",
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metrics missing %q:\n%s", want, b)
		}
	}
}

func TestSimulateTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: time.Nanosecond})
	resp, body := post(t, ts.URL+"/v1/simulate", core.Workload{Model: "inception-v3", GPUs: 8, Batch: 16})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
}

// Every endpoint must answer a wrong-method request with 405 Method Not
// Allowed and an Allow header naming what it accepts — not the 400 "use
// POST" the service used to return.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	endpoints := []struct{ path, allow string }{
		{"/v1/simulate", "POST"},
		{"/v1/compare", "POST"},
		{"/v1/sweep", "POST"},
		{"/v1/validate", "POST"},
		{"/v1/models", "GET"},
		{"/v1/trace/deadbeef00000000", "GET"},
		{"/healthz", "GET"},
		{"/metrics", "GET"},
	}
	methods := []string{"GET", "POST", "PUT", "DELETE", "PATCH"}
	for _, ep := range endpoints {
		for _, method := range methods {
			if method == ep.allow {
				continue // the allowed method is covered by the endpoint's own tests
			}
			t.Run(method+" "+ep.path, func(t *testing.T) {
				req, err := http.NewRequest(method, ts.URL+ep.path, strings.NewReader("{}"))
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusMethodNotAllowed {
					t.Errorf("status = %d, want 405", resp.StatusCode)
				}
				if got := resp.Header.Get("Allow"); got != ep.allow {
					t.Errorf("Allow = %q, want %q", got, ep.allow)
				}
			})
		}
	}
}

// statusRecorder must forward the http.Flusher upgrade: an instrumented
// streaming handler that type-asserts its writer to http.Flusher has to
// keep flushing through the wrapper.
func TestStatusRecorderPreservesFlusher(t *testing.T) {
	rec := httptest.NewRecorder() // a Flusher
	var w http.ResponseWriter = &statusRecorder{ResponseWriter: rec, status: http.StatusOK}
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not type-assert to http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Error("Flush was not forwarded to the wrapped writer")
	}
}

// A panic inside a pool task must surface as that request's 500 while
// the daemon keeps serving — net/http's per-request recovery does not
// cover worker goroutines, so this is the pool's own job.
func TestPanickingPoolTaskYields500NotDeadProcess(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	// A handler that fans a poisoned task out on the server's pool,
	// exactly like the simulate/sweep handlers fan out their cells.
	panicky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		err := svc.pool.Map(r.Context(), 1, func(context.Context, int) error { panic("poisoned cell") })
		if err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer panicky.Close()

	resp, err := http.Get(panicky.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking task returned %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "poisoned cell") {
		t.Errorf("error body should carry the panic value: %s", body)
	}
	if got := svc.PoolStats().Panics; got != 1 {
		t.Errorf("pool Panics = %d, want 1", got)
	}

	// The daemon must still be fully alive: same pool, real simulation.
	resp2, body2 := post(t, ts.URL+"/v1/simulate", core.Workload{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("simulate after a pool panic = %d (%s); the pool must survive", resp2.StatusCode, body2)
	}
}

// Concurrent identical and distinct requests against one server — the
// shared cache, pool, and metrics under -race.
func TestConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			wl := core.Workload{Model: "lenet", GPUs: 1 + g%2, Batch: 16, Images: 4096}
			for i := 0; i < 3; i++ {
				b, _ := json.Marshal(wl)
				resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: status %d", g, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSweepExpandGridOrder(t *testing.T) {
	req := SweepRequest{
		Base:    core.Workload{Batch: 16},
		Models:  []string{"a", "b"},
		GPUs:    []int{1, 2},
		Methods: []core.Method{"p2p"},
	}
	grid := req.Expand()
	want := []string{"a/1", "a/2", "b/1", "b/2"}
	if len(grid) != len(want) {
		t.Fatalf("grid len %d, want %d", len(grid), len(want))
	}
	for i, w := range grid {
		if got := fmt.Sprintf("%s/%d", w.Model, w.GPUs); got != want[i] {
			t.Errorf("grid[%d] = %s, want %s (models -> gpus -> batches -> methods order)", i, got, want[i])
		}
		if w.Batch != 16 {
			t.Errorf("grid[%d] should inherit the base batch", i)
		}
	}
}
