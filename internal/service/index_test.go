package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestIndexAdvertisesEveryRoutedEndpoint holds GET /v1/ and the mux
// together: the index must list exactly the endpoint table (which
// NewServer also registers routes from), and every advertised
// path/method pair must actually be routed — a request with a listed
// method never sees the mux's 404 or the service's 405.
func TestIndexAdvertisesEveryRoutedEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/ = %d, want 200", resp.StatusCode)
	}
	var idx IndexResponse
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	if idx.SchemaVersion != SchemaVersion {
		t.Errorf("schemaVersion = %d, want %d", idx.SchemaVersion, SchemaVersion)
	}
	if len(idx.Endpoints) != len(apiEndpoints) {
		t.Fatalf("index lists %d endpoints, table has %d", len(idx.Endpoints), len(apiEndpoints))
	}
	for i, e := range apiEndpoints {
		got := idx.Endpoints[i]
		if got.Path != e.path {
			t.Errorf("endpoint %d: path %q, want %q", i, got.Path, e.path)
		}
		if strings.Join(got.Methods, ",") != strings.Join(e.methods, ",") {
			t.Errorf("%s: methods %v, want %v", e.path, got.Methods, e.methods)
		}
		if len(got.ContentTypes) == 0 {
			t.Errorf("%s advertises no content types", e.path)
		}
	}

	// Every advertised path answers its advertised methods: never the
	// mux's 404 page, never a 405. (Handlers may still 400/404 the
	// particular request — an empty POST body, a missing trace id — which
	// is routing working, not drift.)
	for _, e := range idx.Endpoints {
		path := strings.ReplaceAll(e.Path, "{id}", "deadbeef00000000")
		for _, method := range e.Methods {
			resp, err := http.DefaultClient.Do(mustReq(t, method, ts.URL+path, "{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusMethodNotAllowed {
				t.Errorf("%s %s: 405 for an advertised method", method, path)
			}
			// The stdlib mux 404s unrouted paths with a text/plain body;
			// our own not_found envelope is JSON. Any JSON status is a
			// routed handler answering.
			if resp.StatusCode == http.StatusNotFound &&
				!strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
				t.Errorf("%s %s: fell through to the mux 404", method, path)
			}
		}
	}
}

// Unknown /v1/* paths answer with the not_found envelope, not the
// stdlib's bare text 404.
func TestUnknownV1PathGetsEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	d := decodeEnvelope(t, readAll(t, resp))
	if d.Code != CodeNotFound {
		t.Errorf("code = %q, want %q", d.Code, CodeNotFound)
	}
	if !strings.Contains(d.Message, "/v1/") {
		t.Errorf("message %q should point the client at GET /v1/", d.Message)
	}
}

// The index itself rejects non-GET with 405 + Allow.
func TestIndexMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.DefaultClient.Do(mustReq(t, http.MethodPost, ts.URL+"/v1/", "{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Errorf("Allow = %q, want GET", allow)
	}
}

// metricsLabel trims only subtree registrations.
func TestMetricsLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"/v1/trace/", "/v1/trace"},
		{"/v1/sweep", "/v1/sweep"},
		{"/v1/", "/v1"},
		{"/healthz", "/healthz"},
	} {
		if got := metricsLabel(tc.in); got != tc.want {
			t.Errorf("metricsLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
