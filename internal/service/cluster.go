// The fleet-simulation endpoint: POST /v1/cluster/simulate runs a
// cluster.Spec — N simulated DGX-1 nodes serving a job trace under a
// placement policy — and returns the cluster-level outcome (JCT and
// queueing-delay distributions, utilization, makespan). The whole
// simulation is one admission-controlled pool task, so it inherits the
// service's overload semantics: a full queue sheds it with 429 +
// Retry-After before any work starts, and the request deadline
// propagates into every scheduling epoch and pricing simulation (504
// mid-work, 499 when the client goes away).
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// maxClusterBodyBytes caps /v1/cluster/simulate request bodies. Explicit
// traces are the one legitimately large request this service accepts (a
// MaxJobs trace at ~100 bytes per job approaches 10 MiB), so the cap is
// its own, larger than the workload endpoints' maxBodyBytes.
const maxClusterBodyBytes = 16 << 20

// ClusterRequest is the versioned /v1/cluster/simulate body: a
// cluster.Spec plus schemaVersion.
type ClusterRequest struct {
	SchemaVersion int `json:"schemaVersion"`
	cluster.Spec
}

// ClusterResponse carries the cluster-level outcome.
type ClusterResponse struct {
	SchemaVersion int             `json:"schemaVersion"`
	Result        *cluster.Result `json:"result"`
}

func (s *Server) handleClusterSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	tr := obs.FromContext(r.Context())
	r.Body = http.MaxBytesReader(w, r.Body, maxClusterBodyBytes)
	endDecode := tr.StartSpan("decode")
	var req ClusterRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	endDecode()
	if err != nil {
		httpError(w, badRequestError{fmt.Errorf("decode cluster spec: %w", err)})
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		httpError(w, err)
		return
	}
	if err := req.Spec.Validate(); err != nil {
		httpError(w, badRequestError{err})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// One pool task for the whole fleet simulation: TrySubmit is the
	// admission decision (full queue -> 429 before any pricing work), and
	// the task runs on a worker so cluster simulations compete with
	// single-node simulations for the same bounded capacity instead of
	// bypassing it. The handler goroutine waits; cancellation reaches the
	// event loop through ctx.
	var (
		res    *cluster.Result
		simErr error
		done   = make(chan struct{})
	)
	submitted := time.Now()
	task := func() {
		defer close(done)
		tr.AddSpan("queue-wait", submitted, time.Now())
		defer func() {
			if p := recover(); p != nil {
				s.pool.recordPanic()
				simErr = fmt.Errorf("panic: %v", p)
			}
		}()
		start := time.Now()
		res, simErr = cluster.Simulate(ctx, req.Spec)
		if simErr == nil {
			s.metrics.addCluster(res.Jobs, time.Since(start))
		}
	}
	if err := s.pool.TrySubmit(task); err != nil {
		httpError(w, err)
		return
	}
	<-done
	if simErr != nil {
		httpError(w, simErr)
		return
	}
	endEncode := tr.StartSpan("encode")
	defer endEncode()
	b, err := json.Marshal(ClusterResponse{SchemaVersion: SchemaVersion, Result: res})
	if err != nil {
		httpError(w, err)
		return
	}
	// Fleet results are not result-cached (a spec is a whole trace, not a
	// cell); MISS records "this request computed it" for the access log's
	// disposition field and the X-Cache surface clients already read.
	w.Header().Set("X-Cache", "MISS")
	w.Header().Set("X-Sim-Duration", tr.Dur("cluster.simulate").String())
	writeJSONBytes(w, b)
}
