package service

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyWindow bounds the per-endpoint latency reservoir: percentiles
// are computed over the most recent window, so /metrics stays O(1)
// memory no matter how long the daemon runs.
const latencyWindow = 512

// metrics aggregates per-endpoint request counters and recent-latency
// percentiles for the plain-text /metrics endpoint.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	requests uint64
	errors   uint64
	window   []time.Duration // ring buffer of the latest latencies
	next     int
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics)}
}

// observe records one request's outcome.
func (m *metrics) observe(path string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[path]
	if e == nil {
		e = &endpointMetrics{}
		m.endpoints[path] = e
	}
	e.requests++
	if failed {
		e.errors++
	}
	if len(e.window) < latencyWindow {
		e.window = append(e.window, d)
	} else {
		e.window[e.next] = d
		e.next = (e.next + 1) % latencyWindow
	}
}

// quantile returns the q-th (0..1) latency of a sorted window using the
// nearest-rank definition: the ⌈q·n⌉-th smallest sample. An earlier
// version floored the interpolated index, which made p99 over small
// windows report the *minimum* sample (2 samples: int(0.99*1) = 0); with
// nearest-rank a high quantile always lands on the top of the window.
func quantile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// render writes the exposition text: request counts, error counts and
// latency percentiles per endpoint, plus the cache and pool gauges.
func (m *metrics) render(cs CacheStats, ps PoolStats) string {
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "dgxsimd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	paths := make([]string, 0, len(m.endpoints))
	for p := range m.endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		e := m.endpoints[p]
		fmt.Fprintf(&b, "dgxsimd_requests_total{path=%q} %d\n", p, e.requests)
		fmt.Fprintf(&b, "dgxsimd_request_errors_total{path=%q} %d\n", p, e.errors)
		sorted := append([]time.Duration(nil), e.window...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []struct {
			label string
			v     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
			fmt.Fprintf(&b, "dgxsimd_latency_seconds{path=%q,quantile=%q} %.6f\n",
				p, q.label, quantile(sorted, q.v).Seconds())
		}
	}

	fmt.Fprintf(&b, "dgxsimd_cache_size %d\n", cs.Size)
	fmt.Fprintf(&b, "dgxsimd_cache_max %d\n", cs.Max)
	fmt.Fprintf(&b, "dgxsimd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(&b, "dgxsimd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(&b, "dgxsimd_cache_evictions_total %d\n", cs.Evictions)

	fmt.Fprintf(&b, "dgxsimd_pool_workers %d\n", ps.Workers)
	fmt.Fprintf(&b, "dgxsimd_pool_queued %d\n", ps.Queued)
	fmt.Fprintf(&b, "dgxsimd_pool_active %d\n", ps.Active)
	fmt.Fprintf(&b, "dgxsimd_pool_completed_total %d\n", ps.Completed)
	return b.String()
}
