package service

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
)

// latencyWindow bounds the per-endpoint latency reservoir: percentiles
// are computed over the most recent window, so /metrics stays O(1)
// memory no matter how long the daemon runs.
const latencyWindow = 512

// latencyBuckets are the fixed histogram upper bounds (seconds) for the
// Prometheus-style cumulative series. The window percentiles above give
// a recent view; the histograms accumulate forever, so a scraper can
// rate() them across the daemon's whole life. Bounds span the observed
// range: cache hits land in the low-millisecond buckets, cold
// inception-class simulations in the seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// metrics aggregates per-endpoint request counters, recent-latency
// percentiles, cumulative latency histograms, in-flight gauges, and the
// overload counters (requests shed, requests coalesced) for the
// plain-text /metrics endpoint.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointMetrics

	// shed counts requests refused under overload (429 queue-full, 503
	// deadline-unmeetable); coalesced counts simulations a request
	// obtained from another request's in-flight run instead of its own.
	shed      uint64
	coalesced uint64

	// Streaming-sweep counters: streams counts NDJSON sweep responses
	// (completed or not), streamedCells the cell records actually flushed
	// across all of them.
	streams       uint64
	streamedCells uint64

	// Cluster-simulation counters: clusterJobs accumulates jobs scheduled
	// across all fleet simulations; the clusterSim histogram observes
	// each simulation's wall time (a whole trace is one observation, so
	// its distribution is separate from the per-request latency series).
	clusterJobs    uint64
	clusterBuckets []uint64
	clusterCount   uint64
	clusterSum     time.Duration
}

// addCluster records one completed fleet simulation: its scheduled job
// count and its wall time.
func (m *metrics) addCluster(jobs int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clusterJobs += uint64(jobs)
	m.clusterCount++
	m.clusterSum += d
	secs := d.Seconds()
	for i, le := range latencyBuckets {
		if secs <= le {
			m.clusterBuckets[i]++
		}
	}
}

// addShed counts one request refused under overload.
func (m *metrics) addShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed++
}

// addCoalesced counts one cell served by another request's in-flight
// simulation.
func (m *metrics) addCoalesced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coalesced++
}

// addStream records one finished (or aborted) NDJSON sweep stream and
// how many cell records it flushed.
func (m *metrics) addStream(cells int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.streams++
	m.streamedCells += uint64(cells)
}

type endpointMetrics struct {
	requests uint64
	errors   uint64
	inflight int64
	window   []time.Duration // ring buffer of the latest latencies
	next     int

	// Cumulative histogram: buckets[i] counts observations <=
	// latencyBuckets[i]; the +Inf bucket is the request count.
	buckets []uint64
	sum     time.Duration
}

func newMetrics() *metrics {
	return &metrics{
		start:          time.Now(),
		endpoints:      make(map[string]*endpointMetrics),
		clusterBuckets: make([]uint64, len(latencyBuckets)),
	}
}

// endpoint returns the (created-on-first-use) record for a path. Callers
// must hold mu.
func (m *metrics) endpoint(path string) *endpointMetrics {
	e := m.endpoints[path]
	if e == nil {
		e = &endpointMetrics{buckets: make([]uint64, len(latencyBuckets))}
		m.endpoints[path] = e
	}
	return e
}

// startRequest marks a request in flight on its endpoint.
func (m *metrics) startRequest(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.endpoint(path).inflight++
}

// observe records one request's outcome and takes it out of flight.
func (m *metrics) observe(path string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoint(path)
	if e.inflight > 0 {
		e.inflight--
	}
	e.requests++
	if failed {
		e.errors++
	}
	if len(e.window) < latencyWindow {
		e.window = append(e.window, d)
	} else {
		e.window[e.next] = d
		e.next = (e.next + 1) % latencyWindow
	}
	secs := d.Seconds()
	for i, le := range latencyBuckets {
		if secs <= le {
			e.buckets[i]++
		}
	}
	e.sum += d
}

// quantile returns the q-th (0..1) latency of a sorted window using the
// nearest-rank definition: the ⌈q·n⌉-th smallest sample. An earlier
// version floored the interpolated index, which made p99 over small
// windows report the *minimum* sample (2 samples: int(0.99*1) = 0); with
// nearest-rank a high quantile always lands on the top of the window.
func quantile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// render writes the exposition text: request counts, error counts,
// in-flight gauges, latency percentiles and cumulative histograms per
// endpoint, plus the cache and pool gauges. pst carries the snapshot
// store's counters when persistence is configured (nil omits the series
// — their absence distinguishes "no -cache-dir" from "nothing persisted
// yet").
func (m *metrics) render(cs CacheStats, ps PoolStats, pst *persist.Stats) string {
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "dgxsimd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	paths := make([]string, 0, len(m.endpoints))
	for p := range m.endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		e := m.endpoints[p]
		fmt.Fprintf(&b, "dgxsimd_requests_total{path=%q} %d\n", p, e.requests)
		fmt.Fprintf(&b, "dgxsimd_request_errors_total{path=%q} %d\n", p, e.errors)
		fmt.Fprintf(&b, "dgxsimd_inflight{path=%q} %d\n", p, e.inflight)
		sorted := append([]time.Duration(nil), e.window...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []struct {
			label string
			v     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
			fmt.Fprintf(&b, "dgxsimd_latency_seconds{path=%q,quantile=%q} %.6f\n",
				p, q.label, quantile(sorted, q.v).Seconds())
		}
		for i, le := range latencyBuckets {
			fmt.Fprintf(&b, "dgxsimd_request_duration_seconds_bucket{path=%q,le=\"%g\"} %d\n",
				p, le, e.buckets[i])
		}
		fmt.Fprintf(&b, "dgxsimd_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", p, e.requests)
		fmt.Fprintf(&b, "dgxsimd_request_duration_seconds_sum{path=%q} %.6f\n", p, e.sum.Seconds())
		fmt.Fprintf(&b, "dgxsimd_request_duration_seconds_count{path=%q} %d\n", p, e.requests)
	}

	fmt.Fprintf(&b, "dgxsimd_cache_size %d\n", cs.Size)
	fmt.Fprintf(&b, "dgxsimd_cache_max %d\n", cs.Max)
	fmt.Fprintf(&b, "dgxsimd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(&b, "dgxsimd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(&b, "dgxsimd_cache_evictions_total %d\n", cs.Evictions)

	if pst != nil {
		fmt.Fprintf(&b, "dgxsimd_persist_loaded_total %d\n", pst.Loaded)
		fmt.Fprintf(&b, "dgxsimd_persist_skipped_total %d\n", pst.Skipped)
		fmt.Fprintf(&b, "dgxsimd_persist_writes_total %d\n", pst.Writes)
		fmt.Fprintf(&b, "dgxsimd_persist_write_errors_total %d\n", pst.WriteErrors)
		fmt.Fprintf(&b, "dgxsimd_persist_dropped_total %d\n", pst.Dropped)
	}

	fmt.Fprintf(&b, "dgxsimd_shed_total %d\n", m.shed)
	fmt.Fprintf(&b, "dgxsimd_coalesced_total %d\n", m.coalesced)

	fmt.Fprintf(&b, "dgxsimd_sweep_streams_total %d\n", m.streams)
	fmt.Fprintf(&b, "dgxsimd_sweep_streamed_cells_total %d\n", m.streamedCells)
	// How many train.Windows this process actually compiled — the compile
	// economy of the split artifact key (cells differing only in
	// extrapolation parameters share one compiled window).
	fmt.Fprintf(&b, "dgxsimd_compile_windows_total %d\n", core.CompileCount())

	fmt.Fprintf(&b, "dgxsimd_cluster_jobs_total %d\n", m.clusterJobs)
	for i, le := range latencyBuckets {
		fmt.Fprintf(&b, "dgxsimd_cluster_sim_seconds_bucket{le=\"%g\"} %d\n", le, m.clusterBuckets[i])
	}
	fmt.Fprintf(&b, "dgxsimd_cluster_sim_seconds_bucket{le=\"+Inf\"} %d\n", m.clusterCount)
	fmt.Fprintf(&b, "dgxsimd_cluster_sim_seconds_sum %.6f\n", m.clusterSum.Seconds())
	fmt.Fprintf(&b, "dgxsimd_cluster_sim_seconds_count %d\n", m.clusterCount)
	// Admission-queue occupancy: depth is the tasks currently waiting
	// (or blocked submitting), capacity the -queue-depth bound sheds
	// kick in past.
	fmt.Fprintf(&b, "dgxsimd_admission_queue_depth %d\n", ps.Queued)
	fmt.Fprintf(&b, "dgxsimd_admission_queue_capacity %d\n", ps.QueueDepth)

	fmt.Fprintf(&b, "dgxsimd_pool_workers %d\n", ps.Workers)
	fmt.Fprintf(&b, "dgxsimd_pool_queued %d\n", ps.Queued)
	fmt.Fprintf(&b, "dgxsimd_pool_active %d\n", ps.Active)
	fmt.Fprintf(&b, "dgxsimd_pool_completed_total %d\n", ps.Completed)
	fmt.Fprintf(&b, "dgxsimd_pool_panics_total %d\n", ps.Panics)
	fmt.Fprintf(&b, "dgxsimd_pool_queue_wait_seconds_total %.6f\n", ps.QueueWait.Seconds())
	return b.String()
}
