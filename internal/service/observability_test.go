package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// tracedLenet is the canonical trace-opt-in request body: a fast
// workload plus the "trace": true flag that retains simulator intervals.
func tracedLenet() map[string]any {
	return map[string]any{
		"Model": "lenet", "GPUs": 2, "Batch": 16, "Images": int64(4096),
		"trace": true,
	}
}

// Every response must carry an X-Request-ID; a client-supplied one must
// be propagated, not replaced.
func TestRequestIDAssignedAndPropagated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Errorf("assigned X-Request-ID = %q, want a 16-char id", id)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-chosen-id")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "client-chosen-id" {
		t.Errorf("propagated X-Request-ID = %q, want the client's", got)
	}
}

// The acceptance path: a "trace": true simulate returns an
// X-Request-ID, and GET /v1/trace/{id} serves a Chrome trace holding
// both the service spans (decode/queue-wait/cache-lookup/simulate/
// encode) and the inner FP/BP/WU simulator stages.
func TestTraceEndpointServesServiceAndSimulatorSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/simulate", tracedLenet())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced simulate = %d (%s)", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("traced simulate returned no X-Request-ID")
	}
	if simDur := resp.Header.Get("X-Sim-Duration"); simDur == "" || simDur == "0s" {
		t.Errorf("X-Sim-Duration = %q, want a positive duration on a cold run", simDur)
	}
	if cache := resp.Header.Get("X-Cache"); cache != "MISS" {
		t.Errorf("X-Cache = %q, want MISS", cache)
	}

	tresp, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s = %d (%s)", id, tresp.StatusCode, tbody)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbody, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome-trace JSON: %v\n%s", err, tbody[:min(len(tbody), 300)])
	}
	names := make(map[string]bool)
	stages := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
		if s, ok := ev.Args["stage"]; ok {
			stages[s] = true
		}
	}
	for _, span := range []string{"decode", "queue-wait", "cache-lookup", "simulate", "encode"} {
		if !names[span] {
			t.Errorf("trace missing service span %q", span)
		}
	}
	for _, stage := range []string{"FP", "BP", "WU"} {
		if !stages[stage] {
			t.Errorf("trace missing inner simulator stage %q", stage)
		}
	}

	// An id the store never saw is a 404, not an empty 200.
	nf, err := http.Get(ts.URL + "/v1/trace/ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, nf.Body)
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id = %d, want 404", nf.StatusCode)
	}
}

// Without the opt-in, the request still records service spans but the
// run retains no simulator intervals; a cache hit reports 0s simulate.
func TestTraceWithoutOptInHasNoSimulatorStages(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wl := core.Workload{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096}
	resp, _ := post(t, ts.URL+"/v1/simulate", wl)
	id := resp.Header.Get("X-Request-ID")
	tresp, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace of untraced request = %d, want 200 (service spans only)", tresp.StatusCode)
	}
	if strings.Contains(string(tbody), `"stage":"FP"`) {
		t.Error("untraced request's trace should not carry simulator intervals")
	}
	if !strings.Contains(string(tbody), `"decode"`) {
		t.Error("untraced request's trace should still carry service spans")
	}

	// Cache hit: simulate span is absent, header says 0s.
	resp2, _ := post(t, ts.URL+"/v1/simulate", wl)
	if resp2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second identical simulate should hit the cache")
	}
	if got := resp2.Header.Get("X-Sim-Duration"); got != "0s" {
		t.Errorf("cache hit X-Sim-Duration = %q, want 0s", got)
	}
}

// A traced sweep's trace attributes per-cell timings back to the one
// originating request.
func TestSweepTraceAttributesCells(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	req := SweepRequest{
		Trace:   true,
		Base:    core.Workload{Images: 4096},
		Models:  []string{"lenet"},
		GPUs:    []int{1, 2},
		Batches: []int{16},
		Methods: []core.Method{core.NCCL},
	}
	resp, body := post(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced sweep = %d (%s)", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Request-ID")
	tresp, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	for _, want := range []string{`"cell[0] simulate"`, `"cell[1] simulate"`, `"cell[0] queue-wait"`, `"stage":"FP"`} {
		if !strings.Contains(string(tbody), want) {
			t.Errorf("sweep trace missing %s", want)
		}
	}
}

// /metrics must expose the new queue-wait, panic, in-flight, and
// histogram series after traffic.
func TestMetricsExposesObservabilitySeries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/simulate", core.Workload{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"dgxsimd_pool_queue_wait_seconds_total ",
		"dgxsimd_pool_panics_total 0",
		`dgxsimd_inflight{path="/v1/simulate"} 0`,
		`dgxsimd_request_duration_seconds_bucket{path="/v1/simulate",le="+Inf"} 1`,
		`dgxsimd_request_duration_seconds_count{path="/v1/simulate"} 1`,
		`dgxsimd_request_duration_seconds_sum{path="/v1/simulate"} `,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metrics missing %q:\n%s", want, b)
		}
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// With AccessLog configured, each request emits one JSON line carrying
// id, method, path, status, cache disposition, queue depth, and latency.
func TestAccessLogEmitsStructuredLines(t *testing.T) {
	var buf syncBuffer
	svc := NewServer(Config{AccessLog: &buf})
	t.Cleanup(svc.Close)

	// Drive the handler synchronously so the log line is flushed before
	// we read the buffer.
	body, _ := json.Marshal(core.Workload{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096})
	req := httptest.NewRequest("POST", "/v1/simulate", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "log-test-request")
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate = %d (%s)", rec.Code, rec.Body.String())
	}

	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no access-log line emitted")
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, line)
	}
	cases := []struct {
		key  string
		want any
	}{
		{"id", "log-test-request"},
		{"method", "POST"},
		{"path", "/v1/simulate"},
		{"status", float64(http.StatusOK)},
		{"cache", "MISS"},
	}
	for _, c := range cases {
		if got := entry[c.key]; got != c.want {
			t.Errorf("log[%q] = %v, want %v (line: %s)", c.key, got, c.want, line)
		}
	}
	for _, key := range []string{"latency", "queueDepth", "time", "msg"} {
		if _, ok := entry[key]; !ok {
			t.Errorf("log line missing %q: %s", key, line)
		}
	}
}

// The trace store is bounded: old request ids age out once the store
// wraps, and the endpoint says so with a 404.
func TestTraceStoreBounded(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceStore: 4})
	resp, _ := post(t, ts.URL+"/v1/simulate", core.Workload{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096})
	first := resp.Header.Get("X-Request-ID")
	for i := 0; i < 5; i++ {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
	nf, err := http.Get(ts.URL + "/v1/trace/" + first)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, nf.Body)
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("evicted trace id = %d, want 404", nf.StatusCode)
	}
}
