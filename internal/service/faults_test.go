package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
)

// A fault plan must round-trip the wire: accepted by /v1/simulate, echoed
// back normalized in the report's workload, cached separately from the
// healthy run, and visibly slower where the physics say so.
func TestSimulateFaultedWorkloadRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	healthy := core.Workload{Model: "alexnet", GPUs: 8, Batch: 16, Images: 4096, Method: core.NCCL}
	faulted := healthy
	// Deliberately non-canonical spelling: reversed pair order.
	faulted.Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 1, B: 0}, {A: 2, B: 0}}}

	resp, body := post(t, ts.URL+"/v1/simulate", healthy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy simulate: %d %s", resp.StatusCode, body)
	}
	var h core.Report
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}

	resp, body = post(t, ts.URL+"/v1/simulate", faulted)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted simulate: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Errorf("faulted run must not hit the healthy run's cache entry, X-Cache = %q",
			resp.Header.Get("X-Cache"))
	}
	var f core.Report
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatal(err)
	}
	if f.Workload.Faults == nil {
		t.Fatal("report workload does not echo the fault plan")
	}
	want := []faults.Link{{A: 0, B: 1}, {A: 0, B: 2}}
	if got := f.Workload.Faults.FailedLinks; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("echoed fault plan not normalized: %+v", got)
	}
	if f.WU <= h.WU {
		t.Errorf("faulted WU %v must exceed healthy %v", f.WU, h.WU)
	}

	// The same plan spelled canonically is the same cache entry.
	canonical := healthy
	canonical.Faults = &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}, {A: 0, B: 2}}}
	resp, _ = post(t, ts.URL+"/v1/simulate", canonical)
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Errorf("canonical spelling of the same plan should hit the cache, X-Cache = %q",
			resp.Header.Get("X-Cache"))
	}
}

func TestValidateRejectsBadFaultPlan(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := core.Workload{Model: "lenet", GPUs: 8, Batch: 16,
		Faults: &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 4}}}}
	resp, body := post(t, ts.URL+"/v1/validate", bad)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("validate: %d %s", resp.StatusCode, body)
	}
	var vr ValidateResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Valid || !strings.Contains(vr.Error, "no NVLink") {
		t.Errorf("bad fault plan not rejected: valid=%v error=%q", vr.Valid, vr.Error)
	}
}

// Oversized request bodies must be cut off with 413, not read to the end.
func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	big := make([]byte, maxBodyBytes+1024)
	for i := range big {
		big[i] = ' '
	}
	copy(big, `{"Model":"lenet","GPUs":2,"Batch":16,"pad":"`)
	big[len(big)-2] = '"'
	big[len(big)-1] = '}'
	for _, path := range []string{"/v1/simulate", "/v1/compare", "/v1/sweep", "/v1/validate"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(big))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s with %d-byte body: status %d, want 413", path, len(big), resp.StatusCode)
		}
	}
}
