package service

import (
	"container/list"
	"sync"

	"repro/internal/profiler"
)

// cached is one result-cache value: the preserialized response envelope
// (the exact bytes marshalReport produced, schemaVersion included) plus,
// for traced runs only, the simulator profile whose retained intervals
// back /v1/trace. Body is immutable by contract — every holder shares
// the one slice and only ever writes it to a ResponseWriter — which is
// what makes cache hits byte-identical by construction and removes the
// shared-pointer hazard the old *core.Report cache carried (one handler
// mutating a cached report would have corrupted every later hit).
type cached struct {
	body    []byte
	profile *profiler.Profile
}

// Cache is a bounded LRU of preserialized simulation responses keyed by
// the canonical workload fingerprint (core.Workload.Fingerprint). The
// simulator is deterministic, so a hit is exactly the body a fresh run
// would serialize — repeated what-if queries return in microseconds with
// zero marshaling instead of re-simulating and re-encoding the epoch.
// Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key string
	val *cached
}

// NewCache returns an LRU holding at most max responses; max <= 0 selects
// a default of 1024 (a full 5-model × 8-GPU × 3-batch × 2-method grid is
// 240 entries, so the default keeps several sweeps resident).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 1024
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the cached response for a fingerprint, promoting it to most
// recently used. The returned value is shared and immutable: callers
// write val.body to the wire as-is and never modify it.
func (c *Cache) Get(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Peek returns the cached response for a fingerprint without touching
// recency or the hit/miss counters. It backs internal double-checks —
// a flight leader re-probing after winning its flight — which are not
// client lookups and would otherwise skew the published hit ratio.
func (c *Cache) Peek(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).val, true
}

// Put stores a response, evicting the least recently used entry when
// full. Storing an existing key refreshes its value and recency. The
// cache takes ownership of val's body: the caller must not modify it
// afterwards.
func (c *Cache) Put(key string, val *cached) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a snapshot of the hit/miss/eviction counters.
type CacheStats struct {
	Size, Max               int
	Hits, Misses, Evictions uint64
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.ll.Len(),
		Max:       c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
