package service

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// Cache is a bounded LRU of simulation reports keyed by the canonical
// workload fingerprint (core.Workload.Fingerprint). The simulator is
// deterministic, so a hit is exactly the report a fresh run would
// produce — repeated what-if queries return in microseconds instead of
// re-simulating the epoch. Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key    string
	report *core.Report
}

// NewCache returns an LRU holding at most max reports; max <= 0 selects
// a default of 1024 (a full 5-model × 8-GPU × 3-batch × 2-method grid is
// 240 entries, so the default keeps several sweeps resident).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 1024
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the cached report for a fingerprint, promoting it to most
// recently used.
func (c *Cache) Get(key string) (*core.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).report, true
}

// Peek returns the cached report for a fingerprint without touching
// recency or the hit/miss counters. It backs internal double-checks —
// a flight leader re-probing after winning its flight — which are not
// client lookups and would otherwise skew the published hit ratio.
func (c *Cache) Peek(key string) (*core.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).report, true
}

// Put stores a report, evicting the least recently used entry when full.
// Storing an existing key refreshes its value and recency.
func (c *Cache) Put(key string, r *core.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).report = r
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, report: r})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a snapshot of the hit/miss/eviction counters.
type CacheStats struct {
	Size, Max               int
	Hits, Misses, Evictions uint64
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.ll.Len(),
		Max:       c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
