package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull reports that a non-blocking submission found the
// admission queue at capacity. Handlers translate it into load shedding
// (429 + Retry-After) instead of parking the request on backpressure.
var ErrQueueFull = errors.New("pool: admission queue full")

// Pool is a bounded worker pool for running independent simulations on
// parallel goroutines. Every simulation builds its own sim.Engine, so
// concurrent runs never share mutable state; the pool only bounds how
// many are in flight at once. It backs the service's request fan-out and
// the experiment sweeps, turning an N-way configuration grid into a
// near-linear speedup on multicore.
//
// Admission is bounded separately from execution: the task queue holds
// at most queueDepth entries beyond the running workers. Callers choose
// their overload behaviour per submission — TrySubmit sheds immediately
// when the queue is full, SubmitContext waits but abandons the attempt
// when the caller's context ends, and Submit blocks unconditionally
// (batch callers like the experiment sweeps, which have no client to
// shed for).
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup // worker goroutines

	workers     int
	queueDepth  int
	queued      atomic.Int64 // submitted, not yet started
	active      atomic.Int64 // currently executing
	completed   atomic.Int64
	panics      atomic.Int64 // tasks that panicked (recovered, not fatal)
	queueWaitNs atomic.Int64 // cumulative submit-to-start wait

	closeOnce sync.Once
}

// NewPool starts a pool of the given size; workers <= 0 selects
// runtime.NumCPU(). The admission queue defaults to one slot per worker.
// Close the pool to release its goroutines.
func NewPool(workers int) *Pool {
	return NewPoolQueue(workers, 0)
}

// NewPoolQueue starts a pool with an explicit admission-queue depth:
// how many tasks may wait beyond the ones executing (<= 0 selects the
// default of one slot per worker). A short queue keeps submitters from
// blocking on momentary bursts without letting waiting work grow
// unboundedly under sustained overload — the knob behind dgxsimd's
// -queue-depth flag.
func NewPoolQueue(workers, queueDepth int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if queueDepth <= 0 {
		queueDepth = workers
	}
	p := &Pool{
		tasks:      make(chan func(), queueDepth),
		workers:    workers,
		queueDepth: queueDepth,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for fn := range p.tasks {
		p.queued.Add(-1)
		p.active.Add(1)
		p.run(fn)
		p.active.Add(-1)
		p.completed.Add(1)
	}
}

// run executes one task behind a last-resort recover. net/http's
// per-request recovery only covers handler goroutines; without this, a
// panic inside a task submitted to a worker goroutine would kill the
// whole daemon. Map wraps its tasks to convert panics into errors before
// they reach here, so this catch only fires for raw Submit callers.
func (p *Pool) run(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
		}
	}()
	fn()
}

// wrap stamps a task with queue-wait accounting. Queue wait is measured
// from the submit attempt, so time spent blocked on backpressure counts
// as waiting too.
func (p *Pool) wrap(fn func()) func() {
	enqueued := time.Now()
	return func() {
		p.queueWaitNs.Add(time.Since(enqueued).Nanoseconds())
		fn()
	}
}

// Submit enqueues a task, blocking while all workers are busy and the
// queue is full (backpressure, not unbounded buffering). Submitting to a
// closed pool panics, like sending on a closed channel. Request paths
// must use SubmitContext or TrySubmit instead: Submit cannot observe a
// caller that has gone away, so a disconnected client's work would still
// enqueue and run to completion.
func (p *Pool) Submit(fn func()) {
	p.queued.Add(1)
	p.tasks <- p.wrap(fn)
}

// SubmitContext enqueues a task, waiting on backpressure only as long as
// the context lives. It returns the context's error if the caller gives
// up (deadline passed, client disconnected) before a queue slot opens —
// in which case fn will never run.
func (p *Pool) SubmitContext(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.queued.Add(1)
	select {
	case p.tasks <- p.wrap(fn):
		return nil
	case <-ctx.Done():
		p.queued.Add(-1)
		return ctx.Err()
	}
}

// TrySubmit enqueues a task only if a queue slot is free right now,
// returning ErrQueueFull otherwise. It is the admission check behind
// load shedding: a full queue means the daemon is already saturated for
// at least the queue's worth of work, so a new request is better told to
// retry than silently parked.
func (p *Pool) TrySubmit(fn func()) error {
	p.queued.Add(1)
	select {
	case p.tasks <- p.wrap(fn):
		return nil
	default:
		p.queued.Add(-1)
		return ErrQueueFull
	}
}

// recordPanic counts a task panic recovered outside the pool's own
// recovery (the service's cell runner recovers first so it can fail the
// cell's flight; the count still belongs on the pool's gauge).
func (p *Pool) recordPanic() { p.panics.Add(1) }

// Close stops accepting tasks and waits for in-flight ones to finish.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.tasks) })
	p.wg.Wait()
}

// PoolStats is a snapshot of pool occupancy for /metrics.
type PoolStats struct {
	Workers    int
	QueueDepth int // admission-queue capacity
	Queued     int64
	Active     int64
	Completed  int64
	Panics     int64
	QueueWait  time.Duration // cumulative submit-to-start wait across tasks
}

// Stats snapshots the pool's occupancy counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:    p.workers,
		QueueDepth: p.queueDepth,
		Queued:     p.queued.Load(),
		Active:     p.active.Load(),
		Completed:  p.completed.Load(),
		Panics:     p.panics.Load(),
		QueueWait:  time.Duration(p.queueWaitNs.Load()),
	}
}

// Map runs fn(0..n-1) on the pool and blocks until all calls return or
// the context is cancelled. Results are the caller's to collect — by
// index, so output order never depends on completion order. The first
// error (lowest index) wins; once the context is cancelled remaining
// indices are skipped, submissions stop waiting on backpressure, and
// each fn receives the context so started cells can abort mid-simulation
// instead of running to completion.
func (p *Pool) Map(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = n
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && i < firstIdx {
			firstErr, firstIdx = err, i
		}
	}
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		if ctx.Err() != nil {
			wg.Done()
			continue
		}
		err := p.SubmitContext(ctx, func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			if err := p.call(ctx, i, fn); err != nil {
				record(i, err)
			}
		})
		if err != nil {
			// The context ended while this submission waited for a queue
			// slot; the remaining indices are skipped by the check above.
			wg.Done()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// call invokes fn(ctx, i), converting a panic into an ordinary error so
// one poisoned grid cell surfaces as a 500 on its own request instead of
// crashing the daemon (and the other cells) with it.
func (p *Pool) call(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			err = fmt.Errorf("task %d: panic: %v", i, r)
		}
	}()
	if err = fn(ctx, i); err != nil {
		err = fmt.Errorf("task %d: %w", i, err)
	}
	return err
}

// MapIndexed runs fn over 0..n-1 on the pool and returns the results in
// index order — the deterministic-output primitive the sweep endpoints
// and the experiment tables are built on.
func MapIndexed[T any](ctx context.Context, p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Map(ctx, n, func(_ context.Context, i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
