package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded worker pool for running independent simulations on
// parallel goroutines. Every simulation builds its own sim.Engine, so
// concurrent runs never share mutable state; the pool only bounds how
// many are in flight at once. It backs the service's request fan-out and
// the experiment sweeps, turning an N-way configuration grid into a
// near-linear speedup on multicore.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup // worker goroutines

	workers     int
	queued      atomic.Int64 // submitted, not yet started
	active      atomic.Int64 // currently executing
	completed   atomic.Int64
	panics      atomic.Int64 // tasks that panicked (recovered, not fatal)
	queueWaitNs atomic.Int64 // cumulative submit-to-start wait

	closeOnce sync.Once
}

// NewPool starts a pool of the given size; workers <= 0 selects
// runtime.NumCPU(). Close the pool to release its goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{
		// A buffer of one queue slot per worker keeps submitters from
		// blocking on short bursts without letting the queue grow
		// unboundedly under sustained overload.
		tasks:   make(chan func(), workers),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for fn := range p.tasks {
		p.queued.Add(-1)
		p.active.Add(1)
		p.run(fn)
		p.active.Add(-1)
		p.completed.Add(1)
	}
}

// run executes one task behind a last-resort recover. net/http's
// per-request recovery only covers handler goroutines; without this, a
// panic inside a task submitted to a worker goroutine would kill the
// whole daemon. Map wraps its tasks to convert panics into errors before
// they reach here, so this catch only fires for raw Submit callers.
func (p *Pool) run(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
		}
	}()
	fn()
}

// Submit enqueues a task, blocking while all workers are busy and the
// queue is full (backpressure, not unbounded buffering). Submitting to a
// closed pool panics, like sending on a closed channel.
func (p *Pool) Submit(fn func()) {
	p.queued.Add(1)
	// Queue wait is measured from the submit attempt, so time spent
	// blocked on backpressure counts as waiting too.
	enqueued := time.Now()
	p.tasks <- func() {
		p.queueWaitNs.Add(time.Since(enqueued).Nanoseconds())
		fn()
	}
}

// Close stops accepting tasks and waits for in-flight ones to finish.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.tasks) })
	p.wg.Wait()
}

// PoolStats is a snapshot of pool occupancy for /metrics.
type PoolStats struct {
	Workers   int
	Queued    int64
	Active    int64
	Completed int64
	Panics    int64
	QueueWait time.Duration // cumulative submit-to-start wait across tasks
}

// Stats snapshots the pool's occupancy counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:   p.workers,
		Queued:    p.queued.Load(),
		Active:    p.active.Load(),
		Completed: p.completed.Load(),
		Panics:    p.panics.Load(),
		QueueWait: time.Duration(p.queueWaitNs.Load()),
	}
}

// Map runs fn(0..n-1) on the pool and blocks until all calls return or
// the context is cancelled. Results are the caller's to collect — by
// index, so output order never depends on completion order. The first
// error (lowest index) wins; once the context is cancelled remaining
// indices are skipped.
func (p *Pool) Map(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = n
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && i < firstIdx {
			firstErr, firstIdx = err, i
		}
	}
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		if ctx.Err() != nil {
			wg.Done()
			continue
		}
		p.Submit(func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			if err := p.call(i, fn); err != nil {
				record(i, err)
			}
		})
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// call invokes fn(i), converting a panic into an ordinary error so one
// poisoned grid cell surfaces as a 500 on its own request instead of
// crashing the daemon (and the other cells) with it.
func (p *Pool) call(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			err = fmt.Errorf("task %d: panic: %v", i, r)
		}
	}()
	if err = fn(i); err != nil {
		err = fmt.Errorf("task %d: %w", i, err)
	}
	return err
}

// MapIndexed runs fn over 0..n-1 on the pool and returns the results in
// index order — the deterministic-output primitive the sweep endpoints
// and the experiment tables are built on.
func MapIndexed[T any](ctx context.Context, p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Map(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
