package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	err := p.Map(context.Background(), 100, func(_ context.Context, i int) error {
		n.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", n.Load())
	}
	st := p.Stats()
	if st.Completed != 100 || st.Active != 0 || st.Queued != 0 {
		t.Errorf("stats after drain = %+v", st)
	}
	if st.Workers != 4 {
		t.Errorf("workers = %d, want 4", st.Workers)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var cur, peak atomic.Int64
	err := p.Map(context.Background(), 50, func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			pk := peak.Load()
			if c <= pk || peak.CompareAndSwap(pk, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > workers {
		t.Errorf("observed %d concurrent tasks, pool bound is %d", peak.Load(), workers)
	}
}

func TestPoolMapFirstErrorWins(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	boom := errors.New("boom")
	err := p.Map(context.Background(), 64, func(_ context.Context, i int) error {
		if i == 7 || i == 40 {
			return fmt.Errorf("index %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want wrapped boom", err)
	}
	// The lowest failing index must be the one reported, regardless of
	// completion order.
	if got := err.Error(); got != "task 7: index 7: boom" {
		t.Errorf("Map error = %q, want the lowest index's", got)
	}
}

func TestPoolMapHonoursCancellation(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.Map(ctx, 1000, func(_ context.Context, i int) error {
			ran.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	err := <-errCh
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map after cancel = %v, want context.Canceled", err)
	}
	if ran.Load() >= 1000 {
		t.Error("cancellation should skip the tail of the grid")
	}
}

func TestMapIndexedPreservesOrder(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	out, err := MapIndexed(context.Background(), p, 64, func(i int) (string, error) {
		// Stagger completions so late indices finish first.
		time.Sleep(time.Duration(64-i) * 100 * time.Microsecond)
		return fmt.Sprintf("r%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("r%d", i) {
			t.Fatalf("out[%d] = %q; results must be indexed, not completion-ordered", i, v)
		}
	}
}

func TestPoolDefaultsToNumCPU(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Stats().Workers < 1 {
		t.Error("default pool should have at least one worker")
	}
}

// A panic inside a Map task must come back as that index's error — not
// kill the worker goroutine, not poison later Maps.
func TestPoolMapPanicBecomesError(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int64
	err := p.Map(context.Background(), 16, func(_ context.Context, i int) error {
		if i == 3 {
			panic("boom")
		}
		ran.Add(1)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panic: boom") {
		t.Fatalf("Map error = %v, want a task 3 panic error", err)
	}
	if got := p.Stats().Panics; got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
	// The pool must still be fully operational afterwards.
	var again atomic.Int64
	if err := p.Map(context.Background(), 8, func(_ context.Context, i int) error {
		again.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("Map after a panic = %v", err)
	}
	if again.Load() != 8 {
		t.Errorf("post-panic Map ran %d/8 tasks", again.Load())
	}
}

// Raw Submit tasks have no error channel, so the worker's own recover is
// the last line of defense: the panic is counted and the worker survives
// to run the next task.
func TestPoolWorkerRecoversRawSubmitPanic(t *testing.T) {
	p := NewPool(1) // one worker: the survivor must be the same goroutine
	defer p.Close()
	p.Submit(func() { panic("boom") })
	done := make(chan struct{})
	p.Submit(func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker died after a panicking Submit task")
	}
	if got := p.Stats().Panics; got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
}

// Queue wait accumulates when tasks outnumber workers.
func TestPoolQueueWaitAccumulates(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	err := p.Map(context.Background(), 4, func(_ context.Context, i int) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// With one worker and 5ms tasks, the last task waited >= ~15ms; any
	// positive total proves the plumbing without timing flakiness.
	if got := p.Stats().QueueWait; got <= 0 {
		t.Errorf("QueueWait = %v, want > 0", got)
	}
}
