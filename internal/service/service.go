// Package service is the simulation-as-a-service layer: an HTTP/JSON
// API over the internal/core façade, backed by a bounded worker pool
// (parallel fan-out of independent simulations) and a deterministic LRU
// result cache (the simulator is seeded, so whole-workload memoization
// is exact). cmd/dgxsimd wraps it in a daemon; internal/experiments
// reuses the pool to parallelize the paper sweeps.
//
// Endpoints:
//
//	POST /v1/simulate  one core.Workload -> core.Report
//	POST /v1/compare   one workload under p2p and nccl -> ordered reports
//	                   (p2p first, then nccl)
//	POST /v1/sweep     a models x gpus x batches x methods grid, fanned
//	                   out on the pool -> reports in grid order
//	POST /v1/validate  check a workload without simulating it -> validity,
//	                   fingerprint, and the normalized workload
//	GET  /v1/models    the model zoo
//	GET  /v1/trace/{id} the recorded timeline of a recent request as a
//	                   Chrome trace (service spans; plus the inner FP/BP/WU
//	                   simulator stages when the request set "trace": true)
//	GET  /healthz      liveness probe
//	GET  /metrics      plain-text counters: requests, latency percentiles
//	                   and histograms, in-flight gauges, cache
//	                   hits/misses/evictions, pool depth/queue-wait/panics
//
// Every request is assigned (or propagates) an X-Request-ID and records a
// span breakdown — decode, cache-lookup, queue-wait, simulate, encode —
// retrievable at /v1/trace/{id} while it remains in the bounded trace
// store (see internal/obs). When Config.AccessLog is set, each request
// also emits one structured JSON log line (log/slog).
//
// Every JSON body — request and response — carries a schemaVersion field
// (currently 1). Requests may omit it (treated as current); any other
// value is rejected with 400 so old clients fail loudly when the wire
// format moves, instead of silently misparsing.
//
// Everything is stdlib-only: net/http, encoding/json, container/list,
// log/slog, sync.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/obs"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent simulations (<= 0: runtime.NumCPU()).
	Workers int
	// CacheSize bounds the result cache (<= 0: the default 1024).
	CacheSize int
	// Timeout bounds each request's simulation work (<= 0: 60s).
	Timeout time.Duration
	// TraceStore bounds how many recent request traces /v1/trace can
	// serve (<= 0: the default 256).
	TraceStore int
	// AccessLog, when non-nil, receives one JSON line per request:
	// request id, method, path, status, cache disposition, queue depth,
	// and latency. Nil disables access logging.
	AccessLog io.Writer
}

// Server implements the simulation service. Create one with NewServer,
// serve Handler(), and Close it to release the pool.
type Server struct {
	cfg     Config
	pool    *Pool
	cache   *Cache
	metrics *metrics
	traces  *obs.Store
	logger  *slog.Logger
	mux     *http.ServeMux
}

// NewServer builds a ready-to-serve instance.
func NewServer(cfg Config) *Server {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		pool:    NewPool(cfg.Workers),
		cache:   NewCache(cfg.CacheSize),
		metrics: newMetrics(),
		traces:  obs.NewStore(cfg.TraceStore),
		mux:     http.NewServeMux(),
	}
	if cfg.AccessLog != nil {
		s.logger = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	s.mux.HandleFunc("/v1/simulate", s.instrument("/v1/simulate", s.handleSimulate))
	s.mux.HandleFunc("/v1/compare", s.instrument("/v1/compare", s.handleCompare))
	s.mux.HandleFunc("/v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/validate", s.instrument("/v1/validate", s.handleValidate))
	s.mux.HandleFunc("/v1/models", s.instrument("/v1/models", s.handleModels))
	s.mux.HandleFunc("/v1/trace/", s.instrument("/v1/trace", s.handleTrace))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool. The server must not serve requests
// afterwards.
func (s *Server) Close() { s.pool.Close() }

// CacheStats exposes the result-cache counters (also on /metrics).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// PoolStats exposes the worker-pool counters (also on /metrics).
func (s *Server) PoolStats() PoolStats { return s.pool.Stats() }

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards the http.Flusher upgrade the embedded interface would
// otherwise hide: without it, anything streaming through an instrumented
// handler silently stopped flushing (the type assertion inside
// http.ResponseWriter consumers failed against the wrapper).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the request-scoped observability
// layer: an X-Request-ID (fresh, or propagated from the client), a span
// trace carried through context and retained for /v1/trace/{id}, request
// counting and latency capture, and one structured access-log line.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewID()
		}
		tr := obs.NewTrace(id)
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
		w.Header().Set("X-Request-ID", id)
		queueDepth := s.pool.Stats().Queued
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.metrics.startRequest(path)
		start := time.Now()
		h(rec, r)
		d := time.Since(start)
		s.metrics.observe(path, d, rec.status >= 400)
		s.traces.Put(tr)
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", path),
				slog.Int("status", rec.status),
				slog.String("cache", rec.Header().Get("X-Cache")),
				slog.Int64("queueDepth", queueDepth),
				slog.Duration("latency", d),
			)
		}
	}
}

// methodNotAllowed writes the 405 response HTTP semantics require for a
// wrong-method request: the Allow header naming what the resource
// accepts, plus the JSON error body every endpoint shares. (An earlier
// version returned 400 "use POST", which blamed the client's syntax
// rather than the method and omitted Allow.)
func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusMethodNotAllowed)
	json.NewEncoder(w).Encode(map[string]string{"error": "method not allowed; use " + allow})
}

// maxBodyBytes bounds every JSON request body. Workload and sweep
// descriptions are a few hundred bytes; 1 MiB leaves generous headroom
// while keeping a hostile client from streaming an unbounded body into
// the decoder.
const maxBodyBytes = 1 << 20

// httpError maps an error to a status code and writes the JSON error
// body every endpoint shares.
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	case isBadRequest(err):
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// badRequestError marks client mistakes (malformed body, invalid
// workload) so httpError maps them to 400.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func isBadRequest(err error) bool {
	var bre badRequestError
	return errors.As(err, &bre)
}

// SchemaVersion is the wire-format version of every request and response
// body. Requests may omit it (zero means "current"); any other mismatch
// is a 400.
const SchemaVersion = 1

// workloadRequest is the versioned /v1/simulate, /v1/compare, and
// /v1/validate request body: a core.Workload plus schemaVersion and the
// tracing opt-in.
type workloadRequest struct {
	SchemaVersion int `json:"schemaVersion"`
	// Trace opts the request into simulator-stage tracing: the run
	// retains profiler intervals (TraceIntervals defaulted if unset) so
	// /v1/trace/{id} can render the inner FP/BP/WU timeline alongside
	// the service spans.
	Trace bool `json:"trace,omitempty"`
	core.Workload
}

// checkSchemaVersion rejects bodies from a different wire format.
func checkSchemaVersion(v int) error {
	if v != 0 && v != SchemaVersion {
		return badRequestError{fmt.Errorf("unsupported schemaVersion %d (this server speaks %d)", v, SchemaVersion)}
	}
	return nil
}

// limitBody caps the request body at maxBodyBytes; decoding a larger
// body surfaces *http.MaxBytesError, which httpError maps to 413.
func limitBody(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
}

// decodeBody parses a request body without semantic validation (the
// /v1/validate endpoint reports semantic errors in a 200 body). The
// second result reports the "trace": true opt-in.
func decodeBody(r *http.Request) (core.Workload, bool, error) {
	var req workloadRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return core.Workload{}, false, badRequestError{fmt.Errorf("decode workload: %w", err)}
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		return core.Workload{}, false, err
	}
	return req.Workload, req.Trace, nil
}

// decodeWorkload parses and validates a request body.
func decodeWorkload(r *http.Request) (core.Workload, bool, error) {
	w, traced, err := decodeBody(r)
	if err != nil {
		return core.Workload{}, false, err
	}
	if err := w.Validate(); err != nil {
		return core.Workload{}, false, badRequestError{err}
	}
	return w, traced, nil
}

// defaultTraceIntervals is the interval-retention cap applied when a
// request opts into tracing without choosing its own TraceIntervals —
// enough to cover the simulated steady-state window of every zoo model.
const defaultTraceIntervals = 4096

// withTracing turns on simulator interval retention for a trace opt-in.
// TraceIntervals is part of the workload fingerprint, so traced runs
// cache separately from untraced ones — a traced report always carries
// its timeline.
func withTracing(w core.Workload) core.Workload {
	if w.TraceIntervals == 0 {
		w.TraceIntervals = defaultTraceIntervals
	}
	return w
}

// reportBody is the versioned report envelope: the core.Report fields
// promoted to the top level plus schemaVersion.
type reportBody struct {
	SchemaVersion int `json:"schemaVersion"`
	*core.Report
}

// marshalReport is the one serialization every endpoint shares, so a
// sweep cell is byte-identical to the /v1/simulate response for the
// same configuration.
func marshalReport(r *core.Report) ([]byte, error) {
	return json.Marshal(reportBody{SchemaVersion: SchemaVersion, Report: r})
}

func writeJSONBytes(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// runCached executes one validated workload through the cache: hit
// returns the memoized report; miss simulates and stores. It runs on
// the caller's goroutine — fan-out across the pool happens at the
// handler layer, never here (nesting pool waits inside pool tasks would
// deadlock a full pool).
//
// label prefixes the recorded span names ("cell[3] " for a sweep cell,
// "p2p " for a compare arm) so a fanned-out request's per-cell timings
// attribute back to the one originating trace; reports that retained
// simulator intervals are attached to the trace for /v1/trace rendering.
func (s *Server) runCached(ctx context.Context, label string, w core.Workload) (*core.Report, bool, error) {
	tr := obs.FromContext(ctx)
	// Normalizing before fingerprinting makes spelled-out defaults and
	// omitted ones share a cache slot (Fingerprint normalizes internally
	// too; doing it here keeps the cached Report's echoed workload
	// identical for both spellings).
	w = w.Normalize()
	key := w.Fingerprint()
	endLookup := tr.StartSpan(label + "cache-lookup")
	r, ok := s.cache.Get(key)
	endLookup()
	if ok {
		s.attachProfile(tr, label, r)
		return r, true, nil
	}
	endSim := tr.StartSpan(label + "simulate")
	r, err := core.RunContext(ctx, w)
	endSim()
	if err != nil {
		return nil, false, err
	}
	s.cache.Put(key, r)
	s.attachProfile(tr, label, r)
	return r, false, nil
}

// attachProfile hangs a report's retained simulator timeline on the
// request trace (no-op for untraced runs, which retain no intervals).
func (s *Server) attachProfile(tr *obs.Trace, label string, r *core.Report) {
	if r.Profile != nil && len(r.Profile.Intervals()) > 0 {
		tr.Attach(label+"profile", r.Profile)
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	tr := obs.FromContext(r.Context())
	limitBody(w, r)
	endDecode := tr.StartSpan("decode")
	wl, traced, err := decodeWorkload(r)
	endDecode()
	if err != nil {
		httpError(w, err)
		return
	}
	if traced {
		wl = withTracing(wl)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	var (
		rep *core.Report
		hit bool
	)
	// One-task fan-out: the pool bounds simulation concurrency across
	// all in-flight requests.
	submitted := time.Now()
	err = s.pool.Map(ctx, 1, func(int) error {
		tr.AddSpan("queue-wait", submitted, time.Now())
		var runErr error
		rep, hit, runErr = s.runCached(ctx, "", wl)
		return runErr
	})
	if err != nil {
		httpError(w, err)
		return
	}
	endEncode := tr.StartSpan("encode")
	defer endEncode()
	b, err := marshalReport(rep)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("X-Cache", cacheHeader(hit))
	w.Header().Set("X-Sim-Duration", tr.Dur("simulate").String())
	writeJSONBytes(w, b)
}

func cacheHeader(hit bool) string {
	if hit {
		return "HIT"
	}
	return "MISS"
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	tr := obs.FromContext(r.Context())
	limitBody(w, r)
	endDecode := tr.StartSpan("decode")
	wl, traced, err := decodeWorkload(r)
	endDecode()
	if err != nil {
		httpError(w, err)
		return
	}
	if traced {
		wl = withTracing(wl)
	}
	methods := []core.Method{core.P2P, core.NCCL}
	for _, m := range methods {
		wm := wl
		wm.Method = m
		if err := wm.Validate(); err != nil {
			httpError(w, badRequestError{err})
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	submitted := time.Now()
	reps, err := MapIndexed(ctx, s.pool, len(methods), func(i int) (*core.Report, error) {
		label := string(methods[i]) + " "
		tr.AddSpan(label+"queue-wait", submitted, time.Now())
		wm := wl
		wm.Method = methods[i]
		rep, _, err := s.runCached(ctx, label, wm)
		return rep, err
	})
	if err != nil {
		httpError(w, err)
		return
	}
	// Results are ordered (p2p first, then nccl), mirroring core.Compare;
	// the old map-keyed body left the order to encoding/json.
	results := make([]core.MethodReport, len(methods))
	for i, m := range methods {
		results[i] = core.MethodReport{Method: m, Report: reps[i]}
	}
	endEncode := tr.StartSpan("encode")
	defer endEncode()
	b, err := json.Marshal(CompareResponse{SchemaVersion: SchemaVersion, Results: results})
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("X-Sim-Duration", tr.Dur("simulate").String())
	writeJSONBytes(w, b)
}

// CompareResponse is the /v1/compare body: both methods' reports in
// core.Compare's fixed order (p2p, then nccl).
type CompareResponse struct {
	SchemaVersion int                 `json:"schemaVersion"`
	Results       []core.MethodReport `json:"results"`
}

// SweepRequest describes a configuration grid. Axes left empty inherit
// the base workload's value; the grid expands in models -> gpus ->
// batches -> methods nesting order, and results come back in exactly
// that order regardless of which simulations finish first.
type SweepRequest struct {
	SchemaVersion int `json:"schemaVersion,omitempty"`
	// Trace opts every grid cell into simulator-stage tracing (see
	// workloadRequest.Trace).
	Trace   bool `json:"trace,omitempty"`
	Base    core.Workload
	Models  []string
	GPUs    []int
	Batches []int
	Methods []core.Method
}

// Expand materializes the grid as concrete workloads.
func (sr SweepRequest) Expand() []core.Workload {
	ms := sr.Models
	if len(ms) == 0 {
		ms = []string{sr.Base.Model}
	}
	gs := sr.GPUs
	if len(gs) == 0 {
		gs = []int{sr.Base.GPUs}
	}
	bs := sr.Batches
	if len(bs) == 0 {
		bs = []int{sr.Base.Batch}
	}
	mets := sr.Methods
	if len(mets) == 0 {
		mets = []core.Method{sr.Base.Method}
	}
	out := make([]core.Workload, 0, len(ms)*len(gs)*len(bs)*len(mets))
	for _, m := range ms {
		for _, g := range gs {
			for _, b := range bs {
				for _, met := range mets {
					w := sr.Base
					w.Model, w.GPUs, w.Batch, w.Method = m, g, b, met
					out = append(out, w)
				}
			}
		}
	}
	return out
}

// SweepResponse carries the grid results in grid order. Results are the
// exact bytes /v1/simulate would return for each configuration, so the
// body is deterministic across repeats; cache metadata travels in the
// X-Cache-Hits header and /metrics, not the body.
type SweepResponse struct {
	SchemaVersion int               `json:"schemaVersion"`
	Count         int               `json:"count"`
	Results       []json.RawMessage `json:"results"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	tr := obs.FromContext(r.Context())
	limitBody(w, r)
	endDecode := tr.StartSpan("decode")
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	endDecode()
	if err != nil {
		httpError(w, badRequestError{fmt.Errorf("decode sweep: %w", err)})
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		httpError(w, err)
		return
	}
	grid := req.Expand()
	if len(grid) == 0 {
		httpError(w, badRequestError{fmt.Errorf("empty sweep grid")})
		return
	}
	// Reject the whole grid before simulating any of it.
	for i, wl := range grid {
		if err := wl.Validate(); err != nil {
			httpError(w, badRequestError{fmt.Errorf("config %d: %w", i, err)})
			return
		}
	}
	if req.Trace {
		for i := range grid {
			grid[i] = withTracing(grid[i])
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	before := s.cache.Stats().Hits
	submitted := time.Now()
	results, err := MapIndexed(ctx, s.pool, len(grid), func(i int) (json.RawMessage, error) {
		// Per-cell spans carry the grid index, so the sweep's fan-out
		// attributes back to this one request's trace cell by cell.
		label := fmt.Sprintf("cell[%d] ", i)
		tr.AddSpan(label+"queue-wait", submitted, time.Now())
		rep, _, err := s.runCached(ctx, label, grid[i])
		if err != nil {
			return nil, err
		}
		return marshalReport(rep)
	})
	if err != nil {
		httpError(w, err)
		return
	}
	endEncode := tr.StartSpan("encode")
	defer endEncode()
	b, err := json.Marshal(SweepResponse{SchemaVersion: SchemaVersion, Count: len(grid), Results: results})
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("X-Cache-Hits", fmt.Sprintf("%d", s.cache.Stats().Hits-before))
	w.Header().Set("X-Sim-Duration", tr.Dur("simulate").String())
	writeJSONBytes(w, b)
}

// ValidateResponse is the /v1/validate body. A semantically invalid
// workload is a successful validation (200, Valid false, Error set) —
// only a malformed request (bad JSON, unknown field, wrong schema
// version) is a 400. Valid workloads echo back normalized (explicit
// Method and Images — what Run would simulate and report) plus the
// fingerprint the result cache would key them under.
type ValidateResponse struct {
	SchemaVersion int            `json:"schemaVersion"`
	Valid         bool           `json:"valid"`
	Error         string         `json:"error,omitempty"`
	Fingerprint   string         `json:"fingerprint,omitempty"`
	Workload      *core.Workload `json:"workload,omitempty"`
}

// handleValidate checks a workload without simulating it, reusing the
// exact core.Workload.Validate the simulate/compare/sweep paths run, so
// a workload this endpoint accepts never fails validation later.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	limitBody(w, r)
	wl, _, err := decodeBody(r)
	if err != nil {
		httpError(w, err)
		return
	}
	resp := ValidateResponse{SchemaVersion: SchemaVersion}
	if err := wl.Validate(); err != nil {
		resp.Error = err.Error()
	} else {
		n := wl.Normalize()
		resp.Valid = true
		resp.Fingerprint = n.Fingerprint()
		resp.Workload = &n
	}
	b, err := json.Marshal(resp)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONBytes(w, b)
}

// ModelInfo is one zoo entry of the /v1/models listing.
type ModelInfo struct {
	Name             string `json:"name"`
	Depth            int    `json:"depth"`
	ConvLayers       int    `json:"convLayers"`
	InceptionModules int    `json:"inceptionModules"`
	FCLayers         int    `json:"fcLayers"`
	Params           int64  `json:"params"`
	Residual         bool   `json:"residual"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	names := core.Models()
	infos := make([]ModelInfo, 0, len(names))
	for _, n := range names {
		d, err := models.ByName(n)
		if err != nil {
			httpError(w, err)
			return
		}
		infos = append(infos, ModelInfo{
			Name:             d.Name,
			Depth:            d.Depth,
			ConvLayers:       d.ConvLayers,
			InceptionModules: d.InceptionModules,
			FCLayers:         d.FCLayers,
			Params:           d.Params,
			Residual:         d.Residual,
		})
	}
	b, err := json.Marshal(struct {
		SchemaVersion int         `json:"schemaVersion"`
		Models        []ModelInfo `json:"models"`
	}{SchemaVersion: SchemaVersion, Models: infos})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONBytes(w, b)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.metrics.render(s.cache.Stats(), s.pool.Stats()))
}
