// Package service is the simulation-as-a-service layer: an HTTP/JSON
// API over the internal/core façade, backed by a bounded worker pool
// (parallel fan-out of independent simulations) and a deterministic LRU
// result cache (the simulator is seeded, so whole-workload memoization
// is exact). cmd/dgxsimd wraps it in a daemon; internal/experiments
// reuses the pool to parallelize the paper sweeps.
//
// Endpoints:
//
//	GET  /v1/          machine-readable API index: every endpoint, its
//	                   methods, and the content types it produces
//	POST /v1/simulate  one core.Workload -> core.Report
//	POST /v1/compare   one workload under p2p and nccl -> ordered reports
//	                   (p2p first, then nccl)
//	POST /v1/sweep     a models x hardware x gpus x batches x methods x
//	                   protocols x images grid, fanned out on the pool ->
//	                   reports in grid order.
//	                   Accept: application/x-ndjson streams one record
//	                   per cell (grid order, bounded memory) plus a
//	                   trailing summary instead of one buffered body
//	POST /v1/optimize  search GPUs x batch x method x hardware x protocol
//	                   x faults for the Pareto frontier of an objective
//	                   (min epoch time, max throughput/GPU; optional
//	                   memory cap) vs GPU cost, with per-point provenance
//	POST /v1/validate  check a workload without simulating it -> validity,
//	                   fingerprint, and the normalized workload
//	POST /v1/cluster/simulate
//	                   a cluster.Spec (fleet of simulated DGX-1 nodes +
//	                   job trace + placement policy) -> JCT/queueing
//	                   distributions, utilization, makespan
//	GET  /v1/models    the model zoo
//	GET  /v1/hardware  the machines a workload's hardware field accepts
//	                   (DGX-1, Pascal DGX-1, DGX-2, DGX A100, DGX H100)
//	                   and the NCCL protocol spellings
//	GET  /v1/trace/{id} the recorded timeline of a recent request as a
//	                   Chrome trace (service spans; plus the inner FP/BP/WU
//	                   simulator stages when the request set "trace": true)
//	GET  /healthz      liveness probe
//	GET  /metrics      plain-text counters: requests, latency percentiles
//	                   and histograms, in-flight gauges, cache
//	                   hits/misses/evictions, pool depth/queue-wait/panics
//
// Every failure, on every endpoint, is one JSON envelope —
// {"error": {"code", "message", "retryable"}} — with a stable
// machine-readable code (queue_full, deadline_queued, deadline,
// client_gone, bad_request, invalid_argument, body_too_large,
// schema_version, method_not_allowed, not_found, internal); see
// errors.go.
//
// Every request is assigned (or propagates) an X-Request-ID and records a
// span breakdown — decode, cache-lookup, queue-wait, simulate, encode —
// retrievable at /v1/trace/{id} while it remains in the bounded trace
// store (see internal/obs). When Config.AccessLog is set, each request
// also emits one structured JSON log line (log/slog).
//
// Every JSON body — request and response — carries a schemaVersion field
// (currently 1). Requests may omit it (treated as current); any other
// value is rejected with 400 so old clients fail loudly when the wire
// format moves, instead of silently misparsing.
//
// Everything is stdlib-only: net/http, encoding/json, container/list,
// log/slog, sync.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/profiler"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent simulations (<= 0: runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the admission queue: how many simulation tasks
	// may wait for a worker before new requests are shed with 429
	// instead of blocking (<= 0: one slot per worker).
	QueueDepth int
	// CacheSize bounds the result cache (<= 0: the default 1024).
	CacheSize int
	// Timeout bounds each request's simulation work (<= 0: 60s).
	Timeout time.Duration
	// RequestTimeout bounds a request's total time in the service,
	// admission queueing included (<= 0: Timeout). A deadline that
	// expires while the request is still waiting for a queue slot sheds
	// it with 503 + Retry-After — the server could not have met it.
	RequestTimeout time.Duration
	// TraceStore bounds how many recent request traces /v1/trace can
	// serve (<= 0: the default 256).
	TraceStore int
	// AccessLog, when non-nil, receives one JSON line per request:
	// request id, method, path, status, cache disposition, queue depth,
	// and latency. Nil disables access logging.
	AccessLog io.Writer
	// Persist, when non-nil, snapshots cached response bodies to disk:
	// NewServer pre-warms the result cache from the store, and every
	// fresh simulation's bytes are written through to it (asynchronously,
	// bounded — see internal/persist), so a restarted daemon serves its
	// working set without re-simulating. Traced entries (which retain a
	// simulator profile for /v1/trace) are not persisted: a snapshot
	// cannot carry the profile, and serving a traced body without its
	// timeline would silently break the trace contract. The caller owns
	// the store's lifecycle (Close after the server stops serving).
	Persist *persist.Store
}

// Server implements the simulation service. Create one with NewServer,
// serve Handler(), and Close it to release the pool.
type Server struct {
	cfg     Config
	pool    *Pool
	cache   *Cache
	flights *flightGroup
	metrics *metrics
	traces  *obs.Store
	logger  *slog.Logger
	mux     *http.ServeMux
}

// NewServer builds a ready-to-serve instance.
func NewServer(cfg Config) *Server {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = cfg.Timeout
	}
	s := &Server{
		cfg:     cfg,
		pool:    NewPoolQueue(cfg.Workers, cfg.QueueDepth),
		cache:   NewCache(cfg.CacheSize),
		flights: newFlightGroup(),
		metrics: newMetrics(),
		traces:  obs.NewStore(cfg.TraceStore),
		mux:     http.NewServeMux(),
	}
	if cfg.AccessLog != nil {
		s.logger = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	if cfg.Persist != nil {
		// Boot-time warm-up: every valid snapshot becomes a live cache
		// entry, byte-identical to the response that produced it. A Load
		// error means the directory itself was unreadable — Open already
		// vetted it, so this is best-effort by design (the daemon must
		// boot cold rather than not at all); corrupt entries are skipped
		// and counted inside the store.
		_ = cfg.Persist.Load(func(key string, body []byte) {
			s.cache.Put(key, &cached{body: body})
		})
	}
	// The mux is registered from the apiEndpoints table (index.go) — the
	// same table GET /v1/ advertises, so routing and discovery cannot
	// drift apart.
	for _, e := range apiEndpoints {
		e := e
		s.mux.HandleFunc(e.pattern, s.instrument(metricsLabel(e.pattern), func(w http.ResponseWriter, r *http.Request) {
			e.handler(s, w, r)
		}))
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool. The server must not serve requests
// afterwards.
func (s *Server) Close() { s.pool.Close() }

// CacheStats exposes the result-cache counters (also on /metrics).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// PoolStats exposes the worker-pool counters (also on /metrics).
func (s *Server) PoolStats() PoolStats { return s.pool.Stats() }

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards the http.Flusher upgrade the embedded interface would
// otherwise hide: without it, anything streaming through an instrumented
// handler silently stopped flushing (the type assertion inside
// http.ResponseWriter consumers failed against the wrapper).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the request-scoped observability
// layer: an X-Request-ID (fresh, or propagated from the client), a span
// trace carried through context and retained for /v1/trace/{id}, request
// counting and latency capture, and one structured access-log line.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewID()
		}
		tr := obs.NewTrace(id)
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
		w.Header().Set("X-Request-ID", id)
		queueDepth := s.pool.Stats().Queued
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.metrics.startRequest(path)
		start := time.Now()
		h(rec, r)
		d := time.Since(start)
		s.metrics.observe(path, d, rec.status >= 400)
		shed := rec.status == http.StatusTooManyRequests || rec.status == http.StatusServiceUnavailable
		if shed {
			s.metrics.addShed()
			// A zero-length marker span, so a shed request's trace says
			// why it carries no simulate span.
			now := time.Now()
			tr.AddSpan("shed", now, now)
		}
		s.traces.Put(tr)
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", path),
				slog.Int("status", rec.status),
				slog.String("cache", rec.Header().Get("X-Cache")),
				slog.String("disposition", disposition(shed, rec.Header().Get("X-Cache"))),
				slog.Int64("queueDepth", queueDepth),
				slog.Duration("latency", d),
			)
		}
	}
}

// disposition summarizes how a request was resolved for the access log:
// shed (refused under overload), or the cache disposition of its
// primary cell; endpoints without one log "".
func disposition(shed bool, cacheHdr string) string {
	switch {
	case shed:
		return "shed"
	case cacheHdr == "HIT":
		return dispHit
	case cacheHdr == "COALESCED":
		return dispCoalesced
	case cacheHdr == "MISS":
		return dispMiss
	}
	return ""
}

// maxBodyBytes bounds every JSON request body. Workload and sweep
// descriptions are a few hundred bytes; 1 MiB leaves generous headroom
// while keeping a hostile client from streaming an unbounded body into
// the decoder.
const maxBodyBytes = 1 << 20

// retryAfterSeconds is the Retry-After hint on shed responses. Sheds
// mean the admission queue is full of work bounded by Timeout, so "soon"
// is honest; a fixed small value also keeps retry storms spread by the
// clients' own jitter rather than synchronized by ours.
const retryAfterSeconds = "1"

// badRequestError marks client mistakes (malformed body, invalid
// workload) so httpError maps them to 400.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func isBadRequest(err error) bool {
	var bre badRequestError
	return errors.As(err, &bre)
}

// SchemaVersion is the wire-format version of every request and response
// body. Requests may omit it (zero means "current"); any other mismatch
// is a 400.
const SchemaVersion = 1

// workloadRequest is the versioned /v1/simulate, /v1/compare, and
// /v1/validate request body: a core.Workload plus schemaVersion and the
// tracing opt-in.
type workloadRequest struct {
	SchemaVersion int `json:"schemaVersion"`
	// Trace opts the request into simulator-stage tracing: the run
	// retains profiler intervals (TraceIntervals defaulted if unset) so
	// /v1/trace/{id} can render the inner FP/BP/WU timeline alongside
	// the service spans.
	Trace bool `json:"trace,omitempty"`
	core.Workload
}

// checkSchemaVersion rejects bodies from a different wire format. The
// failure carries its own error code (schema_version, not bad_request):
// it is the one 400 a correct client hits when the wire format moves.
func checkSchemaVersion(v int) error {
	if v != 0 && v != SchemaVersion {
		return schemaVersionError{fmt.Errorf("unsupported schemaVersion %d (this server speaks %d)", v, SchemaVersion)}
	}
	return nil
}

// limitBody caps the request body at maxBodyBytes; decoding a larger
// body surfaces *http.MaxBytesError, which httpError maps to 413.
func limitBody(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
}

// decodeBody parses a request body without semantic validation (the
// /v1/validate endpoint reports semantic errors in a 200 body). The
// second result reports the "trace": true opt-in.
func decodeBody(r *http.Request) (core.Workload, bool, error) {
	var req workloadRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return core.Workload{}, false, badRequestError{fmt.Errorf("decode workload: %w", err)}
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		return core.Workload{}, false, err
	}
	return req.Workload, req.Trace, nil
}

// decodeWorkload parses and validates a request body.
func decodeWorkload(r *http.Request) (core.Workload, bool, error) {
	w, traced, err := decodeBody(r)
	if err != nil {
		return core.Workload{}, false, err
	}
	if err := w.Validate(); err != nil {
		return core.Workload{}, false, badRequestError{err}
	}
	return w, traced, nil
}

// defaultTraceIntervals is the interval-retention cap applied when a
// request opts into tracing without choosing its own TraceIntervals —
// enough to cover the simulated steady-state window of every zoo model.
const defaultTraceIntervals = 4096

// withTracing turns on simulator interval retention for a trace opt-in.
// TraceIntervals is part of the workload fingerprint, so traced runs
// cache separately from untraced ones — a traced report always carries
// its timeline.
func withTracing(w core.Workload) core.Workload {
	if w.TraceIntervals == 0 {
		w.TraceIntervals = defaultTraceIntervals
	}
	return w
}

// reportBody is the versioned report envelope: the core.Report fields
// promoted to the top level plus schemaVersion.
type reportBody struct {
	SchemaVersion int `json:"schemaVersion"`
	*core.Report
}

// marshalReport is the one serialization every endpoint shares, so a
// sweep cell is byte-identical to the /v1/simulate response for the
// same configuration.
func marshalReport(r *core.Report) ([]byte, error) {
	return json.Marshal(reportBody{SchemaVersion: SchemaVersion, Report: r})
}

// newCached serializes a freshly simulated report into the immutable
// value the cache, the flight group, and every handler share. This is
// the only place a report is marshaled on the miss path; hits reuse the
// bytes verbatim. The profile rides along only when the run retained
// intervals (a traced workload — which fingerprints separately), so
// untraced entries hold nothing but the response bytes.
func newCached(r *core.Report) (*cached, error) {
	b, err := marshalReport(r)
	if err != nil {
		return nil, err
	}
	c := &cached{body: b}
	if r.Profile != nil && len(r.Profile.Intervals()) > 0 {
		c.profile = r.Profile
	}
	return c, nil
}

// envelopePrefix is the leading bytes of every marshaled reportBody:
// the opening brace and the schemaVersion field reportRaw strips when an
// endpoint needs the bare report JSON nested inside its own envelope.
var envelopePrefix = []byte(fmt.Sprintf(`{"schemaVersion":%d,`, SchemaVersion))

// reportRaw converts a cached response envelope into the bare report
// JSON — exactly json.Marshal(*core.Report) for the same report, since
// reportBody only prepends the schemaVersion field to the report's own
// promoted fields. /v1/compare nests reports inside per-method records,
// which carry the schemaVersion at their outer level instead.
func reportRaw(body []byte) (json.RawMessage, error) {
	if !bytes.HasPrefix(body, envelopePrefix) {
		return nil, fmt.Errorf("cached response missing envelope prefix %q", envelopePrefix)
	}
	raw := make(json.RawMessage, 0, len(body)-len(envelopePrefix)+1)
	raw = append(raw, '{')
	return append(raw, body[len(envelopePrefix):]...), nil
}

// decodeCachedReport rebuilds the report struct from a cached envelope
// for the few consumers that need the numbers rather than the bytes
// (the optimizer judging dominance). The profile is not on the wire and
// stays nil; byte-cache consumers never need it.
func decodeCachedReport(body []byte) (*core.Report, error) {
	var rb reportBody
	rb.Report = &core.Report{}
	if err := json.Unmarshal(body, &rb); err != nil {
		return nil, fmt.Errorf("decode cached report: %w", err)
	}
	return rb.Report, nil
}

// writeJSONBytes writes a JSON body and its trailing newline. The two
// Writes matter: b may be a shared cached response, and append(b, '\n')
// would write into its backing array — a data race between concurrent
// hits on the same entry, and a mutation of bytes that must stay
// immutable.
func writeJSONBytes(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	io.WriteString(w, "\n")
}

// Cell dispositions: how each grid cell obtained its report. They feed
// the X-Cache header, the access log, and dgxsimd_coalesced_total.
const (
	dispHit       = "hit"       // served from the result cache
	dispMiss      = "miss"      // this request simulated it
	dispCoalesced = "coalesced" // joined another request's in-flight run
)

// admissionError marks a context failure that struck while the request
// was still waiting for admission (a pool queue slot). httpError maps a
// deadline spent queueing to 503 + Retry-After — the server was too
// loaded to even start, which is the server's overload, not the
// request's slowness (504).
type admissionError struct{ err error }

func (e admissionError) Error() string { return "awaiting admission: " + e.err.Error() }
func (e admissionError) Unwrap() error { return e.err }

func isAdmission(err error) bool {
	var ae admissionError
	return errors.As(err, &ae)
}

// gridCell tracks one cell's coalescing state through runGrid.
type gridCell struct {
	i      int
	key    string
	flight *flight
}

// runGrid executes validated workloads through the cache, the
// per-fingerprint flight group, and the worker pool, returning the
// preserialized response for each cell and per-cell dispositions aligned
// with cells. It is the one execution path behind /v1/simulate (one
// cell), /v1/compare (two), and /v1/sweep (the grid). labels[i] prefixes
// cell i's span names ("cell[3] " for a sweep cell, "p2p " for a compare
// arm) so fanned-out work attributes back to the one originating trace.
//
// Overload behaviour: cache hits are served unconditionally (no pool
// slot needed). The first cell that actually needs a simulation is the
// admission check — TrySubmit, so a full queue sheds the request with
// ErrQueueFull (429) instead of parking it. Once admitted, remaining
// cells queue with SubmitContext and a deadline that expires while one
// waits surfaces as admissionError (503). Cells whose fingerprint is
// already being simulated — by this request or any other — never submit
// at all: they coalesce onto the in-flight run and wait on the handler
// goroutine (never on a pool worker, which could deadlock a full pool).
func (s *Server) runGrid(ctx context.Context, labels []string, cells []core.Workload) ([]*cached, []string, error) {
	tr := obs.FromContext(ctx)
	n := len(cells)
	vals := make([]*cached, n)
	disps := make([]string, n)
	norm := make([]core.Workload, n)
	var leaders, waiters []gridCell

	// Phase 1: cache lookups and flight subscription, cheap and local.
	// Normalizing before fingerprinting makes spelled-out defaults and
	// omitted ones share a cache slot (Fingerprint normalizes internally
	// too; doing it here keeps the cached report's echoed workload
	// identical for both spellings).
	for i, w := range cells {
		norm[i] = w.Normalize()
		key := norm[i].Fingerprint()
		endLookup := tr.StartSpan(labels[i] + "cache-lookup")
		v, ok := s.cache.Get(key)
		endLookup()
		if ok {
			s.attachProfile(tr, labels[i], v.profile)
			vals[i], disps[i] = v, dispHit
			continue
		}
		f, leader := s.flights.join(key)
		cell := gridCell{i: i, key: key, flight: f}
		if leader {
			leaders = append(leaders, cell)
			disps[i] = dispMiss
		} else {
			waiters = append(waiters, cell)
			disps[i] = dispCoalesced
		}
	}

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx = n
		shedErr  error
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err == nil {
			return
		}
		// An overload signal (queue full, deadline burnt queueing) is the
		// request's outcome no matter which cell raised it: the sibling
		// cells' context errors are fallout of the same shed, and a 429
		// or 503 tells the client strictly more than a 504 would.
		if shedErr == nil && (errors.Is(err, ErrQueueFull) || isAdmission(err)) {
			shedErr = err
		}
		if i < firstIdx {
			firstErr, firstIdx = err, i
		}
	}

	// Phase 2: leader fan-out on the pool. A submission failure must
	// still complete the cell's flight — other requests may already be
	// waiting on it — and abandons the cells not yet submitted.
	var wg sync.WaitGroup
	abandon := func(from int, err error) {
		for _, c := range leaders[from:] {
			s.flights.complete(c.key, c.flight, nil, err)
			record(c.i, err)
		}
	}
	if len(leaders) > 0 {
		if err := ctx.Err(); err != nil {
			// Dead before any admission attempt: the deadline/cancel is
			// the request's own, not an overload signal.
			abandon(0, err)
			return nil, nil, err
		}
		submitted := time.Now()
		for li, c := range leaders {
			c := c
			label := labels[c.i]
			task := func() {
				defer wg.Done()
				tr.AddSpan(label+"queue-wait", submitted, time.Now())
				val, err := s.simulateCell(ctx, label, c.key, norm[c.i])
				s.flights.complete(c.key, c.flight, val, err)
				vals[c.i] = val
				record(c.i, err)
			}
			wg.Add(1)
			var err error
			if li == 0 {
				// The admission decision for the whole request: a full
				// queue sheds it now rather than parking it.
				err = s.pool.TrySubmit(task)
			} else {
				err = s.pool.SubmitContext(ctx, task)
				if err != nil && !errors.Is(err, context.Canceled) {
					err = admissionError{err}
				}
			}
			if err != nil {
				wg.Done()
				abandon(li, err)
				break
			}
		}
	}
	wg.Wait()

	// Phase 3: waiter resolution, on the handler goroutine — a waiter
	// must never occupy a pool worker while the leader it waits for sits
	// in the queue behind it.
	for _, c := range waiters {
		val, disp, err := s.awaitFlight(ctx, labels[c.i], c.key, c.flight, norm[c.i])
		if err != nil {
			record(c.i, err)
			continue
		}
		vals[c.i] = val
		disps[c.i] = disp
		if disp == dispCoalesced {
			s.metrics.addCoalesced()
		}
	}

	mu.Lock()
	err, idx, shed := firstErr, firstIdx, shedErr
	mu.Unlock()
	if shed != nil {
		return nil, nil, shed
	}
	if err != nil {
		if n > 1 {
			return nil, nil, fmt.Errorf("task %d: %w", idx, err)
		}
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return vals, disps, nil
}

// simulateCell runs one workload on the current (pool-worker) goroutine,
// serializes it once, and stores the bytes. The recover mirrors
// Pool.call: a leader's panic must fail its flight — waiters across
// requests are subscribed — not strand them, and certainly not kill the
// daemon.
func (s *Server) simulateCell(ctx context.Context, label, key string, w core.Workload) (val *cached, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.pool.recordPanic()
			val, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := obs.FromContext(ctx)
	// Double-check the cache (Peek: not a client lookup): between this
	// cell's lookup and its flight win, an earlier flight for the key may
	// have completed and stored — serving the stored bytes keeps "N
	// identical misses, one simulation" true across that window too.
	if val, ok := s.cache.Peek(key); ok {
		s.attachProfile(tr, label, val.profile)
		return val, nil
	}
	endSim := tr.StartSpan(label + "simulate")
	rep, err := core.RunContext(ctx, w)
	endSim()
	if err != nil {
		return nil, err
	}
	endEnc := tr.StartSpan(label + "serialize")
	val, err = newCached(rep)
	endEnc()
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, val)
	// Write-through to the snapshot store: asynchronous and bounded, so
	// the miss path never waits on disk. Traced entries stay memory-only
	// (their profile cannot ride a snapshot).
	if s.cfg.Persist != nil && val.profile == nil {
		s.cfg.Persist.Put(key, val.body)
	}
	s.attachProfile(tr, label, val.profile)
	return val, nil
}

// awaitFlight blocks (on the handler goroutine) until the subscribed
// flight completes, the context ends, or — when the leader failed for
// reasons of its own (its client hung up, its deadline passed, it was
// shed) while this request is still live — takes over: re-check the
// cache, rejoin the flight, and lead the simulation itself if it wins
// the new flight. The returned disposition records how the response was
// finally obtained.
func (s *Server) awaitFlight(ctx context.Context, label, key string, f *flight, w core.Workload) (*cached, string, error) {
	tr := obs.FromContext(ctx)
	endWait := tr.StartSpan(label + "coalesce-wait")
	defer endWait()
	for {
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
		if f.err == nil {
			s.attachProfile(tr, label, f.val.profile)
			return f.val, dispCoalesced, nil
		}
		if !retryableFlightErr(f.err) || ctx.Err() != nil {
			return nil, "", f.err
		}
		// The leader's failure was about the leader, not the workload.
		// Another request may have completed it meanwhile; otherwise
		// race for the next flight.
		if val, ok := s.cache.Get(key); ok {
			s.attachProfile(tr, label, val.profile)
			return val, dispHit, nil
		}
		var leader bool
		f, leader = s.flights.join(key)
		if leader {
			val, err := s.leadOne(ctx, label, key, f, w)
			if err != nil {
				return nil, "", err
			}
			return val, dispMiss, nil
		}
	}
}

// leadOne runs one simulation for a waiter promoted to leader after the
// original leader failed. It queues with SubmitContext — the request
// was already willing to wait for this work — and publishes the outcome
// (including a submission failure) to the flight it now owns.
func (s *Server) leadOne(ctx context.Context, label, key string, f *flight, w core.Workload) (*cached, error) {
	tr := obs.FromContext(ctx)
	var (
		val  *cached
		err  error
		done = make(chan struct{})
	)
	submitted := time.Now()
	serr := s.pool.SubmitContext(ctx, func() {
		defer close(done)
		tr.AddSpan(label+"queue-wait", submitted, time.Now())
		val, err = s.simulateCell(ctx, label, key, w)
	})
	if serr != nil {
		if !errors.Is(serr, context.Canceled) {
			serr = admissionError{serr}
		}
		s.flights.complete(key, f, nil, serr)
		return nil, serr
	}
	<-done
	s.flights.complete(key, f, val, err)
	return val, err
}

// retryableFlightErr reports whether a leader's failure reflects the
// leader's circumstances (cancelled, timed out, shed) rather than the
// workload itself — the one case a still-live waiter should retry.
func retryableFlightErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrQueueFull)
}

// attachProfile hangs a retained simulator timeline on the request trace
// (no-op for untraced runs, whose cached values carry no profile). The
// attached profile is shared across every request that hits the entry;
// trace rendering only reads it (Merge reads its argument).
func (s *Server) attachProfile(tr *obs.Trace, label string, p *profiler.Profile) {
	if p != nil {
		tr.Attach(label+"profile", p)
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	tr := obs.FromContext(r.Context())
	limitBody(w, r)
	endDecode := tr.StartSpan("decode")
	wl, traced, err := decodeWorkload(r)
	endDecode()
	if err != nil {
		httpError(w, err)
		return
	}
	if traced {
		wl = withTracing(wl)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	vals, disps, err := s.runGrid(ctx, []string{""}, []core.Workload{wl})
	if err != nil {
		httpError(w, err)
		return
	}
	// The response was serialized exactly once, when the workload was
	// first simulated; a cache hit is one Write of those immutable bytes
	// — zero marshaling, byte-identical by construction.
	endEncode := tr.StartSpan("encode")
	defer endEncode()
	w.Header().Set("X-Cache", cacheHeader(disps[0]))
	w.Header().Set("X-Sim-Duration", tr.Dur("simulate").String())
	writeJSONBytes(w, vals[0].body)
}

// cacheHeader renders a cell disposition as the X-Cache header value.
func cacheHeader(disp string) string {
	switch disp {
	case dispHit:
		return "HIT"
	case dispCoalesced:
		return "COALESCED"
	default:
		return "MISS"
	}
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	tr := obs.FromContext(r.Context())
	limitBody(w, r)
	endDecode := tr.StartSpan("decode")
	wl, traced, err := decodeWorkload(r)
	endDecode()
	if err != nil {
		httpError(w, err)
		return
	}
	if traced {
		wl = withTracing(wl)
	}
	methods := []core.Method{core.P2P, core.NCCL}
	cells := make([]core.Workload, len(methods))
	labels := make([]string, len(methods))
	for i, m := range methods {
		wm := wl
		wm.Method = m
		if err := wm.Validate(); err != nil {
			httpError(w, badRequestError{err})
			return
		}
		cells[i], labels[i] = wm, string(m)+" "
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	vals, _, err := s.runGrid(ctx, labels, cells)
	if err != nil {
		httpError(w, err)
		return
	}
	// Results are ordered (p2p first, then nccl), mirroring core.Compare;
	// the old map-keyed body left the order to encoding/json. Each arm's
	// report JSON is spliced out of its cached envelope rather than
	// re-marshaled — json.RawMessage keeps the bytes verbatim, so the
	// nested reports stay identical to what /v1/simulate serves.
	results := make([]methodReportWire, len(methods))
	for i, m := range methods {
		raw, err := reportRaw(vals[i].body)
		if err != nil {
			httpError(w, err)
			return
		}
		results[i] = methodReportWire{Method: m, Report: raw}
	}
	endEncode := tr.StartSpan("encode")
	defer endEncode()
	b, err := json.Marshal(compareWire{SchemaVersion: SchemaVersion, Results: results})
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("X-Sim-Duration", tr.Dur("simulate").String())
	writeJSONBytes(w, b)
}

// CompareResponse is the /v1/compare body: both methods' reports in
// core.Compare's fixed order (p2p, then nccl).
type CompareResponse struct {
	SchemaVersion int                 `json:"schemaVersion"`
	Results       []core.MethodReport `json:"results"`
}

// compareWire is the encode-side shape of CompareResponse: the nested
// report travels as raw cached bytes instead of a re-marshaled struct.
// Field names and order match CompareResponse exactly, so clients
// decoding into CompareResponse see an unchanged wire format.
type compareWire struct {
	SchemaVersion int                `json:"schemaVersion"`
	Results       []methodReportWire `json:"results"`
}

// methodReportWire mirrors core.MethodReport with the report as raw JSON.
type methodReportWire struct {
	Method core.Method     `json:"method"`
	Report json.RawMessage `json:"report"`
}

// SweepRequest describes a configuration grid. Axes left empty inherit
// the base workload's value; the grid expands in models -> hardware ->
// gpus -> batches -> methods -> protocols -> images nesting order, and
// results come back in exactly that order regardless of which
// simulations finish first.
//
// The Images axis varies only the extrapolation phase (how many
// iterations the compiled steady-state window is scaled to), so a grid
// sweeping Images alone compiles exactly one train.Window per distinct
// model/hardware/gpus/batch/method/protocol plan — see internal/core's
// artifact keying.
type SweepRequest struct {
	SchemaVersion int `json:"schemaVersion,omitempty"`
	// Trace opts every grid cell into simulator-stage tracing (see
	// workloadRequest.Trace).
	Trace     bool `json:"trace,omitempty"`
	Base      core.Workload
	Models    []string
	Hardware  []string
	GPUs      []int
	Batches   []int
	Methods   []core.Method
	Protocols []string
	Images    []int64
}

// axes returns the effective per-axis values, axes left empty collapsed
// to the base workload's value.
func (sr SweepRequest) axes() (ms, hws []string, gs, bs []int, mets []core.Method, protos []string, imgs []int64) {
	ms = sr.Models
	if len(ms) == 0 {
		ms = []string{sr.Base.Model}
	}
	hws = sr.Hardware
	if len(hws) == 0 {
		hws = []string{sr.Base.Hardware}
	}
	gs = sr.GPUs
	if len(gs) == 0 {
		gs = []int{sr.Base.GPUs}
	}
	bs = sr.Batches
	if len(bs) == 0 {
		bs = []int{sr.Base.Batch}
	}
	mets = sr.Methods
	if len(mets) == 0 {
		mets = []core.Method{sr.Base.Method}
	}
	protos = sr.Protocols
	if len(protos) == 0 {
		protos = []string{sr.Base.Protocol}
	}
	imgs = sr.Images
	if len(imgs) == 0 {
		imgs = []int64{sr.Base.Images}
	}
	return
}

// Size is the grid's cell count (the product of the axis lengths).
func (sr SweepRequest) Size() int {
	ms, hws, gs, bs, mets, protos, imgs := sr.axes()
	return len(ms) * len(hws) * len(gs) * len(bs) * len(mets) * len(protos) * len(imgs)
}

// Cell materializes grid cell i (0 <= i < Size()) without materializing
// the rest of the grid — the streaming path walks cells one at a time so
// a 10k-cell sweep never holds 10k workloads. Index arithmetic unwinds
// the nesting from the innermost axis (images) outward.
func (sr SweepRequest) Cell(i int) core.Workload {
	ms, hws, gs, bs, mets, protos, imgs := sr.axes()
	w := sr.Base
	w.Images = imgs[i%len(imgs)]
	i /= len(imgs)
	w.Protocol = protos[i%len(protos)]
	i /= len(protos)
	w.Method = mets[i%len(mets)]
	i /= len(mets)
	w.Batch = bs[i%len(bs)]
	i /= len(bs)
	w.GPUs = gs[i%len(gs)]
	i /= len(gs)
	w.Hardware = hws[i%len(hws)]
	i /= len(hws)
	w.Model = ms[i%len(ms)]
	return w
}

// Expand materializes the whole grid as concrete workloads (the
// buffered path; streaming uses Cell directly).
func (sr SweepRequest) Expand() []core.Workload {
	n := sr.Size()
	out := make([]core.Workload, n)
	for i := range out {
		out[i] = sr.Cell(i)
	}
	return out
}

// SweepResponse carries the grid results in grid order. Results are the
// exact bytes /v1/simulate would return for each configuration, so the
// body is deterministic across repeats; cache metadata travels in the
// X-Cache-Hits header and /metrics, not the body.
//
// The wire body carries a count field for clients, but it is derived
// from the results slice at marshal time — an earlier version stored
// both, and nothing stopped them drifting apart.
type SweepResponse struct {
	SchemaVersion int               `json:"schemaVersion"`
	Results       []json.RawMessage `json:"results"`

	// Count mirrors len(Results); populated on decode, derived on encode.
	Count int `json:"-"`
}

// sweepWire is the JSON shape of SweepResponse; count is always
// len(results).
type sweepWire struct {
	SchemaVersion int               `json:"schemaVersion"`
	Count         int               `json:"count"`
	Results       []json.RawMessage `json:"results"`
}

func (sr SweepResponse) MarshalJSON() ([]byte, error) {
	return json.Marshal(sweepWire{
		SchemaVersion: sr.SchemaVersion,
		Count:         len(sr.Results),
		Results:       sr.Results,
	})
}

func (sr *SweepResponse) UnmarshalJSON(b []byte) error {
	var w sweepWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	sr.SchemaVersion, sr.Results, sr.Count = w.SchemaVersion, w.Results, len(w.Results)
	return nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	tr := obs.FromContext(r.Context())
	limitBody(w, r)
	endDecode := tr.StartSpan("decode")
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	endDecode()
	if err != nil {
		httpError(w, badRequestError{fmt.Errorf("decode sweep: %w", err)})
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		httpError(w, err)
		return
	}
	size := req.Size()
	if size == 0 {
		httpError(w, badRequestError{fmt.Errorf("empty sweep grid")})
		return
	}
	// Reject the whole grid before simulating any of it. Cell-at-a-time
	// keeps this O(1) memory even for grids the buffered path would never
	// attempt.
	endValidate := tr.StartSpan("validate")
	for i := 0; i < size; i++ {
		if err := req.Cell(i).Validate(); err != nil {
			endValidate()
			httpError(w, badRequestError{fmt.Errorf("config %d: %w", i, err)})
			return
		}
	}
	endValidate()
	if wantsNDJSON(r) {
		s.streamSweep(w, r, req, size)
		return
	}
	grid := req.Expand()
	if req.Trace {
		for i := range grid {
			grid[i] = withTracing(grid[i])
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	// Per-cell spans carry the grid index, so the sweep's fan-out
	// attributes back to this one request's trace cell by cell.
	labels := make([]string, len(grid))
	for i := range grid {
		labels[i] = fmt.Sprintf("cell[%d] ", i)
	}
	vals, disps, err := s.runGrid(ctx, labels, grid)
	if err != nil {
		httpError(w, err)
		return
	}
	// Hits are counted from this request's own cell dispositions. (An
	// earlier version diffed the global cache-hit counter around the
	// fan-out, which attributed every concurrent request's hits — and
	// this request's own duplicate-cell coalescing — to whoever read the
	// counter last.)
	hits := 0
	for _, d := range disps {
		if d == dispHit {
			hits++
		}
	}
	// Each cell's record is its cached bytes verbatim — no per-cell
	// re-marshal; a fully warm sweep serializes nothing per cell.
	results := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		results[i] = json.RawMessage(v.body)
	}
	endEncode := tr.StartSpan("encode")
	defer endEncode()
	b, err := json.Marshal(SweepResponse{SchemaVersion: SchemaVersion, Results: results})
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("X-Cache-Hits", fmt.Sprintf("%d", hits))
	w.Header().Set("X-Sim-Duration", tr.Dur("simulate").String())
	writeJSONBytes(w, b)
}

// ValidateResponse is the /v1/validate body. A semantically invalid
// workload is a successful validation (200, Valid false, Error set) —
// only a malformed request (bad JSON, unknown field, wrong schema
// version) is a 400. Valid workloads echo back normalized (explicit
// Method and Images — what Run would simulate and report) plus the
// fingerprint the result cache would key them under.
type ValidateResponse struct {
	SchemaVersion int            `json:"schemaVersion"`
	Valid         bool           `json:"valid"`
	Error         string         `json:"error,omitempty"`
	Fingerprint   string         `json:"fingerprint,omitempty"`
	Workload      *core.Workload `json:"workload,omitempty"`
}

// handleValidate checks a workload without simulating it, reusing the
// exact core.Workload.Validate the simulate/compare/sweep paths run, so
// a workload this endpoint accepts never fails validation later.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	limitBody(w, r)
	wl, _, err := decodeBody(r)
	if err != nil {
		httpError(w, err)
		return
	}
	resp := ValidateResponse{SchemaVersion: SchemaVersion}
	if err := wl.Validate(); err != nil {
		resp.Error = err.Error()
	} else {
		n := wl.Normalize()
		resp.Valid = true
		resp.Fingerprint = n.Fingerprint()
		resp.Workload = &n
	}
	b, err := json.Marshal(resp)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONBytes(w, b)
}

// ModelInfo is one zoo entry of the /v1/models listing.
type ModelInfo struct {
	Name             string `json:"name"`
	Depth            int    `json:"depth"`
	ConvLayers       int    `json:"convLayers"`
	InceptionModules int    `json:"inceptionModules"`
	FCLayers         int    `json:"fcLayers"`
	Params           int64  `json:"params"`
	Residual         bool   `json:"residual"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	names := core.Models()
	infos := make([]ModelInfo, 0, len(names))
	for _, n := range names {
		d, err := models.ByName(n)
		if err != nil {
			httpError(w, err)
			return
		}
		infos = append(infos, ModelInfo{
			Name:             d.Name,
			Depth:            d.Depth,
			ConvLayers:       d.ConvLayers,
			InceptionModules: d.InceptionModules,
			FCLayers:         d.FCLayers,
			Params:           d.Params,
			Residual:         d.Residual,
		})
	}
	b, err := json.Marshal(struct {
		SchemaVersion int         `json:"schemaVersion"`
		Models        []ModelInfo `json:"models"`
	}{SchemaVersion: SchemaVersion, Models: infos})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONBytes(w, b)
}

// handleHardware lists the simulatable machines and NCCL protocols — the
// values a workload's hardware and protocol fields accept — so clients
// discover the axis the same way they discover models.
func (s *Server) handleHardware(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	b, err := json.Marshal(struct {
		SchemaVersion int                   `json:"schemaVersion"`
		Hardware      []core.HardwareOption `json:"hardware"`
		Protocols     []string              `json:"protocols"`
	}{SchemaVersion: SchemaVersion, Hardware: core.Hardware(), Protocols: core.Protocols()})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONBytes(w, b)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var pst *persist.Stats
	if s.cfg.Persist != nil {
		st := s.cfg.Persist.Stats()
		pst = &st
	}
	fmt.Fprint(w, s.metrics.render(s.cache.Stats(), s.pool.Stats(), pst))
}
