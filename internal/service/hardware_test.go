package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
)

// GET /v1/hardware serves the machine catalog and protocol ladder.
func TestHardwareEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/hardware")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/hardware: %d", resp.StatusCode)
	}
	var out struct {
		SchemaVersion int                   `json:"schemaVersion"`
		Hardware      []core.HardwareOption `json:"hardware"`
		Protocols     []string              `json:"protocols"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion != SchemaVersion {
		t.Errorf("schemaVersion = %d, want %d", out.SchemaVersion, SchemaVersion)
	}
	if len(out.Hardware) != 5 {
		t.Errorf("hardware catalog has %d entries, want 5", len(out.Hardware))
	}
	if len(out.Protocols) != 4 {
		t.Errorf("protocols = %v, want the 4-step ladder", out.Protocols)
	}

	// Wrong method gets the standard 405 + Allow.
	wrong, body := post(t, ts.URL+"/v1/hardware", map[string]any{})
	if wrong.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/hardware: %d %s, want 405", wrong.StatusCode, body)
	}
}

// Over-capacity on the named machine is an ordinary bad_request; a fault
// plan on non-DGX-1 hardware is the more specific invalid_argument.
func TestHardwareErrorEnvelopes(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	over := core.Workload{Model: "resnet", GPUs: 17, Batch: 16, Hardware: "dgx2"}
	resp, body := post(t, ts.URL+"/v1/simulate", over)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("17 GPUs on dgx2: %d %s, want 400", resp.StatusCode, body)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeBadRequest {
		t.Errorf("over-capacity code = %q, want %q", env.Error.Code, CodeBadRequest)
	}
	if !strings.Contains(env.Error.Message, "the DGX-2 has 1..16") {
		t.Errorf("message %q should cite the DGX-2's range", env.Error.Message)
	}

	mismatched := core.Workload{Model: "lenet", GPUs: 4, Batch: 16, Hardware: "dgx2",
		Faults: &faults.Plan{FailedLinks: []faults.Link{{A: 0, B: 1}}}}
	resp, body = post(t, ts.URL+"/v1/simulate", mismatched)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fault plan on dgx2: %d %s, want 400", resp.StatusCode, body)
	}
	env = ErrorEnvelope{}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeInvalidArgument {
		t.Errorf("hardware mismatch code = %q, want %q", env.Error.Code, CodeInvalidArgument)
	}
	if env.Error.Retryable {
		t.Error("a contradictory workload is not retryable")
	}

	// /v1/validate keeps its semantic contract: the same mismatch is a
	// successful validation reporting valid=false.
	resp, body = post(t, ts.URL+"/v1/validate", mismatched)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("validate mismatch: %d %s, want 200", resp.StatusCode, body)
	}
	var v ValidateResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Valid || !strings.Contains(v.Error, "fault plans describe the DGX-1") {
		t.Errorf("validate should report the mismatch, got %+v", v)
	}
}

// A 16-GPU DGX-2 workload simulates end to end and echoes the
// normalized hardware and protocol.
func TestSimulateDGX2SixteenGPUs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	w := core.Workload{Model: "lenet", GPUs: 16, Batch: 16, Images: 4096, Hardware: "dgx2", Protocol: "auto"}
	resp, body := post(t, ts.URL+"/v1/simulate", w)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	var rep core.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Workload.Hardware != "dgx2" || rep.Workload.Protocol != "auto" {
		t.Errorf("echoed workload = %+v, want hardware/protocol preserved", rep.Workload)
	}
	if rep.EpochTime <= 0 {
		t.Error("no epoch time")
	}
}

// The sweep grid gains hardware and protocol axes; cells come back in
// grid order with both fields set, and empty axes collapse to the base.
func TestSweepHardwareProtocolAxes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SweepRequest{
		Base:      core.Workload{Model: "lenet", GPUs: 8, Batch: 16, Images: 4096},
		Hardware:  []string{"dgx1", "dgx2"},
		Protocols: []string{"simple", "auto"},
	}
	if req.Size() != 4 {
		t.Fatalf("grid size = %d, want 4", req.Size())
	}
	resp, body := post(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var out SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 4 {
		t.Fatalf("count = %d, want 4", out.Count)
	}
	want := []struct{ hw, proto string }{
		{"dgx1", "simple"}, {"dgx1", "auto"}, {"dgx2", "simple"}, {"dgx2", "auto"},
	}
	for i, raw := range out.Results {
		var rep core.Report
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Workload.Hardware != want[i].hw || rep.Workload.Protocol != want[i].proto {
			t.Errorf("cell %d = (%s, %s), want (%s, %s)", i,
				rep.Workload.Hardware, rep.Workload.Protocol, want[i].hw, want[i].proto)
		}
	}
}
