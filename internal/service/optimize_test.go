package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/optimize"
)

func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := OptimizeRequest{
		Base:  core.Workload{Model: "lenet", Batch: 16, Images: 4096},
		Space: optimize.Space{GPUs: []int{1, 2, 4, 8}, Methods: []core.Method{core.NCCL}},
	}
	resp, body := post(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion != SchemaVersion {
		t.Errorf("schemaVersion = %d", out.SchemaVersion)
	}
	if out.Objective != optimize.MinEpochTime {
		t.Errorf("objective = %q, want default min_epoch_time", out.Objective)
	}
	if out.Candidates != 4 {
		t.Errorf("candidates = %d, want 4", out.Candidates)
	}
	if len(out.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	prev := 0
	var lastObj float64
	for i, p := range out.Frontier {
		if p.Workload.GPUs <= prev {
			t.Errorf("frontier not GPU-ascending at %d: %d after %d", i, p.Workload.GPUs, prev)
		}
		if i > 0 && p.Objective >= lastObj {
			t.Errorf("frontier point %d does not improve the objective", i)
		}
		if p.Fingerprint == "" || p.EpochTimeNs <= 0 || p.MemoryGiB <= 0 {
			t.Errorf("point %d missing provenance: %+v", i, p)
		}
		prev, lastObj = p.Workload.GPUs, p.Objective
	}
}

// The optimizer must be deterministic: the same request returns a
// byte-identical body, cold cache or warm.
func TestOptimizeDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := OptimizeRequest{
		Base:      core.Workload{Model: "lenet", Batch: 16, Images: 4096},
		Objective: string(optimize.MaxThroughputPerGPU),
		Space:     optimize.Space{GPUs: []int{1, 2}, Methods: []core.Method{core.P2P, core.NCCL}},
	}
	resp1, body1 := post(t, ts.URL+"/v1/optimize", req)
	resp2, body2 := post(t, ts.URL+"/v1/optimize", req)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d: %s", resp1.StatusCode, resp2.StatusCode, body1)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("optimize not deterministic:\n%s\n%s", body1, body2)
	}
	// The warm run was served from the result cache.
	if hits := resp2.Header.Get("X-Cache-Hits"); hits != "4" {
		t.Errorf("warm X-Cache-Hits = %q, want 4", hits)
	}
}

func TestOptimizeMemoryCapExcludes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := OptimizeRequest{
		Base:         core.Workload{Model: "lenet", Batch: 16, Images: 4096},
		MemoryCapGiB: 0.000001,
		Space:        optimize.Space{GPUs: []int{1}, Methods: []core.Method{core.NCCL}},
	}
	resp, body := post(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.MemoryExcluded != 1 || len(out.Frontier) != 0 {
		t.Errorf("memoryExcluded = %d, frontier = %d; want 1/0", out.MemoryExcluded, len(out.Frontier))
	}
}

func TestOptimizeRejectsBadCandidate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := OptimizeRequest{
		Base:  core.Workload{Model: "vgg", Batch: 16},
		Space: optimize.Space{GPUs: []int{1}},
	}
	resp, body := post(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
	}
	if d := decodeEnvelope(t, body); d.Code != CodeBadRequest {
		t.Errorf("code = %q", d.Code)
	}
}
