package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// decodeEnvelope parses a response body as the shared error envelope.
func decodeEnvelope(t *testing.T, body []byte) ErrorDetail {
	t.Helper()
	var e ErrorEnvelope
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("body %q is not an error envelope: %v", body, err)
	}
	if e.Error.Code == "" {
		t.Fatalf("envelope %q has no error code", body)
	}
	return e.Error
}

// TestClassifyTaxonomy pins the whole error taxonomy: every class of
// failure maps to a stable (status, code, retryable) triple, including
// when the error arrives wrapped by a grid cell's context.
func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		status    int
		code      string
		retryable bool
	}{
		{"queue full", ErrQueueFull, http.StatusTooManyRequests, CodeQueueFull, true},
		{"queue full wrapped", fmt.Errorf("task 3: %w", ErrQueueFull), http.StatusTooManyRequests, CodeQueueFull, true},
		{"deadline while queued", admissionError{context.DeadlineExceeded}, http.StatusServiceUnavailable, CodeDeadlineQueued, true},
		{"deadline mid-work", context.DeadlineExceeded, http.StatusGatewayTimeout, CodeDeadline, false},
		{"deadline wrapped", fmt.Errorf("task 0: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, CodeDeadline, false},
		{"client gone", context.Canceled, 499, CodeClientGone, false},
		{"bad request", badRequestError{errors.New("no such model")}, http.StatusBadRequest, CodeBadRequest, false},
		{"schema version", schemaVersionError{errors.New("speaks 2")}, http.StatusBadRequest, CodeSchemaVersion, false},
		{"body too large", &http.MaxBytesError{Limit: maxBodyBytes}, http.StatusRequestEntityTooLarge, CodeBodyTooLarge, false},
		{"internal", errors.New("boom"), http.StatusInternalServerError, CodeInternal, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, d := classify(tc.err)
			if status != tc.status {
				t.Errorf("status = %d, want %d", status, tc.status)
			}
			if d.Code != tc.code {
				t.Errorf("code = %q, want %q", d.Code, tc.code)
			}
			if d.Retryable != tc.retryable {
				t.Errorf("retryable = %v, want %v", d.Retryable, tc.retryable)
			}
			if d.Message == "" {
				t.Error("message must not be empty")
			}
		})
	}
}

// Shed statuses carry Retry-After; everything else must not.
func TestWriteEnvelopeRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   bool
	}{
		{http.StatusTooManyRequests, true},
		{http.StatusServiceUnavailable, true},
		{http.StatusBadRequest, false},
		{http.StatusGatewayTimeout, false},
		{http.StatusInternalServerError, false},
	} {
		rec := httptest.NewRecorder()
		writeEnvelope(rec, tc.status, ErrorDetail{Code: CodeInternal, Message: "x"})
		if got := rec.Header().Get("Retry-After") != ""; got != tc.want {
			t.Errorf("status %d: Retry-After present = %v, want %v", tc.status, got, tc.want)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("status %d: Content-Type = %q", tc.status, ct)
		}
		decodeEnvelope(t, rec.Body.Bytes())
	}
}

// TestEnvelopeOnEveryStatusPath drives the real server through each
// reachable error status and asserts the body is always the envelope —
// no bare-string error bodies anywhere.
func TestEnvelopeOnEveryStatusPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	do := func(t *testing.T, method, path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.DefaultClient.Do(mustReq(t, method, ts.URL+path, body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp, readAll(t, resp)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"malformed json", "POST", "/v1/simulate", "{", http.StatusBadRequest, CodeBadRequest},
		{"unknown field", "POST", "/v1/simulate", `{"Bogus":1}`, http.StatusBadRequest, CodeBadRequest},
		{"invalid workload", "POST", "/v1/simulate", `{"Model":"vgg","GPUs":1,"Batch":16}`, http.StatusBadRequest, CodeBadRequest},
		{"foreign schema version", "POST", "/v1/simulate", `{"schemaVersion":99,"Model":"lenet","GPUs":1,"Batch":16}`, http.StatusBadRequest, CodeSchemaVersion},
		{"sweep schema version", "POST", "/v1/sweep", `{"schemaVersion":99,"Base":{"Model":"lenet","GPUs":1,"Batch":16}}`, http.StatusBadRequest, CodeSchemaVersion},
		{"optimize bad objective", "POST", "/v1/optimize", `{"base":{"Model":"lenet","GPUs":1,"Batch":16},"objective":"fastest"}`, http.StatusBadRequest, CodeBadRequest},
		{"wrong method", "GET", "/v1/simulate", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"unknown v1 path", "GET", "/v1/bogus", "", http.StatusNotFound, CodeNotFound},
		{"missing trace", "GET", "/v1/trace/deadbeef00000000", "", http.StatusNotFound, CodeNotFound},
		{"oversized body", "POST", "/v1/simulate", `{"Model":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`, http.StatusRequestEntityTooLarge, CodeBodyTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := do(t, tc.method, tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			d := decodeEnvelope(t, body)
			if d.Code != tc.code {
				t.Errorf("code = %q, want %q (%s)", d.Code, tc.code, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
		})
	}
}

// A shed response must carry the envelope (code queue_full, retryable)
// alongside its Retry-After header.
func TestShedCarriesEnvelope(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer close(release)
	// Occupy the single worker, then the single queue slot (retrying
	// until the worker has dequeued the blocker and freed the slot).
	if err := svc.pool.TrySubmit(func() { <-release }); err != nil {
		t.Fatalf("blocker not admitted: %v", err)
	}
	queued := false
	for deadline := time.Now().Add(5 * time.Second); !queued && time.Now().Before(deadline); {
		if err := svc.pool.TrySubmit(func() { <-release }); err == nil {
			queued = true
		}
	}
	if !queued {
		t.Fatal("failed to occupy the queue slot")
	}
	resp, body := post(t, ts.URL+"/v1/simulate",
		core.Workload{Model: "lenet", GPUs: 1, Batch: 16, Images: 4096})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	d := decodeEnvelope(t, body)
	if d.Code != CodeQueueFull || !d.Retryable {
		t.Errorf("envelope = %+v, want queue_full/retryable", d)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
}

func mustReq(t *testing.T, method, url, body string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
