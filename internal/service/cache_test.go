package service

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func report(model string) *core.Report {
	return &core.Report{Workload: core.Workload{Model: model}}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("a", report("lenet"))
	r, ok := c.Get("a")
	if !ok || r.Workload.Model != "lenet" {
		t.Fatalf("Get after Put = %v, %v", r, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", report("a"))
	c.Put("b", report("b"))
	c.Get("a") // refresh a; b is now the LRU
	c.Put("c", report("c"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was recently used and should survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c was just inserted and should survive")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Errorf("stats = %+v, want 1 eviction at size 2", st)
	}
}

func TestCachePutExistingRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", report("old"))
	c.Put("b", report("b"))
	c.Put("a", report("new")) // refresh, no eviction
	c.Put("c", report("c"))   // evicts b, the LRU
	if r, ok := c.Get("a"); !ok || r.Workload.Model != "new" {
		t.Errorf("refreshed entry = %v, %v", r, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := NewCache(0)
	if c.Stats().Max != 1024 {
		t.Errorf("default max = %d, want 1024", c.Stats().Max)
	}
}

// The cache is the service's shared hot structure — hammer it from many
// goroutines so `go test -race` gates it.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%32)
				if _, ok := c.Get(key); !ok {
					c.Put(key, report(key))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > 16 {
		t.Errorf("size %d exceeds capacity 16", st.Size)
	}
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}
