package service

import (
	"fmt"
	"sync"
	"testing"
)

func entry(body string) *cached {
	return &cached{body: []byte(body)}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("a", entry(`{"model":"lenet"}`))
	v, ok := c.Get("a")
	if !ok || string(v.body) != `{"model":"lenet"}` {
		t.Fatalf("Get after Put = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", entry("a"))
	c.Put("b", entry("b"))
	c.Get("a") // refresh a; b is now the LRU
	c.Put("c", entry("c"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was recently used and should survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c was just inserted and should survive")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Errorf("stats = %+v, want 1 eviction at size 2", st)
	}
}

func TestCachePutExistingRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", entry("old"))
	c.Put("b", entry("b"))
	c.Put("a", entry("new")) // refresh, no eviction
	c.Put("c", entry("c"))   // evicts b, the LRU
	if v, ok := c.Get("a"); !ok || string(v.body) != "new" {
		t.Errorf("refreshed entry = %v, %v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := NewCache(0)
	if c.Stats().Max != 1024 {
		t.Errorf("default max = %d, want 1024", c.Stats().Max)
	}
}

// TestCachePeekDoesNotCount pins Peek's contract: no recency promotion,
// no hit/miss accounting — it backs internal double-checks that must not
// skew the published hit ratio.
func TestCachePeekDoesNotCount(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Peek("a"); ok {
		t.Fatal("Peek on empty cache should miss")
	}
	c.Put("a", entry("a"))
	if v, ok := c.Peek("a"); !ok || string(v.body) != "a" {
		t.Fatalf("Peek = %v, %v", v, ok)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Peek moved the counters: %+v", st)
	}
}

// The cache is the service's shared hot structure — hammer it from many
// goroutines so `go test -race` gates it.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%32)
				if _, ok := c.Get(key); !ok {
					c.Put(key, entry(key))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > 16 {
		t.Errorf("size %d exceeds capacity 16", st.Size)
	}
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}
