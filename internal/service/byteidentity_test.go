// The immutability contract of the preserialized response cache, under
// the race detector. The old cache stored *core.Report: every hit for a
// fingerprint aliased one struct, so any later code path mutating a
// report (or its profile) would silently corrupt every subsequent hit.
// The byte cache makes corruption structurally impossible — hits write
// immutable bytes — and this test is the tripwire that keeps it that
// way: concurrent handlers serve the same fingerprint while sweeps
// extrapolate (and scale profiles off) the same compiled window, and
// every response must stay byte-identical. CI runs the package under
// `go test -race`, so an append into a shared body or a write through a
// shared profile fails loudly here.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestCacheHitsByteIdenticalUnderConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent stress test")
	}
	_, ts := newTestServer(t, Config{Workers: 4})

	wl := core.Workload{Model: "lenet", GPUs: 2, Batch: 16, Images: 4096}
	resp, reference := post(t, ts.URL+"/v1/simulate", workloadRequest{Workload: wl})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: status %d: %s", resp.StatusCode, reference)
	}
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("prime should miss, got %q", resp.Header.Get("X-Cache"))
	}

	const (
		readers = 6
		iters   = 20
		sweeps  = 3
	)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// Sweeps over the same model keep the shared compiled window busy:
	// every cell extrapolates it, cells with larger epochs clone-and-scale
	// its profile, and the wl cell itself is served from the byte cache.
	for g := 0; g < sweeps; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := SweepRequest{
				Base:    wl,
				Images:  []int64{4096, 64 * 1024, 256 * 1024},
				Batches: []int{16, 32},
			}
			resp, body := post(t, ts.URL+"/v1/sweep", req)
			if resp.StatusCode != http.StatusOK {
				fail(fmt.Errorf("sweep: status %d: %s", resp.StatusCode, body))
			}
		}()
	}
	// Concurrent hits on one fingerprint: every body must equal the
	// primed response byte for byte, no matter what the sweeps are doing
	// to the underlying window.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, body := post(t, ts.URL+"/v1/simulate", workloadRequest{Workload: wl})
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("hit: status %d: %s", resp.StatusCode, body))
					return
				}
				if hdr := resp.Header.Get("X-Cache"); hdr != "HIT" {
					fail(fmt.Errorf("X-Cache = %q, want HIT", hdr))
					return
				}
				if !bytes.Equal(body, reference) {
					fail(fmt.Errorf("cache hit drifted from primed response:\n got %s\nwant %s", body, reference))
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
}

// TestCompareNestedReportMatchesSimulate pins the envelope splice: the
// report nested in a /v1/compare result must be byte-identical to the
// corresponding /v1/simulate body minus its schemaVersion field — both
// come from the same cached bytes, one spliced, one verbatim.
func TestCompareNestedReportMatchesSimulate(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	wl := core.Workload{Model: "lenet", GPUs: 2, Batch: 16, Images: 4096}

	var sim [2][]byte
	for i, m := range []core.Method{core.P2P, core.NCCL} {
		wm := wl
		wm.Method = m
		resp, body := post(t, ts.URL+"/v1/simulate", workloadRequest{Workload: wm})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %s: status %d: %s", m, resp.StatusCode, body)
		}
		raw, err := reportRaw(bytes.TrimSuffix(body, []byte("\n")))
		if err != nil {
			t.Fatalf("simulate %s: %v", m, err)
		}
		sim[i] = raw
	}

	resp, body := post(t, ts.URL+"/v1/compare", workloadRequest{Workload: wl})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare: status %d: %s", resp.StatusCode, body)
	}
	var cw compareWire
	if err := json.Unmarshal(body, &cw); err != nil {
		t.Fatal(err)
	}
	if len(cw.Results) != 2 {
		t.Fatalf("compare results = %d, want 2", len(cw.Results))
	}
	for i := range cw.Results {
		if !bytes.Equal(cw.Results[i].Report, sim[i]) {
			t.Errorf("compare arm %d report differs from /v1/simulate bytes:\n got %s\nwant %s",
				i, cw.Results[i].Report, sim[i])
		}
	}
}
