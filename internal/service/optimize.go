// POST /v1/optimize: search a configuration space for the Pareto
// frontier of an objective against GPU cost. The handler expands the
// space (internal/optimize), runs every candidate through the same
// runGrid path as /v1/simulate and /v1/sweep — so candidates hit the
// result cache, coalesce onto in-flight runs, and inherit the overload
// taxonomy (429 queue-full, 503 deadline-queued) — then judges
// dominance. The simulator is deterministic and the frontier is
// computed in candidate order, so the same request always returns a
// byte-identical body.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/optimize"
)

// OptimizeRequest is the /v1/optimize body: a base workload (the model
// under study), the objective, an optional per-GPU memory cap, and the
// searched axes (empty axes take internal/optimize's defaults: GPUs
// 1..8, both methods, the base batch, the healthy machine).
type OptimizeRequest struct {
	SchemaVersion int `json:"schemaVersion,omitempty"`
	// Trace opts every candidate into simulator-stage tracing (see
	// workloadRequest.Trace).
	Trace bool          `json:"trace,omitempty"`
	Base  core.Workload `json:"base"`
	// Objective: "min_epoch_time" (default) or "max_throughput_per_gpu".
	Objective string `json:"objective,omitempty"`
	// MemoryCapGiB drops candidates whose root-GPU usage exceeds the cap
	// (<= 0: no cap).
	MemoryCapGiB float64        `json:"memoryCapGiB,omitempty"`
	Space        optimize.Space `json:"space,omitempty"`
}

// OptimizeResponse is the /v1/optimize body: the search accounting and
// the frontier, GPU count ascending, with per-point provenance (the
// exact workload, its cache fingerprint, and the measured metrics).
type OptimizeResponse struct {
	SchemaVersion int `json:"schemaVersion"`
	optimize.Result
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	tr := obs.FromContext(r.Context())
	limitBody(w, r)
	endDecode := tr.StartSpan("decode")
	var req OptimizeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	endDecode()
	if err != nil {
		httpError(w, badRequestError{fmt.Errorf("decode optimize: %w", err)})
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		httpError(w, err)
		return
	}
	obj, err := optimize.ParseObjective(req.Objective)
	if err != nil {
		httpError(w, badRequestError{err})
		return
	}
	cands := optimize.Candidates(req.Base, req.Space)
	for i, wl := range cands {
		if err := wl.Validate(); err != nil {
			httpError(w, badRequestError{fmt.Errorf("candidate %d: %w", i, err)})
			return
		}
	}
	if req.Trace {
		for i := range cands {
			cands[i] = withTracing(cands[i])
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	labels := make([]string, len(cands))
	for i := range cands {
		labels[i] = fmt.Sprintf("cand[%d] ", i)
	}
	vals, disps, err := s.runGrid(ctx, labels, cands)
	if err != nil {
		httpError(w, err)
		return
	}
	// The grid returns preserialized responses; the optimizer judges
	// dominance on the numbers, so rebuild the report structs from the
	// cached bytes (a decode per candidate — the search itself simulated
	// or cache-served every cell, so this is noise by comparison).
	reps := make([]*core.Report, len(vals))
	for i, v := range vals {
		if reps[i], err = decodeCachedReport(v.body); err != nil {
			httpError(w, err)
			return
		}
	}
	res, err := optimize.Frontier(cands, reps, obj, req.MemoryCapGiB)
	if err != nil {
		httpError(w, err)
		return
	}
	hits := 0
	for _, d := range disps {
		if d == dispHit {
			hits++
		}
	}
	endEncode := tr.StartSpan("encode")
	defer endEncode()
	b, err := json.Marshal(OptimizeResponse{SchemaVersion: SchemaVersion, Result: res})
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("X-Cache-Hits", fmt.Sprintf("%d", hits))
	w.Header().Set("X-Sim-Duration", tr.Dur("simulate").String())
	writeJSONBytes(w, b)
}
