package service

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// quantile must use the nearest-rank definition. The flooring bug this
// pins against: over a 2-sample window, int(0.99*(2-1)) = 0, so p99
// reported the *minimum* latency.
func TestQuantileNearestRank(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"empty", nil, 0.99, 0},
		{"single sample", []time.Duration{ms(7)}, 0.5, ms(7)},
		{"p99 of two samples is the max", []time.Duration{ms(1), ms(100)}, 0.99, ms(100)},
		{"p90 of two samples is the max", []time.Duration{ms(1), ms(100)}, 0.9, ms(100)},
		{"p50 of two samples is the lower", []time.Duration{ms(1), ms(100)}, 0.5, ms(1)},
		{"p50 of four samples", []time.Duration{ms(1), ms(2), ms(3), ms(4)}, 0.5, ms(2)},
		{"p99 of 100 samples", mkRange(100), 0.99, ms(99)},
		{"p90 of 10 samples", mkRange(10), 0.9, ms(9)},
		{"q=0 clamps to the minimum", []time.Duration{ms(1), ms(2)}, 0, ms(1)},
		{"q=1 is the maximum", []time.Duration{ms(1), ms(2), ms(3)}, 1, ms(3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := quantile(c.sorted, c.q); got != c.want {
				t.Errorf("quantile(%v, %v) = %v, want %v", c.sorted, c.q, got, c.want)
			}
		})
	}
}

// mkRange returns n sorted samples 1ms..n ms.
func mkRange(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i+1) * time.Millisecond
	}
	return out
}

// metricLine extracts the value of the first exposition line with the
// given prefix.
func metricLine(t *testing.T, text, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(line, prefix))
		}
	}
	t.Fatalf("metrics output missing %q:\n%s", prefix, text)
	return ""
}

// Once the ring buffer has wrapped (>= latencyWindow observations), the
// percentiles must describe the *recent* window only: a latency regime
// change fully replaces the old samples after one window's worth of
// requests.
func TestLatencyWindowWrapAroundKeepsRecentOnly(t *testing.T) {
	m := newMetrics()
	// Old regime: a full window of 1ms requests.
	for i := 0; i < latencyWindow; i++ {
		m.observe("/x", time.Millisecond, false)
	}
	// New regime: a full window of 100ms requests wraps the ring.
	for i := 0; i < latencyWindow; i++ {
		m.observe("/x", 100*time.Millisecond, false)
	}
	out := m.render(CacheStats{}, PoolStats{}, nil)
	for _, q := range []string{"0.5", "0.9", "0.99"} {
		got := metricLine(t, out, `dgxsimd_latency_seconds{path="/x",quantile="`+q+`"} `)
		if got != "0.100000" {
			t.Errorf("p%s after wrap = %s, want 0.100000 (old samples must be gone)", q, got)
		}
	}
	// A half-window of the old regime must still show at p50 before the
	// wrap completes.
	m2 := newMetrics()
	for i := 0; i < latencyWindow; i++ {
		m2.observe("/y", time.Millisecond, false)
	}
	for i := 0; i < latencyWindow/2; i++ {
		m2.observe("/y", 100*time.Millisecond, false)
	}
	out2 := m2.render(CacheStats{}, PoolStats{}, nil)
	if got := metricLine(t, out2, `dgxsimd_latency_seconds{path="/y",quantile="0.5"} `); got != "0.001000" {
		t.Errorf("p50 mid-wrap = %s, want 0.001000 (half the window is still old)", got)
	}
	if got := metricLine(t, out2, `dgxsimd_latency_seconds{path="/y",quantile="0.99"} `); got != "0.100000" {
		t.Errorf("p99 mid-wrap = %s, want 0.100000", got)
	}
}

// observe and render race-free under concurrent use (run with -race).
func TestMetricsObserveRenderConcurrent(t *testing.T) {
	m := newMetrics()
	var observers sync.WaitGroup
	for g := 0; g < 4; g++ {
		observers.Add(1)
		go func(g int) {
			defer observers.Done()
			path := fmt.Sprintf("/p%d", g%2)
			for i := 0; i < 2*latencyWindow; i++ {
				m.startRequest(path)
				m.observe(path, time.Duration(i)*time.Microsecond, i%7 == 0)
			}
		}(g)
	}
	stop := make(chan struct{})
	var renderer sync.WaitGroup
	renderer.Add(1)
	go func() {
		defer renderer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = m.render(CacheStats{}, PoolStats{}, nil)
			}
		}
	}()
	observers.Wait()
	close(stop)
	renderer.Wait()
	out := m.render(CacheStats{}, PoolStats{}, nil)
	if got := metricLine(t, out, `dgxsimd_requests_total{path="/p0"} `); got != fmt.Sprint(4*latencyWindow) {
		t.Errorf("requests_total = %s, want %d", got, 4*latencyWindow)
	}
}

// The cumulative histogram renders monotone buckets with exact sum and
// count, and the in-flight gauge returns to zero after observe.
func TestMetricsHistogramAndInflight(t *testing.T) {
	m := newMetrics()
	m.startRequest("/x")
	out := m.render(CacheStats{}, PoolStats{}, nil)
	if got := metricLine(t, out, `dgxsimd_inflight{path="/x"} `); got != "1" {
		t.Errorf("inflight during request = %s, want 1", got)
	}
	m.observe("/x", 3*time.Millisecond, false)
	m.startRequest("/x")
	m.observe("/x", 700*time.Millisecond, false)
	out = m.render(CacheStats{}, PoolStats{Panics: 2, QueueWait: 1500 * time.Millisecond}, nil)

	cases := []struct{ prefix, want string }{
		{`dgxsimd_inflight{path="/x"} `, "0"},
		{`dgxsimd_request_duration_seconds_bucket{path="/x",le="0.001"} `, "0"},
		{`dgxsimd_request_duration_seconds_bucket{path="/x",le="0.005"} `, "1"},
		{`dgxsimd_request_duration_seconds_bucket{path="/x",le="0.5"} `, "1"},
		{`dgxsimd_request_duration_seconds_bucket{path="/x",le="1"} `, "2"},
		{`dgxsimd_request_duration_seconds_bucket{path="/x",le="+Inf"} `, "2"},
		{`dgxsimd_request_duration_seconds_sum{path="/x"} `, "0.703000"},
		{`dgxsimd_request_duration_seconds_count{path="/x"} `, "2"},
		{`dgxsimd_pool_panics_total `, "2"},
		{`dgxsimd_pool_queue_wait_seconds_total `, "1.500000"},
	}
	for _, c := range cases {
		if got := metricLine(t, out, c.prefix); got != c.want {
			t.Errorf("%s= %s, want %s", c.prefix, got, c.want)
		}
	}
}
