package service

import (
	"testing"
	"time"
)

// quantile must use the nearest-rank definition. The flooring bug this
// pins against: over a 2-sample window, int(0.99*(2-1)) = 0, so p99
// reported the *minimum* latency.
func TestQuantileNearestRank(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"empty", nil, 0.99, 0},
		{"single sample", []time.Duration{ms(7)}, 0.5, ms(7)},
		{"p99 of two samples is the max", []time.Duration{ms(1), ms(100)}, 0.99, ms(100)},
		{"p90 of two samples is the max", []time.Duration{ms(1), ms(100)}, 0.9, ms(100)},
		{"p50 of two samples is the lower", []time.Duration{ms(1), ms(100)}, 0.5, ms(1)},
		{"p50 of four samples", []time.Duration{ms(1), ms(2), ms(3), ms(4)}, 0.5, ms(2)},
		{"p99 of 100 samples", mkRange(100), 0.99, ms(99)},
		{"p90 of 10 samples", mkRange(10), 0.9, ms(9)},
		{"q=0 clamps to the minimum", []time.Duration{ms(1), ms(2)}, 0, ms(1)},
		{"q=1 is the maximum", []time.Duration{ms(1), ms(2), ms(3)}, 1, ms(3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := quantile(c.sorted, c.q); got != c.want {
				t.Errorf("quantile(%v, %v) = %v, want %v", c.sorted, c.q, got, c.want)
			}
		})
	}
}

// mkRange returns n sorted samples 1ms..n ms.
func mkRange(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i+1) * time.Millisecond
	}
	return out
}
