package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestValidateEndpointValid(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/validate", core.Workload{Model: "lenet", GPUs: 4, Batch: 16})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("validate: %d %s", resp.StatusCode, body)
	}
	var out ValidateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion != SchemaVersion {
		t.Errorf("schemaVersion = %d, want %d", out.SchemaVersion, SchemaVersion)
	}
	if !out.Valid || out.Error != "" {
		t.Fatalf("workload should be valid, got %+v", out)
	}
	w := core.Workload{Model: "lenet", GPUs: 4, Batch: 16}
	if out.Fingerprint != w.Fingerprint() {
		t.Errorf("fingerprint = %s, want %s", out.Fingerprint, w.Fingerprint())
	}
	// The echoed workload is normalized: defaults made explicit.
	if out.Workload == nil || out.Workload.Method != core.NCCL || out.Workload.Images == 0 {
		t.Errorf("echoed workload should be normalized, got %+v", out.Workload)
	}
	// Validation never spends a simulation.
	if st := svc.PoolStats(); st.Completed != 0 {
		t.Errorf("%d simulations ran for a validate request", st.Completed)
	}
}

func TestValidateEndpointInvalidWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Semantically invalid (unknown model) is a successful validation.
	resp, body := post(t, ts.URL+"/v1/validate", core.Workload{Model: "bogus", GPUs: 4, Batch: 16})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("validate: %d %s", resp.StatusCode, body)
	}
	var out ValidateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Valid || out.Error == "" || !strings.Contains(out.Error, "bogus") {
		t.Errorf("expected invalid with an error naming the model, got %+v", out)
	}
	if out.Fingerprint != "" || out.Workload != nil {
		t.Errorf("invalid workloads carry no fingerprint or echo, got %+v", out)
	}
}

func TestValidateEndpointMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts.URL+"/v1/validate", map[string]any{"Model": "lenet", "Bogus": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestSchemaVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Current and omitted versions are accepted everywhere.
	for _, body := range []map[string]any{
		{"Model": "lenet", "GPUs": 1, "Batch": 16, "Images": 4096},
		{"schemaVersion": SchemaVersion, "Model": "lenet", "GPUs": 1, "Batch": 16, "Images": 4096},
	} {
		resp, b := post(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %v: %d %s", body, resp.StatusCode, b)
		}
		var rep struct {
			SchemaVersion int `json:"schemaVersion"`
		}
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.SchemaVersion != SchemaVersion {
			t.Errorf("response schemaVersion = %d, want %d", rep.SchemaVersion, SchemaVersion)
		}
	}

	// A foreign version is a 400 on every versioned endpoint.
	for _, path := range []string{"/v1/simulate", "/v1/compare", "/v1/validate"} {
		resp, b := post(t, ts.URL+path, map[string]any{
			"schemaVersion": SchemaVersion + 1, "Model": "lenet", "GPUs": 1, "Batch": 16,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with foreign schemaVersion: status %d, want 400 (%s)", path, resp.StatusCode, b)
		}
	}
	resp, b := post(t, ts.URL+"/v1/sweep", map[string]any{
		"schemaVersion": SchemaVersion + 1, "Models": []string{"lenet"},
		"Base": map[string]any{"GPUs": 1, "Batch": 16},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/v1/sweep with foreign schemaVersion: status %d, want 400 (%s)", resp.StatusCode, b)
	}
}

// TestSimulateNormalizedAliasesShareCacheSlot pins runCached's
// normalization: spelling out the defaults hits the cache entry the
// omitted-defaults request populated, with byte-identical bodies.
func TestSimulateNormalizedAliasesShareCacheSlot(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	resp1, body1 := post(t, ts.URL+"/v1/simulate", core.Workload{Model: "lenet", GPUs: 2, Batch: 16})
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp1.StatusCode, body1)
	}
	explicit := core.Workload{Model: "lenet", GPUs: 2, Batch: 16}.Normalize()
	resp2, body2 := post(t, ts.URL+"/v1/simulate", explicit)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp2.StatusCode, body2)
	}
	if resp2.Header.Get("X-Cache") != "HIT" {
		t.Errorf("explicit-defaults request should hit the implicit-defaults cache entry")
	}
	if string(body1) != string(body2) {
		t.Errorf("aliased requests returned different bodies:\n%s\n%s", body1, body2)
	}
	if st := svc.CacheStats(); st.Hits < 1 {
		t.Errorf("cache hits = %d, want >= 1", st.Hits)
	}
}
