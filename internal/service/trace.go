package service

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/profiler"
)

// handleTrace serves GET /v1/trace/{id}: the recorded timeline of a
// recent request, rendered as a Chrome trace (load in chrome://tracing
// or Perfetto). The "service" track carries the request's own spans —
// decode, cache-lookup, queue-wait, simulate, encode — and, when the
// originating request opted in with "trace": true, the simulator's
// retained kernel/API/transfer intervals appear on their own tracks with
// the paper's FP/BP/WU stage attribution. This is the per-request analog
// of the paper's nvprof timelines: the same export path
// (profiler.ExportChromeTrace), pointed at one served request instead of
// one simulated epoch.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, badRequestError{fmt.Errorf("trace id missing (GET /v1/trace/{id})")})
		return
	}
	tr, ok := s.traces.Get(id)
	if !ok {
		notFound(w, fmt.Sprintf("no trace for request id %q (the store retains the most recent %d requests)", id, obs.DefaultStoreSize))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := traceProfile(tr).ExportChromeTrace(w); err != nil {
		// Headers are already out; the truncated body is the client's
		// signal. Nothing useful to write here.
		return
	}
}

// traceProfile lowers a request trace into one detailed
// profiler.Profile: service spans become marker intervals on a "service"
// track, and every attached simulator profile contributes its retained
// intervals on their original tracks.
func traceProfile(tr *obs.Trace) *profiler.Profile {
	spans := tr.Spans()
	var profs []*profiler.Profile
	capacity := len(spans)
	for _, a := range tr.Attachments() {
		if p, ok := a.Value.(*profiler.Profile); ok {
			capacity += len(p.Intervals())
			profs = append(profs, p)
		}
	}
	out := profiler.NewDetailed(capacity)
	for _, sp := range spans {
		out.Record(profiler.Interval{
			Kind:  profiler.KindMarker,
			Name:  sp.Name,
			Track: "service",
			Start: sp.Start,
			End:   sp.Start + sp.Dur,
		})
	}
	for _, p := range profs {
		out.Merge(p)
	}
	return out
}
