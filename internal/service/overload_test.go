package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// occupyPool parks blocking tasks on the pool until every worker and
// every admission-queue slot is taken, and returns the release
// function. It waits for the occupation to be observable in the pool
// stats, so a subsequent TrySubmit deterministically sheds.
func occupyPool(t *testing.T, p *Pool) (release func()) {
	t.Helper()
	st := p.Stats()
	blocker := make(chan struct{})
	total := st.Workers + st.QueueDepth
	var parked sync.WaitGroup
	parked.Add(total)
	for i := 0; i < total; i++ {
		go p.Submit(func() { parked.Done(); <-blocker })
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.Active == int64(st.Workers) && st.Queued == int64(st.QueueDepth) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	var once sync.Once
	return func() {
		once.Do(func() { close(blocker) })
		parked.Wait()
	}
}

// A full admission queue must shed new simulations with 429 +
// Retry-After — never park the request — and the daemon must answer
// normally again the moment the queue drains.
func TestFullQueueShedsWith429(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := occupyPool(t, svc.pool)
	defer release()

	const floods = 20
	type outcome struct {
		status     int
		retryAfter string
		body       string
	}
	outcomes := make([]outcome, floods)
	var wg sync.WaitGroup
	for i := 0; i < floods; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Distinct workloads: nothing caches, nothing coalesces —
			// every request faces the admission check.
			resp, body := post(t, ts.URL+"/v1/simulate",
				core.Workload{Model: "lenet", GPUs: 1, Batch: 8 + i, Images: 4096})
			outcomes[i] = outcome{resp.StatusCode, resp.Header.Get("Retry-After"), string(body)}
		}()
	}
	wg.Wait()

	for i, o := range outcomes {
		if o.status != http.StatusTooManyRequests {
			t.Errorf("flood %d: status = %d, want 429 (body %q)", i, o.status, o.body)
		}
		if o.retryAfter == "" {
			t.Errorf("flood %d: shed response missing Retry-After", i)
		}
	}

	// The shed is visible on /metrics, and the pool never grew past its
	// bounds.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := fmt.Sprintf("dgxsimd_shed_total %d", floods); !strings.Contains(string(metrics), want) {
		t.Errorf("/metrics missing %q", want)
	}
	if !strings.Contains(string(metrics), "dgxsimd_admission_queue_capacity 1") {
		t.Error("/metrics missing the admission-queue capacity gauge")
	}
	st := svc.PoolStats()
	if st.Queued > int64(st.QueueDepth) {
		t.Errorf("queued %d tasks past the queue depth %d", st.Queued, st.QueueDepth)
	}

	// Drain and verify full recovery: health, then a real simulation.
	release()
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after the flood: %v %v", resp, err)
	}
	resp2, _ := post(t, ts.URL+"/v1/simulate", core.Workload{Model: "lenet", GPUs: 1, Batch: 4, Images: 4096})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("simulate after drain: status = %d", resp2.StatusCode)
	}
}

// A deadline that expires while a cell is still waiting for admission is
// the server's overload, not the workload's slowness: 503 + Retry-After,
// and it outranks the sibling cells' context errors.
func TestDeadlineWhileQueuedShedsWith503(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RequestTimeout: 50 * time.Millisecond})
	// Occupy the lone worker but leave the queue slot free: a compare's
	// first cell admits (TrySubmit), its second blocks in SubmitContext
	// until the deadline burns down.
	blocker := make(chan struct{})
	started := make(chan struct{})
	svc.pool.Submit(func() { close(started); <-blocker })
	<-started

	done := make(chan struct{})
	var status int
	var retryAfter string
	go func() {
		defer close(done)
		resp, _ := post(t, ts.URL+"/v1/compare", core.Workload{Model: "lenet", GPUs: 2, Batch: 16, Images: 4096})
		status, retryAfter = resp.StatusCode, resp.Header.Get("Retry-After")
	}()
	// Wait until the first cell is admitted (it occupies the one queue
	// slot), let the request deadline burn out while the second cell is
	// still parked in SubmitContext, then free the worker so the admitted
	// cell can drain.
	deadline := time.Now().Add(5 * time.Second)
	for svc.pool.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first compare cell was never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(120 * time.Millisecond)
	close(blocker)
	select {
	case <-time.After(5 * time.Second):
		t.Fatal("compare request never returned")
	case <-done:
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if retryAfter == "" {
		t.Error("503 shed missing Retry-After")
	}
}

// k identical concurrent misses must run exactly one simulation: one
// leader (X-Cache: MISS), k-1 coalesced subscribers with byte-identical
// bodies, and dgxsimd_coalesced_total counting them.
func TestIdenticalConcurrentMissesCoalesce(t *testing.T) {
	const k = 8
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Park the lone worker so the leader's task sits in the queue while
	// the other k-1 requests arrive and subscribe to its flight.
	blocker := make(chan struct{})
	started := make(chan struct{})
	svc.pool.Submit(func() { close(started); <-blocker })
	<-started

	wl := core.Workload{Model: "lenet", GPUs: 2, Batch: 16, Images: 4096}
	type outcome struct {
		status int
		disp   string
		body   string
	}
	outcomes := make([]outcome, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/v1/simulate", wl)
			outcomes[i] = outcome{resp.StatusCode, resp.Header.Get("X-Cache"), string(body)}
		}()
	}
	// Wait until all k are inside the handler, give them a beat to reach
	// the flight group, then let the leader run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var inflight int64
		svc.metrics.mu.Lock()
		if e := svc.metrics.endpoints["/v1/simulate"]; e != nil {
			inflight = e.inflight
		}
		svc.metrics.mu.Unlock()
		if inflight == k {
			break
		}
		if time.Now().After(deadline) {
			close(blocker) // unwedge cleanup before failing
			t.Fatalf("only %d/%d requests in flight", inflight, k)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(blocker)
	wg.Wait()

	var miss, coalesced int
	for i, o := range outcomes {
		if o.status != http.StatusOK {
			t.Fatalf("request %d: status = %d (body %q)", i, o.status, o.body)
		}
		if o.body != outcomes[0].body {
			t.Errorf("request %d: body differs from request 0", i)
		}
		switch o.disp {
		case "MISS":
			miss++
		case "COALESCED":
			coalesced++
		default:
			t.Errorf("request %d: X-Cache = %q", i, o.disp)
		}
	}
	if miss != 1 || coalesced != k-1 {
		t.Errorf("dispositions: %d MISS, %d COALESCED; want 1 and %d", miss, coalesced, k-1)
	}
	// Exactly two pool tasks ever ran: the parked blocker and the one
	// leader simulation. The k-1 subscribers consumed no pool slot.
	if got := svc.PoolStats().Completed; got != 2 {
		t.Errorf("pool completed %d tasks, want 2 (blocker + one simulation)", got)
	}
	svc.metrics.mu.Lock()
	gotCoalesced := svc.metrics.coalesced
	svc.metrics.mu.Unlock()
	if gotCoalesced != uint64(k-1) {
		t.Errorf("dgxsimd_coalesced_total = %d, want %d", gotCoalesced, k-1)
	}
}

// Satellite regression: a caller that gives up while its submission is
// still blocked on a full queue must not leave the task behind — it
// never runs, and the worker pool drains back to idle.
func TestSubmitContextCancelledWhileQueuedNeverRuns(t *testing.T) {
	p := NewPoolQueue(1, 1)
	defer p.Close()
	release := occupyPool(t, p)

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.SubmitContext(ctx, func() { ran.Store(true) })
	}()
	time.Sleep(10 * time.Millisecond) // let the submission park on the full queue
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("SubmitContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitContext still blocked after cancellation")
	}

	release()
	waitIdle(t, p)
	if ran.Load() {
		t.Error("cancelled submission's task ran anyway")
	}
}

// TrySubmit against a saturated pool sheds immediately with ErrQueueFull
// and leaves the queue gauge untouched.
func TestTrySubmitShedsWhenSaturated(t *testing.T) {
	p := NewPoolQueue(1, 2)
	defer p.Close()
	release := occupyPool(t, p)
	defer release()

	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit = %v, want ErrQueueFull", err)
	}
	if got := p.Stats().Queued; got != 2 {
		t.Errorf("Queued = %d after a shed, want 2", got)
	}
}

// Satellite regression: cancelling a Map must abort cells that are
// already running — the context reaches each cell, not just the
// submission loop.
func TestMapCancellationReachesRunningCells(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	running := make(chan struct{}, 16)
	start := time.Now()
	go func() {
		<-running // first cell is on a worker
		cancel()
	}()
	err := p.Map(ctx, 16, func(ctx context.Context, i int) error {
		running <- struct{}{}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return nil // would blow the test deadline if ctx never arrived
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Map took %v to honour cancellation", elapsed)
	}
}

// waitIdle polls until the pool has no queued or active tasks.
func waitIdle(t *testing.T, p *Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.Active == 0 && st.Queued == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// Satellite regression: X-Cache-Hits counts the request's own cache
// hits. Two concurrent sweeps — one fully warmed, one fully cold — must
// report their own hit counts exactly, not a share of a global delta.
func TestSweepCacheHitsArePerRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	warm := SweepRequest{
		Base:    core.Workload{Images: 4096},
		Models:  []string{"lenet"},
		GPUs:    []int{1, 2},
		Batches: []int{16, 32},
	}
	// Warm its four cells.
	if resp, body := post(t, ts.URL+"/v1/sweep", warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup sweep: %d (%s)", resp.StatusCode, body)
	}

	cold := SweepRequest{
		Base:    core.Workload{Images: 4096},
		Models:  []string{"lenet"},
		GPUs:    []int{4, 8},
		Batches: []int{48, 64},
	}
	var (
		wg       sync.WaitGroup
		warmHits string
		coldHits string
		warmOK   bool
		coldOK   bool
		warmBody []byte
		coldBody []byte
		warmResp *http.Response
		coldResp *http.Response
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		warmResp, warmBody = post(t, ts.URL+"/v1/sweep", warm)
		warmHits, warmOK = warmResp.Header.Get("X-Cache-Hits"), warmResp.StatusCode == http.StatusOK
	}()
	go func() {
		defer wg.Done()
		coldResp, coldBody = post(t, ts.URL+"/v1/sweep", cold)
		coldHits, coldOK = coldResp.Header.Get("X-Cache-Hits"), coldResp.StatusCode == http.StatusOK
	}()
	wg.Wait()
	if !warmOK {
		t.Fatalf("warm sweep failed: %s", warmBody)
	}
	if !coldOK {
		t.Fatalf("cold sweep failed: %s", coldBody)
	}
	if warmHits != "4" {
		t.Errorf("warmed sweep X-Cache-Hits = %q, want 4", warmHits)
	}
	if coldHits != "0" {
		t.Errorf("cold sweep X-Cache-Hits = %q, want 0 despite the concurrent warm sweep", coldHits)
	}
}
