package p2p

import (
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/interconnect"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

func newEngine(t *testing.T, n int) (*Engine, *profiler.Profile) {
	t.Helper()
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	prof := profiler.New()
	devs := make([]topology.NodeID, n)
	for i := range devs {
		devs[i] = topology.NodeID(i)
	}
	rt, err := cuda.NewRuntime(fab, gpu.V100(), devs, cuda.DefaultCosts(), prof)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(rt, devs)
	if err != nil {
		t.Fatal(err)
	}
	return e, prof
}

func TestSingleDeviceIsFree(t *testing.T) {
	e, _ := newEngine(t, 1)
	end, err := e.ReduceToRoot(profiler.StageWU, 100*units.MB, time.Millisecond)
	if err != nil || end != time.Millisecond {
		t.Errorf("1-GPU reduce = %v, %v; want ready passthrough", end, err)
	}
	end, err = e.BroadcastFromRoot(profiler.StageWU, 100*units.MB, time.Millisecond)
	if err != nil || end != time.Millisecond {
		t.Errorf("1-GPU broadcast = %v, %v; want ready passthrough", end, err)
	}
}

func TestReduceUsesHalvingTree(t *testing.T) {
	e, prof := newEngine(t, 4)
	end, err := e.ReduceToRoot(profiler.StageWU, 50*units.MB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("reduce took no time")
	}
	// 4 GPUs: 3 transfers (1->0, 3->2, 2->0) and 3 adds.
	if got := prof.API(cuda.APIMemcpyAsync).Calls; got != 3 {
		t.Errorf("transfers = %d, want 3", got)
	}
	if got := prof.Kernel("reduce_add").Calls; got != 3 {
		t.Errorf("adds = %d, want 3", got)
	}
}

func TestReduceScalesWithGPUCount(t *testing.T) {
	sizes := 100 * units.MB
	var prev time.Duration
	for _, n := range []int{2, 4, 8} {
		e, _ := newEngine(t, n)
		end, err := e.ReduceToRoot(profiler.StageWU, sizes, 0)
		if err != nil {
			t.Fatal(err)
		}
		if end <= prev {
			t.Errorf("%d-GPU reduce (%v) should exceed %d-GPU (%v): more tree levels", n, end, n/2, prev)
		}
		prev = end
	}
}

func TestBroadcastWaitsForSlowestDestination(t *testing.T) {
	e, _ := newEngine(t, 8)
	arr, err := e.BroadcastArrivals(profiler.StageWU, 100*units.MB, 0)
	if err != nil {
		t.Fatal(err)
	}
	end, err := e.BroadcastFromRoot(profiler.StageWU, 100*units.MB, 0)
	if err != nil {
		t.Fatal(err)
	}
	var slowest time.Duration
	for _, a := range arr {
		if a > slowest {
			slowest = a
		}
	}
	// The two runs book different (contended) transfers, so compare
	// qualitatively: both must be positive and the barrier must be at
	// least the max arrival of its own run.
	if end <= 0 || slowest <= 0 {
		t.Fatal("broadcast took no time")
	}
}

// The paper: GPU3 (single link from GPU0) receives weights later than GPU1
// and GPU2 (dual links), which idles GPU1/GPU2.
func TestAsymmetricLinksDelaySomeGPUs(t *testing.T) {
	e, _ := newEngine(t, 4)
	arr, err := e.BroadcastArrivals(profiler.StageWU, 100*units.MB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if arr[3] <= arr[1] {
		t.Errorf("GPU3 (25GB/s link, %v) should receive after GPU1 (50GB/s, %v)", arr[3], arr[1])
	}
	if arr[3] <= arr[2] {
		t.Errorf("GPU3 (%v) should receive after GPU2 (%v)", arr[3], arr[2])
	}
}

// With 8 GPUs some destinations need 2-hop staged transfers, making the
// 8-GPU broadcast disproportionately slower (paper §V-A).
func TestEightGPUBroadcastPaysStaging(t *testing.T) {
	e4, _ := newEngine(t, 4)
	end4, err := e4.BroadcastFromRoot(profiler.StageWU, 100*units.MB, 0)
	if err != nil {
		t.Fatal(err)
	}
	e8, _ := newEngine(t, 8)
	end8, err := e8.BroadcastFromRoot(profiler.StageWU, 100*units.MB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(end8) < 1.3*float64(end4) {
		t.Errorf("8-GPU broadcast (%v) should be much slower than 4-GPU (%v)", end8, end4)
	}
}

func TestReduceRespectsReadyTime(t *testing.T) {
	e, _ := newEngine(t, 2)
	ready := 10 * time.Millisecond
	end, err := e.ReduceToRoot(profiler.StageWU, units.MB, ready)
	if err != nil {
		t.Fatal(err)
	}
	if end <= ready {
		t.Errorf("reduce finished %v before data ready %v", end, ready)
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	rt, err := cuda.NewRuntime(fab, gpu.V100(), []topology.NodeID{0}, cuda.DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(rt, nil); err == nil {
		t.Error("empty devices should error")
	}
	if _, err := New(rt, []topology.NodeID{0, 3}); err == nil {
		t.Error("unmanaged device should error")
	}
	e, err := New(rt, []topology.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if e.Root() != 0 || e.Size() != 1 {
		t.Error("root/size wrong")
	}
}
