// Package p2p implements the peer-to-peer direct-transfer communication
// method the paper compares against NCCL: the MXNet "device" kvstore
// pattern, where gradients are aggregated onto GPU 0 through a binary
// reduction tree of cudaMemcpy peer transfers, and updated weights are
// broadcast from GPU 0 with multi-stage NVLink transfers (staged through an
// intermediate GPU when no direct link exists).
package p2p

import (
	"fmt"
	"time"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/topology"
	"repro/internal/units"
)

// Engine performs tree reductions and broadcasts over a fixed device set.
// devs[0] is the aggregation root (GPU 0 in the paper's MXNet).
type Engine struct {
	rt   *cuda.Runtime
	devs []topology.NodeID
}

// New creates an engine over the devices.
func New(rt *cuda.Runtime, devs []topology.NodeID) (*Engine, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("p2p: need at least one device")
	}
	for _, d := range devs {
		if rt.Device(d) == nil {
			return nil, fmt.Errorf("p2p: device %d not managed by runtime", d)
		}
	}
	return &Engine{rt: rt, devs: append([]topology.NodeID(nil), devs...)}, nil
}

// Root returns the aggregation root.
func (e *Engine) Root() topology.NodeID { return e.devs[0] }

// Size returns the number of devices.
func (e *Engine) Size() int { return len(e.devs) }

// addKernel is the elementwise gradient-accumulate kernel run on the
// destination of each reduction transfer.
func addKernel(size units.Bytes) gpu.KernelCost {
	elems := int64(size / units.Float32Size)
	return gpu.KernelCost{
		Name:        "reduce_add",
		FLOPs:       units.FLOPs(elems),
		MemBytes:    3 * size, // read two operands, write one
		Parallelism: elems,
		Class:       gpu.ClassMemory,
	}
}

// ReduceToRoot aggregates size bytes from every device onto the root via a
// binary halving tree (the paper's example: GPU1->GPU0 and GPU3->GPU2 in
// parallel, then GPU2->GPU0). ready is when each device's gradient is
// available; the returned time is when the root holds the full sum.
func (e *Engine) ReduceToRoot(stage profiler.Stage, size units.Bytes, ready time.Duration) (time.Duration, error) {
	n := len(e.devs)
	if n == 1 {
		return ready, nil
	}
	avail := make([]time.Duration, n)
	for i := range avail {
		avail[i] = ready
	}
	for gap := 1; gap < n; gap *= 2 {
		for i := 0; i+gap < n; i += 2 * gap {
			dst, src := e.devs[i], e.devs[i+gap]
			srcReady := avail[i+gap]
			_, arrive, err := e.rt.MemcpyPeer(dst, src, size, stage, srcReady, srcReady)
			if err != nil {
				return 0, err
			}
			// The destination adds the arrived partial into its own once
			// both are present.
			dataReady := arrive
			if avail[i] > dataReady {
				dataReady = avail[i]
			}
			// The accumulate kernel runs on the destination's compute
			// stream, queueing behind whatever backpropagation work is
			// already enqueued there — MXNet's CommDevice behaviour, and
			// the reason P2P aggregation steals compute from GPU 0.
			dev := e.rt.Device(dst)
			ks, end := dev.BookKernel(dataReady, addKernel(size))
			if p := e.rt.Profile(); p != nil {
				p.Record(profiler.Interval{
					Kind: profiler.KindKernel, Name: "reduce_add", Stage: stage,
					Track: fmt.Sprintf("GPU%d/compute", dst), Start: ks, End: end,
				})
			}
			avail[i] = end
		}
	}
	return avail[0], nil
}

// BroadcastFromRoot distributes size bytes from the root to every device:
// one routed peer copy per destination, issued in parallel (multi-stage
// store-and-forward where the topology requires it). It returns when the
// LAST device has the data — the synchronous-SGD barrier the paper blames
// for idle GPUs on asymmetric links.
func (e *Engine) BroadcastFromRoot(stage profiler.Stage, size units.Bytes, ready time.Duration) (time.Duration, error) {
	n := len(e.devs)
	if n == 1 {
		return ready, nil
	}
	end := ready
	for _, d := range e.devs[1:] {
		_, arrive, err := e.rt.MemcpyPeer(d, e.devs[0], size, stage, ready, ready)
		if err != nil {
			return 0, err
		}
		if arrive > end {
			end = arrive
		}
	}
	return end, nil
}

// BroadcastArrivals is BroadcastFromRoot but reports each destination's
// arrival time (used to analyze per-GPU idle time).
func (e *Engine) BroadcastArrivals(stage profiler.Stage, size units.Bytes, ready time.Duration) (map[topology.NodeID]time.Duration, error) {
	arrivals := make(map[topology.NodeID]time.Duration, len(e.devs))
	arrivals[e.devs[0]] = ready
	for _, d := range e.devs[1:] {
		_, arrive, err := e.rt.MemcpyPeer(d, e.devs[0], size, stage, ready, ready)
		if err != nil {
			return nil, err
		}
		arrivals[d] = arrive
	}
	return arrivals, nil
}
