package interconnect

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

func dgx1Fabric(t *testing.T) (*sim.Engine, *Fabric) {
	t.Helper()
	eng := sim.NewEngine()
	top := topology.DGX1()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	return eng, New(eng, top)
}

func route(t *testing.T, f *Fabric, a, b topology.NodeID) topology.Path {
	t.Helper()
	p, err := f.Topology().Route(a, b, topology.RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleHopTransferTime(t *testing.T) {
	eng, f := dgx1Fabric(t)
	p := route(t, f, 0, 1) // dual NVLink, 50 GB/s
	var start, end time.Duration
	f.Transfer(p, 50*units.MB, func(s, e time.Duration) { start, end = s, e })
	eng.Run()
	if start != 0 {
		t.Errorf("start = %v, want 0", start)
	}
	want := topology.NVLinkLatency + units.TransferTime(50*units.MB, 50*units.GBPerSec)
	if end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
}

func TestTwoHopStoreAndForwardDoublesTime(t *testing.T) {
	eng, f := dgx1Fabric(t)
	p := route(t, f, 0, 7) // 0 -> 1 -> 7, both dual links
	if len(p.Hops) != 2 {
		t.Fatalf("expected 2 hops, got %v", p)
	}
	var end time.Duration
	f.Transfer(p, 100*units.MB, func(_, e time.Duration) { end = e })
	eng.Run()
	oneHop := topology.NVLinkLatency + units.TransferTime(100*units.MB, 50*units.GBPerSec)
	if end != 2*oneHop {
		t.Errorf("2-hop end = %v, want %v (store-and-forward)", end, 2*oneHop)
	}
}

func TestContentionSerializesSameDirection(t *testing.T) {
	eng, f := dgx1Fabric(t)
	p := route(t, f, 0, 3) // single NVLink, 25 GB/s
	var ends []time.Duration
	for i := 0; i < 2; i++ {
		f.Transfer(p, 25*units.MB, func(_, e time.Duration) { ends = append(ends, e) })
	}
	eng.Run()
	one := topology.NVLinkLatency + units.TransferTime(25*units.MB, 25*units.GBPerSec)
	if len(ends) != 2 {
		t.Fatal("missing completions")
	}
	if ends[0] != one || ends[1] != 2*one {
		t.Errorf("ends = %v, want [%v %v]", ends, one, 2*one)
	}
}

func TestOppositeDirectionsDoNotContend(t *testing.T) {
	eng, f := dgx1Fabric(t)
	fwd := route(t, f, 0, 3)
	rev := route(t, f, 3, 0)
	var endFwd, endRev time.Duration
	f.Transfer(fwd, 25*units.MB, func(_, e time.Duration) { endFwd = e })
	f.Transfer(rev, 25*units.MB, func(_, e time.Duration) { endRev = e })
	eng.Run()
	one := topology.NVLinkLatency + units.TransferTime(25*units.MB, 25*units.GBPerSec)
	if endFwd != one || endRev != one {
		t.Errorf("full-duplex violated: fwd=%v rev=%v want both %v", endFwd, endRev, one)
	}
}

func TestTransferAfterDelaysEligibility(t *testing.T) {
	eng, f := dgx1Fabric(t)
	p := route(t, f, 0, 1)
	var start time.Duration
	f.TransferAfter(10*time.Millisecond, p, units.MB, func(s, _ time.Duration) { start = s })
	eng.Run()
	if start != 10*time.Millisecond {
		t.Errorf("start = %v, want 10ms", start)
	}
}

func TestZeroSizeTransferPaysLatency(t *testing.T) {
	eng, f := dgx1Fabric(t)
	p := route(t, f, 0, 1)
	var end time.Duration
	f.Transfer(p, 0, func(_, e time.Duration) { end = e })
	eng.Run()
	if end != topology.NVLinkLatency {
		t.Errorf("zero-size end = %v, want link latency %v", end, topology.NVLinkLatency)
	}
}

func TestPCIePathCrossSocket(t *testing.T) {
	eng := sim.NewEngine()
	top := topology.DGX1()
	f := New(eng, top)
	p, err := top.Route(0, 4, topology.RoutePCIeFallback)
	if err != nil {
		t.Fatal(err)
	}
	var end time.Duration
	f.Transfer(p, 160*units.MB, func(_, e time.Duration) { end = e })
	eng.Run()
	want := OneWayTime(p, 160*units.MB)
	if end != want {
		t.Errorf("PCIe path end = %v, want %v", end, want)
	}
	// The PCIe route must be slower than any NVLink route of the same size.
	nvPath, err := top.Route(0, 6, topology.RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	if nv := OneWayTime(nvPath, 160*units.MB); nv >= want {
		t.Errorf("NVLink route (%v) should beat PCIe route (%v)", nv, want)
	}
}

func TestOneWayTimeMatchesSimulatedUnloaded(t *testing.T) {
	eng, f := dgx1Fabric(t)
	p := route(t, f, 3, 4) // no direct link: staged via an intermediate
	if len(p.Hops) != 2 {
		t.Fatalf("3->4 should be staged, got %v", p)
	}
	var end time.Duration
	f.Transfer(p, 64*units.MB, func(_, e time.Duration) { end = e })
	eng.Run()
	if want := OneWayTime(p, 64*units.MB); end != want {
		t.Errorf("simulated %v != analytic %v", end, want)
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng, f := dgx1Fabric(t)
	p := route(t, f, 0, 1)
	f.Transfer(p, units.MB, nil)
	f.Transfer(p, units.MB, nil)
	eng.Run()
	st := f.Stats()
	if len(st) != 1 {
		t.Fatalf("stats entries = %d, want 1", len(st))
	}
	if st[0].Requests != 2 {
		t.Errorf("requests = %d, want 2", st[0].Requests)
	}
	if st[0].From != 0 || st[0].To != 1 {
		t.Errorf("direction = %d->%d, want 0->1", st[0].From, st[0].To)
	}
	if f.BusyTime(topology.NVLink) != st[0].Busy {
		t.Error("BusyTime(NVLink) should equal the only direction's busy time")
	}
	if f.BusyTime(topology.PCIe) != 0 {
		t.Error("PCIe saw no traffic")
	}
}

func TestEmptyPathPanics(t *testing.T) {
	eng, f := dgx1Fabric(t)
	defer func() {
		if recover() == nil {
			t.Error("empty path should panic")
		}
	}()
	f.Transfer(topology.Path{}, units.MB, nil)
	eng.Run()
}
