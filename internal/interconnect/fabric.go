// Package interconnect simulates data movement over a topology: each link
// direction is a FIFO-served resource, transfers experience queueing
// (contention) and per-hop latency, and multi-hop paths are store-and-
// forward — matching the DGX-1, whose GPU-resident NVLink routers cannot
// forward packets, so staged transfers are full copies through the
// intermediate node's memory.
package interconnect

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// Fabric binds a topology to a simulation engine and tracks the occupancy
// of every link direction.
type Fabric struct {
	eng  *sim.Engine
	top  *topology.Topology
	dirs map[dirKey]*sim.Resource
}

type dirKey struct {
	link *topology.Link
	from topology.NodeID
}

// New creates a fabric over the topology.
func New(eng *sim.Engine, top *topology.Topology) *Fabric {
	return &Fabric{eng: eng, top: top, dirs: make(map[dirKey]*sim.Resource)}
}

// Topology returns the underlying network.
func (f *Fabric) Topology() *topology.Topology { return f.top }

// Engine returns the simulation engine the fabric schedules on.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// direction returns (creating on demand) the resource for one link
// direction. Links are full duplex: the two directions never contend with
// each other.
func (f *Fabric) direction(l *topology.Link, from topology.NodeID) *sim.Resource {
	k := dirKey{link: l, from: from}
	r, ok := f.dirs[k]
	if !ok {
		r = sim.NewResource(f.eng, fmt.Sprintf("%d->%d(%s)", from, l.Other(from), l.Type))
		f.dirs[k] = r
	}
	return r
}

// Transfer moves size bytes along the path, invoking done with the
// transfer's start and end times. Multi-hop paths are store-and-forward:
// each hop begins only after the previous hop has fully landed. Zero-size
// transfers still pay per-hop latency (they model control messages).
func (f *Fabric) Transfer(path topology.Path, size units.Bytes, done func(start, end time.Duration)) {
	if len(path.Hops) == 0 {
		panic("interconnect: transfer over empty path")
	}
	f.runHop(path, 0, size, f.eng.Now(), time.Duration(-1), done)
}

// TransferAfter is Transfer, but the first hop only becomes eligible at
// absolute time ready (e.g. when the producing kernel finishes).
func (f *Fabric) TransferAfter(ready time.Duration, path topology.Path, size units.Bytes, done func(start, end time.Duration)) {
	if len(path.Hops) == 0 {
		panic("interconnect: transfer over empty path")
	}
	f.runHop(path, 0, size, ready, time.Duration(-1), done)
}

func (f *Fabric) runHop(path topology.Path, i int, size units.Bytes, ready time.Duration, firstStart time.Duration, done func(start, end time.Duration)) {
	hop := path.Hops[i]
	res := f.direction(hop.Link, hop.From)
	dur := hop.Link.Latency + units.TransferTime(size, hop.Link.BW)
	res.ServeAfter(ready, dur, func(start, end time.Duration) {
		fs := firstStart
		if fs < 0 {
			fs = start
		}
		if i+1 < len(path.Hops) {
			f.runHop(path, i+1, size, end, fs, done)
			return
		}
		if done != nil {
			done(fs, end)
		}
	})
}

// Book reserves the path for a transfer of size bytes becoming eligible at
// ready, and returns the transfer's start and end times synchronously (see
// sim.Resource.Book). Multi-hop bookings are store-and-forward: hop i+1 is
// booked with readiness equal to hop i's end.
func (f *Fabric) Book(path topology.Path, size units.Bytes, ready time.Duration) (start, end time.Duration) {
	if len(path.Hops) == 0 {
		panic("interconnect: booking over empty path")
	}
	if path.CutThrough {
		// Switch-relayed paths stream through all hops concurrently at
		// the bottleneck rate; each hop is occupied for the same window.
		var bw units.Bandwidth
		var lat time.Duration
		for i, hop := range path.Hops {
			if i == 0 || hop.Link.BW < bw {
				bw = hop.Link.BW
			}
			lat += hop.Link.Latency
		}
		dur := lat + units.TransferTime(size, bw)
		for i, hop := range path.Hops {
			s, e := f.direction(hop.Link, hop.From).Book(ready, dur)
			if i == 0 {
				start = s
			}
			if e > end {
				end = e
			}
		}
		return start, end
	}
	for i, hop := range path.Hops {
		res := f.direction(hop.Link, hop.From)
		dur := hop.Link.Latency + units.TransferTime(size, hop.Link.BW)
		s, e := res.Book(ready, dur)
		if i == 0 {
			start = s
		}
		ready = e
		end = e
	}
	return start, end
}

// Occupy books one link direction for an explicit duration starting no
// earlier than ready, returning the occupation window. Collective models
// whose wire time is computed analytically use this to make the links they
// stream over visible to contention accounting.
func (f *Fabric) Occupy(l *topology.Link, from topology.NodeID, ready, dur time.Duration) (start, end time.Duration) {
	return f.direction(l, from).Book(ready, dur)
}

// OneWayTime returns the unloaded (contention-free) duration of moving size
// bytes along the path, store-and-forward. Useful for analytic baselines
// and tests.
func OneWayTime(path topology.Path, size units.Bytes) time.Duration {
	var d time.Duration
	for _, h := range path.Hops {
		d += h.Link.Latency + units.TransferTime(size, h.Link.BW)
	}
	return d
}

// LinkStats describes the accumulated occupancy of one link direction.
type LinkStats struct {
	From, To topology.NodeID
	Type     topology.LinkType
	Busy     time.Duration
	Requests int64
}

// Stats returns occupancy for every link direction that carried traffic,
// in deterministic (from, to) order.
func (f *Fabric) Stats() []LinkStats {
	var out []LinkStats
	for k, r := range f.dirs {
		if r.Requests() == 0 {
			continue
		}
		out = append(out, LinkStats{
			From:     k.from,
			To:       k.link.Other(k.from),
			Type:     k.link.Type,
			Busy:     r.BusyTime(),
			Requests: r.Requests(),
		})
	}
	sortStats(out)
	return out
}

func sortStats(s []LinkStats) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			a, b := s[j-1], s[j]
			if a.From < b.From || (a.From == b.From && a.To <= b.To) {
				break
			}
			s[j-1], s[j] = b, a
		}
	}
}

// TotalBytesMoved is not tracked per byte; Busy time per direction is the
// primitive. BusyTime returns the summed occupancy of all directions of
// the given link type (a coarse utilization signal for reports).
func (f *Fabric) BusyTime(typ topology.LinkType) time.Duration {
	var d time.Duration
	for k, r := range f.dirs {
		if k.link.Type == typ {
			d += r.BusyTime()
		}
	}
	return d
}
