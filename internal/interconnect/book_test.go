package interconnect

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

func TestBookMatchesTransfer(t *testing.T) {
	// The synchronous Book must produce the same completion time as the
	// event-driven Transfer for the same request sequence.
	top := topology.DGX1()
	path, err := top.Route(0, 7, topology.RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []units.Bytes{10 * units.MB, 25 * units.MB, 5 * units.MB}

	e1 := sim.NewEngine()
	f1 := New(e1, top)
	var transferred []time.Duration
	for _, s := range sizes {
		f1.Transfer(path, s, func(_, end time.Duration) { transferred = append(transferred, end) })
	}
	e1.Run()

	e2 := sim.NewEngine()
	f2 := New(e2, top)
	var booked []time.Duration
	for _, s := range sizes {
		_, end := f2.Book(path, s, 0)
		booked = append(booked, end)
	}
	if len(transferred) != len(booked) {
		t.Fatal("length mismatch")
	}
	for i := range booked {
		if booked[i] != transferred[i] {
			t.Errorf("request %d: booked %v != transferred %v", i, booked[i], transferred[i])
		}
	}
}

// Property: booking end times are monotone in request order per path, and
// total busy time on the first-hop direction equals the sum of its
// transfer durations (conservation).
func TestBookConservation(t *testing.T) {
	top := topology.DGX1()
	path, err := top.Route(0, 3, topology.RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	f := func(sizesKB []uint16) bool {
		eng := sim.NewEngine()
		fab := New(eng, top)
		var prev time.Duration
		var wantBusy time.Duration
		for _, kb := range sizesKB {
			size := units.Bytes(kb) * units.KB
			_, end := fab.Book(path, size, 0)
			if end < prev {
				return false
			}
			prev = end
			wantBusy += path.Hops[0].Link.Latency + units.TransferTime(size, path.Hops[0].Link.BW)
		}
		if len(sizesKB) == 0 {
			return true
		}
		return fab.BusyTime(topology.NVLink) == wantBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOccupy(t *testing.T) {
	eng := sim.NewEngine()
	top := topology.DGX1()
	fab := New(eng, top)
	l := top.DirectLink(0, 1, topology.NVLink)
	s1, e1 := fab.Occupy(l, 0, 0, 5*time.Millisecond)
	if s1 != 0 || e1 != 5*time.Millisecond {
		t.Errorf("first occupy [%v,%v]", s1, e1)
	}
	// Subsequent traffic on the same direction queues behind it.
	path, _ := top.Route(0, 1, topology.RouteStagedNVLink)
	start, _ := fab.Book(path, units.MB, 0)
	if start != e1 {
		t.Errorf("transfer start = %v, want %v (queued behind occupation)", start, e1)
	}
	// The reverse direction is unaffected.
	rev, _ := top.Route(1, 0, topology.RouteStagedNVLink)
	rstart, _ := fab.Book(rev, units.MB, 0)
	if rstart != 0 {
		t.Errorf("reverse start = %v, want 0", rstart)
	}
}

func TestCutThroughBooking(t *testing.T) {
	top := topology.DGX2()
	eng := sim.NewEngine()
	fab := New(eng, top)
	p, err := top.Route(0, 9, topology.RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CutThrough {
		t.Fatal("DGX-2 path should be cut-through")
	}
	size := 150 * units.MB
	start, end := fab.Book(p, size, 0)
	// Cut-through: one bottleneck-rate pass plus both hops' latency, NOT
	// store-and-forward's two passes.
	want := 2*topology.NVLinkLatency + units.TransferTime(size, 150*units.GBPerSec)
	if start != 0 || end != want {
		t.Errorf("cut-through window [%v,%v], want [0,%v]", start, end, want)
	}
	if snf := OneWayTime(p, size); end >= snf {
		t.Errorf("cut-through (%v) should beat store-and-forward (%v)", end, snf)
	}
	// Both hops are occupied (visible to contention): a second transfer
	// sharing the first hop queues.
	p2, err := top.Route(0, 5, topology.RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := fab.Book(p2, size, 0)
	if s2 != end {
		t.Errorf("second transfer start = %v, want %v (queued on shared first hop)", s2, end)
	}
}

func TestStatsSortedAcrossDirections(t *testing.T) {
	top := topology.DGX1()
	eng := sim.NewEngine()
	fab := New(eng, top)
	for _, pairs := range [][2]topology.NodeID{{3, 0}, {0, 1}, {1, 7}, {0, 2}} {
		p, err := top.Route(pairs[0], pairs[1], topology.RouteStagedNVLink)
		if err != nil {
			t.Fatal(err)
		}
		fab.Book(p, units.MB, 0)
	}
	st := fab.Stats()
	if len(st) < 4 {
		t.Fatalf("stats = %d entries", len(st))
	}
	for i := 1; i < len(st); i++ {
		a, b := st[i-1], st[i]
		if a.From > b.From || (a.From == b.From && a.To > b.To) {
			t.Fatalf("stats unsorted at %d: %+v then %+v", i, a, b)
		}
	}
	if fab.Engine() != eng {
		t.Error("engine accessor wrong")
	}
}
