package stats

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean != 2*time.Second {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Std != time.Second {
		t.Errorf("std = %v", s.Std)
	}
	if s.N != 2 {
		t.Errorf("n = %d", s.N)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Mean != 0 || s.Std != 0 || s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeConstant(t *testing.T) {
	s := Summarize([]time.Duration{5, 5, 5, 5})
	if s.Std != 0 {
		t.Errorf("constant series std = %v", s.Std)
	}
}

func TestRepetitionsAnchoredAndDeterministic(t *testing.T) {
	j1 := sim.NewJitter(3, 0.05)
	j2 := sim.NewJitter(3, 0.05)
	a := Repetitions(time.Second, j1, 5)
	b := Repetitions(time.Second, j2, 5)
	if len(a) != 5 {
		t.Fatalf("len = %d", len(a))
	}
	if a[0] != time.Second {
		t.Error("first repetition should be the exact value")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("same seed must reproduce repetitions")
		}
	}
	if Repetitions(time.Second, j1, 0) != nil {
		t.Error("n<=0 should return nil")
	}
}

func TestSpeedupAndPercent(t *testing.T) {
	if got := Speedup(4*time.Second, 2*time.Second); got != 2 {
		t.Errorf("speedup = %v", got)
	}
	if got := Speedup(time.Second, 0); got != 0 {
		t.Errorf("zero divisor speedup = %v", got)
	}
	if got := Percent(time.Second, 4*time.Second); got != 25 {
		t.Errorf("percent = %v", got)
	}
	if got := Percent(time.Second, 0); got != 0 {
		t.Errorf("zero whole percent = %v", got)
	}
}

func TestSampleString(t *testing.T) {
	s := Sample{Mean: 1234 * time.Millisecond, Std: 12 * time.Millisecond, N: 5}
	if got := s.String(); got != "1.234s ±12ms" {
		t.Errorf("string = %q", got)
	}
}
