// Package stats provides the measurement arithmetic the paper's figures
// use: repeated-run summaries (mean ± standard deviation over 5
// repetitions) and speedup ratios.
package stats

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// Sample summarizes repeated measurements.
type Sample struct {
	Mean time.Duration
	Std  time.Duration
	N    int
}

// String renders "1.234s ±0.012s".
func (s Sample) String() string {
	return fmt.Sprintf("%v ±%v", s.Mean.Round(time.Millisecond), s.Std.Round(time.Millisecond))
}

// Summarize computes mean and (population) standard deviation.
func Summarize(runs []time.Duration) Sample {
	n := len(runs)
	if n == 0 {
		return Sample{}
	}
	var sum float64
	for _, r := range runs {
		sum += float64(r)
	}
	mean := sum / float64(n)
	var ss float64
	for _, r := range runs {
		d := float64(r) - mean
		ss += d * d
	}
	return Sample{
		Mean: time.Duration(mean),
		Std:  time.Duration(math.Sqrt(ss / float64(n))),
		N:    n,
	}
}

// Repetitions expands one deterministic measurement into n jittered
// repetitions, reproducing run-to-run variance from an explicit seed. The
// first repetition is the exact value so the mean stays anchored.
func Repetitions(exact time.Duration, j *sim.Jitter, n int) []time.Duration {
	if n <= 0 {
		return nil
	}
	out := make([]time.Duration, n)
	out[0] = exact
	for i := 1; i < n; i++ {
		out[i] = j.Scale(exact)
	}
	return out
}

// Quantile returns the q-th (0..1) value of a sorted sample using the
// nearest-rank definition: the ⌈q·n⌉-th smallest. Nearest-rank keeps
// high quantiles honest over small samples (p99 of 2 samples is the
// larger one, not the minimum) — the same definition the service's
// /metrics percentiles use.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// Speedup returns base/x (how many times faster x is than base).
func Speedup(base, x time.Duration) float64 {
	if x <= 0 {
		return 0
	}
	return float64(base) / float64(x)
}

// Percent returns 100*part/whole.
func Percent(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
