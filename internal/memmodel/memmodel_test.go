package memmodel

import (
	"testing"

	"repro/internal/models"
	"repro/internal/units"
)

func net(t *testing.T, name string) models.Description {
	t.Helper()
	d, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMemoryGrowsWithBatch(t *testing.T) {
	for _, d := range models.All() {
		prev := units.Bytes(0)
		for _, b := range []int{16, 32, 64} {
			e := Compute(d.Net, b, true)
			if e.Worker() <= prev {
				t.Errorf("%s b=%d worker %v not above previous %v", d.Name, b, e.Worker(), prev)
			}
			prev = e.Worker()
		}
	}
}

// "While the increase in the pre-training memory usage is insignificant,
// the memory usage increases significantly during training."
func TestPreTrainingBatchIndependent(t *testing.T) {
	d := net(t, "inception-v3")
	e16 := Compute(d.Net, 16, true)
	e64 := Compute(d.Net, 64, true)
	if e16.PreTraining != e64.PreTraining {
		t.Error("pre-training usage should not depend on batch size")
	}
	if e64.FeatureMaps <= 3*e16.FeatureMaps {
		t.Error("feature maps should grow ~linearly in batch")
	}
}

// "For all the workloads, GPU0 uses more memory than the other GPUs" and
// "the percentage of additional memory usage by GPU0 decreases with
// increased batch size."
func TestRootPremiumShrinksWithBatch(t *testing.T) {
	for _, d := range models.All() {
		p16 := Compute(d.Net, 16, true).RootPremiumPercent()
		p64 := Compute(d.Net, 64, true).RootPremiumPercent()
		if p16 <= 0 {
			t.Errorf("%s: root premium should be positive", d.Name)
		}
		if p64 >= p16 {
			t.Errorf("%s: premium should shrink with batch (16: %.2f%%, 64: %.2f%%)", d.Name, p16, p64)
		}
	}
}

func TestSingleGPUHasNoRootExtra(t *testing.T) {
	d := net(t, "alexnet")
	e := Compute(d.Net, 32, false)
	if e.RootExtra != 0 {
		t.Error("single-GPU training has no aggregation extra")
	}
	if e.Root() != e.Worker() {
		t.Error("root == worker for single GPU")
	}
}

// The paper's trainability boundaries on 16 GB V100s: Inception-v3 and
// ResNet train at batch 64 but not 128; GoogLeNet trains at 128; LeNet and
// AlexNet train at every measured batch size.
func TestPaperOOMBoundaries(t *testing.T) {
	cap16 := 16 * units.GB
	cases := []struct {
		model string
		batch int
		fits  bool
	}{
		{"inception-v3", 64, true},
		{"inception-v3", 128, false},
		{"resnet", 64, true},
		{"resnet", 128, false},
		{"googlenet", 128, true},
		{"lenet", 256, true},
		{"alexnet", 128, true},
	}
	for _, c := range cases {
		d := net(t, c.model)
		if got := FitsDevice(d.Net, c.batch, true, cap16); got != c.fits {
			e := Compute(d.Net, c.batch, true)
			t.Errorf("%s b=%d fits=%v, want %v (root=%v)", c.model, c.batch, got, c.fits, e.Root())
		}
	}
}

// Paper anchors: AlexNet b64 GPU0 ~2.4 GB, Inception-v3 b64 GPU0 ~11 GB.
// The model is analytic, so allow generous bands.
func TestPaperAbsoluteAnchors(t *testing.T) {
	alex := net(t, "alexnet")
	if r := Compute(alex.Net, 64, true).Root(); r < 2*units.GB || r > 3500*units.MB {
		t.Errorf("AlexNet b64 root = %v, want ~2.4GB (2-3.4GB band)", r)
	}
	inc := net(t, "inception-v3")
	if r := Compute(inc.Net, 64, true).Root(); r < 9*units.GB || r > 15*units.GB {
		t.Errorf("Inception-v3 b64 root = %v, want ~11GB (9-15GB band)", r)
	}
}

// "the memory required for intermediate outputs far exceeds the memory
// required for the network model" for the large workloads.
func TestFeatureMapsDominateForLargeNets(t *testing.T) {
	for _, name := range []string{"resnet", "googlenet", "inception-v3"} {
		d := net(t, name)
		e := Compute(d.Net, 64, true)
		if e.FeatureMaps <= 3*e.Weights {
			t.Errorf("%s: feature maps (%v) should far exceed model (%v)", name, e.FeatureMaps, e.Weights)
		}
	}
	// And the reverse holds for AlexNet (huge FC weights, modest maps).
	alex := net(t, "alexnet")
	e := Compute(alex.Net, 16, true)
	if e.FeatureMaps >= e.Weights {
		t.Errorf("AlexNet b16: weights (%v) should exceed feature maps (%v)", e.Weights, e.FeatureMaps)
	}
}

func TestMaxBatch(t *testing.T) {
	cands := []int{16, 32, 64, 128, 256}
	inc := net(t, "inception-v3")
	if got := MaxBatch(inc.Net, true, 16*units.GB, cands); got != 64 {
		t.Errorf("Inception-v3 max batch = %d, want 64", got)
	}
	lenet := net(t, "lenet")
	if got := MaxBatch(lenet.Net, true, 16*units.GB, cands); got != 256 {
		t.Errorf("LeNet max batch = %d, want 256", got)
	}
	if got := MaxBatch(inc.Net, true, units.GB, cands); got != 0 {
		t.Errorf("1GB device should fit nothing, got %d", got)
	}
}

func TestEstimateComponentsSumToWorker(t *testing.T) {
	d := net(t, "googlenet")
	e := Compute(d.Net, 32, true)
	sum := e.Weights + e.Gradients + e.Optimizer + e.FeatureMaps +
		e.Workspace + e.InputQueue + e.Context + e.PoolSlack
	if sum != e.Worker() {
		t.Error("component sum != Worker()")
	}
}
