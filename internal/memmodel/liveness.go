package memmodel

import (
	"repro/internal/dnn"
	"repro/internal/units"
)

// Liveness-based activation analysis: instead of the calibrated
// ActivationRetention scalar, walk the actual training schedule — forward
// allocating buffers (with in-place aliasing for activations, batchnorm
// and dropout), backward freeing a buffer once its own backward step and
// every consumer's backward step have run, with a gradient buffer alive
// from a node's backward until its producers consume it. The resulting
// peak is the principled counterpart the calibrated estimator is checked
// against (TestRetentionWithinLivenessBand).

// inPlace reports whether the op can alias its input buffer.
func inPlace(k dnn.OpKind) bool {
	switch k {
	case dnn.OpActivation, dnn.OpBatchNorm, dnn.OpDropout, dnn.OpFlatten, dnn.OpSoftmax:
		return true
	}
	return false
}

// LivenessPeak returns the peak activation + activation-gradient bytes of
// training one mini-batch, from a forward/backward schedule with in-place
// aliasing and eager freeing.
func LivenessPeak(net *dnn.Network, batch int) units.Bytes {
	nodes := net.Nodes()
	n := len(nodes)
	index := make(map[*dnn.Node]int, n)
	for i, nd := range nodes {
		index[nd] = i
	}

	// Buffer assignment: in-place ops share their input's buffer.
	buffer := make([]int, n) // node -> buffer id
	bufBytes := map[int]units.Bytes{}
	next := 0
	for i, nd := range nodes {
		if inPlace(nd.Op.Kind()) && len(nd.Inputs) == 1 {
			buffer[i] = buffer[index[nd.Inputs[0]]]
			continue
		}
		buffer[i] = next
		bufBytes[next] = units.BytesOf(nd.Out.Elems()*int64(batch), units.Float32Size)
		next++
	}

	// A buffer's last use: the latest backward step among the nodes that
	// wrote it or read it. Backward runs in reverse topological order, so
	// backward step of node i happens at time (2n - 1 - i) with forward
	// step i at time i.
	lastUse := map[int]int{}
	use := func(node int, when int) {
		b := buffer[node]
		if when > lastUse[b] {
			lastUse[b] = when
		}
	}
	bwdTime := func(i int) int { return 2*n - 1 - i }
	firstWrite := map[int]int{}
	for i, nd := range nodes {
		b := buffer[i]
		if _, ok := firstWrite[b]; !ok {
			firstWrite[b] = i
		}
		// The node's own backward touches its output and inputs.
		use(i, bwdTime(i))
		for _, in := range nd.Inputs {
			use(index[in], bwdTime(i))
		}
	}

	// Gradient buffers: grad of node i's buffer is alive from the first
	// backward step of its consumers (or its own, for the head) until i's
	// backward completes. Approximating: alive during [bwdTime(maxConsumer),
	// bwdTime(i)].
	consumersMax := make([]int, n)
	for i := range consumersMax {
		consumersMax[i] = i // own backward at least
	}
	for i, nd := range nodes {
		for _, in := range nd.Inputs {
			j := index[in]
			if i > consumersMax[j] {
				consumersMax[j] = i
			}
		}
	}

	// Sweep the 2n schedule accumulating live bytes.
	var cur, peak units.Bytes
	allocAt := map[int][]int{}   // time -> buffer ids allocated
	freeAfter := map[int][]int{} // time -> buffer ids freed after
	for b, w := range firstWrite {
		allocAt[w] = append(allocAt[w], b)
	}
	for b, lu := range lastUse {
		freeAfter[lu] = append(freeAfter[lu], b)
	}
	gradStart := map[int][]int{} // time -> node ids whose grad allocates
	gradEnd := map[int][]int{}   // time -> node ids whose grad frees
	for i := range nodes {
		s := bwdTime(consumersMax[i])
		e := bwdTime(i)
		if s > e {
			s = e
		}
		gradStart[s] = append(gradStart[s], i)
		gradEnd[e] = append(gradEnd[e], i)
	}
	gradBytes := func(i int) units.Bytes {
		return units.BytesOf(nodes[i].Out.Elems()*int64(batch), units.Float32Size)
	}
	for tm := 0; tm < 2*n; tm++ {
		for _, b := range allocAt[tm] {
			cur += bufBytes[b]
		}
		for _, i := range gradStart[tm] {
			cur += gradBytes(i)
		}
		if cur > peak {
			peak = cur
		}
		for _, i := range gradEnd[tm] {
			cur -= gradBytes(i)
		}
		for _, b := range freeAfter[tm] {
			cur -= bufBytes[b]
		}
	}
	return peak
}

// LivenessRetention expresses the liveness peak as a fraction of the naive
// all-outputs-resident footprint — directly comparable to the calibrated
// ActivationRetention constant.
func LivenessRetention(net *dnn.Network, batch int) float64 {
	naive := float64(net.ActivationElemsPerImage()) * float64(units.Float32Size) * float64(batch)
	if naive == 0 {
		return 0
	}
	return float64(LivenessPeak(net, batch)) / naive
}
