package memmodel

import (
	"testing"

	"repro/internal/models"
	"repro/internal/units"
)

func TestLivenessPeakBounds(t *testing.T) {
	for _, d := range models.All() {
		peak := LivenessPeak(d.Net, 16)
		naive := units.BytesOf(d.Net.ActivationElemsPerImage()*16, units.Float32Size)
		if peak <= 0 {
			t.Errorf("%s: non-positive peak", d.Name)
		}
		// Upper bound: all activations plus all gradients resident.
		if peak > 2*naive {
			t.Errorf("%s: peak %v exceeds 2x naive %v", d.Name, peak, naive)
		}
		// Lower bound: the input image batch alone.
		input := units.BytesOf(d.Net.Nodes()[0].Out.Elems()*16, units.Float32Size)
		if peak < input {
			t.Errorf("%s: peak %v below input %v", d.Name, peak, input)
		}
	}
}

func TestLivenessLinearInBatch(t *testing.T) {
	d, _ := models.ByName("googlenet")
	p16 := LivenessPeak(d.Net, 16)
	p32 := LivenessPeak(d.Net, 32)
	if p32 != 2*p16 {
		t.Errorf("liveness should be exactly linear in batch: %v vs 2x%v", p32, p16)
	}
}

// In-place aliasing must buy something: networks built from conv+bn+relu
// triples retain far less than three buffers per conv.
func TestLivenessInPlaceSavings(t *testing.T) {
	d, _ := models.ByName("inception-v3")
	r := LivenessRetention(d.Net, 16)
	if r <= 0.3 || r >= 1.5 {
		t.Errorf("Inception-v3 liveness retention = %.2f, expected within (0.3, 1.5)", r)
	}
	// A net with separate relu buffers... LeNet's tanh layers alias too;
	// its retention must also be below the +gradients worst case of 2.
	le, _ := models.ByName("lenet")
	if lr := LivenessRetention(le.Net, 16); lr >= 2 {
		t.Errorf("LeNet retention = %.2f", lr)
	}
}

// Cross-validation: the hand-calibrated ActivationRetention constant must
// sit within a factor of ~2 of the liveness-derived value for the large
// networks Table IV anchors on — the calibrated scalar is a stand-in for
// this analysis, not an arbitrary knob.
func TestRetentionWithinLivenessBand(t *testing.T) {
	for _, name := range []string{"resnet", "googlenet", "inception-v3"} {
		d, _ := models.ByName(name)
		lr := LivenessRetention(d.Net, 32)
		ratio := ActivationRetention / lr
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: calibrated retention %.2f vs liveness %.2f (ratio %.2f) out of band",
				name, ActivationRetention, lr, ratio)
		}
	}
}
