// Package memmodel estimates per-GPU memory usage of DNN training, the
// quantity the paper's Table IV reports via nvidia-smi: pre-training
// (context + model) and during-training (weights, gradients, optimizer
// state, retained feature maps, convolution workspaces, input staging),
// with the extra the root GPU pays for gradient aggregation and the
// authoritative weight copy.
package memmodel

import (
	"repro/internal/dnn"
	"repro/internal/units"
)

// Model parameters. Calibrated against the paper's anchors (AlexNet
// batch-64 at ~2.4 GB, Inception-v3 batch-64 at ~11 GB on GPU 0) and the
// OOM boundaries it reports.
const (
	// ContextBytes is the CUDA context plus cuDNN/cuBLAS/NCCL handles and
	// the framework's initial pool.
	ContextBytes = 550 * units.MB
	// ActivationRetention scales the raw sum of all layer outputs to the
	// retained training footprint: in-place activations/batchnorms and
	// progressive backward-buffer freeing reduce it; gradient feature maps
	// alive at the peak push it back up.
	ActivationRetention = 0.65
	// PoolOverhead models the framework allocator's rounding slack as a
	// fraction of dynamic (batch-scaled) allocations.
	PoolOverhead = 0.15
	// PerNodeReserve is the batch-independent per-layer cost: dependency-
	// engine staging buffers, cuDNN per-layer descriptors and autotuned
	// algorithm state, and allocator arenas. It is what makes large
	// networks' memory grow sublinearly in batch size (the paper's 1.83x
	// for Inception-v3 from batch 16 to 64).
	PerNodeReserve = 10 * units.MB
	// DriverReserve is the slice of device memory the driver and display
	// stack hold back; OOM checks subtract it from nominal capacity.
	DriverReserve = 600 * units.MB
)

// Estimate is the per-GPU memory breakdown for one configuration.
type Estimate struct {
	// PreTraining is usage after the model is transferred, before any
	// batch is processed (the same on every GPU).
	PreTraining units.Bytes

	// Components of training usage on a non-root worker.
	Weights     units.Bytes
	Gradients   units.Bytes
	Optimizer   units.Bytes
	FeatureMaps units.Bytes
	Workspace   units.Bytes
	InputQueue  units.Bytes
	Context     units.Bytes
	PoolSlack   units.Bytes

	// RootExtra is the additional memory the root GPU holds: the gradient
	// aggregation buffer and the authoritative weight copy it serves.
	RootExtra units.Bytes
}

// Worker returns total training usage on a non-root GPU.
func (e Estimate) Worker() units.Bytes {
	return e.Weights + e.Gradients + e.Optimizer + e.FeatureMaps +
		e.Workspace + e.InputQueue + e.Context + e.PoolSlack
}

// Root returns total training usage on the root GPU.
func (e Estimate) Root() units.Bytes { return e.Worker() + e.RootExtra }

// RootPremiumPercent returns the paper's "additional memory usage in GPU0
// w.r.t. GPUx" percentage.
func (e Estimate) RootPremiumPercent() float64 {
	w := e.Worker()
	if w == 0 {
		return 0
	}
	return 100 * float64(e.RootExtra) / float64(w)
}

// maxIm2colPerImage returns the largest convolution lowering buffer
// (K*K*Cin*Hout*Wout floats) any layer needs for one image.
func maxIm2colPerImage(net *dnn.Network) units.Bytes {
	var best int64
	for _, n := range net.Nodes() {
		c, ok := n.Op.(dnn.Conv)
		if !ok {
			continue
		}
		g := int64(1)
		if c.Groups > 1 {
			g = int64(c.Groups)
		}
		in := n.Inputs[0].Out
		elems := int64(c.KH) * int64(c.KW) * (int64(in.C) / g) * int64(n.Out.H) * int64(n.Out.W)
		if elems > best {
			best = elems
		}
	}
	return units.BytesOf(best, units.Float32Size)
}

// branchFactor approximates how many convolution workspaces are live
// concurrently: branchy graphs (inception modules, residual blocks) run
// parallel branches under the dependency engine.
func branchFactor(net *dnn.Network) int {
	consumers := map[*dnn.Node]int{}
	for _, n := range net.Nodes() {
		for _, in := range n.Inputs {
			consumers[in]++
		}
	}
	best := 1
	for _, c := range consumers {
		if c > best {
			best = c
		}
	}
	if best > 2 {
		best = 2
	}
	return best
}

// Compute estimates memory for training net at the given per-GPU batch
// size. multiGPU selects whether the root-GPU aggregation extra applies
// (it is zero for single-GPU training, where no parameter server role
// exists).
func Compute(net *dnn.Network, batch int, multiGPU bool) Estimate {
	w := net.ModelBytes()
	rawActs := units.BytesOf(net.ActivationElemsPerImage(), units.Float32Size)
	feature := units.Bytes(float64(rawActs) * ActivationRetention * float64(batch))
	workspace := maxIm2colPerImage(net) * units.Bytes(batch*branchFactor(net))
	input := 2 * units.BytesOf(net.Nodes()[0].Out.Elems(), units.Float32Size) * units.Bytes(batch)
	arena := PerNodeReserve * units.Bytes(len(net.Nodes()))

	e := Estimate{
		Weights:     w,
		Gradients:   w,
		Optimizer:   w, // SGD momentum state
		FeatureMaps: feature,
		Workspace:   workspace,
		InputQueue:  input,
		Context:     ContextBytes + arena,
	}
	dynamic := e.FeatureMaps + e.Workspace + e.InputQueue
	e.PoolSlack = units.Bytes(float64(dynamic) * PoolOverhead)
	e.PreTraining = ContextBytes + w + units.Bytes(float64(w)*PoolOverhead)
	if multiGPU {
		// Aggregation buffer + served weight copy.
		e.RootExtra = 2 * w
	}
	return e
}

// CheckpointRetention returns the fraction of the naive activation
// footprint retained under sqrt-N gradient checkpointing (Chen et al.):
// only ~2*sqrt(n) of n activations stay resident; the rest are recomputed
// during the backward pass. This is the "algorithm-level change" the paper
// calls for to break the feature-map memory wall (its §V-D).
func CheckpointRetention(nodes int) float64 {
	if nodes <= 1 {
		return 1
	}
	f := 2 * sqrtF(float64(nodes)) / float64(nodes)
	if f > 1 {
		return 1
	}
	return f
}

// sqrtF is a dependency-free square root (Newton's method) — keeps the
// package's stdlib-only surface minimal and is exact enough for a ratio.
func sqrtF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// ComputeCheckpointed is Compute with sqrt-N gradient checkpointing
// applied to the feature-map term.
func ComputeCheckpointed(net *dnn.Network, batch int, multiGPU bool) Estimate {
	e := Compute(net, batch, multiGPU)
	f := CheckpointRetention(len(net.Nodes()))
	e.FeatureMaps = units.Bytes(float64(e.FeatureMaps) * f)
	dynamic := e.FeatureMaps + e.Workspace + e.InputQueue
	e.PoolSlack = units.Bytes(float64(dynamic) * PoolOverhead)
	return e
}

// ScaleStages converts a single-GPU estimate into a per-stage estimate for
// model-parallel training over the given stage count: the model and its
// activations are partitioned (approximated as an even split), the
// context is per-GPU, and there is no aggregation premium.
func ScaleStages(e Estimate, stages int) Estimate {
	if stages <= 1 {
		return e
	}
	div := func(b units.Bytes) units.Bytes { return b / units.Bytes(stages) }
	out := e
	out.Weights = div(e.Weights)
	out.Gradients = div(e.Gradients)
	out.Optimizer = div(e.Optimizer)
	out.FeatureMaps = div(e.FeatureMaps)
	out.Workspace = div(e.Workspace)
	out.PoolSlack = div(e.PoolSlack)
	out.RootExtra = 0
	out.PreTraining = e.Context + out.Weights
	return out
}

// FitsDevice reports whether the configuration trains within the given
// capacity on every GPU (the root is the high-water mark).
func FitsDevice(net *dnn.Network, batch int, multiGPU bool, capacity units.Bytes) bool {
	return Compute(net, batch, multiGPU).Root() <= capacity-DriverReserve
}

// MaxBatch returns the largest power-of-two-ish batch (from the candidate
// list) that fits, or 0 if none does.
func MaxBatch(net *dnn.Network, multiGPU bool, capacity units.Bytes, candidates []int) int {
	best := 0
	for _, b := range candidates {
		if b > 0 && FitsDevice(net, b, multiGPU, capacity) && b > best {
			best = b
		}
	}
	return best
}
