package experiments

import (
	"context"
	"testing"

	"repro/internal/cluster"
)

// The fleet experiment's headline claim: on a degraded 4-node fleet,
// fault-aware placement at least halves tail JCT versus first-fit on the
// same trace. The experiment table reports the ratio; this pins it.
func TestFleetPolicyGapOnDegradedFleet(t *testing.T) {
	run := func(policy string) *cluster.Result {
		r, err := cluster.Simulate(context.Background(), cluster.Spec{
			Nodes:  fleetSeverities()[1].nodes(4),
			Mix:    fleetMix(),
			Policy: policy,
			Seed:   1,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return r
	}
	ff := run(cluster.PolicyFirstFit)
	fa := run(cluster.PolicyFragAware)
	if ratio := float64(ff.JCT.P99) / float64(fa.JCT.P99); ratio < 2 {
		t.Errorf("first-fit p99 %v vs frag-aware p99 %v: ratio %.2fx, want >= 2x",
			ff.JCT.P99, fa.JCT.P99, ratio)
	}
}

// Every experiment in the registry carries the one-line description
// `experiments -list` prints.
func TestAllExperimentsDescribed(t *testing.T) {
	for _, e := range All() {
		if e.Desc == "" {
			t.Errorf("%s: empty Desc", e.ID)
		}
	}
}
