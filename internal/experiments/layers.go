package experiments

import (
	"fmt"
	"time"

	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/models"
	"repro/internal/report"
)

// Layers renders the layer-by-layer characterization (the style of the CNN
// profiling work the paper builds on, Dong et al.): each network's most
// expensive layers at batch 16 on the V100, with their roofline regime.
func Layers(opt Options) ([]*report.Table, error) {
	opt.normalize()
	spec := gpu.V100()
	var out []*report.Table
	for _, m := range ModelNames {
		d, err := models.ByName(m)
		if err != nil {
			return nil, err
		}
		stats := dnn.ProfileLayers(d.Net, 16, spec, dnn.PlanOptions{TensorCores: true})
		var total time.Duration
		for _, s := range stats {
			total += s.Total()
		}
		t := report.NewTable(
			fmt.Sprintf("Layer profile: %s (batch 16, V100) — top 10 of %d layers, FP+BP %v total",
				d.Name, len(stats), fmtDur(total)),
			"Layer", "Op", "Output", "FP", "BP", "Bound by", "Share (%)")
		for _, s := range dnn.TopLayers(stats, 10) {
			t.AddRow(s.Name, s.Kind.String(), s.Output.String(),
				s.FPTime.Round(time.Microsecond).String(),
				s.BPTime.Round(time.Microsecond).String(), s.BoundBy,
				report.F(100*float64(s.Total())/float64(total), 1))
		}
		out = append(out, t)
	}
	return out, nil
}
