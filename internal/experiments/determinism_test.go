package experiments

import "testing"

// The simulator is deterministic and the jitter is seeded: running any
// experiment twice must produce byte-identical tables. This is what makes
// the reproduction reproducible.
func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3", "table4", "fig2", "insights", "fleet", "crossover"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.Run(testOpts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b, err := e.Run(testOpts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: table count changed between runs", id)
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Errorf("%s table %d differs between identical runs", id, i)
			}
		}
	}
}

// Figure 3's sweep (the largest) is deterministic for a fixed seed: two
// runs render byte-identical tables, error bars included.
func TestFig3DeterministicForFixedSeed(t *testing.T) {
	a, err := Fig3(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("fig3 table %d differs between identical runs", i)
		}
	}
}
