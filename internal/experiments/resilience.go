package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/kvstore"
	"repro/internal/report"
	"repro/internal/train"
)

// resilienceScenarios are the injected degradations the sweep compares, in
// rough order of severity. Each exercises a different lowering path: failed
// bricks and degraded links flow through the topology into NCCL's ring
// search, stragglers through per-device GPU specs, and PCIe contention
// through the staging links every method shares.
func resilienceScenarios() []struct {
	name string
	plan *faults.Plan
} {
	return []struct {
		name string
		plan *faults.Plan
	}{
		{"healthy", nil},
		{"one brick down (0-1)", &faults.Plan{
			FailedLinks: []faults.Link{{A: 0, B: 1}},
		}},
		{"two bricks down (0-1, 0-2)", &faults.Plan{
			FailedLinks: []faults.Link{{A: 0, B: 1}, {A: 0, B: 2}},
		}},
		{"GPU0 NVLink-isolated", &faults.Plan{
			FailedLinks: []faults.Link{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}, {A: 0, B: 6}},
		}},
		{"link 0-1 at 40% bandwidth", &faults.Plan{
			DegradedLinks: []faults.Degrade{{A: 0, B: 1, Fraction: 0.4}},
		}},
		{"GPU3 straggling 1.5x", &faults.Plan{
			Stragglers: []faults.Straggler{{GPU: 3, Slowdown: 1.5}},
		}},
		{"PCIe 50% contended", &faults.Plan{
			PCIeContention: 0.5,
		}},
	}
}

// Resilience sweeps fault plans over the paper's 8-GPU NCCL configuration
// and tables how training time and the communication share respond. It is
// the degraded-fabric counterpart of Figure 4: the paper shows WU share
// growing with healthy-machine GPU count; this shows it growing again as
// the fabric the collectives run on loses links, lanes, or lockstep.
func Resilience(opt Options) ([]*report.Table, error) {
	opt.normalize()

	const (
		model = "alexnet"
		gpus  = 8
		batch = 16
	)
	scenarios := resilienceScenarios()

	type row struct {
		res *train.Result
	}
	results, err := parMap(opt, len(scenarios), func(i int) (row, error) {
		res, err := core.Simulate(core.Workload{
			Model:  model,
			GPUs:   gpus,
			Batch:  batch,
			Method: kvstore.MethodNCCL,
			Images: opt.Images,
			Faults: scenarios[i].plan,
		})
		return row{res: res}, err
	})
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		fmt.Sprintf("Resilience: %s at %d GPUs, batch %d, NCCL, under injected faults", model, gpus, batch),
		"Fault plan", "Epoch", "FP+BP", "WU", "WU share (%)", "vs healthy")
	healthy := results[0].res.EpochTime
	for i, s := range scenarios {
		r := results[i].res
		t.AddRow(s.name,
			fmtDur(r.EpochTime),
			fmtDur(r.FPBPWall()),
			fmtDur(r.WUWall),
			report.F(100*float64(r.WUWall)/float64(r.EpochTime), 1),
			fmt.Sprintf("%.2fx", r.EpochTime.Seconds()/healthy.Seconds()))
	}
	t.AddNote("link faults reshape NCCL's rings (fewer edge-disjoint cycles, or a narrower bottleneck lane), so only WU grows; a straggler stretches FP+BP on every ring it anchors; PCIe contention prices the host staging the paper's timeline exposes")
	return []*report.Table{t}, nil
}
