package experiments

import (
	"fmt"
	"time"

	"repro/internal/kvstore"
	"repro/internal/models"
	"repro/internal/report"
	"repro/internal/train"
	"repro/internal/units"
)

// Optimizations evaluates the remedies the paper's findings motivated —
// gradient bucketing (fusing small arrays to amortize per-op overhead) and
// NCCL's double-binary-tree algorithm (O(log N) latency) — against the
// paper-era baseline for the workloads whose WU stage the paper showed to
// be overhead-bound.
func Optimizations(opt Options) ([]*report.Table, error) {
	opt.normalize()
	t := report.NewTable("Post-paper optimizations vs the measured baseline (8 GPUs, batch 16, NCCL)",
		"Network", "Baseline (rings, per-array)", "+bucketing (1MB)", "+tree", "+both", "Best speedup")

	variant := func(model string, bucket units.Bytes, tree bool) (time.Duration, error) {
		cfg, err := train.NewConfig(model, 8, 16, kvstore.MethodNCCL)
		if err != nil {
			return 0, err
		}
		cfg.Images = opt.Images
		cfg.BucketBytes = bucket
		cfg.NCCLTree = tree
		tr, err := train.New(cfg)
		if err != nil {
			return 0, err
		}
		res, err := tr.Run()
		if err != nil {
			return 0, err
		}
		return res.EpochTime, nil
	}

	for _, m := range ModelNames {
		d, err := models.ByName(m)
		if err != nil {
			return nil, err
		}
		base, err := variant(m, 0, false)
		if err != nil {
			return nil, err
		}
		bucketed, err := variant(m, units.MB, false)
		if err != nil {
			return nil, err
		}
		treed, err := variant(m, 0, true)
		if err != nil {
			return nil, err
		}
		both, err := variant(m, units.MB, true)
		if err != nil {
			return nil, err
		}
		best := bucketed
		if treed < best {
			best = treed
		}
		if both < best {
			best = both
		}
		t.AddRow(d.Name, fmtDur(base), fmtDur(bucketed), fmtDur(treed), fmtDur(both),
			fmt.Sprintf("%.2fx", base.Seconds()/best.Seconds()))
	}
	t.AddNote("bucketing and log-depth trees attack the per-operation and per-step latencies the paper identified; bandwidth-bound workloads are unaffected by design")
	return []*report.Table{t}, nil
}
