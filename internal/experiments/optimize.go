package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/report"
)

// optimizeSearchSpace is the frontier sweep: every DGX-1 GPU count, the
// paper's batch sizes, both update methods — the same region a
// /v1/optimize request with an empty space plus the paper batches
// searches.
func optimizeSearchSpace() optimize.Space {
	return optimize.Space{
		GPUs:    GPUCounts,
		Batches: Batches,
		Methods: []core.Method{core.P2P, core.NCCL},
	}
}

// optimizeMemoryCapGiB is the V100's 16 GB device capacity: a frontier
// point that does not fit the card is not a configuration at all.
const optimizeMemoryCapGiB = 16.0

// Optimize searches ResNet-50's configuration space for the Pareto
// frontier of epoch time (and, as a second view, throughput per GPU)
// against GPU cost — the "what should I actually run?" reading of the
// paper's sweeps. Where Figure 3 shows every configuration, this shows
// only the non-dominated ones: each frontier row is the best epoch time
// money (GPUs) can buy at that budget, with the exact workload and
// measured metrics as provenance. The same search is served online by
// POST /v1/optimize.
func Optimize(opt Options) ([]*report.Table, error) {
	opt.normalize()
	base := core.Workload{Model: "resnet", Batch: 32, Images: opt.Images}
	space := optimizeSearchSpace()
	cands := optimize.Candidates(base, space)
	reports, err := parMap(opt, len(cands), func(i int) (*core.Report, error) {
		return core.Run(cands[i])
	})
	if err != nil {
		return nil, err
	}

	var tables []*report.Table
	for _, obj := range []optimize.Objective{optimize.MinEpochTime, optimize.MaxThroughputPerGPU} {
		res, err := optimize.Frontier(cands, reports, obj, optimizeMemoryCapGiB)
		if err != nil {
			return nil, err
		}
		t := report.NewTable(
			fmt.Sprintf("Pareto frontier: resnet, objective %s (%d candidates, %d over the %g GiB cap)",
				obj, res.Candidates, res.MemoryExcluded, optimizeMemoryCapGiB),
			"GPUs", "Batch", "Method", "Epoch", "Images/s", "Img/s/GPU", "Mem (GiB)")
		for _, p := range res.Frontier {
			t.AddRow(
				fmt.Sprintf("%d", p.Workload.GPUs),
				fmt.Sprintf("%d", p.Workload.Batch),
				string(p.Workload.Method),
				fmtDur(time.Duration(p.EpochTimeNs)),
				report.F(p.ImagesPerSecond, 1),
				report.F(p.ThroughputPerGPU, 1),
				report.F(p.MemoryGiB, 2))
		}
		t.AddNote("each row strictly improves the objective over every cheaper row; dominated configurations (more GPUs, no gain) are dropped")
		tables = append(tables, t)
	}
	return tables, nil
}
