package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// testOpts keeps experiment tests fast; the simulation cost is independent
// of dataset size, but fewer repetitions trim jitter work.
var testOpts = Options{Repetitions: 2, Seed: 7, JitterRel: 0.01}

func TestByID(t *testing.T) {
	for _, e := range All() {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestAllUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%q incomplete", e.ID)
		}
	}
}

func TestTable1Content(t *testing.T) {
	tabs, err := Table1(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := tabs[0].String()
	for _, want := range []string{"LeNet", "AlexNet", "GoogLeNet", "Inception-v3", "ResNet", "61706", "60965224"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Trends(t *testing.T) {
	tabs, err := Table2(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows()
	if len(rows) != 15 {
		t.Fatalf("Table2 rows = %d, want 15", len(rows))
	}
	// Column 4 is the overhead; every row must be positive (NCCL always
	// costs something on one GPU).
	byModel := map[string][]float64{}
	for _, r := range rows {
		ov, err := strconv.ParseFloat(r[4], 64)
		if err != nil {
			t.Fatalf("bad overhead cell %q", r[4])
		}
		if ov <= 0 {
			t.Errorf("%s b%s: overhead %.1f should be positive", r[0], r[1], ov)
		}
		byModel[r[0]] = append(byModel[r[0]], ov)
	}
	// Small networks: overhead grows with batch.
	for _, m := range []string{"LeNet", "AlexNet"} {
		o := byModel[m]
		if !(o[0] < o[1] && o[1] < o[2]) {
			t.Errorf("%s overhead not increasing with batch: %v", m, o)
		}
	}
	// Large networks: varies by less than 3.6 percentage points.
	for _, m := range []string{"ResNet", "GoogLeNet", "Inception-v3"} {
		o := byModel[m]
		min, max := o[0], o[0]
		for _, v := range o {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if max-min >= 3.6 {
			t.Errorf("%s overhead varies %.1fpp, want < 3.6", m, max-min)
		}
	}
}

func TestTable3Trends(t *testing.T) {
	tabs, err := Table3(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows()
	if len(rows) != 12 {
		t.Fatalf("Table3 rows = %d, want 12", len(rows))
	}
	get := func(batch, gpus string) float64 {
		for _, r := range rows {
			if r[0] == batch && r[1] == gpus {
				v, _ := strconv.ParseFloat(r[2], 64)
				return v
			}
		}
		t.Fatalf("missing row %s/%s", batch, gpus)
		return 0
	}
	if !(get("16", "1") < get("16", "8")) {
		t.Error("sync%% should grow with GPU count")
	}
	if !(get("64", "8") < get("16", "8")) {
		t.Error("sync%% should shrink with batch size")
	}
}

func TestTable4Content(t *testing.T) {
	tabs, err := Table4(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("Table4 should yield 2 tables, got %d", len(tabs))
	}
	rows := tabs[0].Rows()
	if len(rows) != 15 {
		t.Fatalf("memory rows = %d, want 15", len(rows))
	}
	for _, r := range rows {
		root, _ := strconv.ParseFloat(r[3], 64)
		worker, _ := strconv.ParseFloat(r[4], 64)
		if root < worker {
			t.Errorf("%s b%s: GPU0 (%.2f) should not be below GPUx (%.2f)", r[0], r[1], root, worker)
		}
		// The premium column is exact even when the GiB cells round equal
		// (LeNet's 0.5MB premium).
		prem, _ := strconv.ParseFloat(r[5], 64)
		if prem <= 0 {
			t.Errorf("%s b%s: GPU0 premium %.2f%% should be positive", r[0], r[1], prem)
		}
	}
	// OOM boundary table.
	boundary := map[string]string{}
	for _, r := range tabs[1].Rows() {
		boundary[r[0]] = r[1]
	}
	if boundary["Inception-v3"] != "64" || boundary["ResNet"] != "64" {
		t.Errorf("Inception-v3/ResNet max batch should be 64: %v", boundary)
	}
	if boundary["LeNet"] != "256" {
		t.Errorf("LeNet should train at any batch: %v", boundary)
	}
}

func TestFig2Topology(t *testing.T) {
	tabs, err := Fig2(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("Fig2 tables = %d, want 2", len(tabs))
	}
	s := tabs[0].String()
	if !strings.Contains(s, "NV2") || !strings.Contains(s, "NV1") || !strings.Contains(s, "PIX") {
		t.Errorf("adjacency missing link codes:\n%s", s)
	}
}

func TestFig1Activity(t *testing.T) {
	tabs, err := Fig1(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := tabs[0].String()
	for _, want := range []string{"GPU0/compute", "FP", "BP", "WU"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
}

// Fig3's full grid is exercised by the benchmark; here a focused LeNet
// check that the table has the right shape and error bars.
func TestFig3Shape(t *testing.T) {
	opt := testOpts
	tabs, err := Fig3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 10 { // 5 models x 2 methods
		t.Fatalf("Fig3 tables = %d, want 10", len(tabs))
	}
	for _, tab := range tabs {
		rows := tab.Rows()
		if len(rows) != 3 {
			t.Fatalf("%s: rows = %d, want 3 batch sizes", tab.Title, len(rows))
		}
		for _, r := range rows {
			for _, cell := range r[1:] {
				if !strings.Contains(cell, "±") {
					t.Errorf("%s: cell %q missing error bar", tab.Title, cell)
				}
			}
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tabs, err := Fig4(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 5 {
		t.Fatalf("Fig4 tables = %d, want 5", len(tabs))
	}
	for _, tab := range tabs {
		rows := tab.Rows()
		if len(rows) != 12 { // 4 GPU counts x 3 batches
			t.Fatalf("%s: rows = %d, want 12", tab.Title, len(rows))
		}
		for _, r := range rows {
			if r[0] == "1" && r[3] != "-" {
				t.Errorf("%s: single-GPU WU should be '-'", tab.Title)
			}
		}
	}
}

func TestFig5WeakAtLeastStrong(t *testing.T) {
	tabs, err := Fig5(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 10 {
		t.Fatalf("Fig5 tables = %d, want 10", len(tabs))
	}
	for _, tab := range tabs {
		for _, r := range tab.Rows() {
			adv, err := strconv.ParseFloat(r[5], 64)
			if err != nil {
				t.Fatalf("bad advantage cell %q", r[5])
			}
			if adv < -2.5 {
				t.Errorf("%s gpus=%s batch=%s: weak scaling much worse than strong (%.1f%%)",
					tab.Title, r[1], r[0], adv)
			}
		}
	}
}

func TestOptimizationsHelpLatencyBoundOnly(t *testing.T) {
	tabs, err := Optimizations(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	speedup := func(name string) float64 {
		for _, r := range rows {
			if r[0] == name {
				var v float64
				if _, err := fmt.Sscanf(r[5], "%fx", &v); err != nil {
					t.Fatalf("bad speedup cell %q", r[5])
				}
				return v
			}
		}
		t.Fatalf("missing row %q", name)
		return 0
	}
	if s := speedup("LeNet"); s < 1.2 {
		t.Errorf("LeNet optimization speedup %.2f, want substantial", s)
	}
	for _, m := range []string{"ResNet", "Inception-v3"} {
		if s := speedup(m); s < 0.98 || s > 1.1 {
			t.Errorf("%s speedup %.2f should be ~1 (bandwidth bound)", m, s)
		}
	}
}

func TestLayersExperiment(t *testing.T) {
	tabs, err := Layers(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 5 {
		t.Fatalf("tables = %d, want 5", len(tabs))
	}
	for _, tab := range tabs {
		rows := tab.Rows()
		if len(rows) == 0 || len(rows) > 10 {
			t.Fatalf("%s: %d rows", tab.Title, len(rows))
		}
		for _, r := range rows {
			if r[5] != "compute" && r[5] != "memory" && r[5] != "overhead" {
				t.Errorf("bad bound-by cell %q", r[5])
			}
		}
	}
}

func TestHardwareExperiment(t *testing.T) {
	tabs, err := Hardware(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("tables = %d, want 2", len(tabs))
	}
	if got := len(tabs[0].Rows()); got != 5 {
		t.Errorf("machine rows = %d, want 5", got)
	}
	if got := len(tabs[1].Rows()); got != 3 {
		t.Errorf("transport rows = %d, want 3", got)
	}
}
