package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kvstore"
)

// The experiment's headline claim, pinned: for every model it sweeps,
// the P2P-vs-NCCL gap is narrower on the DGX-2's uniform NVSwitch
// crossbar than on the DGX-1's asymmetric cube-mesh. Measured on the
// exact workloads the experiment renders (8 GPUs, batch 16).
func TestCrossoverGapNarrowsOnDGX2(t *testing.T) {
	epoch := func(model, hw string, method kvstore.Method) float64 {
		t.Helper()
		res, err := core.Simulate(core.Workload{
			Model: model, GPUs: 8, Batch: 16, Method: method, Images: 16384, Hardware: hw,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.EpochTime.Seconds()
	}
	for _, model := range crossoverModels {
		gap := func(hw string) float64 {
			return math.Abs(math.Log(epoch(model, hw, kvstore.MethodNCCL) / epoch(model, hw, kvstore.MethodP2P)))
		}
		dgx1, dgx2 := gap("dgx1"), gap("dgx2")
		if dgx2 >= dgx1 {
			t.Errorf("%s: |log NCCL/P2P| on dgx2 (%.3f) should be below dgx1's (%.3f)", model, dgx2, dgx1)
		}
	}
}

// The experiment renders both tables with fully populated rows.
func TestCrossoverRenders(t *testing.T) {
	tables, err := Crossover(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("crossover rendered %d tables, want 2", len(tables))
	}
	out := tables[0].String()
	for _, want := range []string{"alexnet", "resnet", "dgx1", "dgx2"} {
		if !strings.Contains(out, want) {
			t.Errorf("method table missing %q:\n%s", want, out)
		}
	}
	proto := tables[1].String()
	for _, want := range []string{"simple", "ll", "ll128", "auto"} {
		if !strings.Contains(proto, want) {
			t.Errorf("protocol table missing %q:\n%s", want, proto)
		}
	}
}
