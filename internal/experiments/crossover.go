package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/report"
)

// crossoverModels are the networks whose P2P-vs-NCCL gap the paper's
// Figure 3 exhibits most clearly: AlexNet (communication-bound, big
// dense layers) and ResNet (compute-bound).
var crossoverModels = []string{"alexnet", "resnet"}

// crossoverHardware are the machine generations the comparison spans.
var crossoverHardware = []string{"dgx1", "dgx2"}

// Crossover re-runs the paper's P2P-vs-NCCL comparison across hardware
// generations. On the DGX-1's asymmetric hybrid cube-mesh the two
// methods price communication very differently — P2P serializes root
// transfers over the tree while NCCL's rings use every link — so the
// gap between them is wide; on the DGX-2's NVSwitch full crossbar every
// GPU pair is one uniform hop and both methods see the same fat pipes,
// so the gap narrows. Everything is driven through core.Workload's
// hardware axis — the same path the API serves — so the rendered rows
// are exactly what /v1/simulate would report.
func Crossover(opt Options) ([]*report.Table, error) {
	opt.normalize()

	run := func(model, hardware string, method kvstore.Method, protocol string) (time.Duration, error) {
		res, err := core.Simulate(core.Workload{
			Model: model, GPUs: 8, Batch: 16, Method: method,
			Images: opt.Images, Hardware: hardware, Protocol: protocol,
		})
		if err != nil {
			return 0, err
		}
		return res.EpochTime, nil
	}

	t := report.NewTable("Crossover: P2P vs NCCL at 8 GPUs, batch 16, by hardware",
		"Model", "Hardware", "P2P", "NCCL", "NCCL/P2P")
	for _, model := range crossoverModels {
		for _, hw := range crossoverHardware {
			p2p, err := run(model, hw, kvstore.MethodP2P, "")
			if err != nil {
				return nil, err
			}
			nccl, err := run(model, hw, kvstore.MethodNCCL, "")
			if err != nil {
				return nil, err
			}
			t.AddRow(model, hw, fmtDur(p2p), fmtDur(nccl),
				fmt.Sprintf("%.3fx", nccl.Seconds()/p2p.Seconds()))
		}
	}
	t.AddNote("the paper's wide DGX-1 method gap comes from the asymmetric cube-mesh; the DGX-2's NVSwitch crossbar serves both methods uniformly, so the NCCL/P2P ratio moves toward 1")

	p := report.NewTable("NCCL protocols on the DGX-2: AlexNet epoch at 8 GPUs, batch 16",
		"Protocol", "Epoch", "vs simple")
	var simple time.Duration
	for _, proto := range []string{"simple", "ll", "ll128", "auto"} {
		d, err := run("alexnet", "dgx2", kvstore.MethodNCCL, proto)
		if err != nil {
			return nil, err
		}
		if proto == "simple" {
			simple = d
		}
		p.AddRow(proto, fmtDur(d), fmt.Sprintf("%.3fx", d.Seconds()/simple.Seconds()))
	}
	p.AddNote("LL halves effective bandwidth for latency; LL128 keeps 15/16 of it on NVLink; auto picks protocol and algorithm per collective by message size")
	return []*report.Table{t, p}, nil
}
