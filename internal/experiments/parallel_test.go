package experiments

import (
	"runtime"
	"testing"

	"repro/internal/report"
)

// The parallel sweeps collect results by configuration index, never by
// completion order, so any worker count must render byte-identical
// tables. This pins the satellite requirement: `make experiments` got
// faster without changing a single output byte.
func TestParallelSweepsRenderIdentically(t *testing.T) {
	runs := []struct {
		name string
		run  func(Options) ([]*report.Table, error)
	}{
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"table2", Table2},
		{"table3", Table3},
		{"fleet", Fleet},
	}
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 8 // force real fan-out even on a single-CPU runner
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			seqOpt := testOpts
			seqOpt.Workers = 1
			parOpt := testOpts
			parOpt.Workers = workers

			seq, err := r.run(seqOpt)
			if err != nil {
				t.Fatal(err)
			}
			par, err := r.run(parOpt)
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) != len(par) {
				t.Fatalf("sequential run rendered %d tables, parallel %d", len(seq), len(par))
			}
			for i := range seq {
				if seq[i].String() != par[i].String() {
					t.Errorf("table %d differs between 1 and %d workers:\nsequential:\n%s\nparallel:\n%s",
						i, workers, seq[i].String(), par[i].String())
				}
			}
		})
	}
}
