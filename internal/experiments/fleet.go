package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/report"
)

// fleetMix is the generated PAI-style trace every fleet cell shares: the
// sweep varies the fleet and the policy, never the offered load. 150
// arrivals at a 6s mean interarrival offers roughly 70% utilization to a
// healthy 2-node fleet — loaded enough that placement quality shows up
// in the tail, not so loaded that every policy drowns identically.
func fleetMix() *cluster.Mix {
	return &cluster.Mix{Jobs: 150, MeanInterarrival: 6 * time.Second}
}

// sickNode is the degraded node the severity ladder injects: GPU0
// NVLink-isolated (its four bricks failed, so every multi-GPU NCCL job
// placed there routes around the hole) and GPU0 straggling 2.5x (so
// even single-GPU jobs feel the node). It is the resilience ladder's
// worst single-node case, reused as a fleet member.
func sickNode() *faults.Plan {
	return &faults.Plan{
		FailedLinks: []faults.Link{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}, {A: 0, B: 6}},
		Stragglers:  []faults.Straggler{{GPU: 0, Slowdown: 2.5}},
	}
}

// fleetSeverities builds the fleet's node list per degradation level.
// The sick nodes come first — that is the point: first-fit's scan order
// keeps feeding them, a fault-aware policy steers around them.
func fleetSeverities() []struct {
	name  string
	nodes func(n int) []cluster.NodeSpec
} {
	return []struct {
		name  string
		nodes func(n int) []cluster.NodeSpec
	}{
		{"healthy", func(n int) []cluster.NodeSpec {
			return []cluster.NodeSpec{{Count: n}}
		}},
		{"one node sick", func(n int) []cluster.NodeSpec {
			return []cluster.NodeSpec{{Faults: sickNode()}, {Count: n - 1}}
		}},
		{"half fleet sick", func(n int) []cluster.NodeSpec {
			return []cluster.NodeSpec{{Count: n / 2, Faults: sickNode()}, {Count: n - n/2}}
		}},
	}
}

// Fleet sweeps placement policy x fleet size x fault severity over one
// fixed PAI-style job trace and tables the cluster-level outcomes. It is
// the multi-tenant counterpart of the resilience ladder: resilience asks
// what one fault does to one job; this asks what a fleet's scheduler can
// do about it when the fault is one node among many. The second table
// compares queue disciplines (FIFO vs SJF) on the degraded fleet, where
// head-of-line cost is highest.
func Fleet(opt Options) ([]*report.Table, error) {
	opt.normalize()

	fleets := []int{2, 4}
	severities := fleetSeverities()
	policies := cluster.Policies()

	type cell struct {
		fleet, sev int
		policy     string
		queue      string
	}
	var cells []cell
	for _, f := range fleets {
		for si := range severities {
			if f/2 <= 1 && si == 2 {
				// On a 2-node fleet "half sick" is "one node sick" again.
				continue
			}
			for _, p := range policies {
				cells = append(cells, cell{fleet: f, sev: si, policy: p, queue: cluster.QueueFIFO})
			}
		}
	}
	// Queue-discipline arm: FIFO vs SJF under first-fit on the degraded
	// 2-node fleet.
	qdBase := len(cells)
	for _, q := range cluster.Queues() {
		cells = append(cells, cell{fleet: 2, sev: 1, policy: cluster.PolicyFirstFit, queue: q})
	}

	results, err := parMap(opt, len(cells), func(i int) (*cluster.Result, error) {
		c := cells[i]
		return cluster.Simulate(context.Background(), cluster.Spec{
			Nodes:  severities[c.sev].nodes(c.fleet),
			Mix:    fleetMix(),
			Policy: c.policy,
			Queue:  c.queue,
			Seed:   opt.Seed,
		})
	})
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		fmt.Sprintf("Fleet scheduling: %d PAI-style jobs, policy x fleet size x fault severity (seed %d)", fleetMix().Jobs, opt.Seed),
		"Fleet", "Severity", "Policy", "p50 JCT", "p99 JCT", "p99 queue", "Util (%)", "Makespan", "p99 vs first-fit")
	for i, c := range cells[:qdBase] {
		r := results[i]
		// The first-fit row of the same (fleet, severity) group anchors
		// the ratio: policies are only comparable on identical inputs.
		var base *cluster.Result
		for j, cj := range cells[:qdBase] {
			if cj.fleet == c.fleet && cj.sev == c.sev && cj.policy == cluster.PolicyFirstFit {
				base = results[j]
				break
			}
		}
		t.AddRow(
			fmt.Sprintf("%d nodes", c.fleet),
			severities[c.sev].name,
			c.policy,
			fmtDur(r.JCT.P50),
			fmtDur(r.JCT.P99),
			fmtDur(r.QueueDelay.P99),
			report.F(100*r.FleetUtilization, 1),
			fmtDur(r.Makespan),
			fmt.Sprintf("%.2fx", float64(r.JCT.P99)/float64(base.JCT.P99)))
	}
	t.AddNote("sick node = GPU0 NVLink-isolated + 2.5x straggler, listed first in the fleet; first-fit keeps feeding it, frag-aware prices its degradation and steers jobs onto healthy fabric")
	t.AddNote(fmt.Sprintf("each cell re-schedules the same %d-job trace; %d distinct workloads priced through the simulator per cell at most — repetition rides the fingerprint memo",
		fleetMix().Jobs, results[0].DistinctServices))

	qt := report.NewTable(
		"Queue discipline on the degraded 2-node fleet (first-fit placement)",
		"Queue", "Mean JCT", "p50 JCT", "p99 JCT", "p99 queue", "Makespan")
	for i, c := range cells[qdBase:] {
		r := results[qdBase+i]
		qt.AddRow(c.queue,
			fmtDur(r.JCT.Mean),
			fmtDur(r.JCT.P50),
			fmtDur(r.JCT.P99),
			fmtDur(r.QueueDelay.P99),
			fmtDur(r.Makespan))
	}
	qt.AddNote("SJF ranks pending jobs by their healthy-machine service estimate; with the PAI mix's heavy tail it collapses the median at a small cost to the largest jobs")
	return []*report.Table{t, qt}, nil
}
