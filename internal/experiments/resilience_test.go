package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The resilience sweep must render byte-identically across repeated runs
// and across worker counts — the same bar every other sweep is held to.
func TestResilienceDeterministic(t *testing.T) {
	opts := testOpts
	opts.Images = 4096

	seq := opts
	seq.Workers = 1
	a, err := Resilience(seq)
	if err != nil {
		t.Fatal(err)
	}
	par := opts
	par.Workers = 8
	b, err := Resilience(par)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Resilience(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || len(b) != 1 || len(c) != 1 {
		t.Fatalf("resilience should render one table, got %d/%d/%d", len(a), len(b), len(c))
	}
	if a[0].String() != b[0].String() {
		t.Error("parallel sweep renders differently from sequential")
	}
	if b[0].String() != c[0].String() {
		t.Error("repeated runs render differently")
	}
}

// Every fault scenario must come out at least as slow as the healthy
// baseline — a faster degraded machine means a lowering bug.
func TestResilienceScenariosNeverSpeedUp(t *testing.T) {
	opts := testOpts
	opts.Images = 4096
	tabs, err := Resilience(opts)
	if err != nil {
		t.Fatal(err)
	}
	out := tabs[0].String()
	for _, s := range resilienceScenarios() {
		if err := s.plan.Validate(); err != nil {
			t.Errorf("scenario %q ships an invalid plan: %v", s.name, err)
		}
		if !strings.Contains(out, s.name) {
			t.Errorf("table is missing scenario %q", s.name)
		}
	}
	// The "vs healthy" column is rendered as "N.NNx"; the healthy row is
	// 1.00x and no row may fall below it.
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		last := f[len(f)-1]
		if !strings.HasSuffix(last, "x") {
			continue
		}
		ratio, err := strconv.ParseFloat(strings.TrimSuffix(last, "x"), 64)
		if err != nil {
			continue
		}
		if ratio < 1 {
			t.Errorf("scenario row reports a speed-up: %s", line)
		}
	}
}
