package experiments

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/kvstore"
	"repro/internal/report"
	"repro/internal/topology"
	"repro/internal/train"
)

// Hardware compares the Volta DGX-1 against the machines the paper's
// related work measures it against: the Pascal DGX-1 (Gawande et al.), a
// PCIe-only chassis (Tallent et al.'s axis), and hypothetical
// higher-bandwidth NVLink variants — plus MXNet's default CPU parameter
// server as the transport baseline.
func Hardware(opt Options) ([]*report.Table, error) {
	opt.normalize()

	run := func(top *topology.Topology, spec *gpu.Spec, tensor bool, method kvstore.Method, model string, gpus int) (time.Duration, error) {
		cfg, err := train.NewConfig(model, gpus, 16, method)
		if err != nil {
			return 0, err
		}
		cfg.Images = opt.Images
		cfg.Topology = top
		cfg.GPUSpec = spec
		cfg.TensorCores = tensor
		tr, err := train.New(cfg)
		if err != nil {
			return 0, err
		}
		res, err := tr.Run()
		if err != nil {
			return 0, err
		}
		return res.EpochTime, nil
	}

	p100 := gpu.P100()
	machines := []struct {
		name   string
		top    *topology.Topology
		spec   *gpu.Spec
		tensor bool
	}{
		{"Pascal DGX-1 (P100, NVLink1)", topology.DGX1Pascal(), &p100, false},
		{"Volta DGX-1, PCIe only", topology.DGX1PCIeOnly(), nil, true},
		{"Volta DGX-1 (the paper's)", topology.DGX1(), nil, true},
		{"Volta DGX-1, 2x NVLink", topology.DGX1Scaled(2), nil, true},
		{"DGX-2 (NVSwitch, 8 of 16 GPUs)", topology.DGX2(), nil, true},
	}

	t := report.NewTable("Hardware variants: epoch time at 8 GPUs, batch 16, NCCL",
		"Machine", "LeNet", "AlexNet", "ResNet")
	for _, m := range machines {
		row := []string{m.name}
		for _, model := range []string{"lenet", "alexnet", "resnet"} {
			d, err := run(m.top, m.spec, m.tensor, kvstore.MethodNCCL, model, 8)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(d))
		}
		t.AddRow(row...)
	}
	t.AddNote("Pascal loses on arithmetic (no tensor cores, 10.6 vs 15.7 TFLOPS) and wire (20 vs 25-50 GB/s); PCIe-only loses on wire alone; the NVSwitch generation removes the asymmetric-topology penalties the paper diagnosed")

	m2 := report.NewTable("Transport baselines: AlexNet epoch at 4 GPUs, batch 16 (Volta DGX-1)",
		"kvstore", "Epoch", "vs local")
	var local time.Duration
	for _, method := range []kvstore.Method{kvstore.MethodLocal, kvstore.MethodP2P, kvstore.MethodNCCL} {
		d, err := run(topology.DGX1(), nil, true, method, "alexnet", 4)
		if err != nil {
			return nil, err
		}
		if method == kvstore.MethodLocal {
			local = d
		}
		m2.AddRow(string(method), fmtDur(d), fmt.Sprintf("%.2fx", local.Seconds()/d.Seconds()))
	}
	m2.AddNote("\"local\" is MXNet's default CPU parameter server over PCIe — the baseline the paper's two GPU-side methods replace")
	return []*report.Table{t, m2}, nil
}
