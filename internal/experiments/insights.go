package experiments

import (
	"fmt"
	"time"

	"repro/internal/kvstore"
	"repro/internal/memmodel"
	"repro/internal/models"
	"repro/internal/report"
	"repro/internal/topology"
	"repro/internal/train"
	"repro/internal/units"
)

// Insights programmatically evaluates the qualitative claims the paper
// states in its evaluation sections — a conformance suite over the
// simulation. Each row names the claim, the measured evidence, and whether
// it holds.
func Insights(opt Options) ([]*report.Table, error) {
	opt.normalize()
	t := report.NewTable("Paper insights, checked against the simulation",
		"#", "Claim (paper section)", "Measured evidence", "Holds")

	type check struct {
		claim string
		run   func() (string, bool, error)
	}

	epoch := func(model string, gpus, batch int, m kvstore.Method) (time.Duration, error) {
		r, err := runOne(model, gpus, batch, m, opt.Images)
		if err != nil {
			return 0, err
		}
		return r.EpochTime, nil
	}

	checks := []check{
		{
			claim: "Increasing batch size reduces epoch time; ~linearly for LeNet (V-A)",
			run: func() (string, bool, error) {
				l16, err := epoch("lenet", 4, 16, kvstore.MethodP2P)
				if err != nil {
					return "", false, err
				}
				l64, err := epoch("lenet", 4, 64, kvstore.MethodP2P)
				if err != nil {
					return "", false, err
				}
				g16, err := epoch("googlenet", 4, 16, kvstore.MethodNCCL)
				if err != nil {
					return "", false, err
				}
				g64, err := epoch("googlenet", 4, 64, kvstore.MethodNCCL)
				if err != nil {
					return "", false, err
				}
				lf, gf := l16.Seconds()/l64.Seconds(), g16.Seconds()/g64.Seconds()
				// The paper claims linear for all workloads; compute-bound
				// physics gives only a modest gain for the big nets — see
				// EXPERIMENTS.md. LeNet's near-linear factor (paper: 3.67x)
				// and a monotone decrease elsewhere is what we check.
				return fmt.Sprintf("LeNet 16->64: %.2fx (paper 3.67x); GoogLeNet: %.2fx", lf, gf),
					lf > 3 && gf > 1.02, nil
			},
		},
		{
			claim: "P2P outperforms NCCL for LeNet at every GPU count (V-A)",
			run: func() (string, bool, error) {
				ok := true
				worst := 0.0
				for _, g := range []int{1, 2, 4, 8} {
					p, err := epoch("lenet", g, 16, kvstore.MethodP2P)
					if err != nil {
						return "", false, err
					}
					n, err := epoch("lenet", g, 16, kvstore.MethodNCCL)
					if err != nil {
						return "", false, err
					}
					r := n.Seconds() / p.Seconds()
					if r < 1 {
						ok = false
					}
					if worst == 0 || r < worst {
						worst = r
					}
				}
				return fmt.Sprintf("NCCL/P2P ratio >= %.2f at all counts", worst), ok, nil
			},
		},
		{
			claim: "NCCL beats P2P for compute-intensive nets at 4 and 8 GPUs (V-A)",
			run: func() (string, bool, error) {
				p4, err := epoch("inception-v3", 4, 16, kvstore.MethodP2P)
				if err != nil {
					return "", false, err
				}
				n4, err := epoch("inception-v3", 4, 16, kvstore.MethodNCCL)
				if err != nil {
					return "", false, err
				}
				p8, err := epoch("inception-v3", 8, 16, kvstore.MethodP2P)
				if err != nil {
					return "", false, err
				}
				n8, err := epoch("inception-v3", 8, 16, kvstore.MethodNCCL)
				if err != nil {
					return "", false, err
				}
				s4, s8 := p4.Seconds()/n4.Seconds(), p8.Seconds()/n8.Seconds()
				return fmt.Sprintf("Inception-v3: %.2fx at 4 GPUs, %.2fx at 8", s4, s8),
					s4 > 1.05 && s8 > s4, nil
			},
		},
		{
			claim: "NCCL overhead cannot be amortized for small nets on one GPU (V-B)",
			run: func() (string, bool, error) {
				p, err := epoch("lenet", 1, 16, kvstore.MethodP2P)
				if err != nil {
					return "", false, err
				}
				n, err := epoch("lenet", 1, 16, kvstore.MethodNCCL)
				if err != nil {
					return "", false, err
				}
				ov := 100 * (n.Seconds() - p.Seconds()) / p.Seconds()
				return fmt.Sprintf("LeNet b16: %.1f%% (paper: 21.8%%)", ov), ov > 10 && ov < 35, nil
			},
		},
		{
			claim: "Computation (FP+BP) dominates training as GPUs increase (V-C)",
			run: func() (string, bool, error) {
				r, err := runOne("resnet", 8, 16, kvstore.MethodNCCL, opt.Images)
				if err != nil {
					return "", false, err
				}
				share := 100 * float64(r.FPBPWall()) / float64(r.EpochTime)
				return fmt.Sprintf("ResNet 8 GPUs: FP+BP = %.1f%% of epoch", share), share > 80, nil
			},
		},
		{
			claim: "cudaStreamSynchronize dominates LeNet's API time (V-C)",
			run: func() (string, bool, error) {
				r, err := runOne("lenet", 4, 16, kvstore.MethodNCCL, opt.Images)
				if err != nil {
					return "", false, err
				}
				names := r.Profile.APINames()
				top := ""
				if len(names) > 0 {
					top = names[0]
				}
				return fmt.Sprintf("top API: %s", top), top == "cudaStreamSynchronize", nil
			},
		},
		{
			claim: "GPU memory limits the maximum batch size (V-D)",
			run: func() (string, bool, error) {
				d, err := models.ByName("inception-v3")
				if err != nil {
					return "", false, err
				}
				mb := memmodel.MaxBatch(d.Net, true, 16*units.GB, []int{16, 32, 64, 128, 256})
				return fmt.Sprintf("Inception-v3 max per-GPU batch: %d (paper: 64)", mb), mb == 64, nil
			},
		},
		{
			claim: "Feature maps far exceed the model for the large workloads (V-D)",
			run: func() (string, bool, error) {
				d, err := models.ByName("inception-v3")
				if err != nil {
					return "", false, err
				}
				e := memmodel.Compute(d.Net, 64, true)
				ratio := float64(e.FeatureMaps) / float64(e.Weights)
				return fmt.Sprintf("Inception-v3 b64: maps/model = %.0fx", ratio), ratio > 10, nil
			},
		},
		{
			claim: "Weak scaling beats strong scaling, most for LeNet (V-E)",
			run: func() (string, bool, error) {
				strong, err := runOne("lenet", 8, 32, kvstore.MethodP2P, opt.Images)
				if err != nil {
					return "", false, err
				}
				weak, err := runOne("lenet", 8, 32, kvstore.MethodP2P, opt.Images*8)
				if err != nil {
					return "", false, err
				}
				adv := 100 * (1 - (weak.EpochTime.Seconds()/8)/strong.EpochTime.Seconds())
				return fmt.Sprintf("LeNet 8 GPUs b32: weak %.1f%% better per 256K", adv), adv > 0, nil
			},
		},
		{
			claim: "Raising interconnect bandwidth alone cannot remove the bottleneck (VI)",
			run: func() (string, bool, error) {
				run := func(top *topology.Topology) (*train.Result, error) {
					cfg, err := train.NewConfig("lenet", 8, 16, kvstore.MethodNCCL)
					if err != nil {
						return nil, err
					}
					cfg.Images = opt.Images
					cfg.Topology = top
					tr, err := train.New(cfg)
					if err != nil {
						return nil, err
					}
					return tr.Run()
				}
				base, err := run(topology.DGX1())
				if err != nil {
					return "", false, err
				}
				fat, err := run(topology.DGX1Scaled(4))
				if err != nil {
					return "", false, err
				}
				cut := 100 * (1 - fat.WUWall.Seconds()/base.WUWall.Seconds())
				return fmt.Sprintf("4x NVLink removes only %.1f%% of LeNet's WU wall", cut),
					cut < 30, nil
			},
		},
	}

	checks = append(checks,
		check{
			claim: "Workloads with more weights per layer scale WU best: AlexNet ideal (V-C)",
			run: func() (string, bool, error) {
				// Per-epoch WU at 2 vs 8 GPUs: AlexNet (7.6M weights/layer
				// average) should shrink by a larger factor than LeNet
				// (12K/layer).
				wu := func(model string, g int) (float64, error) {
					r, err := runOne(model, g, 16, kvstore.MethodNCCL, opt.Images)
					if err != nil {
						return 0, err
					}
					return r.WUWall.Seconds(), nil
				}
				a2, err := wu("alexnet", 2)
				if err != nil {
					return "", false, err
				}
				a8, err := wu("alexnet", 8)
				if err != nil {
					return "", false, err
				}
				l2, err := wu("lenet", 2)
				if err != nil {
					return "", false, err
				}
				l8, err := wu("lenet", 8)
				if err != nil {
					return "", false, err
				}
				af, lf := a2/a8, l2/l8
				return fmt.Sprintf("WU shrink 2->8 GPUs: AlexNet %.1fx, LeNet %.1fx", af, lf),
					af > lf, nil
			},
		},
		check{
			claim: "GPU0 is the multi-GPU bottleneck under P2P (V-A, IV-D)",
			run: func() (string, bool, error) {
				r, err := runOne("resnet", 4, 16, kvstore.MethodP2P, opt.Images)
				if err != nil {
					return "", false, err
				}
				g0 := r.GPUComputeBusy[0]
				busiest := true
				for d, f := range r.GPUComputeBusy {
					if d != 0 && f > g0 {
						busiest = false
					}
				}
				return fmt.Sprintf("GPU0 compute busy %.0f%%, workers less", 100*g0), busiest, nil
			},
		},
		check{
			claim: "NCCL overhead amortizes via pipelining with enough transfers (V-B)",
			run: func() (string, bool, error) {
				// The per-layer exchange count is what NCCL amortizes over:
				// Inception-v3 (189 arrays) keeps its 1-GPU overhead far
				// below LeNet's (10 arrays) in relative terms.
				ov := func(model string) (float64, error) {
					p, err := epoch(model, 1, 16, kvstore.MethodP2P)
					if err != nil {
						return 0, err
					}
					n, err := epoch(model, 1, 16, kvstore.MethodNCCL)
					if err != nil {
						return 0, err
					}
					return 100 * (n.Seconds() - p.Seconds()) / p.Seconds(), nil
				}
				le, err := ov("lenet")
				if err != nil {
					return "", false, err
				}
				inc, err := ov("inception-v3")
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("1-GPU overhead: LeNet %.1f%%, Inception-v3 %.1f%%", le, inc),
					inc < le/3, nil
			},
		},
	)

	for i, c := range checks {
		evidence, ok, err := c.run()
		if err != nil {
			return nil, fmt.Errorf("insight %d: %w", i+1, err)
		}
		verdict := "yes"
		if !ok {
			verdict = "NO"
		}
		t.AddRow(fmt.Sprintf("%d", i+1), c.claim, evidence, verdict)
	}
	return []*report.Table{t}, nil
}
