package experiments

import (
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/kvstore"
	"repro/internal/models"
	"repro/internal/profiler"
	"repro/internal/report"
	"repro/internal/topology"
	"repro/internal/train"
)

// Fig2 reproduces Figure 2: the DGX-1 topology, rendered as the node/link
// inventory, nvidia-smi-style adjacency, and the routed bandwidth matrix.
func Fig2(opt Options) ([]*report.Table, error) {
	top := topology.DGX1()
	if err := top.Validate(); err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 2: DGX-1 NVLink adjacency (NV1/NV2 = 1/2 bonded links, PIX = PCIe only)")
	t.Columns = append([]string{""}, func() []string {
		var c []string
		for _, g := range top.GPUs() {
			c = append(c, fmt.Sprintf("G%d", g))
		}
		return c
	}()...)
	for _, a := range top.GPUs() {
		row := []string{fmt.Sprintf("G%d", a)}
		for _, b := range top.GPUs() {
			switch {
			case a == b:
				row = append(row, "X")
			default:
				if l := top.DirectLink(a, b, topology.NVLink); l != nil {
					row = append(row, fmt.Sprintf("NV%d", l.Lanes))
				} else {
					row = append(row, "PIX")
				}
			}
		}
		t.AddRow(row...)
	}

	bw := report.NewTable("Routed GPU-to-GPU bottleneck bandwidth (staged NVLink policy, GB/s)")
	bw.Columns = t.Columns
	m, err := top.BandwidthMatrix(topology.RouteStagedNVLink)
	if err != nil {
		return nil, err
	}
	for i, a := range top.GPUs() {
		row := []string{fmt.Sprintf("G%d", a)}
		for j := range top.GPUs() {
			if i == j {
				row = append(row, "-")
			} else {
				row = append(row, report.F(float64(m[i][j])/float64(1<<30), 0))
			}
		}
		bw.AddRow(row...)
	}
	bw.AddNote("every pair reachable within two NVLink hops; PCIe fallback available via host CPUs")
	return []*report.Table{t, bw}, nil
}

// trackStage keys per-track, per-stage aggregation for Fig1.
type trackStage struct {
	track string
	stage profiler.Stage
}

// Fig1 reproduces Figure 1's timeline: it runs GoogLeNet on 4 GPUs with a
// detailed profile and summarizes the first iterations' activity per track
// and stage. cmd/trace exports the same run as a Chrome trace for visual
// inspection.
func Fig1(opt Options) ([]*report.Table, error) {
	opt.normalize()
	cfg, err := train.NewConfig("googlenet", 4, 16, kvstore.MethodNCCL)
	if err != nil {
		return nil, err
	}
	cfg.Images = opt.Images
	cfg.DetailIntervals = 200000
	tr, err := train.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := tr.Run()
	if err != nil {
		return nil, err
	}
	busy := map[trackStage]time.Duration{}
	count := map[trackStage]int{}
	for _, iv := range res.Profile.Intervals() {
		k := trackStage{iv.Track, iv.Stage}
		busy[k] += iv.Duration()
		count[k]++
	}
	t := report.NewTable("Figure 1: per-track activity in the simulated window (GoogLeNet, 4 GPUs, NCCL)",
		"Track", "Stage", "Activities", "Busy time")
	for _, track := range sortedTracks(busy) {
		for _, st := range []profiler.Stage{profiler.StageFP, profiler.StageBP, profiler.StageWU, profiler.StageDataLoad, profiler.StageOther} {
			k := trackStage{track, st}
			if count[k] == 0 {
				continue
			}
			t.AddRow(track, st.String(), fmt.Sprintf("%d", count[k]), fmtDur(busy[k]))
		}
	}
	t.AddNote("steady iteration %v: FP %v, BP %v, exposed WU %v; export the full timeline with cmd/trace",
		fmtDur(res.SteadyIter),
		fmtDur(res.FPWall/time.Duration(res.Iterations)),
		fmtDur(res.BPWall/time.Duration(res.Iterations)),
		fmtDur(res.WUWall/time.Duration(res.Iterations)))
	return []*report.Table{t}, nil
}

func sortedTracks(m map[trackStage]time.Duration) []string {
	seen := map[string]bool{}
	var out []string
	for key := range m {
		if !seen[key.track] {
			seen[key.track] = true
			out = append(out, key.track)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Fig3 reproduces Figure 3: training time per epoch for the five networks,
// both methods, batch sizes 16/32/64 and 1/2/4/8 GPUs, as mean ± std over
// repetitions.
func Fig3(opt Options) ([]*report.Table, error) {
	opt.normalize()
	type cfg struct {
		model  string
		method kvstore.Method
		batch  int
		gpus   int
	}
	var cfgs []cfg
	for _, m := range ModelNames {
		for _, method := range Methods {
			for _, b := range Batches {
				for _, g := range GPUCounts {
					cfgs = append(cfgs, cfg{m, method, b, g})
				}
			}
		}
	}
	cells, err := parMap(opt, len(cfgs), func(i int) (string, error) {
		c := cfgs[i]
		ms, err := measure(opt, c.model, c.gpus, c.batch, c.method, opt.Images)
		if err != nil {
			return "", err
		}
		return ms.sample.String(), nil
	})
	if err != nil {
		return nil, err
	}
	var out []*report.Table
	k := 0
	for _, m := range ModelNames {
		d, err := models.ByName(m)
		if err != nil {
			return nil, err
		}
		for _, method := range Methods {
			t := report.NewTable(
				fmt.Sprintf("Figure 3: %s with %s — training time per epoch (mean ± std of %d reps)",
					d.Name, method, opt.Repetitions),
				"Batch Size", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs")
			for _, b := range Batches {
				row := []string{fmt.Sprintf("%d", b)}
				for range GPUCounts {
					row = append(row, cells[k])
					k++
				}
				t.AddRow(row...)
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// Fig4 reproduces Figure 4: the decomposition of epoch time into
// computation (FP+BP) and exposed communication (WU) under NCCL.
func Fig4(opt Options) ([]*report.Table, error) {
	opt.normalize()
	type cfg struct {
		model       string
		gpus, batch int
	}
	var cfgs []cfg
	for _, m := range ModelNames {
		for _, g := range GPUCounts {
			for _, b := range Batches {
				cfgs = append(cfgs, cfg{m, g, b})
			}
		}
	}
	results, err := parMap(opt, len(cfgs), func(i int) (*train.Result, error) {
		c := cfgs[i]
		return runOne(c.model, c.gpus, c.batch, kvstore.MethodNCCL, opt.Images)
	})
	if err != nil {
		return nil, err
	}
	var out []*report.Table
	k := 0
	for _, m := range ModelNames {
		d, err := models.ByName(m)
		if err != nil {
			return nil, err
		}
		t := report.NewTable(
			fmt.Sprintf("Figure 4: %s (NCCL) — epoch time breakdown", d.Name),
			"GPUs", "Batch", "FP+BP", "WU", "WU share (%)")
		for _, g := range GPUCounts {
			for _, b := range Batches {
				r := results[k]
				k++
				wu := fmtDur(r.WUWall)
				share := report.F(100*float64(r.WUWall)/float64(r.EpochTime), 1)
				if g == 1 {
					// The paper does not report single-GPU WU (it is ~two
					// orders below FP+BP).
					wu, share = "-", "-"
				}
				t.AddRow(fmt.Sprintf("%d", g), fmt.Sprintf("%d", b),
					fmtDur(r.FPBPWall()), wu, share)
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig5 reproduces Figure 5: weak scaling — the dataset grows with GPU
// count (256K images per GPU) and the per-256K-image time is compared with
// strong scaling.
func Fig5(opt Options) ([]*report.Table, error) {
	opt.normalize()
	type cfg struct {
		model       string
		method      kvstore.Method
		batch, gpus int
	}
	type pair struct {
		weak, strong *train.Result
	}
	var cfgs []cfg
	for _, m := range ModelNames {
		for _, method := range Methods {
			for _, b := range Batches {
				for _, g := range GPUCounts {
					cfgs = append(cfgs, cfg{m, method, b, g})
				}
			}
		}
	}
	results, err := parMap(opt, len(cfgs), func(i int) (pair, error) {
		c := cfgs[i]
		weakImages := data.EffectiveImages(opt.Images, c.gpus, data.WeakScaling)
		weak, err := runOne(c.model, c.gpus, c.batch, c.method, weakImages)
		if err != nil {
			return pair{}, err
		}
		strong, err := runOne(c.model, c.gpus, c.batch, c.method, opt.Images)
		if err != nil {
			return pair{}, err
		}
		return pair{weak, strong}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []*report.Table
	k := 0
	for _, m := range ModelNames {
		d, err := models.ByName(m)
		if err != nil {
			return nil, err
		}
		for _, method := range Methods {
			t := report.NewTable(
				fmt.Sprintf("Figure 5: %s with %s — weak scaling", d.Name, method),
				"Batch", "GPUs", "Total epoch (weak)", "Per-256K (weak)", "Per-256K (strong)", "Weak advantage (%)")
			for _, b := range Batches {
				for _, g := range GPUCounts {
					r := results[k]
					k++
					per := r.weak.EpochTime / time.Duration(g)
					adv := 100 * (1 - float64(per)/float64(r.strong.EpochTime))
					t.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%d", g),
						fmtDur(r.weak.EpochTime), fmtDur(per), fmtDur(r.strong.EpochTime),
						report.F(adv, 1))
				}
			}
			out = append(out, t)
		}
	}
	return out, nil
}
