package experiments

import "testing"

// Every insight check must hold — this is the repository's conformance
// gate against the paper's stated findings.
func TestAllInsightsHold(t *testing.T) {
	tabs, err := Insights(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows()
	if len(rows) != 13 {
		t.Fatalf("insights = %d, want 13", len(rows))
	}
	for _, r := range rows {
		if r[3] != "yes" {
			t.Errorf("insight %s does not hold: %s (%s)", r[0], r[1], r[2])
		}
	}
}
