package experiments

import (
	"fmt"

	"repro/internal/kvstore"
	"repro/internal/memmodel"
	"repro/internal/models"
	"repro/internal/report"
	"repro/internal/train"
	"repro/internal/units"
)

// Table1 reproduces Table I: the structure and weight counts of the five
// networks, derived from the model zoo's layer graphs.
func Table1(opt Options) ([]*report.Table, error) {
	t := report.NewTable("Table I: Description of the networks",
		"Network", "Layers", "Conv Layers", "Incep Layers", "FC Layers", "Weights")
	for _, d := range models.All() {
		layers := fmt.Sprintf("%d", d.Depth)
		conv := fmt.Sprintf("%d", d.ConvLayers)
		if d.Residual {
			conv += " (residual)"
		}
		t.AddRow(d.Name, layers, conv,
			fmt.Sprintf("%d", d.InceptionModules),
			fmt.Sprintf("%d", d.FCLayers),
			fmt.Sprintf("%d", d.Params))
	}
	t.AddNote("weights derive from the layer graphs; LeNet ~61.7K, AlexNet ~61M, GoogLeNet ~7.0M, Inception-v3 ~23.8M, ResNet-50 ~25.6M")
	return []*report.Table{t}, nil
}

// Table2 reproduces Table II: the extra cost of routing single-GPU training
// through NCCL's collective kernels instead of plain P2P code paths.
func Table2(opt Options) ([]*report.Table, error) {
	opt.normalize()
	t := report.NewTable("Table II: NCCL overhead compared to P2P on a single GPU",
		"Network", "Batch Size", "P2P epoch", "NCCL epoch", "NCCL Overhead (%)")
	type cfg struct {
		model string
		batch int
	}
	type pair struct {
		p, n *train.Result
	}
	var cfgs []cfg
	for _, m := range ModelNames {
		for _, b := range Batches {
			cfgs = append(cfgs, cfg{m, b})
		}
	}
	results, err := parMap(opt, len(cfgs), func(i int) (pair, error) {
		c := cfgs[i]
		p, err := runOne(c.model, 1, c.batch, kvstore.MethodP2P, opt.Images)
		if err != nil {
			return pair{}, err
		}
		n, err := runOne(c.model, 1, c.batch, kvstore.MethodNCCL, opt.Images)
		if err != nil {
			return pair{}, err
		}
		return pair{p, n}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cfgs {
		p, n := results[i].p, results[i].n
		ov := 100 * (n.EpochTime.Seconds() - p.EpochTime.Seconds()) / p.EpochTime.Seconds()
		d, _ := models.ByName(c.model)
		t.AddRow(d.Name, fmt.Sprintf("%d", c.batch),
			fmtDur(p.EpochTime), fmtDur(n.EpochTime), report.F(ov, 1))
	}
	t.AddNote("paper anchor: LeNet batch 16 = 21.8%%; overhead grows with batch for the small networks, varies <3.6pp for the large ones")
	return []*report.Table{t}, nil
}

// Table3 reproduces Table III: cudaStreamSynchronize share for LeNet across
// batch sizes and GPU counts.
func Table3(opt Options) ([]*report.Table, error) {
	opt.normalize()
	t := report.NewTable("Table III: cudaStreamSynchronize API overhead, LeNet",
		"Batch Size", "GPU Count", "Time (%)")
	type cfg struct {
		batch, gpus int
	}
	var cfgs []cfg
	for _, b := range Batches {
		for _, g := range GPUCounts {
			cfgs = append(cfgs, cfg{b, g})
		}
	}
	results, err := parMap(opt, len(cfgs), func(i int) (*train.Result, error) {
		return runOne("lenet", cfgs[i].gpus, cfgs[i].batch, kvstore.MethodNCCL, opt.Images)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cfgs {
		t.AddRow(fmt.Sprintf("%d", c.batch), fmt.Sprintf("%d", c.gpus), report.F(results[i].SyncPercent, 1))
	}
	t.AddNote("share of per-GPU wall time blocked in cudaStreamSynchronize; grows with GPU count, shrinks with batch size")
	return []*report.Table{t}, nil
}

// Table4 reproduces Table IV: per-GPU memory during pre-training and
// training with 4 GPUs (NCCL), including GPU 0's aggregation premium and
// growth relative to batch 16.
func Table4(opt Options) ([]*report.Table, error) {
	t := report.NewTable("Table IV: memory usage (4 GPUs, NCCL-based communication)",
		"Network", "Batch", "Pre-training GPUz", "Training GPU0", "Training GPUx",
		"Additional GPU0 vs GPUx (%)", "Increase vs batch 16 (%)")
	for _, m := range ModelNames {
		d, err := models.ByName(m)
		if err != nil {
			return nil, err
		}
		base := memmodel.Compute(d.Net, Batches[0], true)
		for _, b := range Batches {
			e := memmodel.Compute(d.Net, b, true)
			inc := 100 * (float64(e.Root())/float64(base.Root()) - 1)
			t.AddRow(d.Name, fmt.Sprintf("%d", b),
				fmt.Sprintf("%.2f", e.PreTraining.GiB()),
				fmt.Sprintf("%.2f", e.Root().GiB()),
				fmt.Sprintf("%.2f", e.Worker().GiB()),
				report.F(e.RootPremiumPercent(), 1),
				report.F(inc, 1))
		}
	}
	t.AddNote("values in GiB; paper anchors: AlexNet b64 GPU0 ~2.37GB, Inception-v3 b64 GPU0 ~11GB")

	oom := report.NewTable("Trainability boundary on 16GB V100s (paper §V-D)",
		"Network", "Max per-GPU batch (of 16..256)")
	cands := []int{16, 32, 64, 128, 256}
	for _, m := range ModelNames {
		d, _ := models.ByName(m)
		mb := memmodel.MaxBatch(d.Net, true, 16*units.GB, cands)
		oom.AddRow(d.Name, fmt.Sprintf("%d", mb))
	}
	oom.AddNote("paper: Inception-v3 and ResNet cannot train beyond 64, GoogLeNet beyond 128")
	return []*report.Table{t, oom}, nil
}
