// Package experiments reproduces every table and figure of the paper's
// evaluation: each experiment programmatically sweeps the configurations
// the paper measured and renders the same rows/series the paper reports.
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/kvstore"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/train"
)

// Options tunes an experiment run.
type Options struct {
	// Repetitions per configuration (the paper uses 5). The first
	// repetition is the exact simulated value; the rest add seeded
	// run-to-run jitter.
	Repetitions int
	// Seed drives the jitter source.
	Seed int64
	// JitterRel is the relative standard deviation of run-to-run noise.
	JitterRel float64
	// Images overrides the strong-scaling dataset size (0 = the paper's
	// 256K). Benchmarks use a smaller value where only shape matters.
	Images int64
	// Workers bounds the worker pool the sweeps fan out on (0 = NumCPU,
	// 1 = sequential). Results are collected by configuration index, so
	// every worker count renders byte-identical tables.
	Workers int
}

func (o *Options) normalize() {
	if o.Repetitions <= 0 {
		o.Repetitions = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.JitterRel == 0 {
		o.JitterRel = 0.015
	}
	if o.Images <= 0 {
		o.Images = data.PaperDatasetImages
	}
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the paper artifact identifier, e.g. "fig3" or "table2".
	ID string
	// Title describes the artifact.
	Title string
	// Desc is the one-line summary `experiments -list` prints under the
	// title: what the run sweeps and what its tables show.
	Desc string
	// Run executes the sweep and renders its tables.
	Run func(Options) ([]*report.Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: description of the networks",
			Desc: "static model census: layers, parameter bytes, and per-image FLOPs for the five networks",
			Run:  Table1},
		{ID: "fig1", Title: "Figure 1: multi-GPU training timeline (one epoch start)",
			Desc: "one epoch's FP/BP/WU lanes per GPU, showing the synchronized start the paper traces",
			Run:  Fig1},
		{ID: "fig2", Title: "Figure 2: DGX-1 network topology",
			Desc: "the 8-GPU NVLink hybrid cube-mesh: link table, hop counts, and bisection bandwidth",
			Run:  Fig2},
		{ID: "fig3", Title: "Figure 3: training time per epoch, P2P vs NCCL",
			Desc: "epoch-time sweep over model x GPUs x batch for both update methods",
			Run:  Fig3},
		{ID: "table2", Title: "Table II: NCCL overhead vs P2P on a single GPU",
			Desc: "single-GPU penalty of routing updates through NCCL when no transfer is needed",
			Run:  Table2},
		{ID: "fig4", Title: "Figure 4: training time breakdown into FP+BP and WU",
			Desc: "where the epoch goes: compute vs exposed weight update, per model and GPU count",
			Run:  Fig4},
		{ID: "table3", Title: "Table III: cudaStreamSynchronize overhead for LeNet",
			Desc: "sync-call share of small-model epochs, the paper's LeNet bottleneck diagnosis",
			Run:  Table3},
		{ID: "table4", Title: "Table IV: memory usage, pre-training and training",
			Desc: "per-GPU memory footprint before and during training across the sweep",
			Run:  Table4},
		{ID: "fig5", Title: "Figure 5: weak scaling",
			Desc: "fixed per-GPU batch scaling, where communication growth erodes the ideal slope",
			Run:  Fig5},
		{ID: "insights", Title: "Conformance: the paper's stated insights, re-checked",
			Desc: "each prose claim in the paper re-evaluated against the simulator, pass/fail",
			Run:  Insights},
		{ID: "optimizations", Title: "Extension: post-paper remedies (bucketing, tree algorithm)",
			Desc: "gradient bucketing and tree reductions applied to the paper's worst cases",
			Run:  Optimizations},
		{ID: "layers", Title: "Extension: layer-by-layer roofline characterization",
			Desc: "per-layer arithmetic intensity and roofline placement for every network",
			Run:  Layers},
		{ID: "hardware", Title: "Extension: hardware generations and transport baselines",
			Desc: "the same sweep on Pascal, PCIe-only, and NVSwitch machines plus a CPU parameter server",
			Run:  Hardware},
		{ID: "crossover", Title: "Extension: P2P-vs-NCCL crossover across hardware generations",
			Desc: "the paper's method comparison re-run on the DGX-2's NVSwitch crossbar, plus the NCCL protocol ladder",
			Run:  Crossover},
		{ID: "resilience", Title: "Extension: training under injected fabric faults",
			Desc: "severity ladder of link failures, stragglers, and PCIe contention on one node's epoch",
			Run:  Resilience},
		{ID: "fleet", Title: "Extension: multi-tenant fleet scheduling over simulated DGX-1s",
			Desc: "placement policy x fleet size x fault severity over a PAI-style job trace; JCT tails and queue discipline",
			Run:  Fleet},
		{ID: "optimize", Title: "Extension: Pareto frontier of configuration vs GPU cost",
			Desc: "resnet searched over GPUs x batch x method: the non-dominated epoch-time and throughput/GPU frontiers under the 16 GiB cap",
			Run:  Optimize},
	}
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// Paper sweep axes.
var (
	// ModelNames in the paper's presentation order.
	ModelNames = []string{"lenet", "alexnet", "resnet", "googlenet", "inception-v3"}
	// Batches the paper sweeps.
	Batches = []int{16, 32, 64}
	// GPUCounts the paper sweeps.
	GPUCounts = []int{1, 2, 4, 8}
	// Methods the paper compares.
	Methods = []kvstore.Method{kvstore.MethodP2P, kvstore.MethodNCCL}
)

// parMap fans an n-configuration sweep out on a bounded worker pool
// (the same pool implementation that backs cmd/dgxsimd) and returns the
// results in index order. Completion order never leaks into the output,
// so the parallel sweep renders byte-identically to a sequential one —
// determinism_test.go and parallel_test.go hold it to that.
func parMap[T any](opt Options, n int, fn func(i int) (T, error)) ([]T, error) {
	p := service.NewPool(opt.Workers)
	defer p.Close()
	return service.MapIndexed(context.Background(), p, n, fn)
}

// runOne simulates a single configuration through the core artifact
// layer, so a sweep revisiting a configuration (or only varying the
// dataset size) reuses its compiled window instead of re-simulating it.
func runOne(model string, gpus, batch int, method kvstore.Method, images int64) (*train.Result, error) {
	return core.Simulate(core.Workload{Model: model, GPUs: gpus, Batch: batch, Method: method, Images: images})
}

// measured is one configuration's repeated-run summary.
type measured struct {
	res    *train.Result
	sample stats.Sample
}

// measure runs a configuration and expands it to the repeated-run summary
// the paper's error bars come from.
func measure(opt Options, model string, gpus, batch int, method kvstore.Method, images int64) (measured, error) {
	res, err := runOne(model, gpus, batch, method, images)
	if err != nil {
		return measured{}, err
	}
	j := sim.NewJitter(opt.Seed^int64(gpus*1000+batch), opt.JitterRel)
	reps := stats.Repetitions(res.EpochTime, j, opt.Repetitions)
	return measured{res: res, sample: stats.Summarize(reps)}, nil
}

// fmtDur renders a duration rounded for table cells.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(100 * time.Millisecond).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	default:
		return d.Round(100 * time.Microsecond).String()
	}
}
