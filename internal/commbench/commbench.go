// Package commbench is the simulator's nccl-tests analog: it times the raw
// communication primitives — NCCL collectives and P2P tree equivalents —
// across message sizes and GPU counts, reporting algorithm and bus
// bandwidth. It isolates the transport behaviour that the training-level
// results (the paper's Figure 3) are built from.
package commbench

import (
	"fmt"
	"time"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/interconnect"
	"repro/internal/kvstore"
	"repro/internal/nccl"
	"repro/internal/p2p"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// Op names a collective pattern.
type Op string

// Benchmarked operations. AllReduce is gradient aggregation; Broadcast is
// weight distribution — the two WU-stage primitives.
const (
	AllReduce Op = "allreduce"
	Broadcast Op = "broadcast"
)

// Point is one measured configuration.
type Point struct {
	Op     Op
	Method kvstore.Method
	GPUs   int
	Size   units.Bytes
	// Time is the end-to-end completion of one operation issued at t=0 on
	// idle hardware.
	Time time.Duration
	// AlgBW is size/time — what the caller experiences.
	AlgBW units.Bandwidth
	// BusBW normalizes AlgBW by the algorithm's traffic factor (2(n-1)/n
	// for ring all-reduce), nccl-tests' hardware-comparable metric.
	BusBW units.Bandwidth
}

// DefaultSizes is a logarithmic sweep from 4KB to 256MB.
func DefaultSizes() []units.Bytes {
	var out []units.Bytes
	for s := 4 * units.KB; s <= 256*units.MB; s *= 4 {
		out = append(out, s)
	}
	return out
}

// Measure times one operation on a fresh, idle DGX-1.
func Measure(op Op, method kvstore.Method, gpus int, size units.Bytes) (Point, error) {
	return MeasureBurst(op, method, gpus, size, 1)
}

// MeasureBurst times `count` operations of the given size issued
// back-to-back (all inputs ready at t=0) and reports the END-TO-END time of
// the burst with per-op averages in the bandwidth fields. Bursts expose the
// pipelining structure training exercises: the P2P chains of different
// arrays overlap freely across links and copy engines, while NCCL
// collectives serialize on the communicator's stream.
func MeasureBurst(op Op, method kvstore.Method, gpus int, size units.Bytes, count int) (Point, error) {
	if gpus < 1 || gpus > 8 {
		return Point{}, fmt.Errorf("commbench: gpu count %d out of range", gpus)
	}
	if count < 1 {
		return Point{}, fmt.Errorf("commbench: burst count %d out of range", count)
	}
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	devs := make([]topology.NodeID, gpus)
	for i := range devs {
		devs[i] = topology.NodeID(i)
	}
	rt, err := cuda.NewRuntime(fab, gpu.V100(), devs, cuda.DefaultCosts(), profiler.New())
	if err != nil {
		return Point{}, err
	}

	var end time.Duration
	switch method {
	case kvstore.MethodNCCL:
		comm, err := nccl.New(rt, devs, nccl.DefaultConfig())
		if err != nil {
			return Point{}, err
		}
		for i := 0; i < count; i++ {
			var e time.Duration
			switch op {
			case AllReduce:
				e = comm.AllReduce(profiler.StageWU, size, 0)
			case Broadcast:
				e = comm.Broadcast(profiler.StageWU, size, devs[0], 0)
			default:
				return Point{}, fmt.Errorf("commbench: unknown op %q", op)
			}
			if e > end {
				end = e
			}
		}
	case kvstore.MethodP2P:
		eng2, err := p2p.New(rt, devs)
		if err != nil {
			return Point{}, err
		}
		for i := 0; i < count; i++ {
			var e time.Duration
			switch op {
			case AllReduce:
				// The P2P equivalent of all-reduce: tree reduce to the
				// root then broadcast back (what the device kvstore does
				// per key).
				mid, err := eng2.ReduceToRoot(profiler.StageWU, size, 0)
				if err != nil {
					return Point{}, err
				}
				e, err = eng2.BroadcastFromRoot(profiler.StageWU, size, mid)
				if err != nil {
					return Point{}, err
				}
			case Broadcast:
				e, err = eng2.BroadcastFromRoot(profiler.StageWU, size, 0)
				if err != nil {
					return Point{}, err
				}
			default:
				return Point{}, fmt.Errorf("commbench: unknown op %q", op)
			}
			if e > end {
				end = e
			}
		}
	default:
		return Point{}, fmt.Errorf("commbench: unknown method %q", method)
	}

	p := Point{Op: op, Method: method, GPUs: gpus, Size: size * units.Bytes(count), Time: end}
	if end > 0 {
		p.AlgBW = units.Bandwidth(float64(size) / end.Seconds())
		factor := 1.0
		if op == AllReduce && gpus > 1 {
			factor = 2 * float64(gpus-1) / float64(gpus)
		}
		p.BusBW = units.Bandwidth(float64(p.AlgBW) * factor)
	}
	return p, nil
}

// Sweep measures every (size x method) combination for one op and GPU
// count, sizes ascending, methods in kvstore order.
func Sweep(op Op, gpus int, sizes []units.Bytes) ([]Point, error) {
	var out []Point
	for _, size := range sizes {
		for _, m := range []kvstore.Method{kvstore.MethodP2P, kvstore.MethodNCCL} {
			p, err := Measure(op, m, gpus, size)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// CrossoverBurst is the per-layer op count used by Crossover, roughly a
// small network's weighted-array count.
const CrossoverBurst = 16

// Crossover returns the smallest sweep size at which a burst of NCCL
// all-reduces beats the equivalent P2P burst for the GPU count, or 0 if it
// never does — the array-size boundary behind the paper's "P2P for small
// networks, NCCL for large" guidance. Bursts (not single ops) are the
// training-relevant comparison: per-layer P2P chains overlap, NCCL
// collectives serialize on their stream.
func Crossover(gpus int, sizes []units.Bytes) (units.Bytes, error) {
	for _, size := range sizes {
		pp, err := MeasureBurst(AllReduce, kvstore.MethodP2P, gpus, size, CrossoverBurst)
		if err != nil {
			return 0, err
		}
		nc, err := MeasureBurst(AllReduce, kvstore.MethodNCCL, gpus, size, CrossoverBurst)
		if err != nil {
			return 0, err
		}
		if nc.Time < pp.Time {
			return size, nil
		}
	}
	return 0, nil
}
