package commbench

import (
	"testing"

	"repro/internal/kvstore"
	"repro/internal/units"
)

func TestMeasureBasics(t *testing.T) {
	p, err := Measure(AllReduce, kvstore.MethodNCCL, 4, 16*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if p.Time <= 0 || p.AlgBW <= 0 || p.BusBW <= p.AlgBW {
		t.Errorf("bad point: %+v", p)
	}
	// Bus bandwidth cannot exceed the communicator's aggregate ring
	// bandwidth (25 GB/s for the 4-GPU quad) by construction.
	if p.BusBW > 26*units.GBPerSec {
		t.Errorf("4-GPU bus BW %v exceeds the quad ring's 25GB/s", p.BusBW)
	}
}

func TestBandwidthGrowsWithSize(t *testing.T) {
	small, err := Measure(AllReduce, kvstore.MethodNCCL, 8, 64*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Measure(AllReduce, kvstore.MethodNCCL, 8, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if big.AlgBW <= small.AlgBW {
		t.Errorf("large messages should achieve more bandwidth: %v vs %v", big.AlgBW, small.AlgBW)
	}
}

func TestEightGPUBusBWApproachesRings(t *testing.T) {
	p, err := Measure(AllReduce, kvstore.MethodNCCL, 8, 256*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	// Two 25GB/s rings: asymptotic bus bandwidth ~50GB/s; a large message
	// should get most of it.
	if p.BusBW < 35*units.GBPerSec {
		t.Errorf("8-GPU large-message bus BW = %v, want approaching 50GB/s", p.BusBW)
	}
}

// Transport-only crossover structure: at 2 GPUs (one bonded link, a
// single-hop P2P tree) P2P's direct copies beat the ring until messages
// get large; at 8 GPUs the two pipelined rings win at every size. The
// training-level "P2P wins LeNet everywhere" result is therefore NOT a
// transport effect — it is NCCL's per-session setup cost failing to
// amortize over short epochs, exactly the paper's explanation.
func TestCrossoverStructure(t *testing.T) {
	sizes := DefaultSizes()
	cross2, err := Crossover(2, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if cross2 == 0 {
		t.Fatal("NCCL should eventually beat P2P at 2 GPUs")
	}
	if cross2 <= sizes[0] {
		t.Errorf("P2P should win small bursts at 2 GPUs, crossover at %v", cross2)
	}
	cross8, err := Crossover(8, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if cross8 >= cross2 {
		t.Errorf("NCCL should overtake earlier with more GPUs: 2-GPU %v vs 8-GPU %v", cross2, cross8)
	}
	// Below the 2-GPU crossover the ordering actually flips.
	pSmall, err := MeasureBurst(AllReduce, kvstore.MethodP2P, 2, sizes[0], CrossoverBurst)
	if err != nil {
		t.Fatal(err)
	}
	nSmall, err := MeasureBurst(AllReduce, kvstore.MethodNCCL, 2, sizes[0], CrossoverBurst)
	if err != nil {
		t.Fatal(err)
	}
	if pSmall.Time >= nSmall.Time {
		t.Errorf("P2P burst (%v) should beat NCCL burst (%v) at %v", pSmall.Time, nSmall.Time, sizes[0])
	}
}

func TestBurstValidation(t *testing.T) {
	if _, err := MeasureBurst(AllReduce, kvstore.MethodNCCL, 2, units.MB, 0); err == nil {
		t.Error("zero burst should error")
	}
}

func TestSweepShape(t *testing.T) {
	sizes := []units.Bytes{units.MB, 4 * units.MB}
	pts, err := Sweep(Broadcast, 4, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	for _, p := range pts {
		if p.Op != Broadcast || p.GPUs != 4 {
			t.Errorf("bad point %+v", p)
		}
	}
}

func TestMeasureValidation(t *testing.T) {
	if _, err := Measure(AllReduce, kvstore.MethodNCCL, 0, units.MB); err == nil {
		t.Error("0 GPUs should error")
	}
	if _, err := Measure("scatter", kvstore.MethodNCCL, 2, units.MB); err == nil {
		t.Error("unknown op should error")
	}
	if _, err := Measure(AllReduce, "mpi", 2, units.MB); err == nil {
		t.Error("unknown method should error")
	}
}

func TestDefaultSizesAscending(t *testing.T) {
	sizes := DefaultSizes()
	if len(sizes) < 5 {
		t.Fatalf("too few sizes: %d", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("sizes not ascending")
		}
	}
}
