package sim

import (
	"math/rand"
	"time"
)

// Jitter is a seeded source of small multiplicative noise. The paper reports
// each configuration as the mean of 5 runs with a standard deviation bar;
// the simulator reproduces run-to-run variance with this explicit,
// replayable source rather than hidden global randomness.
type Jitter struct {
	rng *rand.Rand
	// rel is the relative standard deviation applied by Scale, e.g. 0.01
	// for ~1% noise.
	rel float64
}

// NewJitter returns a jitter source with the given seed and relative
// standard deviation. rel <= 0 disables noise entirely (Scale returns its
// input), which keeps unit tests exact.
func NewJitter(seed int64, rel float64) *Jitter {
	return &Jitter{rng: rand.New(rand.NewSource(seed)), rel: rel}
}

// minFactor is the lower clamp every perturbation factor shares: a rare
// deep-negative normal sample can make (1 + N(0, rel)) arbitrarily small
// or negative, and a duration scaled by such a factor would be
// nonsensical. Clamping at 0.5 keeps every factor strictly positive and
// bounds the speed-up any single sample can fake at 2x. Scale and Factor
// MUST clamp identically — both go through clampFactor — so a duration
// scaled via Scale equals the same duration multiplied by Factor for the
// same draw.
const minFactor = 0.5

// clampFactor applies the shared lower bound.
func clampFactor(f float64) float64 {
	if f < minFactor {
		return minFactor
	}
	return f
}

// Scale perturbs d by a normally-distributed factor (1 + N(0, rel)),
// clamped below at minFactor (0.5). With rel <= 0 it is the identity.
func (j *Jitter) Scale(d time.Duration) time.Duration {
	if j == nil || j.rel <= 0 || d <= 0 {
		return d
	}
	return time.Duration(float64(d) * clampFactor(1+j.rng.NormFloat64()*j.rel))
}

// Factor returns one perturbation factor (1 + N(0, rel)), clamped below
// at minFactor (0.5) exactly as Scale clamps.
func (j *Jitter) Factor() float64 {
	if j == nil || j.rel <= 0 {
		return 1
	}
	return clampFactor(1 + j.rng.NormFloat64()*j.rel)
}
