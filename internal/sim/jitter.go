package sim

import (
	"math/rand"
	"time"
)

// Jitter is a seeded source of small multiplicative noise. The paper reports
// each configuration as the mean of 5 runs with a standard deviation bar;
// the simulator reproduces run-to-run variance with this explicit,
// replayable source rather than hidden global randomness.
type Jitter struct {
	rng *rand.Rand
	// rel is the relative standard deviation applied by Scale, e.g. 0.01
	// for ~1% noise.
	rel float64
}

// NewJitter returns a jitter source with the given seed and relative
// standard deviation. rel <= 0 disables noise entirely (Scale returns its
// input), which keeps unit tests exact.
func NewJitter(seed int64, rel float64) *Jitter {
	return &Jitter{rng: rand.New(rand.NewSource(seed)), rel: rel}
}

// Scale perturbs d by a normally-distributed factor (1 + N(0, rel)),
// clamped to stay positive. With rel <= 0 it is the identity.
func (j *Jitter) Scale(d time.Duration) time.Duration {
	if j == nil || j.rel <= 0 || d <= 0 {
		return d
	}
	f := 1 + j.rng.NormFloat64()*j.rel
	if f < 0.5 {
		f = 0.5
	}
	return time.Duration(float64(d) * f)
}

// Factor returns one perturbation factor (1 + N(0, rel)), clamped positive.
func (j *Jitter) Factor() float64 {
	if j == nil || j.rel <= 0 {
		return 1
	}
	f := 1 + j.rng.NormFloat64()*j.rel
	if f < 0.5 {
		f = 0.5
	}
	return f
}
