package sim

import (
	"testing"
	"time"
)

// Scale and Factor must share one clamp: the same seed must yield the
// same perturbation whether it is applied to a duration or read as a
// bare factor. An earlier version documented the clamp as "stays
// positive" while the code clamped at 0.5 — this pins both the value
// and the Scale/Factor agreement.
func TestScaleAndFactorClampIdentically(t *testing.T) {
	const d = time.Second
	// A huge relative deviation makes nearly every draw hit the clamp.
	a := NewJitter(42, 50)
	b := NewJitter(42, 50)
	var clamped bool
	for i := 0; i < 1000; i++ {
		f := a.Factor()
		got := b.Scale(d)
		want := time.Duration(float64(d) * f)
		if got != want {
			t.Fatalf("draw %d: Scale = %v but Factor implies %v", i, got, want)
		}
		if f < minFactor {
			t.Fatalf("draw %d: Factor %v below the clamp %v", i, f, minFactor)
		}
		if f == minFactor {
			clamped = true
		}
		if got < time.Duration(minFactor*float64(d)) {
			t.Fatalf("draw %d: Scale %v implies a factor below the clamp", i, got)
		}
	}
	if !clamped {
		t.Error("with rel=50 the clamp should trigger; it never did")
	}
}

func TestClampFactorValue(t *testing.T) {
	if minFactor != 0.5 {
		t.Fatalf("minFactor = %v; the docs promise 0.5", minFactor)
	}
	for _, c := range []struct{ in, want float64 }{
		{-3, 0.5}, {0, 0.5}, {0.49, 0.5}, {0.5, 0.5}, {0.51, 0.51}, {1, 1}, {2.5, 2.5},
	} {
		if got := clampFactor(c.in); got != c.want {
			t.Errorf("clampFactor(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
