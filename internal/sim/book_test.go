package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBookSynchronousFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x")
	s1, e1 := r.Book(0, 10*time.Millisecond)
	if s1 != 0 || e1 != 10*time.Millisecond {
		t.Errorf("first booking [%v,%v]", s1, e1)
	}
	// Second booking queues even though its ready time is earlier.
	s2, e2 := r.Book(0, 5*time.Millisecond)
	if s2 != e1 || e2 != e1+5*time.Millisecond {
		t.Errorf("second booking [%v,%v], want [%v,%v]", s2, e2, e1, e1+5*time.Millisecond)
	}
	// A booking ready far in the future leaves a gap.
	s3, _ := r.Book(time.Second, time.Millisecond)
	if s3 != time.Second {
		t.Errorf("future booking start = %v, want 1s", s3)
	}
}

func TestBookMatchesServe(t *testing.T) {
	// Book and Serve must produce identical schedules for the same
	// request sequence.
	e1 := NewEngine()
	ra := NewResource(e1, "a")
	var served []time.Duration
	for i := 0; i < 5; i++ {
		ra.Serve(time.Duration(i+1)*time.Millisecond, func(_, end time.Duration) {
			served = append(served, end)
		})
	}
	e1.Run()

	e2 := NewEngine()
	rb := NewResource(e2, "b")
	var booked []time.Duration
	for i := 0; i < 5; i++ {
		_, end := rb.Book(0, time.Duration(i+1)*time.Millisecond)
		booked = append(booked, end)
	}
	if len(served) != len(booked) {
		t.Fatal("length mismatch")
	}
	for i := range served {
		if served[i] != booked[i] {
			t.Errorf("request %d: served %v != booked %v", i, served[i], booked[i])
		}
	}
}

// Properties of Book: end = start + dur; start >= ready; bookings never
// overlap and preserve issue order.
func TestBookProperties(t *testing.T) {
	f := func(reqs []struct {
		Ready uint16
		Dur   uint16
	}) bool {
		e := NewEngine()
		r := NewResource(e, "p")
		var prevEnd time.Duration
		for _, q := range reqs {
			ready := time.Duration(q.Ready) * time.Microsecond
			dur := time.Duration(q.Dur) * time.Microsecond
			s, end := r.Book(ready, dur)
			if end-s != dur {
				return false
			}
			if s < ready || s < prevEnd {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBookAccountsBusyTime(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x")
	r.Book(0, 3*time.Millisecond)
	r.Book(0, 4*time.Millisecond)
	if r.BusyTime() != 7*time.Millisecond {
		t.Errorf("busy = %v", r.BusyTime())
	}
	if r.Requests() != 2 {
		t.Errorf("requests = %d", r.Requests())
	}
}
