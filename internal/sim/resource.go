package sim

import "time"

// Resource models a serially-reusable facility with FIFO service: a NVLink
// direction, a DMA copy engine, a GPU compute pipe. Requests whose service
// time is known at submission are scheduled back-to-back; this is exact for
// FIFO queues and avoids simulating the queue explicitly.
type Resource struct {
	eng       *Engine
	name      string
	busyUntil time.Duration

	// Accounting.
	busy     time.Duration
	requests int64
}

// NewResource creates a resource bound to the engine. The name is used only
// for diagnostics and profiling.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name}
}

// Name returns the diagnostic name.
func (r *Resource) Name() string { return r.name }

// Serve enqueues a request taking dur of service time and calls done with
// the request's actual start and end times once service completes. Requests
// are served in submission order.
func (r *Resource) Serve(dur time.Duration, done func(start, end time.Duration)) {
	start := r.busyUntil
	if now := r.eng.Now(); start < now {
		start = now
	}
	end := start + dur
	r.busyUntil = end
	r.busy += dur
	r.requests++
	if done != nil {
		r.eng.At(end, func() { done(start, end) })
	}
}

// ServeAfter is like Serve but the request only joins the queue at absolute
// time ready (it models work that becomes eligible in the future, e.g. a
// transfer whose source data is still being produced).
func (r *Resource) ServeAfter(ready time.Duration, dur time.Duration, done func(start, end time.Duration)) {
	if now := r.eng.Now(); ready < now {
		ready = now
	}
	// The queue-head position is claimed now (FIFO by submission), but
	// service cannot begin before the request is ready.
	start := r.busyUntil
	if start < ready {
		start = ready
	}
	end := start + dur
	r.busyUntil = end
	r.busy += dur
	r.requests++
	if done != nil {
		r.eng.At(end, func() { done(start, end) })
	}
}

// Book reserves dur of service starting no earlier than ready and returns
// the reservation's start and end synchronously, without scheduling any
// event. Because service is FIFO and service times are known at submission,
// the end time is fully determined at booking time; models that track their
// own dependencies can therefore schedule analytically and skip the event
// calendar entirely. Bookings still occupy the resource: later Serve/Book
// calls queue behind them.
func (r *Resource) Book(ready, dur time.Duration) (start, end time.Duration) {
	if now := r.eng.Now(); ready < now {
		ready = now
	}
	start = r.busyUntil
	if start < ready {
		start = ready
	}
	end = start + dur
	r.busyUntil = end
	r.busy += dur
	r.requests++
	return start, end
}

// FreeAt returns the time at which all currently queued service completes.
func (r *Resource) FreeAt() time.Duration {
	if now := r.eng.Now(); r.busyUntil < now {
		return now
	}
	return r.busyUntil
}

// BusyTime returns the total service time accumulated so far.
func (r *Resource) BusyTime() time.Duration { return r.busy }

// Requests returns the number of requests served (or queued) so far.
func (r *Resource) Requests() int64 { return r.requests }

// Utilization returns busy time divided by horizon. Horizons <= 0 yield 0.
func (r *Resource) Utilization(horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.busy) / float64(horizon)
}

// Barrier invokes its callback once Arrive has been called n times. It
// mirrors the synchronous-SGD semantics where GPU 0 must see every worker's
// gradients before updating weights.
type Barrier struct {
	remaining int
	fn        func()
}

// NewBarrier creates a barrier expecting n arrivals. A barrier with n <= 0
// fires immediately upon the first (spurious) Arrive and never again.
func NewBarrier(n int, fn func()) *Barrier {
	return &Barrier{remaining: n, fn: fn}
}

// Arrive records one arrival, firing the callback on the last one.
func (b *Barrier) Arrive() {
	b.remaining--
	if b.remaining <= 0 && b.fn != nil {
		fn := b.fn
		b.fn = nil
		fn()
	}
}

// Remaining returns how many arrivals are still outstanding.
func (b *Barrier) Remaining() int {
	if b.remaining < 0 {
		return 0
	}
	return b.remaining
}
