// Package sim implements the discrete-event simulation kernel the whole
// system model runs on: a virtual clock, an event calendar, FIFO resources
// for modeling contention, and synchronization helpers.
//
// The kernel is deterministic: events scheduled for the same instant fire in
// scheduling order. All stochastic behaviour (run-to-run jitter used to
// reproduce the paper's error bars) comes from an explicitly seeded Jitter
// source, so any experiment can be replayed exactly.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Engine is the discrete-event simulator core. The zero value is not ready
// to use; create one with NewEngine.
type Engine struct {
	now    time.Duration
	queue  eventHeap
	seq    int64
	nsteps int64
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns how many events have been executed so far (useful in tests
// and as a runaway guard).
func (e *Engine) Steps() int64 { return e.nsteps }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (fire as soon as possible, after already-pending events at the
// current instant).
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// eventPool recycles calendar entries across all engines. Simulation
// schedules millions of events per epoch; pooling them removes the
// dominant per-event allocation from the hot path. An event is returned
// to the pool as soon as it is popped (before its callback runs), so a
// callback that schedules new events may be handed the entry it just
// vacated — by then the engine holds no reference to it.
var eventPool = sync.Pool{New: func() any { return new(event) }}

// At runs fn at absolute virtual time t. Scheduling in the past panics:
// it would silently corrupt causality, and no model code should ever do it.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := eventPool.Get().(*event)
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	heap.Push(&e.queue, ev)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	at, fn := ev.at, ev.fn
	ev.fn = nil // don't retain the closure while pooled
	eventPool.Put(ev)
	e.now = at
	e.nsteps++
	fn()
	return true
}

// Run executes events until the calendar is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t (even if no event lands there).
func (e *Engine) RunUntil(t time.Duration) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Pending returns the number of events still on the calendar.
func (e *Engine) Pending() int { return e.queue.Len() }

// event is a single calendar entry. seq breaks ties so simultaneous events
// fire in scheduling order, keeping the simulation deterministic.
type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
