package sim

import (
	"testing"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.Schedule(time.Millisecond, func() {
		fired = append(fired, e.Now())
		e.Schedule(2*time.Millisecond, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("expected 2 events, got %d", len(fired))
	}
	if fired[0] != time.Millisecond || fired[1] != 3*time.Millisecond {
		t.Errorf("fire times = %v, want [1ms 3ms]", fired)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	e.Run()
	if !ran {
		t.Error("negative-delay event never ran")
	}
	if e.Now() != 0 {
		t.Errorf("clock moved to %v for clamped event", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.At(time.Millisecond, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired int
	e.Schedule(time.Millisecond, func() { fired++ })
	e.Schedule(5*time.Millisecond, func() { fired++ })
	e.RunUntil(2 * time.Millisecond)
	if fired != 1 {
		t.Errorf("fired = %d events by 2ms, want 1", fired)
	}
	if e.Now() != 2*time.Millisecond {
		t.Errorf("clock = %v, want exactly 2ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Errorf("fired = %d after Run, want 2", fired)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty calendar should return false")
	}
}

func TestStepsCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run()
	if e.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", e.Steps())
	}
}
