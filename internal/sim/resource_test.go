package sim

import (
	"testing"
	"time"
)

func TestResourceSerializesFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "link")
	type span struct{ start, end time.Duration }
	var spans []span
	for i := 0; i < 3; i++ {
		r.Serve(10*time.Millisecond, func(s, d time.Duration) {
			spans = append(spans, span{s, d})
		})
	}
	e.Run()
	if len(spans) != 3 {
		t.Fatalf("served %d requests, want 3", len(spans))
	}
	for i, sp := range spans {
		wantStart := time.Duration(i) * 10 * time.Millisecond
		if sp.start != wantStart || sp.end != wantStart+10*time.Millisecond {
			t.Errorf("request %d span = [%v,%v], want [%v,%v]",
				i, sp.start, sp.end, wantStart, wantStart+10*time.Millisecond)
		}
	}
}

func TestResourceServeAfterWaitsForReadiness(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "link")
	var start time.Duration
	r.ServeAfter(50*time.Millisecond, 10*time.Millisecond, func(s, _ time.Duration) { start = s })
	e.Run()
	if start != 50*time.Millisecond {
		t.Errorf("start = %v, want 50ms (waited for readiness)", start)
	}
}

func TestResourceServeAfterQueuesBehindEarlierWork(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "link")
	r.Serve(100*time.Millisecond, nil)
	var start time.Duration
	r.ServeAfter(50*time.Millisecond, 10*time.Millisecond, func(s, _ time.Duration) { start = s })
	e.Run()
	if start != 100*time.Millisecond {
		t.Errorf("start = %v, want 100ms (queued behind busy resource)", start)
	}
}

func TestResourceAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "pipe")
	r.Serve(10*time.Millisecond, nil)
	r.Serve(30*time.Millisecond, nil)
	e.Run()
	if got := r.BusyTime(); got != 40*time.Millisecond {
		t.Errorf("BusyTime = %v, want 40ms", got)
	}
	if got := r.Requests(); got != 2 {
		t.Errorf("Requests = %d, want 2", got)
	}
	if got := r.Utilization(80 * time.Millisecond); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Errorf("Utilization(0) = %v, want 0", got)
	}
}

func TestResourceFreeAt(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "pipe")
	if r.FreeAt() != 0 {
		t.Errorf("idle FreeAt = %v, want 0", r.FreeAt())
	}
	r.Serve(25*time.Millisecond, nil)
	if r.FreeAt() != 25*time.Millisecond {
		t.Errorf("FreeAt = %v, want 25ms", r.FreeAt())
	}
	e.Run()
	if r.FreeAt() != 25*time.Millisecond {
		t.Errorf("FreeAt after run = %v, want 25ms (== now)", r.FreeAt())
	}
}

func TestBarrier(t *testing.T) {
	fired := 0
	b := NewBarrier(3, func() { fired++ })
	b.Arrive()
	b.Arrive()
	if fired != 0 {
		t.Fatal("barrier fired early")
	}
	if b.Remaining() != 1 {
		t.Errorf("Remaining = %d, want 1", b.Remaining())
	}
	b.Arrive()
	if fired != 1 {
		t.Fatal("barrier did not fire on last arrival")
	}
	b.Arrive() // extra arrivals are harmless
	if fired != 1 {
		t.Fatal("barrier fired more than once")
	}
	if b.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", b.Remaining())
	}
}

func TestJitterDeterminism(t *testing.T) {
	a := NewJitter(42, 0.05)
	b := NewJitter(42, 0.05)
	for i := 0; i < 100; i++ {
		if a.Factor() != b.Factor() {
			t.Fatal("same seed must replay the same factors")
		}
	}
}

func TestJitterDisabled(t *testing.T) {
	j := NewJitter(1, 0)
	if got := j.Scale(time.Second); got != time.Second {
		t.Errorf("disabled jitter changed input: %v", got)
	}
	var nilJ *Jitter
	if got := nilJ.Scale(time.Second); got != time.Second {
		t.Errorf("nil jitter changed input: %v", got)
	}
	if nilJ.Factor() != 1 {
		t.Error("nil jitter factor should be 1")
	}
}

func TestJitterStaysPositive(t *testing.T) {
	j := NewJitter(7, 3.0) // absurdly large rel to hit the clamp
	for i := 0; i < 1000; i++ {
		if d := j.Scale(time.Second); d <= 0 {
			t.Fatalf("jitter produced non-positive duration %v", d)
		}
	}
}
