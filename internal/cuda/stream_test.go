package cuda

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/interconnect"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

func TestWaitEventRaisesTail(t *testing.T) {
	rt, _ := newRuntime(t, []topology.NodeID{0})
	s := rt.Stream(0, "c")
	s.WaitEvent(5 * time.Millisecond)
	if s.Tail() != 5*time.Millisecond {
		t.Errorf("tail = %v", s.Tail())
	}
	// A later, smaller wait must not lower the tail.
	s.WaitEvent(time.Millisecond)
	if s.Tail() != 5*time.Millisecond {
		t.Errorf("tail lowered to %v", s.Tail())
	}
	// The next kernel starts no earlier than the event.
	c := gpu.KernelCost{Name: "k", FLOPs: units.GFLOPs, Parallelism: 1 << 20, Class: gpu.ClassFMA}
	_, end := s.Launch(profiler.StageFP, c, 0)
	if end <= 5*time.Millisecond {
		t.Errorf("kernel ended %v, before the awaited event", end)
	}
}

func TestExtendOccupiesUntil(t *testing.T) {
	rt, prof := newRuntime(t, []topology.NodeID{0})
	s := rt.CommStream(0, "nccl")
	end := s.Extend(profiler.StageWU, "collective", time.Millisecond, 3*time.Millisecond)
	if end != 3*time.Millisecond {
		t.Errorf("end = %v", end)
	}
	if s.Tail() != 3*time.Millisecond {
		t.Errorf("tail = %v", s.Tail())
	}
	if prof.Kernel("collective").Calls != 1 {
		t.Error("extend not recorded")
	}
	// Extending to a time already past is a zero-length occupation.
	end2 := s.Extend(profiler.StageWU, "collective", 0, time.Millisecond)
	if end2 != 3*time.Millisecond {
		t.Errorf("backward extend end = %v, want tail %v", end2, 3*time.Millisecond)
	}
}

func TestHostWaitRecordsBlockedTime(t *testing.T) {
	rt, prof := newRuntime(t, []topology.NodeID{0})
	resume := rt.HostWait(0, profiler.StageWU, time.Millisecond, 10*time.Millisecond)
	if want := 10*time.Millisecond + DefaultCosts().StreamSyncOverhead; resume != want {
		t.Errorf("resume = %v, want %v", resume, want)
	}
	st := prof.API(APIStreamSync)
	if st.Calls != 1 || st.Total < 9*time.Millisecond {
		t.Errorf("sync stat = %+v", st)
	}
	// Target already past: only the fixed overhead.
	resume2 := rt.HostWait(0, profiler.StageWU, resume, resume-time.Millisecond)
	if want := resume + DefaultCosts().StreamSyncOverhead; resume2 != want {
		t.Errorf("past-target resume = %v, want %v", resume2, want)
	}
}

func TestEngineThreadSeparateFromLaunchThread(t *testing.T) {
	rt, _ := newRuntime(t, []topology.NodeID{0, 1})
	s := rt.Stream(0, "compute")
	// Saturate the launch thread with many launches.
	c := gpu.KernelCost{Name: "k", FLOPs: units.KFLOPs, Parallelism: 1 << 10, Class: gpu.ClassFMA}
	host := time.Duration(0)
	for i := 0; i < 100; i++ {
		host, _ = s.Launch(profiler.StageFP, c, host)
	}
	// A peer copy issued at t=0 must not queue behind those launches: it
	// runs on the engine thread.
	hostDone, _, err := rt.MemcpyPeer(1, 0, units.MB, profiler.StageWU, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hostDone > 2*DefaultCosts().MemcpyAsync {
		t.Errorf("memcpy issue at %v queued behind the launch loop (%v)", hostDone, host)
	}
}

func TestDMASerializesFanOut(t *testing.T) {
	// Two copies out of GPU0 to different peers use distinct links but
	// share copy engines: with 2 engines, a third concurrent copy queues.
	rt, _ := newRuntime(t, []topology.NodeID{0, 1, 2, 3})
	size := 100 * units.MB
	_, e1, err := rt.MemcpyPeer(1, 0, size, profiler.StageWU, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, e2, err := rt.MemcpyPeer(2, 0, size, profiler.StageWU, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, e3, err := rt.MemcpyPeer(3, 0, size, profiler.StageWU, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// First two run concurrently on the two engines (similar end times);
	// the third (to GPU3, also the slowest link) lands later than a pure
	// wire-time schedule would allow.
	if e2 > e1+time.Millisecond+DefaultCosts().MemcpyAsync {
		t.Errorf("second copy (%v) should overlap first (%v)", e2, e1)
	}
	wireOnly := topology.NVLinkLatency + units.TransferTime(size, 25*units.GBPerSec)
	if e3 <= wireOnly {
		t.Errorf("third copy (%v) should queue on a busy engine (wire alone %v)", e3, wireOnly)
	}
}

func TestRuntimeAccessors(t *testing.T) {
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	rt, err := NewRuntime(fab, gpu.V100(), []topology.NodeID{0}, DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Fabric() != fab {
		t.Error("fabric accessor wrong")
	}
	if rt.Profile() != nil {
		t.Error("nil profile expected")
	}
	if rt.Costs() != DefaultCosts() {
		t.Error("costs accessor wrong")
	}
	if _, err := rt.Route(0, 1); err != nil {
		t.Error("route failed")
	}
	s := rt.Stream(0, "x")
	if s.Device().ID != 0 {
		t.Error("stream device wrong")
	}
}

func TestMemcpyDeviceToHost(t *testing.T) {
	rt, prof := newRuntime(t, []topology.NodeID{0})
	_, end, err := rt.MemcpyDeviceToHost(0, 16*units.MB, profiler.StageWU, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wire := topology.PCIeLatency + units.TransferTime(16*units.MB, topology.PCIeGen3x16BW)
	if want := DefaultCosts().MemcpyAsync + wire; end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
	if prof.Transfer("memcpyDtoH 0->").Calls != 1 {
		t.Error("DtoH transfer not recorded")
	}
}

func TestCPUWorkSerializes(t *testing.T) {
	rt, prof := newRuntime(t, []topology.NodeID{0})
	_, e1 := rt.CPUWork("CPU/kvstore", profiler.StageWU, 0, time.Millisecond)
	s2, e2 := rt.CPUWork("CPU/kvstore", profiler.StageWU, 0, time.Millisecond)
	if e1 != time.Millisecond || s2 != e1 || e2 != 2*time.Millisecond {
		t.Errorf("CPU work windows [%v] [%v,%v]", e1, s2, e2)
	}
	// Distinct resources do not contend.
	s3, _ := rt.CPUWork("CPU/other", profiler.StageWU, 0, time.Millisecond)
	if s3 != 0 {
		t.Errorf("independent CPU resource start = %v, want 0", s3)
	}
	_ = prof
}

func TestDeviceAccessor(t *testing.T) {
	rt, _ := newRuntime(t, []topology.NodeID{0, 3})
	if rt.Device(3) == nil || rt.Device(3).ID != 3 {
		t.Error("device accessor wrong")
	}
	if rt.Device(5) != nil {
		t.Error("unmanaged device should be nil")
	}
}
