package cuda

import (
	"strings"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/interconnect"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

func newRuntime(t *testing.T, gpus []topology.NodeID) (*Runtime, *profiler.Profile) {
	t.Helper()
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	prof := profiler.New()
	rt, err := NewRuntime(fab, gpu.V100(), gpus, DefaultCosts(), prof)
	if err != nil {
		t.Fatal(err)
	}
	return rt, prof
}

func TestNewRuntimeRejectsCPUs(t *testing.T) {
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	if _, err := NewRuntime(fab, gpu.V100(), []topology.NodeID{8}, DefaultCosts(), nil); err == nil {
		t.Error("CPU node should be rejected")
	}
	if _, err := NewRuntime(fab, gpu.V100(), []topology.NodeID{99}, DefaultCosts(), nil); err == nil {
		t.Error("unknown node should be rejected")
	}
}

func TestDevicesSorted(t *testing.T) {
	rt, _ := newRuntime(t, []topology.NodeID{3, 0, 2, 1})
	ids := rt.Devices()
	for i, id := range ids {
		if id != topology.NodeID(i) {
			t.Fatalf("devices = %v, want [0 1 2 3]", ids)
		}
	}
}

func TestStreamOrdering(t *testing.T) {
	rt, _ := newRuntime(t, []topology.NodeID{0})
	s := rt.Stream(0, "compute")
	c := gpu.KernelCost{Name: "k", FLOPs: units.GFLOPs, Parallelism: 1 << 30, Class: gpu.ClassFMA}
	_, end1 := s.Launch(profiler.StageFP, c, 0)
	_, end2 := s.Launch(profiler.StageFP, c, 0)
	if end2 <= end1 {
		t.Errorf("second kernel end %v should be after first %v", end2, end1)
	}
	if s.Tail() != end2 {
		t.Errorf("tail = %v, want %v", s.Tail(), end2)
	}
}

func TestLaunchPaysHostCost(t *testing.T) {
	rt, prof := newRuntime(t, []topology.NodeID{0})
	s := rt.Stream(0, "compute")
	c := gpu.KernelCost{Name: "k", FLOPs: units.GFLOPs, Parallelism: 1 << 30, Class: gpu.ClassFMA}
	hostDone, _ := s.Launch(profiler.StageFP, c, 0)
	if hostDone != DefaultCosts().LaunchKernel {
		t.Errorf("hostDone = %v, want %v", hostDone, DefaultCosts().LaunchKernel)
	}
	if got := prof.API(APILaunchKernel); got.Calls != 1 {
		t.Errorf("launch API calls = %d, want 1", got.Calls)
	}
}

func TestSynchronizeWaitsForTail(t *testing.T) {
	rt, prof := newRuntime(t, []topology.NodeID{0})
	s := rt.Stream(0, "compute")
	c := gpu.KernelCost{Name: "k", FLOPs: 100 * units.GFLOPs, Parallelism: 1 << 30, Class: gpu.ClassFMA}
	_, kEnd := s.Launch(profiler.StageFP, c, 0)
	resume := s.Synchronize(profiler.StageFP, DefaultCosts().LaunchKernel)
	want := kEnd + DefaultCosts().StreamSyncOverhead
	if resume != want {
		t.Errorf("resume = %v, want %v", resume, want)
	}
	st := prof.API(APIStreamSync)
	if st.Calls != 1 {
		t.Fatalf("sync calls = %d, want 1", st.Calls)
	}
	if st.Total < kEnd-DefaultCosts().LaunchKernel {
		t.Errorf("sync blocked time %v should cover the wait", st.Total)
	}
}

func TestSynchronizeIdleStreamIsCheap(t *testing.T) {
	rt, _ := newRuntime(t, []topology.NodeID{0})
	s := rt.Stream(0, "compute")
	resume := s.Synchronize(profiler.StageOther, time.Millisecond)
	if want := time.Millisecond + DefaultCosts().StreamSyncOverhead; resume != want {
		t.Errorf("resume = %v, want %v", resume, want)
	}
}

func TestMemcpyPeerDirect(t *testing.T) {
	rt, prof := newRuntime(t, []topology.NodeID{0, 1})
	hostDone, end, err := rt.MemcpyPeer(1, 0, 50*units.MB, profiler.StageWU, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hostDone != DefaultCosts().MemcpyAsync {
		t.Errorf("hostDone = %v, want %v", hostDone, DefaultCosts().MemcpyAsync)
	}
	wire := topology.NVLinkLatency + units.TransferTime(50*units.MB, 50*units.GBPerSec)
	if want := hostDone + wire; end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
	if prof.API(APIMemcpyAsync).Calls != 1 {
		t.Error("memcpy API not recorded")
	}
}

func TestMemcpyPeerStagedTakesTwoHops(t *testing.T) {
	rt, _ := newRuntime(t, []topology.NodeID{0, 7})
	_, endStaged, err := rt.MemcpyPeer(7, 0, 50*units.MB, profiler.StageWU, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt2, _ := newRuntime(t, []topology.NodeID{0, 1})
	_, endDirect, err := rt2.MemcpyPeer(1, 0, 50*units.MB, profiler.StageWU, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if endStaged <= endDirect {
		t.Errorf("staged copy (%v) should be slower than direct (%v)", endStaged, endDirect)
	}
}

func TestMemcpyPeerPCIePolicy(t *testing.T) {
	rt, _ := newRuntime(t, []topology.NodeID{0, 7})
	rt.SetRoutePolicy(topology.RoutePCIeFallback)
	_, endPCIe, err := rt.MemcpyPeer(7, 0, 50*units.MB, profiler.StageWU, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetRoutePolicy(topology.RouteStagedNVLink)
	_, endNV, err := rt.MemcpyPeer(7, 0, 50*units.MB, profiler.StageWU, endPCIe, endPCIe)
	if err != nil {
		t.Fatal(err)
	}
	if endPCIe-0 <= endNV-endPCIe {
		t.Errorf("PCIe route (%v) should be slower than staged NVLink (%v)", endPCIe, endNV-endPCIe)
	}
}

func TestMemcpyHostToDevice(t *testing.T) {
	rt, _ := newRuntime(t, []topology.NodeID{0})
	_, end, err := rt.MemcpyHostToDevice(0, 16*units.MB, profiler.StageDataLoad, 0)
	if err != nil {
		t.Fatal(err)
	}
	wire := topology.PCIeLatency + units.TransferTime(16*units.MB, topology.PCIeGen3x16BW)
	if want := DefaultCosts().MemcpyAsync + wire; end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
}

func TestCommStreamOverlapsCompute(t *testing.T) {
	rt, _ := newRuntime(t, []topology.NodeID{0})
	cs := rt.Stream(0, "compute")
	ns := rt.CommStream(0, "nccl")
	big := gpu.KernelCost{Name: "conv", FLOPs: 500 * units.GFLOPs, Parallelism: 1 << 30, Class: gpu.ClassFMA}
	_, computeEnd := cs.Launch(profiler.StageFP, big, 0)
	_, commEnd := ns.LaunchTimed(profiler.StageWU, "ncclAllReduce", 10*time.Microsecond, 0, 0)
	if commEnd >= computeEnd {
		t.Errorf("comm kernel (%v) should overlap, not queue behind, compute (%v)", commEnd, computeEnd)
	}
}

func TestKernelRecordedWithStageAndTrack(t *testing.T) {
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	prof := profiler.NewDetailed(16)
	rt, err := NewRuntime(fab, gpu.V100(), []topology.NodeID{2}, DefaultCosts(), prof)
	if err != nil {
		t.Fatal(err)
	}
	s := rt.Stream(2, "compute")
	c := gpu.KernelCost{Name: "conv2d_fprop", FLOPs: units.GFLOPs, Parallelism: 1 << 30, Class: gpu.ClassTensor}
	s.Launch(profiler.StageFP, c, 0)
	var found bool
	for _, iv := range prof.Intervals() {
		if iv.Kind == profiler.KindKernel && iv.Name == "conv2d_fprop" {
			found = true
			if iv.Stage != profiler.StageFP {
				t.Errorf("stage = %v, want FP", iv.Stage)
			}
			if !strings.Contains(iv.Track, "GPU2") {
				t.Errorf("track = %q, want GPU2 track", iv.Track)
			}
		}
	}
	if !found {
		t.Error("kernel interval not recorded")
	}
}

func TestNilProfileIsSafe(t *testing.T) {
	eng := sim.NewEngine()
	fab := interconnect.New(eng, topology.DGX1())
	rt, err := NewRuntime(fab, gpu.V100(), []topology.NodeID{0, 1}, DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := rt.Stream(0, "c")
	s.Launch(profiler.StageFP, gpu.KernelCost{Name: "k", FLOPs: units.GFLOPs, Parallelism: 1 << 20, Class: gpu.ClassFMA}, 0)
	s.Synchronize(profiler.StageFP, 0)
	if _, _, err := rt.MemcpyPeer(1, 0, units.MB, profiler.StageWU, 0, 0); err != nil {
		t.Fatal(err)
	}
}
