// Package cuda models the CUDA runtime surface the training frameworks sit
// on: per-device host worker threads that pay per-API-call costs
// (cudaLaunchKernel, cudaMemcpyAsync, cudaStreamSynchronize), streams whose
// operations execute in order on device queues, and peer-to-peer memory
// copies routed over the interconnect fabric. Every call is accounted into
// a profiler.Profile, which is how the paper's CUDA-API overhead analysis
// (its Table III) is reproduced.
package cuda

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/interconnect"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// API names used in profiles, matching the CUDA runtime entry points nvprof
// reports.
const (
	APILaunchKernel = "cudaLaunchKernel"
	APIMemcpyAsync  = "cudaMemcpyAsync"
	APIStreamSync   = "cudaStreamSynchronize"
)

// Costs are the host-side fixed costs of runtime calls.
type Costs struct {
	// LaunchKernel is the CPU time to enqueue one kernel.
	LaunchKernel time.Duration
	// MemcpyAsync is the CPU time to enqueue one async copy.
	MemcpyAsync time.Duration
	// StreamSyncOverhead is the fixed cost of a stream synchronize beyond
	// the time spent blocked waiting for the device.
	StreamSyncOverhead time.Duration
}

// DefaultCosts returns launch/copy/sync costs representative of CUDA 9 on
// a Xeon-class host.
func DefaultCosts() Costs {
	return Costs{
		LaunchKernel:       4 * time.Microsecond,
		MemcpyAsync:        6 * time.Microsecond,
		StreamSyncOverhead: 8 * time.Microsecond,
	}
}

// deviceNames interns the per-device profile labels. Every kernel launch,
// API call, and transfer records one of these strings; formatting them per
// call used to dominate the simulation's allocation profile, so they are
// built once per device at runtime construction.
type deviceNames struct {
	host, engine  string // host-thread tracks
	compute, comm string // device-queue tracks
	memcpyHtoD    string // "memcpyHtoD ->N"
	xferHtoD      string // "xfer H->N"
	memcpyDtoH    string // "memcpyDtoH N->"
	xferDtoH      string // "xfer N->H"
}

// peerNames interns the labels of one src->dst peer-copy direction,
// created lazily on first use (runtimes are per-run and single-threaded).
type peerNames struct {
	memcpy string // "memcpyP2P S->D"
	xfer   string // "xfer S->D"
}

// Runtime binds devices, host threads, the fabric, and a profile.
type Runtime struct {
	eng     *sim.Engine
	fabric  *interconnect.Fabric
	devices map[topology.NodeID]*gpu.Device
	hosts   map[topology.NodeID]*sim.Resource
	engines map[topology.NodeID]*sim.Resource
	prof    *profiler.Profile
	costs   Costs
	policy  topology.RoutePolicy
	cpuRes  map[string]*sim.Resource
	names   map[topology.NodeID]*deviceNames
	peers   map[[2]topology.NodeID]*peerNames
}

// NewRuntime creates devices and host threads for the listed GPUs. prof may
// be nil to disable accounting.
func NewRuntime(fabric *interconnect.Fabric, spec gpu.Spec, gpus []topology.NodeID, costs Costs, prof *profiler.Profile) (*Runtime, error) {
	return NewRuntimeWithSpecs(fabric, spec, nil, gpus, costs, prof)
}

// NewRuntimeWithSpecs is NewRuntime with per-device spec overrides:
// devices listed in specs use their entry, the rest use def. Fault plans
// use it to model straggler GPUs — a heterogeneous node where one device
// runs every kernel slower than its peers.
func NewRuntimeWithSpecs(fabric *interconnect.Fabric, def gpu.Spec, specs map[topology.NodeID]gpu.Spec, gpus []topology.NodeID, costs Costs, prof *profiler.Profile) (*Runtime, error) {
	rt := &Runtime{
		eng:     fabric.Engine(),
		fabric:  fabric,
		devices: make(map[topology.NodeID]*gpu.Device),
		hosts:   make(map[topology.NodeID]*sim.Resource),
		engines: make(map[topology.NodeID]*sim.Resource),
		prof:    prof,
		costs:   costs,
		policy:  topology.RouteStagedNVLink,
		names:   make(map[topology.NodeID]*deviceNames),
	}
	for _, id := range gpus {
		n, err := fabric.Topology().Node(id)
		if err != nil {
			return nil, err
		}
		if n.Kind != topology.GPU {
			return nil, fmt.Errorf("cuda: node %d is a %s, not a GPU", id, n.Kind)
		}
		rt.names[id] = &deviceNames{
			host:       fmt.Sprintf("GPU%d/host", id),
			engine:     fmt.Sprintf("GPU%d/engine", id),
			compute:    fmt.Sprintf("GPU%d/compute", id),
			comm:       fmt.Sprintf("GPU%d/comm", id),
			memcpyHtoD: fmt.Sprintf("memcpyHtoD ->%d", id),
			xferHtoD:   fmt.Sprintf("xfer H->%d", id),
			memcpyDtoH: fmt.Sprintf("memcpyDtoH %d->", id),
			xferDtoH:   fmt.Sprintf("xfer %d->H", id),
		}
		spec := def
		if s, ok := specs[id]; ok {
			spec = s
		}
		rt.devices[id] = gpu.NewDevice(rt.eng, id, spec)
		rt.hosts[id] = sim.NewResource(rt.eng, rt.names[id].host)
		rt.engines[id] = sim.NewResource(rt.eng, rt.names[id].engine)
	}
	return rt, nil
}

// peerName returns the interned labels for one src->dst copy direction.
func (rt *Runtime) peerName(src, dst topology.NodeID) *peerNames {
	key := [2]topology.NodeID{src, dst}
	if p := rt.peers[key]; p != nil {
		return p
	}
	if rt.peers == nil {
		rt.peers = make(map[[2]topology.NodeID]*peerNames)
	}
	p := &peerNames{
		memcpy: fmt.Sprintf("memcpyP2P %d->%d", src, dst),
		xfer:   fmt.Sprintf("xfer %d->%d", src, dst),
	}
	rt.peers[key] = p
	return p
}

// TrackCompute returns the interned compute-queue track label of a device.
func (rt *Runtime) TrackCompute(id topology.NodeID) string { return rt.names[id].compute }

// TrackComm returns the interned communication-queue track label of a device.
func (rt *Runtime) TrackComm(id topology.NodeID) string { return rt.names[id].comm }

// SetRoutePolicy selects how peer copies without a direct NVLink are routed
// (staged NVLink by default; PCIe fallback reproduces naive behaviour).
func (rt *Runtime) SetRoutePolicy(p topology.RoutePolicy) { rt.policy = p }

// Device returns the device model for a GPU.
func (rt *Runtime) Device(id topology.NodeID) *gpu.Device { return rt.devices[id] }

// Devices returns the IDs of all GPUs managed by the runtime, ascending.
func (rt *Runtime) Devices() []topology.NodeID {
	var ids []topology.NodeID
	for id := range rt.devices {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// Fabric returns the interconnect.
func (rt *Runtime) Fabric() *interconnect.Fabric { return rt.fabric }

// Profile returns the profile (may be nil).
func (rt *Runtime) Profile() *profiler.Profile { return rt.prof }

// record adds an interval when profiling is enabled.
func (rt *Runtime) record(iv profiler.Interval) {
	if rt.prof != nil {
		rt.prof.Record(iv)
	}
}

// hostCall books a host-API call on one of the device's worker threads.
// The framework uses distinct threads for kernel launching and for
// dependency-engine communication issue (MXNet's engine workers); engine
// selects the latter, so communication issue does not serialize behind the
// launch loop.
func (rt *Runtime) hostCall(dev topology.NodeID, api string, stage profiler.Stage, ready time.Duration, dur time.Duration, engine bool) (start, end time.Duration) {
	res, track := rt.hosts[dev], rt.names[dev].host
	if engine {
		res, track = rt.engines[dev], rt.names[dev].engine
	}
	start, end = res.Book(ready, dur)
	rt.record(profiler.Interval{
		Kind: profiler.KindAPI, Name: api, Stage: stage,
		Track: track, Start: start, End: end,
	})
	return start, end
}

// Stream is an in-order device work queue handle. Operations on a stream
// begin in issue order and never before the previous operation completes.
type Stream struct {
	rt   *Runtime
	dev  *gpu.Device
	name string
	tail time.Duration
	comm bool
}

// Stream creates a compute stream on the device.
func (rt *Runtime) Stream(dev topology.NodeID, name string) *Stream {
	return &Stream{rt: rt, dev: rt.devices[dev], name: name}
}

// CommStream creates a stream whose kernels run on the device's
// communication queue, overlapping compute (as NCCL's do).
func (rt *Runtime) CommStream(dev topology.NodeID, name string) *Stream {
	s := rt.Stream(dev, name)
	s.comm = true
	return s
}

// Device returns the stream's device.
func (s *Stream) Device() *gpu.Device { return s.dev }

// Tail returns the completion time of the last operation issued.
func (s *Stream) Tail() time.Duration { return s.tail }

// WaitEvent raises the stream's tail to at least tm without occupying any
// resource — cudaStreamWaitEvent semantics, used to gate a stream on a
// dependency completed elsewhere (e.g. staged input data).
func (s *Stream) WaitEvent(tm time.Duration) {
	if tm > s.tail {
		s.tail = tm
	}
}

// Launch enqueues a kernel: the host pays the launch cost starting at
// hostReady; the kernel executes after both the launch and the stream's
// previous work complete. It returns when the host call finishes and when
// the kernel finishes.
func (s *Stream) Launch(stage profiler.Stage, c gpu.KernelCost, hostReady time.Duration) (hostDone, kernelEnd time.Duration) {
	_, hostDone = s.rt.hostCall(s.dev.ID, APILaunchKernel, stage, hostReady, s.rt.costs.LaunchKernel, s.comm)
	ready := hostDone
	if s.tail > ready {
		ready = s.tail
	}
	var start, end time.Duration
	if s.comm {
		start, end = s.dev.BookCommKernel(ready, s.dev.Spec.KernelDuration(c))
	} else {
		start, end = s.dev.BookKernel(ready, c)
	}
	track := s.rt.names[s.dev.ID].compute
	if s.comm {
		track = s.rt.names[s.dev.ID].comm
	}
	s.rt.record(profiler.Interval{
		Kind: profiler.KindKernel, Name: c.Name, Stage: stage,
		Track: track, Start: start, End: end,
	})
	s.tail = end
	return hostDone, end
}

// LaunchTimed enqueues a kernel whose device duration is supplied directly
// (used by the NCCL model, whose kernel time is wire-limited rather than
// roofline-limited).
func (s *Stream) LaunchTimed(stage profiler.Stage, name string, dur time.Duration, hostReady, dataReady time.Duration) (hostDone, kernelEnd time.Duration) {
	_, hostDone = s.rt.hostCall(s.dev.ID, APILaunchKernel, stage, hostReady, s.rt.costs.LaunchKernel, s.comm)
	ready := hostDone
	if s.tail > ready {
		ready = s.tail
	}
	if dataReady > ready {
		ready = dataReady
	}
	var start, end time.Duration
	if s.comm {
		start, end = s.dev.BookCommKernel(ready, dur)
	} else {
		start, end = s.dev.BookDMA(ready, dur) // non-comm timed ops are copies
	}
	track := s.rt.names[s.dev.ID].comm
	s.rt.record(profiler.Interval{
		Kind: profiler.KindKernel, Name: name, Stage: stage,
		Track: track, Start: start, End: end,
	})
	s.tail = end
	return hostDone, end
}

// HostLaunch books only the host-side cudaLaunchKernel cost (used by
// collective models that compute device occupancy themselves) and returns
// when the host call completes.
func (s *Stream) HostLaunch(stage profiler.Stage, hostReady time.Duration) time.Duration {
	_, end := s.rt.hostCall(s.dev.ID, APILaunchKernel, stage, hostReady, s.rt.costs.LaunchKernel, s.comm)
	return end
}

// Extend occupies the stream from max(its tail, ready) until at least
// `until`, recording the window as a kernel. Collectives use it to make
// every rank's queue busy until the global completion of the operation.
// It returns the stream's new tail.
func (s *Stream) Extend(stage profiler.Stage, name string, ready, until time.Duration) time.Duration {
	start := s.tail
	if ready > start {
		start = ready
	}
	dur := until - start
	if dur < 0 {
		dur = 0
	}
	var bs, be time.Duration
	if s.comm {
		bs, be = s.dev.BookCommKernel(start, dur)
	} else {
		bs, be = s.dev.BookDMA(start, dur)
	}
	s.rt.record(profiler.Interval{
		Kind: profiler.KindKernel, Name: name, Stage: stage,
		Track: s.rt.names[s.dev.ID].comm, Start: bs, End: be,
	})
	s.tail = be
	return be
}

// Synchronize blocks the host thread from hostReady until the stream
// drains, plus a fixed overhead; the blocked window is recorded as
// cudaStreamSynchronize (as nvprof accounts it). It returns when the host
// resumes.
func (s *Stream) Synchronize(stage profiler.Stage, hostReady time.Duration) time.Duration {
	wait := s.tail
	if wait < hostReady {
		wait = hostReady
	}
	dur := wait - hostReady + s.rt.costs.StreamSyncOverhead
	res, track := s.rt.hosts[s.dev.ID], s.rt.names[s.dev.ID].host
	if s.comm {
		res, track = s.rt.engines[s.dev.ID], s.rt.names[s.dev.ID].engine
	}
	start, end := res.Book(hostReady, dur)
	s.rt.record(profiler.Interval{
		Kind: profiler.KindAPI, Name: APIStreamSync, Stage: stage,
		Track: track, Start: start, End: end,
	})
	return end
}

// HostWait blocks the device's launch thread from hostReady until target
// (a dependency completion such as "all weights pulled"), recording the
// blocked window as cudaStreamSynchronize — how nvprof accounts the
// framework's WaitToRead. It returns when the host resumes.
func (rt *Runtime) HostWait(dev topology.NodeID, stage profiler.Stage, hostReady, target time.Duration) time.Duration {
	wait := target
	if wait < hostReady {
		wait = hostReady
	}
	dur := wait - hostReady + rt.costs.StreamSyncOverhead
	start, end := rt.hosts[dev].Book(hostReady, dur)
	rt.record(profiler.Interval{
		Kind: profiler.KindAPI, Name: APIStreamSync, Stage: stage,
		Track: rt.names[dev].host, Start: start, End: end,
	})
	return end
}

// MemcpyPeer enqueues an async device-to-device copy of size bytes from
// src to dst: the destination's engine thread pays the memcpy-API cost at
// hostReady (MXNet's CopyFromTo runs on the destination context's worker);
// the wire transfer begins once the API call completes and the source data
// is ready (dataReady); multi-hop routes are store-and-forward per the
// fabric. The source's copy engine is occupied for the transfer duration,
// so a GPU fanning out to many peers serializes on its DMA engine even
// when the links are distinct — the exposure the paper observes when GPU0
// broadcasts updated weights. It returns the host-call end and the copy's
// arrival time.
func (rt *Runtime) MemcpyPeer(dst, src topology.NodeID, size units.Bytes, stage profiler.Stage, hostReady, dataReady time.Duration) (hostDone, end time.Duration, err error) {
	path, err := rt.fabric.Topology().Route(src, dst, rt.policy)
	if err != nil {
		return 0, 0, err
	}
	issuer := dst
	if rt.devices[issuer] == nil {
		issuer = src
	}
	_, hostDone = rt.hostCall(issuer, APIMemcpyAsync, stage, hostReady, rt.costs.MemcpyAsync, true)
	ready := hostDone
	if dataReady > ready {
		ready = dataReady
	}
	start, end := rt.fabric.Book(path, size, ready)
	if dev := rt.devices[src]; dev != nil {
		if _, dmaEnd := dev.BookDMA(start, end-start); dmaEnd > end {
			end = dmaEnd
		}
	}
	pn := rt.peerName(src, dst)
	rt.record(profiler.Interval{
		Kind: profiler.KindTransfer, Name: pn.memcpy,
		Stage: stage, Track: pn.xfer,
		Start: start, End: end,
	})
	return hostDone, end, nil
}

// MemcpyHostToDevice enqueues a host-to-device copy over the GPU's PCIe
// link (training-data staging).
func (rt *Runtime) MemcpyHostToDevice(dst topology.NodeID, size units.Bytes, stage profiler.Stage, hostReady time.Duration) (hostDone, end time.Duration, err error) {
	top := rt.fabric.Topology()
	host, err := top.HostCPU(dst)
	if err != nil {
		return 0, 0, err
	}
	link := top.DirectLink(dst, host, topology.PCIe)
	if link == nil {
		return 0, 0, fmt.Errorf("cuda: GPU %d has no PCIe link", dst)
	}
	path := topology.Path{Hops: []topology.Hop{{Link: link, From: host, To: dst}}}
	_, hostDone = rt.hostCall(dst, APIMemcpyAsync, stage, hostReady, rt.costs.MemcpyAsync, true)
	start, end := rt.fabric.Book(path, size, hostDone)
	rt.record(profiler.Interval{
		Kind: profiler.KindTransfer, Name: rt.names[dst].memcpyHtoD,
		Stage: stage, Track: rt.names[dst].xferHtoD,
		Start: start, End: end,
	})
	return hostDone, end, nil
}

// MemcpyDeviceToHost enqueues a device-to-host copy over the GPU's PCIe
// link (gradient upload for a CPU parameter server).
func (rt *Runtime) MemcpyDeviceToHost(src topology.NodeID, size units.Bytes, stage profiler.Stage, hostReady, dataReady time.Duration) (hostDone, end time.Duration, err error) {
	top := rt.fabric.Topology()
	host, err := top.HostCPU(src)
	if err != nil {
		return 0, 0, err
	}
	link := top.DirectLink(src, host, topology.PCIe)
	if link == nil {
		return 0, 0, fmt.Errorf("cuda: GPU %d has no PCIe link", src)
	}
	path := topology.Path{Hops: []topology.Hop{{Link: link, From: src, To: host}}}
	_, hostDone = rt.hostCall(src, APIMemcpyAsync, stage, hostReady, rt.costs.MemcpyAsync, true)
	ready := hostDone
	if dataReady > ready {
		ready = dataReady
	}
	start, end := rt.fabric.Book(path, size, ready)
	rt.record(profiler.Interval{
		Kind: profiler.KindTransfer, Name: rt.names[src].memcpyDtoH,
		Stage: stage, Track: rt.names[src].xferDtoH,
		Start: start, End: end,
	})
	return hostDone, end, nil
}

// CPUWork books dur of computation on the named CPU-side resource (the
// parameter-server update loop of MXNet's "local" kvstore), creating the
// resource on first use.
func (rt *Runtime) CPUWork(name string, stage profiler.Stage, ready time.Duration, dur time.Duration) (start, end time.Duration) {
	res := rt.cpuRes[name]
	if res == nil {
		if rt.cpuRes == nil {
			rt.cpuRes = map[string]*sim.Resource{}
		}
		res = sim.NewResource(rt.eng, name)
		rt.cpuRes[name] = res
	}
	start, end = res.Book(ready, dur)
	rt.record(profiler.Interval{
		Kind: profiler.KindMarker, Name: name, Stage: stage,
		Track: name, Start: start, End: end,
	})
	return start, end
}

// Route exposes the runtime's routed path between two GPUs under its
// current policy (used by the communication backends for cost planning).
func (rt *Runtime) Route(src, dst topology.NodeID) (topology.Path, error) {
	return rt.fabric.Topology().Route(src, dst, rt.policy)
}

// Costs returns the runtime's host API costs.
func (rt *Runtime) Costs() Costs { return rt.costs }
