package faults

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/gpu"
	"repro/internal/topology"
	"repro/internal/units"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &Plan{}, true},
		{"failed brick", &Plan{FailedLinks: []Link{{A: 0, B: 1}}}, true},
		{"failed brick reversed", &Plan{FailedLinks: []Link{{A: 1, B: 0}}}, true},
		{"nonexistent link", &Plan{FailedLinks: []Link{{A: 0, B: 4}}}, false},
		{"self link", &Plan{FailedLinks: []Link{{A: 3, B: 3}}}, false},
		{"out of range GPU", &Plan{FailedLinks: []Link{{A: 0, B: 8}}}, false},
		{"negative GPU", &Plan{FailedLinks: []Link{{A: -1, B: 1}}}, false},
		{"duplicate failed", &Plan{FailedLinks: []Link{{A: 0, B: 1}, {A: 1, B: 0}}}, false},
		{"degraded ok", &Plan{DegradedLinks: []Degrade{{A: 2, B: 3, Fraction: 0.5}}}, true},
		{"degraded fraction 1", &Plan{DegradedLinks: []Degrade{{A: 2, B: 3, Fraction: 1}}}, true},
		{"degraded fraction 0", &Plan{DegradedLinks: []Degrade{{A: 2, B: 3, Fraction: 0}}}, false},
		{"degraded fraction >1", &Plan{DegradedLinks: []Degrade{{A: 2, B: 3, Fraction: 1.5}}}, false},
		{"duplicate degraded", &Plan{DegradedLinks: []Degrade{
			{A: 2, B: 3, Fraction: 0.5}, {A: 3, B: 2, Fraction: 0.4}}}, false},
		{"failed and degraded", &Plan{
			FailedLinks:   []Link{{A: 0, B: 1}},
			DegradedLinks: []Degrade{{A: 1, B: 0, Fraction: 0.5}}}, false},
		{"straggler ok", &Plan{Stragglers: []Straggler{{GPU: 4, Slowdown: 1.5}}}, true},
		{"straggler slowdown 1", &Plan{Stragglers: []Straggler{{GPU: 4, Slowdown: 1}}}, true},
		{"straggler slowdown <1", &Plan{Stragglers: []Straggler{{GPU: 4, Slowdown: 0.9}}}, false},
		{"straggler GPU out of range", &Plan{Stragglers: []Straggler{{GPU: 8, Slowdown: 2}}}, false},
		{"duplicate straggler", &Plan{Stragglers: []Straggler{
			{GPU: 4, Slowdown: 1.5}, {GPU: 4, Slowdown: 2}}}, false},
		{"pcie ok", &Plan{PCIeContention: 0.5}, true},
		{"pcie negative", &Plan{PCIeContention: -0.1}, false},
		{"pcie full", &Plan{PCIeContention: 1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate()
			if c.ok && err != nil {
				t.Errorf("want valid, got %v", err)
			}
			if !c.ok && err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestNormalize(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Normalize() != nil {
		t.Error("nil plan must normalize to nil")
	}
	if (&Plan{}).Normalize() != nil {
		t.Error("zero plan must normalize to nil")
	}
	// Pure no-ops normalize away entirely.
	noop := &Plan{
		DegradedLinks: []Degrade{{A: 0, B: 1, Fraction: 1}},
		Stragglers:    []Straggler{{GPU: 3, Slowdown: 1}},
	}
	if got := noop.Normalize(); got != nil {
		t.Errorf("no-op plan must normalize to nil, got %+v", got)
	}
	// Equivalent spellings normalize identically.
	a := &Plan{
		FailedLinks: []Link{{A: 1, B: 0}, {A: 2, B: 0}},
		Stragglers:  []Straggler{{GPU: 5, Slowdown: 2}, {GPU: 1, Slowdown: 1.5}},
	}
	b := &Plan{
		FailedLinks: []Link{{A: 0, B: 2}, {A: 0, B: 1}},
		Stragglers:  []Straggler{{GPU: 1, Slowdown: 1.5}, {GPU: 5, Slowdown: 2}},
	}
	na, nb := a.Normalize(), b.Normalize()
	if !reflect.DeepEqual(na, nb) {
		t.Errorf("equivalent plans normalize differently:\n%+v\n%+v", na, nb)
	}
	want := &Plan{
		FailedLinks: []Link{{A: 0, B: 1}, {A: 0, B: 2}},
		Stragglers:  []Straggler{{GPU: 1, Slowdown: 1.5}, {GPU: 5, Slowdown: 2}},
	}
	if !reflect.DeepEqual(na, want) {
		t.Errorf("canonical form mismatch: got %+v want %+v", na, want)
	}
	// Normalize never mutates its receiver.
	if a.FailedLinks[0] != (Link{A: 1, B: 0}) {
		t.Error("Normalize mutated its receiver")
	}
}

func TestTopologyLowering(t *testing.T) {
	if got := (*Plan)(nil).Topology(); got == nil {
		t.Fatal("nil plan must lower to the healthy DGX-1")
	}
	healthy := topology.DGX1()

	link := func(top *topology.Topology, a, b topology.NodeID) (units.Bandwidth, bool) {
		for _, l := range top.Links() {
			if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
				return l.BW, true
			}
		}
		return 0, false
	}

	// Failed brick: the edge disappears.
	p := &Plan{FailedLinks: []Link{{A: 0, B: 1}}}
	top := p.Topology()
	if _, ok := link(top, 0, 1); ok {
		t.Error("failed link 0-1 still present in lowered topology")
	}
	if _, ok := link(top, 0, 2); !ok {
		t.Error("unrelated link 0-2 missing from lowered topology")
	}

	// Degraded link: bandwidth scales by the fraction.
	p = &Plan{DegradedLinks: []Degrade{{A: 0, B: 1, Fraction: 0.5}}}
	top = p.Topology()
	hbw, _ := link(healthy, 0, 1)
	dbw, ok := link(top, 0, 1)
	if !ok {
		t.Fatal("degraded link 0-1 missing")
	}
	if want := units.Bandwidth(float64(hbw) * 0.5); dbw != want {
		t.Errorf("degraded 0-1 bandwidth = %v, want %v", dbw, want)
	}

	// PCIe contention scales GPU-CPU staging links.
	p = &Plan{PCIeContention: 0.5}
	top = p.Topology()
	var checked bool
	for _, l := range top.Links() {
		if l.Type != topology.PCIe {
			continue
		}
		if l.BW != topology.PCIeGen3x16BW/2 {
			t.Errorf("PCIe link %v-%v bandwidth %v, want half of %v",
				l.A, l.B, l.BW, topology.PCIeGen3x16BW)
		}
		checked = true
	}
	if !checked {
		t.Fatal("no PCIe links found in lowered topology")
	}
}

func TestSpecsLowering(t *testing.T) {
	base := gpu.V100()
	if got := (*Plan)(nil).Specs(base); got != nil {
		t.Error("nil plan must lower to nil spec overrides")
	}
	p := &Plan{Stragglers: []Straggler{{GPU: 3, Slowdown: 2}}}
	specs := p.Specs(base)
	if len(specs) != 1 {
		t.Fatalf("want 1 override, got %d", len(specs))
	}
	s, ok := specs[3]
	if !ok {
		t.Fatal("missing override for GPU 3")
	}
	if s.PeakFP32 != units.FLOPRate(float64(base.PeakFP32)/2) {
		t.Errorf("slowed PeakFP32 = %v, want half of %v", s.PeakFP32, base.PeakFP32)
	}
	if s.MemBW != units.Bandwidth(float64(base.MemBW)/2) {
		t.Errorf("slowed MemBW = %v, want half of %v", s.MemBW, base.MemBW)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := &Plan{
		FailedLinks:    []Link{{A: 0, B: 1}},
		DegradedLinks:  []Degrade{{A: 3, B: 5, Fraction: 0.4}},
		Stragglers:     []Straggler{{GPU: 4, Slowdown: 1.5}},
		PCIeContention: 0.25,
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, &back) {
		t.Errorf("round trip mismatch: %+v vs %+v", p, &back)
	}
	// The wire names are the documented camelCase ones.
	want := `{"failedLinks":[{"a":0,"b":1}],"degradedLinks":[{"a":3,"b":5,"fraction":0.4}],"stragglers":[{"gpu":4,"slowdown":1.5}],"pcieContention":0.25}`
	if string(raw) != want {
		t.Errorf("wire form:\n got %s\nwant %s", raw, want)
	}
}

func TestString(t *testing.T) {
	if got := (*Plan)(nil).String(); got != "healthy" {
		t.Errorf("nil plan renders %q, want \"healthy\"", got)
	}
	p := &Plan{
		FailedLinks:    []Link{{A: 0, B: 1}, {A: 0, B: 2}},
		DegradedLinks:  []Degrade{{A: 3, B: 5, Fraction: 0.4}},
		Stragglers:     []Straggler{{GPU: 4, Slowdown: 1.5}},
		PCIeContention: 0.5,
	}
	want := "links down: 0-1, 0-2; 3-5 at 40%; GPU4 1.5x slow; PCIe -50%"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
