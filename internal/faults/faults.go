// Package faults defines declarative fault plans for the simulated Volta
// DGX-1: failed NVLink bricks, per-link bandwidth degradation, per-GPU
// straggler slowdowns, and PCIe host contention. The paper's central
// finding is that training time on this machine is governed by the NVLink
// hybrid cube-mesh's asymmetric link structure; a fault plan asks the
// follow-up question real fleets pose — what happens when that fabric
// degrades — as a first-class, deterministic input to the simulator
// rather than a hand-built test topology.
//
// A Plan is pure data: it marshals to/from JSON (the dgxsimd wire schema
// and the dgxsim -faults flag), validates against the DGX-1's actual
// wiring, normalizes to a canonical form (so equivalent spellings share
// one fingerprint and one artifact-cache slot), and lowers to the
// concrete simulation inputs — a degraded topology.Topology and per-GPU
// gpu.Spec overrides. Ring construction (nccl), peer routing (p2p), and
// data staging all react through the topology; stragglers react through
// the device specs.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/gpu"
	"repro/internal/topology"
)

// NumGPUs is the DGX-1's device count, the range every GPU reference in a
// plan must fall in.
const NumGPUs = 8

// ErrHardwareMismatch is returned when a fault plan is combined with
// hardware other than the DGX-1. A plan's link coordinates name bricks of
// the DGX-1's cube-mesh; validating them against another machine's wiring
// would silently accept nonsense (or reject valid plans), so the
// combination is a typed, checkable error instead.
var ErrHardwareMismatch = errors.New("faults: fault plans describe the DGX-1's wiring")

// CheckHardware rejects a non-trivial plan on non-DGX-1 hardware.
// hardware is the workload's machine name; the empty string and "dgx1"
// are the machine the plan's brick coordinates refer to. A nil or zero
// plan is valid on any hardware.
func (p *Plan) CheckHardware(hardware string) error {
	if p.IsZero() || hardware == "" || hardware == "dgx1" {
		return nil
	}
	return fmt.Errorf("%w; hardware %q is not the DGX-1", ErrHardwareMismatch, hardware)
}

// Link names one NVLink connection by its GPU endpoints (order
// irrelevant; Normalize canonicalizes to A < B).
type Link struct {
	A int `json:"a"`
	B int `json:"b"`
}

// String renders the link as "a-b".
func (l Link) String() string { return fmt.Sprintf("%d-%d", l.A, l.B) }

// Degrade scales one surviving NVLink connection's bandwidth: Fraction is
// the remaining share in (0, 1]. A fully failed brick belongs in
// FailedLinks instead, so the topology drops the edge and ring search
// never routes over it.
type Degrade struct {
	A        int     `json:"a"`
	B        int     `json:"b"`
	Fraction float64 `json:"fraction"`
}

// Straggler slows one GPU: every kernel class (tensor, FP32, memory) runs
// Slowdown times slower — the thermal-throttle / sick-HBM model. Slowdown
// must be >= 1; exactly 1 is a no-op Normalize drops.
type Straggler struct {
	GPU      int     `json:"gpu"`
	Slowdown float64 `json:"slowdown"`
}

// Plan is a declarative description of a degraded DGX-1. The zero value
// (and nil) is the healthy machine. Plans are deterministic: the same
// plan always builds the same fabric, so faulted simulations memoize and
// reproduce exactly like healthy ones.
type Plan struct {
	// FailedLinks lists NVLink connections removed entirely.
	FailedLinks []Link `json:"failedLinks,omitempty"`
	// DegradedLinks lists NVLink connections at reduced bandwidth.
	DegradedLinks []Degrade `json:"degradedLinks,omitempty"`
	// Stragglers lists slowed GPUs.
	Stragglers []Straggler `json:"stragglers,omitempty"`
	// PCIeContention is the fraction of every PCIe link's bandwidth lost
	// to host traffic, in [0, 1). Zero means uncontended.
	PCIeContention float64 `json:"pcieContention,omitempty"`
}

// IsZero reports whether the plan (nil included) describes the healthy
// machine. Note it is spelling-sensitive — a plan of pure no-ops (e.g. a
// 1.0 slowdown) is not zero until Normalize drops them.
func (p *Plan) IsZero() bool {
	return p == nil ||
		(len(p.FailedLinks) == 0 && len(p.DegradedLinks) == 0 &&
			len(p.Stragglers) == 0 && p.PCIeContention == 0)
}

// norm returns the canonical (a < b) form of a GPU pair.
func norm(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

// checkLink validates one NVLink reference against the DGX-1 wiring.
func checkLink(what string, a, b int) error {
	if a < 0 || a >= NumGPUs || b < 0 || b >= NumGPUs {
		return fmt.Errorf("faults: %s %d-%d references a GPU outside 0..%d", what, a, b, NumGPUs-1)
	}
	if a == b {
		return fmt.Errorf("faults: %s %d-%d is a self-link", what, a, b)
	}
	if !topology.DGX1HasNVLink(topology.NodeID(a), topology.NodeID(b)) {
		return fmt.Errorf("faults: %s %d-%d: the DGX-1 has no NVLink between those GPUs", what, a, b)
	}
	return nil
}

// Validate checks the plan against the DGX-1's wiring and the fields'
// domains. A nil plan is valid. Validation accepts any pair order and any
// list order (Normalize canonicalizes), but rejects references to links
// the machine does not have, out-of-range fractions and slowdowns, and
// contradictory or duplicate entries.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	failed := make(map[[2]int]bool, len(p.FailedLinks))
	for _, l := range p.FailedLinks {
		if err := checkLink("failed link", l.A, l.B); err != nil {
			return err
		}
		a, b := norm(l.A, l.B)
		if failed[[2]int{a, b}] {
			return fmt.Errorf("faults: failed link %d-%d listed twice", a, b)
		}
		failed[[2]int{a, b}] = true
	}
	degraded := make(map[[2]int]bool, len(p.DegradedLinks))
	for _, d := range p.DegradedLinks {
		if err := checkLink("degraded link", d.A, d.B); err != nil {
			return err
		}
		if d.Fraction <= 0 || d.Fraction > 1 {
			return fmt.Errorf("faults: degraded link %d-%d fraction %v out of (0, 1] (a dead brick belongs in failedLinks)", d.A, d.B, d.Fraction)
		}
		a, b := norm(d.A, d.B)
		if degraded[[2]int{a, b}] {
			return fmt.Errorf("faults: degraded link %d-%d listed twice", a, b)
		}
		if failed[[2]int{a, b}] {
			return fmt.Errorf("faults: link %d-%d is both failed and degraded", a, b)
		}
		degraded[[2]int{a, b}] = true
	}
	seen := make(map[int]bool, len(p.Stragglers))
	for _, s := range p.Stragglers {
		if s.GPU < 0 || s.GPU >= NumGPUs {
			return fmt.Errorf("faults: straggler GPU %d outside 0..%d", s.GPU, NumGPUs-1)
		}
		if s.Slowdown < 1 {
			return fmt.Errorf("faults: straggler GPU %d slowdown %v must be >= 1", s.GPU, s.Slowdown)
		}
		if seen[s.GPU] {
			return fmt.Errorf("faults: straggler GPU %d listed twice", s.GPU)
		}
		seen[s.GPU] = true
	}
	if p.PCIeContention < 0 || p.PCIeContention >= 1 {
		return fmt.Errorf("faults: PCIe contention %v out of [0, 1)", p.PCIeContention)
	}
	return nil
}

// Normalize returns the plan in canonical form: pairs ordered A < B,
// lists sorted, and no-op entries (a 1.0 degradation fraction, a 1.0
// slowdown) dropped. A plan that normalizes to the healthy machine
// returns nil, so "no faults" has exactly one spelling — the property
// core.Workload.Fingerprint and the artifact cache rely on to never
// alias a faulted run with a healthy one while still sharing slots
// between equivalent spellings. Normalize never mutates its receiver.
func (p *Plan) Normalize() *Plan {
	if p.IsZero() {
		return nil
	}
	n := &Plan{PCIeContention: p.PCIeContention}
	for _, l := range p.FailedLinks {
		a, b := norm(l.A, l.B)
		n.FailedLinks = append(n.FailedLinks, Link{A: a, B: b})
	}
	sort.Slice(n.FailedLinks, func(i, j int) bool {
		if n.FailedLinks[i].A != n.FailedLinks[j].A {
			return n.FailedLinks[i].A < n.FailedLinks[j].A
		}
		return n.FailedLinks[i].B < n.FailedLinks[j].B
	})
	for _, d := range p.DegradedLinks {
		if d.Fraction == 1 {
			continue
		}
		a, b := norm(d.A, d.B)
		n.DegradedLinks = append(n.DegradedLinks, Degrade{A: a, B: b, Fraction: d.Fraction})
	}
	sort.Slice(n.DegradedLinks, func(i, j int) bool {
		if n.DegradedLinks[i].A != n.DegradedLinks[j].A {
			return n.DegradedLinks[i].A < n.DegradedLinks[j].A
		}
		return n.DegradedLinks[i].B < n.DegradedLinks[j].B
	})
	for _, s := range p.Stragglers {
		if s.Slowdown == 1 {
			continue
		}
		n.Stragglers = append(n.Stragglers, s)
	}
	sort.Slice(n.Stragglers, func(i, j int) bool { return n.Stragglers[i].GPU < n.Stragglers[j].GPU })
	if n.IsZero() {
		return nil
	}
	return n
}

// Topology lowers the plan to the degraded DGX-1 fabric. The healthy
// (nil or zero) plan returns the ordinary DGX1(). NCCL ring search, p2p
// routing, and PCIe data staging all read the returned graph, so every
// consumer of the fabric reacts to the same fault set.
func (p *Plan) Topology() *topology.Topology {
	if p.IsZero() {
		return topology.DGX1()
	}
	spec := topology.DGX1FaultSpec{PCIeScale: 1 - p.PCIeContention}
	for _, l := range p.FailedLinks {
		spec.FailedNVLinks = append(spec.FailedNVLinks,
			[2]topology.NodeID{topology.NodeID(l.A), topology.NodeID(l.B)})
	}
	if len(p.DegradedLinks) > 0 {
		spec.DegradedNVLinks = make(map[[2]topology.NodeID]float64, len(p.DegradedLinks))
		for _, d := range p.DegradedLinks {
			key := [2]topology.NodeID{topology.NodeID(d.A), topology.NodeID(d.B)}
			spec.DegradedNVLinks[key] = d.Fraction
		}
	}
	return topology.DGX1Faulted(spec)
}

// Specs lowers the plan's stragglers to per-device spec overrides over
// the base spec. GPUs without a straggler entry are absent from the map
// (the runtime falls back to base). Returns nil when no GPU straggles.
func (p *Plan) Specs(base gpu.Spec) map[topology.NodeID]gpu.Spec {
	if p == nil || len(p.Stragglers) == 0 {
		return nil
	}
	out := make(map[topology.NodeID]gpu.Spec, len(p.Stragglers))
	for _, s := range p.Stragglers {
		if s.Slowdown > 1 {
			out[topology.NodeID(s.GPU)] = base.Slowed(s.Slowdown)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// String renders a compact human-readable description, e.g.
// "links down: 0-1, 0-2; 3-5 at 40%; GPU4 1.5x slow; PCIe -50%".
// The healthy plan renders as "healthy".
func (p *Plan) String() string {
	if p.IsZero() {
		return "healthy"
	}
	var parts []string
	if len(p.FailedLinks) > 0 {
		names := make([]string, len(p.FailedLinks))
		for i, l := range p.FailedLinks {
			names[i] = l.String()
		}
		parts = append(parts, "links down: "+strings.Join(names, ", "))
	}
	for _, d := range p.DegradedLinks {
		parts = append(parts, fmt.Sprintf("%d-%d at %.0f%%", d.A, d.B, 100*d.Fraction))
	}
	for _, s := range p.Stragglers {
		parts = append(parts, fmt.Sprintf("GPU%d %.2gx slow", s.GPU, s.Slowdown))
	}
	if p.PCIeContention > 0 {
		parts = append(parts, fmt.Sprintf("PCIe -%.0f%%", 100*p.PCIeContention))
	}
	return strings.Join(parts, "; ")
}
