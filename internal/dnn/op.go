package dnn

import (
	"fmt"

	"repro/internal/units"
)

// OpKind identifies the operator type.
type OpKind int

// Operator kinds.
const (
	OpInput OpKind = iota
	OpConv
	OpFC
	OpPool
	OpActivation
	OpLRN
	OpBatchNorm
	OpDropout
	OpConcat
	OpAdd
	OpFlatten
	OpSoftmax
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "input"
	case OpConv:
		return "conv"
	case OpFC:
		return "fc"
	case OpPool:
		return "pool"
	case OpActivation:
		return "activation"
	case OpLRN:
		return "lrn"
	case OpBatchNorm:
		return "batchnorm"
	case OpDropout:
		return "dropout"
	case OpConcat:
		return "concat"
	case OpAdd:
		return "add"
	case OpFlatten:
		return "flatten"
	case OpSoftmax:
		return "softmax"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op describes an operator's shape, parameter, and cost semantics. All
// per-image quantities are later multiplied by batch size by the planner.
type Op interface {
	Kind() OpKind
	// InferShape computes the output shape from the input shapes.
	InferShape(ins []Shape) (Shape, error)
	// Params returns the number of trainable parameters.
	Params(ins []Shape, out Shape) int64
	// FwdFLOPs returns forward arithmetic per image.
	FwdFLOPs(ins []Shape, out Shape) units.FLOPs
	// Weighted reports whether the op carries trainable weights that
	// participate in gradient exchange.
	Weighted() bool
}

func one(ins []Shape) (Shape, error) {
	if len(ins) != 1 {
		return Shape{}, fmt.Errorf("dnn: expected 1 input, got %d", len(ins))
	}
	if !ins[0].Valid() {
		return Shape{}, fmt.Errorf("dnn: invalid input shape %v", ins[0])
	}
	return ins[0], nil
}

// Input is the data source pseudo-op.
type Input struct{ Shape Shape }

// Kind implements Op.
func (Input) Kind() OpKind { return OpInput }

// InferShape implements Op.
func (i Input) InferShape(ins []Shape) (Shape, error) {
	if len(ins) != 0 {
		return Shape{}, fmt.Errorf("dnn: input takes no inputs")
	}
	if !i.Shape.Valid() {
		return Shape{}, fmt.Errorf("dnn: invalid input shape %v", i.Shape)
	}
	return i.Shape, nil
}

// Params implements Op.
func (Input) Params([]Shape, Shape) int64 { return 0 }

// FwdFLOPs implements Op.
func (Input) FwdFLOPs([]Shape, Shape) units.FLOPs { return 0 }

// Weighted implements Op.
func (Input) Weighted() bool { return false }

// Conv is a 2-D convolution.
type Conv struct {
	OutC       int
	KH, KW     int
	StrideH    int
	StrideW    int
	PadH, PadW int
	Bias       bool
	// Groups partitions input/output channels (AlexNet's historical
	// grouping). Zero means 1.
	Groups int
}

// Kind implements Op.
func (Conv) Kind() OpKind { return OpConv }

func (c Conv) groups() int {
	if c.Groups <= 0 {
		return 1
	}
	return c.Groups
}

func (c Conv) strides() (int, int) {
	sh, sw := c.StrideH, c.StrideW
	if sh <= 0 {
		sh = 1
	}
	if sw <= 0 {
		sw = sh
	}
	return sh, sw
}

// InferShape implements Op.
func (c Conv) InferShape(ins []Shape) (Shape, error) {
	in, err := one(ins)
	if err != nil {
		return Shape{}, err
	}
	if c.OutC <= 0 || c.KH <= 0 || c.KW <= 0 {
		return Shape{}, fmt.Errorf("dnn: bad conv config %+v", c)
	}
	if in.C%c.groups() != 0 || c.OutC%c.groups() != 0 {
		return Shape{}, fmt.Errorf("dnn: conv groups %d do not divide channels %d->%d", c.groups(), in.C, c.OutC)
	}
	sh, sw := c.strides()
	oh := (in.H+2*c.PadH-c.KH)/sh + 1
	ow := (in.W+2*c.PadW-c.KW)/sw + 1
	if oh <= 0 || ow <= 0 {
		return Shape{}, fmt.Errorf("dnn: conv output collapses: in=%v k=%dx%d s=%d,%d p=%d,%d", in, c.KH, c.KW, sh, sw, c.PadH, c.PadW)
	}
	return Shape{C: c.OutC, H: oh, W: ow}, nil
}

// Params implements Op.
func (c Conv) Params(ins []Shape, _ Shape) int64 {
	in := ins[0]
	g := int64(c.groups())
	w := int64(c.KH) * int64(c.KW) * (int64(in.C) / g) * int64(c.OutC)
	if c.Bias {
		w += int64(c.OutC)
	}
	return w
}

// FwdFLOPs implements Op: 2 FLOPs per MAC over every output element.
func (c Conv) FwdFLOPs(ins []Shape, out Shape) units.FLOPs {
	in := ins[0]
	g := int64(c.groups())
	macsPerOut := int64(c.KH) * int64(c.KW) * (int64(in.C) / g)
	return units.FLOPs(2 * macsPerOut * out.Elems())
}

// Weighted implements Op.
func (Conv) Weighted() bool { return true }

// FC is a fully-connected (dense) layer.
type FC struct {
	OutF int
	Bias bool
}

// Kind implements Op.
func (FC) Kind() OpKind { return OpFC }

// InferShape implements Op.
func (f FC) InferShape(ins []Shape) (Shape, error) {
	in, err := one(ins)
	if err != nil {
		return Shape{}, err
	}
	if f.OutF <= 0 {
		return Shape{}, fmt.Errorf("dnn: bad fc output features %d", f.OutF)
	}
	_ = in
	return Vec(f.OutF), nil
}

// Params implements Op.
func (f FC) Params(ins []Shape, _ Shape) int64 {
	in := ins[0].Elems()
	w := in * int64(f.OutF)
	if f.Bias {
		w += int64(f.OutF)
	}
	return w
}

// FwdFLOPs implements Op.
func (f FC) FwdFLOPs(ins []Shape, _ Shape) units.FLOPs {
	return units.FLOPs(2 * ins[0].Elems() * int64(f.OutF))
}

// Weighted implements Op.
func (FC) Weighted() bool { return true }

// PoolMode selects pooling behaviour.
type PoolMode int

// Pooling modes.
const (
	MaxPool PoolMode = iota
	AvgPool
)

// Pool is a spatial pooling layer.
type Pool struct {
	Mode   PoolMode
	K      int
	Stride int
	Pad    int
	// Global pools the whole feature map to 1x1 regardless of K.
	Global bool
}

// Kind implements Op.
func (Pool) Kind() OpKind { return OpPool }

// InferShape implements Op.
func (p Pool) InferShape(ins []Shape) (Shape, error) {
	in, err := one(ins)
	if err != nil {
		return Shape{}, err
	}
	if p.Global {
		return Shape{C: in.C, H: 1, W: 1}, nil
	}
	if p.K <= 0 {
		return Shape{}, fmt.Errorf("dnn: bad pool kernel %d", p.K)
	}
	s := p.Stride
	if s <= 0 {
		s = p.K
	}
	// Ceil division mirrors the frameworks' default pooling convention.
	oh := ceilDiv(in.H+2*p.Pad-p.K, s) + 1
	ow := ceilDiv(in.W+2*p.Pad-p.K, s) + 1
	if oh <= 0 || ow <= 0 {
		return Shape{}, fmt.Errorf("dnn: pool output collapses: in=%v k=%d s=%d", in, p.K, s)
	}
	return Shape{C: in.C, H: oh, W: ow}, nil
}

func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Params implements Op.
func (Pool) Params([]Shape, Shape) int64 { return 0 }

// FwdFLOPs implements Op: one compare/add per window element.
func (p Pool) FwdFLOPs(ins []Shape, out Shape) units.FLOPs {
	k := int64(p.K)
	if p.Global {
		return units.FLOPs(ins[0].Elems())
	}
	return units.FLOPs(out.Elems() * k * k)
}

// Weighted implements Op.
func (Pool) Weighted() bool { return false }

// ActMode selects the activation function.
type ActMode int

// Activation functions.
const (
	ReLU ActMode = iota
	Sigmoid
	Tanh
)

// Activation is an elementwise nonlinearity.
type Activation struct{ Mode ActMode }

// Kind implements Op.
func (Activation) Kind() OpKind { return OpActivation }

// InferShape implements Op.
func (Activation) InferShape(ins []Shape) (Shape, error) { return one(ins) }

// Params implements Op.
func (Activation) Params([]Shape, Shape) int64 { return 0 }

// FwdFLOPs implements Op.
func (a Activation) FwdFLOPs(ins []Shape, _ Shape) units.FLOPs {
	per := int64(1)
	if a.Mode != ReLU {
		per = 4 // exp-based activations cost a few ops each
	}
	return units.FLOPs(per * ins[0].Elems())
}

// Weighted implements Op.
func (Activation) Weighted() bool { return false }

// LRN is AlexNet-era local response normalization.
type LRN struct{ Size int }

// Kind implements Op.
func (LRN) Kind() OpKind { return OpLRN }

// InferShape implements Op.
func (LRN) InferShape(ins []Shape) (Shape, error) { return one(ins) }

// Params implements Op.
func (LRN) Params([]Shape, Shape) int64 { return 0 }

// FwdFLOPs implements Op.
func (l LRN) FwdFLOPs(ins []Shape, _ Shape) units.FLOPs {
	n := int64(l.Size)
	if n <= 0 {
		n = 5
	}
	return units.FLOPs(2 * n * ins[0].Elems())
}

// Weighted implements Op.
func (LRN) Weighted() bool { return false }

// BatchNorm is batch normalization (scale and shift are its trainable
// parameters).
type BatchNorm struct{}

// Kind implements Op.
func (BatchNorm) Kind() OpKind { return OpBatchNorm }

// InferShape implements Op.
func (BatchNorm) InferShape(ins []Shape) (Shape, error) { return one(ins) }

// Params implements Op.
func (BatchNorm) Params(ins []Shape, _ Shape) int64 { return 2 * int64(ins[0].C) }

// FwdFLOPs implements Op.
func (BatchNorm) FwdFLOPs(ins []Shape, _ Shape) units.FLOPs {
	return units.FLOPs(4 * ins[0].Elems())
}

// Weighted implements Op.
func (BatchNorm) Weighted() bool { return true }

// Dropout zeroes a fraction of activations during training.
type Dropout struct{ P float64 }

// Kind implements Op.
func (Dropout) Kind() OpKind { return OpDropout }

// InferShape implements Op.
func (Dropout) InferShape(ins []Shape) (Shape, error) { return one(ins) }

// Params implements Op.
func (Dropout) Params([]Shape, Shape) int64 { return 0 }

// FwdFLOPs implements Op.
func (Dropout) FwdFLOPs(ins []Shape, _ Shape) units.FLOPs {
	return units.FLOPs(ins[0].Elems())
}

// Weighted implements Op.
func (Dropout) Weighted() bool { return false }

// Concat joins inputs along the channel dimension (inception modules).
type Concat struct{}

// Kind implements Op.
func (Concat) Kind() OpKind { return OpConcat }

// InferShape implements Op.
func (Concat) InferShape(ins []Shape) (Shape, error) {
	if len(ins) < 2 {
		return Shape{}, fmt.Errorf("dnn: concat needs >= 2 inputs, got %d", len(ins))
	}
	out := ins[0]
	for _, in := range ins[1:] {
		if in.H != out.H || in.W != out.W {
			return Shape{}, fmt.Errorf("dnn: concat spatial mismatch %v vs %v", out, in)
		}
		out.C += in.C
	}
	return out, nil
}

// Params implements Op.
func (Concat) Params([]Shape, Shape) int64 { return 0 }

// FwdFLOPs implements Op (pure data movement).
func (Concat) FwdFLOPs([]Shape, Shape) units.FLOPs { return 0 }

// Weighted implements Op.
func (Concat) Weighted() bool { return false }

// Add sums inputs elementwise (residual shortcuts).
type Add struct{}

// Kind implements Op.
func (Add) Kind() OpKind { return OpAdd }

// InferShape implements Op.
func (Add) InferShape(ins []Shape) (Shape, error) {
	if len(ins) < 2 {
		return Shape{}, fmt.Errorf("dnn: add needs >= 2 inputs, got %d", len(ins))
	}
	for _, in := range ins[1:] {
		if in != ins[0] {
			return Shape{}, fmt.Errorf("dnn: add shape mismatch %v vs %v", ins[0], in)
		}
	}
	return ins[0], nil
}

// Params implements Op.
func (Add) Params([]Shape, Shape) int64 { return 0 }

// FwdFLOPs implements Op.
func (Add) FwdFLOPs(ins []Shape, out Shape) units.FLOPs {
	return units.FLOPs(int64(len(ins)-1) * out.Elems())
}

// Weighted implements Op.
func (Add) Weighted() bool { return false }

// Flatten reshapes a feature map to a vector.
type Flatten struct{}

// Kind implements Op.
func (Flatten) Kind() OpKind { return OpFlatten }

// InferShape implements Op.
func (Flatten) InferShape(ins []Shape) (Shape, error) {
	in, err := one(ins)
	if err != nil {
		return Shape{}, err
	}
	return Vec(int(in.Elems())), nil
}

// Params implements Op.
func (Flatten) Params([]Shape, Shape) int64 { return 0 }

// FwdFLOPs implements Op.
func (Flatten) FwdFLOPs([]Shape, Shape) units.FLOPs { return 0 }

// Weighted implements Op.
func (Flatten) Weighted() bool { return false }

// Softmax is the classification head.
type Softmax struct{}

// Kind implements Op.
func (Softmax) Kind() OpKind { return OpSoftmax }

// InferShape implements Op.
func (Softmax) InferShape(ins []Shape) (Shape, error) { return one(ins) }

// Params implements Op.
func (Softmax) Params([]Shape, Shape) int64 { return 0 }

// FwdFLOPs implements Op.
func (Softmax) FwdFLOPs(ins []Shape, _ Shape) units.FLOPs {
	return units.FLOPs(5 * ins[0].Elems())
}

// Weighted implements Op.
func (Softmax) Weighted() bool { return false }
