package dnn

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/units"
)

// PlanOptions tunes how network layers are lowered to kernels.
type PlanOptions struct {
	// TensorCores lowers convolutions and fully-connected GEMMs to the
	// tensor-core pipeline (the V100 feature the paper highlights);
	// otherwise they use FP32 FMA pipes.
	TensorCores bool
	// Winograd lowers eligible 3x3 stride-1 convolutions through the
	// F(2x2,3x3) Winograd transform — 2.25x fewer multiplies at the cost
	// of transform overhead (a cuDNN algorithm choice of the paper's era;
	// the kernel-level optimization axis of the related work).
	Winograd bool
}

// winogradSavings is the arithmetic reduction of F(2x2,3x3); winogradEff
// discounts for the input/output transforms.
const (
	winogradSavings = 2.25
	winogradEff     = 0.80
)

// winogradEligible reports whether a conv can take the Winograd path.
func winogradEligible(op Op) bool {
	c, ok := op.(Conv)
	if !ok {
		return false
	}
	sh, sw := c.strides()
	return c.KH == 3 && c.KW == 3 && sh == 1 && sw == 1 && c.groups() == 1
}

// Achievable fractions of the respective peaks, calibrated so V100
// throughput lands in the range frameworks of the paper's era reported
// (ResNet-50-class networks at a few hundred images/s/GPU).
const (
	convTensorEff = 0.10
	convFMAEff    = 0.45
	fcEff         = 0.25
)

// gemmCost classifies a conv/FC kernel.
func gemmCost(opt PlanOptions, effFMA float64, effTensor float64) (gpu.KernelClass, float64) {
	if opt.TensorCores {
		return gpu.ClassTensor, effTensor
	}
	return gpu.ClassFMA, effFMA
}

// forwardKernel lowers one node's forward pass.
func forwardKernel(n *Node, batch int, opt PlanOptions) gpu.KernelCost {
	b := int64(batch)
	mem := (n.InputBytesPerImage()+n.ActivationBytesPerImage())*units.Bytes(b) +
		units.BytesOf(n.ParamsN, units.Float32Size)
	c := gpu.KernelCost{
		Name:        n.Op.Kind().String() + "_fprop",
		FLOPs:       n.FwdFLOPs * units.FLOPs(b),
		MemBytes:    mem,
		Parallelism: n.Out.Elems() * b,
	}
	switch n.Op.Kind() {
	case OpConv:
		c.Class, c.Eff = gemmCost(opt, convFMAEff, convTensorEff)
		if opt.Winograd && winogradEligible(n.Op) {
			c.Name = "conv_winograd_fprop"
			c.FLOPs = units.FLOPs(float64(c.FLOPs) / winogradSavings)
			c.Eff *= winogradEff
		}
	case OpFC:
		c.Class, c.Eff = gemmCost(opt, fcEff, fcEff/2)
	default:
		c.Class = gpu.ClassMemory
	}
	return c
}

// planKey identifies one memoized lowering of a network.
type planKey struct {
	batch int
	opt   PlanOptions
}

// compiledPlans is one memoized lowering: the forward kernel sequence and
// the backward steps for a (batch, options) pair.
type compiledPlans struct {
	fwd []gpu.KernelCost
	bwd []BackwardStep
}

// compiled returns the memoized plans for a batch size and option set,
// lowering them on first use. The returned plans are shared — callers
// must treat the slices and the steps they contain as read-only (the
// trainer copies kernels by value when it needs to relabel them).
func (n *Network) compiled(batch int, opt PlanOptions) *compiledPlans {
	if batch <= 0 {
		panic(fmt.Sprintf("dnn: bad batch size %d", batch))
	}
	key := planKey{batch: batch, opt: opt}
	n.planMu.Lock()
	defer n.planMu.Unlock()
	if p, ok := n.plans[key]; ok {
		return p
	}
	p := &compiledPlans{
		fwd: n.lowerForward(batch, opt),
		bwd: n.lowerBackward(batch, opt),
	}
	if n.plans == nil {
		n.plans = make(map[planKey]*compiledPlans)
	}
	n.plans[key] = p
	return p
}

// ForwardPlan lowers the network's forward pass for one mini-batch into an
// ordered kernel sequence (input and zero-cost reshape nodes emit nothing).
// The plan is memoized per (batch, options); treat it as read-only.
func (n *Network) ForwardPlan(batch int, opt PlanOptions) []gpu.KernelCost {
	return n.compiled(batch, opt).fwd
}

func (n *Network) lowerForward(batch int, opt PlanOptions) []gpu.KernelCost {
	var plan []gpu.KernelCost
	for _, nd := range n.nodes {
		switch nd.Op.Kind() {
		case OpInput, OpFlatten:
			continue
		}
		plan = append(plan, forwardKernel(nd, batch, opt))
	}
	return plan
}

// BackwardStep is one node's backward pass: its kernels, and — if the node
// carries weights — the parameter array whose gradient becomes available
// when the step completes. The weight-update stage begins exchanging that
// gradient immediately (MXNet's BP/WU pipelining).
type BackwardStep struct {
	Node    *Node
	Kernels []gpu.KernelCost
	// Layer is non-nil when this step produces a weight gradient.
	Layer *WeightedLayer
}

// BackwardPlan lowers the backward pass in reverse topological order.
// The plan is memoized per (batch, options); treat it as read-only.
func (n *Network) BackwardPlan(batch int, opt PlanOptions) []BackwardStep {
	return n.compiled(batch, opt).bwd
}

func (n *Network) lowerBackward(batch int, opt PlanOptions) []BackwardStep {
	b := int64(batch)
	var steps []BackwardStep
	for i := len(n.nodes) - 1; i >= 0; i-- {
		nd := n.nodes[i]
		switch nd.Op.Kind() {
		case OpInput, OpFlatten:
			continue
		}
		kind := nd.Op.Kind().String()
		inB := nd.InputBytesPerImage() * units.Bytes(b)
		outB := nd.ActivationBytesPerImage() * units.Bytes(b)
		paramB := units.BytesOf(nd.ParamsN, units.Float32Size)
		step := BackwardStep{Node: nd}
		switch nd.Op.Kind() {
		case OpConv, OpFC:
			class, eff := gemmCost(opt, convFMAEff, convTensorEff)
			flopScale := 1.0
			if nd.Op.Kind() == OpFC {
				class, eff = gemmCost(opt, fcEff, fcEff/2)
			} else if opt.Winograd && winogradEligible(nd.Op) {
				flopScale = 1 / winogradSavings
				eff *= winogradEff
			}
			// Data gradient: same arithmetic as forward.
			step.Kernels = append(step.Kernels, gpu.KernelCost{
				Name:        kind + "_dgrad",
				FLOPs:       units.FLOPs(float64(nd.FwdFLOPs*units.FLOPs(b)) * flopScale),
				MemBytes:    inB + outB + paramB,
				Parallelism: nd.Inputs[0].Out.Elems() * b,
				Class:       class,
				Eff:         eff,
			})
			// Weight gradient: same arithmetic, writes the gradient array.
			step.Kernels = append(step.Kernels, gpu.KernelCost{
				Name:        kind + "_wgrad",
				FLOPs:       units.FLOPs(float64(nd.FwdFLOPs*units.FLOPs(b)) * flopScale),
				MemBytes:    inB + outB + 2*paramB,
				Parallelism: maxI64(nd.ParamsN, nd.Out.Elems()*b/4),
				Class:       class,
				Eff:         eff,
			})
		default:
			flops := nd.FwdFLOPs * units.FLOPs(b)
			if nd.Op.Kind() == OpBatchNorm {
				flops *= 2 // reductions over the batch in both directions
			}
			step.Kernels = append(step.Kernels, gpu.KernelCost{
				Name:        kind + "_bgrad",
				FLOPs:       flops,
				MemBytes:    2 * (inB + outB),
				Parallelism: nd.Out.Elems() * b,
				Class:       gpu.ClassMemory,
			})
		}
		if nd.Op.Weighted() && nd.ParamsN > 0 {
			step.Layer = &WeightedLayer{Name: nd.Name, Params: nd.ParamsN}
		}
		steps = append(steps, step)
	}
	return steps
}

// NodePlan is one node's lowered kernels, used by schedulers that place
// layers individually (model parallelism) rather than replicating the
// whole network.
type NodePlan struct {
	Node *Node
	// Fwd is empty for nodes that lower to no kernel (input, flatten).
	Fwd []gpu.KernelCost
	Bwd []gpu.KernelCost
	// Layer is non-nil when the node carries weights.
	Layer *WeightedLayer
}

// NodePlans lowers every node individually, in topological order.
func (n *Network) NodePlans(batch int, opt PlanOptions) []NodePlan {
	if batch <= 0 {
		panic(fmt.Sprintf("dnn: bad batch size %d", batch))
	}
	bwdByNode := make(map[*Node]BackwardStep, len(n.nodes))
	for _, step := range n.BackwardPlan(batch, opt) {
		bwdByNode[step.Node] = step
	}
	plans := make([]NodePlan, 0, len(n.nodes))
	for _, nd := range n.nodes {
		p := NodePlan{Node: nd}
		switch nd.Op.Kind() {
		case OpInput, OpFlatten:
		default:
			p.Fwd = []gpu.KernelCost{forwardKernel(nd, batch, opt)}
		}
		if step, ok := bwdByNode[nd]; ok {
			p.Bwd = step.Kernels
			p.Layer = step.Layer
		}
		plans = append(plans, p)
	}
	return plans
}

// CutPoints returns the indices i (into Nodes()) after which the network
// can be cleanly split into a prefix and a suffix: exactly one produced
// tensor is still live (node i's own output), so a pipeline stage boundary
// transfers a single activation. The final node is never a cut.
func (n *Network) CutPoints() []int {
	consumers := make(map[*Node]int, len(n.nodes))
	for _, nd := range n.nodes {
		for _, in := range nd.Inputs {
			consumers[in]++
		}
	}
	remaining := make(map[*Node]int, len(n.nodes))
	for nd, c := range consumers {
		remaining[nd] = c
	}
	var cuts []int
	live := 0
	for i, nd := range n.nodes {
		if consumers[nd] > 0 {
			live++
		}
		for _, in := range nd.Inputs {
			remaining[in]--
			if remaining[in] == 0 {
				live--
			}
		}
		if i == len(n.nodes)-1 {
			break
		}
		if live == 1 && consumers[nd] > 0 {
			// The only live tensor must be this node's own output;
			// otherwise the boundary would need an older tensor too.
			cuts = append(cuts, i)
		}
	}
	return cuts
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PlanFLOPs sums the arithmetic of a kernel sequence.
func PlanFLOPs(ks []gpu.KernelCost) units.FLOPs {
	var f units.FLOPs
	for _, k := range ks {
		f += k.FLOPs
	}
	return f
}

// PlanDuration sums kernel durations back-to-back on one device spec (an
// unpipelined lower-level baseline used by tests and analytic checks).
func PlanDuration(spec gpu.Spec, ks []gpu.KernelCost) (d int64) {
	for _, k := range ks {
		d += int64(spec.KernelDuration(k))
	}
	return d
}
