// Package dnn provides the neural-network description layer of the
// simulator: operators, a DAG builder with shape inference, and per-layer
// analytical costs (parameters, FLOPs, activation footprints) from which
// the training model derives kernel plans. Networks are descriptions, not
// numeric executors — the paper's measurements depend on sizes and
// schedules, not on tensor values.
package dnn

import "fmt"

// Shape is the per-image feature-map shape in CHW layout. Fully-connected
// features use C=features, H=W=1.
type Shape struct {
	C, H, W int
}

// Elems returns the number of elements per image.
func (s Shape) Elems() int64 { return int64(s.C) * int64(s.H) * int64(s.W) }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.C > 0 && s.H > 0 && s.W > 0 }

// String renders the shape, e.g. "64x56x56".
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Vec returns a feature-vector shape with n features.
func Vec(n int) Shape { return Shape{C: n, H: 1, W: 1} }
