package dnn

import (
	"strings"
	"testing"

	"repro/internal/gpu"
)

func TestProfileLayersBasics(t *testing.T) {
	n := buildTiny()
	stats := ProfileLayers(n, 16, gpu.V100(), PlanOptions{TensorCores: true})
	// conv, relu, fc, softmax (input and flatten omitted).
	if len(stats) != 4 {
		t.Fatalf("stats = %d, want 4", len(stats))
	}
	for _, s := range stats {
		if s.FPTime <= 0 || s.BPTime <= 0 {
			t.Errorf("%s: non-positive times %v/%v", s.Name, s.FPTime, s.BPTime)
		}
		if s.BoundBy == "" {
			t.Errorf("%s: missing roofline class", s.Name)
		}
	}
}

func TestProfileLayersSumsMatchPlans(t *testing.T) {
	n := buildTiny()
	spec := gpu.V100()
	opt := PlanOptions{}
	stats := ProfileLayers(n, 8, spec, opt)
	var statTotal int64
	for _, s := range stats {
		statTotal += int64(s.FPTime) + int64(s.BPTime)
	}
	planTotal := PlanDuration(spec, n.ForwardPlan(8, opt))
	for _, step := range n.BackwardPlan(8, opt) {
		planTotal += PlanDuration(spec, step.Kernels)
	}
	if statTotal != planTotal {
		t.Errorf("stat total %d != plan total %d", statTotal, planTotal)
	}
}

func TestBoundByClassification(t *testing.T) {
	spec := gpu.V100()
	// A large GEMM-like kernel: compute bound.
	compute := gpu.KernelCost{FLOPs: 100e9, MemBytes: 1 << 20, Parallelism: 1 << 30, Class: gpu.ClassFMA}
	if got := boundBy(spec, compute); got != "compute" {
		t.Errorf("big GEMM classified %q", got)
	}
	// A streaming elementwise kernel: memory bound.
	memory := gpu.KernelCost{FLOPs: 1e6, MemBytes: 1 << 30, Parallelism: 1 << 30, Class: gpu.ClassMemory}
	if got := boundBy(spec, memory); got != "memory" {
		t.Errorf("streaming kernel classified %q", got)
	}
	// A tiny kernel: overhead bound.
	tiny := gpu.KernelCost{FLOPs: 100, MemBytes: 128, Parallelism: 64, Class: gpu.ClassFMA}
	if got := boundBy(spec, tiny); got != "overhead" {
		t.Errorf("tiny kernel classified %q", got)
	}
}

func TestTopLayersOrdering(t *testing.T) {
	n := buildTiny()
	stats := ProfileLayers(n, 64, gpu.V100(), PlanOptions{})
	top := TopLayers(stats, 2)
	if len(top) != 2 {
		t.Fatalf("top = %d", len(top))
	}
	if top[0].Total() < top[1].Total() {
		t.Error("top layers not sorted by total time")
	}
	all := TopLayers(stats, 0)
	if len(all) != len(stats) {
		t.Error("k=0 should return all")
	}
}

func TestFormatLayerTable(t *testing.T) {
	n := buildTiny()
	stats := ProfileLayers(n, 16, gpu.V100(), PlanOptions{})
	s := FormatLayerTable(stats)
	for _, want := range []string{"layer", "conv", "fc", "bound-by"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}
