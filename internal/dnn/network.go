package dnn

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/units"
)

// Node is one operator instance in a network DAG, with its inferred output
// shape and derived per-image costs.
type Node struct {
	Name   string
	Op     Op
	Inputs []*Node

	Out      Shape
	ParamsN  int64
	FwdFLOPs units.FLOPs // per image
}

// ActivationBytesPerImage returns the bytes this node's output occupies for
// one image (float32 storage).
func (n *Node) ActivationBytesPerImage() units.Bytes {
	return units.BytesOf(n.Out.Elems(), units.Float32Size)
}

// InputBytesPerImage returns the summed bytes of this node's inputs for one
// image.
func (n *Node) InputBytesPerImage() units.Bytes {
	var b units.Bytes
	for _, in := range n.Inputs {
		b += units.BytesOf(in.Out.Elems(), units.Float32Size)
	}
	return b
}

// Network is a built, shape-checked DAG in topological order. The node
// graph is immutable after Finish; lowered kernel plans are memoized per
// (batch, options) under planMu, so a network shared across goroutines
// (the model zoo hands out one instance per model) compiles each plan
// once.
type Network struct {
	Name  string
	nodes []*Node

	planMu sync.Mutex
	plans  map[planKey]*compiledPlans
}

// Builder constructs networks. All add methods panic on structural errors
// (bad shapes, duplicate names): network definitions are static program
// data, so failing loudly at construction is the correct behaviour. Use
// Finish to obtain the network.
type Builder struct {
	name  string
	nodes []*Node
	names map[string]bool
	err   error
}

// NewBuilder starts a network definition.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, names: make(map[string]bool)}
}

// Add appends an operator consuming the given inputs and returns its node.
func (b *Builder) Add(name string, op Op, inputs ...*Node) *Node {
	if b.names[name] {
		panic(fmt.Sprintf("dnn: duplicate layer name %q in %s", name, b.name))
	}
	b.names[name] = true
	shapes := make([]Shape, len(inputs))
	for i, in := range inputs {
		shapes[i] = in.Out
	}
	out, err := op.InferShape(shapes)
	if err != nil {
		panic(fmt.Sprintf("dnn: %s/%s: %v", b.name, name, err))
	}
	n := &Node{
		Name:     name,
		Op:       op,
		Inputs:   inputs,
		Out:      out,
		ParamsN:  op.Params(shapes, out),
		FwdFLOPs: op.FwdFLOPs(shapes, out),
	}
	b.nodes = append(b.nodes, n)
	return n
}

// Input adds the data source node.
func (b *Builder) Input(name string, s Shape) *Node {
	return b.Add(name, Input{Shape: s})
}

// Finish validates and returns the network.
func (b *Builder) Finish() *Network {
	if len(b.nodes) == 0 {
		panic("dnn: empty network " + b.name)
	}
	return &Network{Name: b.name, nodes: b.nodes}
}

// Nodes returns the nodes in topological (construction) order.
func (n *Network) Nodes() []*Node {
	out := make([]*Node, len(n.nodes))
	copy(out, n.nodes)
	return out
}

// ParamCount returns total trainable parameters.
func (n *Network) ParamCount() int64 {
	var p int64
	for _, nd := range n.nodes {
		p += nd.ParamsN
	}
	return p
}

// ModelBytes returns the float32 storage of all parameters — the size of
// the gradient exchange each iteration ("the size of the gradient data
// should be approximately equal to the size of the network model").
func (n *Network) ModelBytes() units.Bytes {
	return units.BytesOf(n.ParamCount(), units.Float32Size)
}

// FwdFLOPsPerImage returns total forward arithmetic per image.
func (n *Network) FwdFLOPsPerImage() units.FLOPs {
	var f units.FLOPs
	for _, nd := range n.nodes {
		f += nd.FwdFLOPs
	}
	return f
}

// ActivationElemsPerImage returns the summed output elements of all nodes —
// the feature-map footprint one image generates when all activations are
// retained for backpropagation.
func (n *Network) ActivationElemsPerImage() int64 {
	var e int64
	for _, nd := range n.nodes {
		e += nd.Out.Elems()
	}
	return e
}

// CountKind returns the number of nodes of the given operator kind.
func (n *Network) CountKind(k OpKind) int {
	c := 0
	for _, nd := range n.nodes {
		if nd.Op.Kind() == k {
			c++
		}
	}
	return c
}

// WeightedLayer identifies one parameter array for gradient exchange.
type WeightedLayer struct {
	Name   string
	Params int64
}

// WeightedLayers returns the network's parameter arrays in forward order.
// Backpropagation produces their gradients in reverse order; the kvstore
// keys gradient pushes by these entries, as MXNet keys by NDArray.
func (n *Network) WeightedLayers() []WeightedLayer {
	var out []WeightedLayer
	for _, nd := range n.nodes {
		if nd.Op.Weighted() && nd.ParamsN > 0 {
			out = append(out, WeightedLayer{Name: nd.Name, Params: nd.ParamsN})
		}
	}
	return out
}

// Depth returns the longest input-to-output path counting only conv and FC
// nodes — the conventional "N-layer network" depth (AlexNet 8, GoogLeNet
// 22, ResNet-50 50).
func (n *Network) Depth() int {
	depth := make(map[*Node]int, len(n.nodes))
	best := 0
	for _, nd := range n.nodes {
		d := 0
		for _, in := range nd.Inputs {
			if depth[in] > d {
				d = depth[in]
			}
		}
		switch nd.Op.Kind() {
		case OpConv, OpFC:
			d++
		}
		depth[nd] = d
		if d > best {
			best = d
		}
	}
	return best
}

// Summary renders a per-layer table of shapes, params, and FLOPs.
func (n *Network) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-24s %-10s %-14s %-12s %s\n", n.Name, "layer", "op", "output", "params", "fwd FLOPs/img")
	for _, nd := range n.nodes {
		fmt.Fprintf(&b, "%-24s %-10s %-14s %-12d %v\n",
			nd.Name, nd.Op.Kind(), nd.Out, nd.ParamsN, nd.FwdFLOPs)
	}
	fmt.Fprintf(&b, "total params: %d (%v), fwd FLOPs/img: %v\n",
		n.ParamCount(), n.ModelBytes(), n.FwdFLOPsPerImage())
	return b.String()
}
