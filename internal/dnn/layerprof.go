package dnn

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/gpu"
	"repro/internal/units"
)

// LayerStat is one layer's analytical profile — the layer-by-layer
// characterization style of the CNN profiling work the paper builds on.
type LayerStat struct {
	Name   string
	Kind   OpKind
	Output Shape
	Params int64

	FPTime time.Duration
	BPTime time.Duration
	FLOPs  units.FLOPs // per mini-batch, forward + backward
	Bytes  units.Bytes // DRAM traffic per mini-batch, forward + backward

	// BoundBy names the roofline regime of the layer's forward kernel:
	// "compute", "memory", or "overhead" (too little work to fill the
	// device; launch/gap dominated).
	BoundBy string
}

// Total returns FP + BP time.
func (s LayerStat) Total() time.Duration { return s.FPTime + s.BPTime }

// ProfileLayers computes per-layer execution estimates for one mini-batch
// on the given device. Layers that lower to no kernel are omitted.
func ProfileLayers(n *Network, batch int, spec gpu.Spec, opt PlanOptions) []LayerStat {
	var out []LayerStat
	for _, p := range n.NodePlans(batch, opt) {
		if len(p.Fwd) == 0 && len(p.Bwd) == 0 {
			continue
		}
		st := LayerStat{
			Name:   p.Node.Name,
			Kind:   p.Node.Op.Kind(),
			Output: p.Node.Out,
			Params: p.Node.ParamsN,
		}
		for _, k := range p.Fwd {
			st.FPTime += spec.KernelDuration(k)
			st.FLOPs += k.FLOPs
			st.Bytes += k.MemBytes
			st.BoundBy = boundBy(spec, k)
		}
		for _, k := range p.Bwd {
			st.BPTime += spec.KernelDuration(k)
			st.FLOPs += k.FLOPs
			st.Bytes += k.MemBytes
		}
		out = append(out, st)
	}
	return out
}

// boundBy classifies a kernel's roofline regime.
func boundBy(spec gpu.Spec, k gpu.KernelCost) string {
	d := spec.KernelDuration(k)
	if d <= 2*spec.KernelGap {
		return "overhead"
	}
	occ := spec.Occupancy(k.Parallelism)
	if occ <= 0 {
		return "overhead"
	}
	memT := units.TransferTime(k.MemBytes, units.Bandwidth(float64(spec.MemBW)*occ))
	// Memory-bound when DRAM traffic sets the kernel's duration.
	if memT >= d-spec.KernelGap {
		return "memory"
	}
	return "compute"
}

// TopLayers returns the k most expensive layers by FP+BP time.
func TopLayers(stats []LayerStat, k int) []LayerStat {
	out := append([]LayerStat(nil), stats...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total() > out[j].Total() })
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// FormatLayerTable renders layer stats as an aligned table.
func FormatLayerTable(stats []LayerStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-10s %-14s %-10s %-12s %-12s %-10s %s\n",
		"layer", "op", "output", "params", "fp", "bp", "bound-by", "GFLOPs/batch")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-24s %-10s %-14s %-10d %-12v %-12v %-10s %.2f\n",
			s.Name, s.Kind, s.Output, s.Params,
			s.FPTime.Round(time.Microsecond), s.BPTime.Round(time.Microsecond),
			s.BoundBy, float64(s.FLOPs)/1e9)
	}
	return b.String()
}
