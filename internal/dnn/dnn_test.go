package dnn

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/units"
)

func TestShapeElems(t *testing.T) {
	if got := (Shape{C: 64, H: 56, W: 56}).Elems(); got != 64*56*56 {
		t.Errorf("elems = %d", got)
	}
	if !(Shape{C: 1, H: 1, W: 1}).Valid() {
		t.Error("1x1x1 should be valid")
	}
	if (Shape{C: 0, H: 1, W: 1}).Valid() {
		t.Error("zero channel should be invalid")
	}
	if Vec(100) != (Shape{C: 100, H: 1, W: 1}) {
		t.Error("Vec wrong")
	}
}

func TestConvShapeAndParams(t *testing.T) {
	c := Conv{OutC: 64, KH: 3, KW: 3, StrideH: 1, PadH: 1, PadW: 1, Bias: true}
	in := Shape{C: 32, H: 56, W: 56}
	out, err := c.InferShape([]Shape{in})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 64, H: 56, W: 56}) {
		t.Errorf("out = %v", out)
	}
	wantParams := int64(3*3*32*64 + 64)
	if got := c.Params([]Shape{in}, out); got != wantParams {
		t.Errorf("params = %d, want %d", got, wantParams)
	}
	wantFLOPs := units.FLOPs(2 * 3 * 3 * 32 * out.Elems())
	if got := c.FwdFLOPs([]Shape{in}, out); got != wantFLOPs {
		t.Errorf("flops = %d, want %d", got, wantFLOPs)
	}
}

func TestConvStride(t *testing.T) {
	c := Conv{OutC: 96, KH: 11, KW: 11, StrideH: 4, PadH: 2, PadW: 2}
	out, err := c.InferShape([]Shape{{C: 3, H: 224, W: 224}})
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 55 || out.W != 55 {
		t.Errorf("AlexNet conv1 output = %v, want 96x55x55", out)
	}
}

func TestConvGroupsHalveParams(t *testing.T) {
	in := Shape{C: 96, H: 27, W: 27}
	full := Conv{OutC: 256, KH: 5, KW: 5, PadH: 2, PadW: 2}
	grouped := Conv{OutC: 256, KH: 5, KW: 5, PadH: 2, PadW: 2, Groups: 2}
	outF, _ := full.InferShape([]Shape{in})
	outG, _ := grouped.InferShape([]Shape{in})
	if full.Params([]Shape{in}, outF) != 2*grouped.Params([]Shape{in}, outG) {
		t.Error("2-group conv should halve weights")
	}
	if full.FwdFLOPs([]Shape{in}, outF) != 2*grouped.FwdFLOPs([]Shape{in}, outG) {
		t.Error("2-group conv should halve FLOPs")
	}
}

func TestConvErrors(t *testing.T) {
	if _, err := (Conv{OutC: 0, KH: 3, KW: 3}).InferShape([]Shape{{C: 3, H: 8, W: 8}}); err == nil {
		t.Error("zero out channels should error")
	}
	if _, err := (Conv{OutC: 8, KH: 9, KW: 9}).InferShape([]Shape{{C: 3, H: 4, W: 4}}); err == nil {
		t.Error("collapsing output should error")
	}
	if _, err := (Conv{OutC: 7, KH: 3, KW: 3, Groups: 2}).InferShape([]Shape{{C: 4, H: 8, W: 8}}); err == nil {
		t.Error("indivisible groups should error")
	}
	if _, err := (Conv{OutC: 8, KH: 3, KW: 3}).InferShape(nil); err == nil {
		t.Error("missing input should error")
	}
}

func TestPoolCeilMode(t *testing.T) {
	// GoogLeNet pool1: 112 -> 56 with k=3 s=2 (ceil).
	p := Pool{Mode: MaxPool, K: 3, Stride: 2}
	out, err := p.InferShape([]Shape{{C: 64, H: 112, W: 112}})
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 56 {
		t.Errorf("pool out H = %d, want 56", out.H)
	}
}

func TestPoolGlobal(t *testing.T) {
	p := Pool{Mode: AvgPool, Global: true}
	out, err := p.InferShape([]Shape{{C: 2048, H: 7, W: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 2048, H: 1, W: 1}) {
		t.Errorf("global pool out = %v", out)
	}
}

func TestFC(t *testing.T) {
	f := FC{OutF: 4096, Bias: true}
	in := Shape{C: 9216, H: 1, W: 1}
	out, err := f.InferShape([]Shape{in})
	if err != nil {
		t.Fatal(err)
	}
	if out != Vec(4096) {
		t.Errorf("fc out = %v", out)
	}
	if got := f.Params([]Shape{in}, out); got != 9216*4096+4096 {
		t.Errorf("fc params = %d", got)
	}
}

func TestConcatChannels(t *testing.T) {
	c := Concat{}
	out, err := c.InferShape([]Shape{{C: 64, H: 28, W: 28}, {C: 128, H: 28, W: 28}, {C: 32, H: 28, W: 28}})
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 224 {
		t.Errorf("concat C = %d, want 224", out.C)
	}
	if _, err := c.InferShape([]Shape{{C: 64, H: 28, W: 28}, {C: 64, H: 14, W: 14}}); err == nil {
		t.Error("spatial mismatch should error")
	}
	if _, err := c.InferShape([]Shape{{C: 64, H: 28, W: 28}}); err == nil {
		t.Error("single-input concat should error")
	}
}

func TestAddShapes(t *testing.T) {
	a := Add{}
	s := Shape{C: 256, H: 56, W: 56}
	out, err := a.InferShape([]Shape{s, s})
	if err != nil || out != s {
		t.Errorf("add out = %v, %v", out, err)
	}
	if _, err := a.InferShape([]Shape{s, {C: 128, H: 56, W: 56}}); err == nil {
		t.Error("mismatched add should error")
	}
}

func TestFlatten(t *testing.T) {
	out, err := Flatten{}.InferShape([]Shape{{C: 16, H: 5, W: 5}})
	if err != nil || out != Vec(400) {
		t.Errorf("flatten = %v, %v", out, err)
	}
}

func TestBatchNormParams(t *testing.T) {
	in := Shape{C: 64, H: 56, W: 56}
	if got := (BatchNorm{}).Params([]Shape{in}, in); got != 128 {
		t.Errorf("bn params = %d, want 128", got)
	}
}

func buildTiny() *Network {
	b := NewBuilder("tiny")
	x := b.Input("data", Shape{C: 3, H: 8, W: 8})
	x = b.Add("conv", Conv{OutC: 4, KH: 3, KW: 3, PadH: 1, PadW: 1, Bias: true}, x)
	x = b.Add("relu", Activation{Mode: ReLU}, x)
	x = b.Add("flatten", Flatten{}, x)
	x = b.Add("fc", FC{OutF: 10, Bias: true}, x)
	b.Add("softmax", Softmax{}, x)
	return b.Finish()
}

func TestBuilderDuplicateNamePanics(t *testing.T) {
	b := NewBuilder("dup")
	x := b.Input("data", Shape{C: 1, H: 4, W: 4})
	defer func() {
		if recover() == nil {
			t.Error("duplicate name should panic")
		}
	}()
	b.Add("data", Activation{}, x)
}

func TestBuilderBadShapePanics(t *testing.T) {
	b := NewBuilder("bad")
	x := b.Input("data", Shape{C: 1, H: 4, W: 4})
	defer func() {
		if recover() == nil {
			t.Error("collapsing conv should panic at build time")
		}
	}()
	b.Add("conv", Conv{OutC: 4, KH: 9, KW: 9}, x)
}

func TestNetworkAggregates(t *testing.T) {
	n := buildTiny()
	wantParams := int64(3*3*3*4+4) + int64(256*10+10)
	if got := n.ParamCount(); got != wantParams {
		t.Errorf("params = %d, want %d", got, wantParams)
	}
	if got := n.ModelBytes(); got != units.Bytes(wantParams*4) {
		t.Errorf("model bytes = %v", got)
	}
	if n.Depth() != 2 {
		t.Errorf("depth = %d, want 2", n.Depth())
	}
	wl := n.WeightedLayers()
	if len(wl) != 2 || wl[0].Name != "conv" || wl[1].Name != "fc" {
		t.Errorf("weighted layers = %v", wl)
	}
	if n.CountKind(OpConv) != 1 || n.CountKind(OpFC) != 1 {
		t.Error("CountKind wrong")
	}
	if !strings.Contains(n.Summary(), "conv") {
		t.Error("summary missing layer")
	}
}

func TestForwardPlanSkipsInputAndFlatten(t *testing.T) {
	n := buildTiny()
	plan := n.ForwardPlan(16, PlanOptions{})
	// conv, relu, fc, softmax
	if len(plan) != 4 {
		t.Fatalf("plan length = %d, want 4", len(plan))
	}
	if plan[0].Name != "conv_fprop" {
		t.Errorf("first kernel = %s", plan[0].Name)
	}
	if plan[0].FLOPs != units.FLOPs(16)*n.Nodes()[1].FwdFLOPs {
		t.Error("batch scaling wrong")
	}
}

func TestBackwardPlanReverseOrderWithLayers(t *testing.T) {
	n := buildTiny()
	steps := n.BackwardPlan(16, PlanOptions{})
	if len(steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(steps))
	}
	if steps[0].Node.Name != "softmax" || steps[len(steps)-1].Node.Name != "conv" {
		t.Error("backward order wrong")
	}
	var grads []string
	for _, s := range steps {
		if s.Layer != nil {
			grads = append(grads, s.Layer.Name)
		}
	}
	if len(grads) != 2 || grads[0] != "fc" || grads[1] != "conv" {
		t.Errorf("gradient order = %v, want [fc conv]", grads)
	}
	// Weighted layers produce two kernels (dgrad+wgrad), others one.
	for _, s := range steps {
		want := 1
		if s.Node.Op.Weighted() {
			want = 2
		}
		if len(s.Kernels) != want {
			t.Errorf("%s kernels = %d, want %d", s.Node.Name, len(s.Kernels), want)
		}
	}
}

func TestTensorCoresSpeedPlanUp(t *testing.T) {
	n := buildTiny()
	spec := gpu.V100()
	slow := PlanDuration(spec, n.ForwardPlan(256, PlanOptions{TensorCores: false}))
	fast := PlanDuration(spec, n.ForwardPlan(256, PlanOptions{TensorCores: true}))
	if fast >= slow {
		t.Errorf("tensor cores (%d) should beat FMA (%d)", fast, slow)
	}
}

func TestBadBatchPanics(t *testing.T) {
	n := buildTiny()
	defer func() {
		if recover() == nil {
			t.Error("batch 0 should panic")
		}
	}()
	n.ForwardPlan(0, PlanOptions{})
}

// Property: doubling the batch doubles plan FLOPs exactly.
func TestPlanFLOPsLinearInBatch(t *testing.T) {
	n := buildTiny()
	f := func(b uint8) bool {
		batch := int(b%32) + 1
		f1 := PlanFLOPs(n.ForwardPlan(batch, PlanOptions{}))
		f2 := PlanFLOPs(n.ForwardPlan(2*batch, PlanOptions{}))
		return f2 == 2*f1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
