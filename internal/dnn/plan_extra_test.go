package dnn

import (
	"testing"

	"repro/internal/units"
)

// NodePlans must agree with the whole-network plans: same total FLOPs,
// same kernel counts, same weighted layers.
func TestNodePlansConsistentWithNetworkPlans(t *testing.T) {
	n := buildTiny()
	opt := PlanOptions{TensorCores: true}
	batch := 8

	var nodeFwdFLOPs, nodeBwdFLOPs units.FLOPs
	var nodeFwdKernels, nodeBwdKernels int
	var layers []string
	for _, p := range n.NodePlans(batch, opt) {
		for _, k := range p.Fwd {
			nodeFwdFLOPs += k.FLOPs
			nodeFwdKernels++
		}
		for _, k := range p.Bwd {
			nodeBwdFLOPs += k.FLOPs
			nodeBwdKernels++
		}
		if p.Layer != nil {
			layers = append(layers, p.Layer.Name)
		}
	}

	fwd := n.ForwardPlan(batch, opt)
	if PlanFLOPs(fwd) != nodeFwdFLOPs || len(fwd) != nodeFwdKernels {
		t.Errorf("forward mismatch: %v/%d vs %v/%d",
			PlanFLOPs(fwd), len(fwd), nodeFwdFLOPs, nodeFwdKernels)
	}
	var bwdFLOPs units.FLOPs
	bwdKernels := 0
	for _, step := range n.BackwardPlan(batch, opt) {
		bwdFLOPs += PlanFLOPs(step.Kernels)
		bwdKernels += len(step.Kernels)
	}
	if bwdFLOPs != nodeBwdFLOPs || bwdKernels != nodeBwdKernels {
		t.Errorf("backward mismatch: %v/%d vs %v/%d",
			bwdFLOPs, bwdKernels, nodeBwdFLOPs, nodeBwdKernels)
	}
	wl := n.WeightedLayers()
	if len(layers) != len(wl) {
		t.Errorf("weighted layers: %v vs %v", layers, wl)
	}
}

// Every cut point must be a valid single-tensor boundary: for each node
// after the cut, any input from at-or-before the cut must be the cut node
// itself.
func TestCutPointsValidBoundaries(t *testing.T) {
	nets := []*Network{buildTiny(), buildBranchy(t)}
	for _, n := range nets {
		nodes := n.Nodes()
		index := map[*Node]int{}
		for i, nd := range nodes {
			index[nd] = i
		}
		for _, c := range n.CutPoints() {
			for i := c + 1; i < len(nodes); i++ {
				for _, in := range nodes[i].Inputs {
					if index[in] <= c && index[in] != c {
						t.Errorf("%s: cut %d severs %s -> %s", n.Name, c, in.Name, nodes[i].Name)
					}
				}
			}
		}
	}
}

// buildBranchy creates a net with a residual branch; no cut may fall
// inside the branch.
func buildBranchy(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder("branchy")
	x := b.Input("data", Shape{C: 8, H: 8, W: 8})
	x = b.Add("pre", Conv{OutC: 8, KH: 3, KW: 3, PadH: 1, PadW: 1}, x)
	left := b.Add("left", Conv{OutC: 8, KH: 3, KW: 3, PadH: 1, PadW: 1}, x)
	sum := b.Add("sum", Add{}, left, x)
	post := b.Add("post", Conv{OutC: 8, KH: 3, KW: 3, PadH: 1, PadW: 1}, sum)
	b.Add("softmax", Softmax{}, post)
	return b.Finish()
}

func TestCutPointsExcludeBranchInterior(t *testing.T) {
	n := buildBranchy(t)
	nodes := n.Nodes()
	byName := map[string]int{}
	for i, nd := range nodes {
		byName[nd.Name] = i
	}
	cuts := map[int]bool{}
	for _, c := range n.CutPoints() {
		cuts[c] = true
	}
	// While "pre" is consumed by both "left" and "sum", a cut after "left"
	// would sever pre->sum: it must not be offered.
	if cuts[byName["left"]] {
		t.Error("cut inside the residual branch offered")
	}
	// After "sum" the graph narrows again: valid cut.
	if !cuts[byName["sum"]] {
		t.Error("cut after the residual join missing")
	}
	// A purely sequential prefix boundary is valid.
	if !cuts[byName["pre"]] {
		// pre's output feeds both branches, but it is the ONLY live
		// tensor at that point, so the cut is clean.
		t.Error("cut after pre missing")
	}
}

func TestNodePlansBadBatchPanics(t *testing.T) {
	n := buildTiny()
	defer func() {
		if recover() == nil {
			t.Error("batch 0 should panic")
		}
	}()
	n.NodePlans(0, PlanOptions{})
}
