package gpu

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Device is one simulated GPU: a spec, execution queues, and a memory
// allocator. Compute kernels share one SM-array queue; communication
// kernels (NCCL's Reduce/Broadcast kernels, which use a handful of SMs and
// are bandwidth-bound) run on a separate queue so they overlap compute, as
// they do on real hardware; DMA copies have their own copy-engine queue.
type Device struct {
	ID   topology.NodeID
	Spec Spec

	compute *sim.Resource
	comm    *sim.Resource
	dma     []*sim.Resource
	Memory  *Allocator
}

// dmaEngines is the number of usable copy engines per transfer direction
// (the V100 exposes several; two captures the paper-era concurrency).
const dmaEngines = 2

// NewDevice creates a device bound to the engine.
func NewDevice(eng *sim.Engine, id topology.NodeID, spec Spec) *Device {
	d := &Device{
		ID:      id,
		Spec:    spec,
		compute: sim.NewResource(eng, fmt.Sprintf("GPU%d/compute", id)),
		comm:    sim.NewResource(eng, fmt.Sprintf("GPU%d/comm", id)),
		Memory:  NewAllocator(spec.MemCapacity),
	}
	for i := 0; i < dmaEngines; i++ {
		d.dma = append(d.dma, sim.NewResource(eng, fmt.Sprintf("GPU%d/dma%d", id, i)))
	}
	return d
}

// BookKernel reserves the compute queue for the kernel, becoming eligible
// at ready; it returns the kernel's execution window.
func (d *Device) BookKernel(ready time.Duration, c KernelCost) (start, end time.Duration) {
	return d.compute.Book(ready, d.Spec.KernelDuration(c))
}

// BookCommKernel reserves the communication-kernel queue for dur.
func (d *Device) BookCommKernel(ready time.Duration, dur time.Duration) (start, end time.Duration) {
	return d.comm.Book(ready, dur)
}

// BookDMA reserves the least-loaded copy engine for dur (the wire time is
// booked on the fabric separately; this models engine occupancy for
// back-to-back copies fanning out of one GPU).
func (d *Device) BookDMA(ready time.Duration, dur time.Duration) (start, end time.Duration) {
	best := d.dma[0]
	for _, r := range d.dma[1:] {
		if r.FreeAt() < best.FreeAt() {
			best = r
		}
	}
	return best.Book(ready, dur)
}

// ComputeBusy returns accumulated compute-queue busy time.
func (d *Device) ComputeBusy() time.Duration { return d.compute.BusyTime() }

// ComputeFreeAt returns when the compute queue drains.
func (d *Device) ComputeFreeAt() time.Duration { return d.compute.FreeAt() }

// CommFreeAt returns when the communication-kernel queue drains.
func (d *Device) CommFreeAt() time.Duration { return d.comm.FreeAt() }
