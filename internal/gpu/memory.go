package gpu

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/units"
)

// ErrOutOfMemory is returned when an allocation exceeds device capacity.
// The paper hits this wall at batch 128 for Inception-v3 and ResNet and at
// batch 256 for GoogLeNet; the trainer surfaces the same failures.
var ErrOutOfMemory = errors.New("gpu: out of memory")

// Allocator tracks device-memory usage by tag (weights, gradients, feature
// maps, workspace, ...), enforcing the device capacity and recording the
// high-water mark.
type Allocator struct {
	capacity units.Bytes
	used     units.Bytes
	peak     units.Bytes
	tags     map[string]units.Bytes
}

// NewAllocator creates an allocator with the given capacity.
func NewAllocator(capacity units.Bytes) *Allocator {
	return &Allocator{capacity: capacity, tags: make(map[string]units.Bytes)}
}

// Alloc reserves n bytes under tag. It fails with ErrOutOfMemory (wrapped
// with the tag and sizes) if the reservation would exceed capacity.
func (a *Allocator) Alloc(tag string, n units.Bytes) error {
	if n < 0 {
		return fmt.Errorf("gpu: negative allocation %d under %q", n, tag)
	}
	if a.used+n > a.capacity {
		return fmt.Errorf("gpu: alloc %v under %q: used %v of %v: %w",
			n, tag, a.used, a.capacity, ErrOutOfMemory)
	}
	a.used += n
	a.tags[tag] += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return nil
}

// Free releases n bytes from tag. Freeing more than was allocated under the
// tag indicates a model bug and panics.
func (a *Allocator) Free(tag string, n units.Bytes) {
	if n < 0 || a.tags[tag] < n {
		panic(fmt.Sprintf("gpu: freeing %v from tag %q holding %v", n, tag, a.tags[tag]))
	}
	a.tags[tag] -= n
	a.used -= n
	if a.tags[tag] == 0 {
		delete(a.tags, tag)
	}
}

// Used returns current usage.
func (a *Allocator) Used() units.Bytes { return a.used }

// Peak returns the high-water mark.
func (a *Allocator) Peak() units.Bytes { return a.peak }

// Capacity returns the device capacity.
func (a *Allocator) Capacity() units.Bytes { return a.capacity }

// Tag returns the bytes currently held under tag.
func (a *Allocator) Tag(tag string) units.Bytes { return a.tags[tag] }

// Tags returns current usage per tag in deterministic (name) order.
func (a *Allocator) Tags() []TagUsage {
	out := make([]TagUsage, 0, len(a.tags))
	for t, n := range a.tags {
		out = append(out, TagUsage{Tag: t, Bytes: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// TagUsage is one tag's usage.
type TagUsage struct {
	Tag   string
	Bytes units.Bytes
}
