// Package gpu models a single GPU: its performance envelope (a roofline
// with an occupancy correction), its execution queues, and its memory
// capacity. The default Spec reproduces the Tesla V100 in the paper's
// DGX-1.
package gpu

import (
	"time"

	"repro/internal/units"
)

// KernelClass selects which compute roof a kernel runs against.
type KernelClass int

// Kernel classes.
const (
	// ClassTensor kernels (convolutions and GEMMs lowered to matrix
	// blocks) can use the V100's tensor cores.
	ClassTensor KernelClass = iota
	// ClassFMA kernels run on the ordinary FP32 pipelines.
	ClassFMA
	// ClassMemory kernels (activations, pooling, batchnorm, elementwise)
	// are DRAM-bandwidth-bound; their FLOPs are negligible.
	ClassMemory
)

// String names the class.
func (c KernelClass) String() string {
	switch c {
	case ClassTensor:
		return "tensor"
	case ClassFMA:
		return "fma"
	case ClassMemory:
		return "memory"
	}
	return "unknown"
}

// Spec is a GPU's hardware envelope.
type Spec struct {
	Name string
	SMs  int

	// Peak arithmetic rates.
	PeakFP32   units.FLOPRate
	PeakTensor units.FLOPRate

	// Memory system.
	MemBW       units.Bandwidth
	MemCapacity units.Bytes

	// KernelGap is the device-side gap between consecutive kernels on a
	// stream (scheduling, not host launch — that is the CUDA runtime's
	// cost).
	KernelGap time.Duration

	// OccupancyHalf is the parallelism (threads of work) at which a kernel
	// reaches half of its achievable throughput. Small kernels cannot fill
	// the SM array; this single knob models that.
	OccupancyHalf int64
}

// V100 returns the Tesla V100-SXM2-16GB used in the Volta DGX-1:
// 80 SMs, 15.7 TFLOPS FP32, 125 TFLOPS tensor, 16 GB HBM2 at 900 GB/s.
func V100() Spec {
	return Spec{
		Name:          "Tesla V100-SXM2-16GB",
		SMs:           80,
		PeakFP32:      15.7 * units.TFLOPPerSec,
		PeakTensor:    125 * units.TFLOPPerSec,
		MemBW:         900 * units.GBPerSec,
		MemCapacity:   16 * units.GB,
		KernelGap:     2500 * time.Nanosecond,
		OccupancyHalf: 48 * 1024,
	}
}

// P100 returns the Tesla P100-SXM2-16GB of the Pascal-generation DGX-1
// (the system the paper's related work compares against): 56 SMs,
// 10.6 TFLOPS FP32, no tensor cores, 16 GB HBM2 at 720 GB/s.
func P100() Spec {
	return Spec{
		Name:          "Tesla P100-SXM2-16GB",
		SMs:           56,
		PeakFP32:      10.6 * units.TFLOPPerSec,
		PeakTensor:    10.6 * units.TFLOPPerSec, // no tensor cores: same roof
		MemBW:         720 * units.GBPerSec,
		MemCapacity:   16 * units.GB,
		KernelGap:     2500 * time.Nanosecond,
		OccupancyHalf: 36 * 1024,
	}
}

// A100 returns the A100-SXM4-40GB of the Ampere generation that followed
// the paper's Volta: 108 SMs, 19.5 TFLOPS FP32, 312 TFLOPS dense tensor,
// 40 GB HBM2e at 1555 GB/s. The occupancy knee scales with the larger SM
// array: small kernels are even further from filling the machine, which
// is why the paper's small-network pathologies get worse, not better, on
// newer parts.
func A100() Spec {
	return Spec{
		Name:          "NVIDIA A100-SXM4-40GB",
		SMs:           108,
		PeakFP32:      19.5 * units.TFLOPPerSec,
		PeakTensor:    312 * units.TFLOPPerSec,
		MemBW:         1555 * units.GBPerSec,
		MemCapacity:   40 * units.GB,
		KernelGap:     2500 * time.Nanosecond,
		OccupancyHalf: 64 * 1024,
	}
}

// H100 returns the H100-SXM5-80GB of the Hopper generation: 132 SMs,
// 67 TFLOPS FP32, 989 TFLOPS dense tensor, 80 GB HBM3 at 3350 GB/s.
func H100() Spec {
	return Spec{
		Name:          "NVIDIA H100-SXM5-80GB",
		SMs:           132,
		PeakFP32:      67 * units.TFLOPPerSec,
		PeakTensor:    989 * units.TFLOPPerSec,
		MemBW:         3350 * units.GBPerSec,
		MemCapacity:   80 * units.GB,
		KernelGap:     2500 * time.Nanosecond,
		OccupancyHalf: 80 * 1024,
	}
}

// Slowed returns the spec with every throughput roof (FP32, tensor, DRAM)
// divided by factor — the straggler-GPU model fault plans inject: thermal
// throttling or a sick HBM stack slows every kernel class uniformly
// without changing capacity or the host-side costs. A factor <= 1 returns
// the spec unchanged.
func (s Spec) Slowed(factor float64) Spec {
	if factor <= 1 {
		return s
	}
	s.PeakFP32 = units.FLOPRate(float64(s.PeakFP32) / factor)
	s.PeakTensor = units.FLOPRate(float64(s.PeakTensor) / factor)
	s.MemBW = units.Bandwidth(float64(s.MemBW) / factor)
	return s
}

// KernelCost is a kernel's resource demand, computed by the DNN layer
// planner.
type KernelCost struct {
	// Name identifies the kernel for profiling (e.g. "conv2d_fprop").
	Name string
	// FLOPs of arithmetic work.
	FLOPs units.FLOPs
	// MemBytes of DRAM traffic (reads + writes).
	MemBytes units.Bytes
	// Parallelism is the number of independent work items (output
	// elements), which drives occupancy.
	Parallelism int64
	// Class selects the roof.
	Class KernelClass
	// Eff is the fraction of the roof achievable at full occupancy
	// (algorithmic efficiency: im2col overheads, tail effects). Zero means
	// a default of 1.
	Eff float64
}

// Occupancy returns the throughput fraction attainable at the given
// parallelism: p / (p + half). It rises from ~0 for tiny kernels to ~1 for
// kernels with far more work items than the machine has lanes.
func (s Spec) Occupancy(parallelism int64) float64 {
	if parallelism <= 0 {
		return 0
	}
	p := float64(parallelism)
	return p / (p + float64(s.OccupancyHalf))
}

// KernelDuration estimates the kernel's execution time: the max of its
// compute-roof time and its memory-roof time, both discounted by occupancy,
// plus the device-side scheduling gap.
func (s Spec) KernelDuration(c KernelCost) time.Duration {
	eff := c.Eff
	if eff <= 0 {
		eff = 1
	}
	occ := s.Occupancy(c.Parallelism)
	if occ <= 0 {
		return s.KernelGap
	}

	var roof units.FLOPRate
	switch c.Class {
	case ClassTensor:
		roof = s.PeakTensor
	case ClassFMA:
		roof = s.PeakFP32
	case ClassMemory:
		roof = 0
	}

	var compute time.Duration
	if roof > 0 && c.FLOPs > 0 {
		compute = units.ComputeTime(c.FLOPs, units.FLOPRate(float64(roof)*eff*occ))
	}
	var memory time.Duration
	if c.MemBytes > 0 {
		memory = units.TransferTime(c.MemBytes, units.Bandwidth(float64(s.MemBW)*occ))
	}
	d := compute
	if memory > d {
		d = memory
	}
	return s.KernelGap + d
}

// AchievedRate returns the effective FLOP rate the kernel attains
// (FLOPs / duration), used for utilization reporting.
func (s Spec) AchievedRate(c KernelCost) units.FLOPRate {
	d := s.KernelDuration(c)
	if d <= 0 || c.FLOPs <= 0 {
		return 0
	}
	return units.FLOPRate(float64(c.FLOPs) / d.Seconds())
}
